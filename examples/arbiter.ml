(* Incomplete arbiters: the bitcell (token-passing) and lookahead arbiter
   families from the paper's benchmark set (both from Dally-Harting's
   "Digital Design: A Systems Approach").

   We sweep the arbiter width and the number of unimplemented cells and
   report HQS results, showing how the two families stress the solver
   differently: bitcell boxes sit on the token chain (their copies pile up
   during universal elimination), while lookahead boxes observe
   independent prefix signals. *)

module Fam = Circuit.Families

let run_one (inst : Fam.instance) =
  let t0 = Hqs_util.Budget.now () in
  let outcome =
    try
      let v, _ = Hqs.solve_pcnf ~budget:(Hqs_util.Budget.of_seconds 10.0) inst.Fam.pcnf in
      (match v with Hqs.Sat -> "SAT" | Hqs.Unsat -> "UNSAT")
    with
    | Hqs_util.Budget.Timeout -> "TO"
    | Hqs_util.Budget.Out_of_memory_budget -> "MO"
  in
  Printf.printf "  %-24s %-6s %6.3f s\n%!" inst.Fam.id outcome (Hqs_util.Budget.now () -. t0)

let () =
  print_endline "=== bitcell arbiter: realizable instances (boxes can be filled) ===";
  List.iter
    (fun (cells, boxes) -> run_one (Fam.bitcell ~cells ~boxes ~fault:false))
    [ (3, 1); (4, 2); (6, 2); (8, 3) ];
  print_endline "=== bitcell arbiter: a cell outside the boxes is broken ===";
  List.iter
    (fun (cells, boxes) -> run_one (Fam.bitcell ~cells ~boxes ~fault:true))
    [ (4, 2); (8, 3); (12, 3) ];
  print_endline "=== lookahead arbiter ===";
  List.iter
    (fun (cells, boxes, fault) -> run_one (Fam.lookahead ~cells ~boxes ~fault))
    [ (4, 2, false); (6, 3, false); (6, 2, true); (10, 3, true) ];
  print_endline "";
  print_endline "note: every multi-box instance above has a cyclic dependency graph,";
  print_endline "so plain QBF solvers cannot even express the question (Theorem 3)."
