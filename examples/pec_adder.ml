(* Partial equivalence checking of an incomplete ripple-carry adder — the
   paper's motivating application (Section I): two full-adder cells have
   not been implemented yet (black boxes), and we ask whether ANY
   implementation of the boxes can make the design match the golden adder.

   Because each box observes only its own cell's inputs, the two boxes
   have incomparable dependency sets: the question is a genuine DQBF, not
   a QBF (Example 1 / Theorem 4 of the paper). *)

module Fam = Circuit.Families
module N = Circuit.Netlist

let show_instance (inst : Fam.instance) =
  let gates_spec, _ = N.counts inst.Fam.spec in
  let gates_impl, boxes = N.counts inst.Fam.impl in
  Printf.printf "instance %s: spec %d gates; impl %d gates + %d black boxes\n" inst.Fam.id
    gates_spec gates_impl boxes;
  let p = inst.Fam.pcnf in
  Printf.printf "  DQBF: %d vars (%d universal, %d existential), %d clauses\n"
    p.Dqbf.Pcnf.num_vars
    (List.length p.Dqbf.Pcnf.univs)
    (List.length p.Dqbf.Pcnf.exists)
    (List.length p.Dqbf.Pcnf.clauses)

let solve (inst : Fam.instance) =
  let t0 = Hqs_util.Budget.now () in
  let verdict, stats = Hqs.solve_pcnf inst.Fam.pcnf in
  let dt = Hqs_util.Budget.now () -. t0 in
  Printf.printf "  HQS: %s in %.3f s (%d universal eliminations, MaxSAT set of %d)\n"
    (match verdict with
    | Hqs.Sat -> "REALIZABLE (the boxes can be implemented)"
    | Hqs.Unsat -> "UNREALIZABLE (no box implementation works)")
    dt stats.Hqs.univ_elims stats.Hqs.maxsat_set_size

let () =
  print_endline "=== 4-bit adder, two unimplemented full-adder cells ===";
  let ok = Fam.adder ~bits:4 ~boxes:2 ~fault:false in
  show_instance ok;
  solve ok;
  print_endline "";
  print_endline "=== same design with a bug injected outside the boxes ===";
  print_endline "(one sum XOR replaced by OR: no black-box implementation can fix it)";
  let bad = Fam.adder ~bits:4 ~boxes:2 ~fault:true in
  show_instance bad;
  solve bad;
  print_endline "";
  (* demonstrate the realizability witness concretely: plug the golden
     full-adder into the boxes of the fault-free design and compare *)
  print_endline "=== sanity: plugging the textbook full-adder into the boxes ===";
  let agree = ref true in
  let spec = ok.Fam.spec and impl = ok.Fam.impl in
  for bits = 0 to (1 lsl spec.N.num_inputs) - 1 do
    let input = Array.init spec.N.num_inputs (fun i -> bits land (1 lsl i) <> 0) in
    if N.eval spec input <> N.eval_with_boxes impl ~box_fn:ok.Fam.golden input then agree := false
  done;
  Printf.printf "golden boxes reproduce the spec on all %d input vectors: %b\n"
    (1 lsl spec.N.num_inputs) !agree
