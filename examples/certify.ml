(* Certified solving: reconstruct Skolem functions (Definition 2) for a
   satisfiable DQBF and check them independently — the "certification
   perspective" of the paper's reference [13] (Balabanov et al.).

   We solve the realizability question for a partial adder, extract the
   Skolem functions of the black-box outputs, verify them against the
   original formula, and then *read the synthesized black boxes back into
   the circuit*: evaluating the implementation with the extracted
   functions must reproduce the specification on every input vector.

   Finally the solve is repeated through the certifying entry point
   ([Hqs.solve_pcnf_certified]): the Skolem model is materialized as a
   self-contained certificate artifact (lib/cert), round-tripped through
   its text grammar, and — when the path of the isolated verifier is
   given as [argv(1)] — handed to [bin/certcheck], which re-derives the
   verdict from the artifact and the instance bytes alone, sharing no
   code with the solver (ci.sh drives this). *)

module M = Aig.Man
module Fam = Circuit.Families
module N = Circuit.Netlist
module Sk = Dqbf.Skolem

let () =
  let inst = Fam.adder ~bits:3 ~boxes:2 ~fault:false in
  Printf.printf "instance: %s\n" inst.Fam.id;
  let original = Dqbf.Pcnf.to_formula inst.Fam.pcnf in
  match Hqs.solve_pcnf_model inst.Fam.pcnf with
  | Hqs.Unsat, _, _ -> print_endline "unexpected UNSAT"
  | Hqs.Sat, None, _ -> print_endline "no model produced"
  | Hqs.Sat, Some model, stats ->
      Printf.printf "HQS: REALIZABLE in %.3f s\n" stats.Hqs.total_time;
      (* 1. independent certificate check *)
      (match Sk.verify original model with
      | Ok () -> print_endline "certificate: Skolem functions VERIFIED against the formula"
      | Error e -> Format.printf "certificate REJECTED: %a@." Sk.pp_failure e);
      (* 2. use the Skolem functions as the black-box implementations:
         the DQBF encodes box outputs as existentials over copies z of the
         box input signals, so s_y *is* the synthesized box logic *)
      let pcnf = inst.Fam.pcnf in
      let n_primary = inst.Fam.spec.N.num_inputs in
      (* universal variable ids: primary inputs first, then the z copies
         box by box (the encoder allocates them in this order) *)
      let z_of_box =
        let next = ref n_primary in
        Array.map
          (fun box ->
            List.map
              (fun _ ->
                let z = !next in
                incr next;
                z)
              box.N.bb_inputs)
          inst.Fam.impl.N.boxes
      in
      let y_of_box =
        let start = List.fold_left (fun acc zs -> acc + List.length zs) n_primary
            (Array.to_list z_of_box)
        in
        let next = ref start in
        Array.map
          (fun box -> List.map (fun _ -> let y = !next in incr next; y) box.N.bb_outputs)
          inst.Fam.impl.N.boxes
      in
      ignore pcnf;
      let box_fn i ins =
        (* evaluate the box's Skolem functions under z := actual inputs *)
        let zs = z_of_box.(i) in
        let env v =
          match List.find_index (fun z -> z = v) zs with
          | Some k -> List.nth ins k
          | None -> false
        in
        List.map (fun y -> Sk.eval model y env) y_of_box.(i)
      in
      let agree = ref true in
      for bits = 0 to (1 lsl n_primary) - 1 do
        let input = Array.init n_primary (fun k -> bits land (1 lsl k) <> 0) in
        if N.eval inst.Fam.spec input <> N.eval_with_boxes inst.Fam.impl ~box_fn input then
          agree := false
      done;
      Printf.printf
        "synthesized boxes plugged into the netlist: match the spec on all %d vectors: %b\n"
        (1 lsl n_primary) !agree;
      (* show the synthesized functions' truth tables *)
      Array.iteri
        (fun i zs ->
          Printf.printf "box %d (inputs %d):\n" i (List.length zs);
          List.iteri
            (fun k y ->
              Printf.printf "  out%d:" k;
              for bits = 0 to (1 lsl List.length zs) - 1 do
                let env v =
                  match List.find_index (fun z -> z = v) zs with
                  | Some j -> bits land (1 lsl j) <> 0
                  | None -> false
                in
                Printf.printf " %d" (if Sk.eval model y env then 1 else 0)
              done;
              print_newline ())
            y_of_box.(i))
        z_of_box;
      (* 3. the externally checkable artifact: emit, round-trip through
         the text grammar, and (with a verifier path on the command
         line) check it with the isolated bin/certcheck *)
      let instance_text = Dqbf.Pcnf.to_string pcnf in
      let _, cert, _, _ = Hqs.solve_pcnf_certified ~instance_text pcnf in
      Printf.printf "artifact: %s certificate, instance fingerprint %s\n"
        (Cert.status cert) cert.Cert.fingerprint;
      (match Cert.parse (Cert.render cert) with
      | Ok reparsed -> (
          match Cert.check ~instance_text pcnf reparsed with
          | Ok () -> print_endline "artifact: round-trips and checks in-process"
          | Error e -> Printf.printf "artifact REJECTED in-process: %s\n" e)
      | Error e -> Printf.printf "artifact does not re-parse: %s\n" e);
      if Array.length Sys.argv > 1 then begin
        let certcheck = Sys.argv.(1) in
        let dir = Filename.temp_file "certify" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o755;
        let inst_file = Filename.concat dir "instance.dqdimacs" in
        let cert_file = Filename.concat dir "skolem.cert" in
        Out_channel.with_open_bin inst_file (fun oc ->
            Out_channel.output_string oc instance_text);
        Cert.write_file cert_file cert;
        let code =
          Sys.command
            (Printf.sprintf "%s %s %s" (Filename.quote certcheck) (Filename.quote inst_file)
               (Filename.quote cert_file))
        in
        Printf.printf "external certcheck: exit %d (0 = verified)\n" code;
        Sys.remove inst_file;
        Sys.remove cert_file;
        Sys.rmdir dir;
        if code <> 0 then exit 1
      end
      else print_endline "external certcheck: skipped (pass its path as argv(1))"
