(* The pec_xor family (Finkbeiner-Tentrup): parity chains with boxed XOR
   cells. This example compares HQS against the instantiation-based iDQ
   baseline head-to-head as the chain grows — a miniature of the paper's
   Fig. 4: iDQ keeps up on refutations but falls off a cliff on
   satisfiable instances, where HQS stays in milliseconds. *)

module Fam = Circuit.Families

let timeout = 8.0

let run solver (inst : Fam.instance) =
  let t0 = Hqs_util.Budget.now () in
  let outcome =
    try
      match solver with
      | `Hqs ->
          let v, _ =
            Hqs.solve_pcnf ~budget:(Hqs_util.Budget.of_seconds timeout) inst.Fam.pcnf
          in
          (match v with Hqs.Sat -> "SAT" | Hqs.Unsat -> "UNSAT")
      | `Idq ->
          let v, _ = Idq.solve_pcnf ~budget:(Hqs_util.Budget.of_seconds timeout) inst.Fam.pcnf in
          if v then "SAT" else "UNSAT"
    with
    | Hqs_util.Budget.Timeout -> "TO"
    | Hqs_util.Budget.Out_of_memory_budget -> "MO"
  in
  (outcome, Hqs_util.Budget.now () -. t0)

let row inst =
  let h, th = run `Hqs inst and i, ti = run `Idq inst in
  Printf.printf "  %-22s hqs: %-6s %7.3fs   idq: %-6s %7.3fs\n%!" inst.Fam.id h th i ti

let () =
  Printf.printf "per-instance timeout: %.0f s\n\n" timeout;
  print_endline "=== satisfiable chains (boxes can be XOR cells) ===";
  List.iter (fun (n, k) -> row (Fam.pec_xor ~length:n ~boxes:k ~fault:false))
    [ (3, 1); (4, 2); (5, 2); (6, 3) ];
  print_endline "";
  print_endline "=== unsatisfiable chains (an AND corrupts the parity) ===";
  List.iter (fun (n, k) -> row (Fam.pec_xor ~length:n ~boxes:k ~fault:true))
    [ (4, 1); (6, 2); (8, 3); (10, 3) ]
