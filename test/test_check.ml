(* The auditor is only trustworthy if it actually trips: every test here
   seeds a specific corruption through the Aig.Man.Internal backdoor (or
   builds an inconsistent structure directly) and asserts the matching
   validator raises, next to a control showing the uncorrupted structure
   passes. *)

open Hqs_util
module M = Aig.Man
module I = Aig.Man.Internal
module F = Dqbf.Formula

let check = Alcotest.(check bool)

let trips f =
  match f () with () -> false | (exception Check.Violation _) -> true

let violation_structure f =
  match f () with
  | () -> None
  | exception Check.Violation v -> Some v.Check.structure

(* \forall x0 x1, \exists y2(x0) y3(x1):  (y2 <-> x0) /\ (y3 <-> x1),
   the classic incomparable-dependency SAT instance *)
let sample_formula () =
  let f = F.create () in
  F.add_universal f 0;
  F.add_universal f 1;
  F.add_existential f 2 ~deps:(Bitset.of_list [ 0 ]);
  F.add_existential f 3 ~deps:(Bitset.of_list [ 1 ]);
  let man = F.man f in
  let m1 = M.mk_iff man (M.input man 2) (M.input man 0) in
  let m2 = M.mk_iff man (M.input man 3) (M.input man 1) in
  F.set_matrix f (M.mk_and man m1 m2);
  f

let stage = Check.Post_elimination

(* ------------------------------------------------------------- manager *)

let test_clean_manager () =
  let f = sample_formula () in
  Check.audit_man ~stage (F.man f);
  Check.audit_formula ~stage ~level:Check.Full f;
  check "clean formula passes the deep audit" true true

let find_and man =
  let rec go n = if M.is_and man (2 * n) then n else go (n + 1) in
  go 1

let test_mutated_fanin () =
  let f = sample_formula () in
  let man = F.man f in
  let n = find_and man in
  (* point the node at itself: breaks topological acyclicity *)
  I.set_fanin man ~node:n ~f0:(2 * n) ~f1:((2 * n) + 1);
  check "forward fanin trips" true (trips (fun () -> Check.audit_man ~stage man));
  check "structure is aig-manager" (Some "aig-manager" = violation_structure (fun () -> Check.audit_man ~stage man)) true

let test_poisoned_strash () =
  let f = sample_formula () in
  let man = F.man f in
  (* a binding whose target's fanins do not match the key *)
  I.strash_add man 3 5 1;
  check "poisoned entry trips" true (trips (fun () -> Check.audit_man ~stage man))

let test_dangling_strash () =
  let f = sample_formula () in
  let man = F.man f in
  I.strash_add man 2 4 9999;
  check "out-of-range entry trips" true (trips (fun () -> Check.audit_man ~stage man))

let test_removed_strash_key () =
  let f = sample_formula () in
  let man = F.man f in
  let n = find_and man in
  let a = I.raw_fanin0 man n and b = I.raw_fanin1 man n in
  I.strash_remove man a b;
  check "AND without its hash key trips" true (trips (fun () -> Check.audit_man ~stage man))

let test_input_bijectivity () =
  let f = sample_formula () in
  let man = F.man f in
  (* relabel the input node of variable 1 as variable 0: two nodes now
     claim label 0 and the registry can agree with at most one of them *)
  let n1 = M.node_of (M.input man 1) in
  I.set_fanin man ~node:n1 ~f0:(-1) ~f1:0;
  check "input relabelling trips" true (trips (fun () -> Check.audit_man ~stage man))

(* ------------------------------------------------------------- formula *)

let test_dependency_widening () =
  let f = sample_formula () in
  (* variable 7 is not universal: Cheap already refuses the widened set *)
  F.set_deps f 2 (Bitset.of_list [ 0; 7 ]);
  check "widened dependency set trips at Cheap" true
    (trips (fun () -> Check.audit_formula ~stage ~level:Check.Cheap f));
  check "structure is dqbf-formula"
    (Some "dqbf-formula"
    = violation_structure (fun () -> Check.audit_formula ~stage ~level:Check.Cheap f))
    true

let test_unquantified_support () =
  let f = sample_formula () in
  let man = F.man f in
  (* conjoin a fresh never-quantified input into the matrix *)
  F.set_matrix f (M.mk_and man (F.matrix f) (M.input man 9));
  check "Cheap misses unquantified support" false
    (trips (fun () -> Check.audit_formula ~stage ~level:Check.Cheap f));
  check "Full catches unquantified support" true
    (trips (fun () -> Check.audit_formula ~stage ~level:Check.Full f))

let test_audit_stage_levels () =
  let f = sample_formula () in
  F.set_deps f 2 (Bitset.of_list [ 0; 7 ]);
  Check.audit_stage ~level:Check.Off stage f;
  check "Off audits nothing even when corrupted" true true;
  check "Cheap through audit_stage trips" true
    (trips (fun () -> Check.audit_stage ~level:Check.Cheap stage f))

(* --------------------------------------------------------------- queue *)

let test_queue () =
  let f = sample_formula () in
  Check.audit_queue ~stage f [ 0; 1 ];
  (* stale entries for eliminated (non-universal) variables are legal *)
  Check.audit_queue ~stage f [ 0; 2; 2; 1 ];
  check "well-formed queues pass" true true;
  check "out-of-range variable trips" true
    (trips (fun () -> Check.audit_queue ~stage f [ 0; 99 ]));
  check "universal queued twice trips" true
    (trips (fun () -> Check.audit_queue ~stage f [ 0; 1; 0 ]))

(* -------------------------------------------------------------- prefix *)

let linear_formula () =
  (* \forall x0, \exists y1(x0): linearly orderable as-is *)
  let f = F.create () in
  F.add_universal f 0;
  F.add_existential f 1 ~deps:(Bitset.of_list [ 0 ]);
  let man = F.man f in
  F.set_matrix f (M.mk_iff man (M.input man 1) (M.input man 0));
  f

let test_prefix () =
  let f = linear_formula () in
  let open Qbf.Prefix in
  Check.audit_prefix ~stage f [ (Forall, [ 0 ]); (Exists, [ 1 ]) ];
  check "well-formed prefix passes" true true;
  check "empty block trips" true
    (trips (fun () -> Check.audit_prefix ~stage f [ (Forall, [ 0 ]); (Exists, []); (Exists, [ 1 ]) ]));
  check "duplicate variable trips" true
    (trips (fun () -> Check.audit_prefix ~stage f [ (Forall, [ 0; 0 ]); (Exists, [ 1 ]) ]));
  check "wrong quantifier trips" true
    (trips (fun () -> Check.audit_prefix ~stage f [ (Exists, [ 0 ]); (Exists, [ 1 ]) ]));
  check "missing existential trips" true
    (trips (fun () -> Check.audit_prefix ~stage f [ (Forall, [ 0 ]) ]));
  check "non-alternating blocks trip" true
    (trips (fun () -> Check.audit_prefix ~stage f [ (Forall, [ 0 ]); (Exists, [ 1 ]); (Exists, []) ]))

(* -------------------------------------------------------------- skolem *)

let test_skolem_model () =
  let f = linear_formula () in
  let good = Dqbf.Skolem.create () in
  Dqbf.Skolem.define good 1 (M.input (Dqbf.Skolem.man good) 0);
  Check.audit_model ~stage:Check.Post_solve f good;
  check "correct witness certifies" true true;
  (* s_y = ~x0 falsifies the matrix: Not_tautology *)
  let wrong = Dqbf.Skolem.create () in
  Dqbf.Skolem.define wrong 1 (M.compl_ (M.input (Dqbf.Skolem.man wrong) 0));
  check "wrong witness trips" true
    (trips (fun () -> Check.audit_model ~stage:Check.Post_solve f wrong));
  check "structure is skolem-model"
    (Some "skolem-model"
    = violation_structure (fun () -> Check.audit_model ~stage:Check.Post_solve f wrong))
    true;
  (* correct function, illegal support: y1 must not read x2 *)
  let f2 = F.create () in
  F.add_universal f2 0;
  F.add_universal f2 2;
  F.add_existential f2 1 ~deps:(Bitset.of_list [ 0 ]);
  let man2 = F.man f2 in
  F.set_matrix f2 (M.mk_iff man2 (M.input man2 1) (M.input man2 0));
  let smuggled = Dqbf.Skolem.create () in
  let sman = Dqbf.Skolem.man smuggled in
  Dqbf.Skolem.define smuggled 1 (M.mk_xor sman (M.input sman 0) (M.input sman 2));
  check "out-of-dependency support trips" true
    (trips (fun () -> Check.audit_model ~stage:Check.Post_solve f2 smuggled))

(* ---------------------------------------------- end-to-end through Hqs *)

let full_config = { Hqs.default_config with check_level = Check.Full }

let verdict_is expected v =
  match (expected, v) with
  | Hqs.Sat, Hqs.Sat | Hqs.Unsat, Hqs.Unsat -> true
  | _ -> false

let test_solve_audited () =
  let verdict, _ = Hqs.solve_formula ~config:full_config (sample_formula ()) in
  check "audited solve: SAT instance" true (verdict_is Hqs.Sat verdict);
  (* \forall x \exists y(): y <-> x is unsatisfiable without seeing x *)
  let f = F.create () in
  F.add_universal f 0;
  F.add_existential f 1 ~deps:Bitset.empty;
  let man = F.man f in
  F.set_matrix f (M.mk_iff man (M.input man 1) (M.input man 0));
  let verdict, _ = Hqs.solve_formula ~config:full_config f in
  check "audited solve: UNSAT instance" true (verdict_is Hqs.Unsat verdict)

let test_solve_model_audited () =
  let pcnf =
    Dqbf.Pcnf.parse_string
      "p cnf 4 4\na 1 2 0\nd 3 1 0\nd 4 2 0\n-3 1 0\n3 -1 0\n-4 2 0\n4 -2 0\n"
  in
  let verdict, model, _ = Hqs.solve_pcnf_model ~config:full_config pcnf in
  check "audited pcnf model solve is SAT" true (verdict_is Hqs.Sat verdict);
  check "model returned" true (model <> None);
  match model with
  | Some m ->
      check "certified model passes external verify" true
        (match Dqbf.Skolem.verify (Dqbf.Pcnf.to_formula pcnf) m with Ok () -> true | Error _ -> false)
  | None -> ()

let () =
  Alcotest.run "check"
    [
      ( "manager",
        [
          Alcotest.test_case "clean passes" `Quick test_clean_manager;
          Alcotest.test_case "mutated fanin" `Quick test_mutated_fanin;
          Alcotest.test_case "poisoned strash" `Quick test_poisoned_strash;
          Alcotest.test_case "dangling strash" `Quick test_dangling_strash;
          Alcotest.test_case "removed strash key" `Quick test_removed_strash_key;
          Alcotest.test_case "input bijectivity" `Quick test_input_bijectivity;
        ] );
      ( "formula",
        [
          Alcotest.test_case "dependency widening" `Quick test_dependency_widening;
          Alcotest.test_case "unquantified support" `Quick test_unquantified_support;
          Alcotest.test_case "levels" `Quick test_audit_stage_levels;
          Alcotest.test_case "queue" `Quick test_queue;
        ] );
      ("prefix", [ Alcotest.test_case "well-formedness" `Quick test_prefix ]);
      ("skolem", [ Alcotest.test_case "certification" `Quick test_skolem_model ]);
      ( "end-to-end",
        [
          Alcotest.test_case "solve under Full" `Quick test_solve_audited;
          Alcotest.test_case "model solve under Full" `Quick test_solve_model_audited;
        ] );
    ]
