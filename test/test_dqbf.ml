open Hqs_util
module M = Aig.Man
module F = Dqbf.Formula

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------ generators *)

(* a random DQBF: universals 0..nu-1, existentials nu..nu+ne-1 with random
   dependency sets, and a random CNF matrix *)
type instance = {
  nu : int;
  ne : int;
  dep_masks : int list; (* per existential, bitmask over universals *)
  clauses : (int * bool) list list; (* (var, negated) *)
}

let instance_gen =
  QCheck.Gen.(
    int_range 1 3 >>= fun nu ->
    int_range 1 3 >>= fun ne ->
    list_repeat ne (int_bound ((1 lsl nu) - 1)) >>= fun dep_masks ->
    let n = nu + ne in
    list_size (int_range 1 12) (list_size (int_range 1 3) (pair (int_bound (n - 1)) bool))
    >>= fun clauses -> return { nu; ne; dep_masks; clauses })

let instance_print { nu; ne; dep_masks; clauses } =
  Printf.sprintf "nu=%d ne=%d deps=[%s] clauses=%s" nu ne
    (String.concat ";" (List.map string_of_int dep_masks))
    (String.concat " "
       (List.map
          (fun c ->
            String.concat ","
              (List.map (fun (v, s) -> string_of_int (if s then -(v + 1) else v + 1)) c))
          clauses))

let instance_arb = QCheck.make ~print:instance_print instance_gen

let build { nu; ne; dep_masks; clauses } =
  let f = F.create () in
  for x = 0 to nu - 1 do
    F.add_universal f x
  done;
  List.iteri
    (fun i mask ->
      let deps = Bitset.of_list (List.filter (fun x -> mask land (1 lsl x) <> 0) (List.init nu Fun.id)) in
      F.add_existential f (nu + i) ~deps)
    dep_masks;
  ignore ne;
  let man = F.man f in
  let lit (v, s) = M.apply_sign (M.input man v) ~neg:s in
  F.set_matrix f
    (M.mk_and_list man (List.map (fun c -> M.mk_or_list man (List.map lit c)) clauses));
  f

(* ------------------------------------------------------------ known cases *)

(* Example 1 of the paper: forall x1 x2 exists y1(x1) y2(x2) *)
let example1 ~crossed =
  let f = F.create () in
  F.add_universal f 0;
  F.add_universal f 1;
  F.add_existential f 2 ~deps:(Bitset.singleton 0);
  F.add_existential f 3 ~deps:(Bitset.singleton 1);
  let man = F.man f in
  let x1 = M.input man 0 and x2 = M.input man 1 in
  let y1 = M.input man 2 and y2 = M.input man 3 in
  let matrix =
    if crossed then M.mk_and man (M.mk_iff man y1 x2) (M.mk_iff man y2 x1)
    else M.mk_and man (M.mk_iff man y1 x1) (M.mk_iff man y2 x2)
  in
  F.set_matrix f matrix;
  f

let test_example1_sat () =
  check "aligned deps satisfiable" true (Dqbf.Reference.by_expansion (example1 ~crossed:false));
  check "skolem agrees" true (Dqbf.Reference.by_skolem_enum (example1 ~crossed:false))

let test_example1_unsat () =
  check "crossed deps unsatisfiable" false (Dqbf.Reference.by_expansion (example1 ~crossed:true));
  check "skolem agrees" false (Dqbf.Reference.by_skolem_enum (example1 ~crossed:true))

let test_example1_depgraph () =
  let f = example1 ~crossed:false in
  check "cyclic" false (Dqbf.Depgraph.is_acyclic f);
  check_int "one incomparable pair" 1 (List.length (Dqbf.Depgraph.incomparable_pairs f));
  check "no qbf prefix" true (Dqbf.Depgraph.qbf_prefix f = None);
  (* edges both ways between y1 and y2 *)
  let es = Dqbf.Depgraph.edges f in
  check "y1->y2" true (List.mem (2, 3) es);
  check "y2->y1" true (List.mem (3, 2) es)

let test_acyclic_prefix () =
  (* chain deps: y1(), y2(x1), y3(x1 x2) -> QBF-expressible *)
  let f = F.create () in
  F.add_universal f 0;
  F.add_universal f 1;
  F.add_existential f 2 ~deps:Bitset.empty;
  F.add_existential f 3 ~deps:(Bitset.singleton 0);
  F.add_existential f 4 ~deps:(Bitset.of_list [ 0; 1 ]);
  let man = F.man f in
  F.set_matrix f (M.mk_or_list man (List.map (M.input man) [ 2; 3; 4 ]));
  check "acyclic" true (Dqbf.Depgraph.is_acyclic f);
  match Dqbf.Depgraph.qbf_prefix f with
  | None -> Alcotest.fail "expected a prefix"
  | Some p ->
      check "prefix shape" true
        (p
        = [
            (Qbf.Prefix.Exists, [ 2 ]);
            (Qbf.Prefix.Forall, [ 0 ]);
            (Qbf.Prefix.Exists, [ 3 ]);
            (Qbf.Prefix.Forall, [ 1 ]);
            (Qbf.Prefix.Exists, [ 4 ]);
          ])

(* ------------------------------------------------ reference cross-checks *)

let small_enough inst =
  List.fold_left (fun acc m -> acc + (1 lsl Bitset.cardinal (Bitset.of_list (List.filter (fun x -> m land (1 lsl x) <> 0) (List.init inst.nu Fun.id))))) 0 inst.dep_masks <= 12

let prop_expansion_vs_skolem =
  QCheck.Test.make ~name:"expansion agrees with skolem enumeration" ~count:150 instance_arb
    (fun inst ->
      QCheck.assume (small_enough inst);
      let f = build inst in
      Dqbf.Reference.by_expansion f = Dqbf.Reference.by_skolem_enum (build inst))

(* ----------------------------------------------- elimination correctness *)

let prop_thm1_preserves =
  QCheck.Test.make ~name:"Theorem 1 (universal elimination) preserves truth" ~count:250
    (QCheck.pair instance_arb (QCheck.int_bound 2)) (fun (inst, xi) ->
      let x = xi mod inst.nu in
      let f = build inst in
      let before = Dqbf.Reference.by_expansion f in
      Dqbf.Elim.universal f x;
      (not (F.is_universal f x))
      && Dqbf.Reference.by_expansion f = before)

let prop_thm1_repeated =
  QCheck.Test.make ~name:"eliminating every universal yields SAT problem" ~count:150
    instance_arb (fun inst ->
      let f = build inst in
      let before = Dqbf.Reference.by_expansion f in
      List.iter (Dqbf.Elim.universal f) (List.init inst.nu Fun.id);
      Bitset.is_empty (F.universals f) && Dqbf.Reference.by_expansion f = before)

let prop_thm2_preserves =
  QCheck.Test.make ~name:"Theorem 2 (existential elimination) preserves truth" ~count:250
    instance_arb (fun inst ->
      (* force one existential to depend on everything *)
      let inst =
        { inst with dep_masks = ((1 lsl inst.nu) - 1) :: List.tl inst.dep_masks }
      in
      let f = build inst in
      let before = Dqbf.Reference.by_expansion f in
      Dqbf.Elim.existential f inst.nu;
      Dqbf.Reference.by_expansion f = before)

let prop_thm2_requires_full_deps =
  QCheck.Test.make ~name:"Theorem 2 rejects partial dependency sets" ~count:50 instance_arb
    (fun inst ->
      QCheck.assume (inst.nu >= 1);
      let inst = { inst with dep_masks = 0 :: List.tl inst.dep_masks } in
      let f = build inst in
      try
        Dqbf.Elim.existential f inst.nu;
        false
      with Invalid_argument _ -> true)

let prop_unitpure_preserves =
  QCheck.Test.make ~name:"Theorem 5 (unit/pure elimination) preserves truth" ~count:300
    instance_arb (fun inst ->
      let f = build inst in
      let before = Dqbf.Reference.by_expansion f in
      match Dqbf.Elim.unit_pure_round f with
      | `Unsat -> before = false
      | `Eliminated _ | `None -> Dqbf.Reference.by_expansion f = before)

let prop_prune_preserves =
  QCheck.Test.make ~name:"prefix pruning preserves truth" ~count:200 instance_arb (fun inst ->
      let f = build inst in
      let before = Dqbf.Reference.by_expansion f in
      Dqbf.Elim.prune_prefix f;
      Dqbf.Reference.by_expansion f = before)

(* ------------------------------------------------------- elimination set *)

(* does eliminating [set] (uniform removal from every dep set) make all
   pairs comparable? *)
let set_linearizes f set =
  let removed = Bitset.of_list set in
  let ds = List.map (fun (_, d) -> Bitset.diff d removed) (F.existentials f) in
  let rec ok = function
    | [] -> true
    | d :: rest ->
        List.for_all (fun d' -> Bitset.subset d d' || Bitset.subset d' d) rest && ok rest
  in
  ok ds

let prop_elimset_linearizes =
  QCheck.Test.make ~name:"MaxSAT elimination set linearizes the prefix" ~count:200
    instance_arb (fun inst ->
      let f = build inst in
      set_linearizes f (Dqbf.Elimset.minimum_set f))

let prop_elimset_minimum =
  QCheck.Test.make ~name:"MaxSAT elimination set is minimum" ~count:200 instance_arb
    (fun inst ->
      let f = build inst in
      let set = Dqbf.Elimset.minimum_set f in
      let k = List.length set in
      (* no strictly smaller subset of universals linearizes *)
      let univs = Bitset.to_list (F.universals f) in
      let rec subsets acc = function
        | [] -> [ acc ]
        | x :: rest -> subsets acc rest @ subsets (x :: acc) rest
      in
      List.for_all
        (fun s -> List.length s >= k || not (set_linearizes f s))
        (subsets [] univs))

let prop_greedy_linearizes =
  QCheck.Test.make ~name:"greedy elimination set linearizes too" ~count:200 instance_arb
    (fun inst ->
      let f = build inst in
      let greedy = Dqbf.Elimset.greedy_all f in
      set_linearizes f greedy
      && List.length greedy >= List.length (Dqbf.Elimset.minimum_set f))

let test_ordered_queue () =
  let f = example1 ~crossed:false in
  (* |E_x1| = |{y1}| = 1, |E_x2| = 1; both orders fine, check it's a perm *)
  let q = Dqbf.Elimset.ordered_queue f [ 0; 1 ] in
  check "queue is permutation" true (List.sort Int.compare q = [ 0; 1 ]);
  check_int "E_x count" 1 (Dqbf.Elimset.elimination_count f 0)

(* --------------------------------------------------------------- pcnf *)

let test_pcnf_roundtrip () =
  let text = "c t\np cnf 4 2\na 1 2 0\nd 3 1 0\nd 4 2 0\n-3 1 0\n4 -2 0\n" in
  let p = Dqbf.Pcnf.parse_string text in
  check_int "vars" 4 p.Dqbf.Pcnf.num_vars;
  check "univs" true (p.Dqbf.Pcnf.univs = [ 0; 1 ]);
  check "exists" true (p.Dqbf.Pcnf.exists = [ (2, [ 0 ]); (3, [ 1 ]) ]);
  let p2 = Dqbf.Pcnf.parse_string (Dqbf.Pcnf.to_string p) in
  check "roundtrip" true (p = p2);
  check "valid" true (Dqbf.Pcnf.validate p = Ok ())

let test_pcnf_e_line_deps () =
  let text = "p cnf 3 1\na 1 0\ne 2 0\na 3 0\n1 2 3 0\n" in
  let p = Dqbf.Pcnf.parse_string text in
  (* e-declared var depends on universals declared so far: just x1 *)
  check "e deps" true (p.Dqbf.Pcnf.exists = [ (1, [ 0 ]) ]);
  check "univs" true (p.Dqbf.Pcnf.univs = [ 0; 2 ])

let test_pcnf_validate_errors () =
  let bad = { Dqbf.Pcnf.num_vars = 2; univs = [ 0; 0 ]; exists = []; clauses = [] } in
  check "dup decl" true (Result.is_error (Dqbf.Pcnf.validate bad));
  let bad2 = { Dqbf.Pcnf.num_vars = 2; univs = [ 0 ]; exists = [ (1, [ 1 ]) ]; clauses = [] } in
  check "dep not universal" true (Result.is_error (Dqbf.Pcnf.validate bad2))

let pcnf_of_instance inst =
  {
    Dqbf.Pcnf.num_vars = inst.nu + inst.ne;
    univs = List.init inst.nu Fun.id;
    exists =
      List.mapi
        (fun i mask ->
          (inst.nu + i, List.filter (fun x -> mask land (1 lsl x) <> 0) (List.init inst.nu Fun.id)))
        inst.dep_masks;
    clauses =
      List.map (List.map (fun (v, s) -> if s then -(v + 1) else v + 1)) inst.clauses;
  }

let prop_pcnf_to_formula_matches =
  QCheck.Test.make ~name:"pcnf to_formula matches direct construction" ~count:200 instance_arb
    (fun inst ->
      let f1 = build inst in
      let f2 = Dqbf.Pcnf.to_formula (pcnf_of_instance inst) in
      Dqbf.Reference.by_expansion f1 = Dqbf.Reference.by_expansion f2)

(* ---------------------------------------------------------- preprocessing *)

let prop_preprocess_preserves =
  QCheck.Test.make ~name:"CNF preprocessing preserves truth" ~count:400 instance_arb
    (fun inst ->
      let pcnf = pcnf_of_instance inst in
      let reference = Dqbf.Reference.by_expansion (Dqbf.Pcnf.to_formula pcnf) in
      match Dqbf.Preprocess.run pcnf with
      | Dqbf.Preprocess.Unsat -> reference = false
      | Dqbf.Preprocess.Formula (f, _) -> Dqbf.Reference.by_expansion f = reference)

let test_preprocess_universal_unit () =
  (* a universal unit clause refutes the formula *)
  let pcnf =
    { Dqbf.Pcnf.num_vars = 2; univs = [ 0 ]; exists = [ (1, [ 0 ]) ]; clauses = [ [ 1 ]; [ 2; -1 ] ] }
  in
  check "unsat" true (Dqbf.Preprocess.run pcnf = Dqbf.Preprocess.Unsat)

let test_preprocess_universal_reduction () =
  (* clause (x1 | y) where y does not depend on x1: x1 is reduced away,
     leaving unit y *)
  let pcnf =
    { Dqbf.Pcnf.num_vars = 2; univs = [ 0 ]; exists = [ (1, []) ]; clauses = [ [ 1; 2 ] ] }
  in
  match Dqbf.Preprocess.run pcnf with
  | Dqbf.Preprocess.Unsat -> Alcotest.fail "not unsat"
  | Dqbf.Preprocess.Formula (f, stats) ->
      check_int "one reduction" 1 stats.Dqbf.Preprocess.reduced_lits;
      check_int "one unit" 1 stats.Dqbf.Preprocess.units;
      check "matrix true" true (M.is_true (F.matrix f))

let test_preprocess_equiv_universal_unsat () =
  (* y = x forced but x not in D_y: unsatisfiable *)
  let pcnf =
    {
      Dqbf.Pcnf.num_vars = 2;
      univs = [ 0 ];
      exists = [ (1, []) ];
      clauses = [ [ 1; -2 ]; [ -1; 2 ] ];
    }
  in
  check "unsat" true (Dqbf.Preprocess.run pcnf = Dqbf.Preprocess.Unsat)

let test_preprocess_equiv_merge_deps () =
  (* y2(x1) = y3(x2) forced: representative keeps the intersection (empty) *)
  let pcnf =
    {
      Dqbf.Pcnf.num_vars = 4;
      univs = [ 0; 1 ];
      exists = [ (2, [ 0 ]); (3, [ 1 ]) ];
      clauses = [ [ 3; -4 ]; [ -3; 4 ]; [ 3; 1; 2 ] ];
    }
  in
  match Dqbf.Preprocess.run pcnf with
  | Dqbf.Preprocess.Unsat -> Alcotest.fail "not unsat"
  | Dqbf.Preprocess.Formula (f, stats) ->
      check_int "one merge" 1 stats.Dqbf.Preprocess.equivs;
      (* the merged variable's dependency set becomes empty, so universal
         reduction strips the remaining clause down to a unit, which is then
         propagated: the whole formula collapses to true *)
      check_int "unit propagated" 1 stats.Dqbf.Preprocess.units;
      check "matrix true" true (M.is_true (F.matrix f))

let test_preprocess_gate_detection () =
  (* Tseitin AND gate g = a & b (vars a=1, b=2, g=3), plus a ternary use
     clause (g | a | b) that matches no gate pattern itself *)
  let pcnf =
    {
      Dqbf.Pcnf.num_vars = 4;
      univs = [ 0 ];
      exists = [ (1, [ 0 ]); (2, [ 0 ]); (3, [ 0 ]) ];
      clauses = [ [ -4; 2 ]; [ -4; 3 ]; [ 4; -2; -3 ]; [ 4; 2; 3 ] ];
    }
  in
  (* inproc off: this test exercises the legacy gate detector on the exact
     Tseitin clause pattern, which the engine's self-subsumption rewrites *)
  let config =
    { Dqbf.Preprocess.default_config with Dqbf.Preprocess.inproc = Inproc.Off }
  in
  match Dqbf.Preprocess.run ~config pcnf with
  | Dqbf.Preprocess.Unsat -> Alcotest.fail "not unsat"
  | Dqbf.Preprocess.Formula (f, stats) ->
      check_int "one gate" 1 stats.Dqbf.Preprocess.gates;
      check "g gone from prefix" false (F.is_existential f 3);
      (* semantics: exists a b: (a&b) | a | b  -- satisfiable *)
      check "still satisfiable" true (Dqbf.Reference.by_expansion f)

let test_preprocess_xor_gate () =
  (* Tseitin XOR gate g = a ^ b: four all-odd clauses, plus a use (g | a) *)
  let pcnf =
    {
      Dqbf.Pcnf.num_vars = 4;
      univs = [ 0 ];
      exists = [ (1, [ 0 ]); (2, [ 0 ]); (3, [ 0 ]) ];
      clauses =
        [ [ -4; 2; 3 ]; [ -4; -2; -3 ]; [ 4; -2; 3 ]; [ 4; 2; -3 ]; [ 4; 2 ] ];
    }
  in
  let reference = Dqbf.Reference.by_expansion (Dqbf.Pcnf.to_formula pcnf) in
  let config =
    { Dqbf.Preprocess.default_config with Dqbf.Preprocess.inproc = Inproc.Off }
  in
  match Dqbf.Preprocess.run ~config pcnf with
  | Dqbf.Preprocess.Unsat -> Alcotest.fail "not unsat"
  | Dqbf.Preprocess.Formula (f, stats) ->
      check "xor gate found" true (stats.Dqbf.Preprocess.gates >= 1);
      check "semantics preserved" reference (Dqbf.Reference.by_expansion f)

let bce_config = { Dqbf.Preprocess.default_config with Dqbf.Preprocess.blocked_clauses = true }

let prop_preprocess_bce_preserves =
  QCheck.Test.make ~name:"blocked clause elimination preserves truth" ~count:400 instance_arb
    (fun inst ->
      let pcnf = pcnf_of_instance inst in
      let reference = Dqbf.Reference.by_expansion (Dqbf.Pcnf.to_formula pcnf) in
      match Dqbf.Preprocess.run ~config:bce_config pcnf with
      | Dqbf.Preprocess.Unsat -> reference = false
      | Dqbf.Preprocess.Formula (f, _) -> Dqbf.Reference.by_expansion f = reference)

let test_bce_removes_blocked () =
  (* y occurs only positively except in (y | x) vs (!y | !x): the clause
     (y | x) is blocked by y (the resolvent with (!y | !x) is a tautology
     on x, and x is in D_y) *)
  let pcnf =
    {
      Dqbf.Pcnf.num_vars = 3;
      univs = [ 0 ];
      exists = [ (1, [ 0 ]); (2, [ 0 ]) ];
      clauses = [ [ 2; 1 ]; [ -2; -1 ]; [ 2; 3 ]; [ -2; 3 ] ];
    }
  in
  let config =
    {
      Dqbf.Preprocess.off with
      Dqbf.Preprocess.blocked_clauses = true;
    }
  in
  match Dqbf.Preprocess.run ~config pcnf with
  | Dqbf.Preprocess.Unsat -> Alcotest.fail "not unsat"
  | Dqbf.Preprocess.Formula (_, stats) ->
      check "clauses removed" true (stats.Dqbf.Preprocess.blocked > 0)

let prop_preprocess_ablations_preserve =
  QCheck.Test.make ~name:"each preprocessing stage alone preserves truth" ~count:150
    instance_arb (fun inst ->
      let pcnf = pcnf_of_instance inst in
      let reference = Dqbf.Reference.by_expansion (Dqbf.Pcnf.to_formula pcnf) in
      let configs =
        [
          { Dqbf.Preprocess.off with Dqbf.Preprocess.unit_propagation = true };
          { Dqbf.Preprocess.off with Dqbf.Preprocess.universal_reduction = true };
          { Dqbf.Preprocess.off with Dqbf.Preprocess.equivalences = true };
          { Dqbf.Preprocess.off with Dqbf.Preprocess.gate_detection = true };
        ]
      in
      List.for_all
        (fun config ->
          match Dqbf.Preprocess.run ~config pcnf with
          | Dqbf.Preprocess.Unsat -> reference = false
          | Dqbf.Preprocess.Formula (f, _) -> Dqbf.Reference.by_expansion f = reference)
        configs)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dqbf"
    [
      ( "known",
        [
          Alcotest.test_case "example 1 sat" `Quick test_example1_sat;
          Alcotest.test_case "example 1 unsat" `Quick test_example1_unsat;
          Alcotest.test_case "example 1 dependency graph" `Quick test_example1_depgraph;
          Alcotest.test_case "acyclic prefix construction" `Quick test_acyclic_prefix;
          Alcotest.test_case "ordered queue" `Quick test_ordered_queue;
        ] );
      ("references", qsuite [ prop_expansion_vs_skolem ]);
      ( "eliminations",
        qsuite
          [
            prop_thm1_preserves;
            prop_thm1_repeated;
            prop_thm2_preserves;
            prop_thm2_requires_full_deps;
            prop_unitpure_preserves;
            prop_prune_preserves;
          ] );
      ( "elimset",
        qsuite [ prop_elimset_linearizes; prop_elimset_minimum; prop_greedy_linearizes ] );
      ( "pcnf",
        [
          Alcotest.test_case "roundtrip" `Quick test_pcnf_roundtrip;
          Alcotest.test_case "e-line dependencies" `Quick test_pcnf_e_line_deps;
          Alcotest.test_case "validation errors" `Quick test_pcnf_validate_errors;
        ]
        @ qsuite [ prop_pcnf_to_formula_matches ] );
      ( "preprocess",
        [
          Alcotest.test_case "universal unit refutes" `Quick test_preprocess_universal_unit;
          Alcotest.test_case "universal reduction" `Quick test_preprocess_universal_reduction;
          Alcotest.test_case "equivalence with universal" `Quick test_preprocess_equiv_universal_unsat;
          Alcotest.test_case "equivalence merges deps" `Quick test_preprocess_equiv_merge_deps;
          Alcotest.test_case "gate detection" `Quick test_preprocess_gate_detection;
          Alcotest.test_case "xor gate detection" `Quick test_preprocess_xor_gate;
        ]
        @ [ Alcotest.test_case "bce removes blocked clauses" `Quick test_bce_removes_blocked ]
        @ qsuite
            [
              prop_preprocess_preserves;
              prop_preprocess_bce_preserves;
              prop_preprocess_ablations_preserve;
            ] );
    ]
