module R = Harness.Runner
module Fam = Circuit.Families

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_sat = Fam.pec_xor ~length:3 ~boxes:1 ~fault:false
let small_unsat = Fam.pec_xor ~length:3 ~boxes:1 ~fault:true

(* ---------------------------------------------------------------- runner *)

let test_run_hqs_solves () =
  (match fst (R.run_hqs ~timeout:30.0 ~node_limit:400_000 small_sat.Fam.pcnf) with
  | R.Solved (true, t) -> check "positive time" true (t >= 0.0)
  | _ -> Alcotest.fail "expected SAT");
  match fst (R.run_hqs ~timeout:30.0 ~node_limit:400_000 small_unsat.Fam.pcnf) with
  | R.Solved (false, _) -> ()
  | _ -> Alcotest.fail "expected UNSAT"

let test_run_hqs_timeout () =
  let hard = Fam.adder ~bits:6 ~boxes:3 ~fault:false in
  match fst (R.run_hqs ~timeout:0.02 ~node_limit:50_000_000 hard.Fam.pcnf) with
  | R.Timeout _ -> ()
  | R.Memout _ -> () (* also acceptable on a tiny machine *)
  | R.Solved _ -> Alcotest.fail "expected an abort"
  | R.Crash _ -> Alcotest.fail "expected an abort, got a crash"

let test_run_hqs_memout () =
  let inst = Fam.adder ~bits:4 ~boxes:2 ~fault:false in
  match fst (R.run_hqs ~timeout:60.0 ~node_limit:64 inst.Fam.pcnf) with
  | R.Memout _ -> ()
  | R.Timeout _ -> Alcotest.fail "expected memout, got timeout"
  | R.Solved _ -> Alcotest.fail "expected memout, got solved"
  | R.Crash _ -> Alcotest.fail "expected memout, got crash"

let test_run_instance_agreement () =
  let r = R.run_instance ~timeout:20.0 ~node_limit:400_000 small_unsat in
  check "both solved" true (R.is_solved r.R.hqs && R.is_solved r.R.idq);
  check "family" true (r.R.family = "pec_xor");
  check "consistent" true (r.R.soundness = R.Consistent);
  check "times readable" true (R.time_of r.R.hqs >= 0.0 && R.time_of r.R.idq >= 0.0)

(* ---------------------------------------------------------------- report *)

let fake_results =
  [
    {
      R.id = "a1";
      family = "adder";
      sat_expected = None;
      hqs = R.Solved (true, 0.1);
      idq = R.Solved (true, 2.0);
      hqs_degraded = [];
      hqs_stats = None;
      soundness = R.Consistent;
      attempts = 1;
      worker_pid = None;
      cert_path = None;
    };
    {
      R.id = "a2";
      family = "adder";
      sat_expected = None;
      hqs = R.Solved (false, 0.2);
      idq = R.Timeout 5.0;
      hqs_degraded = [ "maxsat.minset->greedy[timeout]" ];
      hqs_stats = None;
      soundness = R.Consistent;
      attempts = 1;
      worker_pid = None;
      cert_path = None;
    };
    {
      R.id = "b1";
      family = "bitcell";
      sat_expected = None;
      hqs = R.Memout 3.0;
      idq = R.Solved (false, 0.5);
      hqs_degraded = [];
      hqs_stats = None;
      soundness = R.Consistent;
      attempts = 1;
      worker_pid = None;
      cert_path = None;
    };
  ]

let test_table1_shape () =
  let t = Harness.Report.table1 fake_results in
  let lines = String.split_on_char '\n' t in
  (* header + separator + 2 family rows + separator + total row + trailing *)
  check "adder row" true (List.exists (fun l -> String.length l > 5 && String.sub l 0 5 = "adder") lines);
  check "bitcell row" true
    (List.exists (fun l -> String.length l > 7 && String.sub l 0 7 = "bitcell") lines);
  check "total row" true (List.exists (fun l -> String.length l > 5 && String.sub l 0 5 = "total") lines);
  (* common time: only a1 is solved by both -> hqs 0.1, idq 2.0 *)
  check "hqs common time" true
    (let re = Str.regexp_string "0.10" in
     try
       ignore (Str.search_forward re t 0);
       true
     with Not_found -> false)

let test_fig4_contains_points () =
  let s = Harness.Report.fig4 ~timeout:5.0 fake_results in
  check "series row" true
    (let re = Str.regexp_string "a1" in
     try
       ignore (Str.search_forward re s 0);
       true
     with Not_found -> false);
  check "TO marker" true
    (let re = Str.regexp_string "TO" in
     try
       ignore (Str.search_forward re s 0);
       true
     with Not_found -> false);
  check "plot axis" true
    (let re = Str.regexp_string "iDQ time" in
     try
       ignore (Str.search_forward re s 0);
       true
     with Not_found -> false)

let test_headline_counts () =
  let s = Harness.Report.headline fake_results in
  check "solved counts" true
    (let re = Str.regexp_string "solved by HQS: 2, by iDQ: 2" in
     try
       ignore (Str.search_forward re s 0);
       true
     with Not_found -> false);
  check "idq-not-hqs" true
    (let re = Str.regexp_string "solved by iDQ but not HQS: 1" in
     try
       ignore (Str.search_forward re s 0);
       true
     with Not_found -> false)

let test_csv_lines () =
  let s = Harness.Report.csv fake_results in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  check_int "header + one line per result" 4 (List.length lines);
  check "memout cell" true
    (let re = Str.regexp_string "MO" in
     try
       ignore (Str.search_forward re s 0);
       true
     with Not_found -> false)

let contains s needle =
  let re = Str.regexp_string needle in
  try
    ignore (Str.search_forward re s 0);
    true
  with Not_found -> false

let test_degradation_column () =
  let t = Harness.Report.table1 fake_results in
  check "degr header" true (contains t "degr");
  let s = Harness.Report.csv fake_results in
  check "csv degradation label" true (contains s "maxsat.minset->greedy[timeout]")

let disagreeing_results =
  fake_results
  @ [
      {
        R.id = "x1";
        family = "adder";
        sat_expected = None;
        hqs = R.Solved (true, 0.1);
        idq = R.Solved (false, 0.1);
        hqs_degraded = [];
        hqs_stats = None;
        soundness = R.Disagreement { hqs_sat = true; idq_sat = false };
        attempts = 1;
        worker_pid = None;
        cert_path = None;
      };
    ]

let test_disagreement_reported () =
  check "table flags alarm" true
    (contains (Harness.Report.table1 disagreeing_results) "SOUNDNESS ALARM");
  check "table names instance" true (contains (Harness.Report.table1 disagreeing_results) "x1");
  check "csv flags disagree" true (contains (Harness.Report.csv disagreeing_results) "DISAGREE");
  check "headline flags alarm" true
    (contains (Harness.Report.headline disagreeing_results) "disagreements: 1");
  (* clean results stay quiet *)
  check "no alarm when consistent" false
    (contains (Harness.Report.table1 fake_results) "SOUNDNESS ALARM")

let crashy_results =
  fake_results
  @ [
      {
        R.id = "c1";
        family = "bitcell";
        sat_expected = None;
        hqs = R.Crash 0.4;
        idq = R.Solved (false, 0.5);
        hqs_degraded = [];
        hqs_stats = None;
        soundness = R.Consistent;
        attempts = 3;
        worker_pid = Some 1234;
        cert_path = None;
      };
    ]

let test_crash_reported () =
  let t = Harness.Report.table1 crashy_results in
  check "table names quarantined instance" true (contains t "CRASH: 1 instance(s)");
  check "table names id" true (contains t "c1");
  let s = Harness.Report.csv crashy_results in
  check "csv crash outcome cell" true (contains s "CRASH,0.400");
  check "csv executor cells" true (contains s ",crash,3,1234");
  check "fig4 crash rail" true (contains (Harness.Report.fig4 crashy_results) "CR");
  (* a crash counts as unsolved in the headline *)
  check "headline unchanged solved count" true
    (contains (Harness.Report.headline crashy_results) "solved by HQS: 2")

let test_csv_executor_columns () =
  let s = Harness.Report.csv fake_results in
  let header = List.hd (String.split_on_char '\n' s) in
  (* pre-existing prefix is byte-stable; the executor block is appended *)
  check "stable prefix" true
    (let prefix = "id,family,hqs_outcome,hqs_time,idq_outcome,idq_time,hqs_degraded" in
     let n = String.length prefix in
     String.length header > n && String.sub header 0 n = prefix);
  check "executor, analysis, inproc then cert columns last" true
    (let suffix =
       ",outcome,attempts,worker_pid,hqs_dep_scheme,hqs_analysis_edges_pruned,hqs_analysis_linearized,hqs_inproc_mode,hqs_inproc_rounds,hqs_inproc_units,hqs_inproc_scc_merges,hqs_inproc_subsumed,hqs_inproc_strengthened,hqs_inproc_failed_lits,hqs_inproc_bve,hqs_inproc_clauses_removed,hqs_inproc_lits_removed,hqs_cert_status,cert"
     in
     let n = String.length header and m = String.length suffix in
     n > m && String.sub header (n - m) m = suffix);
  check "in-process rows: solved, 1 attempt, empty pid, blank analysis/inproc/cert cells"
    true
    (contains s ",solved,1,,,,,,,,,,,,,,,,\n")

(* regression for the BENCH_analysis.json sentinel leak: a run without
   stats must render as JSON [null], never as [-1] (which downstream
   sums and CSV imports would treat as real data) *)
let test_json_null_cells () =
  Alcotest.(check string) "present int" "7" (Harness.Report.json_int_cell (Some 7));
  Alcotest.(check string) "absent int is null" "null" (Harness.Report.json_int_cell None);
  Alcotest.(check string) "present bool" "true" (Harness.Report.json_bool_cell (Some true));
  Alcotest.(check string) "absent bool is null" "null" (Harness.Report.json_bool_cell None);
  (* the cell must parse as JSON null, not as a number *)
  (match Obs.Json.parse (Harness.Report.json_int_cell None) with
  | Ok Obs.Json.Null -> ()
  | Ok _ -> Alcotest.fail "null cell parsed as a value"
  | Error e -> Alcotest.failf "null cell unparsable: %s" e);
  (* and a baseline row built from it must never contain a -1 sentinel *)
  let row =
    Printf.sprintf "{ \"maxsat_set_rp\": %s, \"edges_pruned\": %s }"
      (Harness.Report.json_int_cell None)
      (Harness.Report.json_int_cell None)
  in
  check "no sentinel in rendered row" false (contains row "-1")

let () =
  Alcotest.run "harness"
    [
      ( "runner",
        [
          Alcotest.test_case "solves" `Slow test_run_hqs_solves;
          Alcotest.test_case "timeout" `Quick test_run_hqs_timeout;
          Alcotest.test_case "memout" `Quick test_run_hqs_memout;
          Alcotest.test_case "instance agreement" `Slow test_run_instance_agreement;
        ] );
      ( "report",
        [
          Alcotest.test_case "table1 shape" `Quick test_table1_shape;
          Alcotest.test_case "fig4 content" `Quick test_fig4_contains_points;
          Alcotest.test_case "headline counts" `Quick test_headline_counts;
          Alcotest.test_case "csv lines" `Quick test_csv_lines;
          Alcotest.test_case "degradation column" `Quick test_degradation_column;
          Alcotest.test_case "disagreement reported" `Quick test_disagreement_reported;
          Alcotest.test_case "crash reported" `Quick test_crash_reported;
          Alcotest.test_case "csv executor columns" `Quick test_csv_executor_columns;
          Alcotest.test_case "json null cells" `Quick test_json_null_cells;
        ] );
    ]
