(* Canonicalizer tests: the serve daemon's cache key must be invariant
   under dependency-respecting renaming and clause shuffling, and must
   separate instances whose Henkin dependency structure differs (a
   collision there would let the cache hand out a wrong verdict). *)

module P = Dqbf.Pcnf
module Canon = Dqbf.Canon

let check = Alcotest.(check bool)

(* ------------------------------------------------------------ generators *)

(* same instance shape as test_dqbf: universals 0..nu-1, existentials
   nu..nu+ne-1 with random dependency masks, random CNF matrix *)
type instance = {
  nu : int;
  ne : int;
  dep_masks : int list;
  clauses : (int * bool) list list;
}

let instance_gen =
  QCheck.Gen.(
    int_range 1 3 >>= fun nu ->
    int_range 1 3 >>= fun ne ->
    list_repeat ne (int_bound ((1 lsl nu) - 1)) >>= fun dep_masks ->
    let n = nu + ne in
    list_size (int_range 1 12) (list_size (int_range 1 3) (pair (int_bound (n - 1)) bool))
    >>= fun clauses ->
    int_bound 1_000_000 >>= fun seed -> return ({ nu; ne; dep_masks; clauses }, seed))

let instance_print ({ nu; ne; dep_masks; clauses }, seed) =
  Printf.sprintf "nu=%d ne=%d deps=[%s] seed=%d clauses=%s" nu ne
    (String.concat ";" (List.map string_of_int dep_masks))
    seed
    (String.concat " "
       (List.map
          (fun c ->
            String.concat ","
              (List.map (fun (v, s) -> string_of_int (if s then -(v + 1) else v + 1)) c))
          clauses))

let instance_arb = QCheck.make ~print:instance_print instance_gen

let to_pcnf { nu; ne; dep_masks; clauses } =
  let exists =
    List.mapi
      (fun i mask ->
        (nu + i, List.filter (fun x -> mask land (1 lsl x) <> 0) (List.init nu Fun.id)))
      dep_masks
  in
  {
    P.num_vars = nu + ne;
    P.univs = List.init nu Fun.id;
    P.exists;
    P.clauses =
      List.map (List.map (fun (v, s) -> if s then -(v + 1) else v + 1)) clauses;
  }

(* ---------------------------------------------- renaming and shuffling *)

let shuffle st l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

(* a dependency-respecting renaming: universals permute among
   themselves, existentials among themselves, dependency sets are mapped
   along; clause order, literal order, and declaration order are all
   shuffled on top *)
let rename_shuffle ~seed (p : P.t) =
  let st = Random.State.make [| seed |] in
  let perm = Array.init p.P.num_vars Fun.id in
  let apply_cycle ids =
    let shuffled = shuffle st ids in
    List.iter2 (fun v v' -> perm.(v) <- v') ids shuffled
  in
  apply_cycle p.P.univs;
  apply_cycle (List.map fst p.P.exists);
  let map_lit l =
    let v = abs l - 1 in
    let v' = perm.(v) in
    if l < 0 then -(v' + 1) else v' + 1
  in
  {
    P.num_vars = p.P.num_vars;
    P.univs = shuffle st (List.map (fun v -> perm.(v)) p.P.univs);
    P.exists =
      shuffle st
        (List.map
           (fun (y, deps) -> (perm.(y), shuffle st (List.map (fun x -> perm.(x)) deps)))
           p.P.exists);
    P.clauses = shuffle st (List.map (fun c -> shuffle st (List.map map_lit c)) p.P.clauses);
  }

(* ------------------------------------------------------------ properties *)

let prop_invariance =
  QCheck.Test.make ~name:"renaming+shuffle preserves the canonical key" ~count:300
    instance_arb (fun (inst, seed) ->
      let p = to_pcnf inst in
      let c1 = Canon.canonicalize p in
      let c2 = Canon.canonicalize (rename_shuffle ~seed p) in
      c1.Canon.key.Canon.h1 = c2.Canon.key.Canon.h1
      && c1.Canon.key.Canon.h2 = c2.Canon.key.Canon.h2
      && String.equal c1.Canon.canonical c2.Canon.canonical)

let prop_exact_small =
  QCheck.Test.make ~name:"small instances canonicalize exactly" ~count:300 instance_arb
    (fun (inst, _) -> (Canon.canonicalize (to_pcnf inst)).Canon.exact)

(* the cache contract: a hit (same canonical key) must return the verdict
   a fresh solve would. Renamed instances are exactly the hits the
   canonicalizer creates, so their verdicts must agree with the original. *)
let prop_cached_verdict =
  QCheck.Test.make ~name:"renamed instance solves to the cached verdict" ~count:60
    instance_arb (fun (inst, seed) ->
      let p = to_pcnf inst in
      let renamed = rename_shuffle ~seed p in
      let v1, _ = Hqs.solve_pcnf p and v2, _ = Hqs.solve_pcnf renamed in
      v1 = v2)

(* ------------------------------------------------------- negative tests *)

(* y <-> x1 under four different Henkin dependency sets for y. The
   matrix pins x1 (it appears in clauses), so no renaming maps one
   dependency set onto another: all four keys must be pairwise distinct.
   Verdicts differ across them (dep {x1} is SAT, dep {x2} is UNSAT), so
   a collision here would poison the cache with a wrong verdict. *)
let test_dep_sets_never_collide () =
  let mk deps =
    {
      P.num_vars = 3;
      P.univs = [ 0; 1 ];
      P.exists = [ (2, deps) ];
      P.clauses = [ [ -1; 3 ]; [ 1; -3 ] ];
    }
  in
  let variants = [ []; [ 0 ]; [ 1 ]; [ 0; 1 ] ] in
  let keys = List.map (fun d -> (Canon.canonicalize (mk d)).Canon.key) variants in
  List.iteri
    (fun i ki ->
      List.iteri
        (fun j kj ->
          if i < j then begin
            check
              (Printf.sprintf "dep variants %d and %d get distinct h1" i j)
              false
              (String.equal ki.Canon.h1 kj.Canon.h1);
            check
              (Printf.sprintf "dep variants %d and %d get distinct h2" i j)
              false
              (String.equal ki.Canon.h2 kj.Canon.h2)
          end)
        keys)
    keys;
  (* sanity: the verdicts really do differ across these keys *)
  let v deps = fst (Hqs.solve_pcnf (mk deps)) in
  check "dep {x1} is SAT" true (v [ 0 ] = Hqs.Sat);
  check "dep {x2} is UNSAT" true (v [ 1 ] = Hqs.Unsat)

(* symmetric-in-universals matrix: deps {x1} and {x2} are the same
   instance up to renaming and SHOULD share a key, while dep-set sizes
   0/1/2 must stay separated *)
let test_symmetric_deps_merge () =
  let mk deps =
    {
      P.num_vars = 3;
      P.univs = [ 0; 1 ];
      P.exists = [ (2, deps) ];
      P.clauses = [ [ 1; 2; 3 ]; [ -1; -2; -3 ] ];
    }
  in
  let key d = (Canon.canonicalize (mk d)).Canon.key in
  check "dep {x1} and {x2} merge" true (String.equal (key [ 0 ]).Canon.h1 (key [ 1 ]).Canon.h1);
  check "sizes 0 and 1 separate" false
    (String.equal (key []).Canon.h1 (key [ 0 ]).Canon.h1);
  check "sizes 1 and 2 separate" false
    (String.equal (key [ 0 ]).Canon.h1 (key [ 0; 1 ]).Canon.h1)

let test_key_shape () =
  let c =
    Canon.canonicalize
      (P.parse_string "p cnf 2 2\na 1 0\nd 2 1 0\n1 -2 0\n-1 2 0\n")
  in
  check "h1 is lowercase hex, >= 15 digits" true
    (String.length c.Canon.key.Canon.h1 >= 15
    && String.for_all
         (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
         c.Canon.key.Canon.h1);
  check "h2 independent of h1" false (String.equal c.Canon.key.Canon.h1 c.Canon.key.Canon.h2);
  Alcotest.(check int) "num_vars" 2 c.Canon.key.Canon.num_vars;
  Alcotest.(check int) "num_clauses" 2 c.Canon.key.Canon.num_clauses

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "canon"
    [
      ( "properties",
        qsuite [ prop_invariance; prop_exact_small; prop_cached_verdict ] );
      ( "structure",
        [
          Alcotest.test_case "dep sets never collide" `Quick test_dep_sets_never_collide;
          Alcotest.test_case "symmetric deps merge" `Quick test_symmetric_deps_merge;
          Alcotest.test_case "key shape" `Quick test_key_shape;
        ] );
    ]
