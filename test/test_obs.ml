(* The observability layer: metric arithmetic, span nesting, Chrome
   trace well-formedness (checked with the built-in JSON parser), the
   disabled no-op guarantee, and an end-to-end solve whose trace must
   show the pipeline stages in order. *)

module Fam = Circuit.Families

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* fresh per-test trace state; metrics are process-global by design, so
   tests only assert on deltas or on uniquely-named series *)
let with_tracing f =
  Obs.Trace.reset ();
  Obs.Trace.start ();
  match f () with
  | v ->
      Obs.Trace.stop ();
      v
  | exception e ->
      Obs.Trace.stop ();
      raise e

(* ---------------------------------------------------------------- metrics *)

let test_counter () =
  let c = Obs.Metrics.counter "t.counter" in
  let v0 = Obs.Metrics.counter_value c in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:41 c;
  check_int "counter adds" (v0 + 42) (Obs.Metrics.counter_value c);
  (* registration is idempotent: same name, same cell *)
  let c' = Obs.Metrics.counter "t.counter" in
  Obs.Metrics.incr c';
  check_int "same cell" (v0 + 43) (Obs.Metrics.counter_value c)

let test_gauge () =
  let g = Obs.Metrics.gauge "t.gauge" in
  Obs.Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "set" 2.5 (Obs.Metrics.gauge_value g);
  Obs.Metrics.set_max g 1.0;
  Alcotest.(check (float 0.0)) "set_max keeps larger" 2.5 (Obs.Metrics.gauge_value g);
  Obs.Metrics.set_max g 9.0;
  Alcotest.(check (float 0.0)) "set_max takes larger" 9.0 (Obs.Metrics.gauge_value g)

let test_histogram () =
  let h = Obs.Metrics.histogram "t.hist" in
  List.iter (fun v -> Obs.Metrics.observe h v) [ 3.0; 1.0; 2.0 ];
  let s = Obs.Metrics.histogram_stats h in
  check_int "count" 3 s.Obs.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 6.0 s.Obs.Metrics.sum;
  Alcotest.(check (float 0.0)) "min" 1.0 s.Obs.Metrics.min_;
  Alcotest.(check (float 0.0)) "max" 3.0 s.Obs.Metrics.max_

let test_kind_clash () =
  let _ = Obs.Metrics.counter "t.clash" in
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Obs.Metrics: t.clash already registered as another kind") (fun () ->
      ignore (Obs.Metrics.gauge "t.clash"))

let test_snapshot_delta () =
  let c = Obs.Metrics.counter "t.delta.c" in
  let g = Obs.Metrics.gauge "t.delta.g" in
  let h = Obs.Metrics.histogram "t.delta.h" in
  Obs.Metrics.incr c;
  Obs.Metrics.observe h 10.0;
  let before = Obs.Metrics.snapshot () in
  (* snapshot is sorted by name *)
  let names = List.map (fun s -> s.Obs.Metrics.name) before in
  check "snapshot sorted" true (List.sort String.compare names = names);
  Obs.Metrics.incr ~by:7 c;
  Obs.Metrics.set g 5.0;
  Obs.Metrics.observe h 2.0;
  let delta = Obs.Metrics.delta ~before ~after:(Obs.Metrics.snapshot ()) in
  let get n = match Obs.Metrics.find delta n with Some v -> v | None -> nan in
  Alcotest.(check (float 0.0)) "counter delta" 7.0 (get "t.delta.c");
  Alcotest.(check (float 0.0)) "gauge passes through" 5.0 (get "t.delta.g");
  Alcotest.(check (float 0.0)) "hist count delta" 1.0 (get "t.delta.h.count");
  Alcotest.(check (float 0.0)) "hist sum delta" 2.0 (get "t.delta.h.sum")

let test_window_quantiles () =
  let w = Obs.Metrics.window ~capacity:4 "t.win" in
  check "empty window is nan" true (Float.is_nan (Obs.Metrics.quantile w 0.5));
  check_int "empty count" 0 (Obs.Metrics.window_count w);
  Obs.Metrics.wobserve w 10.0;
  (* a single observation is every quantile *)
  Alcotest.(check (float 0.0)) "p0 of one" 10.0 (Obs.Metrics.quantile w 0.0);
  Alcotest.(check (float 0.0)) "p100 of one" 10.0 (Obs.Metrics.quantile w 1.0);
  List.iter (Obs.Metrics.wobserve w) [ 20.0; 30.0; 40.0 ];
  check_int "full window" 4 (Obs.Metrics.window_count w);
  (* nearest-rank at the exact window edges *)
  Alcotest.(check (float 0.0)) "p0 is min" 10.0 (Obs.Metrics.quantile w 0.0);
  Alcotest.(check (float 0.0)) "p50" 20.0 (Obs.Metrics.quantile w 0.5);
  Alcotest.(check (float 0.0)) "p100 is max" 40.0 (Obs.Metrics.quantile w 1.0);
  (* out-of-range q clamps instead of raising *)
  Alcotest.(check (float 0.0)) "q below 0 clamps" 10.0 (Obs.Metrics.quantile w (-3.0));
  Alcotest.(check (float 0.0)) "q above 1 clamps" 40.0 (Obs.Metrics.quantile w 7.0);
  (* wrap past capacity: the oldest observation falls out of the ring *)
  Obs.Metrics.wobserve w 50.0;
  check_int "count capped at capacity" 4 (Obs.Metrics.window_count w);
  Alcotest.(check (float 0.0)) "evicted oldest" 20.0 (Obs.Metrics.quantile w 0.0);
  Alcotest.(check (float 0.0)) "p50 tracks the window" 30.0 (Obs.Metrics.quantile w 0.5);
  Alcotest.(check (float 0.0)) "newest is max" 50.0 (Obs.Metrics.quantile w 1.0);
  (* windows live outside the snapshot registry: frame and BENCH formats
     must not grow a key per window *)
  check "excluded from snapshot" true
    (List.for_all
       (fun s -> not (String.equal s.Obs.Metrics.name "t.win"))
       (Obs.Metrics.snapshot ()))

(* ------------------------------------------------------------------ spans *)

let test_span_nesting () =
  with_tracing (fun () ->
      Obs.Span.with_ "outer" (fun () ->
          check_str "current" "outer" (Option.value ~default:"?" (Obs.Span.current ()));
          check_int "depth" 1 (Obs.Trace.depth ());
          Obs.Span.with_ "inner" (fun () -> check_int "depth" 2 (Obs.Trace.depth ()));
          Obs.Span.event "mark" ()));
  let evs = Obs.Trace.events () in
  let shape =
    List.map
      (fun e ->
        ( e.Obs.Trace.name,
          match e.Obs.Trace.ph with
          | Obs.Trace.Begin -> "B"
          | Obs.Trace.End -> "E"
          | Obs.Trace.Instant -> "i" ))
      evs
  in
  Alcotest.(check (list (pair string string)))
    "event order"
    [ ("outer", "B"); ("inner", "B"); ("inner", "E"); ("mark", "i"); ("outer", "E") ]
    shape;
  (* timestamps are monotone *)
  let ts = List.map (fun e -> e.Obs.Trace.ts_us) evs in
  check "monotone ts" true (List.sort Float.compare ts = ts);
  check_int "nothing dropped" 0 (Obs.Trace.dropped ())

let test_span_exception () =
  let seen = ref false in
  (try
     with_tracing (fun () ->
         Obs.Span.with_ "boom" (fun () -> raise Exit))
   with Exit -> seen := true);
  check "exception propagates" true !seen;
  match List.rev (Obs.Trace.events ()) with
  | last :: _ ->
      check_str "span still closed" "boom" last.Obs.Trace.name;
      check "flagged as raised" true
        (List.exists (fun (k, _) -> String.equal k "raised") last.Obs.Trace.attrs)
  | [] -> Alcotest.fail "no events recorded"

let test_disabled_noop () =
  Obs.Trace.reset ();
  check "tracing off" false (Obs.Trace.enabled ());
  let v = Obs.Span.with_ "ghost" (fun () -> 17) in
  check_int "value passes through" 17 v;
  Obs.Span.event "ghost-event" ();
  check_int "no events recorded" 0 (List.length (Obs.Trace.events ()));
  Alcotest.check_raises "exception still propagates" Exit (fun () ->
      Obs.Span.with_ "ghost" (fun () -> raise Exit))

let test_events_json_roundtrip () =
  let batch =
    [
      {
        Obs.Trace.name = "w.root";
        ph = Obs.Trace.Begin;
        ts_us = 5.0;
        tid = 3;
        attrs = [ ("trace_id", Obs.Str "sweep-1-aa"); ("n", Obs.Int 2) ];
      };
      { Obs.Trace.name = "tick"; ph = Obs.Trace.Instant; ts_us = 6.5; tid = 3; attrs = [] };
      { Obs.Trace.name = "w.root"; ph = Obs.Trace.End; ts_us = 9.0; tid = 3; attrs = [] };
    ]
  in
  let decoded = Obs.Trace.events_of_json (Obs.Trace.events_to_json batch) in
  check_int "batch length survives" 3 (List.length decoded);
  List.iter2
    (fun a b ->
      check_str "name" a.Obs.Trace.name b.Obs.Trace.name;
      check "phase" true (a.Obs.Trace.ph = b.Obs.Trace.ph);
      Alcotest.(check (float 0.0)) "ts" a.Obs.Trace.ts_us b.Obs.Trace.ts_us;
      check_int "tid" a.Obs.Trace.tid b.Obs.Trace.tid)
    batch decoded;
  (* a batch torn mid-serialization decodes to the valid prefix, never
     raises: garbage entries are skipped *)
  let torn = Obs.Json.Arr [ Obs.Json.Str "not an event"; Obs.Trace.events_to_json batch ] in
  ignore (Obs.Trace.events_of_json torn)

let test_inject_truncated_batch () =
  with_tracing (fun () ->
      Obs.Span.with_ "sup" (fun () -> ());
      (* a worker batch cut short by SIGKILL: two Begins, no Ends *)
      let batch =
        [
          {
            Obs.Trace.name = "w.root";
            ph = Obs.Trace.Begin;
            ts_us = 5.0;
            tid = 1;
            attrs = [];
          };
          { Obs.Trace.name = "w.inner"; ph = Obs.Trace.Begin; ts_us = 6.0; tid = 1; attrs = [] };
        ]
      in
      Obs.Trace.inject ~pid:4242 ~dropped:3 batch);
  check "mid-span death flags the trace truncated" true (Obs.Trace.truncated ());
  check_int "worker drop counter absorbed" 3 (Obs.Trace.dropped ());
  match Obs.Json.parse (Obs.Trace.to_chrome_json ()) with
  | Error msg -> Alcotest.failf "trace JSON does not parse: %s" msg
  | Ok json ->
      let evs =
        match Option.bind (Obs.Json.member "traceEvents" json) Obs.Json.to_list with
        | Some l -> l
        | None -> Alcotest.fail "no traceEvents array"
      in
      let worker_evs =
        List.filter
          (fun ev ->
            match Option.bind (Obs.Json.member "pid" ev) Obs.Json.to_number with
            | Some p -> int_of_float p = 4242
            | None -> false)
          evs
      in
      let phase_count p =
        List.length
          (List.filter
             (fun ev ->
               match Option.bind (Obs.Json.member "ph" ev) Obs.Json.to_string with
               | Some q -> String.equal p q
               | None -> false)
             worker_evs)
      in
      (* the unbalanced Begins got synthesized Ends: the worker row is
         well-formed, not torn *)
      check_int "worker row has both Begins" 2 (phase_count "B");
      check_int "synthesized Ends balance them" 2 (phase_count "E");
      let truncated_flag =
        Option.bind (Obs.Json.member "otherData" json) (fun od ->
            Obs.Json.member "truncated" od)
      in
      check "otherData carries truncated:true" true (truncated_flag = Some (Obs.Json.Bool true))

(* ------------------------------------------------------------ Chrome JSON *)

let test_chrome_json () =
  with_tracing (fun () ->
      Obs.Span.with_ "alpha" ~attrs:[ ("n", Obs.Int 3); ("s", Obs.Str "a\"b\n") ] (fun () ->
          Obs.Span.with_ "beta" (fun () -> ());
          Obs.Span.event "tick" ~attrs:[ ("f", Obs.Float 0.5); ("b", Obs.Bool true) ] ()));
  let body = Obs.Trace.to_chrome_json () in
  match Obs.Json.parse body with
  | Error msg -> Alcotest.failf "trace JSON does not parse: %s" msg
  | Ok json -> (
      match Option.bind (Obs.Json.member "traceEvents" json) Obs.Json.to_list with
      | None -> Alcotest.fail "no traceEvents array"
      | Some evs ->
          check_int "five events" 5 (List.length evs);
          let phases =
            List.filter_map
              (fun ev -> Option.bind (Obs.Json.member "ph" ev) Obs.Json.to_string)
              evs
          in
          Alcotest.(check (list string)) "phases" [ "B"; "B"; "E"; "i"; "E" ] phases;
          (* the escaped attribute round-trips *)
          let first = List.hd evs in
          let attr =
            Option.bind (Obs.Json.member "args" first) (fun args ->
                Option.bind (Obs.Json.member "s" args) Obs.Json.to_string)
          in
          check_str "escaped attr" "a\"b\n" (Option.value ~default:"?" attr))

let test_json_parser () =
  (match Obs.Json.parse "{\"a\": [1, 2.5, {\"b\": \"x\\n\"}], \"t\": true, \"n\": null}" with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok j ->
      let a = Option.bind (Obs.Json.member "a" j) Obs.Json.to_list in
      (match a with
      | Some [ one; _; obj ] ->
          Alcotest.(check (option (float 0.0))) "number" (Some 1.0) (Obs.Json.to_number one);
          check_str "nested string" "x\n"
            (Option.value ~default:"?"
               (Option.bind (Obs.Json.member "b" obj) Obs.Json.to_string))
      | _ -> Alcotest.fail "array shape"));
  (match Obs.Json.parse "{\"a\":}" with
  | Ok _ -> Alcotest.fail "accepted malformed JSON"
  | Error _ -> ());
  match Obs.Json.parse "[1,2] trailing" with
  | Ok _ -> Alcotest.fail "accepted trailing garbage"
  | Error _ -> ()

(* ------------------------------------------------------------ end-to-end *)

let index_of name shape =
  let rec go i = function
    | [] -> None
    | (n, ph) :: rest ->
        if String.equal n name && String.equal ph "B" then Some i else go (i + 1) rest
  in
  go 0 shape

let test_end_to_end_solve () =
  let inst = Fam.pec_xor ~length:3 ~boxes:2 ~fault:false in
  let verdict =
    with_tracing (fun () -> fst (Hqs.solve_pcnf inst.Fam.pcnf))
  in
  check "solved sat" true (match verdict with Hqs.Sat -> true | Hqs.Unsat -> false);
  let evs = Obs.Trace.events () in
  let shape =
    List.map
      (fun e ->
        ( e.Obs.Trace.name,
          match e.Obs.Trace.ph with
          | Obs.Trace.Begin -> "B"
          | Obs.Trace.End -> "E"
          | Obs.Trace.Instant -> "i" ))
      evs
  in
  (* B/E events balance like parentheses *)
  let depth =
    List.fold_left
      (fun d (_, ph) ->
        check "never negative" true (d >= 0);
        if String.equal ph "B" then d + 1 else if String.equal ph "E" then d - 1 else d)
      0 (List.map (fun (n, p) -> (n, p)) shape)
  in
  check_int "all spans closed" 0 depth;
  (* the pipeline stages appear, in pipeline order *)
  let at name = match index_of name shape with
    | Some i -> i
    | None -> Alcotest.failf "span %s missing from trace" name
  in
  check "preprocess first" true (at "preprocess" < at "hqs.solve");
  check "selection before expansion" true (at "elim.select" < at "elim.expand");
  check "expansion before backend" true (at "elim.expand" < at "qbf.backend");
  check "backend inside solve" true (at "hqs.solve" < at "qbf.backend");
  (* the flame summary mentions the hot spans *)
  let summary = Obs.Trace.flame_summary () in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
    m = 0 || go 0
  in
  check "summary lists hqs.solve" true (contains summary "hqs.solve");
  check "summary lists qbf.backend" true (contains summary "qbf.backend")

let test_solve_metrics_flow () =
  (* the same counters surface in Hqs.stats via the registry delta *)
  let inst = Fam.pec_xor ~length:3 ~boxes:2 ~fault:true in
  let _, stats = Hqs.solve_pcnf inst.Fam.pcnf in
  check "univ elims counted" true
    (match List.assoc_opt "elim.universal" stats.Hqs.metrics with
    | Some v -> int_of_float v = stats.Hqs.univ_elims
    | None -> false);
  check "propagations flow into stats" true (stats.Hqs.sat_propagations >= 0);
  check_str "check level recorded" "off" stats.Hqs.check_level

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "kind clash" `Quick test_kind_clash;
          Alcotest.test_case "snapshot and delta" `Quick test_snapshot_delta;
          Alcotest.test_case "window quantiles at the edges" `Quick test_window_quantiles;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and order" `Quick test_span_nesting;
          Alcotest.test_case "exception closes span" `Quick test_span_exception;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "event batch json roundtrip" `Quick test_events_json_roundtrip;
          Alcotest.test_case "inject repairs a truncated batch" `Quick
            test_inject_truncated_batch;
        ] );
      ( "chrome-json",
        [
          Alcotest.test_case "well-formed trace" `Quick test_chrome_json;
          Alcotest.test_case "json parser" `Quick test_json_parser;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "pipeline span order" `Quick test_end_to_end_solve;
          Alcotest.test_case "metrics flow into stats" `Quick test_solve_metrics_flow;
        ] );
    ]
