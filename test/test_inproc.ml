(* Inprocessing engine (lib/inproc): hand-built cases for each rule and
   QCheck properties tying the engine to the reference expansion solver,
   the witness auditor and the Henkin-legality contract of BVE. *)

open Hqs_util
module Pcnf = Dqbf.Pcnf
module L = Sat.Lit

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let pcnf ~num_vars ~univs ~exists ~clauses = { Pcnf.num_vars; univs; exists; clauses }

let problem_of_pcnf (p : Pcnf.t) =
  {
    Inproc.num_vars = p.Pcnf.num_vars;
    univs = Bitset.of_list p.Pcnf.univs;
    deps = List.map (fun (y, d) -> (y, Bitset.of_list d)) p.Pcnf.exists;
    clauses = List.map (List.map L.of_dimacs) p.Pcnf.clauses;
  }

(* ------------------------------------------------------------ unit cases *)

(* the committed CI fixture, inline: 2 <-> 3 merges, (2|4|-1) is subsumed *)
let test_fixture_shape () =
  let p =
    pcnf ~num_vars:4 ~univs:[ 0 ]
      ~exists:[ (1, [ 0 ]); (2, [ 0 ]); (3, [ 0 ]) ]
      ~clauses:[ [ 2; -3 ]; [ -2; 3 ]; [ 2; 4 ]; [ 2; 4; -1 ] ]
  in
  match Inproc.run (problem_of_pcnf p) with
  | Inproc.Unsat -> Alcotest.fail "fixture is satisfiable"
  | Inproc.Simplified res ->
      check_int "one SCC merge" 1 res.Inproc.stats.Inproc.scc_merges;
      check "at least one subsumption" true (res.Inproc.stats.Inproc.subsumed >= 1);
      check_int "one clause left" 1 (List.length res.Inproc.clauses)

let test_universal_unit_refutes () =
  let p = pcnf ~num_vars:2 ~univs:[ 0 ] ~exists:[ (1, [ 0 ]) ] ~clauses:[ [ 1 ] ] in
  check "unit over a universal is a refutation" true
    (match Inproc.run (problem_of_pcnf p) with
    | Inproc.Unsat -> true
    | Inproc.Simplified _ -> false)

let test_universal_equivalence_refutes () =
  (* x <-> x' for two universals: no Henkin model exists *)
  let p =
    pcnf ~num_vars:3 ~univs:[ 0; 1 ]
      ~exists:[ (2, [ 0; 1 ]) ]
      ~clauses:[ [ 1; -2 ]; [ -1; 2 ]; [ 3; 1 ]; [ -3; -1 ] ]
  in
  check "two universals in one SCC refute" true
    (match Inproc.run (problem_of_pcnf p) with
    | Inproc.Unsat -> true
    | Inproc.Simplified _ -> false)

let test_merge_intersects_deps () =
  (* y2 (deps {0}) and y3 (deps {1}) forced equal: survivor keeps the
     intersection, which is empty *)
  let p =
    pcnf ~num_vars:4 ~univs:[ 0; 1 ]
      ~exists:[ (2, [ 0 ]); (3, [ 1 ]) ]
      ~clauses:[ [ 3; -4 ]; [ -3; 4 ]; [ 3; 4; 1 ] ]
  in
  match Inproc.run (problem_of_pcnf p) with
  | Inproc.Unsat -> Alcotest.fail "satisfiable"
  | Inproc.Simplified res ->
      check_int "one merge" 1 res.Inproc.stats.Inproc.scc_merges;
      check "survivor dependency set is the intersection" true
        (List.for_all (fun (_, d) -> Bitset.is_empty d) res.Inproc.deps)

let full_config = Inproc.config_of_mode Inproc.Full

let test_bve_eliminates () =
  (* y (var 1, deps {0}) in (y | x) and (!y | z): resolvent (x | z); z
     depends on x so elimination is Henkin-legal *)
  let p =
    pcnf ~num_vars:3 ~univs:[ 0 ]
      ~exists:[ (1, [ 0 ]); (2, [ 0 ]) ]
      ~clauses:[ [ 2; 1 ]; [ -2; 3 ] ]
  in
  match Inproc.run ~config:full_config (problem_of_pcnf p) with
  | Inproc.Unsat -> Alcotest.fail "satisfiable"
  | Inproc.Simplified res ->
      check "y eliminated" true (res.Inproc.stats.Inproc.bve_eliminated >= 1);
      check "y gone from the prefix" true
        (not (List.exists (fun (v, _) -> v = 1) res.Inproc.deps))

let test_bve_illegal_dep_skipped () =
  (* y (var 1, deps {}) shares both its clauses with universal x: x not
     in D_y, so resolution on y would smuggle an x-dependency — must be
     skipped. z (var 2, deps {0}) in the same clauses IS legal to
     eliminate (its resolvent is a tautology). *)
  let p =
    pcnf ~num_vars:3 ~univs:[ 0 ]
      ~exists:[ (1, []); (2, [ 0 ]) ]
      ~clauses:[ [ 2; 1; 3 ]; [ -2; -1; -3 ] ]
  in
  match Inproc.run ~config:full_config (problem_of_pcnf p) with
  | Inproc.Unsat -> Alcotest.fail "should not refute"
  | Inproc.Simplified res ->
      check "no Eliminated step on the dep-illegal variable" true
        (List.for_all
           (function Inproc.Eliminated { y; _ } -> y <> 1 | _ -> true)
           res.Inproc.steps)

(* -------------------------------------------------------------- QCheck *)

type instance = {
  nu : int;
  ne : int;
  dep_masks : int list;
  clauses : (int * bool) list list;
}

let instance_gen =
  QCheck.Gen.(
    int_range 1 3 >>= fun nu ->
    int_range 1 3 >>= fun ne ->
    list_repeat ne (int_bound ((1 lsl nu) - 1)) >>= fun dep_masks ->
    let n = nu + ne in
    list_size (int_range 1 12) (list_size (int_range 1 3) (pair (int_bound (n - 1)) bool))
    >>= fun clauses -> return { nu; ne; dep_masks; clauses })

let instance_print { nu; ne; dep_masks; clauses } =
  Printf.sprintf "nu=%d ne=%d deps=[%s] clauses=%s" nu ne
    (String.concat ";" (List.map string_of_int dep_masks))
    (String.concat " "
       (List.map
          (fun c ->
            String.concat ","
              (List.map (fun (v, s) -> string_of_int (if s then -(v + 1) else v + 1)) c))
          clauses))

let instance_arb = QCheck.make ~print:instance_print instance_gen

let to_pcnf { nu; ne; dep_masks; clauses } =
  pcnf ~num_vars:(nu + ne)
    ~univs:(List.init nu Fun.id)
    ~exists:
      (List.mapi
         (fun i mask ->
           (nu + i, List.filter (fun x -> mask land (1 lsl x) <> 0) (List.init nu Fun.id)))
         dep_masks)
    ~clauses:
      (List.map (List.map (fun (v, s) -> if s then -(v + 1) else v + 1)) clauses)

(* the engine at Full strength agrees with the reference expansion
   solver, and every witness it emits survives the Full auditor *)
let prop_engine_preserves_truth =
  QCheck.Test.make ~count:300 ~name:"inproc full preserves truth and passes audit"
    instance_arb (fun inst ->
      let p = to_pcnf inst in
      let reference = Dqbf.Reference.by_expansion (Pcnf.to_formula p) in
      match Dqbf.Preprocess.run_inproc ~mode:Inproc.Full p with
      | `Unsat ->
          Check.audit_inproc ~level:Check.Full p Inproc.Unsat;
          reference = false
      | `Done (simplified, res) ->
          Check.audit_inproc ~level:Check.Full p (Inproc.Simplified res);
          Dqbf.Reference.by_expansion (Pcnf.to_formula simplified) = reference)

(* end-to-end: the solver's verdict does not depend on the engine mode *)
let prop_solver_mode_agreement =
  QCheck.Test.make ~count:60 ~name:"solver verdicts agree across inproc modes"
    instance_arb (fun inst ->
      let p = to_pcnf inst in
      let solve mode =
        let config =
          {
            Hqs.default_config with
            Hqs.check_level = Check.Full;
            preprocess =
              { Dqbf.Preprocess.default_config with Dqbf.Preprocess.inproc = mode };
          }
        in
        match Hqs.solve_pcnf ~config p with Hqs.Sat, _ -> true | Hqs.Unsat, _ -> false
      in
      solve Inproc.Off = solve Inproc.Full)

let subsumption_only =
  {
    Inproc.unit_propagation = false;
    universal_reduction = false;
    equivalences = false;
    subsumption = true;
    self_subsumption = true;
    probe = false;
    bve = false;
    max_rounds = 50;
    bve_cap = 0;
  }

let prop_subsumption_shrinks =
  QCheck.Test.make ~count:300 ~name:"subsumption never increases the clause count"
    instance_arb (fun inst ->
      let p = to_pcnf inst in
      match Inproc.run ~config:subsumption_only (problem_of_pcnf p) with
      | Inproc.Unsat -> true (* self-subsumption may derive the empty clause *)
      | Inproc.Simplified res ->
          let s = res.Inproc.stats in
          s.Inproc.clauses_after <= s.Inproc.clauses_before
          && List.length res.Inproc.clauses <= List.length p.Pcnf.clauses)

(* a second run over the engine's own output finds no further
   equivalences: SCC substitution is idempotent *)
let prop_scc_idempotent =
  QCheck.Test.make ~count:300 ~name:"SCC substitution is idempotent" instance_arb
    (fun inst ->
      let p = to_pcnf inst in
      match Inproc.run (problem_of_pcnf p) with
      | Inproc.Unsat -> true
      | Inproc.Simplified res -> (
          let again =
            {
              Inproc.num_vars = p.Pcnf.num_vars;
              univs = res.Inproc.univs;
              deps = res.Inproc.deps;
              clauses = res.Inproc.clauses;
            }
          in
          match Inproc.run again with
          | Inproc.Unsat -> false (* a fixpoint cannot newly refute *)
          | Inproc.Simplified res2 ->
              res2.Inproc.stats.Inproc.scc_merges = 0
              && res2.Inproc.stats.Inproc.subsumed = 0))

(* every Eliminated witness respects the randomly drawn Henkin prefix:
   its dependency snapshot never exceeds the declared set, and no
   clause it resolved mentions a universal outside that snapshot *)
let prop_bve_legality =
  QCheck.Test.make ~count:300 ~name:"BVE legality respects random dependency sets"
    instance_arb (fun inst ->
      let p = to_pcnf inst in
      let declared = List.map (fun (y, d) -> (y, Bitset.of_list d)) p.Pcnf.exists in
      let univs = Bitset.of_list p.Pcnf.univs in
      match Inproc.run ~config:full_config (problem_of_pcnf p) with
      | Inproc.Unsat -> true
      | Inproc.Simplified res ->
          List.for_all
            (function
              | Inproc.Eliminated { y; dep_y; pos; neg } ->
                  let dep_set = Bitset.of_list dep_y in
                  (match List.assoc_opt y declared with
                  | None -> false
                  | Some d -> Bitset.subset dep_set d)
                  && List.for_all
                       (List.for_all (fun l ->
                            let v = L.var l in
                            v = y
                            || (not (Bitset.mem v univs))
                            || Bitset.mem v dep_set))
                       (pos @ neg)
              | _ -> true)
            res.Inproc.steps)

let () =
  Alcotest.run "inproc"
    [
      ( "rules",
        [
          Alcotest.test_case "fixture shape" `Quick test_fixture_shape;
          Alcotest.test_case "universal unit refutes" `Quick test_universal_unit_refutes;
          Alcotest.test_case "universal equivalence refutes" `Quick
            test_universal_equivalence_refutes;
          Alcotest.test_case "merge intersects deps" `Quick test_merge_intersects_deps;
          Alcotest.test_case "bve eliminates" `Quick test_bve_eliminates;
          Alcotest.test_case "bve illegal dep skipped" `Quick test_bve_illegal_dep_skipped;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_engine_preserves_truth;
            prop_solver_mode_agreement;
            prop_subsumption_shrinks;
            prop_scc_idempotent;
            prop_bve_legality;
          ] );
    ]
