open Hqs_util
module M = Aig.Man
module F = Dqbf.Formula

let check = Alcotest.(check bool)

let verdict_t =
  Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (match v with Hqs.Sat -> "SAT" | Hqs.Unsat -> "UNSAT"))
    (fun a b ->
      match (a, b) with Hqs.Sat, Hqs.Sat | Hqs.Unsat, Hqs.Unsat -> true | _ -> false)

(* same random-instance machinery as the dqbf tests *)
type instance = {
  nu : int;
  ne : int;
  dep_masks : int list;
  clauses : (int * bool) list list;
}

let instance_gen =
  QCheck.Gen.(
    int_range 1 3 >>= fun nu ->
    int_range 1 3 >>= fun ne ->
    list_repeat ne (int_bound ((1 lsl nu) - 1)) >>= fun dep_masks ->
    let n = nu + ne in
    list_size (int_range 1 12) (list_size (int_range 1 3) (pair (int_bound (n - 1)) bool))
    >>= fun clauses -> return { nu; ne; dep_masks; clauses })

let instance_print { nu; ne; dep_masks; clauses } =
  Printf.sprintf "nu=%d ne=%d deps=[%s] clauses=%s" nu ne
    (String.concat ";" (List.map string_of_int dep_masks))
    (String.concat " "
       (List.map
          (fun c ->
            String.concat ","
              (List.map (fun (v, s) -> string_of_int (if s then -(v + 1) else v + 1)) c))
          clauses))

let instance_arb = QCheck.make ~print:instance_print instance_gen

let build { nu; ne = _; dep_masks; clauses } =
  let f = F.create () in
  for x = 0 to nu - 1 do
    F.add_universal f x
  done;
  List.iteri
    (fun i mask ->
      let deps =
        Bitset.of_list (List.filter (fun x -> mask land (1 lsl x) <> 0) (List.init nu Fun.id))
      in
      F.add_existential f (nu + i) ~deps)
    dep_masks;
  let man = F.man f in
  let lit (v, s) = M.apply_sign (M.input man v) ~neg:s in
  F.set_matrix f
    (M.mk_and_list man (List.map (fun c -> M.mk_or_list man (List.map lit c)) clauses));
  f

let pcnf_of_instance inst =
  {
    Dqbf.Pcnf.num_vars = inst.nu + inst.ne;
    univs = List.init inst.nu Fun.id;
    exists =
      List.mapi
        (fun i mask ->
          ( inst.nu + i,
            List.filter (fun x -> mask land (1 lsl x) <> 0) (List.init inst.nu Fun.id) ))
        inst.dep_masks;
    clauses = List.map (List.map (fun (v, s) -> if s then -(v + 1) else v + 1)) inst.clauses;
  }

let example1 ~crossed =
  let f = F.create () in
  F.add_universal f 0;
  F.add_universal f 1;
  F.add_existential f 2 ~deps:(Bitset.singleton 0);
  F.add_existential f 3 ~deps:(Bitset.singleton 1);
  let man = F.man f in
  let x1 = M.input man 0 and x2 = M.input man 1 in
  let y1 = M.input man 2 and y2 = M.input man 3 in
  F.set_matrix f
    (if crossed then M.mk_and man (M.mk_iff man y1 x2) (M.mk_iff man y2 x1)
     else M.mk_and man (M.mk_iff man y1 x1) (M.mk_iff man y2 x2));
  f

(* -------------------------------------------------------------- known *)

let test_example1 () =
  let v, stats = Hqs.solve_formula (example1 ~crossed:false) in
  Alcotest.check verdict_t "aligned sat" Hqs.Sat v;
  check "eliminated a universal" true (stats.Hqs.univ_elims >= 1);
  let v, _ = Hqs.solve_formula (example1 ~crossed:true) in
  Alcotest.check verdict_t "crossed unsat" Hqs.Unsat v

let test_input_not_mutated () =
  let f = example1 ~crossed:false in
  let before_univs = F.universals f in
  let _ = Hqs.solve_formula f in
  check "universals unchanged" true (Bitset.equal before_univs (F.universals f));
  (* solving twice gives the same verdict *)
  let v1, _ = Hqs.solve_formula f and v2, _ = Hqs.solve_formula f in
  check "deterministic" true (v1 = v2)

let test_timeout () =
  (* a somewhat larger instance with a 0-second budget must raise *)
  let f = example1 ~crossed:false in
  Alcotest.check_raises "timeout" Budget.Timeout (fun () ->
      ignore (Hqs.solve_formula ~budget:(Budget.of_seconds (-1.0)) f))

let test_node_limit_memout () =
  let config = { Hqs.default_config with node_limit = Some 8 } in
  let f = example1 ~crossed:false in
  Alcotest.check_raises "memout" Budget.Out_of_memory_budget (fun () ->
      ignore (Hqs.solve_formula ~config f))

let test_trivial_matrices () =
  let f = F.create () in
  F.add_universal f 0;
  F.set_matrix f M.true_;
  Alcotest.check verdict_t "true matrix" Hqs.Sat (fst (Hqs.solve_formula f));
  F.set_matrix f M.false_;
  Alcotest.check verdict_t "false matrix" Hqs.Unsat (fst (Hqs.solve_formula f))

(* ------------------------------------------------------------- random *)

let agrees ?(config = Hqs.default_config) name =
  QCheck.Test.make ~name ~count:300 instance_arb (fun inst ->
      let f = build inst in
      let expected = Dqbf.Reference.by_expansion f in
      let v, _ = Hqs.solve_formula ~config f in
      (v = Hqs.Sat) = expected)

let prop_default = agrees "hqs agrees with expansion (default)"

let prop_no_unitpure =
  agrees ~config:{ Hqs.default_config with use_unitpure = false } "hqs agrees (no unit/pure)"

let prop_no_thm2 =
  agrees ~config:{ Hqs.default_config with use_thm2 = false } "hqs agrees (no Theorem 2)"

let prop_greedy =
  agrees ~config:{ Hqs.default_config with use_maxsat = false } "hqs agrees (greedy set)"

let prop_expand_all =
  agrees ~config:{ Hqs.default_config with mode = Hqs.Expand_all } "hqs agrees (expand-all baseline)"

let prop_sat_probe =
  agrees ~config:{ Hqs.default_config with use_sat_probe = true } "hqs agrees (SAT probe)"

let prop_aggressive_fraig =
  agrees
    ~config:{ Hqs.default_config with fraig_threshold = 1 }
    "hqs agrees (fraig every step)"

let prop_search_backend =
  agrees
    ~config:{ Hqs.default_config with qbf_backend = Hqs.Search_backend }
    "hqs agrees (QDPLL back end)"

let prop_pcnf_pipeline =
  QCheck.Test.make ~name:"full pcnf pipeline agrees with expansion" ~count:300 instance_arb
    (fun inst ->
      let pcnf = pcnf_of_instance inst in
      let expected = Dqbf.Reference.by_expansion (Dqbf.Pcnf.to_formula pcnf) in
      let v, _ = Hqs.solve_pcnf pcnf in
      (v = Hqs.Sat) = expected)

let prop_pcnf_no_preprocess =
  QCheck.Test.make ~name:"pipeline without preprocessing agrees" ~count:200 instance_arb
    (fun inst ->
      let pcnf = pcnf_of_instance inst in
      let expected = Dqbf.Reference.by_expansion (Dqbf.Pcnf.to_formula pcnf) in
      let config = { Hqs.default_config with preprocess = Dqbf.Preprocess.off } in
      let v, _ = Hqs.solve_pcnf ~config pcnf in
      (v = Hqs.Sat) = expected)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "hqs"
    [
      ( "known",
        [
          Alcotest.test_case "example 1" `Quick test_example1;
          Alcotest.test_case "input not mutated" `Quick test_input_not_mutated;
          Alcotest.test_case "timeout" `Quick test_timeout;
          Alcotest.test_case "node limit memout" `Quick test_node_limit_memout;
          Alcotest.test_case "trivial matrices" `Quick test_trivial_matrices;
        ] );
      ( "random",
        qsuite
          [
            prop_default;
            prop_no_unitpure;
            prop_no_thm2;
            prop_greedy;
            prop_expand_all;
            prop_sat_probe;
            prop_aggressive_fraig;
            prop_search_backend;
            prop_pcnf_pipeline;
            prop_pcnf_no_preprocess;
          ] );
    ]
