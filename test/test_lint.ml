(* Lint self-test: string fixtures per rule, each paired with a clean
   variant, plus the suppression and allowlist machinery. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rules_of ~path src = List.map (fun d -> d.Linter.rule) (Linter.lint_source ~path src)
let lib_path = "lib/fake/mod.ml"

let has rule ~path src = List.mem rule (rules_of ~path src)

let test_catch_all () =
  check "wildcard handler flagged" true
    (has Linter.Catch_all ~path:lib_path "let f x = try g x with _ -> 0\n");
  check "bare variable handler flagged" true
    (has Linter.Catch_all ~path:lib_path "let f x = try g x with e -> ignore e; 0\n");
  check "or-pattern hiding a wildcard flagged" true
    (has Linter.Catch_all ~path:lib_path "let f x = try g x with Not_found | _ -> 0\n");
  check "specific exception passes" false
    (has Linter.Catch_all ~path:lib_path "let f x = try g x with Not_found -> 0\n");
  check "multiple specific cases pass" false
    (has Linter.Catch_all ~path:lib_path
       "let f x = try g x with Not_found -> 0 | Failure _ -> 1\n")

let test_poly_compare () =
  check "bare compare flagged" true
    (has Linter.Poly_compare ~path:lib_path "let f a b = compare a b\n");
  check "Stdlib.compare flagged" true
    (has Linter.Poly_compare ~path:lib_path "let f = List.sort Stdlib.compare\n");
  check "Hashtbl.hash flagged" true
    (has Linter.Poly_compare ~path:lib_path "let h = Hashtbl.hash\n");
  check "first-class equality flagged" true
    (has Linter.Poly_compare ~path:lib_path "let mem x l = List.exists (( = ) x) l\n");
  check "applied equality passes" false
    (has Linter.Poly_compare ~path:lib_path "let f a b = a = b && a <> 0\n");
  check "monomorphic compare passes" false
    (has Linter.Poly_compare ~path:lib_path "let f = List.sort Int.compare\n");
  check "module-qualified compare passes" false
    (has Linter.Poly_compare ~path:lib_path "let f = List.sort Bitset.compare\n")

let test_obj_magic () =
  check "Obj.magic flagged" true (has Linter.Obj_magic ~path:lib_path "let f x = Obj.magic x\n");
  check "Obj.repr alone passes" false
    (has Linter.Obj_magic ~path:lib_path "let f x = Obj.repr x\n")

let test_failwith_scope () =
  let src = "let f () = failwith \"boom\"\n" in
  check "failwith flagged under lib/" true (has Linter.Failwith_lib ~path:lib_path src);
  check "failwith passes in bin/" false (has Linter.Failwith_lib ~path:"bin/tool.ml" src);
  check "failwith passes in test/" false (has Linter.Failwith_lib ~path:"test/t.ml" src)

let test_raw_fd () =
  check "Unix.openfile flagged outside lib/exec" true
    (has Linter.Raw_fd ~path:lib_path "let f p = Unix.openfile p [ Unix.O_RDONLY ] 0\n");
  check "Unix.pipe flagged in bin/" true
    (has Linter.Raw_fd ~path:"bin/tool.ml" "let p () = Unix.pipe ()\n");
  check "Unix.socket flagged" true
    (has Linter.Raw_fd ~path:lib_path
       "let s () = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0\n");
  check "Unix.socketpair flagged" true
    (has Linter.Raw_fd ~path:lib_path
       "let s () = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0\n");
  check "Unix.accept flagged" true
    (has Linter.Raw_fd ~path:lib_path "let a fd = Unix.accept fd\n");
  check "lib/exec is a sanctioned home" false
    (has Linter.Raw_fd ~path:"lib/exec/journal.ml" "let p () = Unix.pipe ()\n");
  check "lib/serve is a sanctioned home" false
    (has Linter.Raw_fd ~path:"lib/serve/daemon.ml"
       "let s () = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0\n");
  check "other Unix calls pass" false
    (has Linter.Raw_fd ~path:lib_path "let r fd b = Unix.read fd b 0 1\n")

let test_wall_clock () =
  check "Unix.gettimeofday flagged outside lib/util" true
    (has Linter.Wall_clock ~path:lib_path "let t () = Unix.gettimeofday ()\n");
  check "Unix.time flagged" true
    (has Linter.Wall_clock ~path:lib_path "let t () = Unix.time ()\n");
  check "flagged in examples too" true
    (has Linter.Wall_clock ~path:"examples/demo.ml" "let t = Unix.gettimeofday ()\n");
  check "lib/util is the sanctioned home" false
    (has Linter.Wall_clock ~path:"lib/util/mono.ml" "let t () = Unix.gettimeofday ()\n");
  check "monotonic Budget.now passes" false
    (has Linter.Wall_clock ~path:lib_path "let t () = Hqs_util.Budget.now ()\n")

let test_no_stdout () =
  check "Printf.printf flagged under lib/" true
    (has Linter.No_stdout ~path:lib_path "let f x = Printf.printf \"%d\\n\" x\n");
  check "print_endline flagged" true
    (has Linter.No_stdout ~path:lib_path "let f s = print_endline s\n");
  check "print_string flagged" true
    (has Linter.No_stdout ~path:lib_path "let f s = print_string s\n");
  check "Stdlib-qualified form flagged" true
    (has Linter.No_stdout ~path:lib_path "let f s = Stdlib.print_endline s\n");
  check "lib/harness is the sanctioned home" false
    (has Linter.No_stdout ~path:"lib/harness/report.ml" "let f s = print_string s\n");
  check "bin/ may print" false
    (has Linter.No_stdout ~path:"bin/tool.ml" "let f s = print_endline s\n");
  check "stderr via Printf.eprintf passes" false
    (has Linter.No_stdout ~path:lib_path "let f s = Printf.eprintf \"%s\\n\" s\n");
  check "Buffer/Format sinks pass" false
    (has Linter.No_stdout ~path:lib_path "let f b s = Buffer.add_string b s\n")

let test_cert_isolation () =
  let cc = "bin/certcheck.ml" in
  check "qualified solver reference flagged" true
    (has Linter.Cert_isolation ~path:cc "let f x = Sat.Solver.solve x\n");
  check "cert library itself flagged" true
    (has Linter.Cert_isolation ~path:cc "let f s = Cert.parse s\n");
  check "open of a solver library flagged" true
    (has Linter.Cert_isolation ~path:cc "open Dqbf\nlet x = 1\n");
  check "module alias of a solver library flagged" true
    (has Linter.Cert_isolation ~path:cc "module H = Hqs\nlet x = 1\n");
  check "local let open flagged" true
    (has Linter.Cert_isolation ~path:cc "let f () = let open Hqs_util in 1\n");
  check "stdlib modules pass" false
    (has Linter.Cert_isolation ~path:cc
       "let f l = List.sort Int.compare l\nlet g s = String.length s\n");
  check "bare local idents pass" false
    (has Linter.Cert_isolation ~path:cc "let solve x = x\nlet f x = solve x\n");
  check "solver references elsewhere pass" false
    (has Linter.Cert_isolation ~path:"bin/hqs_cli.ml" "let f x = Hqs.solve_pcnf x\n");
  (* the rule holds on the real source as committed *)
  let real = "../bin/certcheck.ml" in
  if Sys.file_exists real then
    check "committed certcheck.ml is isolated" false
      (has Linter.Cert_isolation ~path:"bin/certcheck.ml"
         (In_channel.with_open_bin real In_channel.input_all))

let test_syntax () =
  check "unparsable source reported" true (has Linter.Syntax ~path:lib_path "let let let\n");
  check "unparsable mli reported" true (has Linter.Syntax ~path:"lib/fake/mod.mli" "val val\n");
  check "clean mli passes" false (has Linter.Syntax ~path:"lib/fake/mod.mli" "val f : int -> int\n")

let test_missing_mli () =
  let diags =
    Linter.check_missing_mli
      [ "lib/a/x.ml"; "lib/a/y.ml"; "lib/a/y.mli"; "bin/z.ml"; "test/t.ml" ]
  in
  check_int "exactly the uncovered lib module" 1 (List.length diags);
  check "names the right file" true
    (match diags with [ d ] -> d.Linter.file = "lib/a/x.ml" | _ -> false)

let test_positions () =
  match Linter.lint_source ~path:lib_path "let a = 1\nlet f x = try g x with _ -> 0\n" with
  | [ d ] ->
      check_int "line" 2 d.Linter.line;
      check "rule" true (d.Linter.rule = Linter.Catch_all)
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

(* suppression and the allowlist act in [lint_paths]; drive it through
   real files in a temp tree *)
let with_tree files k =
  let dir = Filename.temp_file "lintt" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let cleanup = ref [ dir ] in
  List.iter
    (fun (rel, content) ->
      let path = Filename.concat dir rel in
      let parent = Filename.dirname path in
      let rec mk p =
        if not (Sys.file_exists p) then begin
          mk (Filename.dirname p);
          Unix.mkdir p 0o755;
          cleanup := p :: !cleanup
        end
      in
      mk parent;
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content);
      cleanup := path :: !cleanup)
    files;
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.is_directory p then Sys.rmdir p else Sys.remove p)
        !cleanup)
    (fun () -> k dir)

let test_suppression () =
  with_tree
    [
      ("lib/a/x.ml", "(* lint: allow poly-compare *)\nlet h = Hashtbl.hash\n");
      ("lib/a/x.mli", "val h : 'a -> int\n");
      (* the marker covers its own line and the next; line 3 stays out of reach *)
      ("lib/a/y.ml", "let h = Hashtbl.hash (* lint: allow poly-compare *)\n\nlet c = compare\n");
      ("lib/a/y.mli", "val h : 'a -> int\nval c : 'a -> 'a -> int\n");
    ]
    (fun dir ->
      let diags = Linter.lint_paths [ dir ] in
      (* x.ml fully suppressed (line above); y.ml line 1 suppressed (same
         line), line 3 still reported *)
      check_int "only the unsuppressed finding remains" 1 (List.length diags);
      check "it is y.ml line 3" true
        (match diags with
        | [ d ] -> Filename.basename d.Linter.file = "y.ml" && d.Linter.line = 3
        | _ -> false))

let test_no_stdout_suppression () =
  with_tree
    [
      ("lib/a/x.ml", "(* lint: allow no-stdout *)\nlet f s = print_endline s\n");
      ("lib/a/x.mli", "val f : string -> unit\n");
      ("lib/a/y.ml", "let f s = print_endline s\n");
      ("lib/a/y.mli", "val f : string -> unit\n");
    ]
    (fun dir ->
      let diags = Linter.lint_paths [ dir ] in
      check_int "only the unsuppressed write remains" 1 (List.length diags);
      check "it is the no-stdout rule in y.ml" true
        (match diags with
        | [ d ] ->
            Filename.basename d.Linter.file = "y.ml" && d.Linter.rule = Linter.No_stdout
        | _ -> false))

let test_allowlist_and_walk () =
  with_tree
    [
      (* same suffix as the documented allowlist entry: failwith tolerated *)
      ("lib/sat/dimacs.ml", "let f () = failwith \"bad token\"\n");
      ("lib/sat/dimacs.mli", "val f : unit -> 'a\n");
      ("_build/lib/junk.ml", "let let let\n");
      (".hidden/junk.ml", "let let let\n");
    ]
    (fun dir ->
      check_int "allowlisted failwith and skipped dirs yield no findings" 0
        (List.length (Linter.lint_paths [ dir ])))

let test_run_exit_codes () =
  check_int "nonexistent path is a usage error" 2
    (Linter.run [ "/nonexistent/no/such/path" ]);
  with_tree
    [ ("README.txt", "not a source file\n"); ("lib/a/x.ml", "let x = 1\n");
      ("lib/a/x.mli", "val x : int\n") ]
    (fun dir ->
      check_int "path with no lintable files is a usage error" 2
        (Linter.run [ Filename.concat dir "README.txt" ]);
      check_int "clean tree passes" 0 (Linter.run [ dir ]);
      (* inject a finding and expect exit 1 *)
      let bad = Filename.concat dir "lib/a/y.ml" in
      Out_channel.with_open_bin bad (fun oc ->
          Out_channel.output_string oc "let f x = try x () with _ -> 0\n");
      Fun.protect
        ~finally:(fun () -> Sys.remove bad)
        (fun () -> check_int "findings exit 1" 1 (Linter.run [ dir ])))

(* the cmdliner man page is the discoverability surface for the rule set
   and the suppression marker; if a rule is added without a doc entry the
   help must fail this test, not silently omit it *)
let test_help_lists_rules () =
  let out = Filename.temp_file "lint_help" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out)
    (fun () ->
      let code =
        match Unix.system (Printf.sprintf "../bin/lint.exe --help=plain >%s 2>&1" (Filename.quote out)) with
        | Unix.WEXITED c -> c
        | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> -1
      in
      check_int "--help exits 0" 0 code;
      let help = In_channel.with_open_bin out In_channel.input_all in
      let contains ~needle hay =
        let n = String.length needle and h = String.length hay in
        let rec go i = i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1)) in
        go 0
      in
      List.iter
        (fun rule ->
          let name = Linter.rule_name rule in
          check (Printf.sprintf "help documents rule %s" name) true (contains ~needle:name help))
        Linter.all_rules;
      check "help documents the suppression marker" true (contains ~needle:"lint: allow" help))

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "catch-all" `Quick test_catch_all;
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "obj-magic" `Quick test_obj_magic;
          Alcotest.test_case "failwith scope" `Quick test_failwith_scope;
          Alcotest.test_case "raw-fd scope" `Quick test_raw_fd;
          Alcotest.test_case "wall-clock scope" `Quick test_wall_clock;
          Alcotest.test_case "no-stdout scope" `Quick test_no_stdout;
          Alcotest.test_case "cert isolation" `Quick test_cert_isolation;
          Alcotest.test_case "syntax" `Quick test_syntax;
          Alcotest.test_case "missing mli" `Quick test_missing_mli;
          Alcotest.test_case "positions" `Quick test_positions;
        ] );
      ( "driver",
        [
          Alcotest.test_case "suppression" `Quick test_suppression;
          Alcotest.test_case "no-stdout suppression" `Quick test_no_stdout_suppression;
          Alcotest.test_case "allowlist and walk" `Quick test_allowlist_and_walk;
          Alcotest.test_case "run exit codes" `Quick test_run_exit_codes;
          Alcotest.test_case "help lists every rule" `Quick test_help_lists_rules;
        ] );
    ]
