(* The degradation ladder: every fallback is exercised twice — once by
   deterministic fault injection (Chaos), once (where practical) by a
   genuine resource blowup against a real AIG node limit. *)

open Hqs_util
module M = Aig.Man
module F = Dqbf.Formula
module Fam = Circuit.Families

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let verdict_t =
  Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (match v with Hqs.Sat -> "SAT" | Hqs.Unsat -> "UNSAT"))
    (fun a b ->
      match (a, b) with Hqs.Sat, Hqs.Sat | Hqs.Unsat, Hqs.Unsat -> true | _ -> false)

let degraded_mem label stats = List.mem label stats.Hqs.degraded

let chaos points = Chaos.create ~seed:42 ~points ()

(* x1, x2 universal; y1 depends on x1 only, y2 on x2 only. The deps are
   incomparable, so the solver must eliminate a universal, which drives
   it through the MaxSAT / FRAIG / QBF stages. Aligned is SAT, crossed
   (y1 tracking x2) is UNSAT. *)
let example1 ~crossed =
  let f = F.create () in
  F.add_universal f 0;
  F.add_universal f 1;
  F.add_existential f 2 ~deps:(Bitset.singleton 0);
  F.add_existential f 3 ~deps:(Bitset.singleton 1);
  let man = F.man f in
  let x1 = M.input man 0 and x2 = M.input man 1 in
  let y1 = M.input man 2 and y2 = M.input man 3 in
  F.set_matrix f
    (if crossed then M.mk_and man (M.mk_iff man y1 x2) (M.mk_iff man y2 x1)
     else M.mk_and man (M.mk_iff man y1 x1) (M.mk_iff man y2 x2));
  f

(* ------------------------------------------------------- injected faults *)

let test_injected_maxsat () =
  let config = { Hqs.default_config with chaos = chaos [ "maxsat.minset" ] } in
  let v, stats = Hqs.solve_formula ~config (example1 ~crossed:false) in
  Alcotest.check verdict_t "still sat" Hqs.Sat v;
  check "fell back to greedy" true (degraded_mem "maxsat.minset->greedy[injected]" stats);
  check_int "no restart" 0 stats.Hqs.restarts;
  (* the verdict survives on the UNSAT side too *)
  let v, stats = Hqs.solve_formula ~config:{ config with chaos = chaos [ "maxsat.minset" ] }
      (example1 ~crossed:true) in
  Alcotest.check verdict_t "still unsat" Hqs.Unsat v;
  check "fell back to greedy" true (degraded_mem "maxsat.minset->greedy[injected]" stats)

let test_injected_fraig () =
  (* fraig_threshold 1 so the sweep is attempted right after the first
     universal elimination; the injected fault degrades it to a plain
     compaction *)
  let config =
    { Hqs.default_config with fraig_threshold = 1; chaos = chaos [ "fraig.sweep" ] }
  in
  let v, stats = Hqs.solve_formula ~config (example1 ~crossed:false) in
  Alcotest.check verdict_t "still sat" Hqs.Sat v;
  check "fell back to compact" true (degraded_mem "fraig.sweep->compact[injected]" stats);
  check_int "no restart" 0 stats.Hqs.restarts

let test_injected_qbf_elim () =
  let config = { Hqs.default_config with chaos = chaos [ "qbf.elim" ] } in
  let f0 = example1 ~crossed:false in
  let v, model, stats = Hqs.solve_formula_model ~config f0 in
  Alcotest.check verdict_t "still sat" Hqs.Sat v;
  check "fell back to search" true (degraded_mem "qbf.elim->search[injected]" stats);
  (* the model produced by the fallback back end must still certify *)
  (match model with
  | None -> Alcotest.fail "expected a model"
  | Some m -> (
      match Dqbf.Skolem.verify f0 m with
      | Ok () -> ()
      | Error e -> Alcotest.failf "model rejected: %a" Dqbf.Skolem.pp_failure e));
  (* an acyclic UNSAT instance that reaches the QBF stage directly:
     y sees nothing but must equal a universal *)
  let g = F.create () in
  F.add_universal g 0;
  F.add_existential g 1 ~deps:Bitset.empty;
  F.set_matrix g (M.mk_iff (F.man g) (M.input (F.man g) 1) (M.input (F.man g) 0));
  let v, stats =
    Hqs.solve_formula ~config:{ config with chaos = chaos [ "qbf.elim" ] } g
  in
  Alcotest.check verdict_t "still unsat" Hqs.Unsat v;
  check "fell back to search" true (degraded_mem "qbf.elim->search[injected]" stats)

let test_injected_restart () =
  (* a fault at the universal-elimination step is not recoverable within
     the stage: it must trigger the bounded degraded restart *)
  let config = { Hqs.default_config with chaos = chaos [ "elim.universal" ] } in
  let v, stats = Hqs.solve_formula ~config (example1 ~crossed:false) in
  Alcotest.check verdict_t "still sat" Hqs.Sat v;
  check_int "one restart" 1 stats.Hqs.restarts;
  check "injection recorded" true (degraded_mem "elim.universal->memout[injected]" stats);
  check "restart recorded" true (degraded_mem "solve->restart-degraded[node-limit]" stats);
  let v, stats =
    Hqs.solve_formula
      ~config:{ config with chaos = chaos [ "elim.universal" ] }
      (example1 ~crossed:true)
  in
  Alcotest.check verdict_t "still unsat" Hqs.Unsat v;
  check_int "one restart" 1 stats.Hqs.restarts

let test_injected_no_restart_propagates () =
  let config =
    {
      Hqs.default_config with
      chaos = chaos [ "elim.universal" ];
      restart_on_memout = false;
    }
  in
  Alcotest.check_raises "memout escapes" Budget.Out_of_memory_budget (fun () ->
      ignore (Hqs.solve_formula ~config (example1 ~crossed:false)))

(* ------------------------------------------------- genuine node limits *)

(* Acyclic instance: one existential depending on every universal, with
   the matrix y <-> xor(x0..x7). The prefix linearizes immediately, so
   the solve goes straight to the QBF back end; the elimination back end
   must copy the ~24-node cone into a fresh manager and blows a 10-node
   limit there, while the QDPLL fallback encodes to clauses and never
   allocates an AIG node. *)
let xor_chain_formula ~nu =
  let f = F.create () in
  for x = 0 to nu - 1 do
    F.add_universal f x
  done;
  F.add_existential f nu ~deps:(Bitset.of_list (List.init nu Fun.id));
  let man = F.man f in
  let xs = List.init nu (fun x -> M.input man x) in
  let parity = List.fold_left (fun acc x -> M.mk_xor man acc x) M.false_ xs in
  F.set_matrix f (M.mk_iff man (M.input man nu) parity);
  f

let test_real_qbf_elim_fallback () =
  let f = xor_chain_formula ~nu:8 in
  (* unit/pure probing cofactors the matrix and would hit the limit
     before the QBF stage; disable it to aim the blowup at qbf.elim *)
  let config = { Hqs.default_config with node_limit = Some 10; use_unitpure = false } in
  let v, stats = Hqs.solve_formula ~config f in
  Alcotest.check verdict_t "solved, not memout" Hqs.Sat v;
  check "elim fell back to search" true (degraded_mem "qbf.elim->search[node-limit]" stats);
  check_int "no restart needed" 0 stats.Hqs.restarts

(* Full Shannon expansion of x0^x1^y0^y1 over a given variable order:
   functionally the parity function, structurally a distinct ITE tree
   per order, so hashing cannot merge the variants but FRAIG can. *)
let xor4_variant man order =
  let rec expand parity = function
    | [] -> if parity then M.true_ else M.false_
    | v :: rest ->
        M.mk_ite man (M.input man v) (expand (not parity) rest) (expand parity rest)
  in
  expand false order

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x -> List.map (fun p -> x :: p) (permutations (List.filter (fun y -> y <> x) l)))
        l

(* y0 may see only x0 and y1 only x1, so the incomparable deps force a
   universal elimination; the matrix is a conjunction of all 24
   expansion orders of the same parity constraint, pure functional
   redundancy that elimination doubles but a FRAIG sweep collapses. *)
let redundant_parity_formula () =
  let f = F.create () in
  F.add_universal f 0;
  F.add_universal f 1;
  F.add_existential f 2 ~deps:(Bitset.singleton 0);
  F.add_existential f 3 ~deps:(Bitset.singleton 1);
  let man = F.man f in
  let variants = List.map (xor4_variant man) (permutations [ 0; 1; 2; 3 ]) in
  F.set_matrix f (M.mk_and_list man variants);
  f

let test_real_degraded_restart () =
  let f = redundant_parity_formula () in
  let cone = M.cone_size (F.man f) (F.matrix f) in
  check "matrix is genuinely redundant" true (cone > 100);
  (* headroom too small for eliminating a universal over the redundant
     matrix, ample once the restart's initial FRAIG sweep has collapsed
     the variants *)
  let node_limit = Some (cone + 32) in
  let config = { Hqs.default_config with node_limit } in
  (* without the restart the limit genuinely bites *)
  Alcotest.check_raises "memout without restart" Budget.Out_of_memory_budget (fun () ->
      ignore (Hqs.solve_formula ~config:{ config with restart_on_memout = false } f));
  (* with the restart (the default) the instance is solved, not Memout *)
  let v, stats = Hqs.solve_formula ~config f in
  Alcotest.check verdict_t "solved via restart" Hqs.Sat v;
  check_int "one restart" 1 stats.Hqs.restarts;
  check "restart recorded" true (degraded_mem "solve->restart-degraded[node-limit]" stats)

(* ------------------------------------------------- degradations on spans *)

let test_chaos_surfaces_in_trace () =
  (* with tracing armed, an injected mid-elimination fault must show up
     as an annotated "degrade" instant event inside the span that was
     open when it fired — here the elimination-set selection *)
  let config = { Hqs.default_config with chaos = chaos [ "maxsat.minset" ] } in
  Obs.Trace.reset ();
  Obs.Trace.start ();
  let v, stats = Hqs.solve_formula ~config (example1 ~crossed:false) in
  Obs.Trace.stop ();
  Alcotest.check verdict_t "still sat" Hqs.Sat v;
  check "degradation recorded" true (degraded_mem "maxsat.minset->greedy[injected]" stats);
  let evs = Obs.Trace.events () in
  let attr name e =
    match List.assoc_opt name e.Obs.Trace.attrs with Some (Obs.Str s) -> Some s | _ -> None
  in
  let rec scan open_spans = function
    | [] -> Alcotest.fail "no degrade event in the trace"
    | e :: rest -> (
        match e.Obs.Trace.ph with
        | Obs.Trace.Begin -> scan (e.Obs.Trace.name :: open_spans) rest
        | Obs.Trace.End -> scan (List.tl open_spans) rest
        | Obs.Trace.Instant ->
            if String.equal e.Obs.Trace.name "degrade" then begin
              Alcotest.(check (option string))
                "annotated with the injection point" (Some "maxsat.minset") (attr "point" e);
              Alcotest.(check (option string)) "annotated as injected" (Some "injected")
                (attr "reason" e);
              check "fired inside the selection span" true
                (List.mem "elim.select" open_spans)
            end
            else scan open_spans rest)
  in
  scan [] evs

(* --------------------------------------------------- verdict invariance *)

let test_chaos_off_clean () =
  (* with chaos off and no limits hit, nothing degrades *)
  let v, stats = Hqs.solve_formula (example1 ~crossed:false) in
  Alcotest.check verdict_t "sat" Hqs.Sat v;
  check "no degradations" true (stats.Hqs.degraded = []);
  check_int "no restarts" 0 stats.Hqs.restarts;
  let inst = Fam.pec_xor ~length:3 ~boxes:1 ~fault:false in
  let v, stats = Hqs.solve_pcnf inst.Fam.pcnf in
  Alcotest.check verdict_t "pec sat" Hqs.Sat v;
  check "no degradations" true (stats.Hqs.degraded = [])

let test_verdicts_stable_under_chaos () =
  (* arm every injection point; verdicts on examples-scale instances
     must match the chaos-off run *)
  List.iter
    (fun fault ->
      let inst = Fam.pec_xor ~length:3 ~boxes:1 ~fault in
      let baseline, _ = Hqs.solve_pcnf inst.Fam.pcnf in
      let config = { Hqs.default_config with chaos = Chaos.create ~seed:7 ~points:[] () } in
      let v, stats = Hqs.solve_pcnf ~config inst.Fam.pcnf in
      Alcotest.check verdict_t "same verdict under chaos" baseline v;
      check "chaos actually fired" true (stats.Hqs.degraded <> []))
    [ false; true ]

let () =
  Alcotest.run "degrade"
    [
      ( "injected",
        [
          Alcotest.test_case "maxsat -> greedy" `Quick test_injected_maxsat;
          Alcotest.test_case "fraig -> compact" `Quick test_injected_fraig;
          Alcotest.test_case "qbf elim -> search" `Quick test_injected_qbf_elim;
          Alcotest.test_case "mid-elim -> restart" `Quick test_injected_restart;
          Alcotest.test_case "no-restart propagates" `Quick test_injected_no_restart_propagates;
        ] );
      ( "real limits",
        [
          Alcotest.test_case "qbf elim node limit" `Quick test_real_qbf_elim_fallback;
          Alcotest.test_case "degraded restart" `Quick test_real_degraded_restart;
        ] );
      ( "tracing",
        [ Alcotest.test_case "chaos surfaces on the open span" `Quick test_chaos_surfaces_in_trace ] );
      ( "invariance",
        [
          Alcotest.test_case "chaos off is clean" `Quick test_chaos_off_clean;
          Alcotest.test_case "verdicts stable under chaos" `Slow test_verdicts_stable_under_chaos;
        ] );
    ]
