open Hqs_util
module S = Sat.Solver
module L = Sat.Lit

let check = Alcotest.(check bool)

let result_t =
  Alcotest.testable
    (fun fmt r ->
      Format.pp_print_string fmt
        (match r with S.Sat -> "SAT" | S.Unsat -> "UNSAT" | S.Unknown -> "UNKNOWN"))
    (fun a b ->
      match (a, b) with
      | S.Sat, S.Sat | S.Unsat, S.Unsat | S.Unknown, S.Unknown -> true
      | _ -> false)

(* literals from DIMACS-style ints *)
let l = L.of_dimacs
let clause solver ints = S.add_clause solver (List.map l ints)

let solve_ints clause_list =
  let s = S.create () in
  List.iter (clause s) clause_list;
  (S.solve s, s)

(* ------------------------------------------------------- basic behaviour *)

let test_empty_problem () =
  let s = S.create () in
  Alcotest.check result_t "empty problem is SAT" S.Sat (S.solve s)

let test_unit () =
  let r, s = solve_ints [ [ 1 ]; [ -2 ] ] in
  Alcotest.check result_t "sat" S.Sat r;
  check "x1 true" true (S.value s 0);
  check "x2 false" false (S.value s 1)

let test_contradiction () =
  let r, _ = solve_ints [ [ 1 ]; [ -1 ] ] in
  Alcotest.check result_t "unsat" S.Unsat r

let test_empty_clause () =
  let s = S.create () in
  S.add_clause s [];
  check "not ok" false (S.is_ok s);
  Alcotest.check result_t "unsat" S.Unsat (S.solve s)

let test_tautology_dropped () =
  let r, _ = solve_ints [ [ 1; -1 ]; [ 2 ] ] in
  Alcotest.check result_t "sat" S.Sat r

let test_propagation_chain () =
  (* x1, x1->x2, x2->x3, ..., forcing all true *)
  let n = 50 in
  let s = S.create () in
  clause s [ 1 ];
  for i = 1 to n - 1 do
    clause s [ -i; i + 1 ]
  done;
  Alcotest.check result_t "sat" S.Sat (S.solve s);
  for i = 0 to n - 1 do
    check (Printf.sprintf "x%d" i) true (S.value s i)
  done

let test_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: classic small UNSAT. p_ij = pigeon i in hole j. *)
  let var i j = (i * 2) + j + 1 in
  let s = S.create () in
  for i = 0 to 2 do
    clause s [ var i 0; var i 1 ]
  done;
  for j = 0 to 1 do
    for i = 0 to 2 do
      for i' = i + 1 to 2 do
        clause s [ -var i j; -var i' j ]
      done
    done
  done;
  Alcotest.check result_t "php(3,2) unsat" S.Unsat (S.solve s)

let test_assumptions () =
  let s = S.create () in
  clause s [ 1; 2 ];
  clause s [ -1; 2 ];
  Alcotest.check result_t "free: sat" S.Sat (S.solve s);
  Alcotest.check result_t "assume -2: unsat" S.Unsat (S.solve ~assumptions:[ l (-2) ] s);
  Alcotest.check result_t "assume 2: sat" S.Sat (S.solve ~assumptions:[ l 2 ] s);
  (* solver still reusable *)
  Alcotest.check result_t "free again: sat" S.Sat (S.solve s)

let test_incremental () =
  let s = S.create () in
  clause s [ 1; 2 ];
  Alcotest.check result_t "sat" S.Sat (S.solve s);
  clause s [ -1 ];
  Alcotest.check result_t "still sat" S.Sat (S.solve s);
  check "x2 true" true (S.value s 1);
  clause s [ -2 ];
  Alcotest.check result_t "now unsat" S.Unsat (S.solve s);
  Alcotest.check result_t "stays unsat" S.Unsat (S.solve s)

let test_conflict_limit () =
  (* php(6,5) needs many conflicts; a limit of 1 must give Unknown *)
  let n = 6 in
  let var i j = (i * (n - 1)) + j + 1 in
  let s = S.create () in
  for i = 0 to n - 1 do
    clause s (List.init (n - 1) (fun j -> var i j))
  done;
  for j = 0 to n - 2 do
    for i = 0 to n - 1 do
      for i' = i + 1 to n - 1 do
        clause s [ -var i j; -var i' j ]
      done
    done
  done;
  Alcotest.check result_t "limited: unknown" S.Unknown (S.solve ~conflict_limit:1 s);
  Alcotest.check result_t "unlimited: unsat" S.Unsat (S.solve s)

let test_timeout_raises () =
  let n = 9 in
  let var i j = (i * (n - 1)) + j + 1 in
  let s = S.create () in
  for i = 0 to n - 1 do
    clause s (List.init (n - 1) (fun j -> var i j))
  done;
  for j = 0 to n - 2 do
    for i = 0 to n - 1 do
      for i' = i + 1 to n - 1 do
        clause s [ -var i j; -var i' j ]
      done
    done
  done;
  let budget = Budget.of_seconds 0.0 in
  Alcotest.check_raises "timeout" Budget.Timeout (fun () ->
      ignore (S.solve ~budget s))

(* --------------------------------------------------- model-based testing *)

(* brute-force: clauses over vars 0..n-1 as int lists (DIMACS-signed) *)
let brute_force n clauses =
  let rec try_assign a v =
    if v = n then
      List.for_all
        (fun cl -> List.exists (fun i -> if i > 0 then a.(i - 1) else not a.(-i - 1)) cl)
        clauses
    else begin
      a.(v) <- false;
      try_assign a (v + 1)
      || begin
           a.(v) <- true;
           try_assign a (v + 1)
         end
    end
  in
  try_assign (Array.make n false) 0

let eval_model model clauses =
  List.for_all
    (fun cl ->
      List.exists (fun i -> if i > 0 then model.(i - 1) else not model.(-i - 1)) cl)
    clauses

let cnf_gen =
  (* random CNF over <= 8 vars, clause width 1-4 *)
  QCheck.Gen.(
    let lit_g n = map2 (fun v s -> if s then v + 1 else -(v + 1)) (int_bound (n - 1)) bool in
    int_range 1 8 >>= fun n ->
    list_size (int_bound 30) (list_size (int_range 1 4) (lit_g n)) >>= fun clauses ->
    return (n, clauses))

let cnf_arb =
  QCheck.make
    ~print:(fun (n, cls) ->
      Printf.sprintf "n=%d %s" n
        (String.concat " ; "
           (List.map (fun cl -> String.concat "," (List.map string_of_int cl)) cls)))
    cnf_gen

let prop_agrees_with_brute_force =
  QCheck.Test.make ~name:"cdcl agrees with brute force" ~count:500 cnf_arb
    (fun (n, clauses) ->
      let s = S.create () in
      S.ensure_var s (n - 1);
      List.iter (clause s) clauses;
      let expected = brute_force n clauses in
      match S.solve s with
      | S.Sat -> expected && eval_model (S.model s) clauses
      | S.Unsat -> not expected
      | S.Unknown -> false)

let prop_assumptions_consistent =
  QCheck.Test.make ~name:"assumptions behave like unit clauses" ~count:200
    (QCheck.pair cnf_arb (QCheck.list_of_size (QCheck.Gen.int_bound 3) QCheck.bool))
    (fun ((n, clauses), signs) ->
      let assumptions = List.mapi (fun i s -> L.mk (i mod n) ~neg:s) signs in
      (* assumption-based solve must equal solving with those units added *)
      let s1 = S.create () in
      S.ensure_var s1 (n - 1);
      List.iter (clause s1) clauses;
      let r1 = S.solve ~assumptions s1 in
      let s2 = S.create () in
      S.ensure_var s2 (n - 1);
      List.iter (clause s2) clauses;
      List.iter (fun a -> S.add_clause s2 [ a ]) assumptions;
      let r2 = S.solve s2 in
      r1 = r2)

let prop_incremental_monotone =
  QCheck.Test.make ~name:"adding clauses never turns UNSAT into SAT" ~count:200
    (QCheck.pair cnf_arb cnf_arb) (fun ((n1, c1), (n2, c2)) ->
      let n = max n1 n2 in
      let s = S.create () in
      S.ensure_var s (n - 1);
      List.iter (clause s) c1;
      let r1 = S.solve s in
      List.iter (clause s) c2;
      let r2 = S.solve s in
      not (r1 = S.Unsat && r2 = S.Sat))

(* ----------------------------------------------------------------- dimacs *)

let test_dimacs_roundtrip () =
  let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  let cnf = Sat.Dimacs.parse_string text in
  Alcotest.(check int) "vars" 3 cnf.Sat.Dimacs.num_vars;
  Alcotest.(check int) "clauses" 2 (List.length cnf.Sat.Dimacs.clauses);
  let cnf2 = Sat.Dimacs.parse_string (Sat.Dimacs.to_string cnf) in
  check "roundtrip" true (cnf = cnf2);
  let s = S.create () in
  Sat.Dimacs.load_into s cnf;
  Alcotest.check result_t "loads and solves" S.Sat (S.solve s)

let test_dimacs_errors () =
  check "missing header" true
    (try
       ignore (Sat.Dimacs.parse_string "1 2 0\n");
       false
     with Failure _ -> true);
  check "unterminated" true
    (try
       ignore (Sat.Dimacs.parse_string "p cnf 2 1\n1 2\n");
       false
     with Failure _ -> true)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "sat"
    [
      ( "basic",
        [
          Alcotest.test_case "empty problem" `Quick test_empty_problem;
          Alcotest.test_case "units" `Quick test_unit;
          Alcotest.test_case "contradiction" `Quick test_contradiction;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "tautology dropped" `Quick test_tautology_dropped;
          Alcotest.test_case "propagation chain" `Quick test_propagation_chain;
          Alcotest.test_case "pigeonhole 3/2" `Quick test_pigeonhole_3_2;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "incremental" `Quick test_incremental;
          Alcotest.test_case "conflict limit" `Quick test_conflict_limit;
          Alcotest.test_case "timeout raises" `Quick test_timeout_raises;
        ] );
      ( "properties",
        qsuite
          [
            prop_agrees_with_brute_force;
            prop_assumptions_consistent;
            prop_incremental_monotone;
          ] );
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "errors" `Quick test_dimacs_errors;
        ] );
    ]
