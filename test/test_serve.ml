(* End-to-end tests of the serve daemon: each case forks a real daemon
   (Serve.Daemon.run in a child process), drives it over its Unix-domain
   socket, then SIGTERMs it and asserts a clean drained exit. The
   robustness surface under test: structured replies for crash/timeout/
   overload, chaos-killed workers, client disconnects, cache hits and
   audits, and graceful drain. *)

module D = Serve.Daemon
module P = Serve.Proto
module C = Serve.Client

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sat_text = "p cnf 2 2\na 1 0\nd 2 1 0\n1 -2 0\n-1 2 0\n"
let unsat_text = "p cnf 2 2\na 1 0\nd 2 0\n1 -2 0\n-1 2 0\n"

(* same instance as [sat_text] under the renaming 1<->2: must hit the
   canonical-form cache *)
let sat_renamed_text = "p cnf 2 2\na 2 0\nd 1 2 0\n-2 1 0\n2 -1 0\n"

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "/tmp/hqs_serve_test_%d_%d.sock" (Unix.getpid ()) !n

(* fast test pool: tight grace and backoff so failure cases resolve
   quickly *)
let test_config ?(workers = 2) ?(queue_cap = 16) socket_path =
  {
    (D.default ~socket_path) with
    D.workers;
    queue_cap;
    default_timeout_s = 10.;
    max_timeout_s = 20.;
    kill_grace_s = 0.5;
    backoff = { Exec.Backoff.default with Exec.Backoff.base_s = 0.01; max_s = 0.05 };
  }

let wait_ready socket =
  let rec go n =
    if n = 0 then Alcotest.fail "daemon did not come up";
    match C.roundtrip ~socket P.Ping with
    | Ok P.Pong -> ()
    | Ok _ | Error _ ->
        Unix.sleepf 0.05;
        go (n - 1)
  in
  go 100

(* fork a daemon, wait until it answers pings, run [f], SIGTERM it and
   assert the drained exit status *)
let with_daemon cfg f =
  let pid = Unix.fork () in
  if pid = 0 then begin
    D.run cfg;
    Unix._exit 0
  end
  else
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [ Unix.WNOHANG ] pid) with Unix.Unix_error _ -> ());
        if Sys.file_exists cfg.D.socket_path then Sys.remove cfg.D.socket_path)
      (fun () ->
        wait_ready cfg.D.socket_path;
        let r = f () in
        Unix.kill pid Sys.sigterm;
        let _, st = Unix.waitpid [] pid in
        check "daemon drained and exited 0" true (st = Unix.WEXITED 0);
        r)

let solve ?timeout_s ?(sleep_s = 0.) ?(want_cert = false) ~socket text =
  C.roundtrip ~socket (P.Solve { text; timeout_s; sleep_s; want_cert })

(* Stats_reply carries an inlined record; destructure to a tuple of
   (workers, queue_depth, metrics) *)
let stats ~socket =
  match C.roundtrip ~socket P.Stats with
  | Ok (P.Stats_reply { workers; queue_depth; metrics }) -> (workers, queue_depth, metrics)
  | Ok _ -> Alcotest.fail "stats: unexpected reply"
  | Error e -> Alcotest.failf "stats: %s" e

let metric ~socket name =
  let _, _, metrics = stats ~socket in
  match List.assoc_opt name metrics with
  | Some v -> v
  | None -> Alcotest.failf "metric %s missing from stats" name

(* raw connection helpers, for tests that need several requests in
   flight at once from a single-threaded client *)
let send_raw fd req = Exec.Ipc.write_frame fd (P.request_to_json req)

let recv_raw fd =
  match Exec.Ipc.read_frame fd with
  | Exec.Ipc.Frame j -> (
      match P.reply_of_json j with
      | Ok r -> r
      | Error e -> Alcotest.failf "bad reply: %s" e)
  | Exec.Ipc.Eof -> Alcotest.fail "connection closed before reply"
  | Exec.Ipc.Malformed e -> Alcotest.failf "torn reply: %s" e

let reply_str = function
  | Ok r -> Obs.Json.render (P.reply_to_json r)
  | Error e -> "transport error: " ^ e

(* metrics that trail the reply (respawns happen after the retry's
   verdict is sent): poll briefly instead of racing the daemon *)
let eventually_metric ~socket name pred =
  let rec go n =
    if pred (metric ~socket name) then true
    else if n = 0 then false
    else begin
      Unix.sleepf 0.05;
      go (n - 1)
    end
  in
  go 40

let contains hay needle =
  try
    ignore (Str.search_forward (Str.regexp_string needle) hay 0);
    true
  with Not_found -> false

(* ------------------------------------------------------------ basic solve *)

let test_basic_verdicts () =
  let socket = fresh_socket () in
  with_daemon (test_config socket) (fun () ->
      (match solve ~socket sat_text with
      | Ok (P.Verdict { sat = true; cached = false; _ }) -> ()
      | Ok _ -> Alcotest.fail "sat: unexpected reply"
      | Error e -> Alcotest.failf "sat: %s" e);
      (match solve ~socket unsat_text with
      | Ok (P.Verdict { sat = false; cached = false; _ }) -> ()
      | _ -> Alcotest.fail "unsat: unexpected reply");
      (match solve ~socket "p cnf garbage\n" with
      | Ok (P.Invalid _) -> ()
      | _ -> Alcotest.fail "garbage: expected Invalid");
      check "requests counted" true (metric ~socket "serve.requests" >= 2.))

(* ------------------------------------------------------------------ cache *)

let test_cache_hit_same_verdict () =
  let socket = fresh_socket () in
  with_daemon (test_config socket) (fun () ->
      let v1 =
        match solve ~socket sat_text with
        | Ok (P.Verdict { sat; cached = false; _ }) -> sat
        | _ -> Alcotest.fail "first solve failed"
      in
      (* byte-identical duplicate *)
      (match solve ~socket sat_text with
      | Ok (P.Verdict { sat; cached = true; _ }) ->
          check "duplicate gets the same verdict" true (sat = v1)
      | _ -> Alcotest.fail "duplicate was not a cache hit");
      (* renamed instance: hits through the canonicalizer *)
      (match solve ~socket sat_renamed_text with
      | Ok (P.Verdict { sat; cached = true; _ }) ->
          check "renamed instance gets the same verdict" true (sat = v1)
      | _ -> Alcotest.fail "renamed instance was not a cache hit");
      check "hits counted" true (metric ~socket "serve.cache_hits" >= 2.))

let test_cache_persists_across_restart () =
  let cache = Filename.temp_file "serve_cache" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists cache then Sys.remove cache)
    (fun () ->
      let socket1 = fresh_socket () in
      with_daemon
        { (test_config socket1) with D.cache_path = Some cache }
        (fun () ->
          match solve ~socket:socket1 unsat_text with
          | Ok (P.Verdict { sat = false; cached = false; _ }) -> ()
          | _ -> Alcotest.fail "first daemon: fresh solve expected");
      let socket2 = fresh_socket () in
      with_daemon
        { (test_config socket2) with D.cache_path = Some cache }
        (fun () ->
          match solve ~socket:socket2 unsat_text with
          | Ok (P.Verdict { sat = false; cached = true; _ }) -> ()
          | _ -> Alcotest.fail "second daemon: preloaded cache hit expected"))

(* poison the persistent cache with a wrong verdict, then let the Full-
   check audit catch it: the sampled re-solve must disagree, evict the
   entry, and tell the client; the next request must be a fresh solve *)
let test_audit_catches_poisoned_cache () =
  let cache = Filename.temp_file "serve_cache" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists cache then Sys.remove cache)
    (fun () ->
      let key =
        (Dqbf.Canon.canonicalize (Dqbf.Pcnf.parse_string sat_text)).Dqbf.Canon.key
      in
      let c = Serve.Cache.open_ ~path:cache () in
      Serve.Cache.store c key ~sat:false ~elapsed_s:0.1;
      Serve.Cache.close c;
      let socket = fresh_socket () in
      with_daemon
        {
          (test_config socket) with
          D.cache_path = Some cache;
          check_level = Check.Full;
          audit_period = 1;
        }
        (fun () ->
          (match solve ~socket sat_text with
          | Ok (P.Audit_failed { cached_sat = false; fresh_sat = true }) -> ()
          | Ok (P.Verdict { cached; _ }) ->
              Alcotest.failf "poisoned entry served (cached=%b)" cached
          | _ -> Alcotest.fail "expected Audit_failed");
          check "audit failure counted" true
            (metric ~socket "serve.cache_audit_failures" >= 1.);
          (* the poisoned entry is gone: fresh solve, correct verdict *)
          match solve ~socket sat_text with
          | Ok (P.Verdict { sat = true; cached = false; _ }) -> ()
          | _ -> Alcotest.fail "expected fresh correct solve after eviction"))

(* --------------------------------------------------------------- deadlines *)

let test_deadline_expiry () =
  let socket = fresh_socket () in
  with_daemon (test_config socket) (fun () ->
      (* worker-side budget expiry: the sleep hook burns the budget *)
      (match solve ~socket ~timeout_s:0.2 ~sleep_s:0.6 sat_text with
      | Ok (P.Failed { failure = P.F_timeout; _ }) -> ()
      | _ -> Alcotest.fail "expected structured timeout");
      check "timeout counted" true (metric ~socket "serve.timeouts" >= 1.);
      (* the pool still works afterwards *)
      match solve ~socket sat_text with
      | Ok (P.Verdict { sat = true; _ }) -> ()
      | _ -> Alcotest.fail "pool dead after timeout")

let test_stuck_worker_killed () =
  let socket = fresh_socket () in
  with_daemon (test_config socket) (fun () ->
      (* sleep far past deadline + grace: the daemon must SIGKILL the
         worker and still hand the client a structured timeout *)
      let t0 = Hqs_util.Budget.now () in
      (match solve ~socket ~timeout_s:0.2 ~sleep_s:30. sat_text with
      | Ok (P.Failed { failure = P.F_timeout; detail; _ }) ->
          check "reply names the kill" true (contains detail "killed")
      | _ -> Alcotest.fail "expected timeout reply for stuck worker");
      check "reply came at deadline+grace, not after the sleep" true
        (Hqs_util.Budget.now () -. t0 < 5.);
      check "respawn counted" true (metric ~socket "serve.respawns" >= 1.);
      (* the respawned pool solves again *)
      match solve ~socket sat_text with
      | Ok (P.Verdict { sat = true; _ }) -> ()
      | _ -> Alcotest.fail "pool dead after wall kill")

(* ------------------------------------------------------------------ chaos *)

let chaos_config ?(attempts = [ 1 ]) socket =
  (* the first solve request in a fresh daemon gets jid 1 *)
  let points = List.map (fun a -> D.kill_point ~jid:1 ~attempt:a) attempts in
  {
    (test_config socket) with
    D.chaos = Hqs_util.Chaos.create ~limit:(List.length attempts) ~seed:7 ~points ();
  }

let test_chaos_kill_recovers () =
  let socket = fresh_socket () in
  with_daemon (chaos_config ~attempts:[ 1 ] socket) (fun () ->
      (* attempt 1 is chaos-killed mid-request; the retry must succeed *)
      (match solve ~socket sat_text with
      | Ok (P.Verdict { sat = true; _ }) -> ()
      | _ -> Alcotest.fail "expected verdict after chaos retry");
      check "crash counted" true (metric ~socket "serve.worker_crashes" >= 1.);
      check "respawn counted" true
        (eventually_metric ~socket "serve.respawns" (fun v -> v >= 1.)))

let test_chaos_kill_exhausts_attempts () =
  let socket = fresh_socket () in
  with_daemon (chaos_config ~attempts:[ 1; 2; 3 ] socket) (fun () ->
      (* every attempt dies: the client still gets a structured reply *)
      (match solve ~socket sat_text with
      | Ok (P.Failed { failure = P.F_crash; detail; _ }) ->
          check "detail mentions attempts" true (contains detail "attempt")
      | _ -> Alcotest.fail "expected structured crash reply");
      (* the pool recovered: a fresh (jid 2) solve passes *)
      match solve ~socket sat_text with
      | Ok (P.Verdict { sat = true; _ }) -> ()
      | _ -> Alcotest.fail "pool dead after crash-out")

(* -------------------------------------------------------------- admission *)

let test_queue_overflow_sheds () =
  let socket = fresh_socket () in
  with_daemon
    (test_config ~workers:1 ~queue_cap:1 socket)
    (fun () ->
      (* conn1 occupies the single worker; conn2 fills the queue; a
         third solve must be shed with an explicit Overloaded reply *)
      let fd1 = C.connect socket in
      let fd2 = C.connect socket in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close fd1 with Unix.Unix_error _ -> ());
          try Unix.close fd2 with Unix.Unix_error _ -> ())
        (fun () ->
          send_raw fd1 (P.Solve { text = sat_text; timeout_s = Some 5.; sleep_s = 0.5; want_cert = false });
          (* let the daemon dispatch conn1's job before conn2's arrives,
             otherwise both land in one select batch and conn2 is the
             one shed *)
          Unix.sleepf 0.1;
          send_raw fd2
            (P.Solve { text = unsat_text; timeout_s = Some 5.; sleep_s = 0.3; want_cert = false });
          Unix.sleepf 0.1;
          (match solve ~socket sat_text with
          | Ok (P.Overloaded { queue_depth }) ->
              check "shed reply reports depth" true (queue_depth >= 1)
          | r -> Alcotest.failf "expected Overloaded, got %s" (reply_str r));
          check "shed counted" true (metric ~socket "serve.shed" >= 1.);
          (* both admitted jobs still complete correctly *)
          (match recv_raw fd1 with
          | P.Verdict { sat = true; _ } -> ()
          | _ -> Alcotest.fail "conn1 verdict lost");
          match recv_raw fd2 with
          | P.Verdict { sat = false; _ } -> ()
          | _ -> Alcotest.fail "conn2 verdict lost"))

let test_client_disconnect_mid_reply () =
  let socket = fresh_socket () in
  with_daemon (test_config socket) (fun () ->
      (* send a solve and vanish before the reply; the daemon must
         survive, finish the job, and cache the verdict *)
      let fd = C.connect socket in
      send_raw fd (P.Solve { text = sat_text; timeout_s = Some 5.; sleep_s = 0.2; want_cert = false });
      Unix.close fd;
      Unix.sleepf 0.5;
      (match solve ~socket sat_text with
      | Ok (P.Verdict { sat = true; cached; _ }) ->
          check "abandoned job's verdict was cached" true cached
      | r -> Alcotest.failf "daemon unhealthy after client disconnect: %s" (reply_str r));
      check "daemon still answers pings" true
        (match C.roundtrip ~socket P.Ping with Ok P.Pong -> true | _ -> false))

(* ------------------------------------------------------------------ drain *)

let test_sigterm_drain_finishes_inflight () =
  let socket = fresh_socket () in
  let cfg = test_config socket in
  let pid = Unix.fork () in
  if pid = 0 then begin
    D.run cfg;
    Unix._exit 0
  end
  else
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [ Unix.WNOHANG ] pid) with Unix.Unix_error _ -> ());
        if Sys.file_exists socket then Sys.remove socket)
      (fun () ->
        wait_ready socket;
        (* put a job in flight, then SIGTERM while it runs *)
        let fd = C.connect socket in
        send_raw fd (P.Solve { text = sat_text; timeout_s = Some 5.; sleep_s = 0.4; want_cert = false });
        Unix.sleepf 0.1;
        Unix.kill pid Sys.sigterm;
        Unix.sleepf 0.05;
        (* new solves are refused while draining (the daemon may already
           have closed the listen socket, which is equally acceptable) *)
        (match solve ~socket sat_text with
        | Ok P.Draining | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected Draining refusal during drain");
        (* the in-flight job still completes with its verdict *)
        (match recv_raw fd with
        | P.Verdict { sat = true; _ } -> ()
        | _ -> Alcotest.fail "in-flight job lost during drain");
        Unix.close fd;
        let _, st = Unix.waitpid [] pid in
        check "drained exit 0" true (st = Unix.WEXITED 0);
        check "socket removed on exit" false (Sys.file_exists socket))

(* ---------------------------------------------------------------- metrics *)

let test_serve_metrics_present () =
  let socket = fresh_socket () in
  with_daemon (test_config socket) (fun () ->
      ignore (solve ~socket sat_text);
      ignore (solve ~socket sat_text);
      ignore (solve ~socket ~timeout_s:0.1 ~sleep_s:0.4 unsat_text);
      let workers, _, metrics = stats ~socket in
      check_int "stats reports the pool size" 2 workers;
      let names = List.map fst metrics in
      List.iter
        (fun n ->
          check
            (Printf.sprintf "metric %s present" n)
            true
            (List.exists (String.equal n) names))
        [
          "serve.requests";
          "serve.queue_depth";
          "serve.shed";
          "serve.respawns";
          "serve.worker_crashes";
          "serve.cache_hits";
          "serve.cache_misses";
          "serve.timeouts";
          "serve.request_latency_s.count";
          "serve.request_latency_s.sum";
        ];
      check "latency histogram saw the requests" true
        (metric ~socket "serve.request_latency_s.count" >= 2.))

(* ---------------------------------------------------------- certification *)

let certify_config ?(check_level = Check.Cheap) socket =
  { (test_config socket) with D.certify = true; check_level }

let test_certified_solve_ships_artifact () =
  let socket = fresh_socket () in
  with_daemon (certify_config socket) (fun () ->
      (match solve ~socket ~want_cert:true sat_text with
      | Ok (P.Verdict { sat = true; cert = Some blob; _ }) -> (
          check "artifact is a SAT certificate" true (contains blob "s cert SAT");
          (* the shipped blob is independently parsable and checks out
             against the exact instance bytes the daemon solved *)
          match Cert.parse blob with
          | Ok c -> (
              match Cert.check ~instance_text:sat_text (Dqbf.Pcnf.parse_string sat_text) c with
              | Ok () -> ()
              | Error e -> Alcotest.failf "shipped certificate rejected: %s" e)
          | Error e -> Alcotest.failf "shipped certificate unparsable: %s" e)
      | r -> Alcotest.failf "expected a certificate-carrying verdict, got %s" (reply_str r));
      (* a client that does not ask gets no blob *)
      (match solve ~socket unsat_text with
      | Ok (P.Verdict { sat = false; cert = None; _ }) -> ()
      | r -> Alcotest.failf "unsolicited certificate: %s" (reply_str r));
      check "audits counted" true (metric ~socket "serve.cert_audits" >= 2.))

(* the recovery drill: chaos corrupts jid 1's certificate before the
   in-worker audit; the daemon must tombstone the cache entry, re-solve
   escalated, and still hand the client a verified artifact *)
let test_cert_poison_recovers () =
  let socket = fresh_socket () in
  let cfg =
    {
      (certify_config socket) with
      D.chaos =
        Hqs_util.Chaos.create ~limit:1 ~seed:7
          ~points:[ D.cert_point ~jid:1 ~attempt:1 ]
          ();
    }
  in
  with_daemon cfg (fun () ->
      (match solve ~socket ~want_cert:true sat_text with
      | Ok (P.Verdict { sat = true; audited = true; cert = Some blob; _ }) ->
          check "recovered artifact is a SAT certificate" true (contains blob "s cert SAT")
      | r -> Alcotest.failf "expected recovered certified verdict, got %s" (reply_str r));
      check "cert audit failure counted" true
        (metric ~socket "serve.cert_audit_failed" >= 1.);
      (* the poisoned attempt must not have leaked a cache entry: the
         recovery re-solve stored the good verdict, so this hits *)
      match solve ~socket sat_text with
      | Ok (P.Verdict { sat = true; cached = true; _ }) -> ()
      | r -> Alcotest.failf "expected cache hit after recovery, got %s" (reply_str r))

(* poison every attempt: the job must be quarantined with a structured
   crash reply instead of looping forever *)
let test_cert_poison_exhausts_attempts () =
  let socket = fresh_socket () in
  let points = List.map (fun a -> D.cert_point ~jid:1 ~attempt:a) [ 1; 2; 3 ] in
  let cfg =
    {
      (certify_config socket) with
      D.chaos = Hqs_util.Chaos.create ~limit:3 ~seed:7 ~points ();
    }
  in
  with_daemon cfg (fun () ->
      (match solve ~socket ~want_cert:true sat_text with
      | Ok (P.Failed { failure = P.F_crash; detail; _ }) ->
          check "detail names the audit" true (contains detail "certificate audit")
      | r -> Alcotest.failf "expected quarantine crash reply, got %s" (reply_str r));
      (* the pool is healthy and the tombstoned key re-solves cleanly *)
      match solve ~socket sat_text with
      | Ok (P.Verdict { sat = true; cached = false; _ }) -> ()
      | r -> Alcotest.failf "pool unhealthy after quarantine: %s" (reply_str r))

(* ------------------------------------------------- hqs query exit codes *)

(* drive the installed CLI against a forked daemon and assert the full
   documented exit-code surface (10/20/124/125/5/75/3/2, certificate
   round trip); tests run from _build/default/test, so the binaries sit
   one directory up *)
let cli = "../bin/hqs_cli.exe"
let certcheck = "../bin/certcheck.exe"

let write_tmp tag text =
  let path = Filename.temp_file tag ".dqdimacs" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text);
  path

let run_cmd cmd =
  match Unix.system (cmd ^ " >/dev/null 2>&1") with
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n

let query_code ~socket args = run_cmd (Printf.sprintf "%s query --socket %s %s" cli socket args)

let test_query_exit_codes_verdicts () =
  let sat_file = write_tmp "serve_sat" sat_text in
  let unsat_file = write_tmp "serve_unsat" unsat_text in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove sat_file;
      Sys.remove unsat_file)
    (fun () ->
      let socket = fresh_socket () in
      with_daemon (test_config socket) (fun () ->
          (* timeout first: once the verdict is cached, the sleep hook is
             short-circuited by the cache hit *)
          check_int "timeout exits 124" 124
            (query_code ~socket (Printf.sprintf "-t 0.2 --sleep 0.6 %s" sat_file));
          check_int "SAT exits 10" 10 (query_code ~socket sat_file);
          check_int "UNSAT exits 20" 20 (query_code ~socket unsat_file);
          check_int "ping exits 0" 0 (query_code ~socket "--ping");
          check_int "health exits 0" 0 (query_code ~socket "--health"));
      check_int "unreachable daemon exits 2" 2 (query_code ~socket:"/tmp/no_such.sock" "--ping"))

let test_query_exit_code_memout () =
  (* an instance that genuinely needs AIG construction, so a tiny node
     budget trips the heap governor (the 2-variable smoke instances are
     dispatched by preprocessing without building a single node) *)
  let inst = Circuit.Families.adder ~bits:4 ~boxes:2 ~fault:false in
  let hard_file = write_tmp "serve_memout" (Dqbf.Pcnf.to_string inst.Circuit.Families.pcnf) in
  Fun.protect
    ~finally:(fun () -> Sys.remove hard_file)
    (fun () ->
      let socket = fresh_socket () in
      let cfg =
        {
          (test_config socket) with
          D.solver =
            { Hqs.default_config with Hqs.node_limit = Some 64; restart_on_memout = false };
        }
      in
      with_daemon cfg (fun () ->
          check_int "memout exits 125" 125 (query_code ~socket hard_file)))

let test_query_exit_code_crash () =
  let sat_file = write_tmp "serve_sat" sat_text in
  Fun.protect
    ~finally:(fun () -> Sys.remove sat_file)
    (fun () ->
      let socket = fresh_socket () in
      with_daemon
        (chaos_config ~attempts:[ 1; 2; 3 ] socket)
        (fun () -> check_int "crash-out exits 5" 5 (query_code ~socket sat_file)))

let test_query_exit_code_overloaded () =
  let sat_file = write_tmp "serve_sat" sat_text in
  Fun.protect
    ~finally:(fun () -> Sys.remove sat_file)
    (fun () ->
      let socket = fresh_socket () in
      with_daemon
        (test_config ~workers:1 ~queue_cap:1 socket)
        (fun () ->
          let fd1 = C.connect socket in
          let fd2 = C.connect socket in
          Fun.protect
            ~finally:(fun () ->
              (try Unix.close fd1 with Unix.Unix_error _ -> ());
              try Unix.close fd2 with Unix.Unix_error _ -> ())
            (fun () ->
              send_raw fd1
                (P.Solve
                   { text = sat_text; timeout_s = Some 5.; sleep_s = 0.5; want_cert = false });
              Unix.sleepf 0.1;
              send_raw fd2
                (P.Solve
                   { text = unsat_text; timeout_s = Some 5.; sleep_s = 0.3; want_cert = false });
              Unix.sleepf 0.1;
              check_int "overloaded exits 75" 75 (query_code ~socket sat_file);
              (* drain both admitted jobs before the daemon is stopped *)
              ignore (recv_raw fd1);
              ignore (recv_raw fd2))))

let test_query_exit_code_audit_failure () =
  let sat_file = write_tmp "serve_sat" sat_text in
  let cache = Filename.temp_file "serve_cache" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove sat_file;
      if Sys.file_exists cache then Sys.remove cache)
    (fun () ->
      let key =
        (Dqbf.Canon.canonicalize (Dqbf.Pcnf.parse_string sat_text)).Dqbf.Canon.key
      in
      let c = Serve.Cache.open_ ~path:cache () in
      Serve.Cache.store c key ~sat:false ~elapsed_s:0.1;
      Serve.Cache.close c;
      let socket = fresh_socket () in
      with_daemon
        {
          (test_config socket) with
          D.cache_path = Some cache;
          check_level = Check.Full;
          audit_period = 1;
        }
        (fun () -> check_int "cache-audit failure exits 3" 3 (query_code ~socket sat_file)))

(* the full external loop: query --certify writes the shipped artifact,
   and the isolated verifier accepts it against the instance bytes *)
let test_query_certify_roundtrip () =
  let sat_file = write_tmp "serve_sat" sat_text in
  let cert_file = Filename.temp_file "serve_cert" ".cert" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove sat_file;
      if Sys.file_exists cert_file then Sys.remove cert_file)
    (fun () ->
      let socket = fresh_socket () in
      with_daemon (certify_config socket) (fun () ->
          check_int "certified query exits 10" 10
            (query_code ~socket (Printf.sprintf "--certify %s %s" cert_file sat_file));
          check "artifact written" true (Sys.file_exists cert_file);
          check_int "external verifier accepts" 0
            (run_cmd (Printf.sprintf "%s %s %s" certcheck sat_file cert_file));
          (* corrupting the artifact must flip the verifier to `refuted' *)
          let blob = In_channel.with_open_bin cert_file In_channel.input_all in
          let bad = Str.replace_first (Str.regexp "h ") "h f" blob in
          Out_channel.with_open_bin cert_file (fun oc -> Out_channel.output_string oc bad);
          check "corrupted artifact rejected" true
            (run_cmd (Printf.sprintf "%s %s %s" certcheck sat_file cert_file) <> 0)))

let () =
  Exec.Ipc.ignore_sigpipe ();
  Alcotest.run "serve"
    [
      ( "solve",
        [
          Alcotest.test_case "basic verdicts" `Quick test_basic_verdicts;
          Alcotest.test_case "cache hit same verdict" `Quick test_cache_hit_same_verdict;
          Alcotest.test_case "cache persists across restart" `Quick
            test_cache_persists_across_restart;
          Alcotest.test_case "audit catches poisoned cache" `Quick
            test_audit_catches_poisoned_cache;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "deadline expiry" `Quick test_deadline_expiry;
          Alcotest.test_case "stuck worker killed" `Quick test_stuck_worker_killed;
          Alcotest.test_case "chaos kill recovers" `Quick test_chaos_kill_recovers;
          Alcotest.test_case "chaos kill exhausts attempts" `Quick
            test_chaos_kill_exhausts_attempts;
          Alcotest.test_case "queue overflow sheds" `Quick test_queue_overflow_sheds;
          Alcotest.test_case "client disconnect mid-reply" `Quick
            test_client_disconnect_mid_reply;
          Alcotest.test_case "sigterm drain finishes in-flight" `Quick
            test_sigterm_drain_finishes_inflight;
          Alcotest.test_case "serve metrics present" `Quick test_serve_metrics_present;
        ] );
      ( "certification",
        [
          Alcotest.test_case "certified solve ships artifact" `Quick
            test_certified_solve_ships_artifact;
          Alcotest.test_case "cert poison recovers" `Quick test_cert_poison_recovers;
          Alcotest.test_case "cert poison exhausts attempts" `Quick
            test_cert_poison_exhausts_attempts;
        ] );
      ( "query exit codes",
        [
          Alcotest.test_case "verdicts and probes" `Quick test_query_exit_codes_verdicts;
          Alcotest.test_case "memout" `Quick test_query_exit_code_memout;
          Alcotest.test_case "crash" `Quick test_query_exit_code_crash;
          Alcotest.test_case "overloaded" `Quick test_query_exit_code_overloaded;
          Alcotest.test_case "cache audit failure" `Quick test_query_exit_code_audit_failure;
          Alcotest.test_case "certify roundtrip" `Quick test_query_certify_roundtrip;
        ] );
    ]
