(* Static dependency-scheme analyzer (lib/analysis): hand-built cases for
   the resolution-path semantics, QCheck properties tying the refinement
   to the declared prefix, and end-to-end agreement with the trivial
   scheme through the full solver. *)

open Hqs_util
module Pcnf = Dqbf.Pcnf
module Rp = Analysis.Rp
module Scheme = Analysis.Scheme

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let pcnf ~num_vars ~univs ~exists ~clauses = { Pcnf.num_vars; univs; exists; clauses }

let analyze scheme p =
  match Pcnf.validate p with
  | Error m -> Alcotest.failf "bad fixture: %s" m
  | Ok () -> Rp.analyze ~scheme p

(* ------------------------------------------------------------ unit cases *)

(* x never appears in the matrix: dep(y) = {x} is spurious *)
let test_disconnected_pruned () =
  let p =
    pcnf ~num_vars:2 ~univs:[ 0 ] ~exists:[ (1, [ 0 ]) ] ~clauses:[ [ 2 ]; [ -2 ] ]
  in
  let refined, r = analyze Scheme.Rp p in
  check_int "edge pruned" 1 (List.length r.Rp.pruned);
  check "the x->y edge" true (r.Rp.pruned = [ (0, 1) ]);
  check "refined prefix dropped it" true (List.assoc 1 refined.Pcnf.exists = []);
  check "clauses untouched" true (refined.Pcnf.clauses = p.Pcnf.clauses)

(* y <-> x: both polarity paths exist, the edge is load-bearing *)
let test_connected_kept () =
  let p =
    pcnf ~num_vars:2 ~univs:[ 0 ] ~exists:[ (1, [ 0 ]) ]
      ~clauses:[ [ 1; -2 ]; [ -1; 2 ] ]
  in
  let refined, r = analyze Scheme.Rp p in
  check_int "nothing pruned" 0 (List.length r.Rp.pruned);
  check "dep kept" true (List.assoc 1 refined.Pcnf.exists = [ 0 ])

(* x appears only positively: x ~> y but no path leaves ~x, so no
   polarity-consistent pair exists and the edge goes *)
let test_single_polarity_pruned () =
  let p =
    pcnf ~num_vars:2 ~univs:[ 0 ] ~exists:[ (1, [ 0 ]) ] ~clauses:[ [ 1; 2 ]; [ 1; -2 ] ]
  in
  let _, r = analyze Scheme.Rp p in
  check "pruned" true (r.Rp.pruned = [ (0, 1) ])

(* the path x -> y runs through z; z is a connecting variable only if z
   depends on x *)
let test_connecting_variable () =
  let clauses = [ [ 1; 3 ]; [ -3; 2 ]; [ -1; -3 ]; [ 3; -2 ] ] in
  (* z (var 2) depends on x: paths connect in both polarities, edge kept *)
  let p_dep =
    pcnf ~num_vars:3 ~univs:[ 0 ] ~exists:[ (1, [ 0 ]); (2, [ 0 ]) ] ~clauses
  in
  let _, r_dep = analyze Scheme.Rp p_dep in
  check "kept through a depending connector" true
    (not (List.mem (0, 1) r_dep.Rp.pruned));
  (* z independent of x: z cannot connect, and x/y never share a clause *)
  let p_indep =
    pcnf ~num_vars:3 ~univs:[ 0 ] ~exists:[ (1, [ 0 ]); (2, []) ] ~clauses
  in
  let _, r_indep = analyze Scheme.Rp p_indep in
  check "pruned past an independent connector" true (List.mem (0, 1) r_indep.Rp.pruned)

let test_trivial_identity () =
  let p =
    pcnf ~num_vars:2 ~univs:[ 0 ] ~exists:[ (1, [ 0 ]) ] ~clauses:[ [ 2 ]; [ -2 ] ]
  in
  let refined, r = analyze Scheme.Trivial p in
  check "prefix unchanged" true (refined = p);
  check_int "no pruning" 0 (List.length r.Rp.pruned);
  check_int "edge counts agree" r.Rp.edges_before r.Rp.edges_after;
  check "not linearized" false r.Rp.linearized

(* incomparable declared sets {x1} / {x2}, but y2's dependency is
   spurious: pruning it makes the refined sets pairwise comparable *)
let test_linearized () =
  let p =
    pcnf ~num_vars:4 ~univs:[ 0; 1 ]
      ~exists:[ (2, [ 0 ]); (3, [ 1 ]) ]
      ~clauses:[ [ 1; -3 ]; [ -1; 3 ]; [ 4 ] ]
  in
  let refined, r = analyze Scheme.Rp p in
  check "y1 keeps x1" true (List.assoc 2 refined.Pcnf.exists = [ 0 ]);
  check "y2 loses x2" true (List.assoc 3 refined.Pcnf.exists = []);
  check "the pruned edge" true (r.Rp.pruned = [ (1, 3) ]);
  check_int "incomparable before" 1 r.Rp.incomparable_before;
  check_int "incomparable after" 0 r.Rp.incomparable_after;
  check "linearized" true r.Rp.linearized

(* ------------------------------------------------------------ properties *)

(* random PCNFs, mirroring test_dqbf's instance space at the clause level *)
type instance = {
  nu : int;
  ne : int;
  dep_masks : int list;
  clauses : (int * bool) list list;
}

let instance_gen =
  QCheck.Gen.(
    int_range 1 3 >>= fun nu ->
    int_range 1 3 >>= fun ne ->
    list_repeat ne (int_bound ((1 lsl nu) - 1)) >>= fun dep_masks ->
    let n = nu + ne in
    list_size (int_range 1 12) (list_size (int_range 1 3) (pair (int_bound (n - 1)) bool))
    >>= fun clauses -> return { nu; ne; dep_masks; clauses })

let instance_print { nu; ne; dep_masks; clauses } =
  Printf.sprintf "nu=%d ne=%d deps=[%s] clauses=%s" nu ne
    (String.concat ";" (List.map string_of_int dep_masks))
    (String.concat " "
       (List.map
          (fun c ->
            String.concat ","
              (List.map (fun (v, s) -> string_of_int (if s then -(v + 1) else v + 1)) c))
          clauses))

let instance_arb = QCheck.make ~print:instance_print instance_gen

let to_pcnf { nu; ne; dep_masks; clauses } =
  pcnf ~num_vars:(nu + ne)
    ~univs:(List.init nu Fun.id)
    ~exists:
      (List.mapi
         (fun i mask ->
           (nu + i, List.filter (fun x -> mask land (1 lsl x) <> 0) (List.init nu Fun.id)))
         dep_masks)
    ~clauses:
      (List.map (List.map (fun (v, s) -> if s then -(v + 1) else v + 1)) clauses)

let subset a b = List.for_all (fun x -> List.mem x b) a

let prop_refinement_shrinks =
  QCheck.Test.make ~count:300 ~name:"rp only removes dependency edges" instance_arb
    (fun inst ->
      let p = to_pcnf inst in
      let refined, r = Rp.analyze ~scheme:Scheme.Rp p in
      List.for_all2
        (fun (v, before) (v', after) -> v = v' && subset after before)
        p.Pcnf.exists refined.Pcnf.exists
      && refined.Pcnf.clauses = p.Pcnf.clauses
      && refined.Pcnf.univs = p.Pcnf.univs
      && r.Rp.edges_after = r.Rp.edges_before - List.length r.Rp.pruned
      && r.Rp.edges_after <= r.Rp.edges_before)

let prop_trivial_fixpoint =
  QCheck.Test.make ~count:100 ~name:"trivial scheme is the identity" instance_arb
    (fun inst ->
      let p = to_pcnf inst in
      let refined, r = Rp.analyze ~scheme:Scheme.Trivial p in
      refined = p && r.Rp.pruned = [] && r.Rp.edges_before = r.Rp.edges_after)

let prop_rp_preserves_truth =
  QCheck.Test.make ~count:120 ~name:"rp refinement preserves satisfiability"
    instance_arb (fun inst ->
      let p = to_pcnf inst in
      let refined, _ = Rp.analyze ~scheme:Scheme.Rp p in
      Dqbf.Reference.by_expansion (Pcnf.to_formula p)
      = Dqbf.Reference.by_expansion (Pcnf.to_formula refined))

(* end-to-end: the full solver under either scheme and a Full auditor
   agrees, and rp never enlarges the MaxSAT elimination set *)
let prop_solver_agreement =
  QCheck.Test.make ~count:60 ~name:"solver verdicts agree across schemes"
    instance_arb (fun inst ->
      let p = to_pcnf inst in
      let solve scheme =
        Hqs.solve_pcnf
          ~config:
            {
              Hqs.default_config with
              Hqs.dep_scheme = scheme;
              check_level = Check.Full;
            }
          ~budget:(Budget.of_seconds 10.0)
          p
      in
      let v_triv, s_triv = solve Scheme.Trivial in
      let v_rp, s_rp = solve Scheme.Rp in
      v_triv = v_rp && s_rp.Hqs.maxsat_set_size <= s_triv.Hqs.maxsat_set_size)

let () =
  Alcotest.run "analysis"
    [
      ( "rp",
        [
          Alcotest.test_case "disconnected pruned" `Quick test_disconnected_pruned;
          Alcotest.test_case "connected kept" `Quick test_connected_kept;
          Alcotest.test_case "single polarity pruned" `Quick test_single_polarity_pruned;
          Alcotest.test_case "connecting variable" `Quick test_connecting_variable;
          Alcotest.test_case "trivial identity" `Quick test_trivial_identity;
          Alcotest.test_case "linearized" `Quick test_linearized;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_refinement_shrinks;
            prop_trivial_fixpoint;
            prop_rp_preserves_truth;
            prop_solver_agreement;
          ] );
    ]
