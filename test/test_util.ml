open Hqs_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ Vec *)

let test_vec_push_pop () =
  let v = Vec.create ~dummy:(-1) () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  check_int "size" 100 (Vec.size v);
  check_int "get 42" 42 (Vec.get v 42);
  check_int "last" 99 (Vec.last v);
  check_int "pop" 99 (Vec.pop v);
  check_int "size after pop" 99 (Vec.size v);
  Vec.shrink v 10;
  check_int "size after shrink" 10 (Vec.size v);
  check_int "get after shrink" 9 (Vec.get v 9)

let test_vec_swap_remove () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3; 4 ] in
  Vec.swap_remove v 1;
  check_int "size" 3 (Vec.size v);
  check "moved last" true (Vec.to_list v = [ 1; 4; 3 ])

let test_vec_grow_to () =
  let v = Vec.create ~dummy:0 () in
  Vec.grow_to v 5 7;
  check "grown" true (Vec.to_list v = [ 7; 7; 7; 7; 7 ]);
  Vec.grow_to v 3 9;
  check_int "no shrink" 5 (Vec.size v)

let test_vec_bounds () =
  let v = Vec.of_list ~dummy:0 [ 1 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 1));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop") (fun () ->
      Vec.clear v;
      ignore (Vec.pop v))

let test_vec_sort () =
  let v = Vec.of_list ~dummy:0 [ 3; 1; 2 ] in
  Vec.sort Int.compare v;
  check "sorted" true (Vec.to_list v = [ 1; 2; 3 ])

(* --------------------------------------------------------------- Bitset *)

let test_bitset_basic () =
  let s = Bitset.of_list [ 1; 5; 100 ] in
  check "mem 1" true (Bitset.mem 1 s);
  check "mem 100" true (Bitset.mem 100 s);
  check "not mem 2" false (Bitset.mem 2 s);
  check_int "cardinal" 3 (Bitset.cardinal s);
  check "to_list sorted" true (Bitset.to_list s = [ 1; 5; 100 ])

let test_bitset_remove_normalizes () =
  let s = Bitset.singleton 100 in
  let s = Bitset.remove 100 s in
  check "empty after remove" true (Bitset.is_empty s);
  check "equal empty" true (Bitset.equal s Bitset.empty);
  check_int "hash equal" (Bitset.hash Bitset.empty) (Bitset.hash s)

let test_bitset_ops () =
  let a = Bitset.of_list [ 1; 2; 3 ] and b = Bitset.of_list [ 2; 3; 4 ] in
  check "union" true (Bitset.to_list (Bitset.union a b) = [ 1; 2; 3; 4 ]);
  check "inter" true (Bitset.to_list (Bitset.inter a b) = [ 2; 3 ]);
  check "diff" true (Bitset.to_list (Bitset.diff a b) = [ 1 ]);
  check "subset no" false (Bitset.subset a b);
  check "subset yes" true (Bitset.subset (Bitset.of_list [ 2; 3 ]) a)

let bitset_gen =
  QCheck.Gen.(map Bitset.of_list (list_size (int_bound 20) (int_bound 150)))

let bitset_arb = QCheck.make ~print:(Format.asprintf "%a" Bitset.pp) bitset_gen

let prop_bitset_union_subset =
  QCheck.Test.make ~name:"bitset: a subset (a union b)" ~count:200
    (QCheck.pair bitset_arb bitset_arb) (fun (a, b) ->
      Bitset.subset a (Bitset.union a b) && Bitset.subset b (Bitset.union a b))

let prop_bitset_diff_inter_disjoint =
  QCheck.Test.make ~name:"bitset: diff and inter partition" ~count:200
    (QCheck.pair bitset_arb bitset_arb) (fun (a, b) ->
      let d = Bitset.diff a b and i = Bitset.inter a b in
      Bitset.equal (Bitset.union d i) a && Bitset.is_empty (Bitset.inter d b))

let prop_bitset_model =
  (* compare against a sorted-int-list model *)
  QCheck.Test.make ~name:"bitset: agrees with list model" ~count:200
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_bound 30) (QCheck.int_bound 200))
       (QCheck.list_of_size (QCheck.Gen.int_bound 30) (QCheck.int_bound 200)))
    (fun (la, lb) ->
      let module S = Set.Make (Int) in
      let sa = S.of_list la and sb = S.of_list lb in
      let a = Bitset.of_list la and b = Bitset.of_list lb in
      Bitset.to_list (Bitset.union a b) = S.elements (S.union sa sb)
      && Bitset.to_list (Bitset.inter a b) = S.elements (S.inter sa sb)
      && Bitset.to_list (Bitset.diff a b) = S.elements (S.diff sa sb)
      && Bitset.subset a b = S.subset sa sb
      && Bitset.cardinal a = S.cardinal sa)

(* ----------------------------------------------------------------- Heap *)

let test_heap_sorts () =
  let scores = [| 5.0; 1.0; 9.0; 3.0; 7.0 |] in
  let h = Heap.create ~cmp:(fun a b -> scores.(a) > scores.(b)) () in
  List.iter (Heap.insert h) [ 0; 1; 2; 3; 4 ];
  let order = List.init 5 (fun _ -> Heap.pop h) in
  check "max-first order" true (order = [ 2; 4; 0; 3; 1 ])

let test_heap_update () =
  let scores = [| 1.0; 2.0; 3.0 |] in
  let h = Heap.create ~cmp:(fun a b -> scores.(a) > scores.(b)) () in
  List.iter (Heap.insert h) [ 0; 1; 2 ];
  scores.(0) <- 10.0;
  Heap.update h 0;
  check_int "updated max" 0 (Heap.pop h);
  check "mem after pop" false (Heap.mem h 0);
  Heap.insert h 0;
  check "mem after reinsert" true (Heap.mem h 0)

let prop_heap_pop_order =
  QCheck.Test.make ~name:"heap: pops in decreasing score order" ~count:100
    (QCheck.list_of_size QCheck.Gen.(int_range 1 50) (QCheck.int_bound 1000))
    (fun l ->
      let scores = Array.of_list (List.map float_of_int l) in
      let h = Heap.create ~cmp:(fun a b -> scores.(a) > scores.(b)) () in
      Array.iteri (fun i _ -> Heap.insert h i) scores;
      let rec drain acc = if Heap.is_empty h then List.rev acc else drain (Heap.pop h :: acc) in
      let popped = drain [] in
      let sorted_scores = List.map (fun i -> scores.(i)) popped in
      List.sort (fun a b -> Float.compare b a) sorted_scores = sorted_scores
      && List.length popped = Array.length scores)

(* ----------------------------------------------------------- Union-find *)

let test_union_find () =
  let u = Union_find.create 5 in
  Union_find.union u 0 1;
  Union_find.union u 2 3;
  check "0~1" true (Union_find.same u 0 1);
  check "0!~2" false (Union_find.same u 0 2);
  Union_find.union u 1 2;
  check "0~3 transitively" true (Union_find.same u 0 3);
  Union_find.ensure u 10;
  check "fresh singleton" false (Union_find.same u 10 0)

(* ------------------------------------------------------------------ Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 10 (fun _ -> Rng.bits a) in
  let ys = List.init 10 (fun _ -> Rng.bits b) in
  check "same seed same stream" true (xs = ys);
  let c = Rng.create 43 in
  let zs = List.init 10 (fun _ -> Rng.bits c) in
  check "different seed different stream" false (xs = zs)

let test_rng_int_range () =
  let r = Rng.create 7 in
  let ok = ref true in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    if x < 0 || x >= 10 then ok := false
  done;
  check "in range" true !ok

(* --------------------------------------------------------------- Budget *)

let test_budget () =
  let b = Budget.of_seconds 3600.0 in
  Budget.check b;
  check "not expired" false (Budget.expired b);
  let e = Budget.of_seconds (-1.0) in
  check "expired" true (Budget.expired e);
  Alcotest.check_raises "raises" Budget.Timeout (fun () -> Budget.check e);
  check "unlimited remaining" true (Budget.remaining Budget.unlimited = infinity)

let test_budget_sub () =
  let parent = Budget.of_seconds 3600.0 in
  (* a stage budget is clipped locally but remembers the root deadline *)
  let stage = Budget.sub ~seconds:(-1.0) parent in
  check "stage expired" true (Budget.expired stage);
  check "parent alive" false (Budget.expired parent);
  check "root deadline inherited" false (Budget.hard_expired stage);
  let wide = Budget.sub ~seconds:7200.0 parent in
  check "child never outlives parent" true (Budget.remaining wide <= 3600.1);
  (* frac of an unlimited parent: only the absolute cap applies *)
  let capped = Budget.sub ~seconds:5.0 ~frac:0.2 Budget.unlimited in
  check "capped remaining" true (Budget.remaining capped <= 5.1 && Budget.remaining capped > 1.0);
  check "unlimited sub stays unlimited" true
    (Budget.remaining (Budget.sub Budget.unlimited) = infinity)

let test_budget_mem_governor () =
  check "heap words positive" true (Budget.heap_words () > 0);
  let roomy = Budget.with_mem_limit_mb Budget.unlimited 1_000_000 in
  Budget.check roomy;
  check "not exceeded" false (Budget.mem_exceeded roomy);
  (* the live heap of a running test is far beyond a 0 MB ceiling *)
  let tiny = Budget.with_mem_limit_mb Budget.unlimited 0 in
  check "tiny ceiling exceeded" true (Budget.mem_exceeded tiny);
  Alcotest.check_raises "raises memout" Budget.Out_of_memory_budget (fun () -> Budget.check tiny);
  (* inherited through sub *)
  check "sub inherits ceiling" true (Budget.mem_exceeded (Budget.sub ~seconds:10.0 tiny));
  check "limit readable" true (Budget.mem_limit_words tiny = Some 0);
  check "no limit by default" true (Budget.mem_limit_words Budget.unlimited = None)

(* ---------------------------------------------------------------- Chaos *)

let test_chaos_off () =
  check "off disabled" false (Chaos.enabled Chaos.off);
  check "off never fires" false (Chaos.fire Chaos.off "maxsat.minset");
  check "off fired empty" true (Chaos.fired Chaos.off = [])

let test_chaos_deterministic () =
  let seq plan = List.init 6 (fun _ -> Chaos.fire plan "fraig.sweep") in
  let a = seq (Chaos.create ~seed:42 ~points:[ "fraig.sweep" ] ()) in
  let b = seq (Chaos.create ~seed:42 ~points:[ "fraig.sweep" ] ()) in
  check "same seed same firing" true (a = b);
  check "fires at most limit times" true (List.length (List.filter Fun.id a) = 1)

let test_chaos_points_and_limit () =
  let plan = Chaos.create ~limit:2 ~seed:7 ~points:[ "a"; "b" ] () in
  check "unarmed point never fires" false (Chaos.fire plan "c");
  let fires_a = List.init 5 (fun _ -> Chaos.fire plan "a") in
  check "limit respected" true (List.length (List.filter Fun.id fires_a) = 2);
  ignore (Chaos.fire plan "b");
  check "fired counts" true (Chaos.fired plan = [ ("a", 2); ("b", 1) ]);
  (* prob 0 never fires even when armed *)
  let never = Chaos.create ~prob:0.0 ~seed:1 ~points:[] () in
  check "prob 0" false (Chaos.fire never "a");
  (* empty points = every point armed *)
  let all = Chaos.create ~seed:1 ~points:[] () in
  check "arm-all fires" true (Chaos.fire all "anything")

let test_chaos_parse_points () =
  check "parse" true
    (Chaos.parse_points " maxsat.minset, fraig.sweep ,,qbf.elim"
    = [ "maxsat.minset"; "fraig.sweep"; "qbf.elim" ]);
  check "parse empty" true (Chaos.parse_points "" = [])

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "hqs_util"
    [
      ( "vec",
        [
          Alcotest.test_case "push/pop/shrink" `Quick test_vec_push_pop;
          Alcotest.test_case "swap_remove" `Quick test_vec_swap_remove;
          Alcotest.test_case "grow_to" `Quick test_vec_grow_to;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "sort" `Quick test_vec_sort;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "remove normalizes" `Quick test_bitset_remove_normalizes;
          Alcotest.test_case "set ops" `Quick test_bitset_ops;
        ]
        @ qsuite [ prop_bitset_union_subset; prop_bitset_diff_inter_disjoint; prop_bitset_model ]
      );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "update" `Quick test_heap_update;
        ]
        @ qsuite [ prop_heap_pop_order ] );
      ("union_find", [ Alcotest.test_case "basic" `Quick test_union_find ]);
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
        ] );
      ( "budget",
        [
          Alcotest.test_case "deadline" `Quick test_budget;
          Alcotest.test_case "sub-budgets" `Quick test_budget_sub;
          Alcotest.test_case "memory governor" `Quick test_budget_mem_governor;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "off" `Quick test_chaos_off;
          Alcotest.test_case "deterministic" `Quick test_chaos_deterministic;
          Alcotest.test_case "points and limit" `Quick test_chaos_points_and_limit;
          Alcotest.test_case "parse points" `Quick test_chaos_parse_points;
        ] );
    ]
