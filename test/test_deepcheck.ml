(* Unit tests for the deepcheck analyzer's pure core: the sexp reader,
   the dune-describe model, staleness classification, the three policy
   parsers, the may-raise fixpoint and reachability on synthetic graphs,
   the shared JSON finding renderer (round-tripped through Obs.Json),
   and — through the real binary — the missing-.cmt exit-2 refusal.
   End-to-end analysis of the real tree lives in ci.sh, where a live
   build is guaranteed. *)

module Sexp = Deepcheck.Sexp
module Describe = Deepcheck.Describe
module Stale = Deepcheck.Stale
module Conf = Deepcheck.Conf
module Extract = Deepcheck.Extract
module Graph = Deepcheck.Graph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------- sexp *)

let test_sexp () =
  (match Sexp.parse "(a b (c \"d e\") ; comment\n f)" with
  | Ok (Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b"; Sexp.List [ Sexp.Atom "c"; Sexp.Atom "d e" ]; Sexp.Atom "f" ]) ->
      ()
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error msg -> Alcotest.fail msg);
  check_bool "unbalanced is an error" true (Result.is_error (Sexp.parse "(a (b)"));
  check_bool "trailing garbage is an error" true (Result.is_error (Sexp.parse "(a) (b)"));
  check_bool "empty input is an error" true (Result.is_error (Sexp.parse "  ; only comment\n"));
  let alist =
    match Sexp.parse "((name aig) (uid abc123) (requires (u1 u2)))" with
    | Ok s -> s
    | Error msg -> Alcotest.fail msg
  in
  check_string "field_atom" "aig" (Option.get (Sexp.field_atom "name" alist));
  Alcotest.(check (list string)) "field_atoms" [ "u1"; "u2" ]
    (Option.get (Sexp.field_atoms "requires" alist));
  check_bool "missing field" true (Sexp.field "nope" alist = None)

(* --------------------------------------------------------- describe *)

let describe_text =
  {|((root /repo)
 (build_context _build/default)
 (library ((name ext) (uid u9) (local false) (requires ()) (source_dir /opt/ext) (modules ())))
 (library ((name aig) (uid u1) (local true) (requires (u2 u9))
   (source_dir _build/default/lib/aig)
   (modules (((name Man) (impl (_build/default/lib/aig/man.ml))
              (intf (_build/default/lib/aig/man.mli))
              (cmt (_build/default/lib/aig/.aig.objs/byte/aig__Man.cmt))
              (cmti (_build/default/lib/aig/.aig.objs/byte/aig__Man.cmti)))))))
 (library ((name util) (uid u2) (local true) (requires ()) (source_dir _build/default/lib/util) (modules ())))
 (executables ((names (cli)) (requires (u1 u2))
   (modules (((name Cli) (impl (_build/default/bin/cli.ml))))))))|}

let parse_describe () =
  match Describe.of_string describe_text with Ok d -> d | Error msg -> Alcotest.fail msg

let test_describe () =
  let d = parse_describe () in
  check_string "root" "/repo" d.Describe.root;
  check_int "all libraries" 3 (List.length d.Describe.libraries);
  check_int "local libraries" 2 (List.length (Describe.local_libraries d));
  check_string "uid resolution" "aig" (Option.get (Describe.lib_name_of_uid d "u1"));
  check_bool "unknown uid" true (Describe.lib_name_of_uid d "zz" = None);
  let aig = List.find (fun l -> l.Describe.lib_name = "aig") d.Describe.libraries in
  Alcotest.(check (list string)) "requires are uids" [ "u2"; "u9" ] aig.Describe.lib_requires;
  let m = List.hd aig.Describe.lib_modules in
  check_string "impl path" "_build/default/lib/aig/man.ml" (Option.get m.Describe.m_impl);
  check_string "source_relative strips context" "lib/aig/man.ml"
    (Describe.source_relative d (Option.get m.Describe.m_impl));
  let exe = List.hd d.Describe.exes in
  Alcotest.(check (list string)) "exe names" [ "cli" ] exe.Describe.exe_names

(* ------------------------------------------------------------ stale *)

let test_stale_classify () =
  let fresh = Stale.classify ~src:"a.ml" ~cmt:"a.cmt" ~src_mtime:(Some 5.) ~cmt_mtime:(Some 5.) in
  check_bool "equal mtimes are fresh" true (fresh = Stale.Fresh);
  check_bool "older source is fresh" true
    (Stale.classify ~src:"a.ml" ~cmt:"a.cmt" ~src_mtime:(Some 4.) ~cmt_mtime:(Some 5.)
    = Stale.Fresh);
  (match Stale.classify ~src:"a.ml" ~cmt:"a.cmt" ~src_mtime:(Some 6.) ~cmt_mtime:(Some 5.) with
  | Stale.Stale { src = "a.ml"; _ } -> ()
  | _ -> Alcotest.fail "newer source must be stale");
  (match Stale.classify ~src:"a.ml" ~cmt:"a.cmt" ~src_mtime:(Some 1.) ~cmt_mtime:None with
  | Stale.Missing_cmt { src = "a.ml" } -> ()
  | _ -> Alcotest.fail "missing cmt must be fatal");
  check_bool "generated source needs only its cmt" true
    (Stale.classify ~src:"gen.ml" ~cmt:"gen.cmt" ~src_mtime:None ~cmt_mtime:(Some 1.)
    = Stale.Fresh);
  (* the messages must point at the remedy, not just the fact *)
  let msg status = Option.get (Stale.describe_status status) in
  check_bool "fresh has no message" true (Stale.describe_status Stale.Fresh = None);
  let missing = msg (Stale.Missing_cmt { src = "lib/x.ml" }) in
  check_bool "missing message names source" true
    (contains ~needle:"lib/x.ml" missing);
  check_bool "missing message names the remedy" true
    (contains ~needle:"dune build" missing)

(* ------------------------------------------------------------- conf *)

let with_temp_file content f =
  let path = Filename.temp_file "deepcheck_test" ".conf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content);
      f path)

let test_conf_escapes () =
  with_temp_file "# header\nlibrary aig\n  Not_found # guarded\n  Stack.Empty\nlibrary obs\n"
    (fun path ->
      match Conf.parse_escapes path with
      | Error msg -> Alcotest.fail msg
      | Ok e ->
          check_int "two stanzas" 2 (List.length e);
          check_bool "aig allows Not_found" true
            (Extract.SSet.mem "Not_found" (Conf.escapes_allowed e "aig"));
          check_bool "obs stanza is empty" true
            (Extract.SSet.is_empty (Conf.escapes_allowed e "obs"));
          check_bool "unknown library allows nothing" true
            (Extract.SSet.is_empty (Conf.escapes_allowed e "nope")));
  with_temp_file "Not_found\n" (fun path ->
      check_bool "exception before stanza is an error" true
        (Result.is_error (Conf.parse_escapes path)))

let test_conf_forkinit () =
  with_temp_file "entry A.run\nentry B.main\nallow C.state reset by A.init\n" (fun path ->
      match Conf.parse_forkinit path with
      | Error msg -> Alcotest.fail msg
      | Ok fi ->
          Alcotest.(check (list string)) "entries" [ "A.run"; "B.main" ] fi.Conf.fi_entries;
          check_string "allow reason" "reset by A.init" (List.assoc "C.state" fi.Conf.fi_allow));
  with_temp_file "allow C.state some reason\n" (fun path ->
      check_bool "no entries is an error" true (Result.is_error (Conf.parse_forkinit path)));
  with_temp_file "entry A.run\nallow C.state\n" (fun path ->
      check_bool "allow without reason is an error" true
        (Result.is_error (Conf.parse_forkinit path)))

let test_conf_layers () =
  with_temp_file
    "library util ->\nlibrary aig -> util obs\nexecutable certcheck ->\nexecutable test_* -> *\n"
    (fun path ->
      match Conf.parse_layers path with
      | Error msg -> Alcotest.fail msg
      | Ok l ->
          (match Conf.layer_rule_for l `Library "aig" with
          | Some { Conf.lr_deps = `Only deps; _ } ->
              check_bool "aig deps" true (Extract.SSet.mem "util" deps)
          | _ -> Alcotest.fail "aig rule missing");
          (match Conf.layer_rule_for l `Library "util" with
          | Some { Conf.lr_deps = `Only deps; _ } ->
              check_bool "empty dep list means no deps allowed" true (Extract.SSet.is_empty deps)
          | _ -> Alcotest.fail "util rule missing");
          (match Conf.layer_rule_for l `Executable "test_foo" with
          | Some { Conf.lr_deps = `Any; _ } -> ()
          | _ -> Alcotest.fail "glob rule must match test_foo");
          check_bool "library rules do not cover executables" true
            (Conf.layer_rule_for l `Executable "aig" = None);
          check_bool "uncovered entity has no rule" true
            (Conf.layer_rule_for l `Library "serve" = None))

(* ------------------------------------------------------------ graph *)

let o file line = { Extract.o_file = file; o_line = line; o_col = 0 }

let node ?(is_fun = true) ?mutable_ name ~raises ~edges =
  {
    Extract.n_name = name;
    n_loc = o "g.ml" 1;
    n_is_fun = is_fun;
    n_mutable = mutable_;
    n_raises = raises;
    n_edges = edges;
  }

let names l = Extract.Names (Extract.SSet.of_list l)

let test_fixpoint () =
  (* low raises Not_found; mid calls low catching Not_found but raising
     Failure itself; top calls mid under a catch-all; leaf_val is not a
     function so referencing it propagates nothing *)
  let g =
    Graph.build
      [
        node "M.low" ~raises:[ ("Not_found", names [], o "g.ml" 2) ] ~edges:[];
        node "M.mid"
          ~raises:[ ("Failure", names [], o "g.ml" 10) ]
          ~edges:[ ("M.low", names [ "Not_found" ], o "g.ml" 11) ];
        node "M.top" ~raises:[] ~edges:[ ("M.mid", Extract.All, o "g.ml" 20) ];
        node "M.uses_val" ~raises:[] ~edges:[ ("M.leaf_val", names [], o "g.ml" 30) ];
        node ~is_fun:false "M.leaf_val" ~raises:[ ("Failure", names [], o "g.ml" 40) ] ~edges:[];
      ]
  in
  let may name = Extract.SSet.elements (Graph.may_raise g name) in
  Alcotest.(check (list string)) "direct raise" [ "Not_found" ] (may "M.low");
  Alcotest.(check (list string)) "masked callee exn dropped, own raise kept" [ "Failure" ]
    (may "M.mid");
  Alcotest.(check (list string)) "catch-all swallows everything" [] (may "M.top");
  Alcotest.(check (list string)) "non-function reference propagates nothing" []
    (may "M.uses_val");
  (* provenance chain bottoms out at the raise site *)
  let chain = Graph.chain g "M.mid" "Failure" in
  check_bool "chain names the raise site" true (contains ~needle:"g.ml:10" chain)

let test_fixpoint_star () =
  (* the unknown exception "*" passes Names masks but not catch-alls *)
  let g =
    Graph.build
      [
        node "M.dyn" ~raises:[ ("*", names [], o "g.ml" 2) ] ~edges:[];
        node "M.caller" ~raises:[] ~edges:[ ("M.dyn", names [ "Not_found" ], o "g.ml" 5) ];
        node "M.catcher" ~raises:[] ~edges:[ ("M.dyn", Extract.All, o "g.ml" 6) ];
      ]
  in
  Alcotest.(check (list string)) "* passes a named mask" [ "*" ]
    (Extract.SSet.elements (Graph.may_raise g "M.caller"));
  Alcotest.(check (list string)) "* stops at a catch-all" []
    (Extract.SSet.elements (Graph.may_raise g "M.catcher"))

let test_reachability () =
  let g =
    Graph.build
      [
        node "E.entry" ~raises:[] ~edges:[ ("A.f", names [], o "e.ml" 2) ];
        node "A.f" ~raises:[]
          ~edges:[ ("A.state", names [], o "a.ml" 3); ("A.g", names [], o "a.ml" 4) ];
        node "A.g" ~raises:[] ~edges:[];
        node ~is_fun:false ~mutable_:"ref cell" "A.state" ~raises:[] ~edges:[];
        node "B.unreached" ~raises:[] ~edges:[ ("A.state", names [], o "b.ml" 1) ];
      ]
  in
  let seen = Graph.reachable g ~entries:[ "E.entry" ] in
  check_bool "entry reached" true (Hashtbl.mem seen "E.entry");
  check_bool "transitive function reached" true (Hashtbl.mem seen "A.g");
  check_bool "mutable value is not traversed into" true (not (Hashtbl.mem seen "A.state"));
  check_bool "unconnected node not reached" true (not (Hashtbl.mem seen "B.unreached"));
  let path = Graph.reach_path seen "A.g" in
  check_bool "witness path starts at the entry" true
    (String.starts_with ~prefix:"E.entry" path);
  check_bool "witness path names the call site" true
    (contains ~needle:"a.ml:4" path)

(* ----------------------------------------------- shared JSON renderer *)

let test_json_renderer () =
  let f =
    {
      Linter.f_file = "lib/a.ml";
      f_line = 3;
      f_col = 7;
      f_rule = "exn-escape";
      f_msg = "quote \" backslash \\ newline \n tab \t done";
    }
  in
  let doc = Linter.render_json ~tool:"deepcheck" [ f ] in
  (match Obs.Json.parse doc with
  | Error msg -> Alcotest.fail ("renderer output must parse as JSON: " ^ msg)
  | Ok json ->
      (match Obs.Json.member "tool" json with
      | Some (Obs.Json.Str "deepcheck") -> ()
      | _ -> Alcotest.fail "tool field");
      (match Obs.Json.member "count" json with
      | Some (Obs.Json.Num 1.) -> ()
      | _ -> Alcotest.fail "count field");
      let finding =
        match Option.bind (Obs.Json.member "findings" json) Obs.Json.to_list with
        | Some [ f ] -> f
        | _ -> Alcotest.fail "findings array"
      in
      (match Obs.Json.member "msg" finding with
      | Some (Obs.Json.Str msg) -> check_string "escapes round-trip" f.Linter.f_msg msg
      | _ -> Alcotest.fail "msg field"));
  check_string "clean run is still one document"
    {|{"tool":"lint","findings":[],"count":0}|}
    (Linter.render_json ~tool:"lint" [])

(* ------------------------------------------ binary: missing-cmt exit 2 *)

(* a captured describe naming a cmt that does not exist must be exit 2
   with a message naming the source and the remedy — absence of build
   artifacts is a refusal, never a silent pass *)
let test_missing_cmt_exit2 () =
  let dir = Filename.temp_file "deepcheck_tree" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let describe =
    Printf.sprintf
      "((root %s) (build_context %s/_build/default) (library ((name solo) (uid u1) (local \
       true) (requires ()) (source_dir %s/_build/default/lib/solo) (modules (((name M) (impl \
       (%s/_build/default/lib/solo/m.ml)) (cmt (%s/_build/default/lib/solo/.solo.objs/m.cmt))))))))"
      dir dir dir dir dir
  in
  let dfile = Filename.concat dir "describe.sexp" in
  Out_channel.with_open_bin dfile (fun oc -> Out_channel.output_string oc describe);
  (* the source exists in the "checkout", the cmt does not *)
  Unix.mkdir (Filename.concat dir "lib") 0o755;
  Unix.mkdir (Filename.concat dir "lib/solo") 0o755;
  Out_channel.with_open_bin
    (Filename.concat dir "lib/solo/m.ml")
    (fun oc -> Out_channel.output_string oc "let x = 1\n");
  let out = Filename.concat dir "stderr.txt" in
  let cmd =
    Printf.sprintf "../bin/deepcheck.exe --root %s --describe %s 2>%s" (Filename.quote dir)
      (Filename.quote dfile) (Filename.quote out)
  in
  let code =
    match Unix.system cmd with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> -1
  in
  check_int "missing cmt is exit 2" 2 code;
  let stderr_text = In_channel.with_open_bin out In_channel.input_all in
  check_bool "message names the source" true
    (contains ~needle:"lib/solo/m.ml" stderr_text);
  check_bool "message names the remedy" true
    (contains ~needle:"dune build" stderr_text)

let () =
  Alcotest.run "deepcheck"
    [
      ( "parsing",
        [
          Alcotest.test_case "sexp" `Quick test_sexp;
          Alcotest.test_case "describe" `Quick test_describe;
          Alcotest.test_case "escapes conf" `Quick test_conf_escapes;
          Alcotest.test_case "forkinit conf" `Quick test_conf_forkinit;
          Alcotest.test_case "layers conf" `Quick test_conf_layers;
        ] );
      ( "staleness",
        [
          Alcotest.test_case "classify" `Quick test_stale_classify;
          Alcotest.test_case "missing cmt exit 2" `Quick test_missing_cmt_exit2;
        ] );
      ( "graph",
        [
          Alcotest.test_case "may-raise fixpoint" `Quick test_fixpoint;
          Alcotest.test_case "unknown exception" `Quick test_fixpoint_star;
          Alcotest.test_case "reachability" `Quick test_reachability;
        ] );
      ( "render",
        [ Alcotest.test_case "json via Obs.Json" `Quick test_json_renderer ] );
    ]
