(* Tests for lib/exec: process-isolated supervised execution, resource
   limits, deterministic backoff, and the crash-safe resume journal. *)

module Json = Obs.Json
module Sup = Exec.Supervisor
module Journal = Exec.Journal
module Backoff = Exec.Backoff
module Limits = Exec.Limits
module Chaos = Hqs_util.Chaos

let tmp_file name =
  let path = Filename.concat (Filename.get_temp_dir_name ()) name in
  if Sys.file_exists path then Sys.remove path;
  path

let status_label = function
  | Sup.Value _ -> "ok"
  | Sup.Timeout _ -> "timeout"
  | Sup.Memout _ -> "memout"
  | Sup.Crash _ -> "crash"

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1)) in
  go 0

let find_completion report id =
  match List.find_opt (fun c -> String.equal c.Sup.task_id id) report.Sup.completions with
  | Some c -> c
  | None -> Alcotest.failf "no completion for %s" id

(* ------------------------------------------------------------ supervisor *)

(* a worker that squares its payload in the child and sends it back *)
let square n = Json.Num (float_of_int (n * n))

let test_value_roundtrip () =
  let tasks = List.init 5 (fun i -> (Printf.sprintf "t%d" i, i)) in
  let config = { Sup.default_config with jobs = 2 } in
  let report = Sup.run ~config ~worker:square tasks in
  Alcotest.(check int) "all tasks completed" 5 (List.length report.completions);
  Alcotest.(check int) "all executed" 5 report.executed;
  Alcotest.(check int) "none journaled" 0 report.journaled;
  List.iteri
    (fun i c ->
      Alcotest.(check string) "input order" (Printf.sprintf "t%d" i) c.Sup.task_id;
      Alcotest.(check int) "one attempt" 1 c.Sup.attempts;
      Alcotest.(check bool) "live" false c.Sup.from_journal;
      match c.Sup.status with
      | Sup.Value (Json.Num v) ->
          Alcotest.(check (float 0.0)) "squared in child" (float_of_int (i * i)) v
      | _ -> Alcotest.failf "task %d: expected Value, got %s" i (status_label c.Sup.status))
    report.completions

let fast_backoff = { Backoff.default with base_s = 0.01; max_s = 0.02 }

let test_chaos_kill_quarantine () =
  (* arm the kill point for every attempt of t1: it must be quarantined
     as Crash after exactly max_attempts spawns *)
  let max_attempts = 3 in
  let points =
    List.init max_attempts (fun i -> Chaos.worker_kill_point ~task:"t1" ~attempt:(i + 1))
  in
  let chaos = Chaos.create ~seed:7 ~points () in
  let config = { Sup.default_config with jobs = 2; max_attempts; chaos; backoff = fast_backoff } in
  let report = Sup.run ~config ~worker:square [ ("t0", 2); ("t1", 3); ("t2", 4) ] in
  let c1 = find_completion report "t1" in
  (match c1.status with
  | Sup.Crash _ -> ()
  | s -> Alcotest.failf "expected Crash, got %s" (status_label s));
  Alcotest.(check int) "quarantined after max_attempts" max_attempts c1.attempts;
  Alcotest.(check int) "one log line per failed attempt" max_attempts
    (List.length c1.crash_log);
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "log mentions SIGKILL: %s" line)
        true
        (contains ~needle:"SIGKILL" line))
    c1.crash_log;
  (* the bystanders still finish cleanly *)
  List.iter
    (fun id ->
      match (find_completion report id).status with
      | Sup.Value _ -> ()
      | s -> Alcotest.failf "%s: expected Value, got %s" id (status_label s))
    [ "t0"; "t2" ]

let test_retry_recovers () =
  (* kill only attempt 1: the retry must succeed with attempts = 2 *)
  let chaos = Chaos.create ~seed:7 ~points:[ Chaos.worker_kill_point ~task:"t0" ~attempt:1 ] () in
  let config = { Sup.default_config with max_attempts = 3; chaos; backoff = fast_backoff } in
  let report = Sup.run ~config ~worker:square [ ("t0", 6) ] in
  let c = find_completion report "t0" in
  (match c.status with
  | Sup.Value (Json.Num v) -> Alcotest.(check (float 0.0)) "recovered value" 36.0 v
  | s -> Alcotest.failf "expected Value, got %s" (status_label s));
  Alcotest.(check int) "second attempt succeeded" 2 c.attempts;
  Alcotest.(check int) "both spawns counted" 2 report.executed

let test_rlimit_memout () =
  (* under a 64 MiB address-space cap the child's big allocation raises
     Out_of_memory, which must come back as a clean Memout frame *)
  let worker () =
    let chunks = ref [] in
    for _ = 1 to 1024 do
      chunks := Bytes.create (16 * 1024 * 1024) :: !chunks
    done;
    Json.Num (float_of_int (List.length !chunks))
  in
  let limits = { Limits.none with mem_bytes = Some (64 * 1024 * 1024) } in
  let config = { Sup.default_config with limits; max_attempts = 1 } in
  let report = Sup.run ~config ~worker [ ("big", ()) ] in
  match (find_completion report "big").status with
  | Sup.Memout _ -> ()
  | s -> Alcotest.failf "expected Memout, got %s" (status_label s)

let test_wall_timeout () =
  let worker () =
    Unix.sleepf 30.0;
    Json.Null
  in
  let limits = { Limits.none with wall_s = Some 0.2 } in
  let config = { Sup.default_config with limits; max_attempts = 1 } in
  let t0 = Hqs_util.Mono.now () in
  let report = Sup.run ~config ~worker [ ("sleeper", ()) ] in
  let wall = Hqs_util.Mono.now () -. t0 in
  Alcotest.(check bool) "killed promptly, not after 30 s" true (wall < 10.0);
  match (find_completion report "sleeper").status with
  | Sup.Timeout _ -> ()
  | s -> Alcotest.failf "expected Timeout, got %s" (status_label s)

let test_crash_exit_code () =
  (* a worker that _exits nonzero without a frame is a crash attempt *)
  let worker () =
    Unix._exit 3 [@warning "-20"]
  in
  let config = { Sup.default_config with max_attempts = 2; backoff = fast_backoff } in
  let report = Sup.run ~config ~worker [ ("dier", ()) ] in
  let c = find_completion report "dier" in
  (match c.status with
  | Sup.Crash _ -> ()
  | s -> Alcotest.failf "expected Crash, got %s" (status_label s));
  Alcotest.(check int) "retried then quarantined" 2 c.attempts

let test_duplicate_ids_rejected () =
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Supervisor.run: duplicate task id a")
    (fun () -> ignore (Sup.run ~worker:square [ ("a", 1); ("a", 2) ]))

(* ------------------------------------------------------------ fork traces *)

let test_trace_spans_fork () =
  (* with tracing on, worker spans recorded inside the forked child must
     come back through the completion frame and merge under the worker's
     own pid row, parented to the supervisor's per-task span *)
  Obs.Trace.reset ();
  Obs.Trace.start ();
  let worker n = Obs.Span.with_ "w.solve" (fun () -> square n) in
  let config = { Sup.default_config with jobs = 2 } in
  let report = Sup.run ~config ~worker [ ("t0", 2); ("t1", 3) ] in
  Obs.Trace.stop ();
  Alcotest.(check int) "both tasks completed" 2 (List.length report.completions);
  let json =
    match Json.parse (Obs.Trace.to_chrome_json ()) with
    | Ok j -> j
    | Error msg -> Alcotest.failf "merged trace does not parse: %s" msg
  in
  Obs.Trace.reset ();
  let evs =
    match Option.bind (Json.member "traceEvents" json) Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  let str m ev = match Json.member m ev with Some (Json.Str s) -> Some s | _ -> None in
  let num m ev = Option.bind (Json.member m ev) Json.to_number in
  let pid_of ev = match num "pid" ev with Some p -> int_of_float p | None -> 1 in
  let begins = List.filter (fun ev -> str "ph" ev = Some "B") evs in
  let arg m ev = Option.bind (Json.member "args" ev) (str m) in
  (* span_id -> declaring pid, from the supervisor's sup.task rows *)
  let span_pids = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match arg "span_id" ev with
      | Some id -> Hashtbl.replace span_pids id (pid_of ev)
      | None -> ())
    begins;
  let self = Unix.getpid () in
  let child_roots =
    List.filter (fun ev -> str "name" ev = Some "sup.child") begins
  in
  Alcotest.(check int) "one child root per task" 2 (List.length child_roots);
  List.iter
    (fun ev ->
      Alcotest.(check bool) "child events render under the worker pid" true
        (pid_of ev <> self);
      match arg "parent_span" ev with
      | None -> Alcotest.fail "child root without a parent_span link"
      | Some parent -> (
          match Hashtbl.find_opt span_pids parent with
          | None -> Alcotest.failf "parent_span %s matches no span_id" parent
          | Some ppid ->
              Alcotest.(check int) "parent span lives in the supervisor" self ppid))
    child_roots;
  (* the span opened by user code inside the child made the merge too *)
  Alcotest.(check bool) "worker-side span present" true
    (List.exists (fun ev -> str "name" ev = Some "w.solve") begins)

let test_timeout_salvages_partial_metrics () =
  (* a worker killed by the wall limit mid-run: the throttled partial
     frames it flushed on span exits must surface as salvaged_metrics on
     the Timeout completion *)
  let c = Obs.Metrics.counter "t.salvage.steps" in
  let worker () =
    for _ = 1 to 10 do
      Obs.Metrics.incr c;
      Obs.Span.with_ "w.step" (fun () -> Unix.sleepf 0.03)
    done;
    Unix.sleepf 30.0;
    Json.Null
  in
  let limits = { Limits.none with wall_s = Some 1.0 } in
  let config = { Sup.default_config with limits; max_attempts = 1 } in
  let report = Sup.run ~config ~worker [ ("slow", ()) ] in
  let comp = find_completion report "slow" in
  (match comp.status with
  | Sup.Timeout _ -> ()
  | s -> Alcotest.failf "expected Timeout, got %s" (status_label s));
  Alcotest.(check bool) "partial metrics salvaged" true (comp.salvaged_metrics <> []);
  match Obs.Metrics.find comp.salvaged_metrics "t.salvage.steps" with
  | None -> Alcotest.fail "salvaged delta misses the child-side counter"
  | Some v -> Alcotest.(check bool) "a flushed prefix of the steps" true (v >= 1.0)

(* -------------------------------------------------------------- event log *)

let test_eventlog_rotation_and_torn_tail () =
  let path = tmp_file "hqs_test_eventlog.jsonl" in
  let rotated = Exec.Eventlog.rotated_path path in
  if Sys.file_exists rotated then Sys.remove rotated;
  let t = Exec.Eventlog.create ~max_bytes:512 path in
  for i = 1 to 40 do
    Exec.Eventlog.log t ~event:"admit"
      ~trace_id:(Printf.sprintf "serve-1-%d" i)
      ~fields:[ ("jid", Json.Num (float_of_int i)) ]
      ()
  done;
  Exec.Eventlog.close t;
  Alcotest.(check bool) "rotation produced a previous generation" true
    (Sys.file_exists rotated);
  let clean = Exec.Eventlog.load path in
  Alcotest.(check int) "clean log has no torn lines" 0 clean.Exec.Eventlog.dropped;
  Alcotest.(check bool) "current generation non-empty" true (clean.events <> []);
  (* the event bodies carry the kind tag and the trace id *)
  List.iter
    (fun e ->
      (match Json.member "ev" e with
      | Some (Json.Str "admit") -> ()
      | _ -> Alcotest.fail "event body without its kind tag");
      match Json.member "trace" e with
      | Some (Json.Str _) -> ()
      | _ -> Alcotest.fail "event body without its trace id")
    clean.events;
  (* seq numbers span the rotation: the previous generation holds a
     strictly earlier prefix *)
  let seqs load =
    List.filter_map (fun e -> Option.bind (Json.member "seq" e) Json.to_number) load.Exec.Eventlog.events
  in
  let prev = Exec.Eventlog.load rotated in
  Alcotest.(check int) "no torn lines in the rotated file" 0 prev.dropped;
  (match (seqs prev, seqs clean) with
  | (_ :: _ as old_seqs), newest :: _ ->
      Alcotest.(check bool) "rotation preserved ordering" true
        (List.for_all (fun s -> s < newest) old_seqs)
  | _ -> Alcotest.fail "expected events on both sides of the rotation");
  (* a writer killed mid-append leaves one torn line, which load skips *)
  Out_channel.with_open_gen
    [ Out_channel.Open_append; Out_channel.Open_binary ]
    0o644 path
    (fun oc -> Out_channel.output_string oc "{\"c\":\"feedbeef\",\"e\":{\"seq\":9");
  let reloaded = Exec.Eventlog.load path in
  Alcotest.(check int) "torn tail dropped" 1 reloaded.Exec.Eventlog.dropped;
  Alcotest.(check int) "intact lines survive the tear"
    (List.length clean.events)
    (List.length reloaded.events);
  Sys.remove path;
  Sys.remove rotated

(* --------------------------------------------------------------- backoff *)

let test_backoff_deterministic () =
  let policy = { Backoff.default with seed = 42 } in
  let d1 = Backoff.delay policy ~task:"inst/hqs" ~attempt:2 in
  let d2 = Backoff.delay policy ~task:"inst/hqs" ~attempt:2 in
  Alcotest.(check (float 0.0)) "same (seed, task, attempt) => same delay" d1 d2;
  let other = Backoff.delay policy ~task:"other/hqs" ~attempt:2 in
  Alcotest.(check bool) "different task => different jitter" true (d1 <> other)

let test_backoff_exact_without_jitter () =
  let policy = { Backoff.default with jitter = 0.0; base_s = 0.05; factor = 2.0; max_s = 2.0 } in
  let d attempt = Backoff.delay policy ~task:"t" ~attempt in
  Alcotest.(check (float 1e-12)) "attempt 1" 0.05 (d 1);
  Alcotest.(check (float 1e-12)) "attempt 2" 0.1 (d 2);
  Alcotest.(check (float 1e-12)) "attempt 3" 0.2 (d 3);
  Alcotest.(check (float 1e-12)) "capped" 2.0 (d 20)

let test_backoff_bounds () =
  let policy = { Backoff.default with seed = 9 } in
  for attempt = 1 to 12 do
    let d = Backoff.delay policy ~task:"b" ~attempt in
    Alcotest.(check bool) "non-negative" true (d >= 0.0);
    Alcotest.(check bool) "within jittered cap" true
      (d <= policy.max_s *. (1.0 +. policy.jitter) +. 1e-9)
  done;
  Alcotest.check_raises "attempt is 1-based"
    (Invalid_argument "Backoff.delay: attempt is 1-based") (fun () ->
      ignore (Backoff.delay policy ~task:"b" ~attempt:0))

(* --------------------------------------------------------------- journal *)

let entry id v = { Journal.task_id = id; data = Json.Obj [ ("v", Json.Num v) ] }

let test_journal_roundtrip () =
  let line = Journal.encode_line (entry "a/hqs" 1.5) in
  match Journal.decode_line line with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok { task_id; data } ->
      Alcotest.(check string) "id survives" "a/hqs" task_id;
      Alcotest.(check (option (float 0.0))) "payload survives" (Some 1.5)
        (Option.bind (Json.member "v" data) Json.to_number)

let test_journal_detects_corruption () =
  let line = Journal.encode_line (entry "a" 1.0) in
  (* flip a payload byte without touching the checksum *)
  let target = String.index line 'a' in
  let corrupt = Bytes.of_string line in
  Bytes.set corrupt target 'b';
  match Journal.decode_line (Bytes.to_string corrupt) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted line decoded successfully"

let test_journal_torn_write_recovery () =
  let path = tmp_file "hqs_test_journal.jsonl" in
  let j = Journal.open_append path in
  Journal.append j (entry "a" 1.0);
  Journal.append j (entry "b" 2.0);
  Journal.close j;
  (* simulate a parent killed mid-append: a torn half line at the tail *)
  let full = Journal.encode_line (entry "c" 3.0) in
  let torn = String.sub full 0 (String.length full / 2) in
  Out_channel.with_open_gen
    [ Out_channel.Open_append; Out_channel.Open_binary ]
    0o644 path
    (fun oc -> Out_channel.output_string oc torn);
  let { Journal.entries; dropped } = Journal.load path in
  Alcotest.(check int) "intact lines survive" 2 (List.length entries);
  Alcotest.(check int) "torn tail dropped" 1 dropped;
  Alcotest.(check (list string)) "order preserved" [ "a"; "b" ]
    (List.map (fun e -> e.Journal.task_id) entries);
  Sys.remove path

let test_journal_missing_file () =
  let { Journal.entries; dropped } = Journal.load "/nonexistent/hqs/journal.jsonl" in
  Alcotest.(check int) "no entries" 0 (List.length entries);
  Alcotest.(check int) "nothing dropped" 0 dropped

(* ---------------------------------------------------------------- resume *)

let test_resume_skips_journaled () =
  let path = tmp_file "hqs_test_resume.jsonl" in
  let tasks = List.init 4 (fun i -> (Printf.sprintf "t%d" i, i)) in
  let first = Sup.run ~journal:path ~worker:square tasks in
  Alcotest.(check int) "first run executes all" 4 first.executed;
  let second = Sup.run ~journal:path ~resume:path ~worker:square tasks in
  Alcotest.(check int) "resume executes none" 0 second.executed;
  Alcotest.(check int) "all from journal" 4 second.journaled;
  List.iter2
    (fun a b ->
      Alcotest.(check string) "same task" a.Sup.task_id b.Sup.task_id;
      Alcotest.(check string) "same status" (status_label a.Sup.status)
        (status_label b.Sup.status);
      Alcotest.(check bool) "marked journaled" true b.Sup.from_journal)
    first.completions second.completions;
  Sys.remove path

let test_resume_runs_remaining () =
  (* journal a strict subset, then resume over the full task list: only
     the tail may execute *)
  let path = tmp_file "hqs_test_resume_partial.jsonl" in
  let tasks = List.init 4 (fun i -> (Printf.sprintf "t%d" i, i)) in
  let subset = [ List.nth tasks 0; List.nth tasks 2 ] in
  let _ = Sup.run ~journal:path ~worker:square subset in
  let executed_ids = ref [] in
  let on_complete c =
    if not c.Sup.from_journal then executed_ids := c.Sup.task_id :: !executed_ids
  in
  let report = Sup.run ~resume:path ~on_complete ~worker:square tasks in
  Alcotest.(check int) "exactly the missing tasks ran" 2 report.executed;
  Alcotest.(check (list string)) "the right ones" [ "t1"; "t3" ]
    (List.sort String.compare !executed_ids);
  Alcotest.(check int) "rest came from the journal" 2 report.journaled;
  Sys.remove path

let test_completion_json_roundtrip () =
  let c =
    {
      Sup.task_id = "x/idq";
      status = Sup.Crash 1.25;
      attempts = 3;
      worker_pid = 4242;
      elapsed_s = 1.25;
      crash_log = [ "attempt 1: SIGKILL"; "attempt 2: exit 3" ];
      from_journal = false;
      salvaged_metrics = [];
    }
  in
  match Sup.completion_of_json ~task_id:c.task_id (Sup.completion_to_json c) with
  | None -> Alcotest.fail "roundtrip decode failed"
  | Some c' ->
      Alcotest.(check string) "status" (status_label c.status) (status_label c'.status);
      Alcotest.(check int) "attempts" c.attempts c'.attempts;
      Alcotest.(check int) "pid" c.worker_pid c'.worker_pid;
      Alcotest.(check (list string)) "crash log" c.crash_log c'.crash_log;
      Alcotest.(check bool) "decoded entries are journal-marked" true c'.from_journal

let () =
  Alcotest.run "exec"
    [
      ( "supervisor",
        [
          Alcotest.test_case "value roundtrip, jobs=2" `Quick test_value_roundtrip;
          Alcotest.test_case "chaos kill quarantines after K" `Quick test_chaos_kill_quarantine;
          Alcotest.test_case "transient kill recovers on retry" `Quick test_retry_recovers;
          Alcotest.test_case "rlimit memout classified" `Slow test_rlimit_memout;
          Alcotest.test_case "wall timeout kills sleeper" `Slow test_wall_timeout;
          Alcotest.test_case "nonzero exit crashes" `Quick test_crash_exit_code;
          Alcotest.test_case "duplicate ids rejected" `Quick test_duplicate_ids_rejected;
        ] );
      ( "fork-traces",
        [
          Alcotest.test_case "child spans stitch under the task span" `Quick
            test_trace_spans_fork;
          Alcotest.test_case "timeout salvages partial metrics" `Slow
            test_timeout_salvages_partial_metrics;
        ] );
      ( "event-log",
        [
          Alcotest.test_case "rotation and torn tail" `Quick
            test_eventlog_rotation_and_torn_tail;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "deterministic" `Quick test_backoff_deterministic;
          Alcotest.test_case "exact schedule without jitter" `Quick
            test_backoff_exact_without_jitter;
          Alcotest.test_case "bounds and 1-based attempts" `Quick test_backoff_bounds;
        ] );
      ( "journal",
        [
          Alcotest.test_case "line roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "corruption detected" `Quick test_journal_detects_corruption;
          Alcotest.test_case "torn write recovery" `Quick test_journal_torn_write_recovery;
          Alcotest.test_case "missing file is empty" `Quick test_journal_missing_file;
        ] );
      ( "resume",
        [
          Alcotest.test_case "full journal: zero executions" `Quick test_resume_skips_journaled;
          Alcotest.test_case "partial journal: tail only" `Quick test_resume_runs_remaining;
          Alcotest.test_case "completion json roundtrip" `Quick test_completion_json_roundtrip;
        ] );
    ]
