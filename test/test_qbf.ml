module M = Aig.Man
module P = Qbf.Prefix

let check = Alcotest.(check bool)

(* ------------------------------------------------------------ known QBFs *)

let mk_iff_formula () =
  let man = M.create () in
  let x = M.input man 0 and y = M.input man 1 in
  (man, M.mk_iff man x y)

let test_forall_exists_iff () =
  (* forall x exists y: x <-> y   -- true *)
  let man, f = mk_iff_formula () in
  check "true" true (Qbf.Solver.solve man f [ (P.Forall, [ 0 ]); (P.Exists, [ 1 ]) ])

let test_exists_forall_iff () =
  (* exists y forall x: x <-> y   -- false *)
  let man, f = mk_iff_formula () in
  check "false" false (Qbf.Solver.solve man f [ (P.Exists, [ 1 ]); (P.Forall, [ 0 ]) ])

let test_free_vars_existential () =
  (* matrix x & y with empty prefix: free vars are existential -> true *)
  let man = M.create () in
  let f = M.mk_and man (M.input man 0) (M.input man 1) in
  check "sat" true (Qbf.Solver.solve man f []);
  let g = M.mk_and man f (M.compl_ (M.input man 0)) in
  check "unsat" false (Qbf.Solver.solve man g [])

let test_constant_matrices () =
  let man = M.create () in
  check "true matrix" true (Qbf.Solver.solve man M.true_ [ (P.Forall, [ 0 ]) ]);
  check "false matrix" false (Qbf.Solver.solve man M.false_ [ (P.Exists, [ 0 ]) ])

let test_forall_tautology () =
  (* forall x y: (x | !x) & (y | x | !x) -- trivially collapses in the AIG;
     use a disguised tautology instead: (x|y) | (!x&!y) *)
  let man = M.create () in
  let x = M.input man 0 and y = M.input man 1 in
  let f = M.mk_or man (M.mk_or man x y) (M.mk_and man (M.compl_ x) (M.compl_ y)) in
  check "valid" true (Qbf.Solver.solve man f [ (P.Forall, [ 0; 1 ]) ]);
  let g = M.mk_or man x y in
  check "not valid" false (Qbf.Solver.solve man g [ (P.Forall, [ 0; 1 ]) ])

let test_three_level () =
  (* forall x exists y forall z: (x<->y) | (y<->z) is false:
     pick y=x; then need (x<->x)|(x<->z) = true. wait that's true.
     check with brute force instead of guessing *)
  let man = M.create () in
  let x = M.input man 0 and y = M.input man 1 and z = M.input man 2 in
  let f = M.mk_or man (M.mk_iff man x y) (M.mk_iff man y z) in
  let prefix = [ (P.Forall, [ 0 ]); (P.Exists, [ 1 ]); (P.Forall, [ 2 ]) ] in
  let expected = Qbf.Brute.solve man f prefix in
  check "matches brute" expected (Qbf.Solver.solve man f prefix)

(* ------------------------------------------------- randomized validation *)

let qbf_gen =
  (* random CNF over n <= 6 vars + random quantifier per var, random order *)
  QCheck.Gen.(
    int_range 2 6 >>= fun n ->
    list_size (int_range 1 20) (list_size (int_range 1 3) (map2 (fun v s -> (v, s)) (int_bound (n - 1)) bool))
    >>= fun clauses ->
    list_repeat n bool >>= fun quants ->
    (* permutation of vars via sorting by random keys *)
    list_repeat n (int_bound 1000) >>= fun keys ->
    let order =
      List.mapi (fun i k -> (k, i)) keys
      |> List.sort (fun (k1, i1) (k2, i2) -> if k1 <> k2 then Int.compare k1 k2 else Int.compare i1 i2)
      |> List.map snd
    in
    return (n, clauses, quants, order))

let qbf_print (n, clauses, quants, order) =
  Printf.sprintf "n=%d order=%s quants=%s clauses=%s" n
    (String.concat "," (List.map string_of_int order))
    (String.concat "" (List.map (fun q -> if q then "A" else "E") quants))
    (String.concat ";"
       (List.map
          (fun c ->
            String.concat ","
              (List.map (fun (v, s) -> string_of_int (if s then -(v + 1) else v + 1)) c))
          clauses))

let qbf_arb = QCheck.make ~print:qbf_print qbf_gen

let build_qbf (n, clauses, quants, order) =
  let man = M.create () in
  let lit (v, s) = M.apply_sign (M.input man v) ~neg:s in
  let matrix = M.mk_and_list man (List.map (fun c -> M.mk_or_list man (List.map lit c)) clauses) in
  let quant_arr = Array.of_list quants in
  let prefix = List.map (fun v -> ((if quant_arr.(v) then P.Forall else P.Exists), [ v ])) order in
  ignore n;
  (man, matrix, P.normalize prefix)

let prop_matches_brute config name =
  QCheck.Test.make ~name ~count:300 qbf_arb (fun inst ->
      let man, matrix, prefix = build_qbf inst in
      Qbf.Solver.solve ~config man matrix prefix = Qbf.Brute.solve man matrix prefix)

let prop_default = prop_matches_brute Qbf.Solver.default_config "solver matches brute force"

let prop_no_shortcut =
  prop_matches_brute
    { Qbf.Solver.default_config with sat_shortcut = false }
    "solver matches brute force (no SAT shortcut)"

let prop_no_unitpure =
  prop_matches_brute
    { Qbf.Solver.default_config with use_unitpure = false }
    "solver matches brute force (no unit/pure)"

let prop_aggressive_fraig =
  prop_matches_brute
    { Qbf.Solver.default_config with fraig_node_threshold = 1 }
    "solver matches brute force (fraig every step)"

let prop_negation_flips =
  QCheck.Test.make ~name:"negating matrix and flipping quantifiers negates result" ~count:200
    qbf_arb (fun inst ->
      let man, matrix, prefix = build_qbf inst in
      let flipped =
        List.map (fun (q, vs) -> ((match q with P.Forall -> P.Exists | P.Exists -> P.Forall), vs)) prefix
      in
      (* ensure all vars are bound in both (free vars default to exists) *)
      let support = Hqs_util.Bitset.to_list (M.support man matrix) in
      let bound = P.variables prefix in
      QCheck.(
        List.for_all (fun v -> List.mem v bound) support
        ==> (Qbf.Solver.solve man matrix prefix
            = not (Qbf.Solver.solve man (M.compl_ matrix) flipped))))

(* ---------------------------------------------------------------- qdpll *)

let prop_qdpll_matches_brute =
  QCheck.Test.make ~name:"qdpll matches brute force" ~count:300 qbf_arb (fun inst ->
      let man, matrix, prefix = build_qbf inst in
      Qbf.Qdpll.solve man matrix prefix = Qbf.Brute.solve man matrix prefix)

let prop_qdpll_matches_elimination =
  QCheck.Test.make ~name:"qdpll agrees with the elimination solver" ~count:300 qbf_arb
    (fun inst ->
      let man, matrix, prefix = build_qbf inst in
      Qbf.Qdpll.solve man matrix prefix = Qbf.Solver.solve man matrix prefix)

let prop_qdpll_model_sound =
  (* on a true answer, substituting the reported choice functions into the
     matrix must leave a formula that holds for all universal assignments
     (checked by brute evaluation) *)
  QCheck.Test.make ~name:"qdpll choice functions are sound" ~count:200 qbf_arb (fun inst ->
      let man, matrix, prefix = build_qbf inst in
      let captured = ref None in
      let answer =
        Qbf.Qdpll.solve
          ~on_model:(fun mman defs -> captured := Some (mman, defs))
          man matrix prefix
      in
      if not answer then true
      else begin
        match !captured with
        | None -> false
        | Some (mman, defs) ->
            (* evaluate over every universal assignment *)
            let univs =
              List.concat_map
                (fun (q, vs) -> if q = P.Forall then vs else [])
                prefix
            in
            let n = List.length univs in
            let ok = ref true in
            for bits = 0 to (1 lsl n) - 1 do
              let uenv v =
                match List.find_index (fun u -> u = v) univs with
                | Some i -> bits land (1 lsl i) <> 0
                | None -> false
              in
              let env v =
                match List.assoc_opt v defs with
                | Some fn -> M.eval mman fn uenv
                | None -> uenv v
              in
              if not (M.eval man matrix env) then ok := false
            done;
            !ok
      end)

let test_qdpll_cnf_direct () =
  (* forall x exists y: (x | y) & (!x | !y)  -- y = !x, true *)
  let l = Sat.Lit.of_dimacs in
  let prefix = [ (P.Forall, [ 0 ]); (P.Exists, [ 1 ]) ] in
  check "sat" true
    (Qbf.Qdpll.solve_cnf ~prefix ~num_vars:2 [ [ l 1; l 2 ]; [ l (-1); l (-2) ] ]);
  (* exists y forall x: (x | y) & (!x | !y) -- false *)
  let prefix = [ (P.Exists, [ 1 ]); (P.Forall, [ 0 ]) ] in
  check "unsat" false
    (Qbf.Qdpll.solve_cnf ~prefix ~num_vars:2 [ [ l 1; l 2 ]; [ l (-1); l (-2) ] ])

(* -------------------------------------------------------------- qdimacs *)

let test_qdimacs_roundtrip () =
  let text = "c example\np cnf 3 2\na 1 0\ne 2 3 0\n1 -2 0\n-1 3 0\n" in
  let q = Qbf.Qdimacs.parse_string text in
  Alcotest.(check int) "vars" 3 q.Qbf.Qdimacs.num_vars;
  check "prefix" true
    (q.Qbf.Qdimacs.prefix = [ (P.Forall, [ 0 ]); (P.Exists, [ 1; 2 ]) ]);
  let q2 = Qbf.Qdimacs.parse_string (Qbf.Qdimacs.to_string q) in
  check "roundtrip" true (q = q2);
  let man, matrix = Qbf.Qdimacs.to_aig q in
  check "solves true" true (Qbf.Solver.solve man matrix q.Qbf.Qdimacs.prefix)

let test_qdimacs_solve_unsat () =
  (* exists y forall x: y <-> x, in qdimacs *)
  let text = "p cnf 2 2\ne 1 0\na 2 0\n1 -2 0\n-1 2 0\n" in
  let q = Qbf.Qdimacs.parse_string text in
  let man, matrix = Qbf.Qdimacs.to_aig q in
  check "unsat" false (Qbf.Solver.solve man matrix q.Qbf.Qdimacs.prefix)

let test_prefix_normalize () =
  let p = [ (P.Forall, []); (P.Forall, [ 1 ]); (P.Forall, [ 2 ]); (P.Exists, [ 3 ]) ] in
  check "merged" true (P.normalize p = [ (P.Forall, [ 1; 2 ]); (P.Exists, [ 3 ]) ]);
  check "restrict" true
    (P.restrict p ~keep:(fun v -> v <> 1) = [ (P.Forall, [ 2 ]); (P.Exists, [ 3 ]) ]);
  check "quant_of" true (P.quant_of p 3 = Some P.Exists);
  check "quant_of none" true (P.quant_of p 9 = None)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "qbf"
    [
      ( "known",
        [
          Alcotest.test_case "forall-exists iff" `Quick test_forall_exists_iff;
          Alcotest.test_case "exists-forall iff" `Quick test_exists_forall_iff;
          Alcotest.test_case "free vars" `Quick test_free_vars_existential;
          Alcotest.test_case "constant matrices" `Quick test_constant_matrices;
          Alcotest.test_case "forall tautology" `Quick test_forall_tautology;
          Alcotest.test_case "three level" `Quick test_three_level;
        ] );
      ( "random",
        qsuite
          [
            prop_default;
            prop_no_shortcut;
            prop_no_unitpure;
            prop_aggressive_fraig;
            prop_negation_flips;
          ] );
      ( "qdpll",
        [ Alcotest.test_case "cnf interface" `Quick test_qdpll_cnf_direct ]
        @ qsuite [ prop_qdpll_matches_brute; prop_qdpll_matches_elimination; prop_qdpll_model_sound ]
      );
      ( "qdimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_qdimacs_roundtrip;
          Alcotest.test_case "unsat instance" `Quick test_qdimacs_solve_unsat;
          Alcotest.test_case "prefix ops" `Quick test_prefix_normalize;
        ] );
    ]
