(* Certificate pipeline: emission from real solves, in-library checking,
   and roundtrips through the INDEPENDENT external checker binary
   (../bin/certcheck.exe — tests run in _build/default/test), plus the
   seeded-mutation negatives: 100/100 single-bit corruptions of a valid
   artifact must be rejected, the unmutated artifact never. *)

module P = Dqbf.Pcnf

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let certcheck = "../bin/certcheck.exe"

(* y3 = x1 XOR x2 is the unique Skolem function: every semantic mutation
   of the certificate is guaranteed to be caught. *)
let xor_text = "p cnf 3 4\na 1 2 0\nd 3 1 2 0\n1 2 -3 0\n1 -2 3 0\n-1 2 3 0\n-1 -2 -3 0\n"

(* y2 must equal x1 but may not depend on it: UNSAT, and the expansion
   refutation needs both universal assignments — dropping either line
   leaves a satisfiable rest, so u-line mutations are always caught. *)
let unsat_text = "p cnf 2 2\na 1 0\nd 2 0\n1 -2 0\n-1 2 0\n"

let write_temp suffix content =
  let path = Filename.temp_file "certt" suffix in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content);
  path

let exit_code cmd =
  match Unix.system cmd with
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> 255

(* run the external checker on raw texts; returns its exit code *)
let certcheck_on ~instance_text ~cert_text =
  let inst = write_temp ".dqdimacs" instance_text in
  let cert = write_temp ".cert" cert_text in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove inst;
      Sys.remove cert)
    (fun () -> exit_code (Printf.sprintf "%s %s %s >/dev/null 2>&1" certcheck inst cert))

let solve_model text =
  let pcnf = P.parse_string text in
  match Hqs.solve_pcnf_model pcnf with
  | Hqs.Sat, Some model, _ -> (pcnf, model)
  | Hqs.Sat, None, _ -> Alcotest.fail "no model produced"
  | Hqs.Unsat, _, _ -> Alcotest.fail "unexpected UNSAT"

let sat_cert text =
  let pcnf, model = solve_model text in
  (pcnf, Cert.of_skolem ~instance_text:text pcnf model)

let test_fingerprint () =
  Alcotest.(check string) "stable" (Cert.fingerprint "") (Cert.fingerprint "");
  check "distinct inputs, distinct prints" false
    (String.equal (Cert.fingerprint "a") (Cert.fingerprint "b"));
  check_int "16 hex chars" 16 (String.length (Cert.fingerprint xor_text))

let test_sat_roundtrip () =
  let pcnf, cert = sat_cert xor_text in
  check "status SAT" true (String.equal (Cert.status cert) "SAT");
  (match Cert.check ~instance_text:xor_text pcnf cert with
  | Ok () -> ()
  | Error e -> Alcotest.failf "in-library check rejected: %s" e);
  (* render/parse inverse *)
  (match Cert.parse (Cert.render cert) with
  | Ok cert' ->
      Alcotest.(check string) "reparse renders identically" (Cert.render cert)
        (Cert.render cert')
  | Error e -> Alcotest.failf "reparse failed: %s" e);
  check_int "external checker verifies" 0
    (certcheck_on ~instance_text:xor_text ~cert_text:(Cert.render cert))

let test_unsat_roundtrip () =
  let pcnf = P.parse_string unsat_text in
  let cert = Cert.of_unsat ~instance_text:unsat_text pcnf in
  check "status UNSAT" true (String.equal (Cert.status cert) "UNSAT");
  (match Cert.check ~instance_text:unsat_text pcnf cert with
  | Ok () -> ()
  | Error e -> Alcotest.failf "in-library check rejected: %s" e);
  check_int "external checker verifies" 0
    (certcheck_on ~instance_text:unsat_text ~cert_text:(Cert.render cert))

let test_uncertified () =
  let pcnf = P.parse_string unsat_text in
  let cert = Cert.of_unsat ~max_univs:0 ~instance_text:unsat_text pcnf in
  check "explicitly uncertified" true (String.equal (Cert.status cert) "UNCERTIFIED");
  (match Cert.check ~instance_text:unsat_text pcnf cert with
  | Ok () -> ()
  | Error e -> Alcotest.failf "uncertified artifact should pass vacuously: %s" e);
  check_int "external checker exits 3" 3
    (certcheck_on ~instance_text:unsat_text ~cert_text:(Cert.render cert))

let test_wrong_instance () =
  let _, cert = sat_cert xor_text in
  (* same grammar, different instance bytes: fingerprint mismatch *)
  check_int "fingerprint mismatch is malformed" 2
    (certcheck_on ~instance_text:unsat_text ~cert_text:(Cert.render cert));
  let pcnf' = P.parse_string unsat_text in
  check "in-library check rejects too" true
    (match Cert.check ~instance_text:unsat_text pcnf' cert with Ok () -> false | Error _ -> true)

let test_inconsistent_marker () =
  let pcnf = P.parse_string unsat_text in
  let cert = Cert.of_unsat ~instance_text:unsat_text pcnf in
  let bad =
    { cert with Cert.body = Cert.Uncertified (Cert.inconsistent_reason ^ ": test") }
  in
  check "marked inconsistent" true (Cert.is_inconsistent bad);
  check "full check treats it as a violation" true
    (match Cert.check ~instance_text:unsat_text pcnf bad with Ok () -> false | Error _ -> true)

let test_parse_negatives () =
  let reject s = check ("rejected: " ^ s) true (Result.is_error (Cert.parse s)) in
  reject "";
  reject "s cert SAT\n";
  reject "s cert SAT\nh 00\na 1 0\nn 1\n";
  (* gate referencing a later node *)
  reject "s cert SAT\nh 00\na 1 0\nd 2 0\nn 3\ng 1 4 4\ni 2 1\no 2 2\n";
  reject "s cert BOGUS\nh 00\na 0\n"

(* ----------------------------------------------- seeded mutations *)

(* Single-bit mutations of valid artifacts, each provably detectable on
   the two fixture instances above (forced Skolem function; two-line
   expansion where each line is load-bearing). Operators mutate the
   rendered TEXT so the external parser is exercised too. *)

let split_lines s = String.split_on_char '\n' (String.trim s)
let join_lines l = String.concat "\n" l ^ "\n"

let mutate_line pred f lines st =
  let candidates = List.filteri (fun i _ -> pred i (List.nth lines i)) lines in
  if candidates = [] then None
  else
    let nth = Random.State.int st (List.length candidates) in
    let count = ref (-1) in
    Some
      (List.mapi
         (fun i line ->
           if pred i line then begin
             incr count;
             if !count = nth then f line else line
           end
           else line)
         lines)

let starts p s = String.length s >= String.length p && String.equal (String.sub s 0 (String.length p)) p

(* operator pool: (name, applies-to-status, mutation) *)
let operators =
  [
    ( "output-flip",
      `Sat,
      fun lines st ->
        mutate_line
          (fun _ l -> starts "o " l)
          (fun l ->
            match String.split_on_char ' ' l with
            | [ "o"; y; lit ] -> Printf.sprintf "o %s %d" y (int_of_string lit lxor 1)
            | _ -> l)
          lines st );
    ( "dep-drop",
      `Sat,
      fun lines st ->
        (* d 3 1 2 0 -> drop one dep; support {1,2} exceeds either *)
        mutate_line
          (fun _ l -> starts "d " l && List.length (String.split_on_char ' ' l) > 3)
          (fun l ->
            match String.split_on_char ' ' l with
            | "d" :: y :: deps0 ->
                let deps = List.filter (fun t -> not (String.equal t "0")) deps0 in
                let keep = List.filteri (fun i _ -> i > 0) deps in
                "d " ^ y ^ " " ^ String.concat " " (keep @ [ "0" ])
            | _ -> l)
          lines st );
    ( "fingerprint-flip",
      `Both,
      fun lines st ->
        mutate_line
          (fun _ l -> starts "h " l)
          (fun l ->
            let b = Bytes.of_string l in
            let i = 2 + Random.State.int st (Bytes.length b - 2) in
            let c = Bytes.get b i in
            Bytes.set b i (if Char.equal c '0' then '1' else '0');
            Bytes.to_string b)
          lines st );
    ( "univ-drop",
      `Both,
      fun lines st ->
        mutate_line
          (fun _ l -> starts "a " l && List.length (String.split_on_char ' ' l) > 2)
          (fun l ->
            match String.split_on_char ' ' l with
            | "a" :: rest ->
                let vars = List.filter (fun t -> not (String.equal t "0")) rest in
                let keep = List.filteri (fun i _ -> i > 0) vars in
                "a " ^ String.concat " " (keep @ [ "0" ])
            | _ -> l)
          lines st );
    ( "uline-flip",
      `Unsat,
      fun lines st ->
        (* flipping the single literal duplicates the other assignment:
           the surviving half of the expansion is satisfiable *)
        mutate_line
          (fun _ l -> starts "u " l)
          (fun l ->
            match String.split_on_char ' ' l with
            | [ "u"; lit; "0" ] -> Printf.sprintf "u %d 0" (- (int_of_string lit))
            | _ -> l)
          lines st );
    ( "xcount-bump",
      `Unsat,
      fun lines st ->
        mutate_line
          (fun _ l -> starts "x " l)
          (fun l ->
            match String.split_on_char ' ' l with
            | [ "x"; k ] -> Printf.sprintf "x %d" (int_of_string k + 1)
            | _ -> l)
          lines st );
  ]

let test_mutations () =
  let _, sat_c = sat_cert xor_text in
  let sat_rendered = Cert.render sat_c in
  let unsat_pcnf = P.parse_string unsat_text in
  let unsat_rendered = Cert.render (Cert.of_unsat ~instance_text:unsat_text unsat_pcnf) in
  check_int "unmutated SAT artifact accepted" 0
    (certcheck_on ~instance_text:xor_text ~cert_text:sat_rendered);
  check_int "unmutated UNSAT artifact accepted" 0
    (certcheck_on ~instance_text:unsat_text ~cert_text:unsat_rendered);
  (* deterministic QCheck generator stream: 100 operator picks *)
  let st = Random.State.make [| 0xC0FFEE |] in
  let gen = QCheck.Gen.int_range 0 (List.length operators - 1) in
  let picks = QCheck.Gen.generate ~rand:st ~n:100 gen in
  let rejected = ref 0 in
  List.iteri
    (fun i pick ->
      let name, scope, op = List.nth operators pick in
      let instance_text, rendered =
        match scope with
        | `Sat -> (xor_text, sat_rendered)
        | `Unsat -> (unsat_text, unsat_rendered)
        | `Both ->
            if Random.State.bool st then (xor_text, sat_rendered)
            else (unsat_text, unsat_rendered)
      in
      match op (split_lines rendered) st with
      | None -> Alcotest.failf "mutant %d (%s): operator found no target line" i name
      | Some lines ->
          let mutant = join_lines lines in
          if String.equal mutant rendered then
            Alcotest.failf "mutant %d (%s): mutation was the identity" i name;
          let code = certcheck_on ~instance_text ~cert_text:mutant in
          if code = 0 then Alcotest.failf "mutant %d (%s) was accepted" i name
          else incr rejected)
    picks;
  check_int "all 100 mutants rejected" 100 !rejected

let () =
  Alcotest.run "cert"
    [
      ( "emission",
        [
          Alcotest.test_case "fingerprint" `Quick test_fingerprint;
          Alcotest.test_case "SAT roundtrip" `Quick test_sat_roundtrip;
          Alcotest.test_case "UNSAT roundtrip" `Quick test_unsat_roundtrip;
          Alcotest.test_case "uncertified marker" `Quick test_uncertified;
        ] );
      ( "checking",
        [
          Alcotest.test_case "wrong instance" `Quick test_wrong_instance;
          Alcotest.test_case "inconsistent marker" `Quick test_inconsistent_marker;
          Alcotest.test_case "parse negatives" `Quick test_parse_negatives;
        ] );
      ("mutation", [ Alcotest.test_case "100 seeded mutants" `Quick test_mutations ]);
    ]
