(* Quickstart: build the paper's Example 1 DQBF through the API, inspect
   its dependency graph, and solve it with HQS and with the iDQ baseline.

     forall x1 x2. exists y1(x1). exists y2(x2). matrix

   With matrix (y1 <-> x1) and (y2 <-> x2) the formula is satisfied (each
   y_i copies the variable it may see); with the crossed matrix
   (y1 <-> x2) and (y2 <-> x1) it is unsatisfiable, because y1 would need
   to know x2. No QBF prefix can express these dependencies (Theorem 3),
   which is exactly what makes this a DQBF problem. *)

module M = Aig.Man
module F = Dqbf.Formula

let build ~crossed =
  let f = F.create () in
  (* variables are plain ints; 0,1 universal and 2,3 existential *)
  F.add_universal f 0;
  F.add_universal f 1;
  F.add_existential f 2 ~deps:(Hqs_util.Bitset.singleton 0);
  F.add_existential f 3 ~deps:(Hqs_util.Bitset.singleton 1);
  let man = F.man f in
  let x1 = M.input man 0 and x2 = M.input man 1 in
  let y1 = M.input man 2 and y2 = M.input man 3 in
  let matrix =
    if crossed then M.mk_and man (M.mk_iff man y1 x2) (M.mk_iff man y2 x1)
    else M.mk_and man (M.mk_iff man y1 x1) (M.mk_iff man y2 x2)
  in
  F.set_matrix f matrix;
  f

let describe f =
  Format.printf "formula: %a@." F.pp f;
  Printf.printf "dependency graph acyclic (QBF-expressible): %b\n"
    (Dqbf.Depgraph.is_acyclic f);
  let pairs = Dqbf.Depgraph.incomparable_pairs f in
  Printf.printf "incomparable pairs: %s\n"
    (String.concat ", " (List.map (fun (a, b) -> Printf.sprintf "(y%d,y%d)" a b) pairs));
  let set = Dqbf.Elimset.minimum_set f in
  Printf.printf "minimum universal elimination set (via MaxSAT): {%s}\n"
    (String.concat ", " (List.map string_of_int set))

let solve_both name f =
  let verdict, stats = Hqs.solve_formula f in
  Printf.printf "%-12s HQS: %s   (%s)\n" name
    (match verdict with Hqs.Sat -> "SAT" | Hqs.Unsat -> "UNSAT")
    (Format.asprintf "%a" Hqs.pp_stats stats);
  let answer, istats = Idq.solve f in
  Printf.printf "%-12s iDQ: %s   (%d instantiation rounds, %d ground vars)\n" name
    (if answer then "SAT" else "UNSAT")
    istats.Idq.rounds istats.Idq.ground_vars

let () =
  print_endline "=== Example 1 of the paper: aligned dependencies ===";
  let f = build ~crossed:false in
  describe f;
  solve_both "aligned" f;
  print_endline "";
  print_endline "=== crossed dependencies: y1 sees only x1 but must track x2 ===";
  let g = build ~crossed:true in
  solve_both "crossed" g;
  print_endline "";
  (* the same formula through the DQDIMACS pipeline *)
  print_endline "=== same instance via DQDIMACS text ===";
  let text =
    "c Example 1, crossed\n\
     p cnf 4 4\n\
     a 1 2 0\n\
     d 3 1 0\n\
     d 4 2 0\n\
     3 -2 0\n\
     -3 2 0\n\
     4 -1 0\n\
     -4 1 0\n"
  in
  let pcnf = Dqbf.Pcnf.parse_string text in
  let verdict, _ = Hqs.solve_pcnf pcnf in
  Printf.printf "parsed and solved: %s\n"
    (match verdict with Hqs.Sat -> "SAT" | Hqs.Unsat -> "UNSAT")
