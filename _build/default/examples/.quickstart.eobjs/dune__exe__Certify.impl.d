examples/certify.ml: Aig Array Circuit Dqbf Format Hqs List Printf
