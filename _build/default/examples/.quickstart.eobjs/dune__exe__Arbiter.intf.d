examples/arbiter.mli:
