examples/pec_adder.mli:
