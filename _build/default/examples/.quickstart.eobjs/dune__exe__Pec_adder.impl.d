examples/pec_adder.ml: Array Circuit Dqbf Hqs List Printf Unix
