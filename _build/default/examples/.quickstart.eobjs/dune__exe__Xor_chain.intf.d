examples/xor_chain.mli:
