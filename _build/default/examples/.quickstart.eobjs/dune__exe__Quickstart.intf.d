examples/quickstart.mli:
