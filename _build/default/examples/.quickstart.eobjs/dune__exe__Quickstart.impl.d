examples/quickstart.ml: Aig Dqbf Format Hqs Hqs_util Idq List Printf String
