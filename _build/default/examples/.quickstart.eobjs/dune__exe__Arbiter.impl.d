examples/arbiter.ml: Circuit Hqs Hqs_util List Printf Unix
