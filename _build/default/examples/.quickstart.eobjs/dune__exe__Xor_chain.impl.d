examples/xor_chain.ml: Circuit Hqs Hqs_util Idq List Printf Unix
