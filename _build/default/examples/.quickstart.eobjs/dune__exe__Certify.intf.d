examples/certify.mli:
