(** MiniSat-style literal encoding: literal [2*v] is variable [v] positive,
    [2*v+1] is [v] negated. Variables are 0-based ints. *)

type t = int

val of_var : int -> t
(** Positive literal of a variable. *)

val mk : int -> neg:bool -> t
val var : t -> int
val neg : t -> t
val is_neg : t -> bool
val is_pos : t -> bool

val apply_sign : t -> neg:bool -> t
(** [apply_sign l ~neg] negates [l] iff [neg]. *)

val to_dimacs : t -> int
(** Signed 1-based DIMACS integer. *)

val of_dimacs : int -> t
(** @raise Invalid_argument on 0. *)

val pp : Format.formatter -> t -> unit
