(** DIMACS CNF reading/writing (for tests and interoperability). Clauses are
    lists of {!Lit.t}. *)

type cnf = { num_vars : int; clauses : Lit.t list list }

val parse_string : string -> cnf
(** @raise Failure on malformed input. *)

val parse_file : string -> cnf
val to_string : cnf -> string
val write_file : string -> cnf -> unit

val load_into : Solver.t -> cnf -> unit
(** Allocate variables and add all clauses to a solver. *)
