lib/sat/solver.ml: Array Budget Heap Hqs_util Lit Vec
