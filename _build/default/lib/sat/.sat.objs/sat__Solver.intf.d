lib/sat/solver.mli: Hqs_util Lit
