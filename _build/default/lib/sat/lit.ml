type t = int

let of_var v = v * 2
let mk v ~neg = (v * 2) + if neg then 1 else 0
let var l = l lsr 1
let neg l = l lxor 1
let is_neg l = l land 1 = 1
let is_pos l = l land 1 = 0
let apply_sign l ~neg:n = if n then neg l else l

let to_dimacs l =
  let v = var l + 1 in
  if is_neg l then -v else v

let of_dimacs i =
  if i = 0 then invalid_arg "Lit.of_dimacs: 0";
  let v = abs i - 1 in
  mk v ~neg:(i < 0)

let pp fmt l = Format.fprintf fmt "%d" (to_dimacs l)
