lib/qbf/brute.mli: Aig Prefix
