lib/qbf/prefix.mli: Format
