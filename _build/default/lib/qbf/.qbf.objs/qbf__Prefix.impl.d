lib/qbf/prefix.ml: Format List
