lib/qbf/qdimacs.ml: Aig Buffer List Prefix Printf String
