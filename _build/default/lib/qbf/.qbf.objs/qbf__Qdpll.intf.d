lib/qbf/qdpll.mli: Aig Hqs_util Prefix Sat
