lib/qbf/brute.ml: Aig Bitset Hqs_util Prefix
