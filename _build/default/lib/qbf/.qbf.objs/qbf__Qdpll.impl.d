lib/qbf/qdpll.ml: Aig Array Bitset Budget Fun Hashtbl Hqs_util List Option Prefix Sat
