lib/qbf/solver.ml: Aig Array Bitset Budget Hashtbl Hqs_util List Prefix Sat
