lib/qbf/solver.mli: Aig Hqs_util Prefix
