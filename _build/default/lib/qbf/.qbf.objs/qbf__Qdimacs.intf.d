lib/qbf/qdimacs.mli: Aig Prefix
