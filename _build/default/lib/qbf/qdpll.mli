(** Search-based QBF solving (QDPLL), the other solver family the paper
    names in Section III-A (DepQBF et al.).

    A clause-level DPLL procedure with the QBF-specific rules:
    - branching follows the prefix outermost-first; existential branches
      disjoin, universal branches conjoin;
    - unit propagation applies *universal reduction* first: a universal
      literal is dropped from a clause when every existential literal of
      the clause is quantified outside it, so an all-universal residue is
      a conflict;
    - pure literals are assigned (existential: satisfying polarity;
      universal: falsifying polarity).

    This back end exists as an independently-implemented cross-check for
    the elimination solver ({!Solver}) and as an alternative HQS back end
    (the paper's HQS uses AIGSOLVE, but any QBF solver fits). On a true
    answer it can reconstruct Skolem functions from the search tree by
    merging the per-branch choices with if-then-elses over the universal
    decisions. *)

val solve_cnf :
  ?budget:Hqs_util.Budget.t ->
  ?on_model:(Aig.Man.t -> (int * Aig.Man.lit) list -> unit) ->
  prefix:Prefix.t ->
  num_vars:int ->
  Sat.Lit.t list list ->
  bool
(** Decide a prenex CNF. Unbound variables are outermost existentials.
    [on_model] fires once on a true answer with choice functions for the
    existential variables (over universal inputs).
    @raise Hqs_util.Budget.Timeout on deadline. *)

val solve :
  ?budget:Hqs_util.Budget.t ->
  ?on_model:(Aig.Man.t -> (int * Aig.Man.lit) list -> unit) ->
  Aig.Man.t ->
  Aig.Man.lit ->
  Prefix.t ->
  bool
(** AIG front end: the matrix is Tseitin-encoded, with the auxiliary
    variables appended as an innermost existential block. [on_model]
    reports only the original prefix variables. *)
