type quant = Forall | Exists

type t = (quant * int list) list

let normalize blocks =
  let rec merge = function
    | [] -> []
    | (_, []) :: rest -> merge rest
    | (q, vs) :: rest -> (
        match merge rest with
        | (q', vs') :: tail when q = q' -> (q, vs @ vs') :: tail
        | tail -> (q, vs) :: tail)
  in
  merge blocks

let restrict blocks ~keep =
  normalize (List.map (fun (q, vs) -> (q, List.filter keep vs)) blocks)

let variables blocks = List.concat_map snd blocks
let num_blocks blocks = List.length (normalize blocks)

let quant_of blocks v =
  List.find_map (fun (q, vs) -> if List.mem v vs then Some q else None) blocks

let pp fmt blocks =
  List.iter
    (fun (q, vs) ->
      Format.fprintf fmt "%s %a. "
        (match q with Forall -> "forall" | Exists -> "exists")
        (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
        vs)
    blocks
