(** AIG-based QBF solving by quantifier elimination, in the style of
    AIGSOLVE (Pigorsch-Scholl), which the paper uses as its back end.

    Blocks are eliminated innermost-first: existential variables by
    or-ing, universal variables by and-ing the two cofactors. Between
    eliminations the solver applies unit/pure reductions (Theorems 5-6),
    compacts the graph, and runs FRAIG sweeps when the graph grows. Once a
    single quantifier kind remains, a single SAT call finishes the job. *)

type config = {
  use_unitpure : bool;
  use_fraig : bool;
  fraig_node_threshold : int;  (** sweep when the cone exceeds this size *)
  sat_shortcut : bool;  (** finish single-kind prefixes with one SAT call *)
}

val default_config : config

val solve :
  ?config:config ->
  ?budget:Hqs_util.Budget.t ->
  ?on_define:(int -> Aig.Man.t -> Aig.Man.lit -> unit) ->
  Aig.Man.t ->
  Aig.Man.lit ->
  Prefix.t ->
  bool
(** [solve man matrix prefix] decides the QBF. Free variables of the matrix
    are treated as outermost existentials. The caller's manager is not
    modified (the cone is copied out first).

    When [on_define] is given, it is invoked as [on_define v man fn] each
    time an existential variable [v] is eliminated, where [fn] (a literal
    of [man], to be snapshotted immediately by the callback) is a valid
    choice function for [v] in terms of the variables still present —
    enough to reconstruct Skolem functions after a [true] answer.
    @raise Hqs_util.Budget.Timeout on deadline.
    @raise Hqs_util.Budget.Out_of_memory_budget on node-limit exhaustion. *)
