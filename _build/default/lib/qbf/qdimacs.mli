(** QDIMACS reading/writing: a CNF with an `a`/`e` block prefix. Literals
    are signed 1-based DIMACS ints. *)

type t = {
  num_vars : int;
  prefix : Prefix.t;
  clauses : int list list;
}

val parse_string : string -> t
val parse_file : string -> t
val to_string : t -> string

val to_aig : t -> Aig.Man.t * Aig.Man.lit
(** Build the matrix as an AIG (variable ids are 0-based: DIMACS var k maps
    to AIG input k-1). *)
