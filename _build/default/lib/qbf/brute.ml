open Hqs_util
module M = Aig.Man

let solve man root prefix =
  (* free matrix variables become outermost existentials *)
  let bound = Bitset.of_list (Prefix.variables prefix) in
  let free = Bitset.to_list (Bitset.diff (M.support man root) bound) in
  let prefix = Prefix.normalize ((Prefix.Exists, free) :: prefix) in
  let rec go prefix root =
    if M.is_true root then true
    else if M.is_false root then false
    else begin
      match prefix with
      | [] ->
          (* non-constant AIG with an empty prefix cannot happen: support
             must be empty, and a supportless cone is constant *)
          assert false
      | (_, []) :: rest -> go rest root
      | (q, v :: vs) :: rest ->
          let f0 = M.cofactor man root ~var:v ~value:false in
          let f1 = M.cofactor man root ~var:v ~value:true in
          let rest = (q, vs) :: rest in
          (match q with
          | Prefix.Exists -> go rest f0 || go rest f1
          | Prefix.Forall -> go rest f0 && go rest f1)
    end
  in
  go prefix root
