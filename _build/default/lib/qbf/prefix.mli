(** Linearly ordered QBF quantifier prefixes (Definition 3 of the paper). *)

type quant = Forall | Exists

type t = (quant * int list) list
(** Blocks, outermost first. Invariants after {!normalize}: no empty blocks,
    adjacent blocks have different quantifiers, no duplicate variables. *)

val normalize : t -> t
(** Drop empty blocks and merge adjacent blocks of the same quantifier. *)

val restrict : t -> keep:(int -> bool) -> t
(** Keep only the variables satisfying [keep], then normalize. *)

val variables : t -> int list
val num_blocks : t -> int
val quant_of : t -> int -> quant option
val pp : Format.formatter -> t -> unit
