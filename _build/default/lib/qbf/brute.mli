(** Reference QBF decision by exhaustive cofactor expansion. Exponential;
    used to validate the elimination solver on small instances. *)

val solve : Aig.Man.t -> Aig.Man.lit -> Prefix.t -> bool
(** Variables of the matrix not bound by the prefix are treated as
    outermost existentials (the QDIMACS free-variable convention). *)
