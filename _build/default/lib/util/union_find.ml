type t = { parent : int Vec.t; rank : int Vec.t }

let create n =
  let parent = Vec.create ~capacity:(max n 1) ~dummy:(-1) () in
  let rank = Vec.create ~capacity:(max n 1) ~dummy:0 () in
  for i = 0 to n - 1 do
    Vec.push parent i;
    Vec.push rank 0
  done;
  { parent; rank }

let ensure t i =
  while Vec.size t.parent <= i do
    Vec.push t.parent (Vec.size t.parent);
    Vec.push t.rank 0
  done

let rec find t i =
  ensure t i;
  let p = Vec.get t.parent i in
  if p = i then i
  else begin
    let root = find t p in
    Vec.set t.parent i root;
    root
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri <> rj then begin
    let ki = Vec.get t.rank ri and kj = Vec.get t.rank rj in
    if ki < kj then Vec.set t.parent ri rj
    else if ki > kj then Vec.set t.parent rj ri
    else begin
      Vec.set t.parent rj ri;
      Vec.set t.rank ri (ki + 1)
    end
  end

let same t i j = find t i = find t j
