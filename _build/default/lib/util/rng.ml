(* splitmix64: tiny, fast, and good enough for simulation vectors. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  bits t mod n

let bool t = Int64.logand (next64 t) 1L = 1L
let float t bound = Int64.to_float (Int64.shift_right_logical (next64 t) 11) /. 9007199254740992.0 *. bound
let split t = { state = next64 t }
