(** Growable arrays with amortized O(1) push, used pervasively by the SAT
    solver and the AIG manager. A [dummy] element fills unused capacity. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
val make : int -> dummy:'a -> 'a -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Remove and return the last element. @raise Invalid_argument if empty. *)

val last : 'a t -> 'a

val shrink : 'a t -> int -> unit
(** [shrink v n] truncates [v] to its first [n] elements. *)

val clear : 'a t -> unit

val grow_to : 'a t -> int -> 'a -> unit
(** [grow_to v n x] extends [v] with copies of [x] until [size v >= n]. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : dummy:'a -> 'a list -> 'a t

val swap_remove : 'a t -> int -> unit
(** [swap_remove v i] removes index [i] by moving the last element into it. *)

val copy : 'a t -> 'a t
val sort : ('a -> 'a -> int) -> 'a t -> unit
