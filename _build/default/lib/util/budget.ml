exception Timeout
exception Out_of_memory_budget

type t = { deadline : float } (* infinity = unlimited *)

let unlimited = { deadline = infinity }
let now () = Unix.gettimeofday ()
let of_seconds s = { deadline = now () +. s }
let expired t = t.deadline < infinity && now () > t.deadline
let check t = if expired t then raise Timeout
let remaining t = if t.deadline = infinity then infinity else t.deadline -. now ()
