(** Union-find over ints with path compression and union by rank; used for
    equivalent-literal classes during DQBF preprocessing. *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> unit
val same : t -> int -> int -> bool
val ensure : t -> int -> unit
(** Make sure element [i] exists (elements are [0..n-1], auto-growable). *)
