(** Indexed binary max-heap over the elements [0 .. n-1], ordered by a
    mutable external score (VSIDS activities in the CDCL solver).

    [decrease]/[increase] must be called after the score of an in-heap
    element changes so the heap property is restored. *)

type t

val create : cmp:(int -> int -> bool) -> unit -> t
(** [cmp a b] must return true iff [a] has strictly higher priority. The
    comparison may read mutable state (activities). *)

val size : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

val insert : t -> int -> unit
(** No-op if already present. *)

val pop : t -> int
(** Remove and return the maximum. @raise Not_found if empty. *)

val update : t -> int -> unit
(** Re-establish the heap property around [x] after its score changed.
    No-op when [x] is not in the heap. *)

val rebuild : t -> int list -> unit
(** Replace the contents by the given elements and heapify. *)
