type 'a t = { mutable data : 'a array; mutable size : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; size = 0; dummy }

let make n ~dummy x =
  let cap = max n 1 in
  let data = Array.make cap x in
  (* fill the unused tail with dummy so values are not retained *)
  { data; size = n; dummy }

let size v = v.size
let is_empty v = v.size = 0

let get v i =
  if i < 0 || i >= v.size then invalid_arg "Vec.get";
  Array.unsafe_get v.data i

let set v i x =
  if i < 0 || i >= v.size then invalid_arg "Vec.set";
  Array.unsafe_set v.data i x

let ensure_capacity v n =
  if n > Array.length v.data then begin
    let cap = ref (Array.length v.data) in
    while !cap < n do
      cap := (!cap * 2) + 1
    done;
    let data = Array.make !cap v.dummy in
    Array.blit v.data 0 data 0 v.size;
    v.data <- data
  end

let push v x =
  ensure_capacity v (v.size + 1);
  Array.unsafe_set v.data v.size x;
  v.size <- v.size + 1

let pop v =
  if v.size = 0 then invalid_arg "Vec.pop";
  v.size <- v.size - 1;
  let x = Array.unsafe_get v.data v.size in
  Array.unsafe_set v.data v.size v.dummy;
  x

let last v =
  if v.size = 0 then invalid_arg "Vec.last";
  Array.unsafe_get v.data (v.size - 1)

let shrink v n =
  if n < 0 || n > v.size then invalid_arg "Vec.shrink";
  for i = n to v.size - 1 do
    Array.unsafe_set v.data i v.dummy
  done;
  v.size <- n

let clear v = shrink v 0

let grow_to v n x =
  ensure_capacity v n;
  while v.size < n do
    Array.unsafe_set v.data v.size x;
    v.size <- v.size + 1
  done

let iter f v =
  for i = 0 to v.size - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.size - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.size - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.size && (p (Array.unsafe_get v.data i) || loop (i + 1)) in
  loop 0

let to_list v = List.init v.size (fun i -> v.data.(i))
let to_array v = Array.sub v.data 0 v.size

let of_list ~dummy l =
  let v = create ~capacity:(max 1 (List.length l)) ~dummy () in
  List.iter (push v) l;
  v

let swap_remove v i =
  if i < 0 || i >= v.size then invalid_arg "Vec.swap_remove";
  v.size <- v.size - 1;
  v.data.(i) <- v.data.(v.size);
  v.data.(v.size) <- v.dummy

let copy v = { data = Array.copy v.data; size = v.size; dummy = v.dummy }

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.size
