type t = {
  cmp : int -> int -> bool;
  heap : int Vec.t; (* heap.(i) = element *)
  index : int Vec.t; (* index.(elt) = position in heap, or -1 *)
}

let create ~cmp () = { cmp; heap = Vec.create ~dummy:(-1) (); index = Vec.create ~dummy:(-1) () }
let size h = Vec.size h.heap
let is_empty h = size h = 0

let pos h x = if x < Vec.size h.index then Vec.get h.index x else -1
let mem h x = pos h x >= 0

let set_pos h x p =
  Vec.grow_to h.index (x + 1) (-1);
  Vec.set h.index x p

let swap h i j =
  let xi = Vec.get h.heap i and xj = Vec.get h.heap j in
  Vec.set h.heap i xj;
  Vec.set h.heap j xi;
  set_pos h xi j;
  set_pos h xj i

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp (Vec.get h.heap i) (Vec.get h.heap parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let n = size h in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < n && h.cmp (Vec.get h.heap l) (Vec.get h.heap !best) then best := l;
  if r < n && h.cmp (Vec.get h.heap r) (Vec.get h.heap !best) then best := r;
  if !best <> i then begin
    swap h i !best;
    sift_down h !best
  end

let insert h x =
  if not (mem h x) then begin
    let i = size h in
    Vec.push h.heap x;
    set_pos h x i;
    sift_up h i
  end

let pop h =
  if is_empty h then raise Not_found;
  let top = Vec.get h.heap 0 in
  let last = Vec.pop h.heap in
  set_pos h top (-1);
  if size h > 0 then begin
    Vec.set h.heap 0 last;
    set_pos h last 0;
    sift_down h 0
  end;
  top

let update h x =
  let i = pos h x in
  if i >= 0 then begin
    sift_up h i;
    sift_down h (pos h x)
  end

let rebuild h elts =
  Vec.iter (fun x -> set_pos h x (-1)) h.heap;
  Vec.clear h.heap;
  List.iter (insert h) elts
