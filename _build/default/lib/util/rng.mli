(** Deterministic pseudo-random numbers (splitmix64), so that simulation
    vectors, benchmark instances and property tests are reproducible without
    touching the global [Random] state. *)

type t

val create : int -> t
(** [create seed] returns an independent generator. *)

val next64 : t -> int64
val bits : t -> int
(** 62 uniformly random non-negative bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). @raise Invalid_argument if [n <= 0]. *)

val bool : t -> bool
val float : t -> float -> float
val split : t -> t
(** A fresh generator derived from (and advancing) [t]. *)
