(** Immutable-style dense bitsets over non-negative ints.

    Used for DQBF dependency sets, where subset tests and set differences
    dominate (Theorems 3-4 of the paper reduce dependency-graph cyclicity to
    pairwise subset checks). Operations never mutate their arguments. *)

type t

val empty : t
val singleton : int -> t
val of_list : int list -> t
val to_list : t -> int list

val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val subset : t -> t -> bool
(** [subset a b] is true iff every element of [a] is in [b]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val cardinal : t -> int
val is_empty : t -> bool
val choose : t -> int option
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool
val filter : (int -> bool) -> t -> t
val pp : Format.formatter -> t -> unit
