lib/util/heap.mli:
