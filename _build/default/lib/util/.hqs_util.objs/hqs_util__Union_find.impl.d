lib/util/union_find.ml: Vec
