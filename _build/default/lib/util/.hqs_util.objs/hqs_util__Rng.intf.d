lib/util/rng.mli:
