lib/util/budget.mli:
