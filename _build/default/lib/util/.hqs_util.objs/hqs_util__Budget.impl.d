lib/util/budget.ml: Unix
