lib/util/vec.mli:
