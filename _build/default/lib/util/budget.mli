(** Wall-clock and resource budgets.

    The paper aborts runs at 2 h / 8 GB; we mirror that with a per-run
    deadline and an AIG node budget. Solvers poll [check] at coarse
    intervals and raise on exhaustion, so runs terminate promptly without
    signals. *)

exception Timeout
exception Out_of_memory_budget

type t

val unlimited : t

val of_seconds : float -> t
(** Deadline [now + s]. *)

val check : t -> unit
(** @raise Timeout if the deadline has passed. *)

val expired : t -> bool
val remaining : t -> float
(** Seconds until the deadline; [infinity] if unlimited. *)

val now : unit -> float
