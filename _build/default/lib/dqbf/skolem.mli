(** Skolem models for satisfiable DQBFs and their certification.

    Definition 2 of the paper: a DQBF is satisfied iff there are Skolem
    functions [s_y : A(D_y) -> bool] whose substitution into the matrix
    yields a tautology. A {!t} carries one AIG function per existential
    variable, over universal inputs only.

    [verify] checks both obligations independently of how the model was
    produced: every [s_y] must syntactically depend only on D_y, and the
    substituted matrix must be a tautology (checked with the SAT solver).
    It is used by the test suite as an end-to-end soundness oracle for the
    solvers' SAT answers. *)

type t

val create : unit -> t

val man : t -> Aig.Man.t
(** The manager holding the Skolem functions (universal variables appear
    as inputs). *)

val define : t -> int -> Aig.Man.lit -> unit
(** [define m y fn] sets the Skolem function of [y] (replacing any
    previous definition). [fn] must live in [man m]. *)

val find : t -> int -> Aig.Man.lit option
val bindings : t -> (int * Aig.Man.lit) list

val eval : t -> int -> (int -> bool) -> bool
(** Evaluate [s_y] under an assignment of the universal variables.
    @raise Not_found if [y] has no definition. *)

val restrict : t -> keep:(int -> bool) -> t
(** Keep only the definitions of selected variables. *)

type failure =
  | Missing of int  (** an existential variable has no definition *)
  | Bad_support of int * int  (** (y, x): s_y depends on x outside D_y *)
  | Not_tautology  (** the substituted matrix is falsifiable *)

val verify :
  ?budget:Hqs_util.Budget.t -> Formula.t -> t -> (unit, failure) result
(** Check the model against a formula (Definition 2). *)

val pp_failure : Format.formatter -> failure -> unit
