(** Variable elimination for DQBF: Theorem 1 (universal), Theorem 2
    (existential with full dependencies) and Theorem 5 (unit/pure), plus
    prefix pruning for variables that left the matrix support.

    When a {!Model_trail.t} is supplied, every eliminated existential
    records enough information to reconstruct Skolem functions after a
    SAT verdict. *)

val universal : ?trail:Model_trail.t -> Formula.t -> int -> unit
(** Theorem 1. Eliminates universal [x]: the matrix becomes
    [phi[0/x] and phi[1/x][y'/y]] with a fresh copy [y'] of every
    existential in E_x; dependency sets lose [x].
    @raise Invalid_argument if [x] is not universal. *)

val existential : ?trail:Model_trail.t -> Formula.t -> int -> unit
(** Theorem 2. Eliminates existential [y] depending on all universals:
    the matrix becomes [phi[0/y] or phi[1/y]].
    @raise Invalid_argument if [y]'s dependency set is not the full
    universal set. *)

val eliminate_full_existentials : ?trail:Model_trail.t -> Formula.t -> int
(** Apply Theorem 2 to every eligible existential; returns how many were
    eliminated. *)

val unit_pure_round :
  ?trail:Model_trail.t -> Formula.t -> [ `Unsat | `Eliminated of int | `None ]
(** One scan of the matrix (Theorem 6) followed by the eliminations of
    Theorem 5. [`Unsat] signals a universal unit variable (or an
    existential that is both positive and negative unit). *)

val prune_prefix : ?trail:Model_trail.t -> Formula.t -> unit
(** Remove prefix variables outside the matrix support (the paper's final
    remark in Section III-C). Pruned existentials are don't-cares and
    record constant Skolem functions. *)
