(** The dependency graph of a DQBF (Definition 4): nodes are existential
    variables, with an edge y -> y' iff D_y is not a subset of D_y'.

    Theorem 3: the DQBF has an equivalent QBF prefix iff the graph is
    acyclic. Theorem 4 reduces cyclicity to the existence of a pair of
    incomparable dependency sets, so everything here works on pairs. *)

val edges : Formula.t -> (int * int) list
(** All edges of the dependency graph (for inspection and tests). *)

val incomparable_pairs : Formula.t -> (int * int) list
(** The set C_psi of binary cycles: unordered pairs (y, y') with
    incomparable dependency sets; each pair reported once with y < y'. *)

val is_acyclic : Formula.t -> bool
(** Theorem 4: acyclic iff no incomparable pair. *)

val qbf_prefix : Formula.t -> Qbf.Prefix.t option
(** The equivalent QBF prefix from the proof of Theorem 3, or [None] when
    the graph is cyclic. Universal variables not in any dependency set are
    placed in the innermost universal block. *)
