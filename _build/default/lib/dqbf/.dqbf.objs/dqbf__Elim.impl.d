lib/dqbf/elim.ml: Aig Bitset Formula Hashtbl Hqs_util List Model_trail Option
