lib/dqbf/depgraph.ml: Bitset Formula Hqs_util List Qbf
