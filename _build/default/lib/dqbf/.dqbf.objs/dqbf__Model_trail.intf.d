lib/dqbf/model_trail.mli: Aig Skolem
