lib/dqbf/skolem.mli: Aig Format Formula Hqs_util
