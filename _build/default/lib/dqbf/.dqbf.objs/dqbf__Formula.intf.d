lib/dqbf/formula.mli: Aig Format Hqs_util
