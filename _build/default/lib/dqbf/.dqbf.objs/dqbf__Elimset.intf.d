lib/dqbf/elimset.mli: Formula Hqs_util
