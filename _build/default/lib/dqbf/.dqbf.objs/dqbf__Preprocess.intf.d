lib/dqbf/preprocess.mli: Formula Model_trail Pcnf
