lib/dqbf/elim.mli: Formula Model_trail
