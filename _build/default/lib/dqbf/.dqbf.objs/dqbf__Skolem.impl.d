lib/dqbf/skolem.ml: Aig Bitset Budget Format Formula Hashtbl Hqs_util List Sat
