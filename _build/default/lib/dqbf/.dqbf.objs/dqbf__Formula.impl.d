lib/dqbf/formula.ml: Aig Bitset Format Hashtbl Hqs_util List
