lib/dqbf/model_trail.ml: Aig Hashtbl List Skolem
