lib/dqbf/pcnf.ml: Aig Buffer Formula Hashtbl Hqs_util List Printf String
