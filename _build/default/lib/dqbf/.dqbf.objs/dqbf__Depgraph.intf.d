lib/dqbf/depgraph.mli: Formula Qbf
