lib/dqbf/elimset.ml: Array Bitset Depgraph Formula Hashtbl Hqs_util List Maxsat Sat
