lib/dqbf/reference.mli: Formula Hqs_util
