lib/dqbf/pcnf.mli: Formula
