lib/dqbf/reference.ml: Aig Bitset Budget Formula Hashtbl Hqs_util List Sat
