lib/dqbf/preprocess.ml: Aig Bitset Formula Fun Hashtbl Hqs_util List Model_trail Option Pcnf Sat
