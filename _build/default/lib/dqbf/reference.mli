(** Reference DQBF decision procedures, used to validate HQS.

    [by_expansion] implements the semantics directly: it grounds the
    formula over every universal assignment, introducing one copy of each
    existential per assignment of its dependency set, and hands the
    conjunction to the SAT solver. This is an independent code path from
    the elimination machinery of {!Elim} (no Theorem 1/2 involved).

    [by_skolem_enum] enumerates Skolem function tables outright
    (Definition 2) and is only feasible for the tiniest instances; it
    serves as a cross-check of the cross-check. *)

val by_expansion : ?budget:Hqs_util.Budget.t -> Formula.t -> bool
(** @raise Invalid_argument if there are more than 20 universals. *)

val by_skolem_enum : Formula.t -> bool
(** @raise Invalid_argument when the table space exceeds 2^22. *)
