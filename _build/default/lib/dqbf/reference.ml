open Hqs_util
module M = Aig.Man

(* index of a projection: bits of sigma restricted to [deps], packed in the
   order given by [Bitset.to_list deps] *)
let project sigma deps =
  let bits = ref 0 in
  List.iteri (fun i x -> if sigma x then bits := !bits lor (1 lsl i)) (Bitset.to_list deps);
  !bits

let by_expansion ?(budget = Budget.unlimited) f =
  let univs = Bitset.to_list (Formula.universals f) in
  let n = List.length univs in
  if n > 20 then invalid_arg "Reference.by_expansion: too many universals";
  let man = M.create () in
  (* rebuild the matrix inside a private manager *)
  let matrix =
    let table = Hashtbl.create 256 in
    let get e = M.apply_sign (Hashtbl.find table (M.node_of e)) ~neg:(M.is_compl e) in
    M.iter_cone (Formula.man f)
      [ Formula.matrix f ]
      (fun nd ->
        let v =
          if nd = 0 then M.false_
          else if M.is_input (Formula.man f) (nd * 2) then
            M.input man (M.var_of_input (Formula.man f) (nd * 2))
          else begin
            let e0, e1 = M.fanins (Formula.man f) (nd * 2) in
            M.mk_and man (get e0) (get e1)
          end
        in
        Hashtbl.replace table nd v);
    get (Formula.matrix f)
  in
  let exists = Formula.existentials f in
  (* ground variables: fresh ids above everything in use *)
  let next = ref (List.fold_left (fun acc (y, _) -> max acc (y + 1)) (n + 1) exists) in
  List.iter (fun x -> next := max !next (x + 1)) univs;
  let ground : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let ground_var y proj =
    match Hashtbl.find_opt ground (y, proj) with
    | Some v -> v
    | None ->
        let v = !next in
        incr next;
        Hashtbl.add ground (y, proj) v;
        v
  in
  let copies = ref [] in
  for bits = 0 to (1 lsl n) - 1 do
    let sigma =
      let tbl = Hashtbl.create 8 in
      List.iteri (fun i x -> Hashtbl.replace tbl x (bits land (1 lsl i) <> 0)) univs;
      fun x -> Hashtbl.find tbl x
    in
    let subst v =
      if Formula.is_universal f v then Some (if sigma v then M.true_ else M.false_)
      else begin
        match List.assoc_opt v exists with
        | Some deps -> Some (M.input man (ground_var v (project sigma deps)))
        | None -> None
      end
    in
    copies := M.compose man matrix subst :: !copies
  done;
  let conj = M.mk_and_list man !copies in
  if M.is_true conj then true
  else if M.is_false conj then false
  else begin
    let solver = Sat.Solver.create () in
    let enc = Aig.Cnf_enc.create solver in
    let out = Aig.Cnf_enc.sat_lit man enc conj in
    Sat.Solver.add_clause solver [ out ];
    match Sat.Solver.solve ~budget solver with
    | Sat.Solver.Sat -> true
    | Sat.Solver.Unsat -> false
    | Sat.Solver.Unknown -> assert false
  end

let by_skolem_enum f =
  let univs = Bitset.to_list (Formula.universals f) in
  let n = List.length univs in
  let exists = Formula.existentials f in
  (* table sizes: 2^|D_y| bits per existential *)
  let table_bits = List.map (fun (_, d) -> 1 lsl Bitset.cardinal d) exists in
  let total_bits = List.fold_left ( + ) 0 table_bits in
  if total_bits > 22 || n > 16 then invalid_arg "Reference.by_skolem_enum: too large";
  let man = Formula.man f in
  let matrix = Formula.matrix f in
  let check tables =
    (* tables: per existential, an int of 2^|D_y| bits *)
    let ok = ref true in
    for bits = 0 to (1 lsl n) - 1 do
      if !ok then begin
        let sigma =
          let tbl = Hashtbl.create 8 in
          List.iteri (fun i x -> Hashtbl.replace tbl x (bits land (1 lsl i) <> 0)) univs;
          fun x -> Hashtbl.find tbl x
        in
        let env v =
          if Formula.is_universal f v then sigma v
          else begin
            match List.assoc_opt v exists with
            | Some deps ->
                let rec idx_of y = function
                  | [] -> raise Not_found
                  | (y', _) :: _ when y' = y -> 0
                  | _ :: rest -> 1 + idx_of y rest
                in
                let i = idx_of v exists in
                let table = List.nth tables i in
                table land (1 lsl project sigma deps) <> 0
            | None -> false
          end
        in
        if not (M.eval man matrix env) then ok := false
      end
    done;
    !ok
  in
  (* enumerate all table combinations *)
  let rec enum acc = function
    | [] -> check (List.rev acc)
    | bits :: rest ->
        let found = ref false in
        let t = ref 0 in
        while (not !found) && !t < 1 lsl bits do
          if enum (!t :: acc) rest then found := true;
          incr t
        done;
        !found
  in
  enum [] table_bits
