(** CNF-level preprocessing (Section III-C of the paper), applied before
    the AIG is built:

    - unit literal propagation (universal unit literals refute the formula);
    - generalized universal reduction: a universal literal is dropped from
      a clause when no existential literal of the clause depends on it;
    - equivalent-variable detection from binary clauses, adapted to DQBF:
      merging two existentials narrows the representative's dependency set
      to the intersection; an existential forced equal to a universal
      outside its dependency set — or two universals forced equal — make
      the formula unsatisfiable;
    - Tseitin gate detection for AND/OR/XOR gates with arbitrarily negated
      inputs; detected definitions are removed from the clause set and
      substituted structurally into the AIG (dependency-legal gates only).

    The first three run in alternation to a fixpoint, then gates are
    harvested and the {!Formula.t} is assembled. *)

type stats = {
  units : int;  (** unit literals propagated *)
  reduced_lits : int;  (** universal literals removed by reduction *)
  equivs : int;  (** variables merged away *)
  gates : int;  (** gate definitions substituted *)
  blocked : int;  (** clauses removed by blocked-clause elimination *)
}

type config = {
  unit_propagation : bool;
  universal_reduction : bool;
  equivalences : bool;
  gate_detection : bool;
  blocked_clauses : bool;
      (** DQBF blocked-clause elimination (Wimmer et al., SAT 2015) — the
          "more sophisticated preprocessing" the paper's conclusion points
          to. Off by default (not part of the DATE'15 pipeline); skipped
          automatically when a model trail is attached, because the rule
          does not preserve Skolem certificates. *)
}

val default_config : config
val off : config

type outcome =
  | Unsat  (** refuted during preprocessing *)
  | Formula of Formula.t * stats

val run :
  ?config:config -> ?node_limit:int -> ?trail:Model_trail.t -> Pcnf.t -> outcome
