(** Prefixed CNF: the DQDIMACS-level view of a DQBF, before any AIG is
    built. This is the form the circuit encoder emits and the CNF
    preprocessor (Section III-C of the paper) rewrites.

    Variables are 0-based; clause literals are signed 1-based DIMACS ints
    (literal [v+1] / [-(v+1)] for variable [v]). *)

type t = {
  num_vars : int;
  univs : int list;  (** universal variables, declaration order *)
  exists : (int * int list) list;  (** existential variable, dependency set *)
  clauses : int list list;
}

val parse_string : string -> t
(** DQDIMACS: [a]-lines, [e]-lines (depending on all universals declared so
    far), and [d]-lines ([d y x1 .. xk 0] with an explicit dependency set).
    Variables never declared are treated as existential with no
    dependencies. @raise Failure on malformed input. *)

val parse_file : string -> t
val to_string : t -> string

val to_formula : ?node_limit:int -> t -> Formula.t
(** Build the AIG matrix (conjunction of clause disjunctions) and prefix. *)

val validate : t -> (unit, string) result
(** Check variable ranges, duplicate declarations, dependencies that are
    not universal. *)
