open Hqs_util
module M = Aig.Man
module F = Dqbf.Formula

type verdict = Sat | Unsat
type mode = Elimination | Expand_all
type qbf_backend = Elim_backend | Search_backend

type config = {
  preprocess : Dqbf.Preprocess.config;
  mode : mode;
  use_unitpure : bool;
  use_thm2 : bool;
  use_maxsat : bool;
  use_fraig : bool;
  fraig_threshold : int;
  use_sat_probe : bool;
  node_limit : int option;
  qbf : Qbf.Solver.config;
  qbf_backend : qbf_backend;
}

let default_config =
  {
    preprocess = Dqbf.Preprocess.default_config;
    mode = Elimination;
    use_unitpure = true;
    use_thm2 = true;
    use_maxsat = true;
    use_fraig = true;
    fraig_threshold = 50000;
    use_sat_probe = false;
    node_limit = None;
    qbf = Qbf.Solver.default_config;
    qbf_backend = Elim_backend;
  }

type stats = {
  mutable pre_stats : Dqbf.Preprocess.stats option;
  mutable univ_elims : int;
  mutable exist_elims : int;
  mutable unitpure_elims : int;
  mutable maxsat_runs : int;
  mutable maxsat_set_size : int;
  mutable maxsat_time : float;
  mutable unitpure_time : float;
  mutable qbf_time : float;
  mutable peak_nodes : int;
  mutable total_time : float;
}

let fresh_stats () =
  {
    pre_stats = None;
    univ_elims = 0;
    exist_elims = 0;
    unitpure_elims = 0;
    maxsat_runs = 0;
    maxsat_set_size = 0;
    maxsat_time = 0.0;
    unitpure_time = 0.0;
    qbf_time = 0.0;
    peak_nodes = 0;
    total_time = 0.0;
  }

exception Done of verdict

let sat_probe ~budget f =
  (* if the matrix alone is unsatisfiable, no Skolem functions exist *)
  let solver = Sat.Solver.create () in
  let enc = Aig.Cnf_enc.create solver in
  let out = Aig.Cnf_enc.sat_lit (F.man f) enc (F.matrix f) in
  Sat.Solver.add_clause solver [ out ];
  match Sat.Solver.solve ~budget ~conflict_limit:20000 solver with
  | Sat.Solver.Unsat -> raise (Done Unsat)
  | Sat.Solver.Sat | Sat.Solver.Unknown -> ()

let solve_impl ~config ~budget ~trail f0 =
  let t_start = Budget.now () in
  let stats = fresh_stats () in
  let f = F.copy f0 in
  M.set_node_limit (F.man f) config.node_limit;
  let queue = ref [] in
  let last_size = ref (M.num_nodes (F.man f)) in
  let fraig_floor = ref 0 in
  let note_size () = stats.peak_nodes <- max stats.peak_nodes (M.num_nodes (F.man f)) in
  let compact_or_fraig () =
    note_size ();
    let cone = M.cone_size (F.man f) (F.matrix f) in
    if config.use_fraig && cone > config.fraig_threshold && cone > 2 * !fraig_floor then begin
      (* time-boxed sweep: on a local timeout keep the unreduced matrix *)
      let sweep_budget = Budget.of_seconds (min 2.0 (0.2 *. Budget.remaining budget)) in
      match Aig.Fraig.reduce ~budget:sweep_budget (F.man f) [ F.matrix f ] with
      | man, roots ->
          F.replace_man f man (List.hd roots);
          last_size := M.num_nodes man;
          fraig_floor := M.cone_size man (F.matrix f)
      | exception Budget.Timeout when not (Budget.expired budget) -> fraig_floor := cone
    end
    else if M.num_nodes (F.man f) > (2 * !last_size) + 1024 then begin
      let man, roots = M.compact (F.man f) [ F.matrix f ] in
      F.replace_man f man (List.hd roots);
      last_size := M.num_nodes man
    end
  in
  let refill_queue () =
    let t0 = Budget.now () in
    let set =
      match config.mode with
      | Expand_all -> Bitset.to_list (F.universals f)
      | Elimination ->
          if config.use_maxsat then Dqbf.Elimset.minimum_set ~budget f
          else Dqbf.Elimset.greedy_all f
    in
    stats.maxsat_time <- stats.maxsat_time +. (Budget.now () -. t0);
    stats.maxsat_runs <- stats.maxsat_runs + 1;
    if stats.maxsat_runs = 1 then stats.maxsat_set_size <- List.length set;
    queue := Dqbf.Elimset.ordered_queue f set
  in
  let verdict =
    try
      if config.use_sat_probe then sat_probe ~budget f;
      let continue_ = ref true in
      while !continue_ do
        Budget.check budget;
        note_size ();
        if M.is_true (F.matrix f) then raise (Done Sat);
        if M.is_false (F.matrix f) then raise (Done Unsat);
        Dqbf.Elim.prune_prefix ?trail f;
        (* unit / pure elimination (Theorems 5-6) *)
        let eliminated_up =
          if not config.use_unitpure then false
          else begin
            let t0 = Budget.now () in
            let r = Dqbf.Elim.unit_pure_round ?trail f in
            stats.unitpure_time <- stats.unitpure_time +. (Budget.now () -. t0);
            match r with
            | `Unsat -> raise (Done Unsat)
            | `Eliminated n ->
                stats.unitpure_elims <- stats.unitpure_elims + n;
                true
            | `None -> false
          end
        in
        if not eliminated_up then begin
          let must_linearize =
            match config.mode with
            | Elimination -> not (Dqbf.Depgraph.is_acyclic f)
            | Expand_all -> not (Bitset.is_empty (F.universals f))
          in
          if must_linearize then begin
            (* Theorem 2 on fully-dependent existentials, then one
               universal elimination (Theorem 1) *)
            if config.use_thm2 then begin
              let k = Dqbf.Elim.eliminate_full_existentials ?trail f in
              stats.exist_elims <- stats.exist_elims + k
            end;
            if not (M.is_const (F.matrix f)) then begin
              let rec next_univ () =
                match !queue with
                | x :: rest ->
                    queue := rest;
                    if F.is_universal f x then Some x else next_univ ()
                | [] -> None
              in
              let x =
                match next_univ () with
                | Some x -> Some x
                | None ->
                    refill_queue ();
                    next_univ ()
              in
              match x with
              | Some x ->
                  Dqbf.Elim.universal ?trail f x;
                  stats.univ_elims <- stats.univ_elims + 1;
                  compact_or_fraig ()
              | None ->
                  (* no universal left to eliminate; the dependency graph
                     must be acyclic now *)
                  assert (Dqbf.Depgraph.is_acyclic f)
            end
          end
          else begin
            (* linear prefix: hand over to the QBF back end *)
            match Dqbf.Depgraph.qbf_prefix f with
            | None -> assert false
            | Some prefix ->
                let t0 = Budget.now () in
                let answer =
                  match config.qbf_backend with
                  | Elim_backend ->
                      let on_define =
                        Option.map
                          (fun trail y man fn -> Dqbf.Model_trail.record_def trail man y fn)
                          trail
                      in
                      Qbf.Solver.solve ~config:config.qbf ~budget ?on_define (F.man f)
                        (F.matrix f) prefix
                  | Search_backend ->
                      let on_model =
                        Option.map
                          (fun trail mman defs ->
                            List.iter
                              (fun (y, fn) -> Dqbf.Model_trail.record_def trail mman y fn)
                              defs)
                          trail
                      in
                      Qbf.Qdpll.solve ~budget ?on_model (F.man f) (F.matrix f) prefix
                in
                stats.qbf_time <- stats.qbf_time +. (Budget.now () -. t0);
                raise (Done (if answer then Sat else Unsat))
          end
        end
      done;
      assert false
    with Done v -> v
  in
  (* remaining existentials (if any) are don't-cares on a SAT verdict *)
  (match (verdict, trail) with
  | Sat, Some trail ->
      List.iter (fun (y, _) -> Dqbf.Model_trail.record_const trail y false) (F.existentials f)
  | _ -> ());
  stats.total_time <- Budget.now () -. t_start;
  (verdict, stats)

let solve_formula ?(config = default_config) ?(budget = Budget.unlimited) f0 =
  solve_impl ~config ~budget ~trail:None f0

let solve_formula_model ?(config = default_config) ?(budget = Budget.unlimited) f0 =
  let trail = Dqbf.Model_trail.create () in
  let verdict, stats = solve_impl ~config ~budget ~trail:(Some trail) f0 in
  let model =
    match verdict with
    | Unsat -> None
    | Sat ->
        let skolem = Dqbf.Model_trail.reconstruct trail in
        Some (Dqbf.Skolem.restrict skolem ~keep:(Dqbf.Formula.is_existential f0))
  in
  (verdict, model, stats)

let solve_pcnf ?(config = default_config) ?budget pcnf =
  match Dqbf.Preprocess.run ~config:config.preprocess ?node_limit:config.node_limit pcnf with
  | Dqbf.Preprocess.Unsat ->
      let stats = fresh_stats () in
      (Unsat, stats)
  | Dqbf.Preprocess.Formula (f, pre) ->
      let verdict, stats = solve_formula ~config ?budget f in
      stats.pre_stats <- Some pre;
      (verdict, stats)

let solve_pcnf_model ?(config = default_config) ?(budget = Budget.unlimited) pcnf =
  let trail = Dqbf.Model_trail.create () in
  match
    Dqbf.Preprocess.run ~config:config.preprocess ?node_limit:config.node_limit ~trail pcnf
  with
  | Dqbf.Preprocess.Unsat -> (Unsat, None, fresh_stats ())
  | Dqbf.Preprocess.Formula (f, pre) ->
      let verdict, stats = solve_impl ~config ~budget ~trail:(Some trail) f in
      stats.pre_stats <- Some pre;
      let model =
        match verdict with
        | Unsat -> None
        | Sat ->
            let skolem = Dqbf.Model_trail.reconstruct trail in
            let declared = Hqs_util.Bitset.of_list (List.map fst pcnf.Dqbf.Pcnf.exists) in
            Some (Dqbf.Skolem.restrict skolem ~keep:(fun y -> Hqs_util.Bitset.mem y declared))
      in
      (verdict, model, stats)

let pp_stats fmt s =
  Format.fprintf fmt
    "univ-elims=%d exist-elims=%d unit/pure=%d maxsat-set=%d maxsat-time=%.3fs \
     unitpure-time=%.3fs qbf-time=%.3fs peak-nodes=%d total=%.3fs"
    s.univ_elims s.exist_elims s.unitpure_elims s.maxsat_set_size s.maxsat_time s.unitpure_time
    s.qbf_time s.peak_nodes s.total_time
