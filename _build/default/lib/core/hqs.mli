(** HQS — the paper's solver (Fig. 3): decide a DQBF by eliminating a
    minimum set of universal variables (chosen by partial MaxSAT over the
    dependency graph) until the prefix is linearly orderable, then hand the
    AIG to the QBF back end.

    The main loop interleaves, exactly as in the paper:
    - unit/pure detection on the AIG (Theorems 5-6),
    - elimination of existentials depending on all universals (Theorem 2),
    - elimination of the next queued universal variable (Theorem 1),
      cheapest first (fewest existential copies),
    - FRAIG compaction when the graph grows. *)

type verdict = Sat | Unsat

type mode =
  | Elimination  (** the paper's strategy: make the prefix QBF-expressible *)
  | Expand_all
      (** the ICCD'13 baseline ([10]): eliminate every universal variable
          and finish with a SAT call *)

type qbf_backend =
  | Elim_backend  (** AIG elimination, the AIGSOLVE role (default) *)
  | Search_backend  (** clause-level QDPLL search, the DepQBF role *)

type config = {
  preprocess : Dqbf.Preprocess.config;
  mode : mode;
  use_unitpure : bool;
  use_thm2 : bool;  (** eliminate existentials with full dependency sets *)
  use_maxsat : bool;  (** false: eliminate all difference variables (greedy) *)
  use_fraig : bool;
  fraig_threshold : int;
  use_sat_probe : bool;
      (** one up-front SAT call on the matrix: if the matrix alone is
          unsatisfiable, so is the DQBF (the improvement sketched in the
          paper's Section IV discussion of iDQ's cheap refutations) *)
  node_limit : int option;  (** memout emulation *)
  qbf : Qbf.Solver.config;
  qbf_backend : qbf_backend;
}

val default_config : config

type stats = {
  mutable pre_stats : Dqbf.Preprocess.stats option;
  mutable univ_elims : int;
  mutable exist_elims : int;
  mutable unitpure_elims : int;
  mutable maxsat_runs : int;
  mutable maxsat_set_size : int;  (** size of the first elimination set *)
  mutable maxsat_time : float;
  mutable unitpure_time : float;
  mutable qbf_time : float;
  mutable peak_nodes : int;
  mutable total_time : float;
}

val solve_formula :
  ?config:config -> ?budget:Hqs_util.Budget.t -> Dqbf.Formula.t -> verdict * stats
(** Decides the DQBF. The input formula is copied, not mutated.
    @raise Hqs_util.Budget.Timeout on deadline.
    @raise Hqs_util.Budget.Out_of_memory_budget when the node limit is hit. *)

val solve_pcnf :
  ?config:config -> ?budget:Hqs_util.Budget.t -> Dqbf.Pcnf.t -> verdict * stats
(** Full pipeline from a prefixed CNF, including CNF preprocessing. *)

val solve_formula_model :
  ?config:config ->
  ?budget:Hqs_util.Budget.t ->
  Dqbf.Formula.t ->
  verdict * Dqbf.Skolem.t option * stats
(** Like {!solve_formula}, additionally reconstructing Skolem functions
    (Definition 2) on a [Sat] verdict. The model covers exactly the
    formula's existential variables and can be checked independently with
    {!Dqbf.Skolem.verify}. *)

val solve_pcnf_model :
  ?config:config ->
  ?budget:Hqs_util.Budget.t ->
  Dqbf.Pcnf.t ->
  verdict * Dqbf.Skolem.t option * stats
(** Like {!solve_pcnf} with Skolem reconstruction; preprocessing steps
    (units, equivalences, gate substitutions) are folded into the model. *)

val pp_stats : Format.formatter -> stats -> unit
