(** Timed solver runs with the paper's abort criteria (Section IV): a
    wall-clock timeout and a memory cap, the latter emulated by an AIG node
    budget. *)

type outcome =
  | Solved of bool * float  (** verdict, seconds *)
  | Timeout of float  (** seconds burned before the deadline fired *)
  | Memout of float

type result = {
  id : string;
  family : string;
  sat_expected : bool option;  (** ground truth when known *)
  hqs : outcome;
  idq : outcome;
}

val is_solved : outcome -> bool
val time_of : outcome -> float

val run_hqs :
  ?config:Hqs.config -> timeout:float -> node_limit:int -> Dqbf.Pcnf.t -> outcome

val run_idq : timeout:float -> node_limit:int -> Dqbf.Pcnf.t -> outcome

val run_instance :
  ?hqs_config:Hqs.config ->
  timeout:float ->
  node_limit:int ->
  Circuit.Families.instance ->
  result
(** Run both solvers on a PEC instance. If both solve it, their verdicts
    are checked for agreement ([Failure] on mismatch — a soundness alarm,
    not a reportable outcome). *)
