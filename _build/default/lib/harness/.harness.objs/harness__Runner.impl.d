lib/harness/runner.ml: Budget Circuit Hqs Hqs_util Idq Printf
