lib/harness/runner.mli: Circuit Dqbf Hqs
