(** Formatting of the paper's evaluation artifacts from a list of per-
    instance results: Table I (per-family solved/unsolved breakdown with
    total time on commonly solved instances), Fig. 4 (the iDQ-vs-HQS
    runtime scatter, as a data series plus an ASCII log-log plot), and the
    headline claims of Section IV. *)

val table1 : Runner.result list -> string
val fig4 : ?timeout:float -> Runner.result list -> string
val headline : Runner.result list -> string
val csv : Runner.result list -> string
(** One line per instance: id, family, solver outcomes and times. *)
