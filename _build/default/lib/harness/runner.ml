open Hqs_util

type outcome = Solved of bool * float | Timeout of float | Memout of float

type result = {
  id : string;
  family : string;
  sat_expected : bool option;
  hqs : outcome;
  idq : outcome;
}

let is_solved = function Solved _ -> true | Timeout _ | Memout _ -> false
let time_of = function Solved (_, t) | Timeout t | Memout t -> t

let timed ~timeout f =
  let t0 = Budget.now () in
  let budget = Budget.of_seconds timeout in
  match f budget with
  | verdict -> Solved (verdict, Budget.now () -. t0)
  | exception Budget.Timeout -> Timeout (Budget.now () -. t0)
  | exception Budget.Out_of_memory_budget -> Memout (Budget.now () -. t0)

let run_hqs ?(config = Hqs.default_config) ~timeout ~node_limit pcnf =
  let config = { config with Hqs.node_limit = Some node_limit } in
  timed ~timeout (fun budget ->
      let v, _ = Hqs.solve_pcnf ~config ~budget pcnf in
      v = Hqs.Sat)

let run_idq ~timeout ~node_limit pcnf =
  timed ~timeout (fun budget -> fst (Idq.solve_pcnf ~budget ~node_limit pcnf))

let run_instance ?hqs_config ~timeout ~node_limit (inst : Circuit.Families.instance) =
  let hqs = run_hqs ?config:hqs_config ~timeout ~node_limit inst.Circuit.Families.pcnf in
  let idq = run_idq ~timeout ~node_limit inst.Circuit.Families.pcnf in
  (match (hqs, idq) with
  | Solved (a, _), Solved (b, _) when a <> b ->
      failwith
        (Printf.sprintf "solver disagreement on %s: hqs=%b idq=%b" inst.Circuit.Families.id a b)
  | _ -> ());
  {
    id = inst.Circuit.Families.id;
    family = inst.Circuit.Families.family;
    sat_expected = None;
    hqs;
    idq;
  }
