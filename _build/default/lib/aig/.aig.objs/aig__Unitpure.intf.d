lib/aig/unitpure.mli: Man
