lib/aig/man.ml: Array Bitset Budget Hashtbl Hqs_util List Stack Vec
