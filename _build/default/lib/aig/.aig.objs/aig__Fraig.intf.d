lib/aig/fraig.mli: Hqs_util Man
