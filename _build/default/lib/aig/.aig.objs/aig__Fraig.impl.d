lib/aig/fraig.ml: Array Budget Cnf_enc Hashtbl Hqs_util Int64 List Man Rng Sat Sys Vec
