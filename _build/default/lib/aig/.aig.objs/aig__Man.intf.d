lib/aig/man.mli: Hqs_util
