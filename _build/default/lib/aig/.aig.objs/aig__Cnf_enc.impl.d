lib/aig/cnf_enc.ml: Hashtbl Man Sat
