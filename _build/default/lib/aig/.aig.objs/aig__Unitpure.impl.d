lib/aig/unitpure.ml: Hashtbl Man Stack
