lib/aig/cnf_enc.mli: Man Sat
