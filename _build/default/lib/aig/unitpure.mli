(** Syntactic unit and pure variable detection on AIGs (Theorem 6 of the
    paper).

    A variable is *positive unit* if some path from its input node to the
    output carries no negation at all; *negative unit* if some path carries
    exactly one negation, placed directly on the edge leaving the input.
    It is *positive (negative) pure* if every input-to-output path has an
    even (odd) number of negations.

    These are sufficient syntactic criteria for the semantic notions of
    Definition 5; the scan is a single DFS with at most three visits per
    node — O(|formula| + |vars|) — and deliberately incomplete (Example 4
    of the paper shows a pure variable it misses). *)

type status = {
  pos_unit : bool;
  neg_unit : bool;
  pos_pure : bool;
  neg_pure : bool;
}

val no_status : status

val scan : Man.t -> Man.lit -> (int * status) list
(** Classify every variable in the support of the root. Variables outside
    the support are not reported. A constant root reports nothing. *)
