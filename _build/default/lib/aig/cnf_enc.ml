module S = Sat.Solver
module L = Sat.Lit

type t = { solver : S.t; map : (int, int) Hashtbl.t (* AIG node -> SAT var *) }

let create solver = { solver; map = Hashtbl.create 256 }

let sat_lit man enc root =
  let node_var n = Hashtbl.find enc.map n in
  let edge_lit e = L.apply_sign (L.of_var (node_var (Man.node_of e))) ~neg:(Man.is_compl e) in
  Man.iter_cone man [ root ] (fun n ->
      if not (Hashtbl.mem enc.map n) then begin
        let v = S.new_var enc.solver in
        Hashtbl.add enc.map n v;
        if n = 0 then (* constant-false node *)
          S.add_clause enc.solver [ L.mk v ~neg:true ]
        else if Man.is_and man (n * 2) then begin
          let e0, e1 = Man.fanins man (n * 2) in
          let x = L.of_var v and l0 = edge_lit e0 and l1 = edge_lit e1 in
          S.add_clause enc.solver [ L.neg x; l0 ];
          S.add_clause enc.solver [ L.neg x; l1 ];
          S.add_clause enc.solver [ x; L.neg l0; L.neg l1 ]
        end
        (* inputs: just the fresh variable *)
      end);
  edge_lit root

let sat_var_of_aig_var man enc v = sat_lit man enc (Man.input man v)
