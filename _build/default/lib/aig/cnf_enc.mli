(** Incremental Tseitin encoding of AIG cones into a SAT solver.

    Used for FRAIG equivalence checks, the QBF back end's final SAT calls,
    and semantic unit/pure checks in tests. Nodes are encoded on demand and
    shared across calls, so repeated queries over the same manager reuse
    clauses. *)

type t

val create : Sat.Solver.t -> t

val sat_lit : Man.t -> t -> Man.lit -> Sat.Lit.t
(** Encode the cone of the given AIG literal (if not already present) and
    return the corresponding SAT literal. *)

val sat_var_of_aig_var : Man.t -> t -> int -> Sat.Lit.t
(** SAT literal for an AIG input variable (creating the input if needed). *)
