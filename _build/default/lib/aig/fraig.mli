(** FRAIG-style functional reduction of AIG cones (Mishchenko et al.), the
    "conversion to FRAIGs from time to time" of Section II-C.

    Nodes are grouped into candidate equivalence classes by bit-parallel
    random simulation; candidate pairs are then proved or refuted with the
    CDCL solver. Proven-equivalent nodes are merged (up to complement), and
    counterexamples returned by the solver refine the simulation patterns.
    The result is a fresh manager containing only the reduced cones, with
    input variable ids preserved.

    The reduction is semantics-preserving by construction: merges happen
    only on UNSAT (proof) answers; timeouts and conflict-limit hits merely
    lose reduction opportunities. *)

val reduce :
  ?seed:int ->
  ?base_words:int ->
  ?conflict_limit:int ->
  ?max_candidates:int ->
  ?max_sat_checks:int ->
  ?budget:Hqs_util.Budget.t ->
  Man.t ->
  Man.lit list ->
  Man.t * Man.lit list
(** [reduce man roots] returns a functionally reduced copy of the cones.
    @raise Hqs_util.Budget.Timeout if the budget expires.
    @raise Hqs_util.Budget.Out_of_memory_budget if the node limit is hit. *)
