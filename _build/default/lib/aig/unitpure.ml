type status = { pos_unit : bool; neg_unit : bool; pos_pure : bool; neg_pure : bool }

let no_status = { pos_unit = false; neg_unit = false; pos_pure = false; neg_pure = false }

(* Per-variable marks collected during the walk. *)
type marks = {
  mutable seen_even : bool; (* reached along a path with an even number of negations *)
  mutable seen_odd : bool;
  mutable unit_pos : bool; (* reached along a completely negation-free path *)
  mutable unit_neg : bool; (* negation-free path ending in a complemented edge *)
}

(* Node states: (parity of negations so far, negation-free so far).
   Negation-free implies even parity, so only three states are reachable;
   we encode them as 0 = (even, negfree), 1 = (even, not negfree),
   2 = (odd, not negfree) and keep a 3-bit visited mask per node. *)
let state ~parity ~negfree = if negfree then 0 else if parity = 0 then 1 else 2

let scan man root =
  let var_marks : (int, marks) Hashtbl.t = Hashtbl.create 64 in
  let mark v =
    match Hashtbl.find_opt var_marks v with
    | Some m -> m
    | None ->
        let m = { seen_even = false; seen_odd = false; unit_pos = false; unit_neg = false } in
        Hashtbl.add var_marks v m;
        m
  in
  let visited : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let stack = Stack.create () in
  (* visit an edge from a context with the given parity/negfree state *)
  let push_edge edge ~parity ~negfree =
    let c = Man.is_compl edge in
    let n = Man.node_of edge in
    let parity' = parity lxor if c then 1 else 0 in
    let negfree' = negfree && not c in
    if Man.is_input man (n * 2) then begin
      let v = Man.var_of_input man (n * 2) in
      let m = mark v in
      if parity' = 0 then m.seen_even <- true else m.seen_odd <- true;
      if negfree' then m.unit_pos <- true;
      if negfree && c then m.unit_neg <- true
    end
    else if Man.is_and man (n * 2) then begin
      let s = state ~parity:parity' ~negfree:negfree' in
      let mask = try Hashtbl.find visited n with Not_found -> 0 in
      if mask land (1 lsl s) = 0 then begin
        Hashtbl.replace visited n (mask lor (1 lsl s));
        Stack.push (n, parity', negfree') stack
      end
    end
    (* constant node: nothing to record *)
  in
  push_edge root ~parity:0 ~negfree:true;
  while not (Stack.is_empty stack) do
    let n, parity, negfree = Stack.pop stack in
    let e0, e1 = Man.fanins man (n * 2) in
    push_edge e0 ~parity ~negfree;
    push_edge e1 ~parity ~negfree
  done;
  Hashtbl.fold
    (fun v m acc ->
      let st =
        {
          pos_unit = m.unit_pos;
          neg_unit = m.unit_neg;
          pos_pure = m.seen_even && not m.seen_odd;
          neg_pure = m.seen_odd && not m.seen_even;
        }
      in
      (v, st) :: acc)
    var_marks []
