(** Unweighted partial MaxSAT by linear search on the violation count.

    This reproduces the role of antom in the paper (Section III-A): it finds
    an assignment satisfying all hard clauses while violating as few soft
    clauses as possible. Each soft clause gets a fresh relaxation literal; a
    totalizer over the relaxation literals is tightened until UNSAT. *)

type answer = {
  cost : int;  (** number of violated soft clauses in the optimum *)
  model : bool array;  (** indexed by variable id, [0 .. num_vars-1] *)
}

val solve :
  ?budget:Hqs_util.Budget.t ->
  num_vars:int ->
  hard:Sat.Lit.t list list ->
  soft:Sat.Lit.t list list ->
  unit ->
  answer option
(** [None] when the hard clauses alone are unsatisfiable.
    @raise Hqs_util.Budget.Timeout if the budget expires. *)
