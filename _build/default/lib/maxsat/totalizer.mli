(** Totalizer cardinality encoding (Bailleux-Boufkhad).

    [build solver inputs] allocates fresh variables and clauses in [solver]
    and returns an array [o] of output literals, where [o.(i)] is forced true
    whenever at least [i+1] of [inputs] are true. Asserting [not o.(k)]
    therefore enforces "at most [k] of [inputs]". *)

val build : Sat.Solver.t -> Sat.Lit.t array -> Sat.Lit.t array
