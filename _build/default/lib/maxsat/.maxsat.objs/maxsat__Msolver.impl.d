lib/maxsat/msolver.ml: Array Budget Hqs_util List Sat Totalizer
