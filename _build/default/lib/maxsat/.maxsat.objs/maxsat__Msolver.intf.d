lib/maxsat/msolver.mli: Hqs_util Sat
