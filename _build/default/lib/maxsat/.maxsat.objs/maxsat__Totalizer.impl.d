lib/maxsat/totalizer.ml: Array Sat
