module S = Sat.Solver
module L = Sat.Lit

(* Merge two children count vectors [a] and [b] into a fresh output vector:
   for all i, j with i + j >= 1: (a_i and b_j) -> r_{i+j}, where a_0 = b_0 =
   true. Only this direction is needed to enforce upper bounds. *)
let merge solver a b =
  let p = Array.length a and q = Array.length b in
  let r = Array.init (p + q) (fun _ -> L.of_var (S.new_var solver)) in
  for i = 0 to p do
    for j = 0 to q do
      if i + j >= 1 then begin
        let clause = ref [ r.(i + j - 1) ] in
        if i >= 1 then clause := L.neg a.(i - 1) :: !clause;
        if j >= 1 then clause := L.neg b.(j - 1) :: !clause;
        S.add_clause solver !clause
      end
    done
  done;
  (* ordering: r_{m+1} -> r_m, keeps models canonical *)
  for m = 0 to p + q - 2 do
    S.add_clause solver [ L.neg r.(m + 1); r.(m) ]
  done;
  r

let rec build solver inputs =
  match Array.length inputs with
  | 0 -> [||]
  | 1 -> inputs
  | n ->
      let mid = n / 2 in
      let left = build solver (Array.sub inputs 0 mid) in
      let right = build solver (Array.sub inputs mid (n - mid)) in
      merge solver left right
