lib/circuit/families.mli: Dqbf Netlist
