lib/circuit/families.ml: Dqbf List Netlist Option Pec Printf
