lib/circuit/pec.ml: Array Dqbf Hashtbl List Netlist
