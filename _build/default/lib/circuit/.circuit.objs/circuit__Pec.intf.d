lib/circuit/pec.mli: Dqbf Netlist
