lib/circuit/netlist.ml: Array Fun Lazy List
