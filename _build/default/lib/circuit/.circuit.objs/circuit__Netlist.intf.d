lib/circuit/netlist.mli:
