(** The seven PEC benchmark families of the paper's evaluation (Section IV),
    rebuilt as parameterized generators:

    - [adder]: ripple-carry adders with full-adder cells boxed;
    - [bitcell]: the iterative (token-passing) arbiter of Dally-Harting,
      with arbiter cells boxed;
    - [lookahead]: the lookahead arbiter (per-position prefix-OR trees),
      with grant cells boxed;
    - [pec_xor]: the XOR chains of Finkbeiner-Tentrup;
    - [z4]: a 2-bit multiply-add block, z4ml-like (ISCAS 85);
    - [comp]: an iterative magnitude comparator (ISCAS-85-comp-like);
    - [c432]: a priority interrupt controller in the shape of ISCAS 85
      C432 (grouped request lines, priority selection, line gating).

    Each generator returns the complete specification, the implementation
    with [boxes] black boxes, and the DQBF encoding. With [fault:true] a
    gate outside the boxes is altered so the design becomes unrealizable
    (the paper's UNSAT-heavy mix); with [fault:false] the boxes can be
    filled to match the spec, so the instance is satisfiable. *)

type instance = {
  id : string;
  family : string;
  spec : Netlist.t;
  impl : Netlist.t;
  pcnf : Dqbf.Pcnf.t;
  golden : int -> bool list -> bool list;
      (** the intended implementation of each black box (meaningful for
          fault-free instances; used by tests). *)
}

val adder : bits:int -> boxes:int -> fault:bool -> instance
val bitcell : cells:int -> boxes:int -> fault:bool -> instance
val lookahead : cells:int -> boxes:int -> fault:bool -> instance
val pec_xor : length:int -> boxes:int -> fault:bool -> instance
val z4 : add_bits:int -> boxes:int -> fault:bool -> instance
val comp : bits:int -> boxes:int -> fault:bool -> instance
val c432 : groups:int -> lines:int -> boxes:int -> fault:bool -> instance

val all_families : string list
