module N = Netlist

let encode ~spec ~impl =
  if not (N.is_complete spec) then invalid_arg "Pec.encode: spec must be complete";
  if spec.N.num_inputs <> impl.N.num_inputs then invalid_arg "Pec.encode: input arity mismatch";
  if List.length spec.N.outputs <> List.length impl.N.outputs then
    invalid_arg "Pec.encode: output arity mismatch";
  let next = ref 0 in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  (* primary inputs *)
  let x = Array.init spec.N.num_inputs (fun _ -> fresh ()) in
  (* black-box input copies z and outputs y *)
  let z_of = Hashtbl.create 16 in
  Array.iteri
    (fun i box ->
      List.iteri (fun j _ -> Hashtbl.replace z_of (i, j) (fresh ())) box.N.bb_inputs)
    impl.N.boxes;
  let y_of = Hashtbl.create 16 in
  Array.iteri
    (fun i box ->
      List.iteri (fun k _ -> Hashtbl.replace y_of (i, k) (fresh ())) box.N.bb_outputs)
    impl.N.boxes;
  let z_vars =
    Array.to_list impl.N.boxes
    |> List.mapi (fun i box -> List.mapi (fun j _ -> Hashtbl.find z_of (i, j)) box.N.bb_inputs)
  in
  let univs = Array.to_list x @ List.concat z_vars in
  (* existential declarations: box outputs depend on their own z only *)
  let y_decls =
    Array.to_list impl.N.boxes
    |> List.mapi (fun i box ->
           let deps = List.mapi (fun j _ -> Hashtbl.find z_of (i, j)) box.N.bb_inputs in
           List.mapi (fun k _ -> (Hashtbl.find y_of (i, k), deps)) box.N.bb_outputs)
    |> List.concat
  in
  (* Tseitin machinery over DIMACS literals *)
  let clauses = ref [] in
  let aux_vars = ref [] in
  let emit c = clauses := c :: !clauses in
  let fresh_aux () =
    let v = fresh () in
    aux_vars := v :: !aux_vars;
    v
  in
  let pos v = v + 1 in
  let and2 a b =
    let g = pos (fresh_aux ()) in
    emit [ -g; a ];
    emit [ -g; b ];
    emit [ g; -a; -b ];
    g
  in
  let or2 a b = -and2 (-a) (-b) in
  let xor2 a b =
    let g = pos (fresh_aux ()) in
    emit [ -g; a; b ];
    emit [ -g; -a; -b ];
    emit [ g; -a; b ];
    emit [ g; a; -b ];
    g
  in
  let xnor2 a b = -xor2 a b in
  let chain op = function
    | [] -> invalid_arg "Pec: empty gate"
    | l :: rest -> List.fold_left op l rest
  in
  let and_list = function [] -> None | l -> Some (chain and2 l) in
  let gate_lit kind args =
    match (kind, args) with
    | N.And, _ -> chain and2 args
    | N.Or, _ -> chain or2 args
    | N.Nand, _ -> -chain and2 args
    | N.Nor, _ -> -chain or2 args
    | N.Xor, _ -> chain xor2 args
    | N.Xnor, _ -> -chain xor2 args
    | N.Not, [ a ] -> -a
    | N.Buf, [ a ] -> a
    | (N.Not | N.Buf), _ -> invalid_arg "Pec: bad arity"
  in
  let signal_lits (net : N.t) ~bb_out =
    let lits = Array.make (Array.length net.N.nodes) 0 in
    Array.iteri
      (fun s node ->
        lits.(s) <-
          (match node with
          | N.Input i -> pos x.(i)
          | N.Gate (kind, args) -> gate_lit kind (List.map (fun a -> lits.(a)) args)
          | N.Bb_out { bb; port } -> bb_out bb port))
      net.N.nodes;
    lits
  in
  let impl_lits = signal_lits impl ~bb_out:(fun i k -> pos (Hashtbl.find y_of (i, k))) in
  let spec_lits = signal_lits spec ~bb_out:(fun _ _ -> assert false) in
  (* premise: every z equals the signal driving the corresponding box input *)
  let premise_terms =
    Array.to_list impl.N.boxes
    |> List.mapi (fun i box ->
           List.mapi
             (fun j sig_ -> xnor2 (pos (Hashtbl.find z_of (i, j))) impl_lits.(sig_))
             box.N.bb_inputs)
    |> List.concat
  in
  let conclusion_terms =
    List.map2 (fun a b -> xnor2 impl_lits.(a) spec_lits.(b)) impl.N.outputs spec.N.outputs
  in
  let conclusion =
    match and_list conclusion_terms with Some c -> c | None -> invalid_arg "Pec: no outputs"
  in
  let matrix =
    match and_list premise_terms with
    | None -> conclusion (* no boxes: plain equivalence *)
    | Some premise -> or2 (-premise) conclusion
  in
  emit [ matrix ];
  let all_univ_deps = univs in
  let exists =
    y_decls @ List.map (fun v -> (v, all_univ_deps)) (List.rev !aux_vars)
  in
  {
    Dqbf.Pcnf.num_vars = !next;
    univs;
    exists;
    clauses = List.rev !clauses;
  }
