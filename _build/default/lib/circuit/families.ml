module N = Netlist
module B = Netlist.Builder

type instance = {
  id : string;
  family : string;
  spec : N.t;
  impl : N.t;
  pcnf : Dqbf.Pcnf.t;
  golden : int -> bool list -> bool list;
}

let all_families = [ "adder"; "bitcell"; "lookahead"; "pec_xor"; "z4"; "comp"; "c432" ]

(* spread [boxes] positions evenly over [0, cells); when a fault is to be
   injected, keep at least one cell un-boxed so the fault cannot be
   compensated by simply not existing *)
let box_positions ?(fault = false) ~cells ~boxes () =
  let cap = if fault then max 0 (cells - 1) else cells in
  let boxes = min boxes cap in
  List.init boxes (fun k -> k * cells / boxes)

let first_free ~cells ~boxed =
  let rec go i =
    if i >= cells then invalid_arg "Families.first_free: every cell is boxed"
    else if List.mem i boxed then go (i + 1)
    else i
  in
  go 0

let mk_instance ~family ~id ~spec ~impl ~golden =
  { id; family; spec; impl; pcnf = Pec.encode ~spec ~impl; golden }

let id_of family params boxes fault =
  Printf.sprintf "%s_%s_k%d_%s" family params boxes (if fault then "f" else "ok")

(* ----------------------------------------------------------------- adder *)

(* full-adder cell; the injected fault replaces the outer XOR of the sum
   with an OR, so the faulty cell differs on exactly one input pattern *)
let fa_cell b ~faulty a bi c =
  let axb = B.xor2 b a bi in
  let s = if faulty then B.or2 b axb c else B.xor2 b axb c in
  let cout = B.or2 b (B.and2 b a bi) (B.and2 b c axb) in
  (s, cout)

let adder_netlist ~bits ~boxed ~fault_at name =
  let b = B.create name in
  let a = B.inputs b bits and bv = B.inputs b bits in
  let cin = B.input b in
  let carry = ref cin in
  let sums = ref [] in
  for i = 0 to bits - 1 do
    if List.mem i boxed then begin
      match B.black_box b ~inputs:[ List.nth a i; List.nth bv i; !carry ] ~num_outputs:2 with
      | [ s; cout ] ->
          sums := s :: !sums;
          carry := cout
      | _ -> assert false
    end
    else begin
      let s, cout = fa_cell b ~faulty:(fault_at = Some i) (List.nth a i) (List.nth bv i) !carry in
      sums := s :: !sums;
      carry := cout
    end
  done;
  B.build b ~outputs:(List.rev !sums @ [ !carry ])

let adder ~bits ~boxes ~fault =
  let boxed = box_positions ~fault ~cells:bits ~boxes () in
  let fault_at = if fault then Some (first_free ~cells:bits ~boxed) else None in
  let spec = adder_netlist ~bits ~boxed:[] ~fault_at:None "adder_spec" in
  let impl = adder_netlist ~bits ~boxed ~fault_at "adder_impl" in
  let golden _ = function
    | [ a; bi; c ] ->
        let s = a <> bi <> c in
        let cout = (a && bi) || (c && (a <> bi)) in
        [ s; cout ]
    | _ -> invalid_arg "adder golden"
  in
  mk_instance ~family:"adder" ~id:(id_of "adder" (Printf.sprintf "b%d" bits) boxes fault) ~spec
    ~impl ~golden

(* --------------------------------------------------------------- bitcell *)

(* token-passing arbiter: cell i grants iff it requests and the token
   reached it; the token dies at the first requester *)
let bitcell_netlist ~cells ~boxed ~fault_at name =
  let b = B.create name in
  let req = B.inputs b cells in
  let grants = ref [] in
  let carry = ref None in
  for i = 0 to cells - 1 do
    let r = List.nth req i in
    if List.mem i boxed then begin
      let ins = match !carry with None -> [ r ] | Some c -> [ r; c ] in
      match B.black_box b ~inputs:ins ~num_outputs:2 with
      | [ g; c' ] ->
          grants := g :: !grants;
          carry := Some c'
      | _ -> assert false
    end
    else begin
      let faulty = fault_at = Some i in
      let g, c' =
        match !carry with
        | None ->
            (* first cell: token present *)
            let g = if faulty then B.not_ b r else r in
            (g, B.not_ b r)
        | Some c ->
            let g = if faulty then B.or2 b r c else B.and2 b r c in
            (g, B.and2 b c (B.not_ b r))
      in
      grants := g :: !grants;
      carry := Some c'
    end
  done;
  B.build b ~outputs:(List.rev !grants @ [ Option.get !carry ])

let bitcell ~cells ~boxes ~fault =
  let boxed = box_positions ~fault ~cells ~boxes () in
  let fault_at = if fault then Some (first_free ~cells ~boxed) else None in
  let spec = bitcell_netlist ~cells ~boxed:[] ~fault_at:None "bitcell_spec" in
  let impl = bitcell_netlist ~cells ~boxed ~fault_at "bitcell_impl" in
  let golden i ins =
    match ins with
    | [ r ] -> [ r; not r ] (* only box 0 can have one input *)
    | [ r; c ] -> [ r && c; c && not r ]
    | _ -> invalid_arg (Printf.sprintf "bitcell golden: box %d" i)
  in
  mk_instance ~family:"bitcell"
    ~id:(id_of "bitcell" (Printf.sprintf "n%d" cells) boxes fault)
    ~spec ~impl ~golden

(* ------------------------------------------------------------- lookahead *)

(* lookahead arbiter: every position gets its own prefix-OR tree of all
   earlier requests; grant_i = req_i and none-before *)
let rec or_tree b = function
  | [] -> None
  | [ s ] -> Some s
  | l ->
      let rec split i acc = function
        | [] -> (List.rev acc, [])
        | x :: rest when i > 0 -> split (i - 1) (x :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let left, right = split (List.length l / 2) [] l in
      (match (or_tree b left, or_tree b right) with
      | Some x, Some y -> Some (B.or2 b x y)
      | Some x, None | None, Some x -> Some x
      | None, None -> None)

let lookahead_netlist ~cells ~boxed ~fault_at name =
  let b = B.create name in
  let req = B.inputs b cells in
  let grants =
    List.init cells (fun i ->
        let r = List.nth req i in
        let before = List.filteri (fun j _ -> j < i) req in
        match or_tree b before with
        | None ->
            if List.mem i boxed then List.hd (B.black_box b ~inputs:[ r ] ~num_outputs:1)
            else if fault_at = Some i then B.not_ b r
            else r
        | Some p ->
            if List.mem i boxed then
              List.hd (B.black_box b ~inputs:[ r; p ] ~num_outputs:1)
            else begin
              let faulty = fault_at = Some i in
              if faulty then B.and2 b r p else B.and2 b r (B.not_ b p)
            end)
  in
  B.build b ~outputs:grants

let lookahead ~cells ~boxes ~fault =
  let boxed = box_positions ~fault ~cells ~boxes () in
  let fault_at = if fault then Some (first_free ~cells ~boxed) else None in
  let spec = lookahead_netlist ~cells ~boxed:[] ~fault_at:None "lookahead_spec" in
  let impl = lookahead_netlist ~cells ~boxed ~fault_at "lookahead_impl" in
  let golden _ ins =
    match ins with
    | [ r ] -> [ r ]
    | [ r; p ] -> [ r && not p ]
    | _ -> invalid_arg "lookahead golden"
  in
  mk_instance ~family:"lookahead"
    ~id:(id_of "lookahead" (Printf.sprintf "n%d" cells) boxes fault)
    ~spec ~impl ~golden

(* --------------------------------------------------------------- pec_xor *)

let pec_xor_netlist ~length ~boxed ~fault_at name =
  let b = B.create name in
  let x = B.inputs b length in
  let t = ref (List.hd x) in
  for i = 1 to length - 1 do
    let xi = List.nth x i in
    if List.mem i boxed then t := List.hd (B.black_box b ~inputs:[ !t; xi ] ~num_outputs:1)
    else if fault_at = Some i then t := B.and2 b !t xi
    else t := B.xor2 b !t xi
  done;
  B.build b ~outputs:[ !t ]

let pec_xor ~length ~boxes ~fault =
  let cells = max 1 (length - 1) in
  let boxed = List.map (fun p -> p + 1) (box_positions ~fault ~cells ~boxes ()) in
  let fault_at =
    if fault then begin
      let rec free i = if i >= length then 1 else if List.mem i boxed then free (i + 1) else i in
      Some (free 1)
    end
    else None
  in
  let spec = pec_xor_netlist ~length ~boxed:[] ~fault_at:None "pec_xor_spec" in
  let impl = pec_xor_netlist ~length ~boxed ~fault_at "pec_xor_impl" in
  let golden _ = function
    | [ t; x ] -> [ t <> x ]
    | _ -> invalid_arg "pec_xor golden"
  in
  mk_instance ~family:"pec_xor"
    ~id:(id_of "pec_xor" (Printf.sprintf "n%d" length) boxes fault)
    ~spec ~impl ~golden

(* -------------------------------------------------------------------- z4 *)

(* z4ml-like: 2x2-bit multiply followed by an [add_bits]-bit addend,
   product + c, ripple-carry; boxes replace adder cells *)
let z4_netlist ~add_bits ~boxed ~fault_at name =
  let b = B.create name in
  let a = B.inputs b 2 and bv = B.inputs b 2 in
  let c = B.inputs b add_bits in
  let pp i j = B.and2 b (List.nth a i) (List.nth bv j) in
  let m0 = pp 0 0 in
  let p01 = pp 0 1 and p10 = pp 1 0 and p11 = pp 1 1 in
  let m1 = if fault_at = Some (-1) then B.or2 b p01 p10 else B.xor2 b p01 p10 in
  let c1 = B.and2 b p01 p10 in
  let m2 = B.xor2 b p11 c1 in
  let m3 = B.and2 b p11 c1 in
  let prod = [ m0; m1; m2; m3 ] in
  (* prod + c over max(4, add_bits) positions *)
  let width = max 4 add_bits in
  let zero = ref None in
  let get_zero () =
    match !zero with
    | Some z -> z
    | None ->
        let z = B.and2 b m0 (B.not_ b m0) in
        zero := Some z;
        z
  in
  let bit_of lst i = if i < List.length lst then Some (List.nth lst i) else None in
  let carry = ref None in
  let sums = ref [] in
  for i = 0 to width - 1 do
    let ai = bit_of prod i and bi = if i < add_bits then bit_of c i else None in
    let ai = match ai with Some s -> s | None -> get_zero () in
    let bi = match bi with Some s -> s | None -> get_zero () in
    let cin = match !carry with Some s -> s | None -> get_zero () in
    if List.mem i boxed then begin
      match B.black_box b ~inputs:[ ai; bi; cin ] ~num_outputs:2 with
      | [ s; cout ] ->
          sums := s :: !sums;
          carry := Some cout
      | _ -> assert false
    end
    else begin
      let s, cout = fa_cell b ~faulty:(fault_at = Some i) ai bi cin in
      sums := s :: !sums;
      carry := Some cout
    end
  done;
  B.build b ~outputs:(List.rev !sums @ [ Option.get !carry ])

let z4 ~add_bits ~boxes ~fault =
  let width = max 4 add_bits in
  let boxed = box_positions ~cells:width ~boxes () in
  (* fault in the multiplier (-1) to keep it outside every box *)
  let fault_at = if fault then Some (-1) else None in
  let spec = z4_netlist ~add_bits ~boxed:[] ~fault_at:None "z4_spec" in
  let impl = z4_netlist ~add_bits ~boxed ~fault_at "z4_impl" in
  let golden _ = function
    | [ a; bi; c ] -> [ a <> bi <> c; (a && bi) || (c && (a <> bi)) ]
    | _ -> invalid_arg "z4 golden"
  in
  mk_instance ~family:"z4" ~id:(id_of "z4" (Printf.sprintf "c%d" add_bits) boxes fault) ~spec
    ~impl ~golden

(* ------------------------------------------------------------------ comp *)

(* iterative magnitude comparator, MSB first; cell carries (eq, gt) *)
let comp_netlist ~bits ~boxed ~fault_at name =
  let b = B.create name in
  let a = B.inputs b bits and bv = B.inputs b bits in
  let state = ref None in
  for k = 0 to bits - 1 do
    let i = bits - 1 - k in
    (* cell index k processes bit i (MSB first) *)
    let ai = List.nth a i and bi = List.nth bv i in
    if List.mem k boxed then begin
      let ins = match !state with None -> [ ai; bi ] | Some (eq, gt) -> [ ai; bi; eq; gt ] in
      match B.black_box b ~inputs:ins ~num_outputs:2 with
      | [ eq'; gt' ] -> state := Some (eq', gt')
      | _ -> assert false
    end
    else begin
      let faulty = fault_at = Some k in
      let bit_eq = B.xnor2 b ai bi in
      let bit_gt = if faulty then B.and2 b ai bi else B.and2 b ai (B.not_ b bi) in
      let eq', gt' =
        match !state with
        | None -> (bit_eq, bit_gt)
        | Some (eq, gt) -> (B.and2 b eq bit_eq, B.or2 b gt (B.and2 b eq bit_gt))
      in
      state := Some (eq', gt')
    end
  done;
  let eq, gt = Option.get !state in
  let lt = B.gate b N.Nor [ eq; gt ] in
  B.build b ~outputs:[ gt; eq; lt ]

let comp ~bits ~boxes ~fault =
  let boxed = box_positions ~fault ~cells:bits ~boxes () in
  let fault_at = if fault then Some (first_free ~cells:bits ~boxed) else None in
  let spec = comp_netlist ~bits ~boxed:[] ~fault_at:None "comp_spec" in
  let impl = comp_netlist ~bits ~boxed ~fault_at "comp_impl" in
  let golden _ = function
    | [ a; bi ] -> [ a = bi; a && not bi ]
    | [ a; bi; eq; gt ] -> [ eq && a = bi; gt || (eq && a && not bi) ]
    | _ -> invalid_arg "comp golden"
  in
  mk_instance ~family:"comp" ~id:(id_of "comp" (Printf.sprintf "b%d" bits) boxes fault) ~spec
    ~impl ~golden

(* ------------------------------------------------------------------ c432 *)

(* priority interrupt controller in the shape of ISCAS-85 C432: [groups]
   request groups of [lines] lines with per-group enables; the highest-
   priority active group wins and its request lines are gated through *)
let c432_netlist ~groups ~lines ~boxed ~fault_at name =
  let b = B.create name in
  let req = List.init groups (fun _ -> B.inputs b lines) in
  let en = B.inputs b groups in
  let active =
    List.init groups (fun g ->
        let any = Option.get (or_tree b (List.nth req g)) in
        B.and2 b (List.nth en g) any)
  in
  (* priority chain cells: sel_g = active_g and not blocked_g *)
  let blocked = ref None in
  let sels = ref [] in
  for g = 0 to groups - 1 do
    let act = List.nth active g in
    if List.mem g boxed then begin
      let ins = match !blocked with None -> [ act ] | Some bl -> [ act; bl ] in
      match B.black_box b ~inputs:ins ~num_outputs:2 with
      | [ sel; bl' ] ->
          sels := sel :: !sels;
          blocked := Some bl'
      | _ -> assert false
    end
    else begin
      let sel, bl' =
        match !blocked with
        | None -> (act, act)
        | Some bl -> (B.and2 b act (B.not_ b bl), B.or2 b bl act)
      in
      sels := sel :: !sels;
      blocked := Some bl'
    end
  done;
  let sels = List.rev !sels in
  (* the fault lives in the output gating, where no box can compensate:
     one AND term of line 0 becomes an OR *)
  let line_outs =
    List.init lines (fun j ->
        let terms =
          List.mapi
            (fun g sel ->
              let r = List.nth (List.nth req g) j in
              if j = 0 && fault_at = Some g then B.or2 b sel r else B.and2 b sel r)
            sels
        in
        Option.get (or_tree b terms))
  in
  let any = Option.get (or_tree b sels) in
  B.build b ~outputs:(line_outs @ [ any ])

let c432 ~groups ~lines ~boxes ~fault =
  let boxed = box_positions ~fault ~cells:groups ~boxes () in
  let fault_at = if fault then Some (first_free ~cells:groups ~boxed) else None in
  let spec = c432_netlist ~groups ~lines ~boxed:[] ~fault_at:None "c432_spec" in
  let impl = c432_netlist ~groups ~lines ~boxed ~fault_at "c432_impl" in
  let golden _ = function
    | [ act ] -> [ act; act ]
    | [ act; bl ] -> [ act && not bl; bl || act ]
    | _ -> invalid_arg "c432 golden"
  in
  mk_instance ~family:"c432"
    ~id:(id_of "c432" (Printf.sprintf "g%dl%d" groups lines) boxes fault)
    ~spec ~impl ~golden
