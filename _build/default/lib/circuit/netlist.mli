(** Gate-level combinational netlists, optionally containing black boxes —
    the incomplete designs of the paper's reference application (partial
    equivalence checking, Section IV).

    Signals are dense ints in creation order; a netlist is complete when it
    has no black boxes. *)

type kind = And | Or | Nand | Nor | Xor | Xnor | Not | Buf

type node =
  | Input of int  (** primary input index *)
  | Gate of kind * int list  (** fanin signals; arity >= 1, Not/Buf = 1 *)
  | Bb_out of { bb : int; port : int }  (** output [port] of black box [bb] *)

type blackbox = {
  bb_inputs : int list;  (** signals the box observes *)
  bb_outputs : int list;  (** the signals carrying its outputs *)
}

type t = {
  name : string;
  num_inputs : int;
  nodes : node array;  (** indexed by signal *)
  outputs : int list;
  boxes : blackbox array;
}

val is_complete : t -> bool

val eval : t -> bool array -> bool array
(** Evaluate a complete netlist on an input vector.
    @raise Invalid_argument if the netlist has black boxes or the input
    vector has the wrong length. *)

val eval_with_boxes : t -> box_fn:(int -> bool list -> bool list) -> bool array -> bool array
(** Evaluate with concrete black-box implementations: [box_fn i ins] must
    return one value per output port of box [i]. *)

val eval_gate : kind -> bool list -> bool

val counts : t -> int * int
(** (gate count, black-box count). *)

(** Imperative construction. *)
module Builder : sig
  type netlist := t
  type t

  val create : string -> t
  val input : t -> int
  val inputs : t -> int -> int list
  val gate : t -> kind -> int list -> int
  val not_ : t -> int -> int
  val and2 : t -> int -> int -> int
  val or2 : t -> int -> int -> int
  val xor2 : t -> int -> int -> int
  val xnor2 : t -> int -> int -> int

  val black_box : t -> inputs:int list -> num_outputs:int -> int list
  (** Returns the box's output signals. *)

  val build : t -> outputs:int list -> netlist
end
