(** Partial equivalence checking (PEC) to DQBF, the encoding of Gitina et
    al. (ICCD 2013) used by the paper's benchmark set.

    Given a complete specification and an implementation containing black
    boxes, realizability — "can the boxes be implemented so that the
    design matches the spec?" — becomes the DQBF

    forall x (primary inputs) forall z (copies of the box input signals)
    exists y_i(z_i) (box outputs, each depending only on its own box's
    inputs): (z = driving logic(x, y)) -> (impl(x, y) = spec(x))

    The matrix is Tseitin-encoded with 2-input AND/XOR gates so that the
    CNF preprocessor's gate detection faces exactly the structure it
    expects. With two or more boxes observing incomparable signal sets the
    result is genuinely non-QBF (Theorem 4). *)

val encode : spec:Netlist.t -> impl:Netlist.t -> Dqbf.Pcnf.t
(** @raise Invalid_argument if [spec] is incomplete, or the interfaces
    (input/output counts) disagree. *)
