type kind = And | Or | Nand | Nor | Xor | Xnor | Not | Buf

type node = Input of int | Gate of kind * int list | Bb_out of { bb : int; port : int }
type blackbox = { bb_inputs : int list; bb_outputs : int list }

type t = {
  name : string;
  num_inputs : int;
  nodes : node array;
  outputs : int list;
  boxes : blackbox array;
}

let is_complete t = Array.length t.boxes = 0

let eval_gate kind args =
  let parity = List.fold_left (fun acc b -> acc <> b) false args in
  match (kind, args) with
  | And, _ -> List.for_all Fun.id args
  | Or, _ -> List.exists Fun.id args
  | Nand, _ -> not (List.for_all Fun.id args)
  | Nor, _ -> not (List.exists Fun.id args)
  | Xor, _ -> parity
  | Xnor, _ -> not parity
  | Not, [ a ] -> not a
  | Buf, [ a ] -> a
  | (Not | Buf), _ -> invalid_arg "Netlist.eval_gate: bad arity"

let eval_with_boxes t ~box_fn inputs =
  if Array.length inputs <> t.num_inputs then invalid_arg "Netlist.eval: input arity";
  let values = Array.make (Array.length t.nodes) false in
  let box_results =
    Array.map
      (fun _ -> lazy (assert false)) (* placeholders, filled below *)
      t.boxes
  in
  Array.iteri
    (fun i box ->
      box_results.(i) <-
        lazy
          (let ins = List.map (fun s -> values.(s)) box.bb_inputs in
           let outs = box_fn i ins in
           if List.length outs <> List.length box.bb_outputs then
             invalid_arg "Netlist.eval_with_boxes: box output arity";
           outs))
    t.boxes;
  Array.iteri
    (fun s node ->
      values.(s) <-
        (match node with
        | Input i -> inputs.(i)
        | Gate (kind, args) -> eval_gate kind (List.map (fun a -> values.(a)) args)
        | Bb_out { bb; port } -> List.nth (Lazy.force box_results.(bb)) port))
    t.nodes;
  Array.of_list (List.map (fun s -> values.(s)) t.outputs)

let eval t inputs =
  if not (is_complete t) then invalid_arg "Netlist.eval: netlist has black boxes";
  eval_with_boxes t ~box_fn:(fun _ _ -> assert false) inputs

let counts t =
  let gates =
    Array.fold_left (fun acc n -> match n with Gate _ -> acc + 1 | _ -> acc) 0 t.nodes
  in
  (gates, Array.length t.boxes)

module Builder = struct
  type netlist_t = t

  type t = {
    name : string;
    mutable rev_nodes : node list;
    mutable num_nodes : int;
    mutable num_inputs : int;
    mutable rev_boxes : blackbox list;
    mutable num_boxes : int;
  }

  let create name =
    { name; rev_nodes = []; num_nodes = 0; num_inputs = 0; rev_boxes = []; num_boxes = 0 }

  let add b node =
    let s = b.num_nodes in
    b.rev_nodes <- node :: b.rev_nodes;
    b.num_nodes <- s + 1;
    s

  let input b =
    let i = b.num_inputs in
    b.num_inputs <- i + 1;
    add b (Input i)

  let inputs b n = List.init n (fun _ -> input b)

  let gate b kind args =
    (match (kind, args) with
    | (Not | Buf), [ _ ] -> ()
    | (Not | Buf), _ -> invalid_arg "Builder.gate: Not/Buf need exactly one fanin"
    | _, [] -> invalid_arg "Builder.gate: empty fanin"
    | _ -> ());
    List.iter (fun a -> if a < 0 || a >= b.num_nodes then invalid_arg "Builder.gate: bad signal") args;
    add b (Gate (kind, args))

  let not_ b a = gate b Not [ a ]
  let and2 b x y = gate b And [ x; y ]
  let or2 b x y = gate b Or [ x; y ]
  let xor2 b x y = gate b Xor [ x; y ]
  let xnor2 b x y = gate b Xnor [ x; y ]

  let black_box b ~inputs ~num_outputs =
    List.iter (fun a -> if a < 0 || a >= b.num_nodes then invalid_arg "Builder.black_box") inputs;
    let bb = b.num_boxes in
    b.num_boxes <- bb + 1;
    let outs = List.init num_outputs (fun port -> add b (Bb_out { bb; port })) in
    b.rev_boxes <- { bb_inputs = inputs; bb_outputs = outs } :: b.rev_boxes;
    outs

  let build b ~outputs : netlist_t =
    List.iter (fun s -> if s < 0 || s >= b.num_nodes then invalid_arg "Builder.build") outputs;
    {
      name = b.name;
      num_inputs = b.num_inputs;
      nodes = Array.of_list (List.rev b.rev_nodes);
      outputs;
      boxes = Array.of_list (List.rev b.rev_boxes);
    }
end
