open Hqs_util
module M = Aig.Man
module F = Dqbf.Formula

type stats = {
  mutable rounds : int;
  mutable ground_vars : int;
  mutable instance_nodes : int;
  mutable total_time : float;
}

(* copy a cone from [src] into [dst], preserving input variable ids *)
let import src root dst =
  let table = Hashtbl.create 256 in
  let get e = M.apply_sign (Hashtbl.find table (M.node_of e)) ~neg:(M.is_compl e) in
  M.iter_cone src [ root ] (fun n ->
      let v =
        if n = 0 then M.false_
        else if M.is_input src (n * 2) then M.input dst (M.var_of_input src (n * 2))
        else begin
          let e0, e1 = M.fanins src (n * 2) in
          M.mk_and dst (get e0) (get e1)
        end
      in
      Hashtbl.replace table n v);
  get root

let solve_core ~want_model ?(budget = Budget.unlimited) ?node_limit f =
  let t_start = Budget.now () in
  let stats = { rounds = 0; ground_vars = 0; instance_nodes = 0; total_time = 0.0 } in
  let univs = Bitset.to_list (F.universals f) in
  let n = List.length univs in
  let exists = F.existentials f in
  (* fresh ids for ground variables, above all existing variables *)
  let next = ref 0 in
  List.iter (fun v -> next := max !next (v + 1)) univs;
  List.iter (fun (y, _) -> next := max !next (y + 1)) exists;
  (* persistent ground instance: manager + incremental SAT encoding *)
  let gman = M.create ?node_limit () in
  let gmatrix = import (F.man f) (F.matrix f) gman in
  let solver = Sat.Solver.create () in
  let enc = Aig.Cnf_enc.create solver in
  let ground : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let ground_var y proj =
    match Hashtbl.find_opt ground (y, proj) with
    | Some v -> v
    | None ->
        let v = !next in
        incr next;
        Hashtbl.add ground (y, proj) v;
        stats.ground_vars <- stats.ground_vars + 1;
        v
  in
  let project sigma deps =
    let bits = ref 0 in
    List.iteri (fun i x -> if sigma x then bits := !bits lor (1 lsl i)) (Bitset.to_list deps);
    !bits
  in
  let sigma_of_bits bits =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i x -> Hashtbl.replace tbl x (bits land (1 lsl i) <> 0)) univs;
    fun x -> Hashtbl.find tbl x
  in
  (* add the ground copy of the matrix for one universal assignment *)
  let add_instance sigma =
    let subst v =
      if F.is_universal f v then Some (if sigma v then M.true_ else M.false_)
      else begin
        match List.assoc_opt v exists with
        | Some deps -> Some (M.input gman (ground_var v (project sigma deps)))
        | None -> None
      end
    in
    let copy = M.compose gman gmatrix subst in
    stats.instance_nodes <- M.num_nodes gman;
    Sat.Solver.add_clause solver [ Aig.Cnf_enc.sat_lit gman enc copy ]
  in
  (* SAT variable of a ground AIG input (it was encoded with its copy) *)
  let sat_var_of gv = Sat.Lit.var (Aig.Cnf_enc.sat_var_of_aig_var gman enc gv) in
  (* candidate-check: build Skolem tables from the model, search for a
     falsifying universal assignment *)
  let counterexample () =
    let cman = M.create ?node_limit () in
    let cmatrix = import (F.man f) (F.matrix f) cman in
    let table_circuit y deps =
      (* OR over the model-true entries of an indicator of each projection *)
      let dep_list = Bitset.to_list deps in
      let entries =
        Hashtbl.fold
          (fun (y', proj) v acc ->
            if y' = y && Sat.Solver.value solver (sat_var_of v) then proj :: acc else acc)
          ground []
      in
      let indicator proj =
        M.mk_and_list cman
          (List.mapi
             (fun i x ->
               M.apply_sign (M.input cman x) ~neg:(proj land (1 lsl i) = 0))
             dep_list)
      in
      M.mk_or_list cman (List.map indicator entries)
    in
    let subst v =
      if F.is_universal f v then None
      else begin
        match List.assoc_opt v exists with
        | Some deps -> Some (table_circuit v deps)
        | None -> None
      end
    in
    let falsified = M.compl_ (M.compose cman cmatrix subst) in
    if M.is_false falsified then None
    else if M.is_true falsified then Some (sigma_of_bits 0)
    else begin
      let csolver = Sat.Solver.create () in
      let cenc = Aig.Cnf_enc.create csolver in
      let out = Aig.Cnf_enc.sat_lit cman cenc falsified in
      Sat.Solver.add_clause csolver [ out ];
      match Sat.Solver.solve ~budget csolver with
      | Sat.Solver.Unsat -> None
      | Sat.Solver.Sat ->
          let bits = ref 0 in
          List.iteri
            (fun i x ->
              if Sat.Solver.lit_value csolver (Aig.Cnf_enc.sat_var_of_aig_var cman cenc x)
              then bits := !bits lor (1 lsl i))
            univs;
          Some (sigma_of_bits !bits)
      | Sat.Solver.Unknown -> assert false
    end
  in
  (* on SAT: turn the candidate tables of the final round into functions *)
  let build_model () =
    let model = Dqbf.Skolem.create () in
    let sman = Dqbf.Skolem.man model in
    List.iter
      (fun (y, deps) ->
        let dep_list = Bitset.to_list deps in
        let entries =
          Hashtbl.fold
            (fun (y', proj) v acc ->
              if y' = y && Sat.Solver.value solver (sat_var_of v) then proj :: acc else acc)
            ground []
        in
        let indicator proj =
          M.mk_and_list sman
            (List.mapi
               (fun i x -> M.apply_sign (M.input sman x) ~neg:(proj land (1 lsl i) = 0))
               dep_list)
        in
        Dqbf.Skolem.define model y (M.mk_or_list sman (List.map indicator entries)))
      exists;
    model
  in
  let answer = ref None in
  (* start from the all-false assignment *)
  let pending = ref [ sigma_of_bits 0 ] in
  while !answer = None do
    Budget.check budget;
    stats.rounds <- stats.rounds + 1;
    List.iter add_instance !pending;
    pending := [];
    match Sat.Solver.solve ~budget solver with
    | Sat.Solver.Unsat -> answer := Some (false, None)
    | Sat.Solver.Unknown -> assert false
    | Sat.Solver.Sat -> (
        if n = 0 then answer := Some (true, if want_model then Some (build_model ()) else None)
        else begin
          match counterexample () with
          | None -> answer := Some (true, if want_model then Some (build_model ()) else None)
          | Some sigma -> pending := [ sigma ]
        end)
  done;
  stats.total_time <- Budget.now () -. t_start;
  (Option.get !answer, stats)

let solve ?budget ?node_limit f =
  let (answer, _), stats = solve_core ~want_model:false ?budget ?node_limit f in
  (answer, stats)

let solve_with_model ?budget ?node_limit f = solve_core ~want_model:true ?budget ?node_limit f

let solve_pcnf ?budget ?node_limit pcnf =
  solve ?budget ?node_limit (Dqbf.Pcnf.to_formula pcnf)
