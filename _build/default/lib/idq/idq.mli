(** Instantiation-based DQBF solving — the baseline the paper compares
    against (iDQ, Fröhlich et al., POS'14), reimplemented as a
    counterexample-guided instantiation loop in the same algorithmic
    family (Inst-Gen reduced to SAT):

    - keep a set S of universal assignments; ground the matrix over each
      assignment in S, with one SAT variable per (existential, projection
      onto its dependency set) pair — the "annotated" variables of iDQ;
    - if the ground conjunction is unsatisfiable, so is the DQBF
      (instantiation is sound for refutation);
    - otherwise read candidate Skolem tables from the model (unseen
      entries default to false) and look for a universal assignment
      falsifying the matrix under those tables; none means the DQBF is
      satisfied, one is added to S and the loop repeats.

    Each counterexample is provably new, so at most 2^|universals| rounds
    run. Like the real iDQ, the solver is cheap when few instances refute
    the formula and blows up when many are needed — which is exactly the
    behaviour Table I of the paper exhibits. *)

type stats = {
  mutable rounds : int;
  mutable ground_vars : int;  (** annotated existential instances created *)
  mutable instance_nodes : int;  (** AIG nodes of the ground conjunction *)
  mutable total_time : float;
}

val solve :
  ?budget:Hqs_util.Budget.t ->
  ?node_limit:int ->
  Dqbf.Formula.t ->
  bool * stats
(** @raise Hqs_util.Budget.Timeout on deadline.
    @raise Hqs_util.Budget.Out_of_memory_budget when the ground instance
    exceeds [node_limit] AIG nodes (memout emulation). *)

val solve_pcnf :
  ?budget:Hqs_util.Budget.t ->
  ?node_limit:int ->
  Dqbf.Pcnf.t ->
  bool * stats

val solve_with_model :
  ?budget:Hqs_util.Budget.t ->
  ?node_limit:int ->
  Dqbf.Formula.t ->
  (bool * Dqbf.Skolem.t option) * stats
(** Like {!solve}; on a SAT answer the candidate Skolem tables of the
    final CEGAR round are returned as concrete functions (sum of minterms
    over each variable's dependency set). *)
