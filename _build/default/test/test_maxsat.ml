module L = Sat.Lit
module M = Maxsat.Msolver

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let l = L.of_dimacs
let cl ints = List.map l ints

(* brute-force partial MaxSAT over n <= 12 vars *)
let brute n hard soft =
  let eval a clause =
    List.exists (fun i -> if i > 0 then a.(i - 1) else not a.(-i - 1)) clause
  in
  let best = ref None in
  for bits = 0 to (1 lsl n) - 1 do
    let a = Array.init n (fun i -> bits land (1 lsl i) <> 0) in
    if List.for_all (eval a) hard then begin
      let cost = List.length (List.filter (fun c -> not (eval a c)) soft) in
      match !best with Some b when b <= cost -> () | _ -> best := Some cost
    end
  done;
  !best

let solve_ints n hard soft =
  M.solve ~num_vars:n ~hard:(List.map cl hard) ~soft:(List.map cl soft) ()

let test_all_soft_satisfiable () =
  match solve_ints 2 [] [ [ 1 ]; [ 2 ] ] with
  | Some { cost; model } ->
      check_int "cost" 0 cost;
      check "x1" true model.(0);
      check "x2" true model.(1)
  | None -> Alcotest.fail "expected an answer"

let test_conflicting_soft () =
  (* x and not x: exactly one must be violated *)
  match solve_ints 1 [] [ [ 1 ]; [ -1 ]; [ 1 ] ] with
  | Some { cost; _ } -> check_int "cost" 1 cost
  | None -> Alcotest.fail "expected an answer"

let test_hard_unsat () =
  check "hard unsat gives None" true (solve_ints 1 [ [ 1 ]; [ -1 ] ] [ [ 1 ] ] = None)

let test_hard_constrains_soft () =
  (* hard: x1; soft: not x1, x2 -> cost 1 with x2 picked *)
  match solve_ints 2 [ [ 1 ] ] [ [ -1 ]; [ 2 ] ] with
  | Some { cost; model } ->
      check_int "cost" 1 cost;
      check "hard satisfied" true model.(0);
      check "free soft satisfied" true model.(1)
  | None -> Alcotest.fail "expected an answer"

let test_vertex_cover_shape () =
  (* min vertex cover of a triangle: hard edge-cover clauses, soft "not in
     cover" units; optimum violates exactly 2 *)
  let hard = [ [ 1; 2 ]; [ 2; 3 ]; [ 1; 3 ] ] in
  let soft = [ [ -1 ]; [ -2 ]; [ -3 ] ] in
  match solve_ints 3 hard soft with
  | Some { cost; _ } -> check_int "triangle cover" 2 cost
  | None -> Alcotest.fail "expected an answer"

let gen_instance =
  QCheck.Gen.(
    let lit_g n = map2 (fun v s -> if s then v + 1 else -(v + 1)) (int_bound (n - 1)) bool in
    int_range 1 6 >>= fun n ->
    list_size (int_bound 8) (list_size (int_range 1 3) (lit_g n)) >>= fun hard ->
    list_size (int_bound 8) (list_size (int_range 1 3) (lit_g n)) >>= fun soft ->
    return (n, hard, soft))

let arb_instance =
  QCheck.make
    ~print:(fun (n, h, s) ->
      let pp cls =
        String.concat ";" (List.map (fun c -> String.concat "," (List.map string_of_int c)) cls)
      in
      Printf.sprintf "n=%d hard=[%s] soft=[%s]" n (pp h) (pp s))
    gen_instance

let prop_optimal =
  QCheck.Test.make ~name:"maxsat matches brute-force optimum" ~count:300 arb_instance
    (fun (n, hard, soft) ->
      let expected = brute n hard soft in
      match solve_ints n hard soft with
      | None -> expected = None
      | Some { cost; model } ->
          let eval a clause =
            List.exists (fun i -> if i > 0 then a.(i - 1) else not a.(-i - 1)) clause
          in
          expected = Some cost
          && List.for_all (eval model) hard
          && List.length (List.filter (fun c -> not (eval model c)) soft) = cost)

let test_totalizer_bound () =
  (* at most k of n: totalizer output k asserted false *)
  let module S = Sat.Solver in
  let n = 5 in
  List.iter
    (fun k ->
      let s = S.create () in
      let inputs = Array.init n (fun _ -> L.of_var (S.new_var s)) in
      let outputs = Maxsat.Totalizer.build s inputs in
      check_int "output count" n (Array.length outputs);
      if k < n then S.add_clause s [ L.neg outputs.(k) ];
      (* forcing k+1 inputs true must now be UNSAT; k inputs true is SAT *)
      let assume m = Array.to_list (Array.sub inputs 0 m) in
      check
        (Printf.sprintf "k=%d: %d true ok" k k)
        true
        (S.solve ~assumptions:(assume k) s = S.Sat);
      if k < n then
        check
          (Printf.sprintf "k=%d: %d true blocked" k (k + 1))
          true
          (S.solve ~assumptions:(assume (k + 1)) s = S.Unsat))
    [ 0; 1; 2; 3; 4 ]

let () =
  Alcotest.run "maxsat"
    [
      ( "basic",
        [
          Alcotest.test_case "all soft satisfiable" `Quick test_all_soft_satisfiable;
          Alcotest.test_case "conflicting soft" `Quick test_conflicting_soft;
          Alcotest.test_case "hard unsat" `Quick test_hard_unsat;
          Alcotest.test_case "hard constrains soft" `Quick test_hard_constrains_soft;
          Alcotest.test_case "triangle vertex cover" `Quick test_vertex_cover_shape;
          Alcotest.test_case "totalizer bound" `Quick test_totalizer_bound;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_optimal ]);
    ]
