open Hqs_util
module M = Aig.Man
module F = Dqbf.Formula
module Sk = Dqbf.Skolem

let check = Alcotest.(check bool)

(* shared random-instance machinery *)
type instance = {
  nu : int;
  ne : int;
  dep_masks : int list;
  clauses : (int * bool) list list;
}

let instance_gen =
  QCheck.Gen.(
    int_range 1 3 >>= fun nu ->
    int_range 1 3 >>= fun ne ->
    list_repeat ne (int_bound ((1 lsl nu) - 1)) >>= fun dep_masks ->
    let n = nu + ne in
    list_size (int_range 1 12) (list_size (int_range 1 3) (pair (int_bound (n - 1)) bool))
    >>= fun clauses -> return { nu; ne; dep_masks; clauses })

let instance_print { nu; ne; dep_masks; clauses } =
  Printf.sprintf "nu=%d ne=%d deps=[%s] clauses=%s" nu ne
    (String.concat ";" (List.map string_of_int dep_masks))
    (String.concat " "
       (List.map
          (fun c ->
            String.concat ","
              (List.map (fun (v, s) -> string_of_int (if s then -(v + 1) else v + 1)) c))
          clauses))

let instance_arb = QCheck.make ~print:instance_print instance_gen

let build { nu; ne = _; dep_masks; clauses } =
  let f = F.create () in
  for x = 0 to nu - 1 do
    F.add_universal f x
  done;
  List.iteri
    (fun i mask ->
      let deps =
        Bitset.of_list (List.filter (fun x -> mask land (1 lsl x) <> 0) (List.init nu Fun.id))
      in
      F.add_existential f (nu + i) ~deps)
    dep_masks;
  let man = F.man f in
  let lit (v, s) = M.apply_sign (M.input man v) ~neg:s in
  F.set_matrix f
    (M.mk_and_list man (List.map (fun c -> M.mk_or_list man (List.map lit c)) clauses));
  f

let pcnf_of_instance inst =
  {
    Dqbf.Pcnf.num_vars = inst.nu + inst.ne;
    univs = List.init inst.nu Fun.id;
    exists =
      List.mapi
        (fun i mask ->
          ( inst.nu + i,
            List.filter (fun x -> mask land (1 lsl x) <> 0) (List.init inst.nu Fun.id) ))
        inst.dep_masks;
    clauses = List.map (List.map (fun (v, s) -> if s then -(v + 1) else v + 1)) inst.clauses;
  }

let example1 ~crossed =
  let f = F.create () in
  F.add_universal f 0;
  F.add_universal f 1;
  F.add_existential f 2 ~deps:(Bitset.singleton 0);
  F.add_existential f 3 ~deps:(Bitset.singleton 1);
  let man = F.man f in
  let x1 = M.input man 0 and x2 = M.input man 1 in
  let y1 = M.input man 2 and y2 = M.input man 3 in
  F.set_matrix f
    (if crossed then M.mk_and man (M.mk_iff man y1 x2) (M.mk_iff man y2 x1)
     else M.mk_and man (M.mk_iff man y1 x1) (M.mk_iff man y2 x2));
  f

(* ----------------------------------------------------------- basic API *)

let test_skolem_eval () =
  let model = Sk.create () in
  let man = Sk.man model in
  Sk.define model 5 (M.mk_xor man (M.input man 0) (M.input man 1));
  check "xor eval tt" true (Sk.eval model 5 (fun _ -> true) = false);
  check "xor eval tf" true (Sk.eval model 5 (fun v -> v = 0) = true);
  check "find" true (Sk.find model 5 <> None);
  check "missing" true (Sk.find model 6 = None);
  check "bindings" true (List.map fst (Sk.bindings model) = [ 5 ])

let test_verify_rejects_bad_models () =
  let f = example1 ~crossed:false in
  (* constants cannot satisfy y1 <-> x1 *)
  let model = Sk.create () in
  Sk.define model 2 M.true_;
  Sk.define model 3 M.true_;
  check "not tautology" true (Sk.verify f model = Error Sk.Not_tautology);
  (* missing definition *)
  let partial = Sk.create () in
  Sk.define partial 2 M.true_;
  check "missing" true (Sk.verify f partial = Error (Sk.Missing 3));
  (* right function, wrong support: y1 := x2 *)
  let bad = Sk.create () in
  let man = Sk.man bad in
  Sk.define bad 2 (M.input man 1);
  Sk.define bad 3 (M.input man 1);
  check "bad support" true (Sk.verify f bad = Error (Sk.Bad_support (2, 1)))

let test_verify_accepts_identity_model () =
  let f = example1 ~crossed:false in
  let model = Sk.create () in
  let man = Sk.man model in
  Sk.define model 2 (M.input man 0);
  Sk.define model 3 (M.input man 1);
  check "verifies" true (Sk.verify f model = Ok ())

(* ------------------------------------------------------- model trail *)

let test_trail_reconstruct_order () =
  (* chronological record: y5 := y6 (Def), then y6 := x0 (Def, newer).
     Reconstruction must resolve y5 through y6's later definition. *)
  let t = Dqbf.Model_trail.create () in
  let scratch = M.create () in
  Dqbf.Model_trail.record_def t scratch 5 (M.input scratch 6);
  Dqbf.Model_trail.record_def t scratch 6 (M.input scratch 0);
  let model = Dqbf.Model_trail.reconstruct t in
  check "y5 follows y6" true (Sk.eval model 5 (fun v -> v = 0));
  check "y5 false elsewhere" false (Sk.eval model 5 (fun _ -> false));
  Alcotest.(check int) "steps" 2 (Dqbf.Model_trail.num_steps t)

let test_trail_ite_merge () =
  (* Theorem-1 bookkeeping: record_ite y x y1, then the branch definitions
     (newer): y := false-branch const 0, y1 := const 1.
     Final s_y = ite(x, 1, 0) = x. *)
  let t = Dqbf.Model_trail.create () in
  Dqbf.Model_trail.record_ite t ~y:5 ~x:0 ~y1:9;
  Dqbf.Model_trail.record_const t 5 false;
  Dqbf.Model_trail.record_const t 9 true;
  let model = Dqbf.Model_trail.reconstruct t in
  check "x=1 branch" true (Sk.eval model 5 (fun v -> v = 0));
  check "x=0 branch" false (Sk.eval model 5 (fun _ -> false))

let test_trail_literal () =
  let t = Dqbf.Model_trail.create () in
  Dqbf.Model_trail.record_literal t 7 ~var:1 ~neg:true;
  let model = Dqbf.Model_trail.reconstruct t in
  check "negated literal" true (Sk.eval model 7 (fun _ -> false));
  check "negated literal 2" false (Sk.eval model 7 (fun v -> v = 1))

(* --------------------------------------------------------- HQS models *)

let test_hqs_model_example1 () =
  let f = example1 ~crossed:false in
  match Hqs.solve_formula_model f with
  | Hqs.Sat, Some model, _ ->
      check "verifies" true (Sk.verify f model = Ok ());
      (* the only valid Skolem functions here are y1 = x1, y2 = x2 *)
      List.iter
        (fun bits ->
          let env v = bits land (1 lsl v) <> 0 in
          check "y1 = x1" (env 0) (Sk.eval model 2 env);
          check "y2 = x2" (env 1) (Sk.eval model 3 env))
        [ 0; 1; 2; 3 ]
  | Hqs.Sat, None, _ -> Alcotest.fail "expected a model"
  | Hqs.Unsat, _, _ -> Alcotest.fail "expected SAT"

let test_hqs_model_unsat_none () =
  match Hqs.solve_formula_model (example1 ~crossed:true) with
  | Hqs.Unsat, None, _ -> ()
  | Hqs.Unsat, Some _, _ -> Alcotest.fail "no model expected on UNSAT"
  | Hqs.Sat, _, _ -> Alcotest.fail "expected UNSAT"

let model_agrees ?(config = Hqs.default_config) name =
  QCheck.Test.make ~name ~count:300 instance_arb (fun inst ->
      let f = build inst in
      let expected = Dqbf.Reference.by_expansion f in
      match Hqs.solve_formula_model ~config f with
      | Hqs.Sat, Some model, _ -> expected && Sk.verify f model = Ok ()
      | Hqs.Sat, None, _ -> false
      | Hqs.Unsat, _, _ -> not expected)

let prop_model_default = model_agrees "hqs model verifies (default)"

let prop_model_no_unitpure =
  model_agrees ~config:{ Hqs.default_config with use_unitpure = false }
    "hqs model verifies (no unit/pure)"

let prop_model_no_thm2 =
  model_agrees ~config:{ Hqs.default_config with use_thm2 = false }
    "hqs model verifies (no Theorem 2)"

let prop_model_expand_all =
  model_agrees ~config:{ Hqs.default_config with mode = Hqs.Expand_all }
    "hqs model verifies (expand-all)"

let prop_model_greedy =
  model_agrees ~config:{ Hqs.default_config with use_maxsat = false }
    "hqs model verifies (greedy set)"

let prop_model_fraig =
  model_agrees ~config:{ Hqs.default_config with fraig_threshold = 1 }
    "hqs model verifies (fraig every step)"

let prop_model_search_backend =
  model_agrees
    ~config:{ Hqs.default_config with qbf_backend = Hqs.Search_backend }
    "hqs model verifies (QDPLL back end)"

let prop_pcnf_model =
  QCheck.Test.make ~name:"pcnf pipeline model verifies against the original" ~count:300
    instance_arb (fun inst ->
      let pcnf = pcnf_of_instance inst in
      let original = Dqbf.Pcnf.to_formula pcnf in
      let expected = Dqbf.Reference.by_expansion original in
      match Hqs.solve_pcnf_model pcnf with
      | Hqs.Sat, Some model, _ -> expected && Sk.verify original model = Ok ()
      | Hqs.Sat, None, _ -> false
      | Hqs.Unsat, _, _ -> not expected)

let prop_pcnf_model_with_bce_config =
  (* blocked-clause elimination is not certifying, so the pipeline must
     skip it when a model is requested — and still produce a verifiable
     model *)
  QCheck.Test.make ~name:"pcnf model verifies (BCE requested)" ~count:200 instance_arb
    (fun inst ->
      let pcnf = pcnf_of_instance inst in
      let original = Dqbf.Pcnf.to_formula pcnf in
      let config =
        {
          Hqs.default_config with
          preprocess =
            { Dqbf.Preprocess.default_config with Dqbf.Preprocess.blocked_clauses = true };
        }
      in
      match Hqs.solve_pcnf_model ~config pcnf with
      | Hqs.Sat, Some model, _ -> Sk.verify original model = Ok ()
      | Hqs.Sat, None, _ -> false
      | Hqs.Unsat, _, _ -> not (Dqbf.Reference.by_expansion original))

let prop_pcnf_model_no_preprocess =
  QCheck.Test.make ~name:"pcnf model verifies (preprocessing off)" ~count:200 instance_arb
    (fun inst ->
      let pcnf = pcnf_of_instance inst in
      let original = Dqbf.Pcnf.to_formula pcnf in
      let config = { Hqs.default_config with preprocess = Dqbf.Preprocess.off } in
      match Hqs.solve_pcnf_model ~config pcnf with
      | Hqs.Sat, Some model, _ -> Sk.verify original model = Ok ()
      | Hqs.Sat, None, _ -> false
      | Hqs.Unsat, _, _ -> not (Dqbf.Reference.by_expansion original))

(* ---------------------------------------------------------- iDQ models *)

let prop_idq_model =
  QCheck.Test.make ~name:"idq model verifies" ~count:300 instance_arb (fun inst ->
      let f = build inst in
      let expected = Dqbf.Reference.by_expansion f in
      match Idq.solve_with_model f with
      | (true, Some model), _ -> expected && Sk.verify f model = Ok ()
      | (true, None), _ -> false
      | (false, _), _ -> not expected)

(* ----------------------------------------------------------- PEC models *)

let test_pec_models_verify () =
  let cases =
    [
      Circuit.Families.adder ~bits:2 ~boxes:2 ~fault:false;
      Circuit.Families.bitcell ~cells:4 ~boxes:2 ~fault:false;
      Circuit.Families.lookahead ~cells:4 ~boxes:2 ~fault:false;
      Circuit.Families.pec_xor ~length:4 ~boxes:2 ~fault:false;
      Circuit.Families.comp ~bits:3 ~boxes:2 ~fault:false;
      Circuit.Families.c432 ~groups:2 ~lines:2 ~boxes:1 ~fault:false;
    ]
  in
  List.iter
    (fun (inst : Circuit.Families.instance) ->
      let original = Dqbf.Pcnf.to_formula inst.Circuit.Families.pcnf in
      match Hqs.solve_pcnf_model inst.Circuit.Families.pcnf with
      | Hqs.Sat, Some model, _ ->
          (match Sk.verify original model with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "%s: model rejected: %a" inst.Circuit.Families.id Sk.pp_failure e)
      | Hqs.Sat, None, _ -> Alcotest.failf "%s: no model" inst.Circuit.Families.id
      | Hqs.Unsat, _, _ -> Alcotest.failf "%s: expected SAT" inst.Circuit.Families.id)
    cases

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "skolem"
    [
      ( "api",
        [
          Alcotest.test_case "eval" `Quick test_skolem_eval;
          Alcotest.test_case "verify rejects bad models" `Quick test_verify_rejects_bad_models;
          Alcotest.test_case "verify accepts identity" `Quick test_verify_accepts_identity_model;
          Alcotest.test_case "trail: newest-first resolution" `Quick test_trail_reconstruct_order;
          Alcotest.test_case "trail: Theorem-1 ite merge" `Quick test_trail_ite_merge;
          Alcotest.test_case "trail: literal defs" `Quick test_trail_literal;
        ] );
      ( "hqs",
        [
          Alcotest.test_case "example 1 model" `Quick test_hqs_model_example1;
          Alcotest.test_case "unsat gives no model" `Quick test_hqs_model_unsat_none;
        ]
        @ qsuite
            [
              prop_model_default;
              prop_model_no_unitpure;
              prop_model_no_thm2;
              prop_model_expand_all;
              prop_model_greedy;
              prop_model_fraig;
              prop_model_search_backend;
              prop_pcnf_model;
              prop_pcnf_model_with_bce_config;
              prop_pcnf_model_no_preprocess;
            ] );
      ("idq", qsuite [ prop_idq_model ]);
      ("pec", [ Alcotest.test_case "PEC models verify" `Slow test_pec_models_verify ]);
    ]
