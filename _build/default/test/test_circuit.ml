module N = Circuit.Netlist
module Fam = Circuit.Families

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let bits_of_int n width = Array.init width (fun i -> n land (1 lsl i) <> 0)
let int_of_bits a = Array.to_list a |> List.mapi (fun i b -> if b then 1 lsl i else 0) |> List.fold_left ( + ) 0

(* --------------------------------------------------------- netlist eval *)

let test_adder_spec_correct () =
  let { Fam.spec; _ } = Fam.adder ~bits:4 ~boxes:0 ~fault:false in
  for a = 0 to 15 do
    for b = 0 to 15 do
      List.iter
        (fun cin ->
          let input = Array.concat [ bits_of_int a 4; bits_of_int b 4; [| cin |] ] in
          let out = N.eval spec input in
          let expected = a + b + if cin then 1 else 0 in
          check_int (Printf.sprintf "%d+%d" a b) expected (int_of_bits out))
        [ false; true ]
    done
  done

let test_comp_spec_correct () =
  let { Fam.spec; _ } = Fam.comp ~bits:3 ~boxes:0 ~fault:false in
  for a = 0 to 7 do
    for b = 0 to 7 do
      let input = Array.append (bits_of_int a 3) (bits_of_int b 3) in
      match Array.to_list (N.eval spec input) with
      | [ gt; eq; lt ] ->
          check (Printf.sprintf "%d vs %d" a b) true
            (gt = (a > b) && eq = (a = b) && lt = (a < b))
      | _ -> Alcotest.fail "bad output arity"
    done
  done

let test_bitcell_spec_one_hot () =
  let { Fam.spec; _ } = Fam.bitcell ~cells:5 ~boxes:0 ~fault:false in
  for r = 0 to 31 do
    let input = bits_of_int r 5 in
    let out = N.eval spec input in
    let grants = Array.sub out 0 5 in
    let granted = Array.to_list grants |> List.filter Fun.id |> List.length in
    (* exactly one grant iff any request; winner is the lowest index *)
    if r = 0 then check_int "no grant" 0 granted
    else begin
      check_int "one grant" 1 granted;
      let winner = ref 0 in
      Array.iteri (fun i g -> if g then winner := i) grants;
      let lowest = ref 0 in
      (try
         for i = 0 to 4 do
           if input.(i) then begin
             lowest := i;
             raise Exit
           end
         done
       with Exit -> ());
      check_int "lowest requester wins" !lowest !winner
    end
  done

let test_lookahead_matches_bitcell_grants () =
  let { Fam.spec = la; _ } = Fam.lookahead ~cells:5 ~boxes:0 ~fault:false in
  let { Fam.spec = bc; _ } = Fam.bitcell ~cells:5 ~boxes:0 ~fault:false in
  for r = 0 to 31 do
    let input = bits_of_int r 5 in
    let g1 = Array.sub (N.eval la input) 0 5 in
    let g2 = Array.sub (N.eval bc input) 0 5 in
    check (Printf.sprintf "r=%d" r) true (g1 = g2)
  done

let test_pec_xor_parity () =
  let { Fam.spec; _ } = Fam.pec_xor ~length:6 ~boxes:0 ~fault:false in
  for r = 0 to 63 do
    let input = bits_of_int r 6 in
    let parity = Array.fold_left (fun acc b -> acc <> b) false input in
    check (Printf.sprintf "r=%d" r) parity (N.eval spec input).(0)
  done

let test_z4_multiply_add () =
  let { Fam.spec; _ } = Fam.z4 ~add_bits:2 ~boxes:0 ~fault:false in
  for a = 0 to 3 do
    for b = 0 to 3 do
      for c = 0 to 3 do
        let input = Array.concat [ bits_of_int a 2; bits_of_int b 2; bits_of_int c 2 ] in
        let out = N.eval spec input in
        check_int (Printf.sprintf "%d*%d+%d" a b c) ((a * b) + c) (int_of_bits out)
      done
    done
  done

let test_c432_priority () =
  let { Fam.spec; _ } = Fam.c432 ~groups:2 ~lines:2 ~boxes:0 ~fault:false in
  (* inputs: req00 req01 req10 req11 en0 en1; outputs: line0 line1 any *)
  let eval req00 req01 req10 req11 en0 en1 =
    N.eval spec [| req00; req01; req10; req11; en0; en1 |]
  in
  (* group 0 active wins over group 1 *)
  let out = eval true false false true true true in
  check "line0 from group0" true out.(0);
  check "line1 blocked" false out.(1);
  check "any" true out.(2);
  (* group 0 disabled: group 1 wins *)
  let out = eval true false false true false true in
  check "line0 off" false out.(0);
  check "line1 from group1" true out.(1);
  (* nothing enabled *)
  let out = eval true true true true false false in
  check "quiet" false out.(2)

(* ------------------------------------------- golden boxes = specification *)

let exhaustive_inputs n f =
  if n > 14 then invalid_arg "too many inputs";
  let ok = ref true in
  for r = 0 to (1 lsl n) - 1 do
    if not (f (bits_of_int r n)) then ok := false
  done;
  !ok

let golden_matches_spec inst =
  let { Fam.spec; impl; golden; _ } = inst in
  exhaustive_inputs spec.N.num_inputs (fun input ->
      N.eval spec input = N.eval_with_boxes impl ~box_fn:golden input)

let test_golden_boxes () =
  let cases =
    [
      ("adder", Fam.adder ~bits:3 ~boxes:2 ~fault:false);
      ("bitcell", Fam.bitcell ~cells:4 ~boxes:2 ~fault:false);
      ("lookahead", Fam.lookahead ~cells:4 ~boxes:2 ~fault:false);
      ("pec_xor", Fam.pec_xor ~length:5 ~boxes:2 ~fault:false);
      ("z4", Fam.z4 ~add_bits:2 ~boxes:2 ~fault:false);
      ("comp", Fam.comp ~bits:3 ~boxes:2 ~fault:false);
      ("c432", Fam.c432 ~groups:3 ~lines:2 ~boxes:2 ~fault:false);
    ]
  in
  List.iter (fun (name, inst) -> check name true (golden_matches_spec inst)) cases

let test_fault_breaks_golden () =
  (* with a fault outside the boxes, even the golden boxes cannot match *)
  let cases =
    [
      ("adder", Fam.adder ~bits:3 ~boxes:1 ~fault:true);
      ("bitcell", Fam.bitcell ~cells:4 ~boxes:1 ~fault:true);
      ("lookahead", Fam.lookahead ~cells:4 ~boxes:1 ~fault:true);
      ("pec_xor", Fam.pec_xor ~length:5 ~boxes:1 ~fault:true);
      ("z4", Fam.z4 ~add_bits:2 ~boxes:1 ~fault:true);
      ("comp", Fam.comp ~bits:3 ~boxes:1 ~fault:true);
      ("c432", Fam.c432 ~groups:3 ~lines:2 ~boxes:1 ~fault:true);
    ]
  in
  List.iter (fun (name, inst) -> check name false (golden_matches_spec inst)) cases

(* --------------------------------------------------------- PEC encoding *)

let hqs_verdict inst =
  let v, _ = Hqs.solve_pcnf inst.Fam.pcnf in
  v = Hqs.Sat

let test_pec_sat_instances () =
  let cases =
    [
      ("adder", Fam.adder ~bits:2 ~boxes:2 ~fault:false);
      ("bitcell", Fam.bitcell ~cells:3 ~boxes:2 ~fault:false);
      ("lookahead", Fam.lookahead ~cells:3 ~boxes:2 ~fault:false);
      ("pec_xor", Fam.pec_xor ~length:4 ~boxes:2 ~fault:false);
      ("z4", Fam.z4 ~add_bits:2 ~boxes:1 ~fault:false);
      ("comp", Fam.comp ~bits:2 ~boxes:2 ~fault:false);
      ("c432", Fam.c432 ~groups:2 ~lines:2 ~boxes:1 ~fault:false);
    ]
  in
  List.iter (fun (name, inst) -> check (name ^ " realizable") true (hqs_verdict inst)) cases

let test_pec_unsat_instances () =
  let cases =
    [
      ("adder", Fam.adder ~bits:2 ~boxes:1 ~fault:true);
      ("bitcell", Fam.bitcell ~cells:3 ~boxes:1 ~fault:true);
      ("lookahead", Fam.lookahead ~cells:3 ~boxes:1 ~fault:true);
      ("pec_xor", Fam.pec_xor ~length:4 ~boxes:1 ~fault:true);
      ("z4", Fam.z4 ~add_bits:2 ~boxes:1 ~fault:true);
      ("comp", Fam.comp ~bits:2 ~boxes:1 ~fault:true);
      ("c432", Fam.c432 ~groups:2 ~lines:2 ~boxes:1 ~fault:true);
    ]
  in
  List.iter (fun (name, inst) -> check (name ^ " unrealizable") false (hqs_verdict inst)) cases

let test_pec_idq_agrees () =
  (* iDQ blows up quickly on SAT instances (as in the paper), so this
     cross-check sticks to instances it can solve within seconds *)
  let cases =
    [
      Fam.adder ~bits:2 ~boxes:1 ~fault:true;
      Fam.pec_xor ~length:3 ~boxes:1 ~fault:false;
      Fam.pec_xor ~length:4 ~boxes:1 ~fault:true;
      Fam.bitcell ~cells:3 ~boxes:2 ~fault:false;
      Fam.bitcell ~cells:5 ~boxes:2 ~fault:true;
      Fam.comp ~bits:2 ~boxes:1 ~fault:true;
      Fam.c432 ~groups:2 ~lines:2 ~boxes:1 ~fault:true;
    ]
  in
  List.iter
    (fun inst ->
      let h = hqs_verdict inst in
      let i, _ = Idq.solve_pcnf inst.Fam.pcnf in
      check (inst.Fam.id ^ " idq agrees") h i)
    cases

let test_pec_expansion_agrees () =
  (* small enough for the expansion reference *)
  let cases =
    [
      Fam.adder ~bits:2 ~boxes:1 ~fault:false;
      Fam.adder ~bits:2 ~boxes:1 ~fault:true;
      Fam.pec_xor ~length:3 ~boxes:1 ~fault:false;
      Fam.bitcell ~cells:2 ~boxes:1 ~fault:true;
    ]
  in
  List.iter
    (fun inst ->
      let f = Dqbf.Pcnf.to_formula inst.Fam.pcnf in
      check (inst.Fam.id ^ " expansion agrees") (Dqbf.Reference.by_expansion f)
        (hqs_verdict inst))
    cases

let test_pec_non_qbf () =
  (* two boxes observing different signals: genuinely non-QBF *)
  let inst = Fam.adder ~bits:3 ~boxes:2 ~fault:false in
  let f = Dqbf.Pcnf.to_formula inst.Fam.pcnf in
  check "cyclic dependency graph" false (Dqbf.Depgraph.is_acyclic f);
  (* one box: QBF-expressible *)
  let inst1 = Fam.adder ~bits:3 ~boxes:1 ~fault:false in
  let f1 = Dqbf.Pcnf.to_formula inst1.Fam.pcnf in
  check "acyclic with one box" true (Dqbf.Depgraph.is_acyclic f1)

let test_pec_validates () =
  let insts =
    [
      Fam.adder ~bits:4 ~boxes:3 ~fault:true;
      Fam.bitcell ~cells:6 ~boxes:2 ~fault:false;
      Fam.lookahead ~cells:5 ~boxes:3 ~fault:true;
      Fam.pec_xor ~length:8 ~boxes:3 ~fault:false;
      Fam.z4 ~add_bits:3 ~boxes:2 ~fault:true;
      Fam.comp ~bits:5 ~boxes:2 ~fault:false;
      Fam.c432 ~groups:3 ~lines:3 ~boxes:2 ~fault:true;
    ]
  in
  List.iter
    (fun inst ->
      match Dqbf.Pcnf.validate inst.Fam.pcnf with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" inst.Fam.id e)
    insts

let test_gate_detection_fires_on_pec () =
  (* the PEC encoder emits Tseitin gates; preprocessing must find many *)
  let inst = Fam.adder ~bits:3 ~boxes:2 ~fault:false in
  match Dqbf.Preprocess.run inst.Fam.pcnf with
  | Dqbf.Preprocess.Unsat -> Alcotest.fail "preprocessing refuted a SAT instance"
  | Dqbf.Preprocess.Formula (_, stats) ->
      check "gates found" true (stats.Dqbf.Preprocess.gates > 5)

let () =
  Alcotest.run "circuit"
    [
      ( "netlists",
        [
          Alcotest.test_case "adder adds" `Quick test_adder_spec_correct;
          Alcotest.test_case "comparator compares" `Quick test_comp_spec_correct;
          Alcotest.test_case "bitcell arbiter one-hot" `Quick test_bitcell_spec_one_hot;
          Alcotest.test_case "lookahead = bitcell grants" `Quick test_lookahead_matches_bitcell_grants;
          Alcotest.test_case "pec_xor parity" `Quick test_pec_xor_parity;
          Alcotest.test_case "z4 multiply-add" `Quick test_z4_multiply_add;
          Alcotest.test_case "c432 priority" `Quick test_c432_priority;
        ] );
      ( "boxes",
        [
          Alcotest.test_case "golden boxes recover the spec" `Quick test_golden_boxes;
          Alcotest.test_case "faults defeat golden boxes" `Quick test_fault_breaks_golden;
        ] );
      ( "pec",
        [
          Alcotest.test_case "fault-free instances are SAT" `Slow test_pec_sat_instances;
          Alcotest.test_case "faulty instances are UNSAT" `Slow test_pec_unsat_instances;
          Alcotest.test_case "idq agrees with hqs" `Slow test_pec_idq_agrees;
          Alcotest.test_case "expansion agrees with hqs" `Slow test_pec_expansion_agrees;
          Alcotest.test_case "multi-box instances are non-QBF" `Quick test_pec_non_qbf;
          Alcotest.test_case "encodings validate" `Quick test_pec_validates;
          Alcotest.test_case "gate detection fires" `Quick test_gate_detection_fires_on_pec;
        ] );
    ]
