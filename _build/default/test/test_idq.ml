open Hqs_util
module M = Aig.Man
module F = Dqbf.Formula

let check = Alcotest.(check bool)

type instance = {
  nu : int;
  ne : int;
  dep_masks : int list;
  clauses : (int * bool) list list;
}

let instance_gen =
  QCheck.Gen.(
    int_range 1 3 >>= fun nu ->
    int_range 1 3 >>= fun ne ->
    list_repeat ne (int_bound ((1 lsl nu) - 1)) >>= fun dep_masks ->
    let n = nu + ne in
    list_size (int_range 1 12) (list_size (int_range 1 3) (pair (int_bound (n - 1)) bool))
    >>= fun clauses -> return { nu; ne; dep_masks; clauses })

let instance_print { nu; ne; dep_masks; clauses } =
  Printf.sprintf "nu=%d ne=%d deps=[%s] clauses=%s" nu ne
    (String.concat ";" (List.map string_of_int dep_masks))
    (String.concat " "
       (List.map
          (fun c ->
            String.concat ","
              (List.map (fun (v, s) -> string_of_int (if s then -(v + 1) else v + 1)) c))
          clauses))

let instance_arb = QCheck.make ~print:instance_print instance_gen

let build { nu; ne = _; dep_masks; clauses } =
  let f = F.create () in
  for x = 0 to nu - 1 do
    F.add_universal f x
  done;
  List.iteri
    (fun i mask ->
      let deps =
        Bitset.of_list (List.filter (fun x -> mask land (1 lsl x) <> 0) (List.init nu Fun.id))
      in
      F.add_existential f (nu + i) ~deps)
    dep_masks;
  let man = F.man f in
  let lit (v, s) = M.apply_sign (M.input man v) ~neg:s in
  F.set_matrix f
    (M.mk_and_list man (List.map (fun c -> M.mk_or_list man (List.map lit c)) clauses));
  f

let example1 ~crossed =
  let f = F.create () in
  F.add_universal f 0;
  F.add_universal f 1;
  F.add_existential f 2 ~deps:(Bitset.singleton 0);
  F.add_existential f 3 ~deps:(Bitset.singleton 1);
  let man = F.man f in
  let x1 = M.input man 0 and x2 = M.input man 1 in
  let y1 = M.input man 2 and y2 = M.input man 3 in
  F.set_matrix f
    (if crossed then M.mk_and man (M.mk_iff man y1 x2) (M.mk_iff man y2 x1)
     else M.mk_and man (M.mk_iff man y1 x1) (M.mk_iff man y2 x2));
  f

let test_example1 () =
  let v, stats = Idq.solve (example1 ~crossed:false) in
  check "aligned sat" true v;
  check "some rounds ran" true (stats.Idq.rounds >= 1);
  let v, _ = Idq.solve (example1 ~crossed:true) in
  check "crossed unsat" false v

let test_trivial () =
  let f = F.create () in
  F.set_matrix f M.true_;
  check "true" true (fst (Idq.solve f));
  F.set_matrix f M.false_;
  check "false" false (fst (Idq.solve f))

let test_no_universals () =
  (* pure SAT instance: exists y z: y & !z *)
  let f = F.create () in
  F.add_existential f 0 ~deps:Bitset.empty;
  F.add_existential f 1 ~deps:Bitset.empty;
  let man = F.man f in
  F.set_matrix f (M.mk_and man (M.input man 0) (M.compl_ (M.input man 1)));
  check "sat" true (fst (Idq.solve f))

let test_timeout () =
  Alcotest.check_raises "timeout" Budget.Timeout (fun () ->
      ignore (Idq.solve ~budget:(Budget.of_seconds (-1.0)) (example1 ~crossed:false)))

let test_memout () =
  Alcotest.check_raises "memout" Budget.Out_of_memory_budget (fun () ->
      ignore (Idq.solve ~node_limit:4 (example1 ~crossed:false)))

let prop_agrees =
  QCheck.Test.make ~name:"idq agrees with expansion" ~count:400 instance_arb (fun inst ->
      let f = build inst in
      let expected = Dqbf.Reference.by_expansion f in
      fst (Idq.solve f) = expected)

let prop_agrees_with_hqs =
  QCheck.Test.make ~name:"idq agrees with hqs" ~count:300 instance_arb (fun inst ->
      let f = build inst in
      let v, _ = Hqs.solve_formula f in
      fst (Idq.solve f) = (v = Hqs.Sat))

let prop_rounds_bounded =
  QCheck.Test.make ~name:"idq terminates within 2^n + 1 rounds" ~count:200 instance_arb
    (fun inst ->
      let f = build inst in
      let _, stats = Idq.solve f in
      stats.Idq.rounds <= (1 lsl inst.nu) + 1)

let () =
  Alcotest.run "idq"
    [
      ( "known",
        [
          Alcotest.test_case "example 1" `Quick test_example1;
          Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "no universals" `Quick test_no_universals;
          Alcotest.test_case "timeout" `Quick test_timeout;
          Alcotest.test_case "memout" `Quick test_memout;
        ] );
      ( "random",
        List.map QCheck_alcotest.to_alcotest
          [ prop_agrees; prop_agrees_with_hqs; prop_rounds_bounded ] );
    ]
