open Hqs_util
module M = Aig.Man
module UP = Aig.Unitpure

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------ formula AST as a model *)

type form =
  | Cst of bool
  | V of int
  | Not of form
  | And of form * form
  | Or of form * form
  | Xor of form * form

let rec eval_form env = function
  | Cst b -> b
  | V i -> env i
  | Not f -> not (eval_form env f)
  | And (f, g) -> eval_form env f && eval_form env g
  | Or (f, g) -> eval_form env f || eval_form env g
  | Xor (f, g) -> eval_form env f <> eval_form env g

let rec build man = function
  | Cst b -> if b then M.true_ else M.false_
  | V i -> M.input man i
  | Not f -> M.compl_ (build man f)
  | And (f, g) -> M.mk_and man (build man f) (build man g)
  | Or (f, g) -> M.mk_or man (build man f) (build man g)
  | Xor (f, g) -> M.mk_xor man (build man f) (build man g)

let max_vars = 5

let form_gen =
  QCheck.Gen.(
    sized_size (int_bound 7) (fix (fun self n ->
        if n = 0 then oneof [ map (fun b -> Cst b) bool; map (fun i -> V i) (int_bound (max_vars - 1)) ]
        else
          oneof
            [
              map (fun i -> V i) (int_bound (max_vars - 1));
              map (fun f -> Not f) (self (n - 1));
              map2 (fun f g -> And (f, g)) (self (n / 2)) (self (n / 2));
              map2 (fun f g -> Or (f, g)) (self (n / 2)) (self (n / 2));
              map2 (fun f g -> Xor (f, g)) (self (n / 2)) (self (n / 2));
            ])))

let rec form_print = function
  | Cst b -> string_of_bool b
  | V i -> Printf.sprintf "v%d" i
  | Not f -> Printf.sprintf "!(%s)" (form_print f)
  | And (f, g) -> Printf.sprintf "(%s & %s)" (form_print f) (form_print g)
  | Or (f, g) -> Printf.sprintf "(%s | %s)" (form_print f) (form_print g)
  | Xor (f, g) -> Printf.sprintf "(%s ^ %s)" (form_print f) (form_print g)

let form_arb = QCheck.make ~print:form_print form_gen

let env_of_bits bits i = bits land (1 lsl i) <> 0

let forall_envs f =
  let ok = ref true in
  for bits = 0 to (1 lsl max_vars) - 1 do
    if not (f (env_of_bits bits)) then ok := false
  done;
  !ok

(* ----------------------------------------------------------- basic rules *)

let test_constants () =
  let m = M.create () in
  let a = M.input m 0 in
  check_int "false and x" M.false_ (M.mk_and m M.false_ a);
  check_int "true and x" a (M.mk_and m M.true_ a);
  check_int "x and x" a (M.mk_and m a a);
  check_int "x and !x" M.false_ (M.mk_and m a (M.compl_ a));
  check_int "or of complements" M.true_ (M.mk_or m a (M.compl_ a))

let test_strash_sharing () =
  let m = M.create () in
  let a = M.input m 0 and b = M.input m 1 in
  let x = M.mk_and m a b in
  let y = M.mk_and m b a in
  check_int "commutative sharing" x y;
  check_int "num ands" 1 (M.num_ands m)

let test_input_idempotent () =
  let m = M.create () in
  let a = M.input m 3 in
  let a' = M.input m 3 in
  check_int "same input node" a a';
  check_int "var id" 3 (M.var_of_input m a)

let test_node_limit () =
  let m = M.create ~node_limit:4 () in
  let a = M.input m 0 and b = M.input m 1 in
  (* nodes: const, a, b = 3; one AND allowed, the next must blow *)
  let _ab = M.mk_and m a b in
  Alcotest.check_raises "limit" Budget.Out_of_memory_budget (fun () ->
      ignore (M.mk_and m (M.compl_ a) b))

(* ------------------------------------------------------------- semantics *)

let prop_eval_matches_model =
  QCheck.Test.make ~name:"aig eval matches formula" ~count:500 form_arb (fun f ->
      let m = M.create () in
      let root = build m f in
      forall_envs (fun env -> M.eval m root env = eval_form env f))

let prop_cofactor =
  QCheck.Test.make ~name:"cofactor semantics" ~count:300
    (QCheck.triple form_arb (QCheck.int_bound (max_vars - 1)) QCheck.bool)
    (fun (f, v, b) ->
      let m = M.create () in
      let root = build m f in
      let cof = M.cofactor m root ~var:v ~value:b in
      forall_envs (fun env ->
          let env' i = if i = v then b else env i in
          M.eval m cof env = eval_form env' f))

let prop_cofactor_removes_var =
  QCheck.Test.make ~name:"cofactor removes the variable" ~count:300
    (QCheck.pair form_arb (QCheck.int_bound (max_vars - 1))) (fun (f, v) ->
      let m = M.create () in
      let root = build m f in
      let cof = M.cofactor m root ~var:v ~value:true in
      not (Bitset.mem v (M.support m cof)))

let prop_quantify =
  QCheck.Test.make ~name:"exists/forall semantics" ~count:300
    (QCheck.pair form_arb (QCheck.int_bound (max_vars - 1))) (fun (f, v) ->
      let m = M.create () in
      let root = build m f in
      let ex = M.exists m root ~var:v and fa = M.forall m root ~var:v in
      forall_envs (fun env ->
          let ef b i = if i = v then b else env i in
          M.eval m ex env = (eval_form (ef false) f || eval_form (ef true) f)
          && M.eval m fa env = (eval_form (ef false) f && eval_form (ef true) f)))

let prop_compose =
  QCheck.Test.make ~name:"compose semantics" ~count:300
    (QCheck.triple form_arb form_arb (QCheck.int_bound (max_vars - 1)))
    (fun (f, g, v) ->
      let m = M.create () in
      let root = build m f in
      let sub = build m g in
      let comp = M.compose m root (fun i -> if i = v then Some sub else None) in
      forall_envs (fun env ->
          let env' i = if i = v then eval_form env g else env i in
          M.eval m comp env = eval_form env' f))

let prop_support_sound =
  QCheck.Test.make ~name:"semantic dependence implies support" ~count:300 form_arb
    (fun f ->
      let m = M.create () in
      let root = build m f in
      let sup = M.support m root in
      (* if flipping v changes the value somewhere, v must be in support *)
      let ok = ref true in
      for v = 0 to max_vars - 1 do
        if not (Bitset.mem v sup) then begin
          let depends =
            not
              (forall_envs (fun env ->
                   let env' i = if i = v then not (env i) else env i in
                   eval_form env f = eval_form env' f))
          in
          if depends then ok := false
        end
      done;
      !ok)

let prop_sim_words =
  QCheck.Test.make ~name:"sim_words consistent with eval" ~count:300 form_arb (fun f ->
      let m = M.create () in
      let root = build m f in
      (* word: bit p of var i's word = env_p(i); here pattern p = bits of p *)
      let var_word i =
        let w = ref 0 in
        for p = 0 to (1 lsl max_vars) - 1 do
          if env_of_bits p i then w := !w lor (1 lsl p)
        done;
        !w
      in
      let word = M.sim_words m root var_word in
      let ok = ref true in
      for p = 0 to (1 lsl max_vars) - 1 do
        if word land (1 lsl p) <> 0 <> M.eval m root (env_of_bits p) then ok := false
      done;
      !ok)

let prop_compact =
  QCheck.Test.make ~name:"compact preserves semantics" ~count:300 form_arb (fun f ->
      let m = M.create () in
      let root = build m f in
      (* create garbage *)
      let _garbage = build m (Xor (V 0, V 1)) in
      let m', roots' = M.compact m [ root ] in
      let root' = List.hd roots' in
      M.num_nodes m' <= M.num_nodes m
      && forall_envs (fun env -> M.eval m' root' env = eval_form env f))

(* -------------------------------------------------------- decompositions *)

let prop_and_conjuncts =
  QCheck.Test.make ~name:"and_conjuncts recombine to the root" ~count:300 form_arb (fun f ->
      let m = M.create () in
      let root = build m f in
      let parts = M.and_conjuncts m root in
      let again = M.mk_and_list m parts in
      (* recombination is semantically the root (structurally it may differ
         because of rebalancing) *)
      forall_envs (fun env -> M.eval m again env = M.eval m root env)
      && List.for_all
           (fun part -> forall_envs (fun env -> (not (M.eval m root env)) || M.eval m part env))
           parts)

let prop_or_disjuncts =
  QCheck.Test.make ~name:"or_disjuncts recombine to the root" ~count:300 form_arb (fun f ->
      let m = M.create () in
      let root = build m f in
      let parts = M.or_disjuncts m root in
      let again = M.mk_or_list m parts in
      forall_envs (fun env -> M.eval m again env = M.eval m root env))

let prop_fraig_idempotent =
  QCheck.Test.make ~name:"fraig is idempotent on node counts" ~count:100 form_arb (fun f ->
      let m = M.create () in
      let root = build m f in
      let m1, r1 = Aig.Fraig.reduce m [ root ] in
      let m2, _ = Aig.Fraig.reduce m1 r1 in
      M.num_nodes m2 <= M.num_nodes m1)

(* ------------------------------------------------------------- unit/pure *)

let scan_of f =
  let m = M.create () in
  let root = build m f in
  (m, root, UP.scan m root)

let status_of scans v = try List.assoc v scans with Not_found -> UP.no_status

let test_unitpure_literal () =
  let _, _, s = scan_of (V 0) in
  let st = status_of s 0 in
  check "v: pos unit" true st.UP.pos_unit;
  check "v: pos pure" true st.UP.pos_pure;
  check "v: not neg unit" false st.UP.neg_unit;
  let _, _, s = scan_of (Not (V 0)) in
  let st = status_of s 0 in
  check "!v: neg unit" true st.UP.neg_unit;
  check "!v: neg pure" true st.UP.neg_pure

let test_unitpure_conj () =
  let _, _, s = scan_of (And (V 0, Not (V 1))) in
  let s0 = status_of s 0 and s1 = status_of s 1 in
  check "v0 pos unit" true s0.UP.pos_unit;
  check "v0 pos pure" true s0.UP.pos_pure;
  check "v1 neg unit" true s1.UP.neg_unit;
  check "v1 neg pure" true s1.UP.neg_pure

let test_unitpure_disj () =
  let _, _, s = scan_of (Or (V 0, V 1)) in
  let s0 = status_of s 0 in
  check "no unit through or" false s0.UP.pos_unit;
  check "pos pure through or" true s0.UP.pos_pure

let test_unitpure_xor () =
  let _, _, s = scan_of (Xor (V 0, V 1)) in
  let s0 = status_of s 0 in
  check "xor not pure" false (s0.UP.pos_pure || s0.UP.neg_pure);
  check "xor not unit" false (s0.UP.pos_unit || s0.UP.neg_unit)

let test_unitpure_cnf_structure () =
  (* the function of Fig. 1 built as a plain CNF AIG:
     (y1 | x1) & (y1 | x2) & (y2 | !x1) & (y2 | !x2); y1 and y2 are
     positive pure here, x1 and x2 are mixed *)
  let y1 = V 0 and y2 = V 1 and x1 = V 2 and x2 = V 3 in
  let f = And (And (Or (y1, x1), Or (y1, x2)), And (Or (y2, Not x1), Or (y2, Not x2))) in
  let _, _, s = scan_of f in
  check "y1 pos pure" true (status_of s 0).UP.pos_pure;
  check "y2 pos pure" true (status_of s 1).UP.pos_pure;
  check "x1 mixed" false ((status_of s 2).UP.pos_pure || (status_of s 2).UP.neg_pure);
  check "x2 mixed" false ((status_of s 3).UP.pos_pure || (status_of s 3).UP.neg_pure)

(* semantic validation of the syntactic claims, per Definition 5 *)
let prop_unitpure_sound =
  QCheck.Test.make ~name:"syntactic unit/pure implies semantic" ~count:500 form_arb
    (fun f ->
      let _, _, scans = scan_of f in
      List.for_all
        (fun (v, st) ->
          let sat value =
            (* is f[value/v] satisfiable? *)
            let found = ref false in
            for bits = 0 to (1 lsl max_vars) - 1 do
              let env i = if i = v then value else env_of_bits bits i in
              if eval_form env f then found := true
            done;
            !found
          in
          let implies_01 =
            (* f[0/v] -> f[1/v] valid? *)
            forall_envs (fun env ->
                let e b i = if i = v then b else env i in
                (not (eval_form (e false) f)) || eval_form (e true) f)
          in
          let implies_10 =
            forall_envs (fun env ->
                let e b i = if i = v then b else env i in
                (not (eval_form (e true) f)) || eval_form (e false) f)
          in
          ((not st.UP.pos_unit) || not (sat false))
          && ((not st.UP.neg_unit) || not (sat true))
          && ((not st.UP.pos_pure) || implies_01)
          && ((not st.UP.neg_pure) || implies_10))
        scans)

(* ----------------------------------------------------------------- fraig *)

let prop_fraig_preserves =
  QCheck.Test.make ~name:"fraig preserves semantics" ~count:200 form_arb (fun f ->
      let m = M.create () in
      let root = build m f in
      let m', roots' = Aig.Fraig.reduce m [ root ] in
      let root' = List.hd roots' in
      forall_envs (fun env -> M.eval m' root' env = eval_form env f))

let prop_fraig_merges_equivalents =
  QCheck.Test.make ~name:"fraig merges equivalent roots" ~count:100
    (QCheck.pair form_arb form_arb) (fun (f, g) ->
      (* two structurally different builds of f XOR the same g *)
      let m = M.create () in
      let r1 = build m (Xor (f, g)) in
      let r2 =
        (* xor via (f|g) & !(f&g) *)
        let a = build m (Or (f, g)) and b = build m (And (f, g)) in
        M.mk_and m a (M.compl_ b)
      in
      let m', roots' = Aig.Fraig.reduce m [ r1; r2 ] in
      match roots' with
      | [ a; b ] ->
          a = b
          && forall_envs (fun env -> M.eval m' a env = eval_form env (Xor (f, g)))
      | _ -> false)

let test_fraig_assoc () =
  let m = M.create () in
  let a = M.input m 0 and b = M.input m 1 and c = M.input m 2 in
  let f = M.mk_and m (M.mk_and m a b) c in
  let g = M.mk_and m a (M.mk_and m b c) in
  let _, roots = Aig.Fraig.reduce m [ f; g ] in
  match roots with
  | [ x; y ] -> check "assoc merged" true (x = y)
  | _ -> Alcotest.fail "bad arity"

let test_fraig_constant_collapse () =
  (* (a & !a) | (b & !b) reduces to constant false structurally, but a
     disguised tautology needs the SAT proof: (a|!b)&(!a|b)&(a|b)&(!a|!b) *)
  let m = M.create () in
  let a = M.input m 0 and b = M.input m 1 in
  let c1 = M.mk_or m a (M.compl_ b) in
  let c2 = M.mk_or m (M.compl_ a) b in
  let c3 = M.mk_or m a b in
  let c4 = M.mk_or m (M.compl_ a) (M.compl_ b) in
  let f = M.mk_and_list m [ c1; c2; c3; c4 ] in
  let zero = M.false_ in
  let m', roots = Aig.Fraig.reduce m [ f; zero ] in
  match roots with
  | [ x; y ] ->
      check "unsat cone equals constant" true (x = y);
      ignore m'
  | _ -> Alcotest.fail "bad arity"

(* --------------------------------------------------------------- cnf enc *)

let prop_cnf_enc =
  QCheck.Test.make ~name:"cnf encoding agrees with eval" ~count:200 form_arb (fun f ->
      let m = M.create () in
      let root = build m f in
      let solver = Sat.Solver.create () in
      let enc = Aig.Cnf_enc.create solver in
      let out = Aig.Cnf_enc.sat_lit m enc root in
      forall_envs (fun env ->
          (* fix inputs with assumptions; out must be forced to eval value *)
          let assumptions =
            List.init max_vars (fun v ->
                Sat.Lit.apply_sign (Aig.Cnf_enc.sat_var_of_aig_var m enc v) ~neg:(not (env v)))
          in
          let expect = eval_form env f in
          let r = Sat.Solver.solve ~assumptions:(assumptions @ [ Sat.Lit.apply_sign out ~neg:(not expect) ]) solver in
          r = Sat.Solver.Sat))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "aig"
    [
      ( "construction",
        [
          Alcotest.test_case "constant rules" `Quick test_constants;
          Alcotest.test_case "strash sharing" `Quick test_strash_sharing;
          Alcotest.test_case "input idempotent" `Quick test_input_idempotent;
          Alcotest.test_case "node limit" `Quick test_node_limit;
        ] );
      ( "semantics",
        qsuite
          [
            prop_eval_matches_model;
            prop_cofactor;
            prop_cofactor_removes_var;
            prop_quantify;
            prop_compose;
            prop_support_sound;
            prop_sim_words;
            prop_compact;
            prop_and_conjuncts;
            prop_or_disjuncts;
            prop_fraig_idempotent;
          ] );
      ( "unitpure",
        [
          Alcotest.test_case "literals" `Quick test_unitpure_literal;
          Alcotest.test_case "conjunction" `Quick test_unitpure_conj;
          Alcotest.test_case "disjunction" `Quick test_unitpure_disj;
          Alcotest.test_case "xor" `Quick test_unitpure_xor;
          Alcotest.test_case "paper CNF example" `Quick test_unitpure_cnf_structure;
        ]
        @ qsuite [ prop_unitpure_sound ] );
      ( "fraig",
        [
          Alcotest.test_case "associativity merge" `Quick test_fraig_assoc;
          Alcotest.test_case "disguised constant" `Quick test_fraig_constant_collapse;
        ]
        @ qsuite [ prop_fraig_preserves; prop_fraig_merges_equivalents ] );
      ("cnf_enc", qsuite [ prop_cnf_enc ]);
    ]
