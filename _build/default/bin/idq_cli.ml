(* idq: solve a DQDIMACS file with the instantiation-based baseline. *)

open Cmdliner

let solve file timeout node_limit show_stats =
  let pcnf =
    try Dqbf.Pcnf.parse_file file
    with Failure msg | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  in
  (match Dqbf.Pcnf.validate pcnf with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "invalid input: %s\n" msg;
      exit 2);
  let budget =
    match timeout with
    | None -> Hqs_util.Budget.unlimited
    | Some s -> Hqs_util.Budget.of_seconds s
  in
  match Idq.solve_pcnf ~budget ?node_limit pcnf with
  | answer, stats ->
      if show_stats then
        Printf.eprintf "c rounds=%d ground-vars=%d instance-nodes=%d total=%.3fs\n"
          stats.Idq.rounds stats.Idq.ground_vars stats.Idq.instance_nodes stats.Idq.total_time;
      if answer then begin
        print_endline "s cnf SAT";
        exit 10
      end
      else begin
        print_endline "s cnf UNSAT";
        exit 20
      end
  | exception Hqs_util.Budget.Timeout ->
      print_endline "s cnf TIMEOUT";
      exit 1
  | exception Hqs_util.Budget.Out_of_memory_budget ->
      print_endline "s cnf MEMOUT";
      exit 1

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"DQDIMACS input")

let timeout =
  Arg.(value & opt (some float) None & info [ "timeout"; "t" ] ~docv:"SECONDS" ~doc:"wall-clock limit")

let node_limit =
  Arg.(
    value
    & opt (some int) None
    & info [ "node-limit" ] ~docv:"N" ~doc:"ground-instance AIG node budget")

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"print statistics to stderr")

let cmd =
  let doc = "instantiation-based DQBF solving (iDQ-style baseline)" in
  Cmd.v (Cmd.info "idq" ~doc) Term.(const solve $ file $ timeout $ node_limit $ stats)

let () = exit (Cmd.eval' cmd)
