(* hqs: solve a DQDIMACS file with the elimination-based solver. Exit code
   10 = SAT, 20 = UNSAT (the SAT-competition convention), 1 = aborted. *)

open Cmdliner

let solve file timeout node_limit no_preprocess no_unitpure no_maxsat no_thm2 bce expand_all
    sat_probe no_fraig search_backend show_model show_stats =
  let pcnf =
    try Dqbf.Pcnf.parse_file file
    with Failure msg | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  in
  (match Dqbf.Pcnf.validate pcnf with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "invalid input: %s\n" msg;
      exit 2);
  let config =
    {
      Hqs.default_config with
      preprocess =
        (if no_preprocess then Dqbf.Preprocess.off
         else { Dqbf.Preprocess.default_config with blocked_clauses = bce });
      use_unitpure = not no_unitpure;
      use_maxsat = not no_maxsat;
      use_thm2 = not no_thm2;
      use_fraig = not no_fraig;
      mode = (if expand_all then Hqs.Expand_all else Hqs.Elimination);
      use_sat_probe = sat_probe;
      qbf_backend = (if search_backend then Hqs.Search_backend else Hqs.Elim_backend);
      node_limit;
    }
  in
  let budget =
    match timeout with
    | None -> Hqs_util.Budget.unlimited
    | Some s -> Hqs_util.Budget.of_seconds s
  in
  let run () =
    if show_model then begin
      let verdict, model, stats = Hqs.solve_pcnf_model ~config ~budget pcnf in
      (match (verdict, model) with
      | Hqs.Sat, Some model ->
          (* print each Skolem function as a truth table over its deps *)
          List.iter
            (fun (y, deps) ->
              Printf.printf "v %d :" (y + 1);
              let k = List.length deps in
              if k <= 6 then
                for bits = 0 to (1 lsl k) - 1 do
                  let env v =
                    match List.find_index (fun d -> d = v) deps with
                    | Some i -> bits land (1 lsl i) <> 0
                    | None -> false
                  in
                  Printf.printf " %d" (if Dqbf.Skolem.eval model y env then 1 else 0)
                done
              else Printf.printf " <%d-input function>" k;
              print_newline ())
            pcnf.Dqbf.Pcnf.exists;
          (* independent certificate check *)
          let original = Dqbf.Pcnf.to_formula pcnf in
          (match Dqbf.Skolem.verify original model with
          | Ok () -> print_endline "c model verified"
          | Error e -> Format.printf "c MODEL REJECTED: %a@." Dqbf.Skolem.pp_failure e)
      | _ -> ());
      (verdict, stats)
    end
    else Hqs.solve_pcnf ~config ~budget pcnf
  in
  match run () with
  | verdict, stats ->
      if show_stats then Format.eprintf "c %a@." Hqs.pp_stats stats;
      (match verdict with
      | Hqs.Sat ->
          print_endline "s cnf SAT";
          exit 10
      | Hqs.Unsat ->
          print_endline "s cnf UNSAT";
          exit 20)
  | exception Hqs_util.Budget.Timeout ->
      print_endline "s cnf TIMEOUT";
      exit 1
  | exception Hqs_util.Budget.Out_of_memory_budget ->
      print_endline "s cnf MEMOUT";
      exit 1

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"DQDIMACS input")

let timeout =
  Arg.(value & opt (some float) None & info [ "timeout"; "t" ] ~docv:"SECONDS" ~doc:"wall-clock limit")

let node_limit =
  Arg.(
    value
    & opt (some int) None
    & info [ "node-limit" ] ~docv:"N" ~doc:"AIG node budget (memout emulation)")

let flag names doc = Arg.(value & flag & info names ~doc)

let cmd =
  let doc = "solve a DQBF by quantifier elimination (HQS, DATE 2015)" in
  Cmd.v
    (Cmd.info "hqs" ~doc)
    Term.(
      const solve $ file $ timeout $ node_limit
      $ flag [ "no-preprocess" ] "disable CNF preprocessing"
      $ flag [ "no-unitpure" ] "disable unit/pure detection on the AIG"
      $ flag [ "no-maxsat" ] "use the greedy elimination set instead of MaxSAT"
      $ flag [ "no-thm2" ] "disable elimination of fully-dependent existentials"
      $ flag [ "bce" ] "enable blocked-clause elimination (SAT'15 extension)"
      $ flag [ "expand-all" ] "eliminate every universal (ICCD'13 baseline)"
      $ flag [ "sat-probe" ] "start with a plain SAT call on the matrix"
      $ flag [ "no-fraig" ] "disable FRAIG sweeping"
      $ flag [ "search-backend" ] "use the QDPLL search back end instead of AIG elimination"
      $ flag [ "model" ] "on SAT, print and verify Skolem functions"
      $ flag [ "stats" ] "print statistics to stderr")

let () = exit (Cmd.eval' cmd)
