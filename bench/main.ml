(* Benchmark harness: regenerates the paper's evaluation artifacts.

   - Table I: per-family solved/unsolved breakdown, HQS vs iDQ
   - Fig. 4: per-instance runtime scatter (data + ASCII log-log plot)
   - Headline claims of Section IV
   - Ablations of the design choices called out in DESIGN.md
   - Bechamel micro-benchmarks of the core operations

   Environment knobs:
     BENCH_TIMEOUT  per-instance wall-clock seconds   (default 5)
     BENCH_NODES    AIG node budget = memout emulation (default 400000)
     BENCH_QUICK=1  small suite for smoke runs
     BENCH_MICRO=0  skip the Bechamel section
     BENCH_OBS_ONLY=1  only write the observability baseline, then exit
     BENCH_OBS_OUT  path of the baseline file (default BENCH_obs.json)
     BENCH_DEP_SCHEME  dependency scheme for the suite runs: trivial | rp
                    (default: the solver default, rp)
     BENCH_ANALYSIS_ONLY=1  only write the dependency-scheme baseline
     BENCH_ANALYSIS_OUT  path of that file (default BENCH_analysis.json)
     BENCH_INPROC_ONLY=1  only write the inprocessing-engine baseline
     BENCH_INPROC_OUT  path of that file (default BENCH_inproc.json)
     BENCH_JOBS     supervised sweep workers           (default 1)
     BENCH_JOURNAL  append completed tasks to this crash-safe JSONL file
     BENCH_RESUME   skip tasks already journaled in this file
     BENCH_INPROC=1 legacy in-process sweep (no fork isolation) *)

module Fam = Circuit.Families
module R = Harness.Runner

let env_float name default =
  match Sys.getenv_opt name with Some s -> float_of_string s | None -> default

let env_int name default =
  match Sys.getenv_opt name with Some s -> int_of_string s | None -> default

let env_bool name default =
  match Sys.getenv_opt name with Some ("0" | "false") -> false | Some _ -> true | None -> default

let timeout = env_float "BENCH_TIMEOUT" 5.0
let node_limit = env_int "BENCH_NODES" 400_000
let quick = env_bool "BENCH_QUICK" false

let dep_scheme =
  match Sys.getenv_opt "BENCH_DEP_SCHEME" with
  | None | Some "" -> Analysis.Scheme.default
  | Some s -> (
      match Analysis.Scheme.of_string s with
      | Some t -> t
      | None ->
          Printf.eprintf "BENCH_DEP_SCHEME: unknown scheme %S (trivial|rp)\n" s;
          exit 2)

let bench_hqs_config = { Hqs.default_config with Hqs.dep_scheme }

(* ------------------------------------------------------------- the suite *)

(* scaled-down analogue of the paper's 1820 instances; the SAT/UNSAT mix
   is UNSAT-heavy, as in Table I *)
let suite () =
  let adder =
    List.concat_map
      (fun bits ->
        List.concat_map
          (fun boxes ->
            Fam.adder ~bits ~boxes ~fault:true
            :: (if boxes <= 2 then [ Fam.adder ~bits ~boxes ~fault:false ] else []))
          [ 1; 2; 3 ])
      [ 1; 2; 3; 4 ]
    @ [
        Fam.adder ~bits:5 ~boxes:1 ~fault:true;
        Fam.adder ~bits:5 ~boxes:2 ~fault:true;
        Fam.adder ~bits:5 ~boxes:1 ~fault:false;
        Fam.adder ~bits:5 ~boxes:2 ~fault:false;
      ]
  in
  let chain_family make sizes =
    List.concat_map
      (fun cells ->
        [
          make ~cells ~boxes:1 ~fault:true;
          make ~cells ~boxes:2 ~fault:true;
          make ~cells ~boxes:2 ~fault:false;
        ])
      sizes
    @ [ make ~cells:16 ~boxes:3 ~fault:true; make ~cells:16 ~boxes:3 ~fault:false ]
  in
  let bitcell = chain_family (fun ~cells ~boxes ~fault -> Fam.bitcell ~cells ~boxes ~fault)
      [ 2; 3; 4; 6; 8; 10; 12; 14 ]
  in
  let lookahead = chain_family (fun ~cells ~boxes ~fault -> Fam.lookahead ~cells ~boxes ~fault)
      [ 2; 3; 4; 6; 8; 10; 12; 14 ]
  in
  let pec_xor =
    List.concat_map
      (fun length ->
        [ Fam.pec_xor ~length ~boxes:1 ~fault:true; Fam.pec_xor ~length ~boxes:2 ~fault:true ])
      [ 3; 4; 5; 6; 8; 10; 12 ]
    @ List.map (fun length -> Fam.pec_xor ~length ~boxes:2 ~fault:false) [ 3; 4; 5; 6; 8; 10 ]
  in
  let z4 =
    List.concat_map
      (fun add_bits ->
        List.concat_map
          (fun boxes ->
            [ Fam.z4 ~add_bits ~boxes ~fault:true; Fam.z4 ~add_bits ~boxes ~fault:false ])
          [ 1; 2; 3 ])
      [ 1; 2 ]
    @ [
        Fam.z4 ~add_bits:3 ~boxes:1 ~fault:true;
        Fam.z4 ~add_bits:3 ~boxes:1 ~fault:false;
        Fam.z4 ~add_bits:3 ~boxes:2 ~fault:true;
        Fam.z4 ~add_bits:3 ~boxes:2 ~fault:false;
      ]
  in
  let comp =
    List.concat_map
      (fun bits ->
        [ Fam.comp ~bits ~boxes:1 ~fault:true; Fam.comp ~bits ~boxes:2 ~fault:true ])
      [ 2; 4; 6; 8; 10; 12 ]
    @ List.map (fun bits -> Fam.comp ~bits ~boxes:2 ~fault:false) [ 2; 4; 6; 8; 10 ]
    @ [
        Fam.comp ~bits:12 ~boxes:3 ~fault:false;
        Fam.comp ~bits:14 ~boxes:3 ~fault:false;
        Fam.comp ~bits:14 ~boxes:3 ~fault:true;
        Fam.comp ~bits:16 ~boxes:3 ~fault:true;
        Fam.comp ~bits:16 ~boxes:3 ~fault:false;
      ]
  in
  let c432 =
    List.concat_map
      (fun lines ->
        List.concat_map
          (fun boxes ->
            [
              Fam.c432 ~groups:3 ~lines ~boxes ~fault:true;
              Fam.c432 ~groups:3 ~lines ~boxes ~fault:false;
            ])
          [ 1; 2 ])
      [ 2; 3; 5; 7 ]
    @ [
        Fam.c432 ~groups:2 ~lines:2 ~boxes:1 ~fault:true;
        Fam.c432 ~groups:2 ~lines:2 ~boxes:1 ~fault:false;
        Fam.c432 ~groups:3 ~lines:9 ~boxes:3 ~fault:true;
        Fam.c432 ~groups:3 ~lines:9 ~boxes:3 ~fault:false;
      ]
  in
  let all = adder @ bitcell @ lookahead @ pec_xor @ z4 @ comp @ c432 in
  if quick then
    List.filteri (fun i _ -> i mod 4 = 0) all
  else all

(* ------------------------------------------------------------ experiment *)

let short = function
  | R.Solved (true, t) -> Printf.sprintf "SAT %.2fs" t
  | R.Solved (false, t) -> Printf.sprintf "UNSAT %.2fs" t
  | R.Timeout _ -> "TO"
  | R.Memout _ -> "MO"
  | R.Crash _ -> "CRASH"

let run_suite_inproc instances =
  let n = List.length instances in
  List.mapi
    (fun i inst ->
      Printf.eprintf "[%3d/%d] %-28s%!" (i + 1) n inst.Fam.id;
      let r = R.run_instance ~hqs_config:bench_hqs_config ~timeout ~node_limit inst in
      Printf.eprintf " hqs: %-12s idq: %-12s\n%!" (short r.R.hqs) (short r.R.idq);
      r)
    instances

(* default path: every (instance, solver) task in its own forked worker
   under the supervisor, so one wedged or crashing solve cannot take the
   whole benchmark down; the kernel wall limit is a backstop over the
   in-process timeout *)
let run_suite_supervised instances =
  let jobs = env_int "BENCH_JOBS" 1 in
  let journal = Sys.getenv_opt "BENCH_JOURNAL" in
  let resume = Sys.getenv_opt "BENCH_RESUME" in
  let config =
    {
      (Harness.Sweep.default_config ~timeout ~node_limit) with
      Harness.Sweep.hqs_config = Some bench_hqs_config;
      exec =
        {
          Exec.Supervisor.default_config with
          Exec.Supervisor.jobs;
          limits = { Exec.Limits.none with Exec.Limits.wall_s = Some ((2.0 *. timeout) +. 10.0) };
        };
    }
  in
  let n = 2 * List.length instances in
  let count = ref 0 in
  let on_progress (p : Harness.Sweep.progress) =
    incr count;
    Printf.eprintf "[%3d/%d] %-32s %-12s%s\n%!" !count n p.Harness.Sweep.task
      (short p.Harness.Sweep.outcome)
      (if p.Harness.Sweep.from_journal then " (journal)"
       else if p.Harness.Sweep.attempts > 1 then Printf.sprintf " (%d attempts)" p.Harness.Sweep.attempts
       else "")
  in
  let rep = Harness.Sweep.run_instances ~config ?journal ?resume ~on_progress instances in
  Printf.eprintf "sweep: %d tasks executed, %d from journal%s\n%!" rep.Harness.Sweep.executed
    rep.Harness.Sweep.journaled
    (if rep.Harness.Sweep.journal_dropped > 0 then
       Printf.sprintf ", %d torn journal lines dropped" rep.Harness.Sweep.journal_dropped
     else "");
  rep.Harness.Sweep.results

let run_suite instances =
  if env_bool "BENCH_INPROC" false then run_suite_inproc instances
  else run_suite_supervised instances

(* ------------------------------------------------------------- ablations *)

let ablations () =
  let cases =
    [
      Fam.adder ~bits:3 ~boxes:2 ~fault:true;
      Fam.adder ~bits:3 ~boxes:2 ~fault:false;
      Fam.bitcell ~cells:8 ~boxes:2 ~fault:true;
      Fam.bitcell ~cells:8 ~boxes:2 ~fault:false;
      Fam.lookahead ~cells:8 ~boxes:2 ~fault:false;
      Fam.pec_xor ~length:8 ~boxes:2 ~fault:true;
      Fam.comp ~bits:8 ~boxes:2 ~fault:true;
      Fam.c432 ~groups:3 ~lines:3 ~boxes:2 ~fault:true;
    ]
  in
  let configs =
    [
      ("default", Hqs.default_config);
      ("greedy-set", { Hqs.default_config with use_maxsat = false });
      ("no-unitpure", { Hqs.default_config with use_unitpure = false });
      ( "no-gates",
        {
          Hqs.default_config with
          preprocess = { Dqbf.Preprocess.default_config with gate_detection = false };
        } );
      ("no-fraig", { Hqs.default_config with use_fraig = false });
      ("expand-all", { Hqs.default_config with mode = Hqs.Expand_all });
      ("qdpll-qbf", { Hqs.default_config with qbf_backend = Hqs.Search_backend });
      ( "bce",
        {
          Hqs.default_config with
          preprocess = { Dqbf.Preprocess.default_config with blocked_clauses = true };
        } );
    ]
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%-24s" "instance");
  List.iter (fun (name, _) -> Buffer.add_string buf (Printf.sprintf " %12s" name)) configs;
  Buffer.add_string buf "\n";
  List.iter
    (fun inst ->
      Buffer.add_string buf (Printf.sprintf "%-24s" inst.Fam.id);
      List.iter
        (fun (_, config) ->
          let cell =
            match fst (R.run_hqs ~config ~timeout ~node_limit inst.Fam.pcnf) with
            | R.Solved (_, t) -> Printf.sprintf "%.3fs" t
            | R.Timeout _ -> "TO"
            | R.Memout _ -> "MO"
            | R.Crash _ -> "CRASH"
          in
          Buffer.add_string buf (Printf.sprintf " %12s" cell))
        configs;
      Buffer.add_string buf "\n")
    cases;
  Buffer.contents buf

(* ------------------------------------------------- observability baseline *)

(* One small instance per family, solved under tracing: per-phase wall
   times (span totals), the per-solve metric registry delta and the
   verdict land in BENCH_obs.json, so a perf regression in any one phase
   shows up as a diff against the committed baseline rather than only as
   a total-time drift. BENCH_OBS_ONLY=1 runs just this section. *)

let obs_cases () =
  [
    Fam.adder ~bits:2 ~boxes:2 ~fault:true;
    Fam.bitcell ~cells:4 ~boxes:2 ~fault:true;
    Fam.lookahead ~cells:4 ~boxes:2 ~fault:false;
    Fam.pec_xor ~length:4 ~boxes:2 ~fault:true;
    Fam.z4 ~add_bits:1 ~boxes:2 ~fault:true;
    Fam.comp ~bits:4 ~boxes:2 ~fault:true;
    Fam.c432 ~groups:3 ~lines:3 ~boxes:2 ~fault:false;
  ]

let time_ns_per_call f iters =
  let t0 = Hqs_util.Budget.now () in
  for _ = 1 to iters do
    f ()
  done;
  (Hqs_util.Budget.now () -. t0) *. 1e9 /. float_of_int iters

(* cost of a Span.with_ call while tracing is off, net of the thunk — the
   number behind the "disabled tracing is one branch" claim *)
let disabled_span_overhead_ns () =
  assert (not (Obs.Trace.enabled ()));
  let sink = ref 0 in
  let bare () = incr sink in
  let wrapped () = Obs.Span.with_ "bench.overhead" bare in
  let iters = 2_000_000 in
  ignore (time_ns_per_call wrapped (iters / 10));
  ignore (time_ns_per_call bare (iters / 10));
  let w = time_ns_per_call wrapped iters in
  let b = time_ns_per_call bare iters in
  Float.max 0.0 (w -. b)

let json_str s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Per-family wall/phase/metric series derived from the same solves as
   BENCH_obs.json, in the shape bin/benchdiff consumes: one point per
   run, appended over time if regenerated with history. The committed
   copy is the regression-gate baseline. *)
let write_trajectory traj =
  let out =
    match Sys.getenv_opt "BENCH_TRAJECTORY_OUT" with
    | Some p -> p
    | None -> "BENCH_trajectory.json"
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": \"hqs-trajectory/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"timeout_s\": %g,\n" timeout);
  Buffer.add_string buf (Printf.sprintf "  \"node_limit\": %d,\n" node_limit);
  Buffer.add_string buf "  \"families\": {\n";
  let nf = List.length traj in
  List.iteri
    (fun i (family, series) ->
      Buffer.add_string buf (Printf.sprintf "    %s: {\n" (json_str family));
      let ns = List.length series in
      List.iteri
        (fun j (key, v) ->
          Buffer.add_string buf
            (Printf.sprintf "      %s: [ %g ]%s\n" (json_str key) v
               (if j < ns - 1 then "," else "")))
        series;
      Buffer.add_string buf (Printf.sprintf "    }%s\n" (if i < nf - 1 then "," else "")))
    traj;
  Buffer.add_string buf "  }\n}\n";
  let body = Buffer.contents buf in
  (match Obs.Json.parse body with
  | Ok _ -> ()
  | Error msg -> Printf.eprintf "trajectory baseline: generated invalid JSON (%s)\n%!" msg);
  let oc = open_out out in
  output_string oc body;
  close_out oc;
  Printf.printf "trajectory baseline written to %s\n" out

let obs_baseline () =
  let out = match Sys.getenv_opt "BENCH_OBS_OUT" with Some p -> p | None -> "BENCH_obs.json" in
  let overhead = disabled_span_overhead_ns () in
  let traj = ref [] in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"timeout_s\": %g,\n" timeout);
  Buffer.add_string buf (Printf.sprintf "  \"node_limit\": %d,\n" node_limit);
  Buffer.add_string buf (Printf.sprintf "  \"disabled_span_ns_per_call\": %.2f,\n" overhead);
  Buffer.add_string buf "  \"instances\": [\n";
  let cases = obs_cases () in
  let n = List.length cases in
  List.iteri
    (fun i inst ->
      Obs.Sampler.reset ();
      Obs.Trace.reset ();
      Obs.Trace.start ();
      let before = Obs.Metrics.snapshot () in
      let budget = Hqs_util.Budget.of_seconds timeout in
      let config = { Hqs.default_config with node_limit = Some node_limit } in
      let t0 = Hqs_util.Budget.now () in
      let verdict =
        match Hqs.solve_pcnf ~config ~budget inst.Fam.pcnf with
        | Hqs.Sat, _ -> "SAT"
        | Hqs.Unsat, _ -> "UNSAT"
        | exception Hqs_util.Budget.Timeout -> "TO"
        | exception Hqs_util.Budget.Out_of_memory_budget -> "MO"
      in
      let elapsed = Hqs_util.Budget.now () -. t0 in
      Obs.Trace.stop ();
      let phases = Obs.Trace.totals () in
      let delta = Obs.Metrics.delta ~before ~after:(Obs.Metrics.snapshot ()) in
      traj :=
        ( inst.Fam.family,
          (("wall_s", elapsed)
          :: List.map
               (fun t ->
                 (Printf.sprintf "phase.%s.total_s" t.Obs.Trace.span, t.Obs.Trace.total_s))
               phases)
          @ List.map
              (fun (name, v) -> (Printf.sprintf "metric.%s" name, v))
              (Obs.Metrics.to_assoc delta) )
        :: !traj;
      Buffer.add_string buf "    {\n";
      Buffer.add_string buf
        (Printf.sprintf "      \"id\": %s, \"family\": %s, \"verdict\": %s, \"time_s\": %.4f,\n"
           (json_str inst.Fam.id) (json_str inst.Fam.family) (json_str verdict) elapsed);
      Buffer.add_string buf "      \"phases\": {\n";
      List.iteri
        (fun j t ->
          Buffer.add_string buf
            (Printf.sprintf "        %s: { \"calls\": %d, \"total_s\": %.4f, \"self_s\": %.4f }%s\n"
               (json_str t.Obs.Trace.span) t.Obs.Trace.calls t.Obs.Trace.total_s t.Obs.Trace.self_s
               (if j < List.length phases - 1 then "," else "")))
        phases;
      Buffer.add_string buf "      },\n";
      Buffer.add_string buf "      \"metrics\": {\n";
      let assoc = Obs.Metrics.to_assoc delta in
      List.iteri
        (fun j (name, v) ->
          Buffer.add_string buf
            (Printf.sprintf "        %s: %g%s\n" (json_str name) v
               (if j < List.length assoc - 1 then "," else "")))
        assoc;
      Buffer.add_string buf "      }\n";
      Buffer.add_string buf (Printf.sprintf "    }%s\n" (if i < n - 1 then "," else ""));
      Printf.eprintf "[obs %d/%d] %-28s %s %.3fs\n%!" (i + 1) n inst.Fam.id verdict elapsed)
    cases;
  Buffer.add_string buf "  ]\n}\n";
  let body = Buffer.contents buf in
  (match Obs.Json.parse body with
  | Ok _ -> ()
  | Error msg -> Printf.eprintf "obs baseline: generated invalid JSON (%s)\n%!" msg);
  let oc = open_out out in
  output_string oc body;
  close_out oc;
  Printf.printf "observability baseline written to %s (disabled span: %.1f ns/call)\n" out
    overhead;
  write_trajectory (List.rev !traj)

(* ---------------------------------------- dependency-scheme baseline *)

(* One small instance per family, solved under both schemes: verdicts
   must agree, and the per-family MaxSAT elimination-set delta (trivial
   vs rp) lands in BENCH_analysis.json so a regression in the static
   analyzer's pruning power shows up as a baseline diff.
   BENCH_ANALYSIS_ONLY=1 runs just this section. *)

let analysis_cases () =
  [
    Fam.adder ~bits:3 ~boxes:2 ~fault:true;
    Fam.bitcell ~cells:6 ~boxes:2 ~fault:true;
    Fam.lookahead ~cells:6 ~boxes:2 ~fault:false;
    Fam.pec_xor ~length:6 ~boxes:2 ~fault:true;
    Fam.z4 ~add_bits:1 ~boxes:2 ~fault:true;
    Fam.comp ~bits:6 ~boxes:2 ~fault:true;
    (* the family where resolution-path pruning has bite (boxes=3) *)
    Fam.c432 ~groups:3 ~lines:3 ~boxes:3 ~fault:false;
  ]

let analysis_baseline () =
  let out =
    match Sys.getenv_opt "BENCH_ANALYSIS_OUT" with
    | Some p -> p
    | None -> "BENCH_analysis.json"
  in
  let solve scheme pcnf =
    R.run_hqs
      ~config:{ Hqs.default_config with Hqs.dep_scheme = scheme }
      ~timeout ~node_limit pcnf
  in
  let verdict_str = function
    | R.Solved (true, _) -> "SAT"
    | R.Solved (false, _) -> "UNSAT"
    | R.Timeout _ -> "TO"
    | R.Memout _ -> "MO"
    | R.Crash _ -> "CRASH"
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"timeout_s\": %g,\n" timeout);
  Buffer.add_string buf (Printf.sprintf "  \"node_limit\": %d,\n" node_limit);
  Buffer.add_string buf "  \"instances\": [\n";
  let cases = analysis_cases () in
  let n = List.length cases in
  List.iteri
    (fun i inst ->
      let o_triv, s_triv = solve Analysis.Scheme.Trivial inst.Fam.pcnf in
      let o_rp, s_rp = solve Analysis.Scheme.Rp inst.Fam.pcnf in
      let ms = Option.map (fun (s : Hqs.stats) -> s.Hqs.maxsat_set_size) in
      let ms_triv = ms s_triv and ms_rp = ms s_rp in
      let delta =
        match (ms_triv, ms_rp) with Some a, Some b -> Some (a - b) | _ -> None
      in
      let pruned = Option.map (fun (s : Hqs.stats) -> s.Hqs.analysis_edges_pruned) s_rp in
      let linearized = Option.map (fun (s : Hqs.stats) -> s.Hqs.analysis_linearized) s_rp in
      if verdict_str o_triv <> verdict_str o_rp then
        Printf.eprintf "analysis baseline: scheme verdicts differ on %s (%s vs %s)\n%!"
          inst.Fam.id (verdict_str o_triv) (verdict_str o_rp);
      Buffer.add_string buf "    {\n";
      Buffer.add_string buf
        (Printf.sprintf "      \"id\": %s, \"family\": %s,\n" (json_str inst.Fam.id)
           (json_str inst.Fam.family));
      Buffer.add_string buf
        (Printf.sprintf "      \"verdict_trivial\": %s, \"verdict_rp\": %s,\n"
           (json_str (verdict_str o_triv))
           (json_str (verdict_str o_rp)));
      let icell = Harness.Report.json_int_cell and bcell = Harness.Report.json_bool_cell in
      Buffer.add_string buf
        (Printf.sprintf
           "      \"maxsat_set_trivial\": %s, \"maxsat_set_rp\": %s, \
            \"maxsat_set_delta\": %s,\n"
           (icell ms_triv) (icell ms_rp) (icell delta));
      Buffer.add_string buf
        (Printf.sprintf "      \"edges_pruned\": %s, \"linearized\": %s\n" (icell pruned)
           (bcell linearized));
      Buffer.add_string buf (Printf.sprintf "    }%s\n" (if i < n - 1 then "," else ""));
      Printf.eprintf "[analysis %d/%d] %-28s %s maxsat %s->%s pruned %s\n%!" (i + 1) n
        inst.Fam.id (verdict_str o_rp) (icell ms_triv) (icell ms_rp) (icell pruned))
    cases;
  Buffer.add_string buf "  ]\n}\n";
  let body = Buffer.contents buf in
  (match Obs.Json.parse body with
  | Ok _ -> ()
  | Error msg -> Printf.eprintf "analysis baseline: generated invalid JSON (%s)\n%!" msg);
  let oc = open_out out in
  output_string oc body;
  close_out oc;
  Printf.printf "dependency-scheme baseline written to %s\n" out

(* ---------------------------------------- inprocessing-engine baseline *)

(* One small instance per family: the engine's clause/literal/variable
   deltas plus the solve-time movement with the engine on vs off land in
   BENCH_inproc.json, so a regression in the engine's reduction power
   (or a slowdown it causes) shows up as a baseline diff.
   BENCH_INPROC_ONLY=1 runs just this section. *)

let inproc_baseline () =
  let out =
    match Sys.getenv_opt "BENCH_INPROC_OUT" with
    | Some p -> p
    | None -> "BENCH_inproc.json"
  in
  let solve mode pcnf =
    R.run_hqs
      ~config:
        {
          Hqs.default_config with
          Hqs.preprocess =
            { Dqbf.Preprocess.default_config with Dqbf.Preprocess.inproc = mode };
        }
      ~timeout ~node_limit pcnf
  in
  let verdict_str = function
    | R.Solved (true, _) -> "SAT"
    | R.Solved (false, _) -> "UNSAT"
    | R.Timeout _ -> "TO"
    | R.Memout _ -> "MO"
    | R.Crash _ -> "CRASH"
  in
  let time_of = function
    | R.Solved (_, t) -> t
    | R.Timeout t | R.Memout t | R.Crash t -> t
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"timeout_s\": %g,\n" timeout);
  Buffer.add_string buf (Printf.sprintf "  \"node_limit\": %d,\n" node_limit);
  Buffer.add_string buf "  \"instances\": [\n";
  let cases = analysis_cases () in
  let n = List.length cases in
  List.iteri
    (fun i inst ->
      (* the engine alone at Full strength (probing + BVE), for the pure
         CNF deltas; the solve-time comparison below uses the default
         mode, matching what a plain solve runs *)
      let refuted, stats =
        match Dqbf.Preprocess.run_inproc ~mode:Inproc.Full inst.Fam.pcnf with
        | `Unsat -> (true, None)
        | `Done (_, res) -> (false, Some res.Inproc.stats)
      in
      let o_off, _ = solve Inproc.Off inst.Fam.pcnf in
      let o_on, _ = solve Inproc.On inst.Fam.pcnf in
      (match (o_off, o_on) with
      | R.Solved (a, _), R.Solved (b, _) when a <> b ->
          Printf.eprintf "inproc baseline: engine verdicts differ on %s\n%!" inst.Fam.id
      | _ -> ());
      let icell = Harness.Report.json_int_cell in
      let g f = Option.map f stats in
      Buffer.add_string buf "    {\n";
      Buffer.add_string buf
        (Printf.sprintf
           "      \"id\": %s, \"family\": %s, \"engine_mode\": \"full\", \
            \"engine_refuted\": %s,\n"
           (json_str inst.Fam.id) (json_str inst.Fam.family)
           (if refuted then "true" else "false"));
      Buffer.add_string buf
        (Printf.sprintf
           "      \"clauses_before\": %s, \"clauses_after\": %s, \"lits_before\": %s, \
            \"lits_after\": %s, \"vars_before\": %s, \"vars_after\": %s,\n"
           (icell (g (fun s -> s.Inproc.clauses_before)))
           (icell (g (fun s -> s.Inproc.clauses_after)))
           (icell (g (fun s -> s.Inproc.lits_before)))
           (icell (g (fun s -> s.Inproc.lits_after)))
           (icell (g (fun s -> s.Inproc.vars_before)))
           (icell (g (fun s -> s.Inproc.vars_after))));
      Buffer.add_string buf
        (Printf.sprintf
           "      \"units\": %s, \"scc_merges\": %s, \"subsumed\": %s, \
            \"strengthened\": %s, \"bve\": %s,\n"
           (icell (g (fun s -> s.Inproc.units)))
           (icell (g (fun s -> s.Inproc.scc_merges)))
           (icell (g (fun s -> s.Inproc.subsumed)))
           (icell (g (fun s -> s.Inproc.strengthened)))
           (icell (g (fun s -> s.Inproc.bve_eliminated))));
      Buffer.add_string buf
        (Printf.sprintf
           "      \"verdict_off\": %s, \"verdict_on\": %s, \"time_off_s\": %.3f, \
            \"time_on_s\": %.3f\n"
           (json_str (verdict_str o_off))
           (json_str (verdict_str o_on))
           (time_of o_off) (time_of o_on));
      Buffer.add_string buf (Printf.sprintf "    }%s\n" (if i < n - 1 then "," else ""));
      Printf.eprintf "[inproc %d/%d] %-28s %s clauses %s->%s lits %s->%s\n%!" (i + 1) n
        inst.Fam.id (verdict_str o_on)
        (icell (g (fun s -> s.Inproc.clauses_before)))
        (icell (g (fun s -> s.Inproc.clauses_after)))
        (icell (g (fun s -> s.Inproc.lits_before)))
        (icell (g (fun s -> s.Inproc.lits_after))))
    cases;
  Buffer.add_string buf "  ]\n}\n";
  let body = Buffer.contents buf in
  (match Obs.Json.parse body with
  | Ok _ -> ()
  | Error msg -> Printf.eprintf "inproc baseline: generated invalid JSON (%s)\n%!" msg);
  let oc = open_out out in
  output_string oc body;
  close_out oc;
  Printf.printf "inprocessing baseline written to %s\n" out

(* ---------------------------------------------------- Bechamel micro part *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  (* one Test.make per reproduced artifact, plus core-operation benches *)
  let t_table1 =
    Test.make ~name:"table1:hqs-adder-pec"
      (Staged.stage (fun () ->
           let inst = Fam.adder ~bits:2 ~boxes:2 ~fault:true in
           ignore (Hqs.solve_pcnf inst.Fam.pcnf)))
  in
  let t_fig4 =
    Test.make ~name:"fig4:idq-pec_xor"
      (Staged.stage (fun () ->
           let inst = Fam.pec_xor ~length:4 ~boxes:1 ~fault:true in
           ignore (Idq.solve_pcnf inst.Fam.pcnf)))
  in
  let t_aig =
    Test.make ~name:"aig:build-and-cofactor"
      (Staged.stage (fun () ->
           let man = Aig.Man.create () in
           let inputs = List.init 24 (Aig.Man.input man) in
           let root = Aig.Man.mk_and_list man inputs in
           let root = Aig.Man.mk_xor man root (List.hd inputs) in
           ignore (Aig.Man.cofactor man root ~var:3 ~value:true)))
  in
  let t_unitpure =
    let inst = Fam.comp ~bits:10 ~boxes:2 ~fault:true in
    let f =
      match Dqbf.Preprocess.run inst.Fam.pcnf with
      | Dqbf.Preprocess.Formula (f, _) -> f
      | Dqbf.Preprocess.Unsat -> assert false
    in
    Test.make ~name:"aig:unitpure-scan"
      (Staged.stage (fun () ->
           ignore (Aig.Unitpure.scan (Dqbf.Formula.man f) (Dqbf.Formula.matrix f))))
  in
  let t_maxsat =
    let inst = Fam.c432 ~groups:3 ~lines:5 ~boxes:2 ~fault:true in
    let f =
      match Dqbf.Preprocess.run inst.Fam.pcnf with
      | Dqbf.Preprocess.Formula (f, _) -> f
      | Dqbf.Preprocess.Unsat -> assert false
    in
    Test.make ~name:"maxsat:elimination-set"
      (Staged.stage (fun () -> ignore (Dqbf.Elimset.minimum_set f)))
  in
  let t_sat =
    Test.make ~name:"sat:random-3cnf"
      (Staged.stage (fun () ->
           let rng = Hqs_util.Rng.create 7 in
           let s = Sat.Solver.create () in
           Sat.Solver.ensure_var s 59;
           for _ = 1 to 250 do
             let lit () = Sat.Lit.mk (Hqs_util.Rng.int rng 60) ~neg:(Hqs_util.Rng.bool rng) in
             Sat.Solver.add_clause s [ lit (); lit (); lit () ]
           done;
           ignore (Sat.Solver.solve s)))
  in
  let tests =
    Test.make_grouped ~name:"micro" [ t_table1; t_fig4; t_aig; t_unitpure; t_maxsat; t_sat ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols (Instance.monotonic_clock) raw in
  Printf.printf "%-28s %16s\n" "benchmark" "ns/run";
  Hashtbl.iter
    (fun name res ->
      match Bechamel.Analyze.OLS.estimates res with
      | Some [ est ] -> Printf.printf "%-28s %16.0f\n" name est
      | _ -> Printf.printf "%-28s %16s\n" name "n/a")
    results

(* ------------------------------------------------------------------ main *)

let () =
  if env_bool "BENCH_OBS_ONLY" false then begin
    obs_baseline ();
    exit 0
  end;
  if env_bool "BENCH_ANALYSIS_ONLY" false then begin
    analysis_baseline ();
    exit 0
  end;
  if env_bool "BENCH_INPROC_ONLY" false then begin
    inproc_baseline ();
    exit 0
  end;
  Printf.printf "HQS reproduction benchmark (timeout %.1fs, node limit %d%s)\n\n" timeout
    node_limit
    (if quick then ", QUICK suite" else "");
  let instances = suite () in
  Printf.printf "suite: %d PEC instances across %d families\n\n" (List.length instances)
    (List.length Fam.all_families);
  let results = run_suite instances in
  print_endline "================ Table I (cf. paper Table I) ================";
  print_string (Harness.Report.table1 results);
  print_endline "";
  print_endline "================ Fig. 4 (runtime scatter) ====================";
  print_string (Harness.Report.fig4 ~timeout results);
  print_endline "";
  print_endline "================ Headline claims (Section IV) ================";
  print_string (Harness.Report.headline results);
  print_endline "";
  print_endline "================ Ablations (DESIGN.md A1) ====================";
  print_string (ablations ());
  print_endline "";
  print_endline "================ Dependency-scheme baseline ==================";
  analysis_baseline ();
  print_endline "";
  print_endline "================ Inprocessing-engine baseline ================";
  inproc_baseline ();
  print_endline "";
  print_endline "================ Observability baseline ======================";
  obs_baseline ();
  print_endline "";
  if env_bool "BENCH_MICRO" true then begin
    print_endline "================ Bechamel micro-benchmarks ===================";
    micro ()
  end;
  print_endline "";
  print_endline "raw per-instance results (CSV):";
  print_string (Harness.Report.csv results)
