#!/bin/sh
# CI entry point: run from the repo root.
#
#   ./ci.sh
#
# Steps:
#   1. full build
#   2. format check (skipped with a notice if ocamlformat is absent)
#   3. static analysis (bin/lint: catch-alls, polymorphic compare,
#      Obj.magic, failwith in lib/, missing .mli)
#   4. unit + property test suites
#   5. chaos-enabled smoke solve: generate a small PEC instance and
#      solve it with fault injection armed AND the soundness auditor at
#      full depth (HQS_CHECK=full), proving the degradation ladder and
#      the stage audits end-to-end through the real CLI
set -eu
cd "$(dirname "$0")"

echo "== build =="
dune build

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== format =="
  dune build @fmt
else
  echo "== format: skipped (ocamlformat not installed) =="
fi

echo "== lint =="
dune exec bin/lint.exe -- lib bin bench test

echo "== tests =="
dune runtest

echo "== chaos smoke solve =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
f=$(dune exec bin/genpec.exe -- one pec_xor --size 3 --boxes 1 --out "$tmp")
status=0
HQS_CHECK=full dune exec bin/hqs_cli.exe -- "$f" --chaos-seed 42 --timeout 60 --stats || status=$?
case "$status" in
10 | 20) echo "== ci OK (smoke verdict exit $status) ==" ;;
*)
    echo "== ci FAILED: smoke solve exited $status =="
    exit 1
    ;;
esac
