#!/bin/sh
# CI entry point: run from the repo root.
#
#   ./ci.sh
#
# Steps:
#   1. full build
#   2. format check (skipped with a notice if ocamlformat is absent)
#   3. static analysis (bin/lint: catch-alls, polymorphic compare,
#      Obj.magic, failwith in lib/, missing .mli)
#   4. unit + property test suites
#   5. chaos-enabled smoke solve: generate a small PEC instance and
#      solve it with fault injection armed AND the soundness auditor at
#      full depth (HQS_CHECK=full), proving the degradation ladder and
#      the stage audits end-to-end through the real CLI
#   6. traced smoke solve: solve an instance with incomparable dependency
#      sets under --trace and validate the trace with bin/tracecheck
#      (well-formed Chrome JSON, balanced spans, >= 6 pipeline phases)
#   7. supervised mini-sweep: run `hqs sweep` over a generated instance
#      directory with 2 workers and a chaos-injected worker kill,
#      asserting the victim is quarantined as a CRASH row while the rest
#      solve; then kill a journaled sweep midway (SIGKILL, torn tail and
#      all) and prove --resume completes exactly the remaining tasks and
#      that a second resume executes nothing and reproduces the report
#      byte-for-byte
set -eu
cd "$(dirname "$0")"

echo "== build =="
dune build

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== format =="
  dune build @fmt
else
  echo "== format: skipped (ocamlformat not installed) =="
fi

echo "== lint =="
dune exec bin/lint.exe -- lib bin bench test

echo "== tests =="
dune runtest

echo "== chaos smoke solve =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
f=$(dune exec bin/genpec.exe -- one pec_xor --size 3 --boxes 1 --out "$tmp")
status=0
HQS_CHECK=full dune exec bin/hqs_cli.exe -- "$f" --chaos-seed 42 --timeout 60 --stats || status=$?
case "$status" in
10 | 20) : ;;
*)
    echo "== ci FAILED: smoke solve exited $status =="
    exit 1
    ;;
esac

echo "== traced smoke solve =="
# boxes=2 makes the dependency sets incomparable, so the solve actually
# runs elimination-set selection and universal expansion before the
# back end — the trace must cover the whole pipeline
f2=$(dune exec bin/genpec.exe -- one pec_xor --size 3 --boxes 2 --out "$tmp")
trace_status=0
dune exec bin/hqs_cli.exe -- "$f2" --trace "$tmp/trace.json" --metrics --timeout 60 2>"$tmp/trace.err" || trace_status=$?
case "$trace_status" in
10 | 20) : ;;
*)
    echo "== ci FAILED: traced solve exited $trace_status =="
    cat "$tmp/trace.err"
    exit 1
    ;;
esac
dune exec bin/tracecheck.exe -- "$tmp/trace.json" --min-spans 6 --verbose
grep -q '^c metric ' "$tmp/trace.err" || {
  echo "== ci FAILED: --metrics printed no metric lines =="
  exit 1
}
echo "== supervised mini-sweep (crash injection) =="
# the sweep CLI must be invoked as the built binary, not through
# `dune exec`, so the midway SIGKILL below lands on the supervisor itself
HQS_BIN=_build/default/bin/hqs_cli.exe
mkdir -p "$tmp/sweep"
dune exec bin/genpec.exe -- sweep pec_xor --sizes=3,4,5 --boxes-list=1 --out "$tmp/sweep" >/dev/null
victim=""
for f in "$tmp/sweep"/*.dqdimacs; do victim=$(basename "$f" .dqdimacs); break; done
sweep_status=0
"$HQS_BIN" sweep "$tmp/sweep"/*.dqdimacs --jobs 2 --timeout 10 --retries 2 \
  --chaos-kill "$victim/hqs" >"$tmp/crash.csv" 2>"$tmp/crash.log" || sweep_status=$?
if [ "$sweep_status" != 3 ]; then
  echo "== ci FAILED: crash-injected sweep exited $sweep_status (want 3) =="
  cat "$tmp/crash.log"
  exit 1
fi
grep -q "^$victim,.*,CRASH," "$tmp/crash.csv" || {
  echo "== ci FAILED: no CRASH row for quarantined victim $victim =="
  cat "$tmp/crash.csv"
  exit 1
}
# every other instance still produced a clean verdict
if grep -v "^id," "$tmp/crash.csv" | grep -v "^$victim," | grep -qv ",solved,"; then
  echo "== ci FAILED: a bystander instance did not solve =="
  cat "$tmp/crash.csv"
  exit 1
fi

echo "== supervised mini-sweep (kill midway + resume) =="
journal="$tmp/sweep.jsonl"
"$HQS_BIN" sweep "$tmp/sweep"/*.dqdimacs --jobs 2 --timeout 10 --journal "$journal" \
  >"$tmp/part.csv" 2>/dev/null &
sweep_pid=$!
# wait for at least one fsynced journal line, then SIGKILL the supervisor
i=0
while [ "$(cat "$journal" 2>/dev/null | wc -l)" -lt 1 ]; do
  i=$((i + 1))
  if [ "$i" -gt 600 ]; then break; fi
  sleep 0.1
done
kill -9 "$sweep_pid" 2>/dev/null || true
wait "$sweep_pid" 2>/dev/null || true
sleep 2 # let orphaned workers drain
lines_before=$(cat "$journal" 2>/dev/null | wc -l)
"$HQS_BIN" sweep "$tmp/sweep"/*.dqdimacs --jobs 2 --timeout 10 --journal "$journal" \
  --resume "$journal" >"$tmp/r1.csv" 2>"$tmp/r1.log"
grep -q "from journal" "$tmp/r1.log" || {
  echo "== ci FAILED: resume log missing journal accounting =="
  cat "$tmp/r1.log"
  exit 1
}
# the resumed run must not have re-executed the journaled tasks
total_tasks=$((2 * $(ls "$tmp/sweep"/*.dqdimacs | wc -l)))
executed=$(sed -n 's/^c sweep: \([0-9]*\) tasks executed.*/\1/p' "$tmp/r1.log")
if [ -z "$executed" ] || [ "$executed" -gt $((total_tasks - lines_before)) ]; then
  echo "== ci FAILED: resume executed $executed tasks, journal already had $lines_before of $total_tasks =="
  cat "$tmp/r1.log"
  exit 1
fi
# a second resume executes nothing and reproduces the report byte-for-byte
"$HQS_BIN" sweep "$tmp/sweep"/*.dqdimacs --jobs 2 --timeout 10 --resume "$journal" \
  >"$tmp/r2.csv" 2>"$tmp/r2.log"
grep -q "^c sweep: 0 tasks executed" "$tmp/r2.log" || {
  echo "== ci FAILED: second resume still executed tasks =="
  cat "$tmp/r2.log"
  exit 1
}
cmp "$tmp/r1.csv" "$tmp/r2.csv" || {
  echo "== ci FAILED: resumed reports are not byte-identical =="
  exit 1
}

echo "== ci OK (smoke verdict exit $status, traced exit $trace_status, sweep crash+resume verified) =="
