#!/bin/sh
# CI entry point: run from the repo root.
#
#   ./ci.sh
#
# Steps:
#   1. full build
#   2. format check (skipped with a notice if ocamlformat is absent)
#   3. static analysis (bin/lint: catch-alls, polymorphic compare,
#      Obj.magic, failwith in lib/, missing .mli, raw fds outside
#      lib/exec, wall-clock reads outside lib/util) plus the lint
#      driver's usage-error contract (nonexistent path => exit 2)
#   4. unit + property test suites
#   5. deepcheck gate (bin/deepcheck, typed-tree whole-program
#      analysis over dune's .cmt artifacts): the tree passes the
#      exception-escape, fork-safety and layering analyses against the
#      committed deepcheck.{escapes,forkinit,layers} policy files; both
#      analyzers' --json output round-trips through Obs.Json; a seeded
#      allowlist deletion, a temporary dune edit (circuit -> serve), a
#      stale .cmt and an unresolvable fork entry are each refused with
#      the right exit code
#   6. dependency-scheme gate: solve a generated example suite twice
#      (--dep-scheme trivial vs rp) under --check full, diff the verdict
#      lines byte-for-byte, assert rp never grows the MaxSAT elimination
#      set and prunes at least one edge on the c432 PEC family
#   7. inprocessing gate: re-solve the example suite with the CNF
#      inprocessing engine on vs off under --check full and diff the
#      verdict lines byte-for-byte; run `hqs analyze` on the committed
#      fixture and assert at least one SCC merge and one subsumption
#      were found and audited; prove the no-stdout lint rule fires on a
#      seeded stdout write under lib/
#   8. chaos-enabled smoke solve: generate a small PEC instance and
#      solve it with fault injection armed AND the soundness auditor at
#      full depth (HQS_CHECK=full), proving the degradation ladder and
#      the stage audits end-to-end through the real CLI
#   9. traced smoke solve: solve an instance with incomparable dependency
#      sets under --trace and validate the trace with bin/tracecheck
#      (well-formed Chrome JSON, balanced spans, >= 6 pipeline phases)
#  10. supervised mini-sweep: run `hqs sweep` over a generated instance
#      directory with 2 workers and a chaos-injected worker kill,
#      asserting the victim is quarantined as a CRASH row while the rest
#      solve; then kill a journaled sweep midway (SIGKILL, torn tail and
#      all) and prove --resume completes exactly the remaining tasks and
#      that a second resume executes nothing and reproduces the report
#      byte-for-byte
#  11. serve gate: start the persistent daemon with a cache, a trace and
#      a chaos-armed worker kill; fire 8 concurrent queries (with
#      duplicates), assert every client gets a structured verdict, a
#      sequential duplicate is served from the cache, the serve.*
#      metrics counted the crash/respawn/hits, SIGTERM drains to exit 0,
#      and the emitted trace tracecheck-validates with serve.* events
#  12. distobs gate: a traced chaos-kill sweep must merge worker span
#      buffers under their own pid rows with cross-pid parent links
#      (tracecheck --min-pids/--min-cross-links); benchdiff passes on
#      the committed trajectory baseline and trips on a seeded 25%
#      phase-time inflation; a chaos-killed daemon with --event-log
#      shows nonzero crash counters and latency quantiles via hqs top
#      and leaves a complete, trace-correlated JSONL event trail; the
#      raw-fd/no-stdout/mono-clock-span lint rules fire on seeded
#      fixtures
#  13. cert gate: assert the isolated verifier links zero libraries
#      (dune describe) and that the cert-isolation lint rule fires on a
#      seeded solver reference; certify every example-suite instance
#      under --check full and verify each artifact with bin/certcheck
#      (exit 0, SAT and UNSAT both); refute a semantically corrupted
#      certificate (flipped Skolem output literal => exit 1); run the
#      certify example end-to-end against the external verifier; then
#      drill the daemon recovery path: a chaos-poisoned certificate must
#      tombstone the cache entry, re-solve under the escalated config,
#      ship a verifiable artifact to the client, and leave the failure
#      visible in the event log (cert_audit) and hqs top
set -eu
cd "$(dirname "$0")"

echo "== build =="
dune build

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== format =="
  dune build @fmt
else
  echo "== format: skipped (ocamlformat not installed) =="
fi

echo "== lint =="
dune exec bin/lint.exe -- lib bin bench test examples
# the driver must refuse paths it cannot lint, not silently pass them
lint_status=0
dune exec bin/lint.exe -- /nonexistent/path >/dev/null 2>&1 || lint_status=$?
if [ "$lint_status" != 2 ]; then
  echo "== ci FAILED: lint on a nonexistent path exited $lint_status (want 2) =="
  exit 1
fi

echo "== tests =="
dune runtest

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
HQS_BIN=_build/default/bin/hqs_cli.exe

echo "== deepcheck (typed-tree whole-program analysis) =="
# the built binary is invoked directly: deepcheck shells out to
# `dune describe`, which needs the build lock `dune exec` would hold
DEEPCHECK=_build/default/bin/deepcheck.exe
# 1) the real tree passes all three analyses against the committed
#    policy files (deepcheck.escapes / .forkinit / .layers)
"$DEEPCHECK" || {
  echo "== ci FAILED: deepcheck found violations on a clean tree =="
  exit 1
}
# 2) machine output: both analyzers' --json documents must round-trip
#    through Obs.Json (same checker the trace pipeline uses)
"$DEEPCHECK" --json >"$tmp/deepcheck.json"
dune exec bin/tracecheck.exe -- "$tmp/deepcheck.json" --json-only
dune exec bin/lint.exe -- --json lib bin bench test examples >"$tmp/lint.json"
dune exec bin/tracecheck.exe -- "$tmp/lint.json" --json-only
# 3) seeded escape: drop one allowlisted exception and the exn-escape
#    rule must fire — an allowlist edit nobody notices is not a gate
grep -v 'Cert.Parse_error' deepcheck.escapes >"$tmp/escapes.seeded"
esc_status=0
"$DEEPCHECK" --escapes "$tmp/escapes.seeded" >"$tmp/dc.escape.out" 2>&1 || esc_status=$?
if [ "$esc_status" != 1 ] || ! grep -q 'exn-escape' "$tmp/dc.escape.out" \
  || ! grep -q 'Cert.Parse_error' "$tmp/dc.escape.out"; then
  echo "== ci FAILED: seeded escape not flagged (exit $esc_status) =="
  cat "$tmp/dc.escape.out"
  exit 1
fi
# 4) seeded layering: a real (temporary) dune edit adds circuit -> serve;
#    the captured describe must trip the layering rule, proving the gate
#    checks what dune actually links, not the comments
cp lib/circuit/dune "$tmp/circuit.dune.orig"
printf '(library\n (name circuit)\n (libraries dqbf serve hqs_util))\n' >lib/circuit/dune
dd_status=0
dune describe >"$tmp/describe.seeded" 2>"$tmp/describe.err" || dd_status=$?
cp "$tmp/circuit.dune.orig" lib/circuit/dune
if [ "$dd_status" != 0 ]; then
  echo "== ci FAILED: dune describe on the seeded layering edit exited $dd_status =="
  cat "$tmp/describe.err"
  exit 1
fi
lay_status=0
"$DEEPCHECK" --describe "$tmp/describe.seeded" >"$tmp/dc.layer.out" 2>&1 || lay_status=$?
if [ "$lay_status" != 1 ] || ! grep -q 'layering' "$tmp/dc.layer.out" \
  || ! grep -q "depends on local library 'serve'" "$tmp/dc.layer.out"; then
  echo "== ci FAILED: seeded layering violation not flagged (exit $lay_status) =="
  cat "$tmp/dc.layer.out"
  exit 1
fi
# 5) staleness refusal: an edited source with an old .cmt is exit 2 with
#    a pointed message, never a silent pass over stale typed trees
#    (dune content-hashes, so restoring freshness needs touch -r, not a
#    rebuild)
touch lib/util/mono.ml
stale_status=0
"$DEEPCHECK" >"$tmp/dc.stale.out" 2>&1 || stale_status=$?
touch -r _build/default/lib/util/.hqs_util.objs/byte/hqs_util__Mono.cmt lib/util/mono.ml
if [ "$stale_status" != 2 ] || ! grep -q 'newer than its .cmt' "$tmp/dc.stale.out"; then
  echo "== ci FAILED: stale .cmt not refused (exit $stale_status) =="
  cat "$tmp/dc.stale.out"
  exit 1
fi
# 6) a forkinit entry that no longer resolves is a config error (exit 2):
#    fork-safety whose entry points vanished in a refactor checks nothing
printf 'entry No.Such.Entry\n' >"$tmp/forkinit.seeded"
fk_status=0
"$DEEPCHECK" --forkinit "$tmp/forkinit.seeded" >"$tmp/dc.fork.out" 2>&1 || fk_status=$?
if [ "$fk_status" != 2 ] || ! grep -q 'does not resolve' "$tmp/dc.fork.out"; then
  echo "== ci FAILED: unresolvable forkinit entry not refused (exit $fk_status) =="
  cat "$tmp/dc.fork.out"
  exit 1
fi
echo "c deepcheck gate: tree clean, JSON round-trips, seeded escape/layering/staleness/forkinit all refused"

echo "== analysis (dependency schemes) =="
mkdir -p "$tmp/an"
dune exec bin/genpec.exe -- sweep pec_xor --sizes=2,3 --boxes-list=1,2 --out "$tmp/an" >/dev/null
dune exec bin/genpec.exe -- sweep c432 --sizes=2 --boxes-list=3 --out "$tmp/an" >/dev/null
: >"$tmp/verdicts.trivial"
: >"$tmp/verdicts.rp"
total_pruned=0
for f in "$tmp/an"/*.dqdimacs; do
  id=$(basename "$f" .dqdimacs)
  for scheme in trivial rp; do
    an_status=0
    "$HQS_BIN" "$f" --dep-scheme "$scheme" --check full --stats --timeout 60 \
      >"$tmp/an.$scheme.out" 2>&1 || an_status=$?
    case "$an_status" in
    10 | 20) : ;;
    *)
      echo "== ci FAILED: $scheme-scheme solve on $id exited $an_status =="
      cat "$tmp/an.$scheme.out"
      exit 1
      ;;
    esac
    grep '^s ' "$tmp/an.$scheme.out" | sed "s|^|$id |" >>"$tmp/verdicts.$scheme"
    sed -n 's/.*maxsat-set=\([0-9]*\).*/\1/p' "$tmp/an.$scheme.out" >"$tmp/ms.$scheme"
  done
  ms_trivial=$(cat "$tmp/ms.trivial")
  ms_rp=$(cat "$tmp/ms.rp")
  if [ -n "$ms_trivial" ] && [ -n "$ms_rp" ] && [ "$ms_rp" -gt "$ms_trivial" ]; then
    echo "== ci FAILED: rp grew the MaxSAT elimination set on $id ($ms_trivial -> $ms_rp) =="
    exit 1
  fi
  pruned=$("$HQS_BIN" analyze "$f" | sed -n 's/^s analysis pruned=\([0-9]*\).*/\1/p')
  total_pruned=$((total_pruned + ${pruned:-0}))
done
cmp "$tmp/verdicts.trivial" "$tmp/verdicts.rp" || {
  echo "== ci FAILED: trivial and rp schemes disagree on a verdict =="
  diff "$tmp/verdicts.trivial" "$tmp/verdicts.rp" || true
  exit 1
}
if [ "$total_pruned" -lt 1 ]; then
  echo "== ci FAILED: analyzer pruned no edges across the example suite =="
  exit 1
fi
echo "c analysis gate: $total_pruned edge(s) pruned, verdicts identical"

echo "== inproc =="
# 1) engine on vs off must not move a single verdict byte under the full
#    auditor, across the same example suite the analysis gate used
: >"$tmp/verdicts.inproc-on"
: >"$tmp/verdicts.inproc-off"
for f in "$tmp/an"/*.dqdimacs; do
  id=$(basename "$f" .dqdimacs)
  for ip in on off; do
    ip_status=0
    "$HQS_BIN" "$f" --inproc "$ip" --check full --timeout 60 \
      >"$tmp/ip.$ip.out" 2>&1 || ip_status=$?
    case "$ip_status" in
    10 | 20) : ;;
    *)
      echo "== ci FAILED: --inproc $ip solve on $id exited $ip_status =="
      cat "$tmp/ip.$ip.out"
      exit 1
      ;;
    esac
    grep '^s ' "$tmp/ip.$ip.out" | sed "s|^|$id |" >>"$tmp/verdicts.inproc-$ip"
  done
done
cmp "$tmp/verdicts.inproc-on" "$tmp/verdicts.inproc-off" || {
  echo "== ci FAILED: inproc on and off disagree on a verdict =="
  diff "$tmp/verdicts.inproc-on" "$tmp/verdicts.inproc-off" || true
  exit 1
}
# 2) the committed fixture must exhibit (and pass the audit for) at least
#    one SCC merge and one subsumption
ip_line=$("$HQS_BIN" analyze test/fixtures/inproc_basic.dqdimacs --check full \
  | sed -n 's/^s inproc //p')
case "$ip_line" in
*"merges="[1-9]*) : ;;
*)
  echo "== ci FAILED: no SCC merge on the inproc fixture ($ip_line) =="
  exit 1
  ;;
esac
case "$ip_line" in
*"subsumed="[1-9]*) : ;;
*)
  echo "== ci FAILED: no subsumption on the inproc fixture ($ip_line) =="
  exit 1
  ;;
esac
# 3) the no-stdout lint rule fires on a seeded stdout write under lib/
mkdir -p "$tmp/lintbad/lib/fake"
printf 'let f x = Printf.printf "%%d\\n" x\n' >"$tmp/lintbad/lib/fake/mod.ml"
printf 'val f : int -> unit\n' >"$tmp/lintbad/lib/fake/mod.mli"
nostdout_status=0
dune exec bin/lint.exe -- "$tmp/lintbad" >"$tmp/lintbad.out" 2>&1 || nostdout_status=$?
if [ "$nostdout_status" != 1 ] || ! grep -q 'no-stdout' "$tmp/lintbad.out"; then
  echo "== ci FAILED: seeded stdout write not flagged (exit $nostdout_status) =="
  cat "$tmp/lintbad.out"
  exit 1
fi
echo "c inproc gate: verdicts identical, fixture merged+subsumed, no-stdout armed"

echo "== chaos smoke solve =="
f=$(dune exec bin/genpec.exe -- one pec_xor --size 3 --boxes 1 --out "$tmp")
status=0
HQS_CHECK=full dune exec bin/hqs_cli.exe -- "$f" --chaos-seed 42 --timeout 60 --stats || status=$?
case "$status" in
10 | 20) : ;;
*)
    echo "== ci FAILED: smoke solve exited $status =="
    exit 1
    ;;
esac

echo "== traced smoke solve =="
# boxes=2 makes the dependency sets incomparable, so the solve actually
# runs elimination-set selection and universal expansion before the
# back end — the trace must cover the whole pipeline
f2=$(dune exec bin/genpec.exe -- one pec_xor --size 3 --boxes 2 --out "$tmp")
trace_status=0
dune exec bin/hqs_cli.exe -- "$f2" --trace "$tmp/trace.json" --metrics --timeout 60 2>"$tmp/trace.err" || trace_status=$?
case "$trace_status" in
10 | 20) : ;;
*)
    echo "== ci FAILED: traced solve exited $trace_status =="
    cat "$tmp/trace.err"
    exit 1
    ;;
esac
dune exec bin/tracecheck.exe -- "$tmp/trace.json" --min-spans 6 --verbose
grep -q '^c metric ' "$tmp/trace.err" || {
  echo "== ci FAILED: --metrics printed no metric lines =="
  exit 1
}
echo "== supervised mini-sweep (crash injection) =="
# the sweep CLI must be invoked as the built binary, not through
# `dune exec`, so the midway SIGKILL below lands on the supervisor itself
mkdir -p "$tmp/sweep"
dune exec bin/genpec.exe -- sweep pec_xor --sizes=3,4,5 --boxes-list=1 --out "$tmp/sweep" >/dev/null
victim=""
for f in "$tmp/sweep"/*.dqdimacs; do victim=$(basename "$f" .dqdimacs); break; done
sweep_status=0
"$HQS_BIN" sweep "$tmp/sweep"/*.dqdimacs --jobs 2 --timeout 10 --retries 2 \
  --chaos-kill "$victim/hqs" >"$tmp/crash.csv" 2>"$tmp/crash.log" || sweep_status=$?
if [ "$sweep_status" != 3 ]; then
  echo "== ci FAILED: crash-injected sweep exited $sweep_status (want 3) =="
  cat "$tmp/crash.log"
  exit 1
fi
grep -q "^$victim,.*,CRASH," "$tmp/crash.csv" || {
  echo "== ci FAILED: no CRASH row for quarantined victim $victim =="
  cat "$tmp/crash.csv"
  exit 1
}
# every other instance still produced a clean verdict
if grep -v "^id," "$tmp/crash.csv" | grep -v "^$victim," | grep -qv ",solved,"; then
  echo "== ci FAILED: a bystander instance did not solve =="
  cat "$tmp/crash.csv"
  exit 1
fi

echo "== supervised mini-sweep (kill midway + resume) =="
journal="$tmp/sweep.jsonl"
"$HQS_BIN" sweep "$tmp/sweep"/*.dqdimacs --jobs 2 --timeout 10 --journal "$journal" \
  >"$tmp/part.csv" 2>/dev/null &
sweep_pid=$!
# wait for at least one fsynced journal line, then SIGKILL the supervisor
i=0
while [ "$(cat "$journal" 2>/dev/null | wc -l)" -lt 1 ]; do
  i=$((i + 1))
  if [ "$i" -gt 600 ]; then break; fi
  sleep 0.1
done
kill -9 "$sweep_pid" 2>/dev/null || true
wait "$sweep_pid" 2>/dev/null || true
sleep 2 # let orphaned workers drain
lines_before=$(cat "$journal" 2>/dev/null | wc -l)
"$HQS_BIN" sweep "$tmp/sweep"/*.dqdimacs --jobs 2 --timeout 10 --journal "$journal" \
  --resume "$journal" >"$tmp/r1.csv" 2>"$tmp/r1.log"
grep -q "from journal" "$tmp/r1.log" || {
  echo "== ci FAILED: resume log missing journal accounting =="
  cat "$tmp/r1.log"
  exit 1
}
# the resumed run must not have re-executed the journaled tasks
total_tasks=$((2 * $(ls "$tmp/sweep"/*.dqdimacs | wc -l)))
executed=$(sed -n 's/^c sweep: \([0-9]*\) tasks executed.*/\1/p' "$tmp/r1.log")
if [ -z "$executed" ] || [ "$executed" -gt $((total_tasks - lines_before)) ]; then
  echo "== ci FAILED: resume executed $executed tasks, journal already had $lines_before of $total_tasks =="
  cat "$tmp/r1.log"
  exit 1
fi
# a second resume executes nothing and reproduces the report byte-for-byte
"$HQS_BIN" sweep "$tmp/sweep"/*.dqdimacs --jobs 2 --timeout 10 --resume "$journal" \
  >"$tmp/r2.csv" 2>"$tmp/r2.log"
grep -q "^c sweep: 0 tasks executed" "$tmp/r2.log" || {
  echo "== ci FAILED: second resume still executed tasks =="
  cat "$tmp/r2.log"
  exit 1
}
cmp "$tmp/r1.csv" "$tmp/r2.csv" || {
  echo "== ci FAILED: resumed reports are not byte-identical =="
  exit 1
}

echo "== serve (daemon: concurrency, cache, chaos, drain) =="
sock="$tmp/hqs.sock"
mkdir -p "$tmp/srv"
dune exec bin/genpec.exe -- sweep pec_xor --sizes=2,3 --boxes-list=1,2 --out "$tmp/srv" >/dev/null
# --chaos-kill 2 arms the second solve's first dispatch: that worker is
# SIGKILLed mid-request and the client must still get a verdict via the
# retry
"$HQS_BIN" serve --socket "$sock" --workers 2 --cache "$tmp/serve_cache.jsonl" \
  --trace "$tmp/serve_trace.json" --chaos-kill 2 --chaos-seed 7 \
  >"$tmp/serve.log" 2>&1 &
serve_pid=$!
i=0
until "$HQS_BIN" query --socket "$sock" --ping >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "== ci FAILED: serve daemon never answered a ping =="
    cat "$tmp/serve.log"
    exit 1
  fi
  sleep 0.1
done
# 8 concurrent requests: each instance twice, so the batch contains
# duplicates; every client must come back with a structured verdict
# (exit 10/20) even though one dispatch is chaos-killed
qpids=""
n=0
for f in "$tmp/srv"/*.dqdimacs "$tmp/srv"/*.dqdimacs; do
  n=$((n + 1))
  "$HQS_BIN" query --socket "$sock" "$f" --timeout 60 >"$tmp/q$n.out" 2>&1 &
  qpids="$qpids $!"
done
if [ "$n" -lt 8 ]; then
  echo "== ci FAILED: serve gate only issued $n concurrent requests (want >= 8) =="
  exit 1
fi
k=0
for qp in $qpids; do
  k=$((k + 1))
  q_status=0
  wait "$qp" || q_status=$?
  case "$q_status" in
  10 | 20) : ;;
  *)
    echo "== ci FAILED: concurrent query $k exited $q_status (want a verdict) =="
    cat "$tmp/q$k.out"
    cat "$tmp/serve.log"
    exit 1
    ;;
  esac
done
# a sequential duplicate of an already-solved instance must hit the cache
dup=$(ls "$tmp/srv"/*.dqdimacs | head -1)
dup_status=0
"$HQS_BIN" query --socket "$sock" "$dup" >"$tmp/dup.out" 2>&1 || dup_status=$?
case "$dup_status" in
10 | 20) : ;;
*)
  echo "== ci FAILED: duplicate query exited $dup_status =="
  cat "$tmp/dup.out"
  exit 1
  ;;
esac
grep -q '(cached)' "$tmp/dup.out" || {
  echo "== ci FAILED: duplicate query was not served from the cache =="
  cat "$tmp/dup.out"
  exit 1
}
# serve.respawns lags serve.worker_crashes by the backoff quarantine
# delay, so poll the stats until every floor is met
stats_missing=""
for _ in $(seq 1 25); do
  "$HQS_BIN" query --socket "$sock" --stats >"$tmp/serve_stats.out"
  stats_missing=""
  for m in serve.requests serve.cache_hits serve.worker_crashes serve.respawns; do
    v=$(sed -n "s/^c metric $m \([0-9][0-9.]*\).*/\1/p" "$tmp/serve_stats.out")
    if [ -z "$v" ] || [ "${v%%.*}" -lt 1 ]; then
      stats_missing="$m is '${v:-missing}'"
      break
    fi
  done
  [ -z "$stats_missing" ] && break
  sleep 0.2
done
if [ -n "$stats_missing" ]; then
  echo "== ci FAILED: daemon metric $stats_missing (want >= 1) =="
  cat "$tmp/serve_stats.out"
  exit 1
fi
# graceful drain: SIGTERM, daemon exits 0 and removes its socket
kill -TERM "$serve_pid"
drain_status=0
wait "$serve_pid" || drain_status=$?
if [ "$drain_status" != 0 ]; then
  echo "== ci FAILED: drained daemon exited $drain_status (want 0) =="
  cat "$tmp/serve.log"
  exit 1
fi
if [ -e "$sock" ]; then
  echo "== ci FAILED: daemon left its socket behind =="
  exit 1
fi
# the daemon's trace must be well-formed and carry the serve.* telemetry
# (the daemon side has two span names, serve.request and serve.complete;
# the per-job solver spans live in the worker processes)
dune exec bin/tracecheck.exe -- "$tmp/serve_trace.json" --min-spans 2 --verbose
for ev in serve.request serve.complete serve.worker.crash serve.metric; do
  grep -q "$ev" "$tmp/serve_trace.json" || {
    echo "== ci FAILED: serve trace is missing $ev events =="
    exit 1
  }
done

echo "== distobs (fork-spanning traces, live introspection, bench gate) =="
# 1) fork-spanning sweep trace: a 2-job chaos-kill sweep must still merge
#    every worker's span buffer under its own pid row, stitched to the
#    supervisor's sup.task spans — >= 2 pids and >= 1 cross-pid link
distobs_status=0
"$HQS_BIN" sweep "$tmp/sweep"/*.dqdimacs --jobs 2 --timeout 10 --retries 2 \
  --chaos-kill "$victim/hqs" --trace "$tmp/sweep_trace.json" \
  >"$tmp/distobs.csv" 2>"$tmp/distobs.log" || distobs_status=$?
if [ "$distobs_status" != 3 ]; then
  echo "== ci FAILED: traced chaos sweep exited $distobs_status (want 3) =="
  cat "$tmp/distobs.log"
  exit 1
fi
dune exec bin/tracecheck.exe -- "$tmp/sweep_trace.json" \
  --min-spans 3 --min-pids 2 --min-cross-links 1 --verbose

# 2) bench regression gate: the committed trajectory baseline passes
#    against itself, and a seeded 25% phase-time inflation trips it —
#    a gate that cannot fail is not a gate
dune exec bin/benchdiff.exe -- BENCH_trajectory.json BENCH_trajectory.json \
  >"$tmp/bd.ok.out"
bd_status=0
dune exec bin/benchdiff.exe -- BENCH_trajectory.json BENCH_trajectory.json \
  --inflate '.*/phase\..*\.total_s=1.25' >"$tmp/bd.bad.out" 2>&1 || bd_status=$?
if [ "$bd_status" != 1 ] || ! grep -q '^REGRESSION ' "$tmp/bd.bad.out"; then
  echo "== ci FAILED: seeded regression not caught by benchdiff (exit $bd_status) =="
  cat "$tmp/bd.bad.out"
  exit 1
fi

# 3) live daemon introspection: a chaos-killed daemon with an event log
#    must expose nonzero crash counters and latency quantiles to hqs top,
#    and leave a correlatable JSONL event trail behind
sock2="$tmp/hqs2.sock"
elog="$tmp/serve_events.jsonl"
"$HQS_BIN" serve --socket "$sock2" --workers 2 --chaos-kill 2 --chaos-seed 7 \
  --event-log "$elog" >"$tmp/serve2.log" 2>&1 &
serve2_pid=$!
i=0
until "$HQS_BIN" query --socket "$sock2" --ping >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "== ci FAILED: event-log daemon never answered a ping =="
    cat "$tmp/serve2.log"
    exit 1
  fi
  sleep 0.1
done
n=0
for f in "$tmp/srv"/*.dqdimacs; do
  n=$((n + 1))
  [ "$n" -gt 3 ] && break
  q2_status=0
  "$HQS_BIN" query --socket "$sock2" "$f" --timeout 60 >/dev/null 2>&1 || q2_status=$?
  case "$q2_status" in
  10 | 20) : ;;
  *)
    echo "== ci FAILED: event-log daemon query $n exited $q2_status =="
    cat "$tmp/serve2.log"
    exit 1
    ;;
  esac
done
crashes=""
for _ in $(seq 1 25); do
  "$HQS_BIN" top --socket "$sock2" --once >"$tmp/top.out"
  crashes=$(sed -n 's/^c crashes \([0-9]*\).*/\1/p' "$tmp/top.out")
  [ -n "$crashes" ] && [ "$crashes" -ge 1 ] && break
  sleep 0.2
done
if [ -z "$crashes" ] || [ "$crashes" -lt 1 ]; then
  echo "== ci FAILED: hqs top shows no worker crashes after a chaos kill =="
  cat "$tmp/top.out"
  exit 1
fi
grep -q 'p50=' "$tmp/top.out" || {
  echo "== ci FAILED: hqs top shows no latency quantiles after requests =="
  cat "$tmp/top.out"
  exit 1
}
kill -TERM "$serve2_pid"
serve2_status=0
wait "$serve2_pid" || serve2_status=$?
if [ "$serve2_status" != 0 ]; then
  echo "== ci FAILED: event-log daemon drain exited $serve2_status (want 0) =="
  cat "$tmp/serve2.log"
  exit 1
fi
for ev in '"ev":"start"' '"ev":"admit"' '"ev":"crash"' '"ev":"retry"' \
  '"ev":"complete"' '"ev":"stop"' '"trace":"serve-'; do
  grep -q "$ev" "$elog" || {
    echo "== ci FAILED: event log is missing $ev lines =="
    cat "$elog"
    exit 1
  }
done

# 4) lint fixtures: an event-log-writer-shaped module that bypasses the
#    fd/stdout discipline, and a stray timestamp source, must both be
#    flagged
mkdir -p "$tmp/distlint/lib/fake"
cat >"$tmp/distlint/lib/fake/writer.ml" <<'EOF'
let log path msg =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  print_endline msg;
  fd
EOF
printf 'val log : string -> string -> Unix.file_descr\n' >"$tmp/distlint/lib/fake/writer.mli"
cat >"$tmp/distlint/lib/fake/stamp.ml" <<'EOF'
let stamp () = Hqs_util.Mono.now ()
let cpu () = Sys.time ()
EOF
printf 'val stamp : unit -> float\nval cpu : unit -> float\n' >"$tmp/distlint/lib/fake/stamp.mli"
distlint_status=0
dune exec bin/lint.exe -- "$tmp/distlint" >"$tmp/distlint.out" 2>&1 || distlint_status=$?
if [ "$distlint_status" != 1 ]; then
  echo "== ci FAILED: lint fixtures exited $distlint_status (want 1) =="
  cat "$tmp/distlint.out"
  exit 1
fi
for rule in raw-fd no-stdout mono-clock-span; do
  grep -q "\[$rule\]" "$tmp/distlint.out" || {
    echo "== ci FAILED: seeded $rule violation not flagged =="
    cat "$tmp/distlint.out"
    exit 1
  }
done
echo "c distobs gate: trace stitched, bench gate trips, top live, event log complete"

echo "== cert (externally checkable certificates) =="
CERTCHECK=_build/default/bin/certcheck.exe
# 1) the verifier's trust story: it links not a single library. dune
#    describe is the ground truth for what the executable requires.
dune describe | grep -A1 '(names (certcheck))' | grep -q '(requires ())' || {
  echo "== ci FAILED: certcheck executable links libraries =="
  dune describe | grep -A1 '(names (certcheck))'
  exit 1
}
# ... and the source-level guard: the cert-isolation lint rule must fire
# on a seeded solver reference inside a bin/certcheck.ml
mkdir -p "$tmp/certlint/bin"
printf 'let f s = Cert.parse s\n' >"$tmp/certlint/bin/certcheck.ml"
certlint_status=0
dune exec bin/lint.exe -- "$tmp/certlint" >"$tmp/certlint.out" 2>&1 || certlint_status=$?
if [ "$certlint_status" != 1 ] || ! grep -q 'cert-isolation' "$tmp/certlint.out"; then
  echo "== ci FAILED: seeded cert-isolation violation not flagged (exit $certlint_status) =="
  cat "$tmp/certlint.out"
  exit 1
fi
# 2) certify the whole example suite (SAT and UNSAT families) under the
#    full auditor; every artifact must verify externally. An UNCERTIFIED
#    marker (certcheck exit 3) is tolerated only when the artifact says
#    so itself — capacity gaps are declared, never silent.
mkdir -p "$tmp/cert"
sat_inst=""
sat_cert=""
unsat_verified=0
for f in "$tmp/an"/*.dqdimacs; do
  id=$(basename "$f" .dqdimacs)
  cert="$tmp/cert/$id.cert"
  cert_solve=0
  "$HQS_BIN" "$f" --certify "$cert" --check full --timeout 60 \
    >"$tmp/cert/$id.out" 2>&1 || cert_solve=$?
  case "$cert_solve" in
  10 | 20) : ;;
  *)
    echo "== ci FAILED: certifying solve on $id exited $cert_solve =="
    cat "$tmp/cert/$id.out"
    exit 1
    ;;
  esac
  cc_status=0
  "$CERTCHECK" "$f" "$cert" >/dev/null 2>&1 || cc_status=$?
  case "$cc_status" in
  0)
    grep -q '^s cert UNSAT' "$cert" && unsat_verified=1
    if [ -z "$sat_cert" ] && grep -q '^s cert SAT' "$cert"; then
      sat_inst=$f
      sat_cert=$cert
    fi
    ;;
  3)
    grep -q '^s cert UNCERTIFIED' "$cert" || {
      echo "== ci FAILED: certcheck says uncertified but the artifact disagrees ($id) =="
      exit 1
    }
    ;;
  *)
    echo "== ci FAILED: certcheck rejected $id with exit $cc_status =="
    "$CERTCHECK" "$f" "$cert" || true
    exit 1
    ;;
  esac
done
if [ -z "$sat_cert" ] || [ "$unsat_verified" != 1 ]; then
  echo "== ci FAILED: suite did not yield both a verified SAT and UNSAT certificate =="
  exit 1
fi
# 3) a semantically corrupted artifact must be REFUTED (exit 1): flip the
#    parity of the first Skolem output literal. (A fingerprint edit is a
#    different failure class — malformed, exit 2.)
awk '{ if ($1 == "o" && !done) { done = 1; $3 = ($3 % 2 == 0) ? $3 + 1 : $3 - 1 } print }' \
  "$sat_cert" >"$tmp/cert/corrupt.cert"
corrupt_status=0
"$CERTCHECK" "$sat_inst" "$tmp/cert/corrupt.cert" >/dev/null 2>&1 || corrupt_status=$?
if [ "$corrupt_status" != 1 ]; then
  echo "== ci FAILED: corrupted certificate exited $corrupt_status (want 1 = refuted) =="
  "$CERTCHECK" "$sat_inst" "$tmp/cert/corrupt.cert" || true
  exit 1
fi
# 4) the worked example drives the same emit/round-trip/verify loop
#    programmatically and shells out to the external verifier
dune exec examples/certify.exe -- "$CERTCHECK" >"$tmp/certify_example.out" 2>&1 || {
  echo "== ci FAILED: certify example failed =="
  cat "$tmp/certify_example.out"
  exit 1
}
grep -q 'external certcheck: exit 0' "$tmp/certify_example.out" || {
  echo "== ci FAILED: certify example did not verify externally =="
  cat "$tmp/certify_example.out"
  exit 1
}
# 5) daemon recovery drill: --chaos-cert 1 poisons the first job's
#    certificate fingerprint after the solve; the post-certify audit must
#    catch it, tombstone the cache entry, re-solve under the escalated
#    config and still ship a verifiable artifact to the client
sock3="$tmp/hqs3.sock"
elog3="$tmp/cert_events.jsonl"
"$HQS_BIN" serve --socket "$sock3" --workers 2 --certify --check full \
  --chaos-cert 1 --chaos-seed 7 --event-log "$elog3" >"$tmp/serve3.log" 2>&1 &
serve3_pid=$!
i=0
until "$HQS_BIN" query --socket "$sock3" --ping >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "== ci FAILED: certifying daemon never answered a ping =="
    cat "$tmp/serve3.log"
    exit 1
  fi
  sleep 0.1
done
drill_status=0
"$HQS_BIN" query --socket "$sock3" "$sat_inst" --certify "$tmp/drill.cert" \
  --timeout 60 >"$tmp/drill.out" 2>&1 || drill_status=$?
if [ "$drill_status" != 10 ]; then
  echo "== ci FAILED: poisoned-cert drill query exited $drill_status (want 10 after recovery) =="
  cat "$tmp/drill.out"
  cat "$tmp/serve3.log"
  exit 1
fi
cc3_status=0
"$CERTCHECK" "$sat_inst" "$tmp/drill.cert" >/dev/null 2>&1 || cc3_status=$?
if [ "$cc3_status" != 0 ]; then
  echo "== ci FAILED: recovered daemon artifact did not verify (exit $cc3_status) =="
  "$CERTCHECK" "$sat_inst" "$tmp/drill.cert" || true
  exit 1
fi
# the audit failure must be visible to live introspection
cert_failures=""
for _ in $(seq 1 25); do
  "$HQS_BIN" top --socket "$sock3" --once >"$tmp/top3.out"
  cert_failures=$(sed -n 's/^c cert audits [0-9]*  audit_failures \([0-9]*\).*/\1/p' "$tmp/top3.out")
  [ -n "$cert_failures" ] && [ "$cert_failures" -ge 1 ] && break
  sleep 0.2
done
if [ -z "$cert_failures" ] || [ "$cert_failures" -lt 1 ]; then
  echo "== ci FAILED: hqs top shows no certificate audit failure after the poison =="
  cat "$tmp/top3.out"
  exit 1
fi
kill -TERM "$serve3_pid"
serve3_status=0
wait "$serve3_pid" || serve3_status=$?
if [ "$serve3_status" != 0 ]; then
  echo "== ci FAILED: certifying daemon drain exited $serve3_status (want 0) =="
  cat "$tmp/serve3.log"
  exit 1
fi
# ... and in the durable event trail: the tombstone and the re-solve
grep -q '"ev":"cert_audit"' "$elog3" || {
  echo "== ci FAILED: event log has no cert_audit record =="
  cat "$elog3"
  exit 1
}
grep -q '"ev":"retry"' "$elog3" || {
  echo "== ci FAILED: event log shows no re-solve after the cert audit failure =="
  cat "$elog3"
  exit 1
}
echo "c cert gate: suite certified+verified, corruption refuted, isolation asserted, daemon recovery drilled"

echo "== ci OK (smoke verdict exit $status, traced exit $trace_status, sweep crash+resume verified, serve gate passed, distobs gate passed, cert gate passed, deepcheck gate passed) =="
