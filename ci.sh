#!/bin/sh
# CI entry point: run from the repo root.
#
#   ./ci.sh
#
# Steps:
#   1. full build
#   2. format check (skipped with a notice if ocamlformat is absent)
#   3. static analysis (bin/lint: catch-alls, polymorphic compare,
#      Obj.magic, failwith in lib/, missing .mli)
#   4. unit + property test suites
#   5. chaos-enabled smoke solve: generate a small PEC instance and
#      solve it with fault injection armed AND the soundness auditor at
#      full depth (HQS_CHECK=full), proving the degradation ladder and
#      the stage audits end-to-end through the real CLI
#   6. traced smoke solve: solve an instance with incomparable dependency
#      sets under --trace and validate the trace with bin/tracecheck
#      (well-formed Chrome JSON, balanced spans, >= 6 pipeline phases)
set -eu
cd "$(dirname "$0")"

echo "== build =="
dune build

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== format =="
  dune build @fmt
else
  echo "== format: skipped (ocamlformat not installed) =="
fi

echo "== lint =="
dune exec bin/lint.exe -- lib bin bench test

echo "== tests =="
dune runtest

echo "== chaos smoke solve =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
f=$(dune exec bin/genpec.exe -- one pec_xor --size 3 --boxes 1 --out "$tmp")
status=0
HQS_CHECK=full dune exec bin/hqs_cli.exe -- "$f" --chaos-seed 42 --timeout 60 --stats || status=$?
case "$status" in
10 | 20) : ;;
*)
    echo "== ci FAILED: smoke solve exited $status =="
    exit 1
    ;;
esac

echo "== traced smoke solve =="
# boxes=2 makes the dependency sets incomparable, so the solve actually
# runs elimination-set selection and universal expansion before the
# back end — the trace must cover the whole pipeline
f2=$(dune exec bin/genpec.exe -- one pec_xor --size 3 --boxes 2 --out "$tmp")
trace_status=0
dune exec bin/hqs_cli.exe -- "$f2" --trace "$tmp/trace.json" --metrics --timeout 60 2>"$tmp/trace.err" || trace_status=$?
case "$trace_status" in
10 | 20) : ;;
*)
    echo "== ci FAILED: traced solve exited $trace_status =="
    cat "$tmp/trace.err"
    exit 1
    ;;
esac
dune exec bin/tracecheck.exe -- "$tmp/trace.json" --min-spans 6 --verbose
grep -q '^c metric ' "$tmp/trace.err" || {
  echo "== ci FAILED: --metrics printed no metric lines =="
  exit 1
}
echo "== ci OK (smoke verdict exit $status, traced exit $trace_status) =="
