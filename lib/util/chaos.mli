(** Deterministic fault injection.

    Fallible solver stages are wired with named injection points (e.g.
    ["maxsat.minset"], ["fraig.sweep"], ["qbf.elim"], ["elim.universal"]).
    A chaos plan arms a subset of those points with a seeded RNG; when an
    armed point fires, the caller behaves as if the stage had failed
    (stage timeout or resource blowup), so every degradation and fallback
    path is exercisable from ordinary unit tests without constructing a
    genuinely pathological instance.

    Injection is off by default ({!off} never fires) and fully
    deterministic: the firing sequence is a function of the seed, the
    point name, and the query order — independent of wall-clock time,
    global [Random] state, or other points. *)

type t

val off : t
(** Never fires; the production default. Querying it costs one branch. *)

val create : ?prob:float -> ?limit:int -> seed:int -> points:string list -> unit -> t
(** A chaos plan. [points] restricts injection to the named points; the
    empty list arms {e every} point. Each armed point fires on a query
    with probability [prob] (default 1.0), at most [limit] times in total
    (default 1 — so a degraded retry of the same stage is not re-faulted).
    Each point draws from its own RNG stream derived from [seed]. *)

val enabled : t -> bool

val fire : t -> string -> bool
(** [fire t point]: should the fault at [point] trigger now? Counts the
    query and the firing against [limit]. *)

val fired : t -> (string * int) list
(** Points that fired so far, with counts, sorted by name. *)

val parse_points : string -> string list
(** Split a comma-separated CLI argument into point names. *)

val worker_kill_point : task:string -> attempt:int -> string
(** Name of the sweep executor's worker-kill fault point for one spawn:
    ["exec.worker.kill:<task>#<attempt>"]. A forked worker queries it
    right after applying its resource limits and, if it fires, kills its
    own process group with SIGKILL — the supervised analogue of a solver
    segfault. The attempt number is part of the name because every worker
    inherits a {e fresh copy} of the parent's chaos state across [fork],
    so per-point fire limits cannot tell attempts apart. *)
