/* Monotonic clock for Budget/Obs timing: CLOCK_MONOTONIC is immune to
   NTP step adjustments and is system-wide (since boot), so parent and
   forked worker processes read comparable timestamps. */
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <stdint.h>

CAMLprim value hqs_mono_clock_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    return caml_copy_int64(-1);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
