type point_state = { rng : Rng.t; mutable queried : int; mutable fired : int }

type armed = {
  seed : int;
  prob : float;
  limit : int;
  all_points : bool;
  allowed : (string, unit) Hashtbl.t;
  states : (string, point_state) Hashtbl.t;
}

type t = Off | Armed of armed

let off = Off

(* FNV-1a: point names must hash identically across runs and OCaml
   versions, since they seed the per-point fault streams *)
let hash_name s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land max_int) s;
  !h

let create ?(prob = 1.0) ?(limit = 1) ~seed ~points () =
  let allowed = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace allowed p ()) points;
  Armed { seed; prob; limit; all_points = points = []; allowed; states = Hashtbl.create 8 }

let enabled = function Off -> false | Armed _ -> true

let state a name =
  match Hashtbl.find_opt a.states name with
  | Some s -> s
  | None ->
      (* independent stream per point: the name only picks the stream *)
      let s = { rng = Rng.create (a.seed lxor hash_name name); queried = 0; fired = 0 } in
      Hashtbl.replace a.states name s;
      s

let fire t name =
  match t with
  | Off -> false
  | Armed a ->
      if not (a.all_points || Hashtbl.mem a.allowed name) then false
      else begin
        let s = state a name in
        s.queried <- s.queried + 1;
        let hit = s.fired < a.limit && Rng.float s.rng 1.0 < a.prob in
        if hit then s.fired <- s.fired + 1;
        hit
      end

let fired = function
  | Off -> []
  | Armed a ->
      Hashtbl.fold (fun k s acc -> if s.fired > 0 then (k, s.fired) :: acc else acc) a.states []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let parse_points s =
  String.split_on_char ',' s |> List.map String.trim |> List.filter (fun p -> p <> "")

(* one injection point per (task, attempt): each forked worker inherits a
   fresh copy of the chaos state, so per-process fire counts cannot
   distinguish attempts — the attempt number must be part of the name *)
let worker_kill_point ~task ~attempt = Printf.sprintf "exec.worker.kill:%s#%d" task attempt
