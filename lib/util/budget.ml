exception Timeout
exception Out_of_memory_budget

type t = {
  deadline : float; (* this budget's own deadline; infinity = unlimited *)
  hard_deadline : float; (* the root solve deadline *)
  mem_limit_words : int; (* heap ceiling; max_int = unlimited *)
}

let unlimited = { deadline = infinity; hard_deadline = infinity; mem_limit_words = max_int }

(* monotonic, so deadlines and elapsed times are immune to NTP steps;
   see [Mono] *)
let now () = Mono.now ()

let of_seconds s =
  let d = now () +. s in
  { deadline = d; hard_deadline = d; mem_limit_words = max_int }

let sub ?seconds ?frac t =
  let left = t.deadline -. now () in
  let local =
    match (seconds, frac) with
    | None, None -> infinity
    | Some s, None -> s
    | None, Some f -> f *. left
    | Some s, Some f -> min s (f *. left)
  in
  if local = infinity then t else { t with deadline = min t.deadline (now () +. local) }

let words_per_mb = 1024 * 1024 / (Sys.word_size / 8)
let with_mem_limit_mb t mb = { t with mem_limit_words = mb * words_per_mb }
let mem_limit_words t = if t.mem_limit_words = max_int then None else Some t.mem_limit_words
(* [quick_stat] covers only the major heap, which is 0 early in a run
   (OCaml 5 promotes lazily); add the mapped minor arena so the governor
   reflects memory the process actually holds and small ceilings trip
   deterministically *)
let heap_words () = (Gc.quick_stat ()).Gc.heap_words + (Gc.get ()).Gc.minor_heap_size
let mem_exceeded t = t.mem_limit_words <> max_int && heap_words () > t.mem_limit_words
let expired t = t.deadline < infinity && now () > t.deadline
let hard_expired t = t.hard_deadline < infinity && now () > t.hard_deadline

let check t =
  if expired t then raise Timeout;
  if mem_exceeded t then raise Out_of_memory_budget

let remaining t = if t.deadline = infinity then infinity else t.deadline -. now ()
