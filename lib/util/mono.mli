(** Monotonic time source for every elapsed-time measurement in the
    pipeline ({!Budget} deadlines, harness run times, [Obs] span
    timestamps).

    [Unix.gettimeofday] can step backwards under NTP adjustment, which
    would make child/parent elapsed-time accounting go negative; this
    module reads [clock_gettime(CLOCK_MONOTONIC)] through a C stub
    instead. CLOCK_MONOTONIC counts seconds since boot, system-wide, so
    timestamps are comparable between the sweep supervisor and its forked
    workers. On the (unexpected) platform where the syscall fails, a
    monotonicized wall clock — one that refuses to go backwards — is used
    as a degraded fallback. *)

val now : unit -> float
(** Seconds from an arbitrary fixed origin (boot time on Linux).
    Non-decreasing within and across the processes of one machine. Use
    only for differences, never as a calendar time. *)

val available : bool
(** Whether the OS monotonic clock answered at startup; [false] means
    {!now} is running on the monotonicized-wall-clock fallback. *)

val fork_reinit : unit -> unit
(** Call in a freshly forked worker: drop the fallback clock's inherited
    high-water mark so the child never keeps extending parent state.
    A no-op in effect when {!available} (the normal case); part of the
    fork-reinit discipline checked by [bin/deepcheck]. *)
