external clock_ns : unit -> int64 = "hqs_mono_clock_ns"

(* evaluated once at module init: does the OS clock work? *)
let available = Int64.compare (clock_ns ()) 0L >= 0

(* fallback: monotonicize the wall clock by never letting it go
   backwards. A backwards NTP step freezes the reading until the wall
   clock catches up, which keeps elapsed times non-negative (the property
   the harness needs) at the cost of under-reporting during the jump. *)
let fallback_last = ref neg_infinity

let fallback_now () =
  let t = Unix.gettimeofday () in
  let m = if t > !fallback_last then t else !fallback_last in
  fallback_last := m;
  m

let now () = if available then Int64.to_float (clock_ns ()) *. 1e-9 else fallback_now ()

(* a forked child inherits the parent's high-water mark; on the fallback
   path that mark is parent observability state the child must not keep
   extending (the deepcheck fork-safety analysis sanctions this ref only
   because this reset runs on every worker entry). Resetting to
   [neg_infinity] is safe: monotonicity is a per-process property and the
   next reading re-seeds the mark. *)
let fork_reinit () = fallback_last := neg_infinity
