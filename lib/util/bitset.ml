(* Dense bitset: an int array of 62-bit words, normalized so that the last
   word is non-zero (canonical representation makes [equal]/[compare]/[hash]
   structural). *)

type t = int array

let bits_per_word = Sys.int_size - 1 (* 62 on 64-bit: keep sign bit clear *)

let empty : t = [||]

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let check_elt i = if i < 0 then invalid_arg "Bitset: negative element"

let singleton i =
  check_elt i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  let a = Array.make (w + 1) 0 in
  a.(w) <- 1 lsl b;
  a

let mem i (s : t) =
  check_elt i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  w < Array.length s && s.(w) land (1 lsl b) <> 0

let add i (s : t) =
  check_elt i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  let len = max (Array.length s) (w + 1) in
  let a = Array.make len 0 in
  Array.blit s 0 a 0 (Array.length s);
  a.(w) <- a.(w) lor (1 lsl b);
  a

let remove i (s : t) =
  check_elt i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  if w >= Array.length s then s
  else begin
    let a = Array.copy s in
    a.(w) <- a.(w) land lnot (1 lsl b);
    normalize a
  end

let union (x : t) (y : t) =
  let lx = Array.length x and ly = Array.length y in
  let a = Array.make (max lx ly) 0 in
  for i = 0 to Array.length a - 1 do
    a.(i) <- (if i < lx then x.(i) else 0) lor (if i < ly then y.(i) else 0)
  done;
  a

let inter (x : t) (y : t) =
  let n = min (Array.length x) (Array.length y) in
  let a = Array.make n 0 in
  for i = 0 to n - 1 do
    a.(i) <- x.(i) land y.(i)
  done;
  normalize a

let diff (x : t) (y : t) =
  let lx = Array.length x and ly = Array.length y in
  let a = Array.make lx 0 in
  for i = 0 to lx - 1 do
    a.(i) <- x.(i) land lnot (if i < ly then y.(i) else 0)
  done;
  normalize a

let subset (x : t) (y : t) =
  let lx = Array.length x and ly = Array.length y in
  if lx > ly then false
  else begin
    let rec loop i = i >= lx || (x.(i) land lnot y.(i) = 0 && loop (i + 1)) in
    loop 0
  end

let equal (x : t) (y : t) =
  let lx = Array.length x in
  lx = Array.length y
  &&
  let rec loop i = i >= lx || (x.(i) = y.(i) && loop (i + 1)) in
  loop 0

(* shortest-first, then word-wise — the order Stdlib.compare gave on the
   canonical representation, now independent of it *)
let compare (x : t) (y : t) =
  let lx = Array.length x and ly = Array.length y in
  if lx <> ly then Int.compare lx ly
  else begin
    let rec loop i =
      if i >= lx then 0
      else
        let c = Int.compare x.(i) y.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0
  end

(* FNV-1a over the words; words are already canonical (no trailing zeros) *)
let hash (s : t) =
  Array.fold_left (fun h w -> (h lxor (w lxor (w lsr 31))) * 0x01000193 land max_int) 0x811c9dc5 s

let popcount w =
  let rec loop w acc = if w = 0 then acc else loop (w land (w - 1)) (acc + 1) in
  loop w 0

let cardinal (s : t) = Array.fold_left (fun acc w -> acc + popcount w) 0 s
let is_empty (s : t) = Array.length s = 0

let iter f (s : t) =
  Array.iteri
    (fun wi w ->
      for b = 0 to bits_per_word - 1 do
        if w land (1 lsl b) <> 0 then f ((wi * bits_per_word) + b)
      done)
    s

let fold f (s : t) init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let to_list (s : t) = List.rev (fold (fun i acc -> i :: acc) s [])
let of_list l = List.fold_left (fun s i -> add i s) empty l

let choose (s : t) =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) s;
    None
  with Found i -> Some i

let for_all p (s : t) =
  let exception Fail in
  try
    iter (fun i -> if not (p i) then raise Fail) s;
    true
  with Fail -> false

let exists p (s : t) = not (for_all (fun i -> not (p i)) s)
let filter p (s : t) = fold (fun i acc -> if p i then add i acc else acc) s empty

let pp fmt s =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       Format.pp_print_int)
    (to_list s)
