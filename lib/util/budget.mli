(** Wall-clock and resource budgets, hierarchically.

    The paper aborts runs at 2 h / 8 GB; we mirror that with a per-run
    deadline, a heap-word governor sampled from [Gc.quick_stat], and the
    AIG node budget of {!Aig.Man}. Solvers poll [check] at coarse
    intervals and raise on exhaustion, so runs terminate promptly without
    signals.

    Budgets form a hierarchy: {!sub} derives a child budget for one stage
    of a solve. The child carries its own (soft) deadline but remembers
    the root (hard) deadline and inherits the memory ceiling, so a stage
    can time out locally — the enclosing solve catches [Timeout], asks
    {!expired} about the {e parent} budget, and on [false] falls back to a
    cheaper strategy instead of aborting the whole run. *)

exception Timeout
exception Out_of_memory_budget

type t

val unlimited : t

val of_seconds : float -> t
(** A root budget with deadline [now + s] (both soft and hard). *)

val sub : ?seconds:float -> ?frac:float -> t -> t
(** [sub ?seconds ?frac t] is a child budget for a single stage: its
    deadline is [t]'s clipped to [now + seconds] and/or
    [now + frac * remaining t] (the smaller wins when both are given);
    the hard deadline and memory ceiling are inherited unchanged. *)

val with_mem_limit_mb : t -> int -> t
(** Impose a heap ceiling of [mb] megabytes (major + minor heap words as
    reported by [Gc.quick_stat]). Inherited by {!sub}-budgets. *)

val check : t -> unit
(** @raise Timeout if the deadline has passed.
    @raise Out_of_memory_budget if the heap ceiling is exceeded. *)

val expired : t -> bool
(** This budget's own deadline has passed. For a stage budget built with
    {!sub} this is the {e soft} question; ask the parent to distinguish a
    local stage timeout from the end of the whole run. *)

val hard_expired : t -> bool
(** The root deadline has passed: nothing can be salvaged. *)

val remaining : t -> float
(** Seconds until this budget's deadline; [infinity] if unlimited. *)

val mem_exceeded : t -> bool
(** The heap ceiling (if any) is currently exceeded. *)

val mem_limit_words : t -> int option
val heap_words : unit -> int
(** Current heap size in words: the major heap per [Gc.quick_stat]
    (cheap: no heap walk) plus the mapped minor arena. *)

val now : unit -> float
(** The {!Mono} monotonic clock: seconds from an arbitrary origin,
    non-decreasing even under NTP wall-clock adjustment. All deadlines
    and elapsed times in this module are measured on it. *)
