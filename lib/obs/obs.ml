(* Zero-dependency observability: hierarchical tracing spans, a metrics
   registry, and a sampling phase profiler.

   Tracing is off by default and gated by one mutable flag: a disabled
   [Span.with_] is a single branch plus the call to the thunk. Metrics
   are always-on plain field updates (an [int]/[float] store each), cheap
   enough for hot paths like the AIG structural-hash lookup. *)

(* span timestamps share the Budget clock: monotonic, so traces from a
   run that straddles an NTP step still have ordered timestamps *)
let now_s () = Hqs_util.Budget.now ()

(* ------------------------------------------------------------ attributes *)

type value = Int of int | Float of float | Str of string | Bool of bool

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_float f =
  (* JSON has no nan/inf literals; quote them instead of emitting garbage *)
  if Float.is_finite f then
    let s = Printf.sprintf "%.17g" f in
    let short = Printf.sprintf "%.6g" f in
    if float_of_string short = f then short else s
  else Printf.sprintf "\"%s\"" (if Float.is_nan f then "nan" else if f > 0.0 then "inf" else "-inf")

let json_of_value = function
  | Int i -> string_of_int i
  | Float f -> json_of_float f
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Bool b -> if b then "true" else "false"

(* --------------------------------------------------------------- metrics *)

module Metrics = struct
  type kind = Counter | Gauge | Histogram
  type counter = { mutable c : int }
  type gauge = { mutable g : float; mutable g_set : bool }

  type histogram = {
    mutable n : int;
    mutable sum : float;
    mutable mn : float;
    mutable mx : float;
  }

  type entry = C of counter | G of gauge | H of histogram

  let registry : (string, entry) Hashtbl.t = Hashtbl.create 64

  let register name mk unpack =
    match Hashtbl.find_opt registry name with
    | Some e -> (
        match unpack e with
        | Some x -> x
        | None -> invalid_arg ("Obs.Metrics: " ^ name ^ " already registered as another kind"))
    | None ->
        let x, e = mk () in
        Hashtbl.replace registry name e;
        x

  let counter name =
    register name
      (fun () ->
        let c = { c = 0 } in
        (c, C c))
      (function C c -> Some c | G _ | H _ -> None)

  let gauge name =
    register name
      (fun () ->
        let g = { g = 0.0; g_set = false } in
        (g, G g))
      (function G g -> Some g | C _ | H _ -> None)

  let histogram name =
    register name
      (fun () ->
        let h = { n = 0; sum = 0.0; mn = 0.0; mx = 0.0 } in
        (h, H h))
      (function H h -> Some h | C _ | G _ -> None)

  let incr ?(by = 1) c = c.c <- c.c + by
  let counter_value c = c.c

  let set g v =
    g.g <- v;
    g.g_set <- true

  let set_max g v = if (not g.g_set) || v > g.g then set g v
  let gauge_value g = g.g

  let observe h v =
    if h.n = 0 then begin
      h.mn <- v;
      h.mx <- v
    end
    else begin
      if v < h.mn then h.mn <- v;
      if v > h.mx then h.mx <- v
    end;
    h.n <- h.n + 1;
    h.sum <- h.sum +. v

  type hist_stats = { count : int; sum : float; min_ : float; max_ : float }

  let histogram_stats h = { count = h.n; sum = h.sum; min_ = h.mn; max_ = h.mx }

  (* rolling windows: the last [capacity] observations in a ring buffer,
     with nearest-rank quantiles. A deliberately separate registry:
     windows never appear in [snapshot]/[delta], so cross-process frames
     and BENCH files keep their exact shape *)
  type window = { cap : int; wbuf : float array; mutable widx : int; mutable wn : int }

  let windows : (string, window) Hashtbl.t = Hashtbl.create 8

  let window ?(capacity = 512) name =
    if capacity <= 0 then invalid_arg "Obs.Metrics.window: capacity must be positive";
    match Hashtbl.find_opt windows name with
    | Some w -> w
    | None ->
        let w = { cap = capacity; wbuf = Array.make capacity 0.0; widx = 0; wn = 0 } in
        Hashtbl.replace windows name w;
        w

  let wobserve w v =
    w.wbuf.(w.widx) <- v;
    w.widx <- (w.widx + 1) mod w.cap;
    if w.wn < w.cap then w.wn <- w.wn + 1

  let window_count w = w.wn

  let quantile w q =
    if w.wn = 0 then nan
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let a = Array.sub w.wbuf 0 w.wn in
      Array.sort Float.compare a;
      let rank = int_of_float (Float.ceil (q *. float_of_int w.wn)) in
      a.(Stdlib.max 0 (Stdlib.min (w.wn - 1) (rank - 1)))
    end

  type sample = { name : string; kind : kind; v : float }

  let snapshot () =
    let acc = ref [] in
    Hashtbl.iter
      (fun name entry ->
        match entry with
        | C c -> acc := { name; kind = Counter; v = float_of_int c.c } :: !acc
        | G g -> acc := { name; kind = Gauge; v = g.g } :: !acc
        | H h ->
            acc :=
              { name = name ^ ".count"; kind = Histogram; v = float_of_int h.n }
              :: { name = name ^ ".sum"; kind = Histogram; v = h.sum }
              :: { name = name ^ ".min"; kind = Histogram; v = h.mn }
              :: { name = name ^ ".max"; kind = Histogram; v = h.mx }
              :: !acc)
      registry;
    List.sort (fun a b -> String.compare a.name b.name) !acc

  let delta ~before ~after =
    let base = Hashtbl.create 64 in
    List.iter (fun s -> Hashtbl.replace base s.name s.v) before;
    List.map
      (fun s ->
        match s.kind with
        | Gauge -> s (* a gauge is a level, not a flow: report it as-is *)
        | Counter | Histogram -> (
            match Hashtbl.find_opt base s.name with
            | Some v0 ->
                (* histogram min/max are not monotonic; keep the absolute *)
                if
                  String.ends_with ~suffix:".min" s.name
                  || String.ends_with ~suffix:".max" s.name
                then s
                else { s with v = s.v -. v0 }
            | None -> s))
      after

  let to_assoc samples = List.map (fun s -> (s.name, s.v)) samples

  let find samples name =
    List.find_map (fun s -> if String.equal s.name name then Some s.v else None) samples

  let reset_all () =
    Hashtbl.iter
      (fun _ entry ->
        match entry with
        | C c -> c.c <- 0
        | G g ->
            g.g <- 0.0;
            g.g_set <- false
        | H h ->
            h.n <- 0;
            h.sum <- 0.0;
            h.mn <- 0.0;
            h.mx <- 0.0)
      registry;
    Hashtbl.iter
      (fun _ w ->
        w.widx <- 0;
        w.wn <- 0)
      windows

  let kind_name = function Counter -> "counter" | Gauge -> "gauge" | Histogram -> "histogram"

  let kind_of_name = function
    | "counter" -> Some Counter
    | "gauge" -> Some Gauge
    | "histogram" -> Some Histogram
    | _ -> None

  (* child -> parent merge over a process boundary: a forked sweep worker
     sends its per-task snapshot delta; the supervisor folds it into its
     own registry so sweep-level metric output aggregates every worker *)
  let absorb samples =
    (* histogram instruments are flattened to 4 series per name in a
       snapshot; regroup them so the merge updates one instrument *)
    let hists : (string, histogram) Hashtbl.t = Hashtbl.create 8 in
    let part name suffix =
      if String.ends_with ~suffix name then
        Some (String.sub name 0 (String.length name - String.length suffix))
      else None
    in
    let hist_part base =
      match Hashtbl.find_opt hists base with
      | Some h -> h
      | None ->
          let h = { n = 0; sum = 0.0; mn = nan; mx = nan } in
          Hashtbl.replace hists base h;
          h
    in
    List.iter
      (fun s ->
        match s.kind with
        | Counter -> incr ~by:(int_of_float s.v) (counter s.name)
        | Gauge -> set_max (gauge s.name) s.v
        | Histogram -> (
            match
              ( part s.name ".count",
                part s.name ".sum",
                part s.name ".min",
                part s.name ".max" )
            with
            | Some base, _, _, _ -> (hist_part base).n <- int_of_float s.v
            | _, Some base, _, _ -> (hist_part base).sum <- s.v
            | _, _, Some base, _ -> (hist_part base).mn <- s.v
            | _, _, _, Some base -> (hist_part base).mx <- s.v
            | None, None, None, None -> ()))
      samples;
    Hashtbl.iter
      (fun base part ->
        if part.n > 0 then begin
          let h = histogram base in
          if h.n = 0 then begin
            h.mn <- part.mn;
            h.mx <- part.mx
          end
          else begin
            if part.mn < h.mn then h.mn <- part.mn;
            if part.mx > h.mx then h.mx <- part.mx
          end;
          h.n <- h.n + part.n;
          h.sum <- h.sum +. part.sum
        end)
      hists
end

(* ------------------------------------------------------------------- json *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some d when Char.equal c d -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.equal (String.sub s !pos (String.length word)) word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | None -> fail "unterminated escape"
            | Some c ->
                advance ();
                (match c with
                | '"' -> Buffer.add_char buf '"'
                | '\\' -> Buffer.add_char buf '\\'
                | '/' -> Buffer.add_char buf '/'
                | 'b' -> Buffer.add_char buf '\b'
                | 'f' -> Buffer.add_char buf '\012'
                | 'n' -> Buffer.add_char buf '\n'
                | 'r' -> Buffer.add_char buf '\r'
                | 't' -> Buffer.add_char buf '\t'
                | 'u' ->
                    if !pos + 4 > n then fail "truncated \\u escape";
                    let hex = String.sub s !pos 4 in
                    String.iter
                      (fun h ->
                        match h with
                        | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                        | _ -> fail "bad \\u escape")
                      hex;
                    pos := !pos + 4;
                    (* validation-grade decoding: a replacement char keeps
                       the value printable without a full UTF-8 encoder *)
                    Buffer.add_char buf '?'
                | _ -> fail "bad escape");
                loop ())
        | Some c when Char.code c < 0x20 -> fail "raw control character in string"
        | Some c ->
            advance ();
            Buffer.add_char buf c;
            loop ()
      in
      loop ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      match float_of_string_opt text with Some f -> f | None -> fail ("bad number " ^ text)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if (match peek () with Some '}' -> true | _ -> false) then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((key, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((key, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (members [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if (match peek () with Some ']' -> true | _ -> false) then begin
            advance ();
            Arr []
          end
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Arr (elements [])
          end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg

  (* the writer is the dual of [parse] and canonical (a fixed rendering
     per value), so journal checksums computed over [to_string] survive a
     parse/serialize round trip *)
  let render v =
    let buf = Buffer.create 256 in
    let rec write = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Num f -> Buffer.add_string buf (json_of_float f)
      | Str s ->
          Buffer.add_char buf '"';
          Buffer.add_string buf (json_escape s);
          Buffer.add_char buf '"'
      | Arr l ->
          Buffer.add_char buf '[';
          List.iteri
            (fun i x ->
              if i > 0 then Buffer.add_char buf ',';
              write x)
            l;
          Buffer.add_char buf ']'
      | Obj fields ->
          Buffer.add_char buf '{';
          List.iteri
            (fun i (k, x) ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_char buf '"';
              Buffer.add_string buf (json_escape k);
              Buffer.add_string buf "\":";
              write x)
            fields;
          Buffer.add_char buf '}'
    in
    write v;
    Buffer.contents buf

  let member key = function
    | Obj fields -> List.find_map (fun (k, v) -> if String.equal k key then Some v else None) fields
    | Null | Bool _ | Num _ | Str _ | Arr _ -> None

  let to_list = function Arr l -> Some l | Null | Bool _ | Num _ | Str _ | Obj _ -> None
  let to_string = function Str s -> Some s | Null | Bool _ | Num _ | Arr _ | Obj _ -> None
  let to_number = function Num f -> Some f | Null | Bool _ | Str _ | Arr _ | Obj _ -> None
end

(* ---------------------------------------------------------------- tracing *)

type ph = Begin | End | Instant

type event = { name : string; ph : ph; ts_us : float; tid : int; attrs : (string * value) list }

(* one global trace state: [on] is the single branch every disabled
   instrumentation point pays. [foreign] holds event batches recorded in
   other processes (forked workers), keyed by their pid, merged into the
   Chrome output as separate process rows. *)
type trace_state = {
  mutable on : bool;
  mutable rev_events : event list;
  mutable count : int;
  mutable dropped : int;
  mutable t0 : float;
  mutable stack : (string * float) list; (* open spans, innermost first, with begin ts *)
  mutable pid : int;
  mutable foreign : (int * event list) list; (* newest batch first *)
  mutable truncated : bool;
}

let st =
  {
    on = false;
    rev_events = [];
    count = 0;
    dropped = 0;
    t0 = 0.0;
    stack = [];
    pid = 0;
    foreign = [];
    truncated = false;
  }

(* a runaway trace must not OOM the solve it is observing *)
let max_events = 2_000_000

let push ev =
  if st.count >= max_events then st.dropped <- st.dropped + 1
  else begin
    st.rev_events <- ev :: st.rev_events;
    st.count <- st.count + 1
  end

(* ------------------------------------------------------ sampling profiler *)

module Sampler = struct
  type t = { mutable last : float; phases : (string, float * int) Hashtbl.t }

  let state = { last = 0.0; phases = Hashtbl.create 16 }

  let reset () =
    state.last <- now_s ();
    Hashtbl.reset state.phases

  let tick () =
    if st.on then begin
      let now = now_s () in
      let dt = now -. state.last in
      state.last <- now;
      if dt >= 0.0 then begin
        let phase = match st.stack with (name, _) :: _ -> name | [] -> "(idle)" in
        let s, n = Option.value ~default:(0.0, 0) (Hashtbl.find_opt state.phases phase) in
        Hashtbl.replace state.phases phase (s +. dt, n + 1)
      end
    end

  let phase_seconds () =
    let acc = Hashtbl.fold (fun name (s, n) acc -> (name, s, n) :: acc) state.phases [] in
    List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) acc
end

module Trace = struct
  type nonrec ph = ph = Begin | End | Instant

  type nonrec event = event = {
    name : string;
    ph : ph;
    ts_us : float;
    tid : int;
    attrs : (string * value) list;
  }

  let enabled () = st.on

  let reset () =
    st.on <- false;
    st.rev_events <- [];
    st.count <- 0;
    st.dropped <- 0;
    st.stack <- [];
    st.foreign <- [];
    st.truncated <- false

  let start () =
    reset ();
    st.t0 <- now_s ();
    st.pid <- Unix.getpid ();
    st.on <- true;
    Sampler.reset ()

  let stop () = st.on <- false
  let events () = List.rev st.rev_events
  let dropped () = st.dropped
  let depth () = List.length st.stack
  let truncated () = st.truncated

  (* called first thing in a freshly forked worker: keep [on] and the
     clock origin (the Budget clock is CLOCK_MONOTONIC, machine-wide, so
     child timestamps merge directly into the parent's timeline) but drop
     the parent's buffered events and open-span stack, which belong to
     the parent's row of the merged trace *)
  let fork_child () =
    st.rev_events <- [];
    st.count <- 0;
    st.dropped <- 0;
    st.stack <- [];
    st.foreign <- [];
    st.truncated <- false;
    st.pid <- Unix.getpid ()

  (* stack-free event emission for code that multiplexes overlapping
     logical tasks (the sweep supervisor runs [jobs] tasks at once, one
     [tid] row each) where [Span.with_]'s strict nesting cannot apply *)
  let emit ?(tid = 1) ?(attrs = []) name ph =
    if st.on then push { name; ph; ts_us = (now_s () -. st.t0) *. 1e6; tid; attrs }

  let ph_label = function Begin -> "B" | End -> "E" | Instant -> "i"
  let ph_of_label = function "B" -> Some Begin | "E" -> Some End | "i" -> Some Instant | _ -> None

  let value_to_json = function
    | Int i -> Json.Num (float_of_int i)
    | Float f -> Json.Num f
    | Str s -> Json.Str s
    | Bool b -> Json.Bool b

  let value_of_json = function
    | Json.Num f ->
        if Float.is_integer f && Float.abs f < 1e15 then Int (int_of_float f) else Float f
    | Json.Str s -> Str s
    | Json.Bool b -> Bool b
    | Json.Null | Json.Arr _ | Json.Obj _ -> Str "?"

  let events_to_json evs =
    Json.Arr
      (List.map
         (fun ev ->
           let base =
             [
               ("n", Json.Str ev.name);
               ("p", Json.Str (ph_label ev.ph));
               ("t", Json.Num ev.ts_us);
             ]
           in
           let tid = if ev.tid = 1 then [] else [ ("tid", Json.Num (float_of_int ev.tid)) ] in
           let attrs =
             if ev.attrs = [] then []
             else [ ("a", Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) ev.attrs)) ]
           in
           Json.Obj (base @ tid @ attrs))
         evs)

  (* best-effort decode: malformed entries are skipped, not fatal — the
     batch may come from a worker killed mid-write *)
  let events_of_json j =
    match Json.to_list j with
    | None -> []
    | Some items ->
        List.filter_map
          (fun it ->
            match (Json.member "n" it, Json.member "p" it, Json.member "t" it) with
            | Some (Json.Str name), Some (Json.Str p), Some (Json.Num ts) ->
                Option.map
                  (fun ph ->
                    let tid =
                      match Json.member "tid" it with
                      | Some (Json.Num t) -> int_of_float t
                      | _ -> 1
                    in
                    let attrs =
                      match Json.member "a" it with
                      | Some (Json.Obj kvs) -> List.map (fun (k, v) -> (k, value_of_json v)) kvs
                      | _ -> []
                    in
                    { name; ph; ts_us = ts; tid; attrs })
                  (ph_of_label p)
            | _ -> None)
          items

  (* merge a batch recorded in another process under its own pid row.
     Unbalanced Begin events — the worker died by signal mid-span — get
     synthesized End events at the batch's horizon so the merged file is
     well-formed, and the whole trace is flagged truncated instead of
     being written torn. *)
  let inject ~pid ?(dropped = 0) ?(truncated = false) evs =
    st.dropped <- st.dropped + dropped;
    if truncated then st.truncated <- true;
    let max_ts = List.fold_left (fun acc ev -> Float.max acc ev.ts_us) 0.0 evs in
    let stacks : (int, (string * event) list ref) Hashtbl.t = Hashtbl.create 4 in
    let stack_of tid =
      match Hashtbl.find_opt stacks tid with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.replace stacks tid r;
          r
    in
    List.iter
      (fun ev ->
        match ev.ph with
        | Begin ->
            let r = stack_of ev.tid in
            r := (ev.name, ev) :: !r
        | End -> (
            let r = stack_of ev.tid in
            match !r with (n, _) :: rest when String.equal n ev.name -> r := rest | _ -> ())
        | Instant -> ())
      evs;
    let repaired = ref [] in
    Hashtbl.iter
      (fun tid r ->
        List.iter
          (fun (name, _) ->
            st.truncated <- true;
            repaired :=
              { name; ph = End; ts_us = max_ts; tid; attrs = [ ("truncated", Bool true) ] }
              :: !repaired)
          !r)
      stacks;
    let batch = evs @ List.rev !repaired in
    if batch <> [] then st.foreign <- (pid, batch) :: st.foreign

  let event_json ~pid ev =
    let buf = Buffer.create 128 in
    Buffer.add_string buf
      (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"hqs\",\"ph\":\"%s\",\"ts\":%s,\"pid\":%d,\"tid\":%d"
         (json_escape ev.name) (ph_label ev.ph) (json_of_float ev.ts_us) pid ev.tid);
    (match ev.ph with Instant -> Buffer.add_string buf ",\"s\":\"t\"" | Begin | End -> ());
    if ev.attrs <> [] then begin
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (json_escape k) (json_of_value v)))
        ev.attrs;
      Buffer.add_char buf '}'
    end;
    Buffer.add_char buf '}';
    Buffer.contents buf

  let to_chrome_json () =
    let own_pid = if st.pid <> 0 then st.pid else 1 in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"traceEvents\":[";
    let first = ref true in
    let emit1 pid ev =
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf (event_json ~pid ev)
    in
    List.iter (emit1 own_pid) (events ());
    List.iter (fun (pid, evs) -> List.iter (emit1 pid) evs) (List.rev st.foreign);
    Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"";
    if st.dropped > 0 || st.truncated then begin
      Buffer.add_string buf ",\"otherData\":{";
      let fields =
        (if st.dropped > 0 then [ Printf.sprintf "\"dropped_events\":%d" st.dropped ] else [])
        @ if st.truncated then [ "\"truncated\":true" ] else []
      in
      Buffer.add_string buf (String.concat "," fields);
      Buffer.add_char buf '}'
    end;
    Buffer.add_string buf "}";
    Buffer.contents buf

  let write_chrome_json path =
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_chrome_json ()))

  type total = { span : string; calls : int; total_s : float; self_s : float }

  let totals () =
    let agg : (string, total) Hashtbl.t = Hashtbl.create 16 in
    let add span dur_s self_s =
      let t =
        Option.value
          ~default:{ span; calls = 0; total_s = 0.0; self_s = 0.0 }
          (Hashtbl.find_opt agg span)
      in
      Hashtbl.replace agg span
        { t with calls = t.calls + 1; total_s = t.total_s +. dur_s; self_s = t.self_s +. self_s }
    in
    (* replay the B/E stream with a stack, accumulating child time so self
       time can be computed; unmatched events are ignored *)
    let stack = ref [] in
    List.iter
      (fun ev ->
        match ev.ph with
        | Instant -> ()
        | Begin -> stack := (ev.name, ev.ts_us, ref 0.0) :: !stack
        | End -> (
            match !stack with
            | (name, ts0, children) :: rest when String.equal name ev.name ->
                stack := rest;
                let dur = (ev.ts_us -. ts0) /. 1e6 in
                add name dur (dur -. !children);
                (match rest with (_, _, pc) :: _ -> pc := !pc +. dur | [] -> ())
            | _ -> ()))
      (events ());
    List.sort
      (fun a b ->
        let c = Float.compare b.total_s a.total_s in
        if c <> 0 then c else String.compare a.span b.span)
      (Hashtbl.fold (fun _ t acc -> t :: acc) agg [])

  let flame_summary () =
    let buf = Buffer.create 512 in
    let tot = totals () in
    let root = List.fold_left (fun acc t -> max acc t.total_s) 0.0 tot in
    Buffer.add_string buf
      (Printf.sprintf "%-24s %8s %12s %12s %7s\n" "span" "calls" "total(ms)" "self(ms)" "%");
    List.iter
      (fun t ->
        Buffer.add_string buf
          (Printf.sprintf "%-24s %8d %12.3f %12.3f %6.1f%%\n" t.span t.calls (t.total_s *. 1e3)
             (t.self_s *. 1e3)
             (if root > 0.0 then 100.0 *. t.total_s /. root else 0.0)))
      tot;
    if st.dropped > 0 then
      Buffer.add_string buf (Printf.sprintf "(%d events dropped past the %d cap)\n" st.dropped max_events);
    (match Sampler.phase_seconds () with
    | [] -> ()
    | phases ->
        Buffer.add_string buf "sampler (wall time attributed at tick granularity):\n";
        List.iter
          (fun (name, s, n) ->
            Buffer.add_string buf (Printf.sprintf "  %-22s %12.3fms %8d ticks\n" name (s *. 1e3) n))
          phases);
    Buffer.contents buf
end

(* ----------------------------------------------------------------- spans *)

module Span = struct
  let heap_peak = Metrics.gauge "gc.heap_words.peak"

  (* an optional hook run after every span exit (even with tracing off):
     forked workers install a throttled partial-state flusher here so a
     SIGKILL between spans still leaves a recent metric/trace snapshot on
     the parent's side of the pipe. Hook failures (e.g. the parent died
     and the pipe is gone) must never take the solve down. *)
  let flush_hook : (unit -> unit) option ref = ref None
  let set_flush_hook h = flush_hook := h

  let run_flush_hook () =
    match !flush_hook with
    | None -> ()
    | Some f -> ( try f () with _ -> () (* lint: allow catch-all — isolation barrier *))

  let close name attrs =
    let now = now_s () in
    (match st.stack with (n, _) :: rest when String.equal n name -> st.stack <- rest | _ -> ());
    (* span boundaries double as heap sampling points (Gc.quick_stat is
       O(1): no heap walk) *)
    Metrics.set_max heap_peak (float_of_int (Gc.quick_stat ()).Gc.heap_words);
    push { name; ph = End; ts_us = (now -. st.t0) *. 1e6; tid = 1; attrs };
    run_flush_hook ()

  let with_ name ?(attrs = []) f =
    if not st.on then begin
      match !flush_hook with
      | None -> f ()
      | Some _ -> (
          match f () with
          | v ->
              run_flush_hook ();
              v
          | exception e ->
              run_flush_hook ();
              raise e)
    end
    else begin
      let ts = (now_s () -. st.t0) *. 1e6 in
      push { name; ph = Begin; ts_us = ts; tid = 1; attrs };
      st.stack <- (name, ts) :: st.stack;
      match f () with
      | v ->
          close name [];
          v
      | exception e ->
          close name [ ("raised", Str (Printexc.to_string e)) ];
          raise e
    end

  let event name ?(attrs = []) () =
    if st.on then push { name; ph = Instant; ts_us = (now_s () -. st.t0) *. 1e6; tid = 1; attrs }

  let current () = match st.stack with (name, _) :: _ -> Some name | [] -> None
end

(* ----------------------------------------------------------- fork reinit *)

(* The one fork boundary entry point: every forked worker (sweep child,
   serve pool worker) must call this before doing any work. It drops the
   parent's span buffer and open-span stack (Trace.fork_child), clears
   the parent's partial-state flush hook — an inherited hook would write
   frames onto a pipe fd the child does not own — and resets the Mono
   fallback clock's high-water mark. The deepcheck fork-safety analysis
   sanctions the underlying mutable globals on the strength of this
   reset running on every worker entry path. *)
let fork_reinit () =
  Trace.fork_child ();
  Span.set_flush_hook None;
  Hqs_util.Mono.fork_reinit ()
