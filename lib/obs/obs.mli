(** Observability substrate for the HQS pipeline: hierarchical tracing
    spans, a metrics registry, and a sampling phase profiler — all
    zero-dependency (Unix clock + [Gc.quick_stat] only), so every solver
    layer can be instrumented without new libraries.

    Cost model, by design:
    - a {e disabled} {!Span.with_} is one branch plus the thunk call, so
      span sites can sit at stage boundaries of the hot solve loop;
    - {!Metrics} updates are unconditional plain field stores (an [int]
      or [float] each) and are always on — cheap enough for per-node hot
      paths like the AIG structural-hash lookup;
    - tracing allocates one event record per span boundary while enabled
      and is bounded by an internal event cap (overflow is counted in
      {!Trace.dropped}, never silent).

    Tracing state is global and single-threaded, matching the solver. *)

(** Attribute values attached to spans and events. *)
type value = Int of int | Float of float | Str of string | Bool of bool

(** Named counters, gauges and histograms, registered once in a global
    registry (re-registering a name returns the same instrument;
    registering it as a different kind raises [Invalid_argument]). *)
module Metrics : sig
  type kind = Counter | Gauge | Histogram
  type counter
  type gauge
  type histogram

  val counter : string -> counter
  val gauge : string -> gauge
  val histogram : string -> histogram

  val incr : ?by:int -> counter -> unit
  val counter_value : counter -> int

  val set : gauge -> float -> unit

  val set_max : gauge -> float -> unit
  (** Keep the maximum of all values set so far (peak tracking). *)

  val gauge_value : gauge -> float

  val observe : histogram -> float -> unit

  type hist_stats = { count : int; sum : float; min_ : float; max_ : float }

  val histogram_stats : histogram -> hist_stats

  type sample = { name : string; kind : kind; v : float }

  val snapshot : unit -> sample list
  (** Every registered instrument flattened to named numbers, sorted by
      name. A histogram [h] contributes [h.count], [h.sum], [h.min] and
      [h.max]. *)

  val delta : before:sample list -> after:sample list -> sample list
  (** Per-interval view: counters and histogram count/sum series are
      subtracted ([after - before]); gauges and histogram min/max are
      levels, not flows, and pass through unchanged. *)

  val to_assoc : sample list -> (string * float) list
  val find : sample list -> string -> float option

  val reset_all : unit -> unit
  (** Zero every instrument in place; handles stay valid. *)

  val kind_name : kind -> string
  val kind_of_name : string -> kind option

  val absorb : sample list -> unit
  (** Merge a snapshot taken in {e another process} (a forked sweep
      worker) into this registry: counters are added, gauges keep the
      maximum, and the four flattened histogram series of each histogram
      are regrouped and merged into the instrument (counts/sums added,
      min/max widened). Unknown names are registered on the fly. *)
end

(** The raw trace: a chronological stream of begin/end/instant events. *)
module Trace : sig
  type ph = Begin | End | Instant

  type event = { name : string; ph : ph; ts_us : float; attrs : (string * value) list }
  (** [ts_us] is microseconds since {!start}. *)

  val enabled : unit -> bool

  val start : unit -> unit
  (** Clear the buffer, reset the clock origin and enable recording. *)

  val stop : unit -> unit
  (** Disable recording; the buffer stays readable. *)

  val reset : unit -> unit
  (** Disable and clear. *)

  val events : unit -> event list

  val dropped : unit -> int
  (** Events discarded past the internal cap (0 in any sane run). *)

  val depth : unit -> int
  (** Number of currently open spans. *)

  val to_chrome_json : unit -> string
  (** Serialize as Chrome [trace_event] JSON (load in [chrome://tracing]
      or Perfetto): [{"traceEvents": [...], ...}] with ["B"]/["E"]/["i"]
      phase records, microsecond timestamps, attrs under ["args"]. *)

  val write_chrome_json : string -> unit

  type total = { span : string; calls : int; total_s : float; self_s : float }

  val totals : unit -> total list
  (** Flame aggregation of the B/E stream per span name: call count,
      inclusive wall time, and self time (inclusive minus nested spans);
      sorted by inclusive time, descending. *)

  val flame_summary : unit -> string
  (** Human-readable table of {!totals} plus the sampler profile. *)
end

(** Hierarchical spans over {!Trace}. *)
module Span : sig
  val with_ : string -> ?attrs:(string * value) list -> (unit -> 'a) -> 'a
  (** [with_ name f] runs [f], bracketing it with begin/end events while
      tracing is enabled (one branch otherwise). The end event is emitted
      on both normal return and exception (tagged [raised]); exceptions
      propagate. Span ends also sample the heap into the
      ["gc.heap_words.peak"] gauge. *)

  val event : string -> ?attrs:(string * value) list -> unit -> unit
  (** Instant event inside the currently open span (no-op when tracing is
      disabled). This is the per-step event-log channel: elimination
      steps, degradations and check firings are recorded this way. *)

  val current : unit -> string option
  (** Name of the innermost open span. *)
end

(** Statistical cross-check of the exact span timings: {!tick} is called
    from coarse poll points of the solve loop and attributes the wall
    time since the previous tick to the innermost open span. Active only
    while tracing is enabled. *)
module Sampler : sig
  val tick : unit -> unit

  val phase_seconds : unit -> (string * float * int) list
  (** [(phase, seconds, ticks)] sorted by phase name. *)

  val reset : unit -> unit
end

(** Minimal recursive-descent JSON reader — enough to validate and
    inspect the traces this module writes (CI and tests). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  (** Whole-input parse; [Error] carries a message with an offset.
      Unicode escapes are validated but decoded to a placeholder. *)

  val render : t -> string
  (** Compact one-line serialization, the dual of {!parse}. The rendering
      is canonical (a fixed spelling per value), so checksums computed
      over it — the executor journal's per-line integrity check — survive
      a parse/serialize round trip. Non-finite numbers are quoted
      (["nan"], ["inf"]), matching the trace writer. *)

  val member : string -> t -> t option
  val to_list : t -> t list option
  val to_string : t -> string option
  val to_number : t -> float option
end
