(** Observability substrate for the HQS pipeline: hierarchical tracing
    spans, a metrics registry, and a sampling phase profiler — all
    zero-dependency (Unix clock + [Gc.quick_stat] only), so every solver
    layer can be instrumented without new libraries.

    Cost model, by design:
    - a {e disabled} {!Span.with_} is one branch plus the thunk call, so
      span sites can sit at stage boundaries of the hot solve loop;
    - {!Metrics} updates are unconditional plain field stores (an [int]
      or [float] each) and are always on — cheap enough for per-node hot
      paths like the AIG structural-hash lookup;
    - tracing allocates one event record per span boundary while enabled
      and is bounded by an internal event cap (overflow is counted in
      {!Trace.dropped}, never silent).

    Tracing state is global and single-threaded, matching the solver. *)

(** Attribute values attached to spans and events. *)
type value = Int of int | Float of float | Str of string | Bool of bool

(** Named counters, gauges and histograms, registered once in a global
    registry (re-registering a name returns the same instrument;
    registering it as a different kind raises [Invalid_argument]). *)
module Metrics : sig
  type kind = Counter | Gauge | Histogram
  type counter
  type gauge
  type histogram

  val counter : string -> counter
  val gauge : string -> gauge
  val histogram : string -> histogram

  val incr : ?by:int -> counter -> unit
  val counter_value : counter -> int

  val set : gauge -> float -> unit

  val set_max : gauge -> float -> unit
  (** Keep the maximum of all values set so far (peak tracking). *)

  val gauge_value : gauge -> float

  val observe : histogram -> float -> unit

  type hist_stats = { count : int; sum : float; min_ : float; max_ : float }

  val histogram_stats : histogram -> hist_stats

  type window
  (** A rolling window over the last [capacity] observations, for live
      latency quantiles. Windows live in their own registry and are
      deliberately excluded from {!snapshot}/{!delta}, so cross-process
      metric frames keep their shape. *)

  val window : ?capacity:int -> string -> window
  (** Register (or fetch) the named window; [capacity] defaults to 512
      and is fixed by the first registration. Raises [Invalid_argument]
      when [capacity <= 0]. *)

  val wobserve : window -> float -> unit
  (** Record an observation, evicting the oldest once full. *)

  val window_count : window -> int
  (** Observations currently held (≤ capacity). *)

  val quantile : window -> float -> float
  (** Nearest-rank quantile over the current window contents ([q] clamped
      to [0,1]); [nan] while the window is empty. *)

  type sample = { name : string; kind : kind; v : float }

  val snapshot : unit -> sample list
  (** Every registered instrument flattened to named numbers, sorted by
      name. A histogram [h] contributes [h.count], [h.sum], [h.min] and
      [h.max]. *)

  val delta : before:sample list -> after:sample list -> sample list
  (** Per-interval view: counters and histogram count/sum series are
      subtracted ([after - before]); gauges and histogram min/max are
      levels, not flows, and pass through unchanged. *)

  val to_assoc : sample list -> (string * float) list
  val find : sample list -> string -> float option

  val reset_all : unit -> unit
  (** Zero every instrument in place; handles stay valid. *)

  val kind_name : kind -> string
  val kind_of_name : string -> kind option

  val absorb : sample list -> unit
  (** Merge a snapshot taken in {e another process} (a forked sweep
      worker) into this registry: counters are added, gauges keep the
      maximum, and the four flattened histogram series of each histogram
      are regrouped and merged into the instrument (counts/sums added,
      min/max widened). Unknown names are registered on the fly. *)
end

(** Minimal recursive-descent JSON reader — enough to validate and
    inspect the traces this module writes (CI and tests). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  (** Whole-input parse; [Error] carries a message with an offset.
      Unicode escapes are validated but decoded to a placeholder. *)

  val render : t -> string
  (** Compact one-line serialization, the dual of {!parse}. The rendering
      is canonical (a fixed spelling per value), so checksums computed
      over it — the executor journal's per-line integrity check — survive
      a parse/serialize round trip. Non-finite numbers are quoted
      (["nan"], ["inf"]), matching the trace writer. *)

  val member : string -> t -> t option
  val to_list : t -> t list option
  val to_string : t -> string option
  val to_number : t -> float option
end

(** The raw trace: a chronological stream of begin/end/instant events. *)
module Trace : sig
  type ph = Begin | End | Instant

  type event = { name : string; ph : ph; ts_us : float; tid : int; attrs : (string * value) list }
  (** [ts_us] is microseconds since {!start}. [tid] is the Chrome thread
      row the event renders on; span events use row 1, and supervisors
      give each concurrent logical task its own row via {!emit}. *)

  val enabled : unit -> bool

  val start : unit -> unit
  (** Clear the buffer, reset the clock origin and enable recording. *)

  val stop : unit -> unit
  (** Disable recording; the buffer stays readable. *)

  val reset : unit -> unit
  (** Disable and clear. *)

  val events : unit -> event list

  val dropped : unit -> int
  (** Events discarded past the internal cap (0 in any sane run). *)

  val depth : unit -> int
  (** Number of currently open spans. *)

  val truncated : unit -> bool
  (** Whether any merged worker batch was cut short by a mid-span death
      (reported as ["truncated": true] in the Chrome [otherData]). *)

  val fork_child : unit -> unit
  (** Drops the parent's buffered events and open-span stack but keeps
      the enabled flag and the clock origin (the Budget clock is
      machine-wide monotonic, so child timestamps merge directly into
      the parent's timeline), and rebinds the recorded pid to the child.
      Worker entry points should call the top-level {!fork_reinit},
      which also clears the inherited flush hook and fallback-clock
      mark; this lower-level reset leaves both in place. *)

  val emit : ?tid:int -> ?attrs:(string * value) list -> string -> ph -> unit
  (** Stack-free event emission for code multiplexing overlapping logical
      tasks (one [tid] row each), where {!Span.with_}'s strict nesting
      cannot apply. No-op while tracing is disabled. *)

  val events_to_json : event list -> Json.t
  (** Compact wire form of an event batch, for shipping a worker's span
      buffer across the IPC boundary. *)

  val events_of_json : Json.t -> event list
  (** Decode {!events_to_json}; malformed entries are skipped (the batch
      may come from a worker killed mid-write), never fatal. *)

  val inject : pid:int -> ?dropped:int -> ?truncated:bool -> event list -> unit
  (** Merge a batch recorded in another process under its own pid row of
      the Chrome output. Unbalanced [Begin] events (worker died by signal
      mid-span) get synthesized [End] events at the batch horizon and the
      trace is flagged {!truncated} instead of being written torn;
      [dropped] adds the worker's drop counter to this trace's. *)

  val to_chrome_json : unit -> string
  (** Serialize as Chrome [trace_event] JSON (load in [chrome://tracing]
      or Perfetto): [{"traceEvents": [...], ...}] with ["B"]/["E"]/["i"]
      phase records, microsecond timestamps, attrs under ["args"]. *)

  val write_chrome_json : string -> unit

  type total = { span : string; calls : int; total_s : float; self_s : float }

  val totals : unit -> total list
  (** Flame aggregation of the B/E stream per span name: call count,
      inclusive wall time, and self time (inclusive minus nested spans);
      sorted by inclusive time, descending. *)

  val flame_summary : unit -> string
  (** Human-readable table of {!totals} plus the sampler profile. *)
end

(** Hierarchical spans over {!Trace}. *)
module Span : sig
  val with_ : string -> ?attrs:(string * value) list -> (unit -> 'a) -> 'a
  (** [with_ name f] runs [f], bracketing it with begin/end events while
      tracing is enabled (one branch otherwise). The end event is emitted
      on both normal return and exception (tagged [raised]); exceptions
      propagate. Span ends also sample the heap into the
      ["gc.heap_words.peak"] gauge. *)

  val event : string -> ?attrs:(string * value) list -> unit -> unit
  (** Instant event inside the currently open span (no-op when tracing is
      disabled). This is the per-step event-log channel: elimination
      steps, degradations and check firings are recorded this way. *)

  val current : unit -> string option
  (** Name of the innermost open span. *)

  val set_flush_hook : (unit -> unit) option -> unit
  (** Install (or clear) a hook run after every span exit — including
      with tracing disabled, where {!with_} costs one extra branch. A
      forked worker installs a throttled partial-state flusher here so a
      SIGKILL between spans still leaves a recent metric/trace snapshot
      on the supervisor's side of the pipe. Exceptions raised by the hook
      are swallowed: a dead parent must not take the solve down. *)
end

val fork_reinit : unit -> unit
(** Call first thing in every freshly forked worker. Runs
    {!Trace.fork_child}, clears the {!Span.set_flush_hook} hook (an
    inherited hook would write partial frames onto a pipe fd the child
    does not own), and resets the [Mono] fallback clock's high-water
    mark — so no child observability state aliases the parent's. The
    deepcheck fork-safety analysis sanctions the underlying mutable
    globals on the strength of this reset running on every worker entry
    path. *)

(** Statistical cross-check of the exact span timings: {!tick} is called
    from coarse poll points of the solve loop and attributes the wall
    time since the previous tick to the innermost open span. Active only
    while tracing is enabled. *)
module Sampler : sig
  val tick : unit -> unit

  val phase_seconds : unit -> (string * float * int) list
  (** [(phase, seconds, ticks)] sorted by phase name. *)

  val reset : unit -> unit
end
