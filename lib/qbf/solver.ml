open Hqs_util
module M = Aig.Man
module UP = Aig.Unitpure

type config = {
  use_unitpure : bool;
  use_fraig : bool;
  fraig_node_threshold : int;
  sat_shortcut : bool;
}

let default_config =
  { use_unitpure = true; use_fraig = true; fraig_node_threshold = 50000; sat_shortcut = true }

(* For each variable in [vars], the number of cone nodes whose support
   contains it: a cheap proxy for elimination cost. *)
let var_costs man root vars =
  let index = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace index v i) vars;
  let counts = Array.make (List.length vars) 0 in
  let masks : (int, Bitset.t) Hashtbl.t = Hashtbl.create 256 in
  M.iter_cone man [ root ] (fun n ->
      let mask =
        if n = 0 then Bitset.empty
        else if M.is_input man (n * 2) then begin
          match Hashtbl.find_opt index (M.var_of_input man (n * 2)) with
          | Some i -> Bitset.singleton i
          | None -> Bitset.empty
        end
        else begin
          let e0, e1 = M.fanins man (n * 2) in
          Bitset.union
            (Hashtbl.find masks (M.node_of e0))
            (Hashtbl.find masks (M.node_of e1))
        end
      in
      Bitset.iter (fun i -> counts.(i) <- counts.(i) + 1) mask;
      Hashtbl.replace masks n mask);
  fun v -> match Hashtbl.find_opt index v with Some i -> counts.(i) | None -> 0

exception Decided of bool

type state = {
  mutable man : M.t;
  mutable root : M.lit;
  mutable last_size : int;
  mutable fraig_floor : int; (* cone size right after the last sweep *)
}

let compact_if_grown st =
  if M.num_nodes st.man > (2 * st.last_size) + 1024 then begin
    let man, roots = M.compact st.man [ st.root ] in
    st.man <- man;
    st.root <- (match roots with [ r ] -> r | _ -> assert false);
    st.last_size <- M.num_nodes man
  end

(* sweep only when the cone is big AND has doubled since the last sweep,
   otherwise every elimination would pay for a full SAT sweep; each sweep
   is also time-boxed — when it cannot finish quickly we keep the
   unreduced cone instead of burning the whole budget *)
let fraig_if_large config budget st =
  if config.use_fraig then begin
    let cone = M.cone_size st.man st.root in
    if cone > config.fraig_node_threshold && cone > 2 * st.fraig_floor then begin
      let sweep_budget = Budget.of_seconds (min 2.0 (0.2 *. Budget.remaining budget)) in
      match Aig.Fraig.reduce ~budget:sweep_budget st.man [ st.root ] with
      | man, roots ->
          st.man <- man;
          st.root <- (match roots with [ r ] -> r | _ -> assert false);
          st.last_size <- M.num_nodes man;
          st.fraig_floor <- M.cone_size man st.root
      | exception Budget.Timeout when not (Budget.expired budget) ->
          (* give up on sweeping this cone until it doubles again *)
          st.fraig_floor <- cone
    end
  end

(* one unit/pure sweep; returns true if anything was eliminated *)
let unitpure_step ~notify st prefix_quant =
  let scans = UP.scan st.man st.root in
  let subst : (int, M.lit) Hashtbl.t = Hashtbl.create 8 in
  let assign_exists v value =
    Hashtbl.replace subst v (if value then M.true_ else M.false_);
    notify v value
  in
  List.iter
    (fun (v, st_v) ->
      match prefix_quant v with
      | None -> () (* defensive: unbound variable, leave it alone *)
      | Some Prefix.Exists ->
          if st_v.UP.pos_unit && st_v.UP.neg_unit then raise (Decided false)
          else if st_v.UP.pos_unit || st_v.UP.pos_pure then assign_exists v true
          else if st_v.UP.neg_unit || st_v.UP.neg_pure then assign_exists v false
      | Some Prefix.Forall ->
          if st_v.UP.pos_unit || st_v.UP.neg_unit then raise (Decided false)
          else if st_v.UP.pos_pure then Hashtbl.replace subst v M.false_
          else if st_v.UP.neg_pure then Hashtbl.replace subst v M.true_)
    scans;
  if Hashtbl.length subst = 0 then false
  else begin
    st.root <- M.compose st.man st.root (Hashtbl.find_opt subst);
    true
  end

(* Quantify one variable, exploiting structure as AIGSOLVE does: forall
   distributes over the root conjunction and exists over the root
   disjunction, so only the parts that actually contain [v] are
   cofactored and duplicated. *)
let quantify_structured man root q v =
  let parts, recombine, quantify1 =
    match q with
    | Prefix.Forall -> (M.and_conjuncts man root, M.mk_and_list man, fun p -> M.forall man p ~var:v)
    | Prefix.Exists -> (M.or_disjuncts man root, M.mk_or_list man, fun p -> M.exists man p ~var:v)
  in
  recombine
    (List.map
       (fun part -> if Bitset.mem v (M.support man part) then quantify1 part else part)
       parts)

(* returns the answer plus a variable valuation (meaningful on SAT) *)
let sat_check ~budget man root ~negate =
  let solver = Sat.Solver.create () in
  let enc = Aig.Cnf_enc.create solver in
  let out = Aig.Cnf_enc.sat_lit man enc root in
  let out = if negate then Sat.Lit.neg out else out in
  Sat.Solver.add_clause solver [ out ];
  match Sat.Solver.solve ~budget solver with
  | Sat.Solver.Sat ->
      (true, fun v -> Sat.Solver.lit_value solver (Aig.Cnf_enc.sat_var_of_aig_var man enc v))
  | Sat.Solver.Unsat -> (false, fun _ -> false)
  | Sat.Solver.Unknown -> assert false

let c_eliminations = Obs.Metrics.counter "qbf.elim.quantifications"

let solve ?(config = default_config) ?(budget = Budget.unlimited) ?on_define man0 root0 prefix =
  Obs.Span.with_ "qbf.elim" ~attrs:[ ("nodes", Obs.Int (M.num_nodes man0)) ]
  @@ fun () ->
  let man, roots = M.compact man0 [ root0 ] in
  let root = match roots with [ r ] -> r | _ -> assert false in
  let bound = Bitset.of_list (Prefix.variables prefix) in
  let free = Bitset.to_list (Bitset.diff (M.support man root) bound) in
  let prefix = ref (Prefix.normalize ((Prefix.Exists, free) :: prefix)) in
  let st = { man; root; last_size = M.num_nodes man; fraig_floor = 0 } in
  let recording = on_define <> None in
  let define v fn = match on_define with Some cb -> cb v st.man fn | None -> () in
  let define_const v b = define v (if b then M.true_ else M.false_) in
  try
    while true do
      Budget.check budget;
      if M.is_true st.root then raise (Decided true);
      if M.is_false st.root then raise (Decided false);
      let support = M.support st.man st.root in
      if recording then
        (* existentials leaving the support are don't-cares *)
        List.iter
          (fun (q, vs) ->
            if q = Prefix.Exists then
              List.iter (fun v -> if not (Bitset.mem v support) then define_const v false) vs)
          !prefix;
      prefix := Prefix.restrict !prefix ~keep:(fun v -> Bitset.mem v support);
      let quant_of v = Prefix.quant_of !prefix v in
      if config.use_unitpure && unitpure_step ~notify:define_const st quant_of then
        compact_if_grown st
      else begin
        match !prefix with
        | [] ->
            (* support is non-empty (root not const) but nothing is bound:
               cannot happen, every support var was added as existential *)
            assert false
        | [ (Prefix.Exists, vs) ] when config.sat_shortcut ->
            let answer, value = sat_check ~budget st.man st.root ~negate:false in
            if answer && recording then List.iter (fun v -> define_const v (value v)) vs;
            raise (Decided answer)
        | [ (Prefix.Forall, _) ] when config.sat_shortcut ->
            let counterexample, _ = sat_check ~budget st.man st.root ~negate:true in
            raise (Decided (not counterexample))
        | blocks ->
            (* eliminate one variable from the innermost block *)
            let rec split_last acc = function
              | [] -> assert false
              | [ last ] -> (List.rev acc, last)
              | b :: rest -> split_last (b :: acc) rest
            in
            let outer, (q, vs) = split_last [] blocks in
            let cost = var_costs st.man st.root vs in
            let v =
              List.fold_left (fun best v -> if cost v < cost best then v else best)
                (List.hd vs) vs
            in
            if recording && q = Prefix.Exists then
              (* the standard choice function: pick 1 iff phi[1/v] holds *)
              define v (M.cofactor st.man st.root ~var:v ~value:true);
            Obs.Metrics.incr c_eliminations;
            st.root <- quantify_structured st.man st.root q v;
            prefix := outer @ [ (q, List.filter (fun w -> w <> v) vs) ];
            compact_if_grown st;
            fraig_if_large config budget st
      end
    done;
    assert false
  with Decided answer -> answer
