open Hqs_util
module M = Aig.Man
module L = Sat.Lit

type var_info = { quant : Prefix.quant; block : int }

(* defs: existential variable -> choice function (in [mman]) *)
type defs = (int, M.lit) Hashtbl.t

let c_decisions = Obs.Metrics.counter "qbf.search.decisions"

let solve_cnf ?(budget = Budget.unlimited) ?on_model ~prefix ~num_vars clauses =
  Obs.Span.with_ "qbf.search"
    ~attrs:[ ("vars", Obs.Int num_vars); ("clauses", Obs.Int (List.length clauses)) ]
  @@ fun () ->
  (* prefix with free variables as outermost existentials *)
  let bound = Bitset.of_list (Prefix.variables prefix) in
  let free = List.filter (fun v -> not (Bitset.mem v bound)) (List.init num_vars Fun.id) in
  let prefix = Prefix.normalize ((Prefix.Exists, free) :: prefix) in
  let info = Array.make num_vars { quant = Prefix.Exists; block = 0 } in
  let order = ref [] in
  List.iteri
    (fun i (q, vs) ->
      List.iter
        (fun v ->
          info.(v) <- { quant = q; block = i };
          order := v :: !order)
        vs)
    prefix;
  let order = Array.of_list (List.rev !order) in
  let clauses = Array.of_list (List.map Array.of_list clauses) in
  let assign = Array.make num_vars 0 in
  let lit_val l =
    let a = assign.(L.var l) in
    if a = 0 then 0 else if L.is_neg l then -a else a
  in
  let assign_lit l =
    assign.(L.var l) <- (if L.is_neg l then -1 else 1)
  in
  let mman = M.create () in
  let recording = on_model <> None in
  let exception Conflict in
  (* one propagation pass: units with universal reduction, pure literals;
     returns the list of variables assigned (for undo) *)
  let propagate_once assigned =
    let changed = ref false in
    let pos = Array.make num_vars false and neg = Array.make num_vars false in
    Array.iter
      (fun clause ->
        let satisfied = Array.exists (fun l -> lit_val l = 1) clause in
        if not satisfied then begin
          (* remaining literals *)
          let remaining = Array.to_list clause |> List.filter (fun l -> lit_val l = 0) in
          (* universal reduction: a universal literal whose block is inner
             to every remaining existential literal is dropped *)
          let max_exist_block =
            List.fold_left
              (fun acc l ->
                if info.(L.var l).quant = Prefix.Exists then max acc info.(L.var l).block
                else acc)
              (-1) remaining
          in
          let reduced =
            List.filter
              (fun l ->
                info.(L.var l).quant = Prefix.Exists || info.(L.var l).block < max_exist_block)
              remaining
          in
          (match reduced with
          | [] -> raise Conflict
          | [ l ] ->
              (* all-universal residues were caught above, so l is
                 existential *)
              assign_lit l;
              assigned := L.var l :: !assigned;
              changed := true
          | _ ->
              List.iter
                (fun l -> if L.is_neg l then neg.(L.var l) <- true else pos.(L.var l) <- true)
                reduced)
        end)
      clauses;
    (* pure / irrelevant variables *)
    if not !changed then
      Array.iter
        (fun v ->
          if assign.(v) = 0 && not (pos.(v) && neg.(v)) then begin
            let make_true =
              if info.(v).quant = Prefix.Exists then not neg.(v) (* satisfy, default true *)
              else neg.(v) (* universal: falsify its occurrences *)
            in
            assign.(v) <- (if make_true then 1 else -1);
            assigned := v :: !assigned;
            changed := true
          end)
        order;
    !changed
  in
  let undo vars = List.iter (fun v -> assign.(v) <- 0) vars in
  (* propagate to fixpoint; on conflict the partial assignments are undone *)
  let propagate () =
    let assigned = ref [] in
    match
      let rec loop () = if propagate_once assigned then loop () in
      loop ()
    with
    | () -> Ok !assigned
    | exception Conflict ->
        undo !assigned;
        Error ()
  in
  let leaf_defs () =
    let d : defs = Hashtbl.create 16 in
    if recording then
      Array.iter
        (fun v ->
          if info.(v).quant = Prefix.Exists then
            Hashtbl.replace d v (if assign.(v) = 1 then M.true_ else M.false_))
        order;
    d
  in
  let merge_universal x d0 d1 =
    let d : defs = Hashtbl.create 16 in
    if recording then begin
      let xin = M.input mman x in
      let keys = Hashtbl.create 16 in
      Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) d0;
      Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) d1;
      Hashtbl.iter
        (fun y () ->
          let f0 = Option.value (Hashtbl.find_opt d0 y) ~default:M.false_ in
          let f1 = Option.value (Hashtbl.find_opt d1 y) ~default:M.false_ in
          Hashtbl.replace d y (if f0 = f1 then f0 else M.mk_ite mman xin f1 f0))
        keys
    end;
    d
  in
  let rec pick_from i =
    if i >= Array.length order then None
    else if assign.(order.(i)) = 0 then Some order.(i)
    else pick_from (i + 1)
  in
  (* returns the subtree's choice functions on success *)
  let rec search () : defs option =
    Budget.check budget;
    match propagate () with
    | Error () -> None
    | Ok propagated -> (
        let result =
          match pick_from 0 with
          | None -> Some (leaf_defs ())
          | Some v -> (
              let try_value b =
                Obs.Metrics.incr c_decisions;
                assign.(v) <- (if b then 1 else -1);
                let r = search () in
                assign.(v) <- 0;
                r
              in
              match info.(v).quant with
              | Prefix.Exists -> (
                  match try_value true with Some d -> Some d | None -> try_value false)
              | Prefix.Forall -> (
                  match try_value false with
                  | None -> None
                  | Some d0 -> (
                      match try_value true with
                      | None -> None
                      | Some d1 -> Some (merge_universal v d0 d1))))
        in
        undo propagated;
        result)
  in
  match search () with
  | None -> false
  | Some defs ->
      (match on_model with
      | Some cb -> cb mman (Hashtbl.fold (fun y fn acc -> (y, fn) :: acc) defs [])
      | None -> ());
      true

let solve ?budget ?on_model man root prefix =
  (* Tseitin: auxiliary variables form an innermost existential block *)
  let max_var = Bitset.fold (fun v acc -> max acc (v + 1)) (M.support man root) 0 in
  let max_var = List.fold_left (fun acc v -> max acc (v + 1)) max_var (Prefix.variables prefix) in
  let next = ref max_var in
  let clauses = ref [] in
  let aux = ref [] in
  let node_var = Hashtbl.create 256 in
  let lit_of e = L.apply_sign (L.of_var (Hashtbl.find node_var (M.node_of e))) ~neg:(M.is_compl e) in
  M.iter_cone man [ root ] (fun n ->
      if n = 0 then begin
        let v = !next in
        incr next;
        aux := v :: !aux;
        Hashtbl.replace node_var n v;
        clauses := [ L.mk v ~neg:true ] :: !clauses
      end
      else if M.is_input man (n * 2) then Hashtbl.replace node_var n (M.var_of_input man (n * 2))
      else begin
        let v = !next in
        incr next;
        aux := v :: !aux;
        Hashtbl.replace node_var n v;
        let e0, e1 = M.fanins man (n * 2) in
        let x = L.of_var v and l0 = lit_of e0 and l1 = lit_of e1 in
        clauses := [ L.neg x; l0 ] :: [ L.neg x; l1 ] :: [ x; L.neg l0; L.neg l1 ] :: !clauses
      end);
  clauses := [ lit_of root ] :: !clauses;
  let prefix = Prefix.normalize (prefix @ [ (Prefix.Exists, List.rev !aux) ]) in
  let on_model =
    Option.map
      (fun cb mman defs ->
        cb mman (List.filter (fun (y, _) -> y < max_var) defs))
      on_model
  in
  solve_cnf ?budget ?on_model ~prefix ~num_vars:!next !clauses
