type t = { num_vars : int; prefix : Prefix.t; clauses : int list list }

let tokenize s =
  String.split_on_char '\n' s
  |> List.filter (fun line ->
         let line = String.trim line in
         not (String.length line = 0 || line.[0] = 'c'))
  |> List.map (fun line ->
         String.split_on_char ' ' line
         |> List.concat_map (String.split_on_char '\t')
         |> List.filter (fun tok -> tok <> ""))

let parse_string s =
  let num_vars = ref 0 in
  let prefix = ref [] in
  let clauses = ref [] in
  let int_of tok = try int_of_string tok with Failure _ -> failwith ("Qdimacs: bad token " ^ tok) in
  let parse_block q toks =
    let vars =
      List.filter_map
        (fun tok ->
          let i = int_of tok in
          if i = 0 then None
          else if i < 0 then failwith "Qdimacs: negative variable in prefix"
          else begin
            num_vars := max !num_vars i;
            Some (i - 1)
          end)
        toks
    in
    prefix := (q, vars) :: !prefix
  in
  List.iter
    (fun line ->
      match line with
      | [] -> ()
      | "p" :: "cnf" :: nv :: _ -> num_vars := max !num_vars (int_of nv)
      | "a" :: rest -> parse_block Prefix.Forall rest
      | "e" :: rest -> parse_block Prefix.Exists rest
      | toks ->
          (* one or more clauses on the line, each 0-terminated *)
          let current = ref [] in
          List.iter
            (fun tok ->
              let i = int_of tok in
              if i = 0 then begin
                clauses := List.rev !current :: !clauses;
                current := []
              end
              else begin
                num_vars := max !num_vars (abs i);
                current := i :: !current
              end)
            toks;
          if !current <> [] then failwith "Qdimacs: clause not terminated by 0")
    (tokenize s);
  { num_vars = !num_vars; prefix = Prefix.normalize (List.rev !prefix); clauses = List.rev !clauses }

let parse_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse_string s

let to_string { num_vars; prefix; clauses } =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" num_vars (List.length clauses));
  List.iter
    (fun (q, vs) ->
      Buffer.add_string buf (match q with Prefix.Forall -> "a" | Prefix.Exists -> "e");
      List.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %d" (v + 1))) vs;
      Buffer.add_string buf " 0\n")
    prefix;
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (Printf.sprintf "%d " l)) clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let to_aig { clauses; _ } =
  let man = Aig.Man.create () in
  let lit i = Aig.Man.apply_sign (Aig.Man.input man (abs i - 1)) ~neg:(i < 0) in
  let clause_lit c = Aig.Man.mk_or_list man (List.map lit c) in
  let matrix = Aig.Man.mk_and_list man (List.map clause_lit clauses) in
  (man, matrix)
