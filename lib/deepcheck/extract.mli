(** Typed-tree ([.cmt]) extraction: one pass per unit producing the
    definition nodes, masked raise/reference sites, toplevel mutable
    state, and public surface that {!Graph} and the analyses consume. *)

module SSet : Set.S with type elt = string

type mask = All | Names of SSet.t
(** What an enclosing handler catches around a program point. *)

val mask_union : mask -> mask -> mask

val mask_catches : mask -> string -> bool
(** Does this mask swallow the named exception? The unknown exception
    ["*"] (a [raise e] on a variable) is only caught by a catch-all. *)

type origin = { o_file : string; o_line : int; o_col : int }

type node = {
  n_name : string;  (** fully qualified, e.g. ["Aig.Fraig.reduce"] *)
  n_loc : origin;
  n_is_fun : bool;  (** arrow-typed: calling it can run its body *)
  n_mutable : string option;  (** [Some reason] for toplevel mutable state *)
  n_raises : (string * mask * origin) list;
  n_edges : (string * mask * origin) list;
}

type unit_info = {
  u_unit : string;  (** normalized module path, e.g. ["Aig.Fraig"] *)
  u_lib : string;
  u_source : string;
  u_nodes : node list;
  u_public : (string * origin) list;  (** values the [.mli] exports *)
}

val normalize_unit_name : string -> string
(** ["Aig__Fraig"] → ["Aig.Fraig"]; dune's ["Hqs__"] alias → ["Hqs"]. *)

val stdlib_raises : string -> string list
(** Named control-flow exceptions of a stdlib call (normalized name):
    [Hashtbl.find] → [Not_found], [int_of_string] → [Failure], every
    [Unix.*] → [Unix.Unix_error], ... Programmer-error exceptions
    (Invalid_argument, Assert_failure, bounds) are deliberately
    excluded: bug channels, not API channels. *)

val inherited_fd : string -> bool
(** Standard descriptors a forked child shares with its parent. *)

type cmt_result = Unit of unit_info | Skipped of string | Unreadable of string

val load_unit :
  lib:string -> source:string -> cmt:string -> cmti:string option -> cmt_result
(** Read and extract one compilation unit. [Unreadable] (bad magic,
    truncation, partial cmt) must be surfaced as exit 2 by the driver —
    never skipped silently. *)
