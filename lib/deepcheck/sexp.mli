(** Minimal s-expression reader for `dune describe` output. *)

type t = Atom of string | List of t list

val parse : string -> (t, string) result
(** Whole-input parse of one s-expression (bare or double-quoted atoms,
    [;] line comments). [Error] carries a message with an offset —
    malformed input is never a partial result. *)

val field : string -> t -> t list option
(** [field key sx]: the payload of the [(key v1 v2 ...)] entry of an
    alist-shaped list, if present. *)

val atom : t -> string option
val list : t -> t list option

val field_atom : string -> t -> string option
(** [(key atom)] convenience accessor. *)

val field_atoms : string -> t -> string list option
(** [(key (a1 a2 ...))] or [(key a1 a2 ...)]: the atoms of the payload
    (non-atoms are dropped). *)
