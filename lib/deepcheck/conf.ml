(* The three reviewed policy files at the repo root. Each is a line
   format with '#' comments; parse errors and coverage gaps are loud
   (Error -> exit 2), because a policy file that silently half-parses is
   a policy that silently stopped being enforced.

   deepcheck.escapes  — per-library exception allowlists:
       library serve
         Serve.Daemon.Shutdown   # clean-stop control flow
   deepcheck.forkinit — fork entry points and sanctioned globals:
       entry Exec.Supervisor.run_child
       allow Obs.Trace.st  reset by Obs.fork_reinit
   deepcheck.layers   — the allowed inter-library DAG:
       library serve -> core obs util
       executable hqs_cli -> *
       executable test_* -> *                       *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line = String.split_on_char ' ' (strip_comment line) |> List.filter (fun t -> t <> "")

let fold_lines path f init =
  match In_channel.with_open_bin path In_channel.input_all with
  | text ->
      let lines = String.split_on_char '\n' text in
      let rec go acc lineno = function
        | [] -> Ok acc
        | line :: rest -> (
            match f acc lineno (tokens line) with
            | Ok acc -> go acc (lineno + 1) rest
            | Error msg -> Error (Printf.sprintf "%s:%d: %s" path lineno msg))
      in
      go init 1 lines
  | exception Sys_error msg -> Error (Printf.sprintf "cannot read %s: %s" path msg)

(* --------------------------------------------------------------- escapes *)

type escapes = (string * Extract.SSet.t) list  (* library -> allowed exception names *)

let parse_escapes path : (escapes, string) result =
  let step (current, acc) _lineno toks =
    match toks with
    | [] -> Ok (current, acc)
    | [ "library"; name ] -> (
        match current with
        | None -> Ok (Some (name, Extract.SSet.empty), acc)
        | Some cur -> Ok (Some (name, Extract.SSet.empty), cur :: acc))
    | [ exn ] -> (
        match current with
        | Some (name, set) -> Ok (Some (name, Extract.SSet.add exn set), acc)
        | None -> Error (Printf.sprintf "exception %S before any 'library' stanza" exn))
    | _ -> Error ("unparseable line: " ^ String.concat " " toks)
  in
  Result.map
    (fun (current, acc) ->
      List.rev (match current with Some cur -> cur :: acc | None -> acc))
    (fold_lines path step (None, []))

let escapes_allowed (e : escapes) lib =
  match List.assoc_opt lib e with Some s -> s | None -> Extract.SSet.empty

(* -------------------------------------------------------------- forkinit *)

type forkinit = {
  fi_entries : string list;  (* worker entry nodes, fully qualified *)
  fi_allow : (string * string) list;  (* sanctioned global -> reason *)
}

let parse_forkinit path : (forkinit, string) result =
  let step acc _lineno toks =
    match toks with
    | [] -> Ok acc
    | "entry" :: [ node ] -> Ok { acc with fi_entries = node :: acc.fi_entries }
    | "allow" :: global :: reason_toks when reason_toks <> [] ->
        Ok { acc with fi_allow = (global, String.concat " " reason_toks) :: acc.fi_allow }
    | "allow" :: _ -> Error "allow lines need a reason: allow <global> <why it is fork-safe>"
    | _ -> Error ("unparseable line: " ^ String.concat " " toks)
  in
  match fold_lines path step { fi_entries = []; fi_allow = [] } with
  | Error _ as e -> e
  | Ok acc ->
      if acc.fi_entries = [] then
        Error (path ^ ": no 'entry' lines — fork-safety with no entry points checks nothing")
      else Ok { fi_entries = List.rev acc.fi_entries; fi_allow = List.rev acc.fi_allow }

(* ---------------------------------------------------------------- layers *)

type layer_rule = {
  lr_kind : [ `Library | `Executable ];
  lr_name : string;  (* may end in '*' for a glob, e.g. "test_*" *)
  lr_deps : [ `Any | `Only of Extract.SSet.t ];
}

type layers = layer_rule list

let parse_layers path : (layers, string) result =
  let step acc _lineno toks =
    match toks with
    | [] -> Ok acc
    | kind_tok :: name :: "->" :: deps when kind_tok = "library" || kind_tok = "executable" ->
        let lr_kind = if String.equal kind_tok "library" then `Library else `Executable in
        let lr_deps =
          match deps with [ "*" ] -> `Any | deps -> `Only (Extract.SSet.of_list deps)
        in
        Ok ({ lr_kind; lr_name = name; lr_deps } :: acc)
    | _ ->
        Error
          ("unparseable line (want: library NAME -> dep... | executable NAME -> dep... | '*'): "
          ^ String.concat " " toks)
  in
  Result.map List.rev (fold_lines path step [])

let name_matches pattern name =
  if String.length pattern > 0 && pattern.[String.length pattern - 1] = '*' then
    String.starts_with ~prefix:(String.sub pattern 0 (String.length pattern - 1)) name
  else String.equal pattern name

(* first matching rule wins; exact names should precede globs in the file *)
let layer_rule_for (l : layers) kind name =
  List.find_opt
    (fun r ->
      (match (r.lr_kind, kind) with
      | `Library, `Library | `Executable, `Executable -> true
      | _ -> false)
      && name_matches r.lr_name name)
    l
