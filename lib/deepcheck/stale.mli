(** .cmt staleness detection. The analyzer reads build artifacts; an
    edited source with an old [.cmt] would make every analysis silently
    lie about the code as written, so any mismatch is a loud exit-2
    refusal upstream — never a silent pass. *)

type status =
  | Fresh
  | Missing_cmt of { src : string }
  | Stale of { src : string; cmt : string; src_mtime : float; cmt_mtime : float }

val classify :
  src:string ->
  cmt:string ->
  src_mtime:float option ->
  cmt_mtime:float option ->
  status
(** Pure core ([None] = file absent): missing cmt is always fatal; a
    generated source (absent in the checkout) only needs its cmt; a
    source strictly newer than its cmt is stale (equal mtimes are fresh —
    same-second builds). *)

val describe_status : status -> string option
(** Pointed human message, [None] for {!Fresh}. *)

val audit : root:string -> Describe.t -> (unit, string list) result
(** Check every impl/intf of every local library: source mtimes from the
    root checkout, artifact mtimes from the build tree. [Error] lists
    every stale unit at once. *)
