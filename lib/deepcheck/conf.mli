(** Parsers for the three reviewed policy files ([deepcheck.escapes],
    [deepcheck.forkinit], [deepcheck.layers]). Parse errors are loud
    [Error]s the driver turns into exit 2 — a half-parsed policy is a
    policy that silently stopped being enforced. *)

type escapes = (string * Extract.SSet.t) list
(** library name -> exception names allowed to escape its [.mli]. *)

val parse_escapes : string -> (escapes, string) result
val escapes_allowed : escapes -> string -> Extract.SSet.t

type forkinit = {
  fi_entries : string list;  (** worker entry nodes, fully qualified *)
  fi_allow : (string * string) list;  (** sanctioned global -> reason *)
}

val parse_forkinit : string -> (forkinit, string) result
(** Errors if no [entry] lines: fork-safety with no entries checks
    nothing, and must say so rather than pass. *)

type layer_rule = {
  lr_kind : [ `Library | `Executable ];
  lr_name : string;  (** may end in ['*'] (glob), e.g. ["test_*"] *)
  lr_deps : [ `Any | `Only of Extract.SSet.t ];
}

type layers = layer_rule list

val parse_layers : string -> (layers, string) result

val layer_rule_for : layers -> [ `Library | `Executable ] -> string -> layer_rule option
(** First matching rule wins; exact names should precede globs. *)
