(* The deepcheck driver: load the build layout (Describe), refuse stale
   artifacts (Stale), extract every local unit (Extract), close the call
   graph (Graph), then run the three interprocedural analyses against the
   reviewed policy files (Conf). Same contract as bin/lint: exit 0 clean,
   1 findings, 2 usage/staleness/config error — staleness is never a
   silent pass. *)

module SSet = Extract.SSet
module SMap = Graph.SMap

let rule_exn_escape = "exn-escape"
let rule_fork_unsafe = "fork-unsafe"
let rule_layering = "layering"

let all_rules = [ rule_exn_escape; rule_fork_unsafe; rule_layering ]

type config = {
  c_root : string;
  c_describe_file : string option;  (* captured `dune describe` output (CI fixtures) *)
  c_escapes_file : string;
  c_forkinit_file : string;
  c_layers_file : string;
  c_format : Linter.format;
  c_dump : bool;  (* print the extracted graph instead of analyzing *)
}

(* fatal condition (config, staleness, unreadable cmt): exit 2, loudly *)
exception Fatal of string

let origin_finding (o : Extract.origin) rule msg =
  {
    Linter.f_file = o.Extract.o_file;
    f_line = o.Extract.o_line;
    f_col = o.Extract.o_col;
    f_rule = rule;
    f_msg = msg;
  }

(* ------------------------------------------------------- suppression *)

(* "deepcheck: allow <rule>" on the finding's line or the line above,
   via the engine shared with bin/lint *)
let suppressed cfg =
  let cache : (string, string array) Hashtbl.t = Hashtbl.create 16 in
  fun (f : Linter.finding) ->
    let path =
      if Filename.is_relative f.Linter.f_file then Filename.concat cfg.c_root f.Linter.f_file
      else f.Linter.f_file
    in
    let lines =
      match Hashtbl.find_opt cache path with
      | Some l -> l
      | None ->
          let l =
            match In_channel.with_open_bin path In_channel.input_all with
            | text -> Array.of_list (String.split_on_char '\n' text)
            | exception Sys_error _ -> [||]
          in
          Hashtbl.replace cache path l;
          l
    in
    Linter.suppressed_by_marker ~lines
      ~marker:("deepcheck: allow " ^ f.Linter.f_rule)
      f.Linter.f_line

(* ------------------------------------------------------------ loading *)

let load_units (d : Describe.t) =
  let under_root p = if Filename.is_relative p then Filename.concat d.Describe.root p else p in
  List.concat_map
    (fun (lib : Describe.library) ->
      List.filter_map
        (fun (m : Describe.module_info) ->
          match m.Describe.m_cmt with
          | None -> None
          | Some cmt -> (
              let source =
                match m.Describe.m_impl with
                | Some impl -> Describe.source_relative d impl
                | None -> cmt
              in
              match
                Extract.load_unit ~lib:lib.Describe.lib_name ~source ~cmt:(under_root cmt)
                  ~cmti:(Option.map under_root m.Describe.m_cmti)
              with
              | Extract.Unit u -> Some u
              | Extract.Skipped _ -> None
              | Extract.Unreadable msg -> raise (Fatal msg)))
        lib.Describe.lib_modules)
    (Describe.local_libraries d)

(* ------------------------------------------------------------- escapes *)

(* every value a library's .mli exports, with its computed may-raise set;
   anything not named in the library's allowlist is a finding *)
let check_escapes (allow : Conf.escapes) (units : Extract.unit_info list) (g : Graph.t) =
  List.concat_map
    (fun (u : Extract.unit_info) ->
      let allowed = Conf.escapes_allowed allow u.Extract.u_lib in
      List.concat_map
        (fun (name, loc) ->
          let escaping = SSet.diff (Graph.may_raise g name) allowed in
          List.map
            (fun exn ->
              let what =
                if String.equal exn "*" then
                  "an unnamed exception (raise of a computed value; name it or allow '*')"
                else exn
              in
              origin_finding loc rule_exn_escape
                (Printf.sprintf
                   "%s may raise %s, which is not declared in the '%s' allowlist \
                    (deepcheck.escapes): %s"
                   name what u.Extract.u_lib (Graph.chain g name exn)))
            (SSet.elements escaping))
        u.Extract.u_public)
    units

(* --------------------------------------------------------- fork safety *)

let check_fork (fi : Conf.forkinit) (g : Graph.t) =
  (* every entry must resolve: a fork-safety pass whose entry points
     silently vanished in a refactor would check nothing *)
  List.iter
    (fun e ->
      if not (SMap.mem e g.Graph.nodes) then
        raise
          (Fatal
             (Printf.sprintf
                "deepcheck.forkinit: entry %s does not resolve to any definition — update the \
                 entry list (did a refactor rename it?)"
                e)))
    fi.Conf.fi_entries;
  let seen = Graph.reachable g ~entries:fi.Conf.fi_entries in
  let sanctioned target = List.mem_assoc target fi.Conf.fi_allow in
  let findings = ref [] in
  let seen_pair = Hashtbl.create 64 in
  Hashtbl.iter
    (fun name _ ->
      match Graph.node g name with
      | None -> ()
      | Some n ->
          List.iter
            (fun (target, _, site) ->
              let reason =
                if Extract.inherited_fd target then Some "inherited file descriptor"
                else
                  Option.bind (Graph.node g target) (fun t ->
                      Option.map
                        (fun r -> "toplevel mutable state (" ^ r ^ ")")
                        t.Extract.n_mutable)
              in
              match reason with
              | Some why when not (sanctioned target) ->
                  if not (Hashtbl.mem seen_pair (name, target)) then begin
                    Hashtbl.replace seen_pair (name, target) ();
                    findings :=
                      origin_finding site rule_fork_unsafe
                        (Printf.sprintf
                           "%s is %s reached from a fork entry point without a sanction in \
                            deepcheck.forkinit: %s"
                           target why (Graph.reach_path seen name))
                      :: !findings
                  end
              | _ -> ())
            n.Extract.n_edges)
    seen;
  List.rev !findings

(* ------------------------------------------------------------ layering *)

let dune_file_finding dir rule msg =
  { Linter.f_file = Filename.concat dir "dune"; f_line = 1; f_col = 0; f_rule = rule; f_msg = msg }

let check_layers (rules : Conf.layers) (d : Describe.t) =
  let local_names =
    SSet.of_list (List.map (fun (l : Describe.library) -> l.Describe.lib_name) (Describe.local_libraries d))
  in
  let resolve_dep uid ctx =
    match Describe.lib_name_of_uid d uid with
    | Some name -> name
    | None ->
        raise
          (Fatal
             (Printf.sprintf
                "dune describe lists dependency uid %s of %s but no library with that uid — \
                 describe output is inconsistent (stale capture?)"
                uid ctx))
  in
  (* only edges between local sublibraries are policed; external deps
     (unix, cmdliner, compiler-libs) are dune's business *)
  let check_entity kind kind_word name dir dep_uids =
    match Conf.layer_rule_for rules kind name with
    | None ->
        raise
          (Fatal
             (Printf.sprintf
                "deepcheck.layers has no rule for %s '%s' — every local %s must be covered (add \
                 '%s %s -> ...')"
                kind_word name kind_word kind_word name))
    | Some { Conf.lr_deps = `Any; _ } -> []
    | Some { Conf.lr_deps = `Only allowed; _ } ->
        List.filter_map
          (fun uid ->
            let dep = resolve_dep uid name in
            if SSet.mem dep local_names && not (SSet.mem dep allowed) then
              Some
                (dune_file_finding dir rule_layering
                   (Printf.sprintf
                      "%s '%s' depends on local library '%s', which deepcheck.layers does not \
                       allow (allowed: %s)"
                      kind_word name dep
                      (match SSet.elements allowed with
                      | [] -> "none"
                      | l -> String.concat " " l)))
            else None)
          dep_uids
  in
  let lib_findings =
    List.concat_map
      (fun (l : Describe.library) ->
        check_entity `Library "library" l.Describe.lib_name
          (Describe.source_relative d l.Describe.lib_source_dir)
          l.Describe.lib_requires)
      (Describe.local_libraries d)
  in
  let exe_dir (e : Describe.executables) =
    match
      List.find_map (fun (m : Describe.module_info) -> m.Describe.m_impl) e.Describe.exe_modules
    with
    | Some impl -> Filename.dirname (Describe.source_relative d impl)
    | None -> "."
  in
  let exe_findings =
    List.concat_map
      (fun (e : Describe.executables) ->
        List.concat_map
          (fun name -> check_entity `Executable "executable" name (exe_dir e) e.Describe.exe_requires)
          e.Describe.exe_names)
      d.Describe.exes
  in
  lib_findings @ exe_findings

(* ----------------------------------------------------------------- dump *)

(* debugging/inspection surface: the extracted graph as text, one line
   per fact, greppable. Used by tests to pin extraction behaviour. *)
let dump_units out (units : Extract.unit_info list) (g : Graph.t) =
  List.iter
    (fun (u : Extract.unit_info) ->
      Printf.fprintf out "unit %s lib=%s src=%s\n" u.Extract.u_unit u.Extract.u_lib
        u.Extract.u_source;
      List.iter
        (fun (n : Extract.node) ->
          Printf.fprintf out "  node %s%s%s\n" n.Extract.n_name
            (if n.Extract.n_is_fun then " fun" else "")
            (match n.Extract.n_mutable with Some r -> " mutable:" ^ r | None -> "");
          List.iter
            (fun (exn, _, o) ->
              Printf.fprintf out "    raise %s at %s\n" exn (Graph.origin_string o))
            n.Extract.n_raises;
          let may = Graph.may_raise g n.Extract.n_name in
          if not (SSet.is_empty may) then
            Printf.fprintf out "    may-raise %s\n" (String.concat " " (SSet.elements may)))
        u.Extract.u_nodes;
      List.iter (fun (name, _) -> Printf.fprintf out "  public %s\n" name) u.Extract.u_public)
    units

(* ------------------------------------------------------------------ run *)

let run cfg =
  match
    let d =
      match Describe.load ~root:cfg.c_root ~describe_file:cfg.c_describe_file with
      | Ok d -> d
      | Error msg -> raise (Fatal ("dune describe: " ^ msg))
    in
    (* staleness first: analyzing stale trees would make everything
       after this line a lie — exit 2, never a silent pass *)
    (match Stale.audit ~root:cfg.c_root d with
    | Ok () -> ()
    | Error msgs -> raise (Fatal (String.concat "\n" msgs)));
    let units = load_units d in
    let graph = Graph.build (List.concat_map (fun u -> u.Extract.u_nodes) units) in
    if cfg.c_dump then begin
      dump_units stdout units graph;
      0
    end
    else begin
      let escapes =
        match Conf.parse_escapes cfg.c_escapes_file with
        | Ok e -> e
        | Error msg -> raise (Fatal msg)
      in
      let forkinit =
        match Conf.parse_forkinit cfg.c_forkinit_file with
        | Ok f -> f
        | Error msg -> raise (Fatal msg)
      in
      let layers =
        match Conf.parse_layers cfg.c_layers_file with
        | Ok l -> l
        | Error msg -> raise (Fatal msg)
      in
      let findings =
        check_escapes escapes units graph
        @ check_fork forkinit graph
        @ check_layers layers d
      in
      let is_suppressed = suppressed cfg in
      let findings = List.filter (fun f -> not (is_suppressed f)) findings in
      Linter.print_findings ~tool:"deepcheck" cfg.c_format findings;
      if findings = [] then 0 else 1
    end
  with
  | code -> code
  | exception Fatal msg ->
      Printf.eprintf "deepcheck: %s\n" msg;
      2
