(** Whole-repo call graph: the may-raise fixpoint (exception-escape) and
    entry reachability with provenance (fork-safety witness chains). *)

module SSet = Extract.SSet
module SMap : Map.S with type key = string

type provenance =
  | Direct of Extract.origin
  | Via of { callee : string; site : Extract.origin }

type t = {
  nodes : Extract.node SMap.t;
  may_raise : SSet.t SMap.t;
  provenance : provenance SMap.t SMap.t;
}

val build : Extract.node list -> t
(** Worklist fixpoint: [may_raise(n) = direct(n) ∪ ⋃ (may_raise(c) \ mask)]
    over call edges into arrow-typed callees. *)

val node : t -> string -> Extract.node option
val may_raise : t -> string -> SSet.t

val origin_string : Extract.origin -> string

val chain : t -> string -> string -> string
(** [chain g node exn]: human witness of how [exn] reaches [node]
    ("via A.g (lib/x.ml:12:4), raised at lib/y.ml:3:2"). *)

type reach = { r_parent : (string * Extract.origin) option }

val reachable : t -> entries:string list -> (string, reach) Hashtbl.t
(** BFS from the entry set over call edges; only arrow-typed targets
    propagate further. *)

val reach_path : (string, reach) Hashtbl.t -> string -> string
(** Call-path witness from an entry down to [name]. *)
