(* Whole-repo call graph over Extract nodes, with the two fixpoints the
   analyses need: the may-raise set of every node (exception-escape) and
   entry reachability with provenance (fork-safety witness chains). *)

module SSet = Extract.SSet
module SMap = Map.Make (String)

type provenance =
  | Direct of Extract.origin
  | Via of { callee : string; site : Extract.origin }

type t = {
  nodes : Extract.node SMap.t;
  may_raise : SSet.t SMap.t;
  provenance : provenance SMap.t SMap.t;  (* node -> exn -> how it got there *)
}

let node t name = SMap.find_opt name t.nodes

let may_raise t name =
  match SMap.find_opt name t.may_raise with Some s -> s | None -> SSet.empty

(* --------------------------------------------------------------- build *)

(* may_raise(n) = direct(n) ∪ ⋃_{(c,mask) ∈ edges(n), c arrow-typed}
   (may_raise(c) \ mask). Worklist over reverse edges; terminates because
   sets only grow and the exception universe is finite. *)
let build (all : Extract.node list) =
  let nodes =
    List.fold_left (fun acc (n : Extract.node) -> SMap.add n.Extract.n_name n acc) SMap.empty all
  in
  (* reverse dependency index: callee -> callers that must be revisited
     when the callee's set grows *)
  let callers = Hashtbl.create 1024 in
  SMap.iter
    (fun name (n : Extract.node) ->
      List.iter
        (fun (callee, _, _) ->
          if SMap.mem callee nodes then Hashtbl.add callers callee name)
        n.Extract.n_edges)
    nodes;
  let may = Hashtbl.create 1024 in
  let prov = Hashtbl.create 1024 in
  let get name = match Hashtbl.find_opt may name with Some s -> s | None -> SSet.empty in
  let record_prov name exn p =
    if not (Hashtbl.mem prov (name, exn)) then Hashtbl.replace prov (name, exn) p
  in
  let queue = Queue.create () in
  let enqueue name = Queue.add name queue in
  (* seed with unmasked direct raises *)
  SMap.iter
    (fun name (n : Extract.node) ->
      let direct =
        List.fold_left
          (fun acc (exn, m, o) ->
            if Extract.mask_catches m exn then acc
            else begin
              record_prov name exn (Direct o);
              SSet.add exn acc
            end)
          SSet.empty n.Extract.n_raises
      in
      if not (SSet.is_empty direct) then begin
        Hashtbl.replace may name direct;
        enqueue name
      end)
    nodes;
  while not (Queue.is_empty queue) do
    let changed = Queue.pop queue in
    let changed_set = get changed in
    List.iter
      (fun caller ->
        match SMap.find_opt caller nodes with
        | None -> ()
        | Some cn ->
            let before = get caller in
            let after =
              List.fold_left
                (fun acc (callee, m, site) ->
                  if
                    String.equal callee changed
                    && (match SMap.find_opt callee nodes with
                       | Some c -> c.Extract.n_is_fun
                       | None -> false)
                  then
                    SSet.fold
                      (fun exn acc ->
                        if Extract.mask_catches m exn || SSet.mem exn acc then acc
                        else begin
                          record_prov caller exn (Via { callee; site });
                          SSet.add exn acc
                        end)
                      changed_set acc
                  else acc)
                before cn.Extract.n_edges
            in
            if SSet.cardinal after > SSet.cardinal before then begin
              Hashtbl.replace may caller after;
              enqueue caller
            end)
      (Hashtbl.find_all callers changed)
  done;
  let may_raise = Hashtbl.fold (fun name s acc -> SMap.add name s acc) may SMap.empty in
  let provenance =
    Hashtbl.fold
      (fun (name, exn) p acc ->
        let inner = match SMap.find_opt name acc with Some m -> m | None -> SMap.empty in
        SMap.add name (SMap.add exn p inner) acc)
      prov SMap.empty
  in
  { nodes; may_raise; provenance }

(* ---------------------------------------------------------- provenance *)

let origin_string (o : Extract.origin) =
  Printf.sprintf "%s:%d:%d" o.Extract.o_file o.Extract.o_line o.Extract.o_col

(* witness chain: "raised at lib/x.ml:3 in A.f, via A.g <- A.h" — how the
   exception travels from its raise site up to [name] *)
let chain t name exn =
  let rec follow name acc depth =
    if depth > 32 then List.rev ("..." :: acc)
    else
      match SMap.find_opt name t.provenance with
      | None -> List.rev acc
      | Some m -> (
          match SMap.find_opt exn m with
          | None -> List.rev acc
          | Some (Direct o) -> List.rev (Printf.sprintf "raised at %s" (origin_string o) :: acc)
          | Some (Via { callee; site }) ->
              follow callee (Printf.sprintf "via %s (%s)" callee (origin_string site) :: acc) (depth + 1))
  in
  String.concat ", " (follow name [] 0)

(* -------------------------------------------------------- reachability *)

type reach = { r_parent : (string * Extract.origin) option (* None for entry points *) }

(* BFS over call edges from the entry set. Only arrow-typed targets
   propagate further (referencing a toplevel value does not run code),
   but the reference itself is recorded — that reference IS the finding
   when the target is mutable state. *)
let reachable t ~entries =
  let seen = Hashtbl.create 256 in
  let queue = Queue.create () in
  List.iter
    (fun e ->
      if (not (Hashtbl.mem seen e)) && SMap.mem e t.nodes then begin
        Hashtbl.replace seen e { r_parent = None };
        Queue.add e queue
      end)
    entries;
  while not (Queue.is_empty queue) do
    let name = Queue.pop queue in
    match SMap.find_opt name t.nodes with
    | None -> ()
    | Some n ->
        List.iter
          (fun (callee, _, site) ->
            match SMap.find_opt callee t.nodes with
            | Some c when c.Extract.n_is_fun && not (Hashtbl.mem seen callee) ->
                Hashtbl.replace seen callee { r_parent = Some (name, site) };
                Queue.add callee queue
            | _ -> ())
          n.Extract.n_edges
  done;
  seen

(* call-path witness for a reachable node: "Exec.Supervisor.run_child ->
   Obs.Metrics.observe (at lib/exec/supervisor.ml:160)" *)
let reach_path (seen : (string, reach) Hashtbl.t) name =
  let rec up name acc depth =
    if depth > 64 then "..." :: acc
    else
      match Hashtbl.find_opt seen name with
      | None | Some { r_parent = None } -> name :: acc
      | Some { r_parent = Some (parent, site) } ->
          up parent (Printf.sprintf "%s (at %s)" name (origin_string site) :: acc) (depth + 1)
  in
  String.concat " -> " (up name [] 0)
