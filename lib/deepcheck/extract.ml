(* Per-unit extraction over the typed tree (.cmt): top-level definition
   nodes, their raise sites and outgoing references (each tagged with the
   set of exceptions caught around the site), toplevel mutable state, and
   the unit's public surface (.cmti). This is the single pass everything
   interprocedural (Graph + the three analyses in Driver) is built from.

   Approximations, chosen to keep the analysis a *may*-analysis:
   - nested functions/closures are attributed to their enclosing
     top-level binding: a reference counts as a call whether or not the
     closure is ever invoked;
   - higher-order flow through parameters is not tracked;
   - functor bodies are skipped (none of the repo's fork/escape surface
     lives in a functor);
   - programmer-error exceptions (Invalid_argument from bounds checks
     and [invalid_arg] precondition guards, Assert_failure,
     Match_failure, Division_by_zero) are deliberately out of scope:
     they are bug channels, not API channels, and tracking them would
     drown the reviewable allowlists (an [invalid_arg] guard on every
     accessor would put Invalid_argument in every library's list).
     Named control-flow exceptions (Not_found, Failure, End_of_file,
     Unix.Unix_error, repo exceptions ...) are tracked. *)

module SSet = Set.Make (String)

(* what is caught around a program point: [All] when an enclosing
   handler is a catch-all *)
type mask = All | Names of SSet.t

let mask_union a b =
  match (a, b) with All, _ | _, All -> All | Names x, Names y -> Names (SSet.union x y)

let mask_catches mask exn =
  match mask with
  | All -> true
  | Names s ->
      (* the unknown exception of a [raise e] on a variable can only be
         caught by a catch-all *)
      (not (String.equal exn "*")) && SSet.mem exn s

type origin = { o_file : string; o_line : int; o_col : int }

let origin_of_loc (loc : Location.t) =
  {
    o_file = loc.loc_start.pos_fname;
    o_line = loc.loc_start.pos_lnum;
    o_col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
  }

type node = {
  n_name : string;  (* fully qualified, e.g. "Aig.Fraig.reduce" *)
  n_loc : origin;
  n_is_fun : bool;  (* arrow-typed: referencing it can execute its body *)
  n_mutable : string option;  (* [Some reason] for toplevel mutable state *)
  n_raises : (string * mask * origin) list;
  n_edges : (string * mask * origin) list;
}

type unit_info = {
  u_unit : string;  (* normalized module path, e.g. "Aig.Fraig" *)
  u_lib : string;
  u_source : string;
  u_nodes : node list;
  u_public : (string * origin) list;  (* values the .mli exports *)
}

(* ------------------------------------------------------------ name munge *)

(* "Aig__Fraig" -> ["Aig"; "Fraig"]; dune's "Hqs__" alias module ->
   ["Hqs"] (trailing empty segment dropped) *)
let split_mangled s =
  let segs = ref [] and buf = Buffer.create 16 in
  let n = String.length s in
  let flush () =
    if Buffer.length buf > 0 then segs := Buffer.contents buf :: !segs;
    Buffer.clear buf
  in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && s.[!i] = '_' && s.[!i + 1] = '_' then begin
      flush ();
      i := !i + 2
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  flush ();
  List.rev !segs

let normalize_segments parts =
  let parts = List.concat_map split_mangled parts in
  match parts with "Stdlib" :: (_ :: _ as rest) -> rest | parts -> parts

let normalize_unit_name u = String.concat "." (normalize_segments [ u ])

let rec path_parts = function
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> path_parts p @ [ s ]
  | Path.Papply (p, _) -> path_parts p
  | Path.Pextra_ty (p, _) -> path_parts p

(* ------------------------------------------------------------- scopes *)

(* Lexical module scopes of the unit being walked, for resolving [Pident]
   references (the unit's own top-level values) and local module aliases
   ([module Json = Obs.Json] — this codebase's pervasive idiom; without
   alias chasing, cross-library edges like Budget.now -> Mono would be
   silently dropped). *)
type scope = {
  s_path : string;  (* "Aig.Man" or "Aig.Man.Internal" *)
  mutable s_values : SSet.t;
  mutable s_aliases : (string * string) list;  (* local module name -> normalized target *)
  mutable s_submodules : SSet.t;  (* local structure modules *)
  s_parent : scope option;
}

let new_scope ?parent s_path =
  { s_path; s_values = SSet.empty; s_aliases = []; s_submodules = SSet.empty; s_parent = parent }

let rec resolve_value scope name =
  if SSet.mem name scope.s_values then Some (scope.s_path ^ "." ^ name)
  else match scope.s_parent with Some p -> resolve_value p name | None -> None

let rec resolve_module scope name =
  match List.assoc_opt name scope.s_aliases with
  | Some target -> Some target
  | None ->
      if SSet.mem name scope.s_submodules then Some (scope.s_path ^ "." ^ name)
      else match scope.s_parent with Some p -> resolve_module p name | None -> None

(* a referenced path, as a normalized dotted name: the unit's own values
   resolve through the scope chain, module roots resolve through local
   aliases, everything else is treated as a global compilation unit *)
let resolve_path scope p =
  match path_parts p with
  | [] -> None
  | [ v ] -> (
      match resolve_value scope v with
      | Some full -> Some full
      | None -> Some v (* a bare global: stdlib value like "failwith", or a local — harmless *))
  | root :: rest ->
      let root_parts =
        match resolve_module scope root with
        | Some full -> String.split_on_char '.' full
        | None -> [ root ]
      in
      Some (String.concat "." (normalize_segments (root_parts @ rest)))

(* predeclared exceptions keep their bare names *)
let predef_exceptions =
  SSet.of_list
    [
      "Not_found"; "Failure"; "Invalid_argument"; "End_of_file"; "Sys_error"; "Out_of_memory";
      "Stack_overflow"; "Assert_failure"; "Match_failure"; "Division_by_zero"; "Exit";
      "Sys_blocked_io"; "Undefined_recursive_module";
    ]

let exn_name_of_path scope ~unit_prefix p =
  match path_parts p with
  | [ single ] when SSet.mem single predef_exceptions -> single
  | [ single ] ->
      (* an exception declared in the unit being walked: qualify it the
         way every other unit sees it *)
      unit_prefix ^ "." ^ single
  | root :: rest ->
      let root_parts =
        match resolve_module scope root with
        | Some full -> String.split_on_char '.' full
        | None -> [ root ]
      in
      String.concat "." (normalize_segments (root_parts @ rest))
  | [] -> "*"

(* ------------------------------------------------- stdlib raise effects *)

let raise_like = function
  | "raise" | "raise_notrace" | "Printexc.raise_with_backtrace" -> true
  | _ -> false

(* named control-flow exceptions of stdlib calls this codebase uses; the
   ISSUE-mandated trio (Hashtbl.find, List.find, int_of_string) plus the
   rest of the partial functions that show up in solver/daemon paths *)
let stdlib_raises name =
  match name with
  | "Hashtbl.find" -> [ "Not_found" ]
  | "List.find" | "List.assoc" | "String.index" | "String.rindex" | "String.index_from"
  | "Sys.getenv" | "Unix.getenv" | "Str.matched_group" | "Str.search_forward" ->
      [ "Not_found" ]
  | "List.hd" | "List.tl" | "List.nth" | "int_of_string" | "float_of_string" ->
      [ "Failure" ]
  | "Queue.take" | "Queue.pop" | "Queue.peek" | "Queue.top" -> [ "Queue.Empty" ]
  | "Stack.pop" | "Stack.top" -> [ "Stack.Empty" ]
  | "input_line" | "input_char" | "input_byte" | "really_input" | "really_input_string" ->
      [ "End_of_file" ]
  | "open_in" | "open_in_bin" | "open_out" | "open_out_bin" | "In_channel.open_bin"
  | "In_channel.open_text" | "In_channel.with_open_bin" | "In_channel.with_open_text"
  | "Out_channel.open_bin" | "Out_channel.open_text" | "Out_channel.with_open_bin"
  | "Out_channel.with_open_text" | "Sys.readdir" | "Sys.is_directory" | "Sys.remove"
  | "Sys.rename" | "Sys.getcwd" | "Sys.chdir" ->
      [ "Sys_error" ]
  (* total Unix functions: cannot fail on any POSIX system this runs
     on, and blanket-tagging them would put Unix_error in every
     library's allowlist via the Mono clock *)
  | "Unix.gettimeofday" | "Unix.time" | "Unix.getpid" | "Unix.getppid" | "Unix.error_message" ->
      []
  | _ ->
      (* every other Unix syscall wrapper can fail with Unix_error; the
         stdlib channel helpers above raise Sys_error instead *)
      if String.length name > 5 && String.starts_with ~prefix:"Unix." name then
        [ "Unix.Unix_error" ]
      else []

(* inherited standard descriptors: reachable uses from a fork child are
   findings unless sanctioned (the child shares them with the parent) *)
let inherited_fd = function
  | "stdin" | "stdout" | "stderr" | "Unix.stdin" | "Unix.stdout" | "Unix.stderr" -> true
  | _ -> false

(* ----------------------------------------------------- expression walk *)

let is_arrow ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tpoly (t, _) -> ( match Types.get_desc t with Types.Tarrow _ -> true | _ -> false)
  | _ -> false

(* does [mutable state escape the binding]: the RHS shapes that allocate
   toplevel mutable state *)
let mutable_shape (e : Typedtree.expression) scope =
  match e.exp_desc with
  | Typedtree.Texp_apply ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, _) -> (
      match Option.value ~default:"" (resolve_path scope p) with
      | "ref" -> Some "ref cell"
      | "Hashtbl.create" -> Some "Hashtbl"
      | "Buffer.create" -> Some "Buffer"
      | "Queue.create" -> Some "Queue"
      | "Stack.create" -> Some "Stack"
      | "Array.make" | "Array.init" | "Array.create_float" -> Some "array"
      | "Bytes.create" | "Bytes.make" -> Some "bytes"
      | "Atomic.make" -> Some "Atomic"
      | "Weak.create" -> Some "Weak array"
      | _ -> None)
  | Typedtree.Texp_record { fields; _ }
    when Array.exists
           (fun (ld, _) ->
             match ld.Types.lbl_mut with Asttypes.Mutable -> true | Asttypes.Immutable -> false)
           fields ->
      Some "record with mutable fields"
  | Typedtree.Texp_array (_ :: _) -> Some "array literal"
  | _ -> None

type collector = {
  mutable raises : (string * mask * origin) list;
  mutable edges : (string * mask * origin) list;
}

(* catch set of one handler case: what it reliably catches. Guarded
   handlers catch nothing (the guard may decline). *)
let rec pattern_catches scope ~unit_prefix (p : Typedtree.pattern) =
  match p.pat_desc with
  | Typedtree.Tpat_any | Typedtree.Tpat_var _ -> All
  | Typedtree.Tpat_alias (q, _, _) -> pattern_catches scope ~unit_prefix q
  | Typedtree.Tpat_or (a, b, _) ->
      mask_union (pattern_catches scope ~unit_prefix a) (pattern_catches scope ~unit_prefix b)
  | Typedtree.Tpat_construct (_, cd, _, _) -> (
      match cd.Types.cstr_tag with
      | Types.Cstr_extension (path, _) ->
          Names (SSet.singleton (exn_name_of_path scope ~unit_prefix path))
      | _ -> Names SSet.empty)
  | _ -> Names SSet.empty

(* the bound variable of a catch-all case, for spotting the
   cleanup-and-reraise idiom *)
let rec catchall_binder (p : Typedtree.pattern) =
  match p.pat_desc with
  | Typedtree.Tpat_var (id, _) -> Some id
  | Typedtree.Tpat_alias (q, id, _) -> (
      match catchall_binder q with Some i -> Some i | None -> Some id)
  | _ -> None

(* does the handler body re-raise its bound exception variable? if so
   the try is a pass-through for escape purposes, not a mask *)
let reraises_binder id (body : Typedtree.expression) =
  let found = ref false in
  let it = Tast_iterator.default_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Typedtree.Texp_apply ({ exp_desc = Typedtree.Texp_ident (fp, _, _); _ }, args) -> (
        match path_parts fp with
        | [ f ] | [ "Stdlib"; f ] | [ "Printexc"; f ] | [ "Stdlib"; "Printexc"; f ]
          when raise_like f || raise_like ("Printexc." ^ f) -> (
            match args with
            | (_, Some { exp_desc = Typedtree.Texp_ident (Path.Pident id', _, _); _ }) :: _
              when Ident.same id id' ->
                found := true
            | _ -> ())
        | _ -> ())
    | _ -> ());
    it.expr sub e
  in
  let sub = { it with expr } in
  sub.expr sub body;
  !found

let walk_body ~scope ~unit_prefix ~(collector : collector) (body : Typedtree.expression) =
  let mask = ref (Names SSet.empty) in
  (* exception variables whose re-raise is modelled as pass-through *)
  let suppressed = ref [] in
  let add_raise exn loc = collector.raises <- (exn, !mask, origin_of_loc loc) :: collector.raises in
  let add_edge name loc =
    if not (mask_catches !mask "") then ();
    collector.edges <- (name, !mask, origin_of_loc loc) :: collector.edges
  in
  let it = Tast_iterator.default_iterator in
  let with_mask m f =
    let saved = !mask in
    mask := mask_union saved m;
    f ();
    mask := saved
  in
  let record_apply (e : Typedtree.expression) fn args =
    match fn.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> (
        let name = Option.value ~default:"" (resolve_path scope p) in
        if raise_like name then begin
          (match args with
          | (_, Some arg) :: _ -> (
              match arg.Typedtree.exp_desc with
              | Typedtree.Texp_construct (_, cd, _) -> (
                  match cd.Types.cstr_tag with
                  | Types.Cstr_extension (path, _) ->
                      add_raise (exn_name_of_path scope ~unit_prefix path) e.exp_loc
                  | _ -> ())
              | Typedtree.Texp_ident (Path.Pident id, _, _)
                when List.exists (Ident.same id) !suppressed ->
                  (* cleanup-and-reraise of the handler's own binder:
                     modelled as pass-through at the try, not a raise *)
                  ()
              | _ -> add_raise "*" e.exp_loc)
          | (_, None) :: _ | [] -> ());
          true
        end
        else if String.equal name "failwith" then begin
          add_raise "Failure" e.exp_loc;
          true
        end
        else if String.equal name "invalid_arg" then
          (* precondition guard: a bug channel, not an API channel *)
          true
        else if
          (String.equal name "Printf.ksprintf" || String.equal name "Format.ksprintf")
          &&
          match args with
          | (_, Some { exp_desc = Typedtree.Texp_ident (kp, _, _); _ }) :: _ ->
              String.equal (Option.value ~default:"" (resolve_path scope kp)) "failwith"
          | _ -> false
        then begin
          add_raise "Failure" e.exp_loc;
          true
        end
        else begin
          List.iter (fun exn -> add_raise exn e.exp_loc) (stdlib_raises name);
          false
        end)
    | _ -> false
  in
  let rec expr sub (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_try (body, cases) ->
        (* catch set: unguarded handlers; a catch-all that re-raises its
           binder is pass-through and contributes nothing *)
        let caught = ref (Names SSet.empty) in
        let case_binders = ref [] in
        List.iter
          (fun (c : Typedtree.value Typedtree.case) ->
            if c.c_guard = None then begin
              let m = pattern_catches scope ~unit_prefix c.c_lhs in
              let passthrough =
                match m with
                | All -> (
                    match catchall_binder c.c_lhs with
                    | Some id when reraises_binder id c.c_rhs ->
                        case_binders := id :: !case_binders;
                        true
                    | Some _ | None -> false)
                | Names _ -> false
              in
              if not passthrough then caught := mask_union !caught m
            end)
          cases;
        with_mask !caught (fun () -> expr sub body);
        (* handler bodies run outside the try: original mask, with the
           pass-through binders' re-raises suppressed *)
        let saved = !suppressed in
        suppressed := !case_binders @ saved;
        List.iter
          (fun (c : Typedtree.value Typedtree.case) ->
            sub.Tast_iterator.pat sub c.c_lhs;
            (match c.c_guard with Some g -> expr sub g | None -> ());
            expr sub c.c_rhs)
          cases;
        suppressed := saved
    | Typedtree.Texp_match (scrut, cases, _) ->
        (* [match e with exception E -> ...] masks E for the scrutinee
           only; a catch-all exception case that re-raises its binder
           (the Span.with_ close-and-reraise idiom) is pass-through *)
        let caught = ref (Names SSet.empty) in
        let case_binders = ref [] in
        List.iter
          (fun (c : Typedtree.computation Typedtree.case) ->
            if c.c_guard = None then
              match Typedtree.split_pattern c.c_lhs with
              | _, Some exn_pat -> (
                  match pattern_catches scope ~unit_prefix exn_pat with
                  | All -> (
                      match catchall_binder exn_pat with
                      | Some id when reraises_binder id c.c_rhs ->
                          case_binders := id :: !case_binders
                      | Some _ | None -> caught := All)
                  | Names _ as m -> caught := mask_union !caught m)
              | _, None -> ())
          cases;
        with_mask !caught (fun () -> expr sub scrut);
        let saved = !suppressed in
        suppressed := !case_binders @ saved;
        List.iter
          (fun (c : Typedtree.computation Typedtree.case) ->
            sub.Tast_iterator.pat sub c.c_lhs;
            (match c.c_guard with Some g -> expr sub g | None -> ());
            expr sub c.c_rhs)
          cases;
        suppressed := saved
    | Typedtree.Texp_apply (fn, args) ->
        let was_raise_form = record_apply e fn args in
        (* walk operands; skip re-walking the callee ident of a raise
           form so the reraise suppression holds *)
        if was_raise_form then
          List.iter (fun (_, a) -> Option.iter (fun a -> expr sub a) a) args
        else it.Tast_iterator.expr sub e
    | Typedtree.Texp_ident (p, _, _) ->
        (match resolve_path scope p with
        | Some name when String.contains name '.' || inherited_fd name -> add_edge name e.exp_loc
        | Some _ | None -> ());
        it.Tast_iterator.expr sub e
    | _ -> it.Tast_iterator.expr sub e
  in
  let sub = { it with expr } in
  sub.expr sub body

(* ------------------------------------------------------ structure walk *)

let rec pat_bound_name (p : Typedtree.pattern) =
  match p.pat_desc with
  | Typedtree.Tpat_var (_, name) -> Some name.txt
  | Typedtree.Tpat_alias (q, _, name) -> (
      match pat_bound_name q with Some n -> Some n | None -> Some name.txt)
  | _ -> None

let rec walk_structure ~unit_prefix ~nodes scope (str : Typedtree.structure) =
  List.iter (walk_structure_item ~unit_prefix ~nodes scope) str.str_items

and walk_structure_item ~unit_prefix ~nodes scope (item : Typedtree.structure_item) =
  match item.str_desc with
  | Typedtree.Tstr_value (_, vbs) ->
      (* names first, so a recursive group resolves its own members *)
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          match pat_bound_name vb.vb_pat with
          | Some n -> scope.s_values <- SSet.add n scope.s_values
          | None -> ())
        vbs;
      let anon = ref 0 in
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          let name =
            match pat_bound_name vb.vb_pat with
            | Some n -> n
            | None ->
                (* [let () = ...] / destructuring: module-init code *)
                incr anon;
                Printf.sprintf "(init-%d)" !anon
          in
          let collector = { raises = []; edges = [] } in
          walk_body ~scope ~unit_prefix ~collector vb.vb_expr;
          nodes :=
            {
              n_name = scope.s_path ^ "." ^ name;
              n_loc = origin_of_loc vb.vb_pat.pat_loc;
              n_is_fun = is_arrow vb.vb_expr.exp_type;
              n_mutable = mutable_shape vb.vb_expr scope;
              n_raises = List.rev collector.raises;
              n_edges = List.rev collector.edges;
            }
            :: !nodes)
        vbs
  | Typedtree.Tstr_module mb -> walk_module_binding ~unit_prefix ~nodes scope mb
  | Typedtree.Tstr_recmodule mbs ->
      List.iter (walk_module_binding ~unit_prefix ~nodes scope) mbs
  | _ -> ()

and walk_module_binding ~unit_prefix ~nodes scope (mb : Typedtree.module_binding) =
  match mb.mb_name.txt with
  | None -> ()
  | Some name -> walk_module_expr ~unit_prefix ~nodes scope name mb.mb_expr

and walk_module_expr ~unit_prefix ~nodes scope name (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Typedtree.Tmod_structure str ->
      scope.s_submodules <- SSet.add name scope.s_submodules;
      let child = new_scope ~parent:scope (scope.s_path ^ "." ^ name) in
      walk_structure ~unit_prefix ~nodes child str
  | Typedtree.Tmod_ident (p, _) ->
      (* [module Json = Obs.Json]: record the alias so references through
         the local name resolve to the real target *)
      let target =
        match path_parts p with
        | [] -> name
        | root :: rest ->
            let root_parts =
              match resolve_module scope root with
              | Some full -> String.split_on_char '.' full
              | None -> [ root ]
            in
            String.concat "." (normalize_segments (root_parts @ rest))
      in
      scope.s_aliases <- (name, target) :: scope.s_aliases
  | Typedtree.Tmod_constraint (inner, _, _, _) ->
      walk_module_expr ~unit_prefix ~nodes scope name inner
  | _ ->
      (* functor bodies/applications: out of scope, but the module name
         must still shadow correctly *)
      scope.s_submodules <- SSet.add name scope.s_submodules

(* ----------------------------------------------------- public surface *)

let rec public_of_signature prefix (sg : Typedtree.signature) =
  List.concat_map
    (fun (item : Typedtree.signature_item) ->
      match item.sig_desc with
      | Typedtree.Tsig_value vd ->
          [ (prefix ^ "." ^ Ident.name vd.val_id, origin_of_loc vd.val_loc) ]
      | Typedtree.Tsig_module md -> (
          match (md.md_id, md.md_type.mty_desc) with
          | Some id, Typedtree.Tmty_signature inner ->
              public_of_signature (prefix ^ "." ^ Ident.name id) inner
          | _ -> [])
      | _ -> [])
    sg.sig_items

(* -------------------------------------------------------------- loading *)

type cmt_result = Unit of unit_info | Skipped of string | Unreadable of string

let read_annots path =
  match Cmt_format.read_cmt path with
  | infos -> Ok infos
  | exception Cmi_format.Error _ -> Error (path ^ ": bad cmt magic (compiler mismatch?)")
  | exception Sys_error msg -> Error (path ^ ": " ^ msg)
  | exception End_of_file -> Error (path ^ ": truncated cmt")
  | exception Failure msg -> Error (path ^ ": " ^ msg)

let load_unit ~lib ~source ~cmt ~cmti =
  match read_annots cmt with
  | Error msg -> Unreadable msg
  | Ok infos -> (
      let unit_prefix = normalize_unit_name infos.Cmt_format.cmt_modname in
      match infos.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str ->
          let nodes = ref [] in
          let scope = new_scope unit_prefix in
          walk_structure ~unit_prefix ~nodes scope str;
          let u_public =
            match cmti with
            | None -> []
            | Some cmti_path -> (
                match read_annots cmti_path with
                | Error _ -> []
                | Ok iinfos -> (
                    match iinfos.Cmt_format.cmt_annots with
                    | Cmt_format.Interface sg -> public_of_signature unit_prefix sg
                    | _ -> []))
          in
          Unit
            {
              u_unit = unit_prefix;
              u_lib = lib;
              u_source = source;
              u_nodes = List.rev !nodes;
              u_public;
            }
      | Cmt_format.Interface _ | Cmt_format.Packed _ -> Skipped (cmt ^ ": not an implementation")
      | Cmt_format.Partial_implementation _ | Cmt_format.Partial_interface _ ->
          Unreadable (cmt ^ ": partial cmt (failed build?) — rebuild before deepcheck"))
