(* Parsed view of `dune describe`: the ground truth for which libraries
   exist, what each directly requires, and where dune put every module's
   source and .cmt. Everything the analyzer consumes downstream
   (layering edges, cmt paths, staleness pairs) comes from here — never
   from guessing at directory layout. *)

type module_info = {
  m_name : string;
  m_impl : string option;  (* build-relative source path *)
  m_intf : string option;
  m_cmt : string option;
  m_cmti : string option;
}

type library = {
  lib_name : string;
  lib_uid : string;
  lib_local : bool;
  lib_requires : string list;  (* uids of direct dependencies *)
  lib_source_dir : string;
  lib_modules : module_info list;
}

type executables = {
  exe_names : string list;  (* one stanza can define several binaries *)
  exe_requires : string list;  (* uids *)
  exe_modules : module_info list;
}

type t = { root : string; build_context : string; libraries : library list; exes : executables list }

let module_of_sexp sx =
  match Sexp.field_atom "name" sx with
  | None -> None
  | Some m_name ->
      let path key =
        match Sexp.field key sx with
        | Some [ Sexp.List [ Sexp.Atom p ] ] | Some [ Sexp.Atom p ] -> Some p
        | _ -> None
      in
      Some
        {
          m_name;
          m_impl = path "impl";
          m_intf = path "intf";
          m_cmt = path "cmt";
          m_cmti = path "cmti";
        }

let modules_of_sexp sx =
  match Sexp.field "modules" sx with
  | Some [ Sexp.List items ] -> List.filter_map module_of_sexp items
  | _ -> []

let library_of_sexp sx =
  match (Sexp.field_atom "name" sx, Sexp.field_atom "uid" sx) with
  | Some lib_name, Some lib_uid ->
      Some
        {
          lib_name;
          lib_uid;
          lib_local = Sexp.field_atom "local" sx = Some "true";
          lib_requires = Option.value ~default:[] (Sexp.field_atoms "requires" sx);
          lib_source_dir = Option.value ~default:"" (Sexp.field_atom "source_dir" sx);
          lib_modules = modules_of_sexp sx;
        }
  | _ -> None

let exe_of_sexp sx =
  match Sexp.field_atoms "names" sx with
  | None | Some [] -> None
  | Some exe_names ->
      Some
        {
          exe_names;
          exe_requires = Option.value ~default:[] (Sexp.field_atoms "requires" sx);
          exe_modules = modules_of_sexp sx;
        }

let of_sexp sx =
  match sx with
  | Sexp.Atom _ -> Error "dune describe output is not a list"
  | Sexp.List items ->
      let root = ref "" and build_context = ref "_build/default" in
      let libraries = ref [] and exes = ref [] in
      List.iter
        (fun item ->
          match item with
          | Sexp.List [ Sexp.Atom "root"; Sexp.Atom r ] -> root := r
          | Sexp.List [ Sexp.Atom "build_context"; Sexp.Atom b ] -> build_context := b
          | Sexp.List [ Sexp.Atom "library"; payload ] -> (
              match library_of_sexp payload with
              | Some lib -> libraries := lib :: !libraries
              | None -> ())
          | Sexp.List [ Sexp.Atom "executables"; payload ] -> (
              match exe_of_sexp payload with Some e -> exes := e :: !exes | None -> ())
          | Sexp.Atom _ | Sexp.List _ -> ())
        items;
      Ok
        {
          root = !root;
          build_context = !build_context;
          libraries = List.rev !libraries;
          exes = List.rev !exes;
        }

let of_string s = Result.bind (Sexp.parse s) of_sexp

(* ----------------------------------------------------------- conveniences *)

let lib_name_of_uid t uid =
  List.find_map
    (fun l -> if String.equal l.lib_uid uid then Some l.lib_name else None)
    t.libraries

let local_libraries t = List.filter (fun l -> l.lib_local) t.libraries

(* strip the build context prefix: "_build/default/lib/aig/man.ml" ->
   "lib/aig/man.ml" (the path a developer edits and a diagnostic names) *)
let source_relative t path =
  let prefix = t.build_context ^ "/" in
  if String.length path > String.length prefix && String.starts_with ~prefix path then
    String.sub path (String.length prefix) (String.length path - String.length prefix)
  else path

(* ---------------------------------------------------------------- runner *)

(* `dune describe` is run as a subprocess so the analyzer always sees the
   build system's own view. Must not be invoked from under `dune exec`
   (the build lock is held); CI calls the installed binary directly. *)
let run_dune_describe ~root =
  let cmd = Printf.sprintf "dune describe --root %s 2>/dev/null" (Filename.quote root) in
  match Unix.open_process_in cmd with
  | ic -> (
      let out = In_channel.input_all ic in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 -> Ok out
      | Unix.WEXITED code -> Error (Printf.sprintf "dune describe exited %d" code)
      | Unix.WSIGNALED s | Unix.WSTOPPED s ->
          Error (Printf.sprintf "dune describe killed by signal %d" s)
      | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "dune describe: %s" (Unix.error_message e)))
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "cannot run dune describe: %s" (Unix.error_message e))

let load ~root ~describe_file =
  let text =
    match describe_file with
    | Some f -> (
        match In_channel.with_open_bin f In_channel.input_all with
        | s -> Ok s
        | exception Sys_error msg -> Error ("cannot read describe file: " ^ msg))
    | None -> run_dune_describe ~root
  in
  Result.bind text of_string
