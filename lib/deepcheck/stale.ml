(* .cmt staleness: the analyzer reads build artifacts, so an edited
   source with an old .cmt would make every analysis silently lie about
   the code as written. Any mismatch is a loud exit-2 refusal upstream —
   never a silent pass over stale trees. *)

type status =
  | Fresh
  | Missing_cmt of { src : string }
  | Stale of { src : string; cmt : string; src_mtime : float; cmt_mtime : float }

(* pure core, testable without a build tree: [src_mtime]/[cmt_mtime] are
   [None] when the corresponding file does not exist. A generated source
   ([src_mtime = None]) cannot be edited, so only cmt presence matters;
   equal mtimes are fresh (same-second builds). *)
let classify ~src ~cmt ~src_mtime ~cmt_mtime =
  match (src_mtime, cmt_mtime) with
  | _, None -> Missing_cmt { src }
  | None, Some _ -> Fresh
  | Some s, Some c -> if s > c then Stale { src; cmt; src_mtime = s; cmt_mtime = c } else Fresh

let describe_status = function
  | Fresh -> None
  | Missing_cmt { src } ->
      Some
        (Printf.sprintf "%s: no .cmt artifact — run `dune build` before deepcheck (exit 2, the \
                         analyzer refuses to guess)" src)
  | Stale { src; cmt; src_mtime; cmt_mtime } ->
      Some
        (Printf.sprintf
           "%s: source is newer than its .cmt (%s; source %+.0fs ahead) — rebuild before \
            deepcheck, stale typed trees would make every analysis lie"
           src cmt (src_mtime -. cmt_mtime))

let mtime path =
  match Unix.stat path with
  | { Unix.st_mtime; _ } -> Some st_mtime
  | exception Unix.Unix_error (_, _, _) -> None

(* Audit every module of every local library. The source mtime is taken
   from the root checkout (the file a developer touches), not dune's
   _build copy; the cmt from the build tree. Returns the full message
   list so CI output names every stale unit at once. *)
let audit ~root (d : Describe.t) =
  let under_root p = if Filename.is_relative p then Filename.concat root p else p in
  let bad = ref [] in
  List.iter
    (fun (lib : Describe.library) ->
      List.iter
        (fun (m : Describe.module_info) ->
          let pair src_build cmt =
            match src_build with
            | None -> ()
            | Some src_build ->
                let src_rel = Describe.source_relative d src_build in
                let src_real = under_root src_rel in
                let cmt_real = Option.map under_root cmt in
                let status =
                  classify ~src:src_rel
                    ~cmt:(Option.value ~default:"<no cmt>" cmt)
                    ~src_mtime:(mtime src_real)
                    ~cmt_mtime:(Option.fold ~none:None ~some:mtime cmt_real)
                in
                (match describe_status status with Some msg -> bad := msg :: !bad | None -> ())
          in
          pair m.Describe.m_impl m.Describe.m_cmt;
          pair m.Describe.m_intf m.Describe.m_cmti)
        lib.Describe.lib_modules)
    (Describe.local_libraries d);
  match List.rev !bad with [] -> Ok () | msgs -> Error msgs
