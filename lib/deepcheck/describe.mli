(** Parsed view of `dune describe`: libraries, executables, direct
    dependency uids, and per-module source/[.cmt] paths — the analyzer's
    ground truth for layout (layering edges, cmt loading, staleness). *)

type module_info = {
  m_name : string;
  m_impl : string option;  (** build-relative source path *)
  m_intf : string option;
  m_cmt : string option;
  m_cmti : string option;
}

type library = {
  lib_name : string;
  lib_uid : string;
  lib_local : bool;
  lib_requires : string list;  (** uids of direct dependencies *)
  lib_source_dir : string;
  lib_modules : module_info list;
}

type executables = {
  exe_names : string list;  (** one stanza can define several binaries *)
  exe_requires : string list;  (** uids *)
  exe_modules : module_info list;
}

type t = {
  root : string;
  build_context : string;
  libraries : library list;
  exes : executables list;
}

val of_string : string -> (t, string) result
(** Parse `dune describe` output. Malformed input is a loud [Error]. *)

val of_sexp : Sexp.t -> (t, string) result

val lib_name_of_uid : t -> string -> string option
val local_libraries : t -> library list

val source_relative : t -> string -> string
(** Strip the build-context prefix: the path a developer edits and a
    diagnostic names. *)

val run_dune_describe : root:string -> (string, string) result
(** Run `dune describe` as a subprocess. Must not be called from under
    [dune exec] (the build lock is held); CI invokes the built binary
    directly. *)

val load : root:string -> describe_file:string option -> (t, string) result
(** [load]: read [describe_file] when given, otherwise run
    {!run_dune_describe}, then parse. *)
