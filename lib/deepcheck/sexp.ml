(* Minimal s-expression reader — just enough to parse `dune describe`
   output. Atoms are bare tokens or double-quoted strings with the
   escapes dune emits; anything unparseable is a loud [Error], never a
   partial result. *)

type t = Atom of string | List of t list

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some ';' ->
        (* line comment, as in dune files *)
        while !pos < n && s.[!pos] <> '\n' do
          advance ()
        done;
        skip_ws ()
    | _ -> ()
  in
  let quoted_atom () =
    advance ();
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_error "unterminated string at offset %d" !pos
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            if !pos >= n then parse_error "dangling escape at offset %d" !pos
            else begin
              (match s.[!pos] with
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | 'r' -> Buffer.add_char buf '\r'
              | c -> Buffer.add_char buf c);
              advance ();
              go ()
            end
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Atom (Buffer.contents buf)
  in
  let bare_atom () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';') | None -> ()
      | Some _ ->
          advance ();
          go ()
    in
    go ();
    Atom (String.sub s start (!pos - start))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> parse_error "unexpected end of input at offset %d" !pos
    | Some '(' ->
        advance ();
        let items = ref [] in
        let rec items_loop () =
          skip_ws ();
          match peek () with
          | Some ')' -> advance ()
          | None -> parse_error "unclosed list at offset %d" !pos
          | Some _ ->
              items := value () :: !items;
              items_loop ()
        in
        items_loop ();
        List (List.rev !items)
    | Some ')' -> parse_error "unexpected ')' at offset %d" !pos
    | Some '"' -> quoted_atom ()
    | Some _ -> bare_atom ()
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then parse_error "trailing input at offset %d" !pos;
  v

let parse s = match parse_exn s with v -> Ok v | exception Parse_error msg -> Error msg

(* --------------------------------------------------------- field helpers *)

(* dune describe records are alists of (key value...) pairs *)
let field key = function
  | List items ->
      List.find_map
        (function
          | List (Atom k :: rest) when String.equal k key -> Some rest | Atom _ | List _ -> None)
        items
  | Atom _ -> None

let atom = function Atom a -> Some a | List _ -> None
let list = function List l -> Some l | Atom _ -> None

let field_atom key sx = match field key sx with Some [ Atom a ] -> Some a | _ -> None

let field_atoms key sx =
  match field key sx with
  | Some [ List items ] -> Some (List.filter_map atom items)
  | Some items -> Some (List.filter_map atom items)
  | None -> None
