(** Deepcheck orchestration: layout (Describe) → staleness refusal
    (Stale) → per-unit extraction (Extract) → call-graph closure (Graph)
    → the three analyses against the reviewed policy files (Conf).

    Exit contract, shared with [bin/lint]: 0 clean, 1 findings, 2
    usage/staleness/config error. Staleness is never a silent pass. *)

val rule_exn_escape : string
val rule_fork_unsafe : string
val rule_layering : string

val all_rules : string list
(** Rule names as they appear in diagnostics and in
    ["deepcheck: allow <rule>"] suppression markers. *)

type config = {
  c_root : string;
  c_describe_file : string option;
      (** captured `dune describe` output (CI fixtures); the staleness
          audit still runs against the paths it names *)
  c_escapes_file : string;
  c_forkinit_file : string;
  c_layers_file : string;
  c_format : Linter.format;
  c_dump : bool;  (** print the extracted graph instead of analyzing *)
}

val run : config -> int
