open Hqs_util
module M = Aig.Man
module I = Aig.Man.Internal
module F = Dqbf.Formula

type level = Off | Cheap | Full

type stage =
  | Post_analysis
  | Post_inproc
  | Post_preprocess
  | Post_unitpure
  | Post_elimination
  | Post_fraig
  | Pre_backend
  | Post_solve
  | Post_certify

let stage_name = function
  | Post_analysis -> "post-analysis"
  | Post_inproc -> "post-inproc"
  | Post_preprocess -> "post-preprocess"
  | Post_unitpure -> "post-unitpure"
  | Post_elimination -> "post-elimination"
  | Post_fraig -> "post-fraig"
  | Pre_backend -> "pre-backend"
  | Post_solve -> "post-solve"
  | Post_certify -> "post-certify"

let level_name = function Off -> "off" | Cheap -> "cheap" | Full -> "full"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" | "none" | "0" -> Some Off
  | "cheap" | "1" -> Some Cheap
  | "full" | "2" -> Some Full
  | _ -> None

let level_of_env () =
  match Sys.getenv_opt "HQS_CHECK" with
  | None | Some "" -> Ok Off
  | Some s -> (
      match level_of_string s with
      | Some l -> Ok l
      | None -> Error (Printf.sprintf "HQS_CHECK=%s: expected off, cheap or full" s))

type violation = { stage : stage; structure : string; detail : string }

exception Violation of violation

let pp_violation fmt v =
  Format.fprintf fmt "[%s] %s: %s" (stage_name v.stage) v.structure v.detail

let violation stage structure fmt =
  Format.kasprintf (fun detail -> raise (Violation { stage; structure; detail })) fmt

(* ------------------------------------------------------------ AIG manager *)

(* Deep audit of the manager representation. All of these are "impossible"
   states for the public construction API; each one has produced a wrong
   verdict in some AIG package at some point, which is why they are checked
   rather than assumed:
   - node 0 is the constant; every other node is an input or an AND;
   - AND fanins reference strictly earlier, non-constant nodes (topological
     acyclicity and no dangling references past [num_nodes]) and are stored
     in normalized order;
   - the structural-hash table is a bijection between fanin pairs and AND
     nodes (every AND reachable through its own key, no poisoned entries),
     so hash-consing cannot silently alias two different functions;
   - the input registry and input nodes label each other consistently. *)
let audit_man ~stage man =
  let fail fmt = violation stage "aig-manager" fmt in
  let n = M.num_nodes man in
  if n < 1 then fail "manager lost its constant node";
  if I.raw_fanin0 man 0 <> -2 || I.raw_fanin1 man 0 <> -2 then
    fail "node 0 is not marked as the constant node (fanins %d,%d)" (I.raw_fanin0 man 0)
      (I.raw_fanin1 man 0);
  let inputs = ref 0 in
  let ands = ref 0 in
  for i = 1 to n - 1 do
    let f0 = I.raw_fanin0 man i and f1 = I.raw_fanin1 man i in
    if f0 = -1 then begin
      (* input node *)
      incr inputs;
      if f1 < 0 then fail "input node %d carries negative variable label %d" i f1;
      let registered = I.input_node_of_var man f1 in
      if registered <> i then
        fail "input-label bijectivity broken: node %d is labelled %d but the registry maps %d to node %d"
          i f1 f1 registered
    end
    else if f0 >= 0 then begin
      (* AND node *)
      incr ands;
      if f1 < 0 then fail "AND node %d has negative fanin1 %d" i f1;
      let n0 = M.node_of f0 and n1 = M.node_of f1 in
      if n0 >= i || n1 >= i then
        fail "AND node %d has forward or dangling fanin (%d,%d): topological order broken" i f0 f1;
      if n0 = 0 || n1 = 0 then fail "AND node %d has a constant fanin (%d,%d)" i f0 f1;
      if f0 >= f1 then fail "AND node %d has unnormalized fanin order (%d,%d)" i f0 f1;
      (match I.strash_find man f0 f1 with
      | Some node when node = i -> ()
      | Some node ->
          fail "structural hash maps fanins (%d,%d) of AND node %d to node %d" f0 f1 i node
      | None -> fail "AND node %d is unreachable through its own structural-hash key (%d,%d)" i f0 f1)
    end
    else if f0 = -2 then fail "node %d is marked constant but only node 0 may be" i
    else fail "node %d has invalid fanin0 slot %d" i f0
  done;
  if !inputs <> M.num_inputs man then
    fail "input count drifted: registry says %d, %d input nodes found" (M.num_inputs man) !inputs;
  if I.strash_size man < !ands then
    fail "structural hash holds %d entries for %d AND nodes" (I.strash_size man) !ands;
  (* reverse direction: every hash binding (including shadowed duplicates)
     must describe the AND node it points to *)
  I.strash_iter man (fun a b node ->
      if node <= 0 || node >= n then
        fail "structural-hash entry (%d,%d) -> %d points outside the node table" a b node;
      let f0 = I.raw_fanin0 man node and f1 = I.raw_fanin1 man node in
      if f0 <> a || f1 <> b then
        fail "poisoned structural-hash entry: (%d,%d) -> node %d whose fanins are (%d,%d)" a b node
          f0 f1);
  (* registry -> node direction of the input bijection *)
  for v = 0 to I.input_vars_size man - 1 do
    let node = I.input_node_of_var man v in
    if node >= 0 then begin
      if node >= n then fail "input registry maps variable %d to out-of-range node %d" v node;
      if I.raw_fanin0 man node <> -1 || I.raw_fanin1 man node <> v then
        fail "input registry maps variable %d to node %d, which is not its input node" v node
    end
  done

let audit_lit ~stage ~structure man lit =
  if lit < 0 || M.node_of lit >= M.num_nodes man then
    violation stage structure "literal %d is dangling (manager has %d nodes)" lit (M.num_nodes man)

(* ------------------------------------------------------------ DQBF formula *)

let quantified_set f =
  List.fold_left (fun acc (y, _) -> Bitset.add y acc) (F.universals f) (F.existentials f)

(* Dependency semantics: the prefix is the part of the state with no
   redundancy to cross-check against, so corruption here (a widened
   dependency set, a variable quantified twice) flips verdicts silently.
   [Cheap] scans the prefix; [Full] additionally audits the manager deep
   and checks the matrix support against the quantified variables. *)
let audit_formula ~stage ~level f =
  let fail fmt = violation stage "dqbf-formula" fmt in
  let man = F.man f in
  let univs = F.universals f in
  audit_lit ~stage ~structure:"dqbf-formula" man (F.matrix f);
  let bound = F.next_var f in
  Bitset.iter (fun x -> if x >= bound then fail "universal %d above next_var=%d" x bound) univs;
  List.iter
    (fun (y, d) ->
      if y >= bound then fail "existential %d above next_var=%d" y bound;
      if Bitset.mem y univs then fail "variable %d is quantified both ways" y;
      match Bitset.choose (Bitset.diff d univs) with
      | Some x ->
          fail "dependency set of existential %d contains %d, which is not a universal (dependency widening)"
            y x
      | None -> ())
    (F.existentials f);
  if level = Full then begin
    audit_man ~stage man;
    let quantified = quantified_set f in
    Bitset.iter
      (fun v ->
        if not (Bitset.mem v quantified) then
          fail "matrix depends on variable %d, which is not quantified" v)
      (M.support man (F.matrix f))
  end

let audit_queue ~stage f queue =
  let fail fmt = violation stage "elimination-queue" fmt in
  let bound = F.next_var f in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun x ->
      if x < 0 || x >= bound then fail "queued variable %d out of range [0,%d)" x bound;
      if F.is_universal f x then begin
        if Hashtbl.mem seen x then fail "universal %d queued twice" x;
        Hashtbl.add seen x ()
      end)
    queue

(* ------------------------------------------------------------- QBF prefix *)

let audit_prefix ~stage f prefix =
  let fail fmt = violation stage "qbf-prefix" fmt in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (q, vs) ->
      if vs = [] then fail "prefix contains an empty quantifier block";
      List.iter
        (fun v ->
          if Hashtbl.mem seen v then fail "variable %d appears twice in the prefix" v;
          Hashtbl.add seen v ();
          match q with
          | Qbf.Prefix.Forall ->
              if not (F.is_universal f v) then
                fail "prefix declares %d universal but the formula does not" v
          | Qbf.Prefix.Exists ->
              if not (F.is_existential f v) then
                fail "prefix declares %d existential but the formula does not" v)
        vs)
    prefix;
  let rec alternates = function
    | (q1, _) :: ((q2, _) :: _ as rest) ->
        (match (q1, q2) with
        | Qbf.Prefix.Forall, Qbf.Prefix.Forall | Qbf.Prefix.Exists, Qbf.Prefix.Exists ->
            fail "prefix is not normalized: adjacent blocks share a quantifier"
        | _ -> ());
        alternates rest
    | [ _ ] | [] -> ()
  in
  alternates prefix;
  Bitset.iter
    (fun x -> if not (Hashtbl.mem seen x) then fail "universal %d is missing from the prefix" x)
    (F.universals f);
  List.iter
    (fun (y, _) ->
      if not (Hashtbl.mem seen y) then fail "existential %d is missing from the prefix" y)
    (F.existentials f)

(* ----------------------------------------------------------- Skolem model *)

(* Certify a SAT verdict: the reconstructed Skolem functions (the replay of
   every Model_trail substitution) must respect the declared dependency
   sets and turn the original matrix into a tautology, established by an
   independent SAT call ([Dqbf.Skolem.verify]). *)
let audit_model ?budget ~stage f model =
  match Dqbf.Skolem.verify ?budget f model with
  | Ok () -> ()
  | Error e -> violation stage "skolem-model" "%a" Dqbf.Skolem.pp_failure e

(* ------------------------------------------------- dependency-scheme gate *)

(* Validate the static dependency-scheme refinement (lib/analysis) against
   the *semantics*, not the analyzer's own reasoning: dropping a single
   pruned edge from the declared prefix must leave the reference-expansion
   verdict unchanged. The reference solver grounds every universal
   assignment, so the semantic pass only runs on instances small enough
   for that to be cheap; the structural pass (every reported edge really
   was declared) always runs. *)

let sem_max_universals = 8
let sem_max_vars = 48
let sem_max_clauses = 256

(* deterministic evenly-spread sample: first, middle, last, ... *)
let sample_edges k edges =
  let n = List.length edges in
  if n <= k then edges
  else
    List.filteri
      (fun i _ -> i * k / n < ((i + 1) * k / n) || i = 0)
      edges

let c_audits = Obs.Metrics.counter "check.audits"

let audit_dep_pruning ?budget ?(samples = 3) ~level (pcnf : Dqbf.Pcnf.t) ~pruned =
  match level with
  | Off -> ()
  | (Cheap | Full) when pruned = [] -> ()
  | Cheap | Full -> (
      let stage = Post_analysis in
      Obs.Metrics.incr c_audits;
      Obs.Span.with_ "check.audit"
        ~attrs:[ ("stage", Obs.Str (stage_name stage)); ("level", Obs.Str (level_name level)) ]
      @@ fun () ->
      let univs = Bitset.of_list pcnf.Dqbf.Pcnf.univs in
      let declared = Hashtbl.create 16 in
      List.iter (fun (y, deps) -> Hashtbl.replace declared y deps) pcnf.Dqbf.Pcnf.exists;
      List.iter
        (fun (x, y) ->
          if not (Bitset.mem x univs) then
            violation stage "dep-scheme" "pruned edge (%d,%d): %d is not universal" x y x;
          match Hashtbl.find_opt declared y with
          | None ->
              violation stage "dep-scheme" "pruned edge (%d,%d): %d is not a declared existential"
                x y y
          | Some deps ->
              if not (List.exists (fun d -> d = x) deps) then
                violation stage "dep-scheme" "pruned edge (%d,%d) was never declared" x y)
        pruned;
      let small =
        List.length pcnf.Dqbf.Pcnf.univs <= sem_max_universals
        && pcnf.Dqbf.Pcnf.num_vars <= sem_max_vars
        && List.length pcnf.Dqbf.Pcnf.clauses <= sem_max_clauses
      in
      if level = Full && small then
        (* the semantic pass is advisory on its budget: a reference solver
           timeout must not convert a healthy solve into an abort, so it
           runs under a sub-deadline and a timeout just ends the sampling *)
        let budget = Option.map (fun b -> Budget.sub ~frac:0.25 b) budget in
        try
          let baseline =
            lazy (Dqbf.Reference.by_expansion ?budget (Dqbf.Pcnf.to_formula pcnf))
          in
          List.iter
            (fun (x, y) ->
              let dropped =
                {
                  pcnf with
                  Dqbf.Pcnf.exists =
                    List.map
                      (fun (z, deps) ->
                        if z = y then (z, List.filter (fun d -> d <> x) deps) else (z, deps))
                      pcnf.Dqbf.Pcnf.exists;
                }
              in
              let verdict =
                Dqbf.Reference.by_expansion ?budget (Dqbf.Pcnf.to_formula dropped)
              in
              if verdict <> Lazy.force baseline then
                violation stage "dep-scheme"
                  "pruned edge (%d,%d) is semantically load-bearing: dropping it flips the \
                   reference verdict from %b to %b"
                  x y (Lazy.force baseline) verdict)
            (sample_edges samples pruned)
        with Budget.Timeout -> ())

(* ---------------------------------------------------- inprocessing gate *)

(* Validate an inprocessing run from its step witnesses. The structural
   pass replays each witness against the *declared* prefix, exploiting
   that dependency sets only ever shrink during the run (intersection on
   merges), so any runtime membership fact implies the declared one:
   - propagated units and merged variables must be declared existential;
   - a merge against a universal requires that universal in the declared
     dependency set of the merged existential;
   - universal reduction only drops declared universals;
   - subsumption witnesses must really be sub-clauses, strengthening
     witnesses must really be self-subsuming resolution partners;
   - an elimination's recorded dependency set [dep_y] must be contained
     in the declared one, every pos/neg clause must contain the pivot
     with the right sign, and every universal in those clauses must be
     in [dep_y] (the universal half of Henkin-legality; the existential
     half depends on runtime dependency sets and is left to the semantic
     pass).
   At [Full] on reference-sized instances the whole run is certified
   semantically: the expansion verdict of the simplified formula (or
   falsity, for a refutation) must match the original. *)

module L = Sat.Lit

let audit_inproc ?budget ~level (pcnf : Dqbf.Pcnf.t) (outcome : Inproc.outcome) =
  match level with
  | Off -> ()
  | Cheap | Full -> (
      let stage = Post_inproc in
      Obs.Metrics.incr c_audits;
      Obs.Span.with_ "check.audit"
        ~attrs:[ ("stage", Obs.Str (stage_name stage)); ("level", Obs.Str (level_name level)) ]
      @@ fun () ->
      let fail fmt = violation stage "inproc" fmt in
      let univs = Bitset.of_list pcnf.Dqbf.Pcnf.univs in
      let declared = Hashtbl.create 16 in
      List.iter
        (fun (y, deps) -> Hashtbl.replace declared y (Bitset.of_list deps))
        pcnf.Dqbf.Pcnf.exists;
      (* variables never declared are existential with no dependencies *)
      let is_exist v = Hashtbl.mem declared v || not (Bitset.mem v univs) in
      let declared_deps v =
        match Hashtbl.find_opt declared v with Some d -> d | None -> Bitset.empty
      in
      let subset_clause a b = List.for_all (fun l -> List.mem l b) a in
      (match outcome with
      | Inproc.Unsat -> ()
      | Inproc.Simplified res ->
          List.iter
            (fun step ->
              match step with
              | Inproc.Unit l ->
                  if Bitset.mem (L.var l) univs then
                    fail "unit %d propagated over universal variable %d (should refute)"
                      (L.to_dimacs l) (L.var l)
              | Inproc.Reduced { clause; dropped } ->
                  List.iter
                    (fun l ->
                      if not (Bitset.mem (L.var l) univs) then
                        fail "universal reduction dropped %d from a clause, but %d is not universal"
                          (L.to_dimacs l) (L.var l))
                    dropped;
                  if dropped = [] then fail "empty universal-reduction witness on a %d-literal clause"
                      (List.length clause)
              | Inproc.Merged { y; rep } ->
                  if not (is_exist y) then fail "merged variable %d is not existential" y;
                  if Bitset.mem y univs then fail "merged variable %d is universal" y;
                  let rv = L.var rep in
                  if rv = y then fail "variable %d merged into itself" y;
                  if Bitset.mem rv univs && not (Bitset.mem rv (declared_deps y)) then
                    fail
                      "existential %d merged with universal %d outside its declared dependency \
                       set (should refute)"
                      y rv
              | Inproc.Subsumed { clause; by } ->
                  if not (subset_clause by clause) then
                    fail "subsumption witness is not a sub-clause (|by|=%d, |clause|=%d)"
                      (List.length by) (List.length clause)
              | Inproc.Strengthened { clause; removed; by } ->
                  if not (List.mem removed clause) then
                    fail "strengthening removed literal %d that is not in the clause"
                      (L.to_dimacs removed);
                  if not (List.mem (L.neg removed) by) then
                    fail "strengthening witness does not contain the complement of %d"
                      (L.to_dimacs removed);
                  let by_rest = List.filter (fun l -> l <> L.neg removed) by in
                  let clause_rest = List.filter (fun l -> l <> removed) clause in
                  if not (subset_clause by_rest clause_rest) then
                    fail "strengthening witness is not a self-subsuming resolution partner on %d"
                      (L.to_dimacs removed)
              | Inproc.Eliminated { y; dep_y; pos; neg } ->
                  if (not (is_exist y)) || Bitset.mem y univs then
                    fail "eliminated variable %d is not existential" y;
                  let dep_y_set = Bitset.of_list dep_y in
                  (match Bitset.choose (Bitset.diff dep_y_set (declared_deps y)) with
                  | Some x ->
                      fail
                        "elimination of %d recorded dependency %d outside its declared set \
                         (dependency widening)"
                        y x
                  | None -> ());
                  let py = L.of_var y and ny = L.neg (L.of_var y) in
                  let side name want cs =
                    List.iter
                      (fun c ->
                        if not (List.mem want c) then
                          fail "%s-side clause of eliminated %d lacks the pivot" name y;
                        List.iter
                          (fun l ->
                            let v = L.var l in
                            if v <> y && Bitset.mem v univs && not (Bitset.mem v dep_y_set)
                            then
                              fail
                                "elimination of %d is not Henkin-legal: universal %d in a \
                                 resolvent is outside dep(%d)"
                                y v y)
                          c)
                      cs
                  in
                  side "pos" py pos;
                  side "neg" ny neg;
                  if pos = [] || neg = [] then
                    fail "elimination of %d has an empty side (pure literals are units)" y)
            res.Inproc.steps;
          (* surviving prefix sanity: no widening, no new variables *)
          List.iter
            (fun (y, d) ->
              if Bitset.mem y univs then fail "surviving existential %d is declared universal" y;
              match Bitset.choose (Bitset.diff d (declared_deps y)) with
              | Some x -> fail "surviving existential %d gained dependency %d" y x
              | None -> ())
            res.Inproc.deps);
      let small =
        List.length pcnf.Dqbf.Pcnf.univs <= sem_max_universals
        && pcnf.Dqbf.Pcnf.num_vars <= sem_max_vars
        && List.length pcnf.Dqbf.Pcnf.clauses <= sem_max_clauses
      in
      if level = Full && small then
        (* advisory on its budget, like the dep-pruning gate *)
        let budget = Option.map (fun b -> Budget.sub ~frac:0.25 b) budget in
        try
          let baseline = Dqbf.Reference.by_expansion ?budget (Dqbf.Pcnf.to_formula pcnf) in
          match outcome with
          | Inproc.Unsat ->
              if baseline then
                fail "inprocessing refuted a formula whose reference verdict is SAT"
          | Inproc.Simplified res ->
              let simplified =
                {
                  pcnf with
                  Dqbf.Pcnf.univs = Bitset.to_list res.Inproc.univs;
                  exists = List.map (fun (y, d) -> (y, Bitset.to_list d)) res.Inproc.deps;
                  clauses = List.map (List.map L.to_dimacs) res.Inproc.clauses;
                }
              in
              let verdict =
                Dqbf.Reference.by_expansion ?budget (Dqbf.Pcnf.to_formula simplified)
              in
              if verdict <> baseline then
                fail
                  "inprocessing is not verdict-preserving: reference says %b before, %b after"
                  baseline verdict
        with Budget.Timeout -> ())

(* ---------------------------------------------------------------- driver *)

let audit_stage ~level ?queue stage f =
  match level with
  | Off -> ()
  | Cheap | Full ->
      Obs.Metrics.incr c_audits;
      Obs.Span.with_ "check.audit"
        ~attrs:[ ("stage", Obs.Str (stage_name stage)); ("level", Obs.Str (level_name level)) ]
      @@ fun () ->
      audit_formula ~stage ~level f;
      (match queue with Some q -> audit_queue ~stage f q | None -> ())

(* ----------------------------------------------------------- verdict cache *)

let audit_cache_hit ~level ~key ~cached_sat ~fresh_sat =
  match level with
  | Off -> ()
  | Cheap | Full ->
      Obs.Metrics.incr c_audits;
      if cached_sat <> fresh_sat then
        violation Post_solve "verdict-cache"
          "memoized verdict for canonical key %s is %s but a fresh solve says %s" key
          (if cached_sat then "SAT" else "UNSAT")
          (if fresh_sat then "SAT" else "UNSAT")

(* ------------------------------------------------------- certificate gate *)

(* Gate an emitted solve certificate before it leaves the process. The
   structural half (fingerprint, prefix agreement, declared-dependency
   support) runs at any enabled level; [Full] re-verifies the semantic
   claim with the library checker — substituted matrix a tautology for
   SAT, expansion refuted for UNSAT — under the caller's budget (a
   budget expiry abandons the semantic pass, it does not fail it). An
   [Uncertified] artifact passes unless it marks the verdict itself as
   inconsistent ({!Cert.is_inconsistent}): an honest capacity gap is
   fine, a full expansion disagreeing with the verdict is not. *)
let audit_certificate ?budget ~level ~instance_text (pcnf : Dqbf.Pcnf.t) cert =
  match level with
  | Off -> ()
  | Cheap | Full -> (
      let stage = Post_certify in
      Obs.Metrics.incr c_audits;
      Obs.Span.with_ "check.audit"
        ~attrs:[ ("stage", Obs.Str (stage_name stage)); ("level", Obs.Str (level_name level)) ]
      @@ fun () ->
      (match Cert.check_structural ~instance_text pcnf cert with
      | Ok () -> ()
      | Error detail -> violation stage "certificate" "%s" detail);
      if Cert.is_inconsistent cert then
        violation stage "certificate" "uncertified artifact marks the verdict as inconsistent";
      match level with
      | Full -> (
          try
            match Cert.check ?budget ~instance_text pcnf cert with
            | Ok () -> ()
            | Error detail -> violation stage "certificate" "%s" detail
          with Budget.Timeout -> ())
      | Off | Cheap -> ())
