(** Soundness auditor: invariant validators gating every pipeline stage.

    HQS's verdict is trustworthy only while each transformation (Theorem 1/2
    eliminations, unit/pure rewrites, FRAIG merges, compaction) preserves the
    AIG's structural invariants and the Henkin dependency semantics. This
    module makes those invariants executable: {!audit_stage} is wired into
    the solver at every stage boundary and raises a structured {!Violation}
    at the first transformation that corrupted the state — instead of the
    corruption surfacing many stages later as a wrong SAT/UNSAT answer.

    Cost model: [Cheap] validators are linear in the prefix (dependency
    sets, quantifier disjointness, queue sanity) and constant in the matrix;
    [Full] additionally audits the whole AIG manager (O(nodes + hash
    entries) per stage boundary) and certifies Skolem models with an
    independent SAT call on a SAT verdict. [Full] typically multiplies
    solve time by a small constant; use it in CI and when hunting a
    suspected soundness bug, [Cheap] when a cheap tripwire is enough. *)

type level = Off | Cheap | Full

type stage =
  | Post_analysis  (** after the static dependency-scheme refinement *)
  | Post_inproc  (** after the occurrence-indexed inprocessing engine ran *)
  | Post_preprocess  (** after CNF preprocessing built the formula *)
  | Post_unitpure  (** after a unit/pure round substituted variables *)
  | Post_elimination  (** after a Theorem 1/2 elimination *)
  | Post_fraig  (** after FRAIG sweeping or cone compaction replaced the manager *)
  | Pre_backend  (** after linearization, before the QBF back end runs *)
  | Post_solve  (** after a verdict, when certifying a Skolem model *)
  | Post_certify  (** after a certificate artifact was materialized *)

val stage_name : stage -> string
val level_name : level -> string

val level_of_string : string -> level option
(** Accepts ["off"]/["none"]/["0"], ["cheap"]/["1"], ["full"]/["2"]. *)

val level_of_env : unit -> (level, string) result
(** Parse the [HQS_CHECK] environment variable; unset or empty is [Off],
    an unknown value is [Error] with a usable message. *)

type violation = { stage : stage; structure : string; detail : string }
(** Where the audit tripped ([stage]), which validator ([structure]:
    ["aig-manager"], ["dqbf-formula"], ["elimination-queue"],
    ["qbf-prefix"], ["skolem-model"]), and a minimized description of the
    broken invariant with the offending indices. *)

exception Violation of violation

val pp_violation : Format.formatter -> violation -> unit

val audit_dep_pruning :
  ?budget:Hqs_util.Budget.t ->
  ?samples:int ->
  level:level ->
  Dqbf.Pcnf.t ->
  pruned:(int * int) list ->
  unit
(** Gate the static dependency-scheme refinement ([lib/analysis]): given
    the {e original} prefixed CNF and the list of pruned edges [(x, y)]
    (universal [x] dropped from [dep(y)]), check structurally that every
    pruned edge was declared, and — at [Full] level, on instances small
    enough for the reference expansion solver — semantically validate a
    deterministic sample of [samples] (default 3) pruned edges: dropping
    the edge alone from the declared prefix must not flip the
    {!Dqbf.Reference.by_expansion} verdict. The semantic pass runs under
    a sub-deadline of [budget] and is abandoned (not failed) if that
    expires. [structure] is ["dep-scheme"] on violation. *)

val audit_inproc :
  ?budget:Hqs_util.Budget.t -> level:level -> Dqbf.Pcnf.t -> Inproc.outcome -> unit
(** Gate the CNF inprocessing engine: given the prefixed CNF as fed to
    the engine and the engine outcome, validate every step witness
    structurally against the declared prefix — units and merges are
    existential, merges against universals are dependency-legal,
    subsumption/strengthening witnesses really justify the deletion, an
    elimination's recorded dependency set is not widened and its
    resolvent universals respect it — plus the surviving prefix (no
    dependency widening). At [Full] level, on instances small enough for
    the reference expansion solver, the whole run is certified
    semantically: the {!Dqbf.Reference.by_expansion} verdict of the
    simplified formula (falsity, for an [Unsat] outcome) must match the
    original formula's. The semantic pass runs under a sub-deadline of
    [budget] and is abandoned (not failed) if that expires. [structure]
    is ["inproc"] on violation. *)

val audit_stage :
  level:level -> ?queue:int list -> stage -> Dqbf.Formula.t -> unit
(** The stage gate: audit the formula (and, when given, the elimination
    queue) at the [level] of depth described above. [Off] is free.
    @raise Violation on the first broken invariant. *)

val audit_man : stage:stage -> Aig.Man.t -> unit
(** Deep AIG-manager audit: node-0 constant marker, input/AND tagging,
    topological acyclicity, no dangling fanins past [num_nodes], normalized
    fanin order, structural-hash bijectivity (every AND reachable through
    its own key, no poisoned entries), input-label bijectivity. *)

val audit_formula : stage:stage -> level:level -> Dqbf.Formula.t -> unit
(** Formula validator: matrix literal validity, universal/existential
    disjointness, dependency sets included in the declared universals,
    variable ids below [next_var]; [Full] adds {!audit_man} and checks the
    matrix support against the quantified variables. *)

val audit_queue : stage:stage -> Dqbf.Formula.t -> int list -> unit
(** Elimination-queue consistency: ids in range, no still-universal
    variable queued twice (stale eliminated entries are legal — the solver
    skips them). *)

val audit_prefix : stage:stage -> Dqbf.Formula.t -> Qbf.Prefix.t -> unit
(** Linearized-prefix well-formedness: normalized non-empty alternating
    blocks, no duplicate variables, quantifier kinds agreeing with the
    formula, and both-direction coverage of the remaining variables. *)

val audit_model :
  ?budget:Hqs_util.Budget.t -> stage:stage -> Dqbf.Formula.t -> Dqbf.Skolem.t -> unit
(** Skolem-model certifier: replayed witness respects the dependency sets
    and satisfies the original matrix, checked by an independent SAT call
    ({!Dqbf.Skolem.verify}). *)

val audit_cache_hit : level:level -> key:string -> cached_sat:bool -> fresh_sat:bool -> unit
(** Gate for the serve daemon's verdict cache: a sampled cache hit was
    re-solved from scratch and both verdicts are presented. At [Off]
    this is free; otherwise a disagreement raises {!Violation} with
    [structure = "verdict-cache"] — memoization returning a different
    answer than the solver is exactly the class of wrongness this
    module exists to trip on. *)

val audit_certificate :
  ?budget:Hqs_util.Budget.t ->
  level:level ->
  instance_text:string ->
  Dqbf.Pcnf.t ->
  Cert.t ->
  unit
(** Gate an emitted certificate ([Post_certify] stage, [structure =
    "certificate"]): the structural checks ({!Cert.check_structural})
    run at [Cheap] and above; [Full] re-verifies the semantic claim via
    {!Cert.check} under [budget] (expiry abandons the semantic pass
    rather than failing it). [Uncertified] artifacts pass unless
    {!Cert.is_inconsistent} — a full expansion that contradicts the
    verdict is a violation, not a capacity gap. A failure here is
    treated by callers like a crash: re-solve under escalated checks,
    evict poisoned cache entries, quarantine after bounded attempts. *)
