(** Wire protocol of the serve daemon, both sides.

    Everything travels as length-prefixed {!Obs.Json} frames
    ({!Exec.Ipc}). The client protocol is request/reply over a Unix
    domain socket: one [Solve] per connection is the supported shape
    ([hqs query]); a connection that pipelines several solves receives
    the replies in completion order, not submission order. The worker
    protocol runs over a private socketpair between the daemon and each
    pool worker and is not a public interface — it is exposed here so
    the daemon and its tests share one codec. *)

type request =
  | Solve of {
      text : string;  (** the DQDIMACS instance, verbatim *)
      timeout_s : float option;  (** per-request deadline; daemon default if absent *)
      sleep_s : float;
          (** test hook: the worker sleeps this long {e inside} the solve
              budget before solving, so a sleep past [timeout_s] expires
              the budget deterministically — makes deadline-expiry, queue
              and drain tests repeatable. 0 in production. *)
      want_cert : bool;
          (** ask for the solve's certificate artifact inline in the
              {!Verdict} reply (only honored by a daemon running with
              certification on) *)
    }
  | Ping
  | Stats
  | Health  (** live introspection snapshot for [hqs top] *)

type failure = F_timeout | F_memout | F_crash

(** Introspection snapshot returned for {!Health}: pool occupancy plus
    rolling request-latency quantiles from the daemon's windowed
    histogram. Quantiles are [nan] (and omitted on the wire) until at
    least one request has completed. *)
type health = {
  live_workers : int;  (** slots with a live worker process *)
  h_queue_depth : int;
  in_flight : int;  (** slots currently solving *)
  draining : bool;
  uptime_s : float;
  states : string list;  (** one of ["idle"|"busy"|"respawning"] per slot *)
  lat_n : int;  (** observations in the latency window *)
  lat_p50 : float;
  lat_p95 : float;
  lat_p99 : float;
  h_metrics : (string * float) list;
}

type reply =
  | Verdict of {
      sat : bool;
      elapsed_s : float;
      cached : bool;
      audited : bool;
      cert : string option;
          (** the rendered certificate artifact, inline, when the request
              asked for one and the certifying solve produced it ([None]
              for cache hits — the cache stores verdicts, not artifacts) *)
    }
  | Failed of { failure : failure; elapsed_s : float; detail : string }
      (** structured failure — the client never sees a torn connection *)
  | Overloaded of { queue_depth : int }  (** admission queue full; retry later *)
  | Draining  (** daemon is shutting down; new work refused *)
  | Invalid of string  (** unparsable request or instance *)
  | Pong
  | Stats_reply of { workers : int; queue_depth : int; metrics : (string * float) list }
  | Health_reply of health
  | Audit_failed of { cached_sat : bool; fresh_sat : bool }
      (** a sampled cache-hit re-solve disagreed with the memoized verdict *)

val failure_name : failure -> string
val failure_of_name : string -> failure option

val request_to_json : request -> Obs.Json.t
val request_of_json : Obs.Json.t -> (request, string) result
val reply_to_json : reply -> Obs.Json.t
val reply_of_json : Obs.Json.t -> (reply, string) result

val metrics_to_json : Obs.Metrics.sample list -> Obs.Json.t
val metrics_of_json : Obs.Json.t -> (Obs.Metrics.sample list, string) result

(** {1 Worker protocol (daemon-internal)} *)

type wreq = {
  jid : int;
  text : string;
  timeout_s : float;
  kill : bool;  (** chaos: the worker SIGKILLs itself mid-request *)
  sleep_s : float;
  trace : string option;
      (** request trace id, present only while the daemon is tracing —
          the worker brackets the solve in a span carrying it, so worker
          rows in the merged trace link back to the daemon's request *)
  cert : bool;
      (** solve through {!Hqs.solve_pcnf_certified} and ship the rendered
          artifact back in [cert_blob] *)
  escalate : bool;
      (** this is a re-solve after a certificate audit failure: the
          worker runs with checks forced to [Full] and degradation off *)
  poison : bool;
      (** chaos: the worker corrupts the certificate before its own audit
          — the deterministic fault injection for the recovery loop *)
}

type wresult =
  | W_sat of bool
  | W_timeout
  | W_memout
  | W_error of string
  | W_cert_failed of string
      (** the in-worker certificate audit tripped ({!Check.Violation} at
          the [Post_certify] stage) — the daemon treats this like a
          crash: evict the cache entry, retry escalated, quarantine *)

type wreply = {
  w_jid : int;
  result : wresult;
  w_elapsed_s : float;
  retiring : bool;
      (** the worker exits right after this reply (e.g. after a hard
          memout left its heap near the rlimit) — a planned retirement
          the daemon must not count as a crash *)
  samples : Obs.Metrics.sample list;  (** per-job metrics delta to absorb *)
  w_events : Obs.Trace.event list;
      (** the worker's span buffer for this job (empty unless the request
          carried a trace id) — merged under the worker's pid row via
          {!Obs.Trace.inject} *)
  cert_blob : string option;
      (** the rendered certificate on a successful certifying solve *)
}

val wreq_to_json : wreq -> Obs.Json.t
val wreq_of_json : Obs.Json.t -> (wreq, string) result
val wreply_to_json : wreply -> Obs.Json.t
val wreply_of_json : Obs.Json.t -> (wreply, string) result
