module Json = Obs.Json
module Metrics = Obs.Metrics

(* ------------------------------------------------------- client protocol *)

type request =
  | Solve of { text : string; timeout_s : float option; sleep_s : float; want_cert : bool }
  | Ping
  | Stats
  | Health

type failure = F_timeout | F_memout | F_crash

type health = {
  live_workers : int;
  h_queue_depth : int;
  in_flight : int;
  draining : bool;
  uptime_s : float;
  states : string list;
  lat_n : int;
  lat_p50 : float;
  lat_p95 : float;
  lat_p99 : float;
  h_metrics : (string * float) list;
}

type reply =
  | Verdict of {
      sat : bool;
      elapsed_s : float;
      cached : bool;
      audited : bool;
      cert : string option;
    }
  | Failed of { failure : failure; elapsed_s : float; detail : string }
  | Overloaded of { queue_depth : int }
  | Draining
  | Invalid of string
  | Pong
  | Stats_reply of { workers : int; queue_depth : int; metrics : (string * float) list }
  | Health_reply of health
  | Audit_failed of { cached_sat : bool; fresh_sat : bool }

let failure_name = function F_timeout -> "timeout" | F_memout -> "memout" | F_crash -> "crash"

let failure_of_name = function
  | "timeout" -> Some F_timeout
  | "memout" -> Some F_memout
  | "crash" -> Some F_crash
  | _ -> None

let request_to_json = function
  | Solve { text; timeout_s; sleep_s; want_cert } ->
      Json.Obj
        ([ ("op", Json.Str "solve"); ("dqdimacs", Json.Str text) ]
        @ (match timeout_s with None -> [] | Some s -> [ ("timeout_s", Json.Num s) ])
        @ (if sleep_s > 0. then [ ("sleep_s", Json.Num sleep_s) ] else [])
        @ if want_cert then [ ("cert", Json.Bool true) ] else [])
  | Ping -> Json.Obj [ ("op", Json.Str "ping") ]
  | Stats -> Json.Obj [ ("op", Json.Str "stats") ]
  | Health -> Json.Obj [ ("op", Json.Str "health") ]

let request_of_json j =
  match Json.member "op" j with
  | Some (Json.Str "ping") -> Ok Ping
  | Some (Json.Str "stats") -> Ok Stats
  | Some (Json.Str "health") -> Ok Health
  | Some (Json.Str "solve") -> (
      match Json.member "dqdimacs" j with
      | Some (Json.Str text) ->
          let num name =
            match Json.member name j with Some v -> Json.to_number v | None -> None
          in
          Ok
            (Solve
               {
                 text;
                 timeout_s = num "timeout_s";
                 sleep_s = (match num "sleep_s" with Some s -> s | None -> 0.);
                 want_cert =
                   (match Json.member "cert" j with Some (Json.Bool b) -> b | _ -> false);
               })
      | _ -> Error "solve request lacks a dqdimacs string")
  | Some (Json.Str op) -> Error ("unknown op: " ^ op)
  | _ -> Error "request lacks an op field"

let metrics_to_json samples =
  Json.Arr
    (List.map
       (fun { Metrics.name; kind; v } ->
         Json.Arr [ Json.Str name; Json.Str (Metrics.kind_name kind); Json.Num v ])
       samples)

let metrics_of_json j =
  match Json.to_list j with
  | None -> Error "metrics: expected an array"
  | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.Arr [ Json.Str name; Json.Str kind; Json.Num v ] :: rest -> (
            match Metrics.kind_of_name kind with
            | Some kind -> go ({ Metrics.name; kind; v } :: acc) rest
            | None -> Error ("metrics: unknown kind " ^ kind))
        | _ -> Error "metrics: malformed sample"
      in
      go [] items

let reply_to_json = function
  | Verdict { sat; elapsed_s; cached; audited; cert } ->
      Json.Obj
        ([
           ("r", Json.Str "verdict");
           ("sat", Json.Bool sat);
           ("elapsed_s", Json.Num elapsed_s);
           ("cached", Json.Bool cached);
           ("audited", Json.Bool audited);
         ]
        @ match cert with Some c -> [ ("cert", Json.Str c) ] | None -> [])
  | Failed { failure; elapsed_s; detail } ->
      Json.Obj
        [
          ("r", Json.Str "failed");
          ("failure", Json.Str (failure_name failure));
          ("elapsed_s", Json.Num elapsed_s);
          ("detail", Json.Str detail);
        ]
  | Overloaded { queue_depth } ->
      Json.Obj [ ("r", Json.Str "overloaded"); ("queue_depth", Json.Num (float_of_int queue_depth)) ]
  | Draining -> Json.Obj [ ("r", Json.Str "draining") ]
  | Invalid msg -> Json.Obj [ ("r", Json.Str "invalid"); ("msg", Json.Str msg) ]
  | Pong -> Json.Obj [ ("r", Json.Str "pong") ]
  | Stats_reply { workers; queue_depth; metrics } ->
      Json.Obj
        [
          ("r", Json.Str "stats");
          ("workers", Json.Num (float_of_int workers));
          ("queue_depth", Json.Num (float_of_int queue_depth));
          ( "metrics",
            Json.Obj (List.map (fun (name, v) -> (name, Json.Num v)) metrics) );
        ]
  | Health_reply h ->
      Json.Obj
        ([
           ("r", Json.Str "health");
           ("workers", Json.Num (float_of_int h.live_workers));
           ("queue_depth", Json.Num (float_of_int h.h_queue_depth));
           ("in_flight", Json.Num (float_of_int h.in_flight));
           ("draining", Json.Bool h.draining);
           ("uptime_s", Json.Num h.uptime_s);
           ("states", Json.Arr (List.map (fun s -> Json.Str s) h.states));
           ("lat_n", Json.Num (float_of_int h.lat_n));
         ]
        @ (if h.lat_n > 0 then
             [
               ("p50", Json.Num h.lat_p50);
               ("p95", Json.Num h.lat_p95);
               ("p99", Json.Num h.lat_p99);
             ]
           else [])
        @ [
            ( "metrics",
              Json.Obj (List.map (fun (name, v) -> (name, Json.Num v)) h.h_metrics) );
          ])
  | Audit_failed { cached_sat; fresh_sat } ->
      Json.Obj
        [
          ("r", Json.Str "audit_failed");
          ("cached_sat", Json.Bool cached_sat);
          ("fresh_sat", Json.Bool fresh_sat);
        ]

let reply_of_json j =
  let bool name = match Json.member name j with Some (Json.Bool b) -> Some b | _ -> None in
  let num name = match Json.member name j with Some v -> Json.to_number v | None -> None in
  let str name = match Json.member name j with Some (Json.Str s) -> Some s | _ -> None in
  match str "r" with
  | Some "verdict" -> (
      match (bool "sat", num "elapsed_s", bool "cached", bool "audited") with
      | Some sat, Some elapsed_s, Some cached, Some audited ->
          Ok (Verdict { sat; elapsed_s; cached; audited; cert = str "cert" })
      | _ -> Error "malformed verdict reply")
  | Some "failed" -> (
      match (Option.bind (str "failure") failure_of_name, num "elapsed_s", str "detail") with
      | Some failure, Some elapsed_s, Some detail -> Ok (Failed { failure; elapsed_s; detail })
      | _ -> Error "malformed failed reply")
  | Some "overloaded" -> (
      match num "queue_depth" with
      | Some d -> Ok (Overloaded { queue_depth = int_of_float d })
      | None -> Error "malformed overloaded reply")
  | Some "draining" -> Ok Draining
  | Some "invalid" -> (
      match str "msg" with Some msg -> Ok (Invalid msg) | None -> Error "malformed invalid reply")
  | Some "pong" -> Ok Pong
  | Some "stats" -> (
      match (num "workers", num "queue_depth", Json.member "metrics" j) with
      | Some w, Some d, Some (Json.Obj fields) ->
          let metrics =
            List.filter_map
              (fun (name, v) -> Option.map (fun v -> (name, v)) (Json.to_number v))
              fields
          in
          Ok
            (Stats_reply
               { workers = int_of_float w; queue_depth = int_of_float d; metrics })
      | _ -> Error "malformed stats reply")
  | Some "health" -> (
      match (num "workers", num "queue_depth", num "in_flight", bool "draining") with
      | Some w, Some d, Some f, Some draining ->
          let states =
            match Json.member "states" j with
            | Some (Json.Arr items) ->
                List.filter_map (function Json.Str s -> Some s | _ -> None) items
            | _ -> []
          in
          let metrics =
            match Json.member "metrics" j with
            | Some (Json.Obj fields) ->
                List.filter_map
                  (fun (name, v) -> Option.map (fun v -> (name, v)) (Json.to_number v))
                  fields
            | _ -> []
          in
          let quant name = match num name with Some v -> v | None -> nan in
          Ok
            (Health_reply
               {
                 live_workers = int_of_float w;
                 h_queue_depth = int_of_float d;
                 in_flight = int_of_float f;
                 draining;
                 uptime_s = (match num "uptime_s" with Some s -> s | None -> 0.);
                 states;
                 lat_n = (match num "lat_n" with Some n -> int_of_float n | None -> 0);
                 lat_p50 = quant "p50";
                 lat_p95 = quant "p95";
                 lat_p99 = quant "p99";
                 h_metrics = metrics;
               })
      | _ -> Error "malformed health reply")
  | Some "audit_failed" -> (
      match (bool "cached_sat", bool "fresh_sat") with
      | Some cached_sat, Some fresh_sat -> Ok (Audit_failed { cached_sat; fresh_sat })
      | _ -> Error "malformed audit_failed reply")
  | Some r -> Error ("unknown reply kind: " ^ r)
  | None -> Error "reply lacks an r field"

(* ------------------------------------------------------- worker protocol *)

type wreq = {
  jid : int;
  text : string;
  timeout_s : float;
  kill : bool;
  sleep_s : float;
  trace : string option;
  cert : bool;  (** solve through the certifying entry point *)
  escalate : bool;  (** re-solve after a certificate audit failure: full checks *)
  poison : bool;  (** chaos: corrupt the certificate before the audit *)
}

type wresult =
  | W_sat of bool
  | W_timeout
  | W_memout
  | W_error of string
  | W_cert_failed of string

type wreply = {
  w_jid : int;
  result : wresult;
  w_elapsed_s : float;
  retiring : bool;  (** the worker exits after this reply (planned, not a crash) *)
  samples : Metrics.sample list;
  w_events : Obs.Trace.event list;
  cert_blob : string option;  (** the rendered certificate on a certifying solve *)
}

let wreq_to_json { jid; text; timeout_s; kill; sleep_s; trace; cert; escalate; poison } =
  Json.Obj
    ([
       ("jid", Json.Num (float_of_int jid));
       ("text", Json.Str text);
       ("timeout_s", Json.Num timeout_s);
       ("kill", Json.Bool kill);
       ("sleep_s", Json.Num sleep_s);
     ]
    @ (match trace with Some id -> [ ("trace", Json.Str id) ] | None -> [])
    @ (if cert then [ ("cert", Json.Bool true) ] else [])
    @ (if escalate then [ ("escalate", Json.Bool true) ] else [])
    @ if poison then [ ("poison", Json.Bool true) ] else [])

let wreq_of_json j =
  match
    ( Json.member "jid" j,
      Json.member "text" j,
      Json.member "timeout_s" j,
      Json.member "kill" j,
      Json.member "sleep_s" j )
  with
  | Some jid, Some (Json.Str text), Some t, Some (Json.Bool kill), Some s -> (
      match (Json.to_number jid, Json.to_number t, Json.to_number s) with
      | Some jid, Some timeout_s, Some sleep_s ->
          let trace =
            match Json.member "trace" j with Some (Json.Str id) -> Some id | _ -> None
          in
          let flag name =
            match Json.member name j with Some (Json.Bool b) -> b | _ -> false
          in
          Ok
            {
              jid = int_of_float jid;
              text;
              timeout_s;
              kill;
              sleep_s;
              trace;
              cert = flag "cert";
              escalate = flag "escalate";
              poison = flag "poison";
            }
      | _ -> Error "malformed worker request numbers")
  | _ -> Error "malformed worker request"

let wresult_to_json = function
  | W_sat b -> Json.Str (if b then "sat" else "unsat")
  | W_timeout -> Json.Str "timeout"
  | W_memout -> Json.Str "memout"
  | W_error msg -> Json.Obj [ ("error", Json.Str msg) ]
  | W_cert_failed msg -> Json.Obj [ ("cert_failed", Json.Str msg) ]

let wresult_of_json = function
  | Json.Str "sat" -> Ok (W_sat true)
  | Json.Str "unsat" -> Ok (W_sat false)
  | Json.Str "timeout" -> Ok W_timeout
  | Json.Str "memout" -> Ok W_memout
  | Json.Obj _ as o -> (
      match (Json.member "error" o, Json.member "cert_failed" o) with
      | Some (Json.Str msg), _ -> Ok (W_error msg)
      | _, Some (Json.Str msg) -> Ok (W_cert_failed msg)
      | _ -> Error "malformed worker result")
  | _ -> Error "malformed worker result"

let wreply_to_json { w_jid; result; w_elapsed_s; retiring; samples; w_events; cert_blob } =
  Json.Obj
    ([
       ("jid", Json.Num (float_of_int w_jid));
       ("result", wresult_to_json result);
       ("elapsed_s", Json.Num w_elapsed_s);
       ("retiring", Json.Bool retiring);
       ("samples", metrics_to_json samples);
     ]
    @ (if w_events = [] then [] else [ ("events", Obs.Trace.events_to_json w_events) ])
    @ match cert_blob with Some c -> [ ("cert", Json.Str c) ] | None -> [])

let wreply_of_json j =
  match
    ( Json.member "jid" j,
      Json.member "result" j,
      Json.member "elapsed_s" j,
      Json.member "retiring" j,
      Json.member "samples" j )
  with
  | Some jid, Some r, Some e, Some (Json.Bool retiring), Some s -> (
      match (Json.to_number jid, wresult_of_json r, Json.to_number e, metrics_of_json s) with
      | Some jid, Ok result, Some w_elapsed_s, Ok samples ->
          let w_events =
            match Json.member "events" j with
            | Some ev -> Obs.Trace.events_of_json ev
            | None -> []
          in
          let cert_blob =
            match Json.member "cert" j with Some (Json.Str c) -> Some c | _ -> None
          in
          Ok
            {
              w_jid = int_of_float jid;
              result;
              w_elapsed_s;
              retiring;
              samples;
              w_events;
              cert_blob;
            }
      | _ -> Error "malformed worker reply fields")
  | _ -> Error "malformed worker reply"
