module Json = Obs.Json
module Metrics = Obs.Metrics
module Span = Obs.Span
module Budget = Hqs_util.Budget
module Chaos = Hqs_util.Chaos
module Ipc = Exec.Ipc

(* ---------------------------------------------------------------- config *)

type config = {
  socket_path : string;
  workers : int;
  queue_cap : int;
  default_timeout_s : float;
  max_timeout_s : float;
  kill_grace_s : float;
  max_attempts : int;
  mem_limit_mb : int option;
  backoff : Exec.Backoff.policy;
  chaos : Chaos.t;
  check_level : Check.level;
  audit_period : int;
  cache_path : string option;
  trace_path : string option;
  event_log : string option;
  solver : Hqs.config;
  certify : bool;
}

let default ~socket_path =
  {
    socket_path;
    workers = 2;
    queue_cap = 16;
    default_timeout_s = 60.;
    max_timeout_s = 600.;
    kill_grace_s = 2.;
    max_attempts = 3;
    mem_limit_mb = None;
    backoff = Exec.Backoff.default;
    chaos = Chaos.off;
    check_level = Check.Off;
    audit_period = 4;
    cache_path = None;
    trace_path = None;
    event_log = None;
    solver = Hqs.default_config;
    certify = false;
  }

let kill_point ~jid ~attempt = Printf.sprintf "serve.worker.kill:%d#%d" jid attempt
let cert_point ~jid ~attempt = Printf.sprintf "serve.cert.poison:%d#%d" jid attempt

(* deterministic certificate corruption behind the chaos poison hook: a
   flipped fingerprint nibble is caught by the structural audit *)
let poison_cert (c : Cert.t) =
  let fp = Bytes.of_string c.Cert.fingerprint in
  if Bytes.length fp > 0 then Bytes.set fp 0 (if Bytes.get fp 0 = '0' then '1' else '0');
  { c with Cert.fingerprint = Bytes.to_string fp }

(* --------------------------------------------------------------- metrics *)

let m_requests = Metrics.counter "serve.requests"
let m_queue_depth = Metrics.gauge "serve.queue_depth"
let m_shed = Metrics.counter "serve.shed"
let m_respawns = Metrics.counter "serve.respawns"
let m_crashes = Metrics.counter "serve.worker_crashes"
let m_cache_hits = Metrics.counter "serve.cache_hits"
let m_cache_misses = Metrics.counter "serve.cache_misses"
let m_audits = Metrics.counter "serve.cache_audits"
let m_audit_failures = Metrics.counter "serve.cache_audit_failures"
let m_cert_audits = Metrics.counter "serve.cert_audits"
let m_cert_audit_failures = Metrics.counter "serve.cert_audit_failed"
let m_timeouts = Metrics.counter "serve.timeouts"
let m_latency = Metrics.histogram "serve.request_latency_s"

(* rolling window behind the health reply's p50/p95/p99 — same series as
   the histogram, but windowed so a long-lived daemon reports *recent*
   latency, not its lifetime average *)
let w_latency = Metrics.window "serve.request_latency_s"

(* ---------------------------------------------------------------- worker *)

(* The pool worker: a forked child in its own session, looping over
   requests on its socketpair end until the daemon closes it (clean
   shutdown) or a request tells it to chaos-kill itself. All failure
   modes of a solve come back as structured results over the same frame
   channel; the worker only dies on chaos kills, rlimit SIGKILLs, or
   genuine solver bugs — exactly the cases the daemon's crash taxonomy
   and respawn path are built for. *)
let rec list_drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> list_drop (n - 1) t

let worker_main (config : config) fd =
  Ipc.ignore_sigpipe ();
  (* drop the daemon's span buffer but keep its enabled flag: when the
     daemon traces, each job's spans are recorded here and shipped back
     in the reply for merging under this worker's pid row. fork_reinit
     also clears any inherited partial-frame flush hook — a daemon that
     is itself running under a sweep worker would otherwise hand this
     pool worker a hook writing onto the sweep supervisor's pipe — and
     resets the fallback clock mark *)
  Obs.fork_reinit ();
  (* hard address-space backstop at 2x the soft heap budget: the Budget
     governor raises a clean, recoverable memout first in the common
     case; the rlimit catches runaway native allocations *)
  (match config.mem_limit_mb with
  | Some mb ->
      Exec.Limits.apply_in_child
        { Exec.Limits.none with Exec.Limits.mem_bytes = Some (2 * mb * 1024 * 1024) }
  | None -> ());
  let rd = Ipc.reader () in
  let rec loop () =
    match Ipc.read_next rd fd with
    | Ipc.Eof -> Unix._exit 0
    | Ipc.Malformed _ -> Unix._exit 3
    | Ipc.Frame j -> (
        match Proto.wreq_of_json j with
        | Error _ -> Unix._exit 3
        | Ok { Proto.jid; text; timeout_s; kill; sleep_s; trace; cert; escalate; poison } ->
            if kill then Unix.kill (Unix.getpid ()) Sys.sigkill;
            let t0 = Budget.now () in
            let budget = Budget.of_seconds timeout_s in
            let budget =
              match config.mem_limit_mb with
              | Some mb -> Budget.with_mem_limit_mb budget mb
              | None -> budget
            in
            if sleep_s > 0. then Unix.sleepf sleep_s;
            let before = Metrics.snapshot () in
            let ev_mark = List.length (Obs.Trace.events ()) in
            let solver =
              (* escalated re-solve after a certificate audit failure:
                 full checks, no chaos, no degraded restart — the answer
                 must be earned, not salvaged *)
              if escalate then
                {
                  config.solver with
                  Hqs.check_level = Check.Full;
                  chaos = Chaos.off;
                  restart_on_memout = false;
                }
              else config.solver
            in
            let solve () =
              let pcnf = Dqbf.Pcnf.parse_string text in
              if not cert then begin
                let v, _stats = Hqs.solve_pcnf ~config:solver ~budget pcnf in
                (Proto.W_sat (v = Hqs.Sat), false, None)
              end
              else begin
                (* the solver's own Post_certify audit is disabled here:
                   the audit must run in this frame, after the chaos
                   poison hook, so fault injection exercises exactly the
                   gate the daemon's recovery loop listens to *)
                let v, art, _model, _stats =
                  Hqs.solve_pcnf_certified
                    ~config:{ solver with Hqs.check_level = Check.Off }
                    ~budget ~instance_text:text pcnf
                in
                let art = if poison then poison_cert art else art in
                let level = if escalate then Check.Full else config.check_level in
                match Check.audit_certificate ~budget ~level ~instance_text:text pcnf art with
                | () -> (Proto.W_sat (v = Hqs.Sat), false, Some (Cert.render art))
                | exception Check.Violation viol ->
                    ( Proto.W_cert_failed (Format.asprintf "%a" Check.pp_violation viol),
                      false,
                      None )
              end
            in
            let solve =
              match trace with
              | None -> solve
              | Some id ->
                  fun () ->
                    Span.with_ "serve.solve"
                      ~attrs:[ ("jid", Obs.Int jid); ("trace_id", Obs.Str id) ]
                      solve
            in
            let result, retiring, cert_blob =
              match solve () with
              | r -> r
              | exception Budget.Timeout -> (Proto.W_timeout, false, None)
              | exception Budget.Out_of_memory_budget -> (Proto.W_memout, false, None)
              | exception Out_of_memory ->
                  (* the rlimit backstop fired: the reply still goes out,
                     but the heap is pinned near the ceiling — retire and
                     let the daemon respawn a fresh worker *)
                  (Proto.W_memout, true, None)
              | exception Failure msg -> (Proto.W_error msg, false, None)
              | exception Check.Violation v ->
                  ( Proto.W_error (Format.asprintf "check violation: %a" Check.pp_violation v),
                    false,
                    None )
            in
            let samples = Metrics.delta ~before ~after:(Metrics.snapshot ()) in
            let w_events =
              if trace = None then [] else list_drop ev_mark (Obs.Trace.events ())
            in
            (match
               Ipc.write_frame fd
                 (Proto.wreply_to_json
                    {
                      Proto.w_jid = jid;
                      result;
                      w_elapsed_s = Budget.now () -. t0;
                      retiring;
                      samples;
                      w_events;
                      cert_blob;
                    })
             with
            | () -> ()
            | exception Unix.Unix_error (Unix.EPIPE, _, _) -> Unix._exit 0);
            if retiring then Unix._exit 0 else loop ())
  in
  loop ()

(* ------------------------------------------------------- daemon state *)

type job = {
  jid : int;
  cid : int;
  key : Dqbf.Canon.key;
  text : string;
  timeout_s : float;
  sleep_s : float;
  mutable attempts : int;  (** dispatches so far *)
  enqueued_at : float;
  trace : string;  (** request trace id, minted at admission *)
  audit_of : Cache.entry option;  (** [Some e]: sampled re-solve of a cache hit *)
  want_cert : bool;  (** the client asked for the artifact inline *)
  mutable escalate : bool;
      (** re-dispatch after a certificate audit failure: the worker runs
          the solve under full checks with degradation disabled *)
}

type wstate =
  | Idle
  | Busy of job * float  (** job and its absolute wall-kill deadline *)
  | Respawning of float  (** absolute time the replacement may be forked *)

type wslot = {
  widx : int;
  mutable pid : int;
  mutable wfd : Unix.file_descr;
  mutable wrd : Ipc.reader;
  mutable state : wstate;
  mutable failures : int;  (** consecutive crashes, drives quarantine backoff *)
}

type client = {
  cid : int;
  cfd : Unix.file_descr;
  crd : Ipc.reader;
  mutable outq : string list;  (** FIFO of rendered frames; head partially sent *)
  mutable off : int;  (** bytes of the head frame already written *)
}

(* Read whatever is available on a nonblocking fd into [rd]. [`Closed
   got] reports EOF *and* whether bytes were buffered first: a peer that
   writes its last frame and immediately closes (a fire-and-forget
   client, a retiring worker) delivers data and EOF in one batch, and
   the buffered frames must be processed before the fd is dropped. *)
let read_avail fd rd =
  let chunk = Bytes.create 8192 in
  let rec go got =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> `Closed got
    | n ->
        Ipc.feed rd chunk n;
        go true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go got
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        if got then `Data else `Nothing
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> `Closed got
  in
  go false

(* Write a whole frame to a (possibly nonblocking) worker fd, waiting on
   writability for the large-instance case. The worker is either blocked
   reading or solving, and drains its socketpair eventually; a worker
   that died instead surfaces as EPIPE, which the caller maps to the
   crash path. *)
let write_frame_waiting fd bytes =
  let n = Bytes.length bytes in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd bytes !off (n - !off) with
    | written -> off := !off + written
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
        match Unix.select [] [ fd ] [] 1.0 with
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  done

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | r -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let kill_group pid signal = try Unix.kill (-pid) signal with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ run *)

let run (config : config) =
  if config.workers < 1 then invalid_arg "Daemon.run: workers must be >= 1";
  if config.queue_cap < 1 then invalid_arg "Daemon.run: queue_cap must be >= 1";
  if config.max_attempts < 1 then invalid_arg "Daemon.run: max_attempts must be >= 1";
  Ipc.ignore_sigpipe ();
  (match config.trace_path with Some _ -> Obs.Trace.start () | None -> ());
  let t_start = Budget.now () in
  let daemon_pid = Unix.getpid () in
  let elog = Option.map Exec.Eventlog.create config.event_log in
  let ev ?trace ?(fields = []) name =
    match elog with
    | Some t -> Exec.Eventlog.log t ~event:name ?trace_id:trace ~fields ()
    | None -> ()
  in
  let cache = Cache.open_ ?path:config.cache_path () in
  if Sys.file_exists config.socket_path then Sys.remove config.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let draining = ref false in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> draining := true)) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> draining := true)) in

  let slots =
    Array.init config.workers (fun widx ->
        {
          widx;
          pid = -1;
          wfd = Unix.stdin;
          wrd = Ipc.reader ();
          state = Respawning 0.;
          failures = 0;
        })
  in
  let clients : (int, client) Hashtbl.t = Hashtbl.create 16 in
  let pending : job Queue.t = Queue.create () in
  let requeued : job list ref = ref [] in
  let next_jid = ref 0 in
  let next_cid = ref 0 in
  let hit_count = ref 0 in

  let queue_depth () = Queue.length pending + List.length !requeued in
  let update_depth () = Metrics.set m_queue_depth (float_of_int (queue_depth ())) in

  let spawn slot =
    let parent_fd, child_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.fork () with
    | 0 ->
        (* worker: drop every parent-side descriptor so EOF tracking on
           sockets stays precise — an inherited duplicate of another
           worker's channel or a client connection would defeat it *)
        ignore (Unix.setsid ());
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        (try Unix.close parent_fd with Unix.Unix_error _ -> ());
        Hashtbl.iter (fun _ c -> try Unix.close c.cfd with Unix.Unix_error _ -> ()) clients;
        Array.iter
          (fun s ->
            if s.widx <> slot.widx && s.pid >= 0 then
              try Unix.close s.wfd with Unix.Unix_error _ -> ())
          slots;
        worker_main config child_fd
    | pid ->
        Unix.close child_fd;
        Unix.set_nonblock parent_fd;
        slot.pid <- pid;
        slot.wfd <- parent_fd;
        slot.wrd <- Ipc.reader ();
        slot.state <- Idle
  in

  let send_reply cid reply =
    match Hashtbl.find_opt clients cid with
    | None -> () (* client disconnected mid-solve; the verdict is still cached *)
    | Some c -> c.outq <- c.outq @ [ Ipc.frame_string (Proto.reply_to_json reply) ]
  in

  let drop_client c =
    Hashtbl.remove clients c.cid;
    try Unix.close c.cfd with Unix.Unix_error _ -> ()
  in

  let flush_client c =
    let rec go () =
      match c.outq with
      | [] -> ()
      | frame :: rest -> (
          let len = String.length frame in
          match Unix.write_substring c.cfd frame c.off (len - c.off) with
          | n ->
              c.off <- c.off + n;
              if c.off >= len then begin
                c.outq <- rest;
                c.off <- 0;
                go ()
              end
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
              drop_client c)
    in
    go ()
  in

  let complete ~wpid job (wr : Proto.wreply) =
    Metrics.absorb wr.Proto.samples;
    let latency = Budget.now () -. job.enqueued_at in
    Metrics.observe m_latency latency;
    Metrics.wobserve w_latency latency;
    if wr.Proto.w_events <> [] && Obs.Trace.enabled () then
      Obs.Trace.inject ~pid:wpid wr.Proto.w_events;
    ev "complete" ~trace:job.trace
      ~fields:
        [
          ("jid", Json.Num (float_of_int job.jid));
          ( "result",
            Json.Str
              (match wr.Proto.result with
              | Proto.W_sat true -> "sat"
              | Proto.W_sat false -> "unsat"
              | Proto.W_timeout -> "timeout"
              | Proto.W_memout -> "memout"
              | Proto.W_error _ -> "error"
              | Proto.W_cert_failed _ -> "cert_failed") );
          ("elapsed_s", Json.Num wr.Proto.w_elapsed_s);
        ];
    Span.with_ "serve.complete" ~attrs:[ ("jid", Obs.Int job.jid) ] @@ fun () ->
    match wr.Proto.result with
    | Proto.W_sat sat -> (
        if config.certify then Metrics.incr m_cert_audits;
        match job.audit_of with
        | Some cached ->
            Metrics.incr m_audits;
            ev "cache_audit" ~trace:job.trace
              ~fields:[ ("key", Json.Str job.key.Dqbf.Canon.h1) ];
            let verdict_matches =
              match
                Check.audit_cache_hit ~level:config.check_level ~key:job.key.Dqbf.Canon.h1
                  ~cached_sat:cached.Cache.sat ~fresh_sat:sat
              with
              | () -> true
              | exception Check.Violation _ -> false
            in
            if verdict_matches then
              send_reply job.cid
                (Proto.Verdict
                   {
                     sat;
                     elapsed_s = cached.Cache.elapsed_s;
                     cached = true;
                     audited = true;
                     cert = (if job.want_cert then wr.Proto.cert_blob else None);
                   })
            else begin
              Metrics.incr m_audit_failures;
              ev "cache_audit_failed" ~trace:job.trace
                ~fields:[ ("key", Json.Str job.key.Dqbf.Canon.h1) ];
              Cache.remove cache job.key;
              Span.event "serve.cache.audit_failed"
                ~attrs:[ ("key", Obs.Str job.key.Dqbf.Canon.h1) ]
                ();
              send_reply job.cid
                (Proto.Audit_failed { cached_sat = cached.Cache.sat; fresh_sat = sat })
            end
        | None ->
            Cache.store cache job.key ~sat ~elapsed_s:wr.Proto.w_elapsed_s;
            send_reply job.cid
              (Proto.Verdict
                 {
                   sat;
                   elapsed_s = wr.Proto.w_elapsed_s;
                   cached = false;
                   audited = job.escalate;
                   cert = (if job.want_cert then wr.Proto.cert_blob else None);
                 }))
    | Proto.W_timeout ->
        Metrics.incr m_timeouts;
        send_reply job.cid
          (Proto.Failed
             {
               failure = Proto.F_timeout;
               elapsed_s = wr.Proto.w_elapsed_s;
               detail = "solve budget expired";
             })
    | Proto.W_memout ->
        send_reply job.cid
          (Proto.Failed
             {
               failure = Proto.F_memout;
               elapsed_s = wr.Proto.w_elapsed_s;
               detail = "memory budget exceeded";
             })
    | Proto.W_error msg ->
        send_reply job.cid
          (Proto.Failed
             { failure = Proto.F_crash; elapsed_s = wr.Proto.w_elapsed_s; detail = msg })
    | Proto.W_cert_failed detail ->
        (* the worker's certificate audit tripped: treat like a crash —
           tombstone the canonical-form cache entry (the verdict is now
           suspect), re-dispatch escalated, quarantine past the attempt
           budget *)
        Metrics.incr m_cert_audits;
        Metrics.incr m_cert_audit_failures;
        Cache.remove cache job.key;
        Span.event "serve.cert.audit_failed"
          ~attrs:[ ("key", Obs.Str job.key.Dqbf.Canon.h1); ("jid", Obs.Int job.jid) ]
          ();
        ev "cert_audit" ~trace:job.trace
          ~fields:
            [
              ("jid", Json.Num (float_of_int job.jid));
              ("key", Json.Str job.key.Dqbf.Canon.h1);
              ("attempts", Json.Num (float_of_int job.attempts));
              ("detail", Json.Str detail);
            ];
        if job.attempts >= config.max_attempts then begin
          ev "quarantine" ~trace:job.trace
            ~fields:[ ("jid", Json.Num (float_of_int job.jid)) ];
          send_reply job.cid
            (Proto.Failed
               {
                 failure = Proto.F_crash;
                 elapsed_s = Budget.now () -. job.enqueued_at;
                 detail =
                   Printf.sprintf "certificate audit failed (%d attempts): %s" job.attempts
                     detail;
               })
        end
        else begin
          job.escalate <- true;
          ev "retry" ~trace:job.trace
            ~fields:[ ("jid", Json.Num (float_of_int job.jid)); ("escalate", Json.Bool true) ];
          requeued := !requeued @ [ job ];
          update_depth ()
        end
  in

  let respawn_after_failure slot =
    slot.failures <- slot.failures + 1;
    let delay =
      Exec.Backoff.delay config.backoff
        ~task:(Printf.sprintf "serve.worker%d" slot.widx)
        ~attempt:slot.failures
    in
    slot.pid <- -1;
    slot.state <- Respawning (Budget.now () +. delay)
  in

  (* EOF or torn frame from a worker: classify, settle its job, schedule
     the respawn under quarantine backoff. *)
  let worker_died slot =
    (try Unix.close slot.wfd with Unix.Unix_error _ -> ());
    if slot.pid >= 0 then ignore (waitpid_retry slot.pid);
    (match slot.state with
    | Busy (job, _) ->
        Metrics.incr m_crashes;
        Span.event "serve.worker.crash"
          ~attrs:[ ("worker", Obs.Int slot.widx); ("jid", Obs.Int job.jid) ]
          ();
        ev "crash" ~trace:job.trace
          ~fields:
            [
              ("worker", Json.Num (float_of_int slot.widx));
              ("jid", Json.Num (float_of_int job.jid));
              ("attempts", Json.Num (float_of_int job.attempts));
            ];
        if job.attempts >= config.max_attempts then begin
          ev "quarantine" ~trace:job.trace
            ~fields:[ ("jid", Json.Num (float_of_int job.jid)) ];
          send_reply job.cid
            (Proto.Failed
               {
                 failure = Proto.F_crash;
                 elapsed_s = Budget.now () -. job.enqueued_at;
                 detail = Printf.sprintf "worker crashed (%d attempts)" job.attempts;
               })
        end
        else begin
          (* retry ahead of newly admitted work *)
          ev "retry" ~trace:job.trace ~fields:[ ("jid", Json.Num (float_of_int job.jid)) ];
          requeued := !requeued @ [ job ];
          update_depth ()
        end
    | Idle | Respawning _ -> ());
    respawn_after_failure slot
  in

  (* A worker finished its job and retired on purpose (post-memout): not
     a crash, no quarantine, fresh replacement as soon as possible. *)
  let worker_retired slot =
    (try Unix.close slot.wfd with Unix.Unix_error _ -> ());
    if slot.pid >= 0 then ignore (waitpid_retry slot.pid);
    slot.failures <- 0;
    slot.pid <- -1;
    slot.state <- Respawning (Budget.now ())
  in

  let dispatch () =
    Array.iter
      (fun slot ->
        match slot.state with
        | Idle when queue_depth () > 0 ->
            let job =
              match !requeued with
              | j :: rest ->
                  requeued := rest;
                  j
              | [] -> Queue.pop pending
            in
            update_depth ();
            job.attempts <- job.attempts + 1;
            let kill =
              Chaos.fire config.chaos (kill_point ~jid:job.jid ~attempt:job.attempts)
            in
            let poison =
              config.certify
              && Chaos.fire config.chaos (cert_point ~jid:job.jid ~attempt:job.attempts)
            in
            let frame =
              Ipc.frame_string
                (Proto.wreq_to_json
                   {
                     Proto.jid = job.jid;
                     text = job.text;
                     timeout_s = job.timeout_s;
                     kill;
                     sleep_s = job.sleep_s;
                     trace = (if Obs.Trace.enabled () then Some job.trace else None);
                     cert = config.certify;
                     escalate = job.escalate;
                     poison;
                   })
            in
            (match write_frame_waiting slot.wfd (Bytes.of_string frame) with
            | () ->
                (* the budget clock starts at dispatch (the worker's sleep
                   hook runs inside it), so a worker still silent at
                   deadline + grace is stuck, not slow *)
                slot.state <-
                  Busy (job, Budget.now () +. job.timeout_s +. config.kill_grace_s)
            | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
                (* worker died between jobs; settle as a crash attempt *)
                slot.state <- Busy (job, Budget.now ());
                worker_died slot)
        | Idle | Busy _ | Respawning _ -> ())
      slots
  in

  let admit cid (req : Proto.request) =
    Span.with_ "serve.request" @@ fun () ->
    match req with
    | Proto.Ping -> send_reply cid Proto.Pong
    | Proto.Stats ->
        let workers =
          Array.fold_left
            (fun acc s -> match s.state with Respawning _ -> acc | Idle | Busy _ -> acc + 1)
            0 slots
        in
        send_reply cid
          (Proto.Stats_reply
             {
               workers;
               queue_depth = queue_depth ();
               metrics = Metrics.to_assoc (Metrics.snapshot ());
             })
    | Proto.Health ->
        let state_name s =
          match s.state with Idle -> "idle" | Busy _ -> "busy" | Respawning _ -> "respawning"
        in
        send_reply cid
          (Proto.Health_reply
             {
               Proto.live_workers =
                 Array.fold_left
                   (fun acc s -> match s.state with Respawning _ -> acc | Idle | Busy _ -> acc + 1)
                   0 slots;
               h_queue_depth = queue_depth ();
               in_flight =
                 Array.fold_left
                   (fun acc s -> match s.state with Busy _ -> acc + 1 | Idle | Respawning _ -> acc)
                   0 slots;
               draining = !draining;
               uptime_s = Budget.now () -. t_start;
               states = Array.to_list (Array.map state_name slots);
               lat_n = Metrics.window_count w_latency;
               lat_p50 = Metrics.quantile w_latency 0.5;
               lat_p95 = Metrics.quantile w_latency 0.95;
               lat_p99 = Metrics.quantile w_latency 0.99;
               h_metrics = Metrics.to_assoc (Metrics.snapshot ());
             })
    | Proto.Solve { text; timeout_s; sleep_s; want_cert } -> (
        Metrics.incr m_requests;
        if !draining then send_reply cid Proto.Draining
        else
          let timeout_s =
            Float.min config.max_timeout_s
              (match timeout_s with
              | Some s when s > 0. -> s
              | Some _ | None -> config.default_timeout_s)
          in
          match Dqbf.Pcnf.parse_string text with
          | exception Failure msg -> send_reply cid (Proto.Invalid msg)
          | pcnf -> (
              match Dqbf.Pcnf.validate pcnf with
              | Error msg -> send_reply cid (Proto.Invalid msg)
              | Ok () -> (
                  let canon = Dqbf.Canon.canonicalize pcnf in
                  let enqueue audit_of =
                    incr next_jid;
                    let trace = Printf.sprintf "serve-%d-%d" daemon_pid !next_jid in
                    ev "admit" ~trace
                      ~fields:
                        ([
                           ("jid", Json.Num (float_of_int !next_jid));
                           ("queue_depth", Json.Num (float_of_int (queue_depth () + 1)));
                         ]
                        @ if audit_of = None then [] else [ ("audit", Json.Bool true) ]);
                    Queue.push
                      {
                        jid = !next_jid;
                        cid;
                        key = canon.Dqbf.Canon.key;
                        text;
                        timeout_s;
                        sleep_s;
                        attempts = 0;
                        enqueued_at = Budget.now ();
                        trace;
                        audit_of;
                        want_cert = want_cert && config.certify;
                        escalate = false;
                      }
                      pending;
                    update_depth ()
                  in
                  match Cache.find cache canon.Dqbf.Canon.key with
                  | Some entry ->
                      incr hit_count;
                      Metrics.incr m_cache_hits;
                      let audit =
                        config.check_level = Check.Full
                        && config.audit_period > 0
                        && !hit_count mod config.audit_period = 0
                        && queue_depth () < config.queue_cap
                      in
                      if audit then enqueue (Some entry)
                      else
                        send_reply cid
                          (Proto.Verdict
                             {
                               sat = entry.Cache.sat;
                               elapsed_s = entry.Cache.elapsed_s;
                               cached = true;
                               audited = false;
                               cert = None;
                             })
                  | None ->
                      Metrics.incr m_cache_misses;
                      if queue_depth () >= config.queue_cap then begin
                        Metrics.incr m_shed;
                        Span.event "serve.shed" ();
                        ev "shed"
                          ~fields:[ ("queue_depth", Json.Num (float_of_int (queue_depth ()))) ];
                        send_reply cid (Proto.Overloaded { queue_depth = queue_depth () })
                      end
                      else enqueue None)))
  in

  let handle_client_input c =
    let rec frames () =
      match Ipc.next_frame c.crd with
      | None -> ()
      | Some (Error msg) ->
          send_reply c.cid (Proto.Invalid ("torn frame: " ^ msg));
          flush_client c;
          drop_client c
      | Some (Ok j) ->
          (match Proto.request_of_json j with
          | Ok req -> admit c.cid req
          | Error msg -> send_reply c.cid (Proto.Invalid msg));
          if Hashtbl.mem clients c.cid then frames ()
    in
    match read_avail c.cfd c.crd with
    | `Nothing -> ()
    | `Data -> frames ()
    | `Closed got ->
        (* a client that sent its request and hung up: admit the buffered
           frames first (the verdict is still computed and cached), then
           drop the connection *)
        if got then frames ();
        if Hashtbl.mem clients c.cid then drop_client c
  in

  let handle_worker_input slot =
    let rec frames () =
      match Ipc.next_frame slot.wrd with
      | None -> `Alive
      | Some (Error _) ->
          worker_died slot;
          `Settled
      | Some (Ok j) -> (
          match (Proto.wreply_of_json j, slot.state) with
          | Ok wr, Busy (job, _) when wr.Proto.w_jid = job.jid ->
              complete ~wpid:slot.pid job wr;
              slot.failures <- 0;
              if wr.Proto.retiring then begin
                worker_retired slot;
                `Settled
              end
              else begin
                slot.state <- Idle;
                frames ()
              end
          | Ok _, _ -> frames () (* stale frame from a superseded job *)
          | Error _, _ ->
              worker_died slot;
              `Settled)
    in
    match read_avail slot.wfd slot.wrd with
    | `Nothing -> ()
    | `Data -> ignore (frames ())
    | `Closed got ->
        (* a retiring worker's last reply can arrive in the same batch as
           its EOF: settle the frames first so a planned retirement is
           not misread as a crash *)
        let settled = if got then frames () else `Alive in
        if settled = `Alive then worker_died slot
  in

  (* late-worker wall kill: the request's deadline plus grace has passed
     without a reply — SIGKILL the worker's session and settle the job
     as a structured timeout (no retry: the instance earned its kill) *)
  let enforce_deadlines now =
    Array.iter
      (fun slot ->
        match slot.state with
        | Busy (job, kill_at) when now >= kill_at ->
            kill_group slot.pid Sys.sigkill;
            (try Unix.close slot.wfd with Unix.Unix_error _ -> ());
            ignore (waitpid_retry slot.pid);
            Metrics.incr m_timeouts;
            Span.event "serve.worker.wall_kill"
              ~attrs:[ ("worker", Obs.Int slot.widx); ("jid", Obs.Int job.jid) ]
              ();
            ev "timeout" ~trace:job.trace
              ~fields:
                [
                  ("worker", Json.Num (float_of_int slot.widx));
                  ("jid", Json.Num (float_of_int job.jid));
                ];
            send_reply job.cid
              (Proto.Failed
                 {
                   failure = Proto.F_timeout;
                   elapsed_s = now -. job.enqueued_at;
                   detail = "deadline expired; worker killed";
                 });
            slot.failures <- 0;
            slot.pid <- -1;
            slot.state <- Respawning now
        | Idle | Busy _ | Respawning _ -> ())
      slots
  in

  let respawn_due now =
    Array.iter
      (fun slot ->
        match slot.state with
        | Respawning at when now >= at ->
            if slot.pid >= 0 then () (* unreachable; pid cleared on death *)
            else begin
              Metrics.incr m_respawns;
              ev "respawn" ~fields:[ ("worker", Json.Num (float_of_int slot.widx)) ];
              spawn slot
            end
        | Idle | Busy _ | Respawning _ -> ())
      slots
  in

  (* initial pool, not counted as respawns *)
  Array.iter spawn slots;
  ev "start"
    ~fields:
      [
        ("workers", Json.Num (float_of_int config.workers));
        ("queue_cap", Json.Num (float_of_int config.queue_cap));
      ];
  let drain_logged = ref false in

  let accept_clients () =
    let rec go () =
      match Unix.accept listen_fd with
      | fd, _ ->
          Unix.set_nonblock fd;
          incr next_cid;
          Hashtbl.replace clients !next_cid
            { cid = !next_cid; cfd = fd; crd = Ipc.reader (); outq = []; off = 0 };
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> go ()
    in
    go ()
  in

  let all_flushed () = Hashtbl.fold (fun _ c acc -> acc && c.outq = []) clients true in
  let all_idle () =
    Array.for_all (fun s -> match s.state with Busy _ -> false | Idle | Respawning _ -> true) slots
  in

  let finished () =
    !draining && queue_depth () = 0 && all_idle () && all_flushed ()
  in

  while not (finished ()) do
    let now = Budget.now () in
    if !draining && not !drain_logged then begin
      drain_logged := true;
      ev "drain" ~fields:[ ("queue_depth", Json.Num (float_of_int (queue_depth ()))) ]
    end;
    enforce_deadlines now;
    respawn_due now;
    dispatch ();
    (* the OCaml-level SIGTERM handler only runs at a safe point after
       select returns, so the idle timeout bounds drain responsiveness —
       keep it short *)
    let wait =
      Array.fold_left
        (fun acc s ->
          match s.state with
          | Busy (_, kill_at) -> Float.min acc (kill_at -. now)
          | Respawning at -> Float.min acc (at -. now)
          | Idle -> acc)
        0.1 slots
    in
    let wait = Float.max 0.01 (if !draining then Float.min wait 0.05 else wait) in
    let worker_fds =
      Array.fold_left
        (fun acc s -> match s.state with Respawning _ -> acc | Idle | Busy _ -> s.wfd :: acc)
        [] slots
    in
    let rfds = (listen_fd :: Hashtbl.fold (fun _ c acc -> c.cfd :: acc) clients []) @ worker_fds in
    let wfds = Hashtbl.fold (fun _ c acc -> if c.outq = [] then acc else c.cfd :: acc) clients [] in
    let readable, writable, _ =
      match Unix.select rfds wfds [] wait with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ([], [], [])
    in
    if List.memq listen_fd readable then accept_clients ();
    Array.iter
      (fun slot ->
        match slot.state with
        | Respawning _ -> ()
        | Idle | Busy _ -> if List.memq slot.wfd readable then handle_worker_input slot)
      slots;
    let snapshot = Hashtbl.fold (fun _ c acc -> c :: acc) clients [] in
    List.iter
      (fun c -> if Hashtbl.mem clients c.cid && List.memq c.cfd readable then handle_client_input c)
      snapshot;
    List.iter
      (fun c ->
        if Hashtbl.mem clients c.cid && (List.memq c.cfd writable || c.outq <> []) then
          flush_client c)
      snapshot;
    dispatch ()
  done;

  (* graceful shutdown: workers get EOF on their request channel and
     exit 0; everything else is closed and the socket path removed *)
  Array.iter
    (fun slot ->
      match slot.state with
      | Respawning _ -> ()
      | Idle | Busy _ ->
          (try Unix.close slot.wfd with Unix.Unix_error _ -> ());
          if slot.pid >= 0 then ignore (waitpid_retry slot.pid))
    slots;
  Hashtbl.iter (fun _ c -> try Unix.close c.cfd with Unix.Unix_error _ -> ()) clients;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Sys.remove config.socket_path with Sys_error _ -> ());
  Cache.close cache;
  ev "stop" ~fields:[ ("uptime_s", Json.Num (Budget.now () -. t_start)) ];
  (match elog with Some t -> Exec.Eventlog.close t | None -> ());
  (match config.trace_path with
  | Some path ->
      List.iter
        (fun { Metrics.name; kind = _; v } ->
          if String.length name >= 6 && String.sub name 0 6 = "serve." then
            Span.event "serve.metric" ~attrs:[ ("name", Obs.Str name); ("value", Obs.Float v) ] ())
        (Metrics.snapshot ());
      Obs.Trace.write_chrome_json path;
      Obs.Trace.reset ()
  | None -> ());
  Sys.set_signal Sys.sigterm prev_term;
  Sys.set_signal Sys.sigint prev_int
