(** Blocking request/reply client for the serve daemon ([hqs query] and
    the tests). One connection per request. *)

val connect : string -> Unix.file_descr
(** Connect to the daemon's Unix-domain socket.
    @raise Unix.Unix_error when the daemon is not there. *)

val roundtrip : socket:string -> Proto.request -> (Proto.reply, string) result
(** Connect, send one request, read one reply, close. All transport
    failures (daemon absent, torn reply, disconnect) come back as
    [Error] — this function never raises on I/O. *)
