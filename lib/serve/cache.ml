module Json = Obs.Json

type entry = { sat : bool; elapsed_s : float; h2 : string }

type t = {
  tbl : (string, entry) Hashtbl.t;
  journal : Exec.Journal.t option;
  mutable loaded_dropped : int;
}

let entry_to_json ~removed { sat; elapsed_s; h2 } =
  Json.Obj
    ([ ("sat", Json.Bool sat); ("elapsed_s", Json.Num elapsed_s); ("h2", Json.Str h2) ]
    @ if removed then [ ("removed", Json.Bool true) ] else [])

let entry_of_json j =
  match (Json.member "sat" j, Json.member "elapsed_s" j, Json.member "h2" j) with
  | Some (Json.Bool sat), Some e, Some (Json.Str h2) -> (
      match Json.to_number e with
      | Some elapsed_s ->
          let removed =
            match Json.member "removed" j with Some (Json.Bool true) -> true | _ -> false
          in
          Some (removed, { sat; elapsed_s; h2 })
      | None -> None)
  | _ -> None

let open_ ?path () =
  let tbl = Hashtbl.create 64 in
  let loaded_dropped = ref 0 in
  (match path with
  | None -> ()
  | Some path ->
      (* the journal is append-only: later lines win, and a [removed]
         tombstone (an audit failure evicting a poisoned entry) must
         survive restarts just like a store does *)
      let { Exec.Journal.entries; dropped } = Exec.Journal.load path in
      loaded_dropped := dropped;
      List.iter
        (fun { Exec.Journal.task_id; data } ->
          match entry_of_json data with
          | Some (true, _) -> Hashtbl.remove tbl task_id
          | Some (false, e) -> Hashtbl.replace tbl task_id e
          | None -> incr loaded_dropped)
        entries);
  let journal = Option.map Exec.Journal.open_append path in
  { tbl; journal; loaded_dropped = !loaded_dropped }

let loaded_dropped t = t.loaded_dropped
let size t = Hashtbl.length t.tbl

let find t (key : Dqbf.Canon.key) =
  match Hashtbl.find_opt t.tbl key.Dqbf.Canon.h1 with
  | Some e when e.h2 = key.Dqbf.Canon.h2 -> Some e
  | Some _ -> None (* primary-fingerprint collision: treat as a miss *)
  | None -> None

let persist t ~removed key entry =
  match t.journal with
  | None -> ()
  | Some j ->
      Exec.Journal.append j
        { Exec.Journal.task_id = key.Dqbf.Canon.h1; data = entry_to_json ~removed entry }

let store t (key : Dqbf.Canon.key) ~sat ~elapsed_s =
  let entry = { sat; elapsed_s; h2 = key.Dqbf.Canon.h2 } in
  Hashtbl.replace t.tbl key.Dqbf.Canon.h1 entry;
  persist t ~removed:false key entry

let remove t (key : Dqbf.Canon.key) =
  match Hashtbl.find_opt t.tbl key.Dqbf.Canon.h1 with
  | None -> ()
  | Some entry ->
      Hashtbl.remove t.tbl key.Dqbf.Canon.h1;
      persist t ~removed:true key entry

let close t = Option.iter Exec.Journal.close t.journal
