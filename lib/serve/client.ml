module Ipc = Exec.Ipc

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> fd
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let roundtrip ~socket request =
  Ipc.ignore_sigpipe ();
  match connect socket with
  | exception Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message err))
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match Ipc.write_frame fd (Proto.request_to_json request) with
          | exception Unix.Unix_error (err, _, _) ->
              Error ("send failed: " ^ Unix.error_message err)
          | () -> (
              match Ipc.read_frame fd with
              | Ipc.Eof -> Error "daemon closed the connection without a reply"
              | Ipc.Malformed msg -> Error ("torn reply: " ^ msg)
              | Ipc.Frame j -> Proto.reply_of_json j
              | exception Unix.Unix_error (err, _, _) ->
                  Error ("receive failed: " ^ Unix.error_message err)))
