(** Canonical-form verdict cache.

    Keyed by the primary FNV-1a fingerprint of {!Dqbf.Canon}'s canonical
    rendering; the independent second fingerprint is stored alongside and
    re-checked on lookup, so a primary-hash collision degrades to a cache
    miss rather than a wrong verdict. Optionally persistent through the
    {!Exec.Journal} checksummed append-only format: a daemon killed
    mid-append leaves at most one torn trailing line, which the per-line
    checksum drops on reload. Evictions (an audit failure removing a
    poisoned entry) persist as tombstone lines, so a restart cannot
    resurrect a disproven verdict. *)

type entry = { sat : bool; elapsed_s : float; h2 : string }

type t

val open_ : ?path:string -> unit -> t
(** In-memory cache, preloaded from (and persisted to) the journal at
    [path] when given. *)

val find : t -> Dqbf.Canon.key -> entry option
val store : t -> Dqbf.Canon.key -> sat:bool -> elapsed_s:float -> unit
val remove : t -> Dqbf.Canon.key -> unit

val size : t -> int

val loaded_dropped : t -> int
(** Torn or undecodable journal lines dropped at [open_]. *)

val close : t -> unit
