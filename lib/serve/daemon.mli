(** The persistent solver daemon behind [hqs serve].

    A single-threaded select loop owns a Unix-domain listen socket, the
    client connections, and a pool of forked solver workers (one
    socketpair each, {!Exec.Ipc} frames both ways). Robustness
    properties, in order of importance:

    - a client always receives a structured reply — worker crashes map
      to retries and then a [crash] reply, budget exhaustion to
      [timeout]/[memout], a stuck worker is SIGKILLed at deadline + grace
      and reported as [timeout]; never a hung or torn connection;
    - crashed workers are respawned under the seeded exponential
      {!Exec.Backoff} quarantine, so a poisoned instance cannot turn the
      pool into a fork bomb;
    - admission is bounded: past [queue_cap] queued jobs, new solves are
      shed with an explicit [overloaded] reply and counted;
    - SIGTERM/SIGINT drain gracefully: in-flight jobs finish, new solves
      get [draining], then the daemon exits cleanly; SIGPIPE is ignored
      throughout, so a disconnecting client cannot kill the daemon (its
      verdict is still computed and cached);
    - verdicts are memoized by {!Dqbf.Canon} canonical key in a
      {!Cache}; at [Check.Full] every [audit_period]-th cache hit is
      re-solved from scratch and compared ({!Check.audit_cache_hit}) —
      a mismatch evicts the entry and tells the client;
    - with [certify] on, every solve runs through
      {!Hqs.solve_pcnf_certified} and the worker audits the artifact
      in-frame ({!Check.audit_certificate}); an audit failure is treated
      like a crash: the cache entry is tombstoned ([cert_audit] event,
      [serve.cert_audit_failed] metric), the job re-dispatched with
      checks escalated to [Full] and degradation off, and quarantined
      past [max_attempts]. Clients that set the request's cert flag get
      the verified artifact inline in their verdict reply.

    Everything observable is metered under [serve.*] in {!Obs.Metrics}
    and, when [trace_path] is set, traced to Chrome JSON. *)

type config = {
  socket_path : string;
  workers : int;  (** pool size, >= 1 *)
  queue_cap : int;  (** queued (not yet dispatched) job bound, >= 1 *)
  default_timeout_s : float;  (** per-request budget when the client sends none *)
  max_timeout_s : float;  (** ceiling on client-requested budgets *)
  kill_grace_s : float;  (** SIGKILL a worker this long past its request deadline *)
  max_attempts : int;  (** dispatches per job before a [crash] reply *)
  mem_limit_mb : int option;  (** per-request heap budget; rlimit backstop at 2x *)
  backoff : Exec.Backoff.policy;  (** respawn quarantine schedule *)
  chaos : Hqs_util.Chaos.t;
      (** arms ["serve.worker.kill:<jid>#<attempt>"] points — a fired
          point makes the dispatched worker SIGKILL itself mid-request —
          and, with [certify] on, ["serve.cert.poison:<jid>#<attempt>"]
          points, which corrupt the worker's certificate before its audit
          to drive the recovery loop deterministically *)
  check_level : Check.level;  (** [Full] enables sampled cache-hit audits *)
  audit_period : int;  (** re-solve every Nth cache hit (0 disables) *)
  cache_path : string option;  (** persistent cache journal *)
  trace_path : string option;
      (** write a Chrome trace on exit: daemon spans plus each worker's
          per-job span buffer (shipped back in its reply frame) merged
          under the worker's own pid row, linked by per-request trace ids *)
  event_log : string option;
      (** size-rotated {!Exec.Eventlog} of lifecycle events (admissions,
          sheds, crashes, retries, quarantines, timeouts, cache audits,
          respawns, drain), each tagged with the request's trace id *)
  solver : Hqs.config;
  certify : bool;
      (** solve through the certifying entry point and audit every
          artifact in the worker, at [check_level] ([Full] when the job
          is an escalated re-solve) *)
}

val default : socket_path:string -> config

val kill_point : jid:int -> attempt:int -> string
(** Chaos point name for one dispatch, mirroring
    {!Hqs_util.Chaos.worker_kill_point}. *)

val cert_point : jid:int -> attempt:int -> string
(** Chaos point name for one dispatch's certificate-poison fault:
    ["serve.cert.poison:<jid>#<attempt>"]. *)

val run : config -> unit
(** Serve until drained by SIGTERM/SIGINT. Binds (replacing any stale
    file at) [socket_path], removes it on exit, restores the previous
    signal dispositions. @raise Invalid_argument on nonsensical pool or
    queue bounds. *)
