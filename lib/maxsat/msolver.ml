open Hqs_util
module S = Sat.Solver
module L = Sat.Lit

type answer = { cost : int; model : bool array }

let violated_count model soft =
  let clause_violated cl =
    not (List.exists (fun l -> if L.is_neg l then not model.(L.var l) else model.(L.var l)) cl)
  in
  List.fold_left (fun acc cl -> if clause_violated cl then acc + 1 else acc) 0 soft

let c_iterations = Obs.Metrics.counter "maxsat.iterations"

let solve ?(budget = Budget.unlimited) ~num_vars ~hard ~soft () =
  Obs.Span.with_ "maxsat.solve"
    ~attrs:[ ("hard", Obs.Int (List.length hard)); ("soft", Obs.Int (List.length soft)) ]
  @@ fun () ->
  let solver = S.create () in
  if num_vars > 0 then S.ensure_var solver (num_vars - 1);
  List.iter (S.add_clause solver) hard;
  (* relaxation literal per soft clause *)
  let relax =
    Array.of_list
      (List.map
         (fun cl ->
           let r = L.of_var (S.new_var solver) in
           S.add_clause solver (r :: cl);
           r)
         soft)
  in
  match S.solve ~budget solver with
  | S.Unsat -> None
  | S.Unknown -> assert false (* no conflict limit given *)
  | S.Sat ->
      let take_model () = Array.init num_vars (S.value solver) in
      let best_model = ref (take_model ()) in
      (* count true violations, not relaxation values: the SAT solver may set
         a relaxation literal true even when its clause is satisfied *)
      let best_cost = ref (violated_count !best_model soft) in
      if !best_cost > 0 then begin
        let outputs = Totalizer.build solver relax in
        (* tighten: require fewer than [best_cost] violations and re-solve *)
        let continue = ref true in
        while !continue && !best_cost > 0 do
          Obs.Metrics.incr c_iterations;
          S.add_clause solver [ L.neg outputs.(!best_cost - 1) ];
          match S.solve ~budget solver with
          | S.Sat ->
              let m = take_model () in
              let c = violated_count m soft in
              assert (c < !best_cost);
              best_model := m;
              best_cost := c
          | S.Unsat -> continue := false
          | S.Unknown -> assert false
        done
      end;
      Some { cost = !best_cost; model = !best_model }
