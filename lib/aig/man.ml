open Hqs_util

type lit = int

type t = {
  fanin0 : int Vec.t; (* AND: fanin edge; input: -1; const: -2 *)
  fanin1 : int Vec.t; (* AND: fanin edge; input: variable id; const: -2 *)
  strash : (int * int, int) Hashtbl.t;
  input_of_var : int Vec.t; (* var -> node index, -1 if absent *)
  mutable num_inputs : int;
  mutable node_limit : int; (* max_int = unlimited *)
}

let false_ = 0
let true_ = 1

(* process-wide series across all managers (compaction and FRAIG replace
   the manager; the counters keep accumulating) *)
let c_strash_hits = Obs.Metrics.counter "aig.strash_hits"
let c_strash_misses = Obs.Metrics.counter "aig.strash_misses"
let c_nodes_alloc = Obs.Metrics.counter "aig.nodes_alloc"

let create ?node_limit () =
  let m =
    {
      fanin0 = Vec.create ~dummy:min_int ();
      fanin1 = Vec.create ~dummy:min_int ();
      strash = Hashtbl.create 1024;
      input_of_var = Vec.create ~dummy:(-1) ();
      num_inputs = 0;
      node_limit = (match node_limit with None -> max_int | Some n -> n);
    }
  in
  (* node 0: constant false *)
  Vec.push m.fanin0 (-2);
  Vec.push m.fanin1 (-2);
  m

let set_node_limit m limit =
  m.node_limit <- (match limit with None -> max_int | Some n -> n)

let num_nodes m = Vec.size m.fanin0
let num_ands m = num_nodes m - m.num_inputs - 1
let num_inputs m = m.num_inputs

let compl_ l = l lxor 1
let apply_sign l ~neg = if neg then compl_ l else l
let node_of l = l lsr 1
let is_compl l = l land 1 = 1
let is_const l = node_of l = 0
let is_true l = l = true_
let is_false l = l = false_

let node_is_input m n = n > 0 && Vec.get m.fanin0 n = -1
let node_is_and m n = n > 0 && Vec.get m.fanin0 n >= 0
let is_input m l = node_is_input m (node_of l)
let is_and m l = node_is_and m (node_of l)

let var_of_input m l =
  let n = node_of l in
  if not (node_is_input m n) then invalid_arg "Aig.var_of_input";
  Vec.get m.fanin1 n

let fanins m l =
  let n = node_of l in
  if not (node_is_and m n) then invalid_arg "Aig.fanins";
  (Vec.get m.fanin0 n, Vec.get m.fanin1 n)

let alloc_node m f0 f1 =
  if num_nodes m >= m.node_limit then raise Budget.Out_of_memory_budget;
  let n = num_nodes m in
  Vec.push m.fanin0 f0;
  Vec.push m.fanin1 f1;
  Obs.Metrics.incr c_nodes_alloc;
  n

let input m v =
  if v < 0 then invalid_arg "Aig.input: negative variable";
  Vec.grow_to m.input_of_var (v + 1) (-1);
  let existing = Vec.get m.input_of_var v in
  if existing >= 0 then existing * 2
  else begin
    let n = alloc_node m (-1) v in
    Vec.set m.input_of_var v n;
    m.num_inputs <- m.num_inputs + 1;
    n * 2
  end

let mk_and m a b =
  if a = false_ || b = false_ then false_
  else if a = true_ then b
  else if b = true_ then a
  else if a = b then a
  else if a = compl_ b then false_
  else begin
    let a, b = if a <= b then (a, b) else (b, a) in
    match Hashtbl.find_opt m.strash (a, b) with
    | Some n ->
        Obs.Metrics.incr c_strash_hits;
        n * 2
    | None ->
        Obs.Metrics.incr c_strash_misses;
        let n = alloc_node m a b in
        Hashtbl.add m.strash (a, b) n;
        n * 2
  end

let mk_or m a b = compl_ (mk_and m (compl_ a) (compl_ b))
let mk_implies m a b = mk_or m (compl_ a) b

let mk_xor m a b =
  (* (a and not b) or (not a and b) *)
  mk_or m (mk_and m a (compl_ b)) (mk_and m (compl_ a) b)

let mk_iff m a b = compl_ (mk_xor m a b)
let mk_ite m c a b = mk_or m (mk_and m c a) (mk_and m (compl_ c) b)

(* balanced reduction keeps cone depth logarithmic in the list length *)
let balanced_reduce op neutral = function
  | [] -> neutral
  | l ->
      let arr = ref (Array.of_list l) in
      while Array.length !arr > 1 do
        let a = !arr in
        let n = Array.length a in
        let next = Array.make ((n + 1) / 2) neutral in
        for i = 0 to (n / 2) - 1 do
          next.(i) <- op a.(2 * i) a.((2 * i) + 1)
        done;
        if n land 1 = 1 then next.((n - 1) / 2) <- a.(n - 1);
        arr := next
      done;
      !arr.(0)

let mk_and_list m l = balanced_reduce (mk_and m) true_ l
let mk_or_list m l = balanced_reduce (mk_or m) false_ l

(* ------------------------------------------------------------- traversal *)

let iter_cone m roots f =
  let visited = Hashtbl.create 256 in
  let stack = Stack.create () in
  List.iter (fun r -> Stack.push (node_of r, false) stack) roots;
  while not (Stack.is_empty stack) do
    let n, expanded = Stack.pop stack in
    if expanded then f n
    else if not (Hashtbl.mem visited n) then begin
      Hashtbl.add visited n ();
      Stack.push (n, true) stack;
      if node_is_and m n then begin
        Stack.push (node_of (Vec.get m.fanin0 n), false) stack;
        Stack.push (node_of (Vec.get m.fanin1 n), false) stack
      end
    end
  done

let support m root =
  let acc = ref Bitset.empty in
  iter_cone m [ root ] (fun n -> if node_is_input m n then acc := Bitset.add (Vec.get m.fanin1 n) !acc);
  !acc

let cone_size m root =
  let count = ref 0 in
  iter_cone m [ root ] (fun n -> if node_is_and m n then incr count);
  !count

(* generic bottom-up evaluation over the cone; [leaf] gives input values *)
let eval_gen (type a) m root ~(leaf : int -> a) ~(band : a -> a -> a) ~(bnot : a -> a)
    ~(bfalse : a) : a =
  let table : (int, a) Hashtbl.t = Hashtbl.create 256 in
  let get edge =
    let v = Hashtbl.find table (node_of edge) in
    if is_compl edge then bnot v else v
  in
  iter_cone m [ root ] (fun n ->
      let v =
        if n = 0 then bfalse
        else if node_is_input m n then leaf (Vec.get m.fanin1 n)
        else band (get (Vec.get m.fanin0 n)) (get (Vec.get m.fanin1 n))
      in
      Hashtbl.replace table n v);
  get root

let eval m root assignment =
  eval_gen m root ~leaf:assignment ~band:( && ) ~bnot:not ~bfalse:false

let sim_words m root var_word =
  eval_gen m root ~leaf:var_word ~band:( land ) ~bnot:lnot ~bfalse:0

(* --------------------------------------------------------- substitutions *)

let compose m root subst =
  let table = Hashtbl.create 256 in
  let get edge =
    let v = Hashtbl.find table (node_of edge) in
    if is_compl edge then compl_ v else v
  in
  iter_cone m [ root ] (fun n ->
      let v =
        if n = 0 then false_
        else if node_is_input m n then begin
          match subst (Vec.get m.fanin1 n) with Some f -> f | None -> n * 2
        end
        else mk_and m (get (Vec.get m.fanin0 n)) (get (Vec.get m.fanin1 n))
      in
      Hashtbl.replace table n v);
  get root

let cofactor m root ~var ~value =
  let c = if value then true_ else false_ in
  compose m root (fun v -> if v = var then Some c else None)

let exists m root ~var =
  mk_or m (cofactor m root ~var ~value:false) (cofactor m root ~var ~value:true)

let forall m root ~var =
  mk_and m (cofactor m root ~var ~value:false) (cofactor m root ~var ~value:true)

let compact m roots =
  let fresh =
    create
      ?node_limit:(if m.node_limit = max_int then None else Some m.node_limit)
      ()
  in
  let table = Hashtbl.create 256 in
  let get edge =
    let v = Hashtbl.find table (node_of edge) in
    if is_compl edge then compl_ v else v
  in
  iter_cone m roots (fun n ->
      let v =
        if n = 0 then false_
        else if node_is_input m n then input fresh (Vec.get m.fanin1 n)
        else mk_and fresh (get (Vec.get m.fanin0 n)) (get (Vec.get m.fanin1 n))
      in
      Hashtbl.replace table n v);
  (fresh, List.map get roots)

let node_limit m = if m.node_limit = max_int then None else Some m.node_limit

(* ----------------------------------------------------------- introspection *)

module Internal = struct
  let raw_fanin0 m n = Vec.get m.fanin0 n
  let raw_fanin1 m n = Vec.get m.fanin1 n
  let strash_find m a b = Hashtbl.find_opt m.strash (a, b)
  let strash_iter m f = Hashtbl.iter (fun (a, b) n -> f a b n) m.strash
  let strash_size m = Hashtbl.length m.strash
  let input_vars_size m = Vec.size m.input_of_var

  let input_node_of_var m v =
    if v >= 0 && v < Vec.size m.input_of_var then Vec.get m.input_of_var v else -1

  let set_fanin m ~node ~f0 ~f1 =
    Vec.set m.fanin0 node f0;
    Vec.set m.fanin1 node f1

  let strash_add m a b n = Hashtbl.add m.strash (a, b) n
  let strash_remove m a b = Hashtbl.remove m.strash (a, b)
end

let and_conjuncts m root =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec walk l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.add seen l ();
      if (not (is_compl l)) && node_is_and m (node_of l) then begin
        let e0, e1 = fanins m l in
        walk e0;
        walk e1
      end
      else acc := l :: !acc
    end
  in
  walk root;
  List.rev !acc

let or_disjuncts m root = List.map compl_ (and_conjuncts m (compl_ root))
