(** And-Inverter Graphs with structural hashing.

    Nodes are two-input AND gates or inputs; edges carry a complement bit.
    An edge (literal) is an int: [2*node + complement]. Node 0 is the
    constant-false node, so literal 0 is [false] and literal 1 is [true].
    Inputs are labelled with external variable ids (the DQBF/QBF variables),
    which survive compaction and FRAIG reduction.

    The manager optionally enforces a node budget; exceeding it raises
    {!Hqs_util.Budget.Out_of_memory_budget}, which the benchmark harness
    reports as a memout (the paper's 8 GB cap). *)

type t
type lit = int

val false_ : lit
val true_ : lit

val create : ?node_limit:int -> unit -> t

val num_nodes : t -> int
(** Total nodes allocated (including constant and inputs). *)

val num_ands : t -> int
val num_inputs : t -> int

(* ------------------------------------------------------------ literals *)

val compl_ : lit -> lit
(** Complement an edge. *)

val apply_sign : lit -> neg:bool -> lit
val node_of : lit -> int
val is_compl : lit -> bool
val is_const : lit -> bool
val is_true : lit -> bool
val is_false : lit -> bool
val is_input : t -> lit -> bool
val is_and : t -> lit -> bool

val var_of_input : t -> lit -> int
(** Variable id of an input literal (sign ignored).
    @raise Invalid_argument if the node is not an input. *)

val fanins : t -> lit -> lit * lit
(** Fanin edges of an AND node. @raise Invalid_argument otherwise. *)

(* --------------------------------------------------------- construction *)

val input : t -> int -> lit
(** [input m v] returns the (positive) input literal for variable [v],
    creating the input node on first use. *)

val mk_and : t -> lit -> lit -> lit
val mk_or : t -> lit -> lit -> lit
val mk_xor : t -> lit -> lit -> lit
val mk_iff : t -> lit -> lit -> lit
val mk_implies : t -> lit -> lit -> lit
val mk_ite : t -> lit -> lit -> lit -> lit

val mk_and_list : t -> lit list -> lit
(** Balanced conjunction (keeps the graph shallow). *)

val mk_or_list : t -> lit list -> lit

(* -------------------------------------------------------------- queries *)

val support : t -> lit -> Hqs_util.Bitset.t
(** Set of variable ids the cone of [lit] depends on (syntactically). *)

val cone_size : t -> lit -> int
(** Number of AND nodes in the cone. *)

val eval : t -> lit -> (int -> bool) -> bool
(** Evaluate under a variable assignment. *)

val sim_words : t -> lit -> (int -> int) -> int
(** Bit-parallel evaluation: the assignment maps each variable to a word of
    patterns; returns the word of outputs. *)

val iter_cone : t -> lit list -> (int -> unit) -> unit
(** Apply a function to every node index in the cones of the given roots, in
    topological (fanin-first) order, each node once. *)

(* ------------------------------------------------------- transformations *)

val cofactor : t -> lit -> var:int -> value:bool -> lit
(** Substitute a constant for a variable. *)

val compose : t -> lit -> (int -> lit option) -> lit
(** Simultaneous substitution of input variables by functions. Variables
    mapped to [None] stay. *)

val exists : t -> lit -> var:int -> lit
(** [cofactor 0 OR cofactor 1] — existential quantification. *)

val forall : t -> lit -> var:int -> lit
(** [cofactor 0 AND cofactor 1] — universal quantification. *)

val compact : t -> lit list -> t * lit list
(** Copy the cones of the given roots into a fresh manager (dropping garbage
    nodes); input variable ids are preserved. The new manager inherits the
    node limit. *)

val set_node_limit : t -> int option -> unit

val node_limit : t -> int option
(** Current node budget, if any. *)

val and_conjuncts : t -> lit -> lit list
(** Maximal decomposition of the root as a conjunction: walks the top
    AND-tree through non-complemented edges, returning the deduplicated
    leaves. A literal that is not a plain AND node is returned alone. *)

val or_disjuncts : t -> lit -> lit list
(** Dual decomposition as a disjunction. *)

(* --------------------------------------------------------- introspection *)

(** Raw access to the manager's representation, for the soundness auditor
    ([Check.audit_man]) and for its tests, which seed deliberate corruption.
    Solver code must not use this: the mutators can break every invariant
    the rest of the module relies on. *)
module Internal : sig
  val raw_fanin0 : t -> int -> int
  (** Raw fanin-0 slot of a node: an edge for AND nodes, [-1] for inputs,
      [-2] for the constant node. *)

  val raw_fanin1 : t -> int -> int
  (** Raw fanin-1 slot: an edge for AND nodes, the variable label for
      inputs, [-2] for the constant node. *)

  val strash_find : t -> int -> int -> int option
  (** Structural-hash lookup of an ordered fanin pair. *)

  val strash_iter : t -> (int -> int -> int -> unit) -> unit
  (** Iterate every structural-hash binding as [f fanin0 fanin1 node],
      including shadowed duplicate bindings. *)

  val strash_size : t -> int
  val input_vars_size : t -> int

  val input_node_of_var : t -> int -> int
  (** Node index registered for a variable, [-1] if absent. *)

  val set_fanin : t -> node:int -> f0:int -> f1:int -> unit
  (** Corruption hook: overwrite both fanin slots of a node. *)

  val strash_add : t -> int -> int -> int -> unit
  (** Corruption hook: add a (possibly bogus) structural-hash binding. *)

  val strash_remove : t -> int -> int -> unit
  (** Corruption hook: drop the newest binding for a fanin pair. *)
end
