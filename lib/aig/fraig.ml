open Hqs_util
module S = Sat.Solver
module L = Sat.Lit

module Sig_key = struct
  type t = int array

  let equal (a : t) (b : t) =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec loop i = i >= n || (a.(i) = b.(i) && loop (i + 1)) in
    loop 0

  (* explicit word mix: this is the class-candidate hot path, and unlike
     Hashtbl.hash it never truncates to a meaningful-word prefix *)
  let hash (s : t) =
    Array.fold_left (fun h w -> ((h * 486187739) + (w lxor (w lsr 31))) land max_int) 17 s
end

module Sig_tbl = Hashtbl.Make (Sig_key)

(* A simulation signature: [base_words] words of random patterns plus one
   word of counterexample patterns. Signatures are normalized so bit 0 of
   word 0 is clear; [normalize] reports whether it complemented. *)
let normalize s =
  if s.(0) land 1 = 1 then (Array.map lnot s, true) else (s, false)

let c_sim_rounds = Obs.Metrics.counter "fraig.sim_rounds"
let c_merges = Obs.Metrics.counter "fraig.merges"
let c_sat_checks = Obs.Metrics.counter "fraig.sat_checks"
let c_cex = Obs.Metrics.counter "fraig.cex"

let reduce ?(seed = 0x51) ?(base_words = 6) ?(conflict_limit = 150) ?(max_candidates = 3)
    ?(max_sat_checks = 1500) ?(budget = Budget.unlimited) man roots =
  Obs.Span.with_ "fraig.reduce" ~attrs:[ ("nodes", Obs.Int (Man.num_nodes man)) ]
  @@ fun () ->
  Obs.Metrics.incr c_sim_rounds (* the initial bit-parallel simulation *);
  let sat_checks = ref 0 in
  let words = base_words + 1 in
  let rng = Rng.create seed in
  let out = Man.create ?node_limit:(Man.node_limit man) () in
  (* per-variable random patterns; the last word holds counterexamples *)
  let var_words : (int, int array) Hashtbl.t = Hashtbl.create 64 in
  let word_of_var v =
    match Hashtbl.find_opt var_words v with
    | Some w -> w
    | None ->
        let w = Array.init words (fun i -> if i < base_words then Int64.to_int (Rng.next64 rng) else 0) in
        Hashtbl.add var_words v w;
        w
  in
  (* simulation vectors per [out] node, indexed by node id *)
  let sims : int array Vec.t = Vec.create ~dummy:[||] () in
  let node_sim n = Vec.get sims n in
  let edge_sim e =
    let s = node_sim (Man.node_of e) in
    if Man.is_compl e then Array.map lnot s else Array.copy s
  in
  let record_sim n s = begin
    Vec.grow_to sims (n + 1) [||];
    Vec.set sims n s
  end in
  let compute_sim n =
    if n = 0 then Array.make words 0
    else if Man.is_input out (n * 2) then Array.copy (word_of_var (Man.var_of_input out (n * 2)))
    else begin
      let e0, e1 = Man.fanins out (n * 2) in
      let s0 = node_sim (Man.node_of e0) and s1 = node_sim (Man.node_of e1) in
      Array.init words (fun i ->
          let a = if Man.is_compl e0 then lnot s0.(i) else s0.(i) in
          let b = if Man.is_compl e1 then lnot s1.(i) else s1.(i) in
          a land b)
    end
  in
  let ensure_sim n =
    if n >= Vec.size sims || Array.length (node_sim n) = 0 then record_sim n (compute_sim n)
  in
  (* SAT machinery over [out] *)
  let solver = S.create () in
  let enc = Cnf_enc.create solver in
  let classes : Man.lit list ref Sig_tbl.t = Sig_tbl.create 256 in
  let reps : Man.lit Vec.t = Vec.create ~dummy:0 () in
  let rep_nodes : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let register_rep lit =
    Vec.push reps lit;
    Hashtbl.replace rep_nodes (Man.node_of lit) ();
    let s, flipped = normalize (edge_sim lit) in
    let lit = Man.apply_sign lit ~neg:flipped in
    match Sig_tbl.find_opt classes s with
    | Some l -> l := lit :: !l
    | None -> Sig_tbl.add classes s (ref [ lit ])
  in
  (* counterexample refinement *)
  let pending_cex : (int * bool) list list ref = ref [] in
  let flush_cex () =
    Obs.Metrics.incr c_sim_rounds;
    let patterns = Array.of_list (List.rev !pending_cex) in
    pending_cex := [];
    Hashtbl.iter
      (fun v w ->
        let bits = ref 0 in
        Array.iteri
          (fun i pattern ->
            match List.assoc_opt v pattern with
            | Some true -> bits := !bits lor (1 lsl i)
            | Some false | None -> ())
          patterns;
        w.(words - 1) <- !bits)
      var_words;
    (* re-simulate every node (fanins precede their nodes by construction) *)
    for n = 0 to Man.num_nodes out - 1 do
      record_sim n (compute_sim n)
    done;
    (* rebuild classes from surviving representatives *)
    Sig_tbl.reset classes;
    let old_reps = Vec.to_list reps in
    Vec.clear reps;
    List.iter register_rep old_reps
  in
  let add_cex () =
    (* read input-variable values from the model *)
    let pattern =
      Hashtbl.fold
        (fun v _ acc ->
          let ain = Man.input out v in
          (v, S.lit_value solver (Cnf_enc.sat_lit out enc ain)) :: acc)
        var_words []
    in
    Obs.Metrics.incr c_cex;
    pending_cex := pattern :: !pending_cex;
    if List.length !pending_cex >= Sys.int_size - 2 then flush_cex ()
  in
  (* prove a = b (if [compl_] then a = not b) *)
  let prove_equal a b ~compl_ =
    Budget.check budget;
    incr sat_checks;
    Obs.Metrics.incr c_sat_checks;
    let la = Cnf_enc.sat_lit out enc a in
    let lb = Cnf_enc.sat_lit out enc b in
    let lb = if compl_ then L.neg lb else lb in
    match S.solve ~assumptions:[ la; L.neg lb ] ~budget ~conflict_limit solver with
    | S.Sat ->
        add_cex ();
        false
    | S.Unknown -> false
    | S.Unsat -> (
        match S.solve ~assumptions:[ L.neg la; lb ] ~budget ~conflict_limit solver with
        | S.Sat ->
            add_cex ();
            false
        | S.Unknown -> false
        | S.Unsat -> true)
  in
  (* remember nodes already proven equal to a representative *)
  let merged_to : (int, Man.lit) Hashtbl.t = Hashtbl.create 64 in
  (* map old nodes into [out], merging equivalents *)
  let table : (int, Man.lit) Hashtbl.t = Hashtbl.create 256 in
  let get edge = Man.apply_sign (Hashtbl.find table (Man.node_of edge)) ~neg:(Man.is_compl edge) in
  Man.iter_cone man roots (fun n ->
      let mapped =
        if n = 0 then Man.false_
        else if Man.is_input man (n * 2) then begin
          let lit = Man.input out (Man.var_of_input man (n * 2)) in
          ensure_sim (Man.node_of lit);
          lit
        end
        else begin
          let e0 = get (fst (Man.fanins man (n * 2))) and e1 = get (snd (Man.fanins man (n * 2))) in
          let cand = Man.mk_and out e0 e1 in
          let cnode = Man.node_of cand in
          if Man.is_const cand || Man.is_input out cand || Hashtbl.mem rep_nodes cnode then cand
          else begin
            match Hashtbl.find_opt merged_to cnode with
            | Some rep -> Man.apply_sign rep ~neg:(Man.is_compl cand)
            | None ->
            ensure_sim cnode;
            (* candidate equivalence class lookup *)
            let s, flipped = normalize (edge_sim cand) in
            let cand_n = Man.apply_sign cand ~neg:flipped in
            let merged = ref None in
            (* all-zero signature: try the constant-false proof first *)
            if Array.for_all (fun w -> w = 0) s && !sat_checks < max_sat_checks then begin
              Budget.check budget;
              incr sat_checks;
              Obs.Metrics.incr c_sat_checks;
              let lc = Cnf_enc.sat_lit out enc cand_n in
              match S.solve ~assumptions:[ lc ] ~budget ~conflict_limit solver with
              | S.Unsat -> merged := Some Man.false_
              | S.Sat ->
                  add_cex ();
                  ()
              | S.Unknown -> ()
            end;
            (match Sig_tbl.find_opt classes s with
            | None -> ()
            | Some lst ->
                let checked = ref 0 in
                List.iter
                  (fun rep ->
                    if !merged = None && !checked < max_candidates
                       && !sat_checks < max_sat_checks
                       && Man.node_of rep <> Man.node_of cand_n
                    then begin
                      incr checked;
                      if prove_equal cand_n rep ~compl_:false then merged := Some rep
                    end)
                  !lst);
            match !merged with
            | Some rep ->
                Obs.Metrics.incr c_merges;
                (* cand == rep up to the normalization flip *)
                let res = Man.apply_sign rep ~neg:flipped in
                Hashtbl.replace merged_to cnode (Man.apply_sign res ~neg:(Man.is_compl cand));
                res
            | None ->
                register_rep cand;
                cand
          end
        end
      in
      Hashtbl.replace table n mapped);
  let mapped_roots = List.map get roots in
  let reduced_man, reduced_roots = Man.compact out mapped_roots in
  Obs.Span.event "fraig.done"
    ~attrs:
      [ ("sat_checks", Obs.Int !sat_checks); ("nodes_after", Obs.Int (Man.num_nodes reduced_man)) ]
    ();
  (reduced_man, reduced_roots)
