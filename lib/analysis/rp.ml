(* Reflexive resolution-path dependency scheme over the clause/literal
   incidence graph. See rp.mli for the definitions; the implementation
   notes here cover only the traversal trick.

   Per universal x we run two BFS passes (from x and from ¬x) over
   literals. Visiting a clause through entry variable v may exit through
   any literal of a different variable; exits over a connecting variable
   (an existential that depends on x) enqueue the clauses containing the
   complementary literal. The linear-time device (Slivovsky & Szeider) is
   the per-clause state machine: the first visit expands every literal
   except the entry variable's and records that variable; a later visit
   through a *different* variable releases exactly the recorded one and
   completes the clause. Every clause is therefore expanded at most
   twice, and each literal occurrence is scanned O(1) times per pass. *)

open Hqs_util
module Pcnf = Dqbf.Pcnf

type refinement = { var : int; before : int list; after : int list }

type report = {
  scheme : Scheme.t;
  universals : int;
  existentials : int;
  clause_count : int;
  edges_before : int;
  edges_after : int;
  pruned : (int * int) list;
  refinements : refinement list;
  incomparable_before : int;
  incomparable_after : int;
  linearized : bool;
}

let c_pruned = Obs.Metrics.counter "analysis.edges_pruned"
let c_linearized = Obs.Metrics.counter "analysis.linearized"

(* count existential pairs whose dependency sets are incomparable under
   inclusion — zero iff the dependency graph is acyclic (Theorem 4), i.e.
   the prefix is linearly orderable *)
let incomparable_count sets =
  let n = Array.length sets in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Bitset.subset sets.(i) sets.(j) || Bitset.subset sets.(j) sets.(i)) then
        incr count
    done
  done;
  !count

let edge_count refinements which =
  List.fold_left (fun acc r -> acc + List.length (which r)) 0 refinements

let report_of_refinements ~scheme ~(pcnf : Pcnf.t) refinements =
  let sets which = Array.of_list (List.map (fun r -> Bitset.of_list (which r)) refinements) in
  let incomparable_before = incomparable_count (sets (fun r -> r.before)) in
  let incomparable_after = incomparable_count (sets (fun r -> r.after)) in
  let pruned =
    List.concat_map
      (fun r ->
        let kept = Bitset.of_list r.after in
        List.filter_map
          (fun x -> if Bitset.mem x kept then None else Some (x, r.var))
          r.before)
      refinements
  in
  {
    scheme;
    universals = List.length pcnf.Pcnf.univs;
    existentials = List.length pcnf.Pcnf.exists;
    clause_count = List.length pcnf.Pcnf.clauses;
    edges_before = edge_count refinements (fun r -> r.before);
    edges_after = edge_count refinements (fun r -> r.after);
    pruned;
    refinements;
    incomparable_before;
    incomparable_after;
    linearized = incomparable_after = 0 && incomparable_before > 0;
  }

let trivial (pcnf : Pcnf.t) =
  let refinements =
    List.map (fun (y, deps) -> { var = y; before = deps; after = deps }) pcnf.Pcnf.exists
  in
  (pcnf, report_of_refinements ~scheme:Scheme.Trivial ~pcnf refinements)

(* clause states for the two-visit traversal *)
let st_unvisited = -1
let st_complete = -2

let resolution_path_refine (pcnf : Pcnf.t) =
  let clauses = Array.of_list (List.map Array.of_list pcnf.Pcnf.clauses) in
  let ncl = Array.length clauses in
  (* be robust to out-of-range literals: size the tables to what the
     matrix actually mentions *)
  let n =
    Array.fold_left
      (fun m c -> Array.fold_left (fun m l -> max m (abs l)) m c)
      pcnf.Pcnf.num_vars clauses
  in
  let idx l =
    let v = abs l - 1 in
    if l > 0 then 2 * v else (2 * v) + 1
  in
  let occ = Array.make (2 * n) [] in
  Array.iteri
    (fun ci c -> Array.iter (fun l -> occ.(idx l) <- ci :: occ.(idx l)) c)
    clauses;
  let dep = Array.make n Bitset.empty in
  List.iter (fun (y, deps) -> if y < n then dep.(y) <- Bitset.of_list deps) pcnf.Pcnf.exists;
  (* universals mentioned in no dependency set have nothing to prune *)
  let mentioned =
    List.fold_left
      (fun acc (_, deps) -> List.fold_left (fun a x -> Bitset.add x a) acc deps)
      Bitset.empty pcnf.Pcnf.exists
  in
  let pruned_edges : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let edge_key x y = (x * n) + y in
  let analyze_universal x =
    (* reachable literals from [start] along resolution paths whose
       connecting variables all depend on x *)
    let bfs start =
      let reached = Array.make (2 * n) false in
      let state = Array.make ncl st_unvisited in
      let queue = Queue.create () in
      let expand l =
        let li = idx l in
        if not reached.(li) then begin
          reached.(li) <- true;
          let v = abs l - 1 in
          if Bitset.mem x dep.(v) then
            List.iter (fun ci -> Queue.push (ci, v) queue) occ.(idx (-l))
        end
      in
      List.iter (fun ci -> Queue.push (ci, x) queue) occ.(idx start);
      while not (Queue.is_empty queue) do
        let ci, via = Queue.pop queue in
        let s = state.(ci) in
        if s = st_unvisited then begin
          state.(ci) <- via;
          Array.iter (fun l -> if abs l - 1 <> via then expand l) clauses.(ci)
        end
        else if s <> st_complete && s <> via then begin
          (* second entry through a different variable releases exactly
             the literal skipped on the first visit *)
          state.(ci) <- st_complete;
          Array.iter (fun l -> if abs l - 1 = s then expand l) clauses.(ci)
        end
      done;
      reached
    in
    let from_pos = bfs (x + 1) and from_neg = bfs (-(x + 1)) in
    List.iter
      (fun (y, deps) ->
        if List.exists (fun d -> d = x) deps then begin
          let yp = 2 * y and yn = (2 * y) + 1 in
          let connected =
            (from_pos.(yp) && from_neg.(yn)) || (from_pos.(yn) && from_neg.(yp))
          in
          if not connected then Hashtbl.replace pruned_edges (edge_key x y) ()
        end)
      pcnf.Pcnf.exists
  in
  List.iter (fun x -> if Bitset.mem x mentioned then analyze_universal x) pcnf.Pcnf.univs;
  let refinements =
    List.map
      (fun (y, deps) ->
        let after = List.filter (fun x -> not (Hashtbl.mem pruned_edges (edge_key x y))) deps in
        { var = y; before = deps; after })
      pcnf.Pcnf.exists
  in
  let report = report_of_refinements ~scheme:Scheme.Rp ~pcnf refinements in
  let refined =
    if report.pruned = [] then pcnf
    else { pcnf with Pcnf.exists = List.map (fun r -> (r.var, r.after)) refinements }
  in
  (refined, report)

let analyze ~scheme (pcnf : Pcnf.t) =
  match scheme with
  | Scheme.Trivial -> trivial pcnf
  | Scheme.Rp ->
      Obs.Span.with_ "analysis.rp"
        ~attrs:
          [
            ("vars", Obs.Int pcnf.Pcnf.num_vars);
            ("clauses", Obs.Int (List.length pcnf.Pcnf.clauses));
            ("universals", Obs.Int (List.length pcnf.Pcnf.univs));
          ]
      @@ fun () ->
      let refined, report = resolution_path_refine pcnf in
      Obs.Metrics.incr c_pruned ~by:(List.length report.pruned);
      if report.linearized then Obs.Metrics.incr c_linearized;
      Obs.Span.event "analysis.refined"
        ~attrs:
          [
            ("pruned", Obs.Int (List.length report.pruned));
            ("linearized", Obs.Bool report.linearized);
          ]
        ();
      (refined, report)

let pp_report fmt r =
  let dimacs v = v + 1 in
  let ids l = String.concat " " (List.map (fun v -> string_of_int (dimacs v)) l) in
  Format.fprintf fmt "c analysis scheme=%s@." (Scheme.name r.scheme);
  Format.fprintf fmt "c analysis universals=%d existentials=%d clauses=%d@." r.universals
    r.existentials r.clause_count;
  Format.fprintf fmt "c analysis dependency-edges %d -> %d (%d pruned)@." r.edges_before
    r.edges_after
    (r.edges_before - r.edges_after);
  Format.fprintf fmt "c analysis incomparable-pairs %d -> %d@." r.incomparable_before
    r.incomparable_after;
  List.iter
    (fun { var; before; after } ->
      if List.length after = List.length before then
        Format.fprintf fmt "v %d  deps {%s}  (unchanged)@." (dimacs var) (ids before)
      else
        let kept = Bitset.of_list after in
        let dropped = List.filter (fun x -> not (Bitset.mem x kept)) before in
        Format.fprintf fmt "v %d  deps {%s} -> {%s}  (pruned: %s)@." (dimacs var) (ids before)
          (ids after) (ids dropped))
    r.refinements;
  Format.fprintf fmt "s analysis pruned=%d linearized=%s@."
    (r.edges_before - r.edges_after)
    (if r.linearized then "yes" else "no")
