type t = Trivial | Rp

let default = Rp
let name = function Trivial -> "trivial" | Rp -> "rp"

let of_string = function
  | "trivial" -> Some Trivial
  | "rp" -> Some Rp
  | _ -> None

let of_env () =
  match Sys.getenv_opt "HQS_DEP_SCHEME" with
  | None | Some "" -> Ok default
  | Some s -> (
      match of_string s with
      | Some scheme -> Ok scheme
      | None ->
          Error (Printf.sprintf "HQS_DEP_SCHEME=%S: expected \"trivial\" or \"rp\"" s))
