(** Dependency-scheme selection for the static analyzer ({!Rp}).

    A dependency scheme maps a DQBF prefix to a refined prefix whose
    dependency sets are subsets of the declared ones while preserving
    satisfiability:
    - [Trivial] — the identity scheme: keep the prefix exactly as written;
    - [Rp] — the reflexive resolution-path scheme (Slivovsky & Szeider):
      drop [x] from [dep(y)] when no pair of resolution paths connects
      [x]/[y] in both polarities.

    The solver default is [Rp], overridable per solve with
    [--dep-scheme] or the [HQS_DEP_SCHEME] environment variable. *)

type t = Trivial | Rp

val default : t
(** [Rp]. *)

val name : t -> string
(** ["trivial"] / ["rp"]. *)

val of_string : string -> t option
(** Inverse of {!name}; [None] on anything else. *)

val of_env : unit -> (t, string) result
(** Parse the [HQS_DEP_SCHEME] environment variable; unset or empty is
    [Ok default], an unknown value is [Error] with a usable message. *)
