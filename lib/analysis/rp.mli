(** Static dependency-scheme analysis on the prefixed CNF, before any AIG
    is built: compute the reflexive resolution-path dependency scheme
    (Slivovsky & Szeider, "Computing Resolution-Path Dependencies in
    Linear Time") and refine the declared dependency sets.

    A resolution path from literal [l] to literal [l'] is a clause walk
    [C_1, ..., C_k] with [l ∈ C_1], [l' ∈ C_k], consecutive clauses
    connected through complementary literals of a {e connecting}
    existential variable, and every clause entered and exited through
    different variables. For a universal [x], the connecting variables are
    the existentials that (still) depend on [x] — including the endpoint
    itself, which is what makes the scheme {e reflexive} and sound for
    DQBF prefixes. The declared dependency [x ∈ dep(y)] is kept iff the
    matrix contains a polarity-consistent pair of paths:
    [(x ⇝ y ∧ ¬x ⇝ ¬y) ∨ (x ⇝ ¬y ∧ ¬x ⇝ y)]; otherwise no Skolem
    function for [y] can be forced to read [x] and the edge is pruned.

    The reachability sweep runs two BFS passes per universal over the
    clause/literal incidence graph; a clause is expanded at most twice
    (first entry expands every exit variable but the entry variable, a
    second entry through a different variable releases the one skipped
    literal), so each pass is linear in the formula size.

    Pruned prefixes only shrink: every refined dependency set is a subset
    of the declared one, so downstream universal reduction, MaxSAT
    elimination-set selection and linearization all operate on a smaller
    dependency graph — and a prefix whose refined sets are pairwise
    comparable ({!report.linearized}) skips universal expansion entirely. *)

type refinement = {
  var : int;  (** 0-based existential variable *)
  before : int list;  (** declared dependency set, declaration order *)
  after : int list;  (** refined dependency set (a subset of [before]) *)
}

type report = {
  scheme : Scheme.t;
  universals : int;
  existentials : int;  (** declared existentials (undeclared ones have no edges) *)
  clause_count : int;
  edges_before : int;  (** total declared dependency edges *)
  edges_after : int;
  pruned : (int * int) list;
      (** pruned edges [(x, y)] — universal [x] dropped from [dep(y)];
          ordered by existential declaration, then dependency order *)
  refinements : refinement list;  (** declared existentials, declaration order *)
  incomparable_before : int;  (** existential pairs with incomparable dependency sets *)
  incomparable_after : int;
  linearized : bool;
      (** the refined dependency graph is linearly orderable (zero
          incomparable pairs) while the declared one was not — the solve
          can skip universal expansion outright *)
}

val analyze : scheme:Scheme.t -> Dqbf.Pcnf.t -> Dqbf.Pcnf.t * report
(** Refine the prefix under [scheme]. [Trivial] returns the input
    unchanged (with an identity report); [Rp] returns a copy whose
    [exists] dependency lists are filtered to the resolution-path
    dependencies. Clauses, variable numbering and declaration order are
    untouched. Runs under an ["analysis.rp"] span and bumps the
    ["analysis.edges_pruned"] / ["analysis.linearized"] counters. *)

val pp_report : Format.formatter -> report -> unit
(** The per-variable refinement report printed by [hqs analyze]: header
    [c analysis ...] lines, one [v ...] line per declared existential
    (DIMACS 1-based ids), and a final machine-greppable
    [s analysis pruned=N linearized=yes|no] line. *)
