open Hqs_util
module M = Aig.Man

type t = { sman : M.t; defs : (int, M.lit) Hashtbl.t }

let create () = { sman = M.create (); defs = Hashtbl.create 32 }
let man t = t.sman
let define t y fn = Hashtbl.replace t.defs y fn
let find t y = Hashtbl.find_opt t.defs y

let bindings t =
  Hashtbl.fold (fun y fn acc -> (y, fn) :: acc) t.defs [] |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let eval t y env =
  match find t y with
  | None -> raise Not_found
  | Some fn -> M.eval t.sman fn env

let restrict t ~keep =
  let out = { sman = t.sman; defs = Hashtbl.create 32 } in
  Hashtbl.iter (fun y fn -> if keep y then Hashtbl.replace out.defs y fn) t.defs;
  out

type failure = Missing of int | Bad_support of int * int | Not_tautology

let pp_failure fmt = function
  | Missing y -> Format.fprintf fmt "existential %d has no Skolem function" y
  | Bad_support (y, x) ->
      Format.fprintf fmt "Skolem function of %d depends on %d outside its dependency set" y x
  | Not_tautology -> Format.fprintf fmt "substituted matrix is not a tautology"

(* copy a cone between managers, preserving input variable ids *)
let import src root dst =
  let table = Hashtbl.create 256 in
  let get e = M.apply_sign (Hashtbl.find table (M.node_of e)) ~neg:(M.is_compl e) in
  M.iter_cone src [ root ] (fun n ->
      let v =
        if n = 0 then M.false_
        else if M.is_input src (n * 2) then M.input dst (M.var_of_input src (n * 2))
        else begin
          let e0, e1 = M.fanins src (n * 2) in
          M.mk_and dst (get e0) (get e1)
        end
      in
      Hashtbl.replace table n v);
  get root

let verify ?(budget = Budget.unlimited) f model =
  let exception Fail of failure in
  try
    (* 1. every existential defined, with legal support *)
    List.iter
      (fun (y, deps) ->
        match find model y with
        | None -> raise (Fail (Missing y))
        | Some fn ->
            let sup = M.support model.sman fn in
            Bitset.iter
              (fun x -> if not (Bitset.mem x deps) then raise (Fail (Bad_support (y, x))))
              sup)
      (Formula.existentials f);
    (* 2. matrix[s_y / y] is a tautology *)
    let work = M.create () in
    let matrix = import (Formula.man f) (Formula.matrix f) work in
    let subst v =
      if Formula.is_existential f v then
        match find model v with Some fn -> Some (import model.sman fn work) | None -> None
      else None
    in
    let substituted = M.compose work matrix subst in
    if M.is_true substituted then Ok ()
    else if M.is_false substituted then Error Not_tautology
    else begin
      let solver = Sat.Solver.create () in
      let enc = Aig.Cnf_enc.create solver in
      let out = Aig.Cnf_enc.sat_lit work enc substituted in
      Sat.Solver.add_clause solver [ Sat.Lit.neg out ];
      match Sat.Solver.solve ~budget solver with
      | Sat.Solver.Unsat -> Ok ()
      | Sat.Solver.Sat -> Error Not_tautology
      | Sat.Solver.Unknown -> assert false
    end
  with Fail failure -> Error failure
