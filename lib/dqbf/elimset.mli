(** Minimum universal-elimination set via partial MaxSAT (Section III-A,
    Equations 1-2 of the paper).

    For every pair of existentials with incomparable dependency sets, a
    hard constraint demands that one of the two set differences be
    entirely eliminated; a soft unit clause per {e relevant} universal
    variable (one occurring in some difference set — the others can never
    enter an optimal solution) asks it to be kept. The MaxSAT optimum is
    a minimum set of universal variables whose elimination makes the
    dependency graph acyclic. Refining the prefix first with the static
    dependency-scheme analyzer ([lib/analysis]) shrinks the difference
    sets, hence both the MaxSAT instance and its optimum. *)

val minimum_set : ?budget:Hqs_util.Budget.t -> Formula.t -> int list
(** Universal variables to eliminate (unordered). Empty when the formula
    is already QBF-expressible. *)

val elimination_count : Formula.t -> int -> int
(** |E_x|: the number of existentials depending on [x] — the number of
    variable copies Theorem 1 would introduce. *)

val ordered_queue : Formula.t -> int list -> int list
(** Order an elimination set by ascending |E_x| (cheapest first), as the
    paper does. *)

val greedy_all : Formula.t -> int list
(** Baseline strategy of Gitina et al. 2013 ([10]): every universal
    variable that occurs in some incomparable pair's difference — no
    MaxSAT minimization. Used for the ablation benchmark. *)
