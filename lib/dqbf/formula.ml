open Hqs_util
module M = Aig.Man

type t = {
  mutable man : M.t;
  mutable matrix : M.lit;
  mutable univs : Bitset.t;
  dep_tbl : (int, Bitset.t) Hashtbl.t;
  mutable next_var : int;
}

let create ?node_limit () =
  {
    man = M.create ?node_limit ();
    matrix = M.true_;
    univs = Bitset.empty;
    dep_tbl = Hashtbl.create 64;
    next_var = 0;
  }

let man t = t.man
let matrix t = t.matrix
let set_matrix t m = t.matrix <- m

let replace_man t man matrix =
  t.man <- man;
  t.matrix <- matrix

let bump t v = if v >= t.next_var then t.next_var <- v + 1

let is_universal t v = Bitset.mem v t.univs
let is_existential t v = Hashtbl.mem t.dep_tbl v

let add_universal t v =
  if is_universal t v || is_existential t v then
    invalid_arg "Dqbf.Formula.add_universal: variable already quantified";
  t.univs <- Bitset.add v t.univs;
  bump t v

let add_existential t v ~deps =
  if is_universal t v || is_existential t v then
    invalid_arg "Dqbf.Formula.add_existential: variable already quantified";
  if not (Bitset.subset deps t.univs) then
    invalid_arg "Dqbf.Formula.add_existential: dependency is not universal";
  Hashtbl.replace t.dep_tbl v deps;
  bump t v

let fresh_var t =
  let v = t.next_var in
  t.next_var <- v + 1;
  v

let next_var t = t.next_var

let universals t = t.univs
let num_universals t = Bitset.cardinal t.univs

let deps t v =
  match Hashtbl.find_opt t.dep_tbl v with
  | Some d -> d
  | None -> raise Not_found

let set_deps t v d =
  if not (Hashtbl.mem t.dep_tbl v) then invalid_arg "Dqbf.Formula.set_deps";
  Hashtbl.replace t.dep_tbl v d

let existentials t =
  Hashtbl.fold (fun v d acc -> (v, d) :: acc) t.dep_tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let num_existentials t = Hashtbl.length t.dep_tbl

let remove_universal t v =
  t.univs <- Bitset.remove v t.univs;
  Hashtbl.iter (fun y d -> if Bitset.mem v d then Hashtbl.replace t.dep_tbl y (Bitset.remove v d)) t.dep_tbl

let remove_existential t v = Hashtbl.remove t.dep_tbl v
let input t v = M.input t.man v

let copy t =
  let man, roots = M.compact t.man [ t.matrix ] in
  let dep_tbl = Hashtbl.copy t.dep_tbl in
  {
    man;
    matrix = (match roots with [ r ] -> r | _ -> assert false);
    univs = t.univs;
    dep_tbl;
    next_var = t.next_var;
  }

let pp fmt t =
  Format.fprintf fmt "forall %a.@ " Bitset.pp t.univs;
  List.iter (fun (y, d) -> Format.fprintf fmt "exists %d(%a).@ " y Bitset.pp d) (existentials t);
  Format.fprintf fmt "<matrix: %d ands>" (M.cone_size t.man t.matrix)
