open Hqs_util
module L = Sat.Lit
module M = Aig.Man

type stats = { units : int; reduced_lits : int; equivs : int; gates : int; blocked : int }

type config = {
  unit_propagation : bool;
  universal_reduction : bool;
  equivalences : bool;
  gate_detection : bool;
  blocked_clauses : bool;
  inproc : Inproc.mode;
}

let default_config =
  {
    unit_propagation = true;
    universal_reduction = true;
    equivalences = true;
    gate_detection = true;
    blocked_clauses = false;
    inproc = Inproc.default_mode;
  }

let off =
  {
    unit_propagation = false;
    universal_reduction = false;
    equivalences = false;
    gate_detection = false;
    blocked_clauses = false;
    inproc = Inproc.Off;
  }

type outcome = Unsat | Formula of Formula.t * stats

exception Refuted

(* the stats record predates the metrics registry; publish the counters
   so --metrics and the CSV metric columns see preprocessing activity *)
let c_units = Obs.Metrics.counter "preprocess.units"
let c_reduced_lits = Obs.Metrics.counter "preprocess.reduced_lits"
let c_equivs = Obs.Metrics.counter "preprocess.equivs"
let c_gates = Obs.Metrics.counter "preprocess.gates"
let c_blocked = Obs.Metrics.counter "preprocess.blocked"

(* working state; literals use the MiniSat encoding of {!Sat.Lit} *)
type state = {
  trail : Model_trail.t option;
  mutable univs : Bitset.t;
  deps : (int, Bitset.t) Hashtbl.t; (* existential -> dependency set *)
  mutable clauses : int list list;
  mutable units : int;
  mutable reduced_lits : int;
  mutable equivs : int;
  mutable gates : int;
  mutable blocked : int;
}

let is_univ st v = Bitset.mem v st.univs
let is_exist st v = Hashtbl.mem st.deps v

(* --------------------------------------------------------- normalization *)

(* sort, dedupe, detect tautologies (returns None) and empty clauses *)
let normalize_clause clause =
  let sorted = List.sort_uniq Int.compare clause in
  let rec taut = function
    | a :: (b :: _ as rest) -> (L.var a = L.var b && a <> b) || taut rest
    | [ _ ] | [] -> false
  in
  if taut sorted then None else Some sorted

(* ------------------------------------------------------------ unit facts *)

let apply_assignment st v value =
  if is_exist st v then
    Option.iter (fun trail -> Model_trail.record_const trail v value) st.trail;
  let true_lit = L.mk v ~neg:(not value) in
  let false_lit = L.neg true_lit in
  st.clauses <-
    List.filter_map
      (fun clause ->
        if List.mem true_lit clause then None
        else Some (List.filter (fun l -> l <> false_lit) clause))
      st.clauses;
  if is_exist st v then Hashtbl.remove st.deps v
  else st.univs <- Bitset.remove v st.univs

(* -------------------------------------------------------------- one pass *)

let universal_reduction st clause =
  let needed u =
    List.exists
      (fun l ->
        let y = L.var l in
        is_exist st y && Bitset.mem u (Hashtbl.find st.deps y))
      clause
  in
  let kept, dropped =
    List.partition (fun l -> (not (is_univ st (L.var l))) || needed (L.var l)) clause
  in
  st.reduced_lits <- st.reduced_lits + List.length dropped;
  (kept, dropped <> [])

(* union-find over variables with parity: var ~ rep xor parity *)
type uf = { parent : (int, int) Hashtbl.t; parity : (int, bool) Hashtbl.t }

let uf_create () = { parent = Hashtbl.create 64; parity = Hashtbl.create 64 }

let rec uf_find uf v =
  match Hashtbl.find_opt uf.parent v with
  | None -> (v, false)
  | Some p ->
      let root, par_p = uf_find uf p in
      let par_v = Hashtbl.find uf.parity v <> par_p in
      Hashtbl.replace uf.parent v root;
      Hashtbl.replace uf.parity v par_v;
      (root, par_v)

(* declare v ~ w with the given relative parity; false = contradiction *)
let uf_union uf v w ~opposite =
  let rv, pv = uf_find uf v and rw, pw = uf_find uf w in
  if rv = rw then pv <> pw = opposite
  else begin
    (* attach rv under rw *)
    Hashtbl.replace uf.parent rv rw;
    Hashtbl.replace uf.parity rv (pv <> pw <> opposite);
    true
  end

let find_equivalences st =
  (* binary clauses (a|b) and (!a|!b) together force a = !b *)
  let binaries = Hashtbl.create 64 in
  List.iter
    (fun clause ->
      match clause with
      | [ a; b ] -> Hashtbl.replace binaries (min a b, max a b) ()
      | _ -> ())
    st.clauses;
  let uf = uf_create () in
  let contradictory = ref false in
  Hashtbl.iter
    (fun (a, b) () ->
      let na = L.neg a and nb = L.neg b in
      if Hashtbl.mem binaries (min na nb, max na nb) then begin
        (* a = !b, i.e. var a ~ var b with parity (sign a = sign b) *)
        let opposite = L.is_neg a = L.is_neg b in
        if not (uf_union uf (L.var a) (L.var b) ~opposite) then contradictory := true
      end)
    binaries;
  if !contradictory then raise Refuted;
  uf

let apply_equivalences st uf =
  (* group variables by root *)
  let classes : (int, (int * bool) list ref) Hashtbl.t = Hashtbl.create 64 in
  let vars = Hashtbl.create 64 in
  Hashtbl.iter (fun v _ -> Hashtbl.replace vars v ()) uf.parent;
  Hashtbl.iter
    (fun v () ->
      let root, par = uf_find uf v in
      if root <> v || Hashtbl.mem uf.parent v then begin
        let cell =
          match Hashtbl.find_opt classes root with
          | Some c -> c
          | None ->
              let c = ref [] in
              Hashtbl.add classes root c;
              c
        in
        cell := (v, par) :: !cell
      end)
    vars;
  (* substitution: var -> (rep, parity) *)
  let subst : (int, int * bool) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun root members ->
      let members = !members in
      let members =
        if List.mem_assoc root members then members else (root, false) :: members
      in
      let members = List.filter (fun (v, _) -> is_univ st v || is_exist st v) members in
      match members with
      | [] | [ _ ] -> ()
      | _ ->
          let universals = List.filter (fun (v, _) -> is_univ st v) members in
          (match universals with
          | _ :: _ :: _ -> raise Refuted (* two universals forced equal *)
          | [ (x, px) ] ->
              List.iter
                (fun (y, py) ->
                  if y <> x then begin
                    if not (Bitset.mem x (Hashtbl.find st.deps y)) then raise Refuted;
                    Hashtbl.replace subst y (x, px <> py);
                    Option.iter
                      (fun trail -> Model_trail.record_literal trail y ~var:x ~neg:(px <> py))
                      st.trail;
                    Hashtbl.remove st.deps y;
                    st.equivs <- st.equivs + 1
                  end)
                members
          | [] ->
              (* all existential: representative keeps the dependency
                 intersection *)
              let (rep, prep), rest =
                match members with m :: rest -> (m, rest) | [] -> assert false
              in
              let inter =
                List.fold_left
                  (fun acc (y, _) -> Bitset.inter acc (Hashtbl.find st.deps y))
                  (Hashtbl.find st.deps rep) rest
              in
              Hashtbl.replace st.deps rep inter;
              List.iter
                (fun (y, py) ->
                  Hashtbl.replace subst y (rep, prep <> py);
                  Option.iter
                    (fun trail -> Model_trail.record_literal trail y ~var:rep ~neg:(prep <> py))
                    st.trail;
                  Hashtbl.remove st.deps y;
                  st.equivs <- st.equivs + 1)
                rest))
    classes;
  if Hashtbl.length subst = 0 then false
  else begin
    let map_lit l =
      match Hashtbl.find_opt subst (L.var l) with
      | None -> l
      | Some (rep, opposite) -> L.apply_sign (L.of_var rep) ~neg:(L.is_neg l <> opposite)
    in
    st.clauses <- List.map (List.map map_lit) st.clauses;
    true
  end

(* Blocked clause elimination, lifted to DQBF (Wimmer et al., SAT 2015):
   a clause C is blocked by an existential literal l over y when every
   clause C' containing the complement of l resolves tautologically on a
   variable v whose dependencies are contained in D_y (universal v: v in
   D_y; existential v: D_v subset of D_y). Removing C preserves
   satisfiability: the Skolem function of y can be flipped on the region
   where C would be falsified, and that region is observable from D_y.
   Certification is not supported through this rule, so it is skipped
   when a model trail is attached. *)
let blocked_clause_elimination st =
  let dep_below v y =
    if is_univ st v then Bitset.mem v (Hashtbl.find st.deps y)
    else if is_exist st v then Bitset.subset (Hashtbl.find st.deps v) (Hashtbl.find st.deps y)
    else false
  in
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    (* occurrence index for the current clause set *)
    let occ : (int, int list list ref) Hashtbl.t = Hashtbl.create 256 in
    List.iter
      (fun clause ->
        List.iter
          (fun l ->
            match Hashtbl.find_opt occ l with
            | Some cell -> cell := clause :: !cell
            | None -> Hashtbl.add occ l (ref [ clause ]))
          clause)
      st.clauses;
    let resolves_taut y c c' =
      List.exists
        (fun k -> List.mem (L.neg k) c' && dep_below (L.var k) y)
        c
    in
    let blocked clause =
      List.exists
        (fun l ->
          let y = L.var l in
          is_exist st y
          && begin
               let others = List.filter (fun k -> k <> l) clause in
               let opposed =
                 match Hashtbl.find_opt occ (L.neg l) with Some cell -> !cell | None -> []
               in
               List.for_all (fun c' -> resolves_taut y others c') opposed
             end)
        clause
    in
    let keep, drop = List.partition (fun c -> not (blocked c)) st.clauses in
    if drop <> [] then begin
      st.clauses <- keep;
      st.blocked <- st.blocked + List.length drop;
      changed := true;
      continue_ := true
    end
  done;
  !changed

let pass config st =
  let changed = ref false in
  (* normalize + universal reduction *)
  st.clauses <-
    List.filter_map
      (fun clause ->
        match normalize_clause clause with
        | None ->
            changed := true;
            None
        | Some c ->
            let c, reduced =
              if config.universal_reduction then universal_reduction st c else (c, false)
            in
            if reduced then changed := true;
            if c = [] then raise Refuted;
            Some c)
      st.clauses;
  (* unit propagation *)
  if config.unit_propagation then begin
    let continue_ = ref true in
    while !continue_ do
      match List.find_opt (fun c -> match c with [ _ ] -> true | _ -> false) st.clauses with
      | Some [ l ] ->
          let v = L.var l in
          if is_univ st v then raise Refuted;
          apply_assignment st v (L.is_pos l);
          st.units <- st.units + 1;
          changed := true;
          if List.exists (fun c -> c = []) st.clauses then raise Refuted
      | _ -> continue_ := false
    done
  end;
  (* equivalent variables *)
  if config.equivalences then begin
    let uf = find_equivalences st in
    if apply_equivalences st uf then changed := true
  end;
  (* blocked clauses: sound for satisfiability but not certifying, so
     only without a model trail *)
  if config.blocked_clauses && st.trail = None then
    if blocked_clause_elimination st then changed := true;
  !changed

(* -------------------------------------------------------- gate detection *)

type gate_fn = G_and of int * int (* lits *) | G_xor of int * int

type gate = { out_var : int; out_neg : bool; fn : gate_fn; def_clauses : int list list }

let detect_gates st =
  let clause_set = Hashtbl.create 256 in
  List.iter (fun c -> Hashtbl.replace clause_set c ()) st.clauses;
  let present c = Hashtbl.mem clause_set (List.sort_uniq Int.compare c) in
  let defined : (int, unit) Hashtbl.t = Hashtbl.create 32 in
  let gates = ref [] in
  (* dependency legality: substituting [out] by a function of [ins] *)
  let legal out ins =
    is_exist st out
    && begin
         let d_out = Hashtbl.find st.deps out in
         List.for_all
           (fun w ->
             if w = out then false
             else if is_univ st w then Bitset.mem w d_out
             else if is_exist st w then Bitset.subset (Hashtbl.find st.deps w) d_out
             else false)
           ins
       end
  in
  let consume gate =
    if (not (Hashtbl.mem defined gate.out_var)) && List.for_all present gate.def_clauses
    then begin
      Hashtbl.add defined gate.out_var ();
      gates := gate :: !gates
    end
  in
  (* AND gates: ternary (p|q|r) + binaries (!p|!q) (!p|!r) gives p = !q & !r *)
  List.iter
    (fun clause ->
      match clause with
      | [ _; _; _ ] ->
          List.iter
            (fun p ->
              let others = List.filter (fun l -> l <> p) clause in
              match others with
              | [ q; r ] ->
                  if
                    present [ L.neg p; L.neg q ]
                    && present [ L.neg p; L.neg r ]
                    && legal (L.var p) [ L.var q; L.var r ]
                  then
                    consume
                      {
                        out_var = L.var p;
                        out_neg = L.is_neg p;
                        fn = G_and (L.neg q, L.neg r);
                        def_clauses = [ clause; [ L.neg p; L.neg q ]; [ L.neg p; L.neg r ] ];
                      }
              | _ -> ())
            clause
      | _ -> ())
    st.clauses;
  (* XOR gates: the four all-odd-negation clauses over a variable triple
     encode v0 ^ v1 ^ v2 = 0 *)
  let triples = Hashtbl.create 64 in
  List.iter
    (fun clause ->
      match List.sort_uniq Int.compare (List.map L.var clause) with
      | [ a; b; c ] when List.length clause = 3 ->
          let key = (a, b, c) in
          let cur = try Hashtbl.find triples key with Not_found -> [] in
          Hashtbl.replace triples key (clause :: cur)
      | _ -> ())
    st.clauses;
  Hashtbl.iter
    (fun (a, b, c) clauses ->
      let sign_pattern clause =
        List.map (fun v -> List.exists (fun l -> L.var v = L.var l && L.is_neg l) clause)
          (List.map L.of_var [ a; b; c ])
      in
      let odd p = List.length (List.filter Fun.id p) mod 2 = 1 in
      let cmp_pattern = List.compare Bool.compare in
      let odd_patterns =
        List.sort_uniq
          (fun (p1, c1) (p2, c2) ->
            let c = cmp_pattern p1 p2 in
            if c <> 0 then c else List.compare Int.compare c1 c2)
          (List.filter_map (fun cl ->
            let p = sign_pattern cl in
            if odd p then Some (p, cl) else None) clauses)
      in
      if List.length (List.sort_uniq cmp_pattern (List.map fst odd_patterns)) = 4 then begin
        (* pick one defining clause per pattern *)
        let defs =
          List.map
            (fun pat -> List.assoc pat odd_patterns)
            (List.sort_uniq cmp_pattern (List.map fst odd_patterns))
        in
        (* choose an output among the triple *)
        let try_out out =
          let ins = List.filter (fun v -> v <> out) [ a; b; c ] in
          if (not (Hashtbl.mem defined out)) && legal out ins then begin
            match ins with
            | [ i1; i2 ] ->
                (* out = i1 ^ i2 since out^i1^i2 = 0 *)
                consume
                  {
                    out_var = out;
                    out_neg = false;
                    fn = G_xor (L.of_var i1, L.of_var i2);
                    def_clauses = defs;
                  };
                true
            | _ -> false
          end
          else false
        in
        ignore (try_out a || try_out b || try_out c)
      end)
    triples;
  (* keep only an acyclic subset of the candidate definitions: a gate is
     accepted once every input that is itself a candidate output has been
     accepted (a cycle leaves all its members rejected, keeping their
     clauses — conservative but sound) *)
  let candidates = List.rev !gates in
  let cand_out = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace cand_out g.out_var g) candidates;
  let gate_inputs g =
    match g.fn with G_and (a, b) | G_xor (a, b) -> [ L.var a; L.var b ]
  in
  let accepted = Hashtbl.create 16 in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun g ->
        if
          (not (Hashtbl.mem accepted g.out_var))
          && List.for_all
               (fun v -> (not (Hashtbl.mem cand_out v)) || Hashtbl.mem accepted v)
               (gate_inputs g)
        then begin
          Hashtbl.add accepted g.out_var ();
          progress := true
        end)
      candidates
  done;
  let selected = List.filter (fun g -> Hashtbl.mem accepted g.out_var) candidates in
  List.iter
    (fun g ->
      List.iter (fun c -> Hashtbl.remove clause_set (List.sort_uniq Int.compare c)) g.def_clauses)
    selected;
  st.clauses <- Hashtbl.fold (fun c () acc -> c :: acc) clause_set [];
  selected

(* ---------------------------------------------------------------- build *)

let build_formula ?node_limit st gates =
  let f = Formula.create ?node_limit () in
  Bitset.iter (Formula.add_universal f) st.univs;
  (* gate outputs stay declared until substitution, then are removed *)
  List.iter (fun (y, d) -> Formula.add_existential f y ~deps:d)
    (Hashtbl.fold (fun y d acc -> (y, d) :: acc) st.deps [] |> List.sort (fun (a, _) (b, _) -> Int.compare a b));
  let man = Formula.man f in
  let aig_lit l = M.apply_sign (M.input man (L.var l)) ~neg:(L.is_neg l) in
  let matrix = M.mk_and_list man (List.map (fun c -> M.mk_or_list man (List.map aig_lit c)) st.clauses) in
  (* resolve gate functions in topological order *)
  let gate_tbl = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace gate_tbl g.out_var g) gates;
  let final : (int, M.lit) Hashtbl.t = Hashtbl.create 16 in
  let rec resolve_var ?(seen = []) v : M.lit =
    if List.mem v seen then M.input man v (* defensive: cycle, keep as input *)
    else begin
      match Hashtbl.find_opt final v with
      | Some l -> l
      | None ->
          let l =
            match Hashtbl.find_opt gate_tbl v with
            | None -> M.input man v
            | Some g ->
                let seen = v :: seen in
                let of_lit l =
                  M.apply_sign (resolve_var ~seen (L.var l)) ~neg:(L.is_neg l)
                in
                let body =
                  match g.fn with
                  | G_and (a, b) -> M.mk_and man (of_lit a) (of_lit b)
                  | G_xor (a, b) -> M.mk_xor man (of_lit a) (of_lit b)
                in
                M.apply_sign body ~neg:g.out_neg
          in
          Hashtbl.replace final v l;
          l
    end
  in
  let subst v =
    match Hashtbl.find_opt gate_tbl v with
    | None -> None
    | Some _ -> Some (resolve_var v)
  in
  let matrix = M.compose man matrix subst in
  List.iter
    (fun g ->
      st.gates <- st.gates + 1;
      Option.iter
        (fun trail -> Model_trail.record_def trail man g.out_var (resolve_var g.out_var))
        st.trail;
      Formula.remove_existential f g.out_var)
    gates;
  Formula.set_matrix f matrix;
  f

(* -------------------------------------------------- inproc delegation *)

(* the engine's per-rule switches, masked by this module's config so
   callers that disable a rule here see it disabled in the engine too *)
let engine_config (c : config) mode =
  let base = Inproc.config_of_mode mode in
  {
    base with
    Inproc.unit_propagation = base.Inproc.unit_propagation && c.unit_propagation;
    universal_reduction = base.Inproc.universal_reduction && c.universal_reduction;
    equivalences = base.Inproc.equivalences && c.equivalences;
  }

let problem_of_pcnf (pcnf : Pcnf.t) =
  let deps = List.map (fun (y, d) -> (y, Bitset.of_list d)) pcnf.Pcnf.exists in
  (* undeclared variables: existential, no dependencies *)
  let declared = Bitset.of_list (pcnf.Pcnf.univs @ List.map fst pcnf.Pcnf.exists) in
  let undeclared = ref [] in
  for v = pcnf.Pcnf.num_vars - 1 downto 0 do
    if not (Bitset.mem v declared) then undeclared := (v, Bitset.empty) :: !undeclared
  done;
  {
    Inproc.num_vars = pcnf.Pcnf.num_vars;
    univs = Bitset.of_list pcnf.Pcnf.univs;
    deps = deps @ !undeclared;
    clauses = List.map (List.map L.of_dimacs) pcnf.Pcnf.clauses;
  }

(* Replay the engine's step witnesses into the model trail, in
   chronological order (reconstruction walks newest-first, so the Skolem
   function of a variable merged or eliminated early correctly picks up
   the later definitions of whatever it was rewritten to). Units and
   merges map directly onto trail primitives; a bounded variable
   elimination of [y] records the canonical reconstruction function
   y := OR over positive clauses C of AND_{l in C, l <> y} !l — when
   some positive clause is otherwise falsified [y] must be true, and the
   resolvents guarantee the negative clauses then hold; otherwise
   [y := false] satisfies the negative side. *)
let replay_steps trail steps =
  let scratch = lazy (M.create ()) in
  List.iter
    (fun step ->
      match step with
      | Inproc.Unit l -> Model_trail.record_const trail (L.var l) (L.is_pos l)
      | Inproc.Merged { y; rep } ->
          Model_trail.record_literal trail y ~var:(L.var rep) ~neg:(L.is_neg rep)
      | Inproc.Eliminated { y; pos; _ } ->
          let man = Lazy.force scratch in
          let aig_lit l = M.apply_sign (M.input man (L.var l)) ~neg:(L.is_neg l) in
          let falsified c =
            M.mk_and_list man
              (List.filter_map
                 (fun l -> if L.var l = y then None else Some (M.compl_ (aig_lit l)))
                 c)
          in
          let fn = M.mk_or_list man (List.map falsified pos) in
          Model_trail.record_def trail man y fn
      | Inproc.Reduced _ | Inproc.Subsumed _ | Inproc.Strengthened _ -> ())
    steps

(* load an engine result back into the working state *)
let absorb_result st (res : Inproc.result) =
  st.clauses <- res.Inproc.clauses;
  st.univs <- res.Inproc.univs;
  Hashtbl.reset st.deps;
  List.iter (fun (y, d) -> Hashtbl.replace st.deps y d) res.Inproc.deps;
  st.units <- st.units + res.Inproc.stats.Inproc.units;
  st.reduced_lits <- st.reduced_lits + res.Inproc.stats.Inproc.reduced_lits;
  st.equivs <- st.equivs + res.Inproc.stats.Inproc.scc_merges

let run_inproc ?(mode = Inproc.default_mode) (pcnf : Pcnf.t) =
  match Inproc.run ~config:(Inproc.config_of_mode mode) (problem_of_pcnf pcnf) with
  | Inproc.Unsat -> `Unsat
  | Inproc.Simplified res ->
      let simplified =
        {
          Pcnf.num_vars = pcnf.Pcnf.num_vars;
          univs = Bitset.to_list res.Inproc.univs;
          exists = List.map (fun (y, d) -> (y, Bitset.to_list d)) res.Inproc.deps;
          clauses = List.map (List.map L.to_dimacs) res.Inproc.clauses;
        }
      in
      `Done (simplified, res)

let record_metrics st =
  Obs.Metrics.incr ~by:st.units c_units;
  Obs.Metrics.incr ~by:st.reduced_lits c_reduced_lits;
  Obs.Metrics.incr ~by:st.equivs c_equivs;
  Obs.Metrics.incr ~by:st.gates c_gates;
  Obs.Metrics.incr ~by:st.blocked c_blocked

let run ?(config = default_config) ?node_limit ?trail ?on_inproc (pcnf : Pcnf.t) =
  Obs.Span.with_ "preprocess"
    ~attrs:
      [
        ("clauses", Obs.Int (List.length pcnf.Pcnf.clauses));
        ("vars", Obs.Int pcnf.Pcnf.num_vars);
      ]
  @@ fun () ->
  let st =
    {
      trail;
      univs = Bitset.of_list pcnf.Pcnf.univs;
      deps = Hashtbl.create 64;
      clauses = List.map (List.map L.of_dimacs) pcnf.Pcnf.clauses;
      units = 0;
      reduced_lits = 0;
      equivs = 0;
      gates = 0;
      blocked = 0;
    }
  in
  List.iter (fun (y, d) -> Hashtbl.replace st.deps y (Bitset.of_list d)) pcnf.Pcnf.exists;
  (* undeclared variables: existential, no dependencies *)
  let declared = Bitset.of_list (pcnf.Pcnf.univs @ List.map fst pcnf.Pcnf.exists) in
  for v = 0 to pcnf.Pcnf.num_vars - 1 do
    if not (Bitset.mem v declared) then Hashtbl.replace st.deps v Bitset.empty
  done;
  try
    (match config.inproc with
    | Inproc.Off ->
        (* legacy single-module fixpoint: kept verbatim as the engine-off
           baseline so --inproc off really measures the old pipeline *)
        let rounds = ref 0 in
        while pass config st && !rounds < 100 do
          incr rounds
        done
    | mode -> (
        let prob =
          {
            Inproc.num_vars = pcnf.Pcnf.num_vars;
            univs = st.univs;
            deps = Hashtbl.fold (fun y d acc -> (y, d) :: acc) st.deps [];
            clauses = st.clauses;
          }
        in
        match Inproc.run ~config:(engine_config config mode) prob with
        | Inproc.Unsat ->
            Option.iter (fun k -> k Inproc.Unsat) on_inproc;
            raise Refuted
        | Inproc.Simplified res as outcome ->
            Option.iter (fun k -> replay_steps k res.Inproc.steps) trail;
            absorb_result st res;
            Option.iter (fun k -> k outcome) on_inproc;
            (* blocked-clause elimination stays outside the engine: it is
               not certifying, so it only runs without a model trail *)
            if config.blocked_clauses && st.trail = None then
              ignore (blocked_clause_elimination st)));
    let gates = if config.gate_detection then detect_gates st else [] in
    let f = build_formula ?node_limit st gates in
    record_metrics st;
    Obs.Span.event "preprocess.done"
      ~attrs:
        [
          ("units", Obs.Int st.units);
          ("reduced_lits", Obs.Int st.reduced_lits);
          ("equivs", Obs.Int st.equivs);
          ("gates", Obs.Int st.gates);
          ("blocked", Obs.Int st.blocked);
        ]
      ();
    Formula
      ( f,
        {
          units = st.units;
          reduced_lits = st.reduced_lits;
          equivs = st.equivs;
          gates = st.gates;
          blocked = st.blocked;
        } )
  with Refuted ->
    record_metrics st;
    Unsat
