(* Canonical form of a prefixed CNF, for result caching.

   The serve daemon memoizes verdicts keyed by a canonical rendering of
   the instance: two DQBFs that differ only by a dependency-respecting
   variable renaming and/or clause reordering must map to the same key.
   The PEC workload this targets (thousands of near-identical fault
   variants of one circuit) is exactly the shape such a cache exploits.

   Construction: Weisfeiler–Leman color refinement over the variable /
   clause incidence structure, then bounded individualization-refinement
   branching to break symmetric ties, taking the lexicographically
   minimal rendering over all explored branches. Soundness is
   unconditional — the rendering is generated from a total injective
   variable→rank map, so equal canonical text implies the instances are
   identical up to renaming, hence equisatisfiable. Completeness is
   bounded: if the branching budget runs out, remaining ties fall back
   to original variable ids ([exact = false]) — such keys are still
   sound, they just may miss cache hits between genuinely symmetric
   instances. *)

type key = { h1 : string; h2 : string; num_vars : int; num_clauses : int }
type t = { key : key; canonical : string; exact : bool }

let fnv_prime = 0x100000001b3
let basis1 = 0x4bf29ce484222325
let basis2 = 0x7ee3623a21b7cd15 (* an independent stream for the second hash *)

let fnv_string basis s =
  let h = ref basis in
  String.iter (fun c -> h := (!h lxor Char.code c) * fnv_prime land max_int) s;
  Printf.sprintf "%015x" !h

(* fold one int into a running color hash, byte by byte so nearby ints
   diverge quickly *)
let mix h x =
  let h = ref h and x = ref x in
  for _ = 0 to 7 do
    h := (!h lxor (!x land 0xff)) * fnv_prime land max_int;
    x := !x asr 8
  done;
  !h

let mix_sorted h xs =
  let xs = List.sort Int.compare xs in
  List.fold_left mix h xs

let rec compare_int_list a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: a', y :: b' ->
      let c = Int.compare x y in
      if c <> 0 then c else compare_int_list a' b'

type kind = Univ | Exist of int list

let max_rounds = 64
let class_cap = 12
let leaf_budget = 2048

let canonicalize (p : Pcnf.t) =
  let n = p.Pcnf.num_vars in
  (* variable kinds; vars never declared are existential with no deps *)
  let kind = Array.make n (Exist []) in
  List.iter (fun v -> if v >= 0 && v < n then kind.(v) <- Univ) p.Pcnf.univs;
  List.iter
    (fun (v, deps) -> if v >= 0 && v < n then kind.(v) <- Exist (List.sort Int.compare deps))
    p.Pcnf.exists;
  (* reverse dependency map: universal -> existentials depending on it *)
  let rdeps = Array.make n [] in
  Array.iteri
    (fun v k ->
      match k with
      | Univ -> ()
      | Exist deps -> List.iter (fun u -> if u >= 0 && u < n then rdeps.(u) <- v :: rdeps.(u)) deps)
    kind;
  (* normalize the matrix up front: clauses as literal sets (dedup within
     a clause), duplicate clauses removed — clause order and repetition
     carry no meaning *)
  let norm_clause c =
    List.sort_uniq Int.compare (List.filter (fun l -> l <> 0) c)
  in
  let clauses =
    Array.of_list
      (List.sort_uniq compare_int_list (List.map norm_clause p.Pcnf.clauses))
  in
  let m = Array.length clauses in
  (* occurrence lists: variable -> (clause index, sign) *)
  let occ = Array.make n [] in
  Array.iteri
    (fun ci c ->
      List.iter
        (fun l ->
          let v = abs l - 1 in
          if v >= 0 && v < n then occ.(v) <- (ci, l > 0) :: occ.(v))
        c)
    clauses;
  let initial_color v =
    let pos = List.length (List.filter snd occ.(v)) in
    let neg = List.length occ.(v) - pos in
    let k, d = match kind.(v) with Univ -> (0, -1) | Exist deps -> (1, List.length deps) in
    mix (mix (mix (mix basis1 k) d) pos) neg
  in
  let distinct colors =
    let tbl = Hashtbl.create (Array.length colors) in
    Array.iter (fun c -> Hashtbl.replace tbl c ()) colors;
    Hashtbl.length tbl
  in
  (* one WL pass: clause signatures from literal colors, then variable
     colors from incident clause signatures plus dependency structure *)
  let refine colors =
    let rounds = ref 0 and stable = ref false in
    let card = ref (distinct colors) in
    while (not !stable) && !rounds < max_rounds && !card < n do
      incr rounds;
      let csig = Array.make m 0 in
      for ci = 0 to m - 1 do
        csig.(ci) <-
          mix_sorted (mix basis1 2)
            (List.map
               (fun l ->
                 let v = abs l - 1 in
                 let c = if v >= 0 && v < n then colors.(v) else 0 in
                 mix (mix basis1 (if l > 0 then 1 else 0)) c)
               clauses.(ci))
      done;
      let next = Array.make n 0 in
      for v = 0 to n - 1 do
        let h = mix basis1 colors.(v) in
        let h =
          mix_sorted h
            (List.map (fun (ci, sign) -> mix (mix basis1 (if sign then 1 else 0)) csig.(ci)) occ.(v))
        in
        let h =
          match kind.(v) with
          | Univ -> mix_sorted (mix h 0) (List.map (fun e -> colors.(e)) rdeps.(v))
          | Exist deps -> mix_sorted (mix h 1) (List.map (fun u -> colors.(u)) deps)
        in
        next.(v) <- h
      done;
      let card' = distinct next in
      if card' <= !card then stable := true else card := card';
      Array.blit next 0 colors 0 n
    done
  in
  (* rank variables by color; [strict] additionally breaks residual ties
     by original id (the inexact fallback) *)
  let ranks colors =
    let order = Array.init n (fun v -> v) in
    Array.sort
      (fun a b ->
        let c = Int.compare colors.(a) colors.(b) in
        if c <> 0 then c else Int.compare a b)
      order;
    let rank = Array.make n 0 in
    Array.iteri (fun i v -> rank.(v) <- i) order;
    rank
  in
  let render rank =
    let buf = Buffer.create 256 in
    let univ_ranks =
      List.sort Int.compare
        (List.concat_map
           (fun v -> match kind.(v) with Univ -> [ rank.(v) ] | Exist _ -> [])
           (List.init n (fun v -> v)))
    in
    Buffer.add_string buf (Printf.sprintf "p %d %d\n" n m);
    Buffer.add_string buf "a";
    List.iter (fun r -> Buffer.add_string buf (Printf.sprintf " %d" r)) univ_ranks;
    Buffer.add_char buf '\n';
    let exist_lines =
      List.sort compare_int_list
        (List.concat_map
           (fun v ->
             match kind.(v) with
             | Univ -> []
             | Exist deps ->
                 [ rank.(v) :: List.sort Int.compare (List.map (fun u -> rank.(u)) deps) ])
           (List.init n (fun v -> v)))
    in
    List.iter
      (fun line ->
        Buffer.add_char buf 'd';
        List.iter (fun r -> Buffer.add_string buf (Printf.sprintf " %d" r)) line;
        Buffer.add_char buf '\n')
      exist_lines;
    let mapped =
      List.sort compare_int_list
        (Array.to_list
           (Array.map
              (fun c ->
                List.sort Int.compare
                  (List.map
                     (fun l ->
                       let v = abs l - 1 in
                       let r = if v >= 0 && v < n then rank.(v) + 1 else abs l in
                       if l > 0 then r else -r)
                     c))
              clauses))
    in
    List.iter
      (fun c ->
        List.iter (fun l -> Buffer.add_string buf (Printf.sprintf "%d " l)) c;
        Buffer.add_string buf "0\n")
      mapped;
    Buffer.contents buf
  in
  (* individualization-refinement search for the lexicographically
     minimal rendering; bounded by [class_cap] × [leaf_budget] *)
  let leaves = ref leaf_budget in
  let exact = ref true in
  let best = ref None in
  let consider text =
    match !best with
    | Some b when String.compare b text <= 0 -> ()
    | _ -> best := Some text
  in
  let rec search colors =
    refine colors;
    if !leaves <= 0 then begin
      exact := false;
      consider (render (ranks colors))
    end
    else if distinct colors = n then begin
      decr leaves;
      consider (render (ranks colors))
    end
    else begin
      (* smallest non-singleton color class, members in id order *)
      let by_color = Hashtbl.create n in
      Array.iteri
        (fun v c ->
          Hashtbl.replace by_color c (v :: (try Hashtbl.find by_color c with Not_found -> [])))
        colors;
      let target = ref None in
      Hashtbl.iter
        (fun c members ->
          if List.length members > 1 then
            match !target with
            | Some (c', _) when c' <= c -> ()
            | _ -> target := Some (c, List.sort Int.compare members))
        by_color;
      match !target with
      | None -> consider (render (ranks colors))
      | Some (_, members) ->
          let members =
            if List.length members > class_cap then begin
              exact := false;
              List.filteri (fun i _ -> i < class_cap) members
            end
            else members
          in
          List.iter
            (fun v ->
              if !leaves > 0 then begin
                let colors' = Array.copy colors in
                colors'.(v) <- mix colors'.(v) 0x1d;
                search colors'
              end
              else exact := false)
            members
    end
  in
  let colors = Array.init n initial_color in
  search colors;
  let canonical = match !best with Some b -> b | None -> render (ranks colors) in
  {
    key =
      {
        h1 = fnv_string basis1 canonical;
        h2 = fnv_string basis2 canonical;
        num_vars = n;
        num_clauses = m;
      };
    canonical;
    exact = !exact;
  }
