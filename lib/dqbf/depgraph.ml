open Hqs_util

let edges f =
  let exs = Formula.existentials f in
  List.concat_map
    (fun (y, dy) ->
      List.filter_map
        (fun (y', dy') ->
          if y <> y' && not (Bitset.subset dy dy') then Some (y, y') else None)
        exs)
    exs

let incomparable_pairs f =
  let exs = Formula.existentials f in
  let rec loop acc = function
    | [] -> List.rev acc
    | (y, dy) :: rest ->
        let acc =
          List.fold_left
            (fun acc (y', dy') ->
              if (not (Bitset.subset dy dy')) && not (Bitset.subset dy' dy) then (y, y') :: acc
              else acc)
            acc rest
        in
        loop acc rest
  in
  loop [] exs

let is_acyclic f = incomparable_pairs f = []

let qbf_prefix f =
  (* group existentials by dependency set, order by cardinality, check the
     chain property, then interleave universal blocks *)
  let groups : (Bitset.t * int list ref) list ref = ref [] in
  List.iter
    (fun (y, d) ->
      match List.find_opt (fun (d', _) -> Bitset.equal d d') !groups with
      | Some (_, l) -> l := y :: !l
      | None -> groups := (d, ref [ y ]) :: !groups)
    (Formula.existentials f);
  let groups =
    List.sort (fun (d1, _) (d2, _) -> Int.compare (Bitset.cardinal d1) (Bitset.cardinal d2)) !groups
  in
  let rec chain_ok = function
    | (d1, _) :: ((d2, _) :: _ as rest) -> Bitset.subset d1 d2 && chain_ok rest
    | [ _ ] | [] -> true
  in
  if not (chain_ok groups) then None
  else begin
    let blocks = ref [] in
    let placed = ref Bitset.empty in
    List.iter
      (fun (d, ys) ->
        let fresh_univs = Bitset.diff d !placed in
        placed := Bitset.union !placed fresh_univs;
        blocks := (Qbf.Prefix.Exists, List.rev !ys) :: (Qbf.Prefix.Forall, Bitset.to_list fresh_univs) :: !blocks)
      groups;
    let rest = Bitset.diff (Formula.universals f) !placed in
    blocks := (Qbf.Prefix.Forall, Bitset.to_list rest) :: !blocks;
    Some (Qbf.Prefix.normalize (List.rev !blocks))
  end
