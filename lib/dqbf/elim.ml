open Hqs_util
module M = Aig.Man
module UP = Aig.Unitpure

let c_univ_elims = Obs.Metrics.counter "elim.universal"
let c_exist_elims = Obs.Metrics.counter "elim.existential"
let h_node_growth = Obs.Metrics.histogram "elim.node_growth"

let universal ?trail f x =
  if not (Formula.is_universal f x) then invalid_arg "Dqbf.Elim.universal";
  let nodes_before = M.num_nodes (Formula.man f) in
  Obs.Span.with_ "elim.expand" ~attrs:[ ("var", Obs.Int x); ("nodes", Obs.Int nodes_before) ]
  @@ fun () ->
  let man = Formula.man f in
  let matrix = Formula.matrix f in
  let e_x = List.filter (fun (_, d) -> Bitset.mem x d) (Formula.existentials f) in
  let phi0 = M.cofactor man matrix ~var:x ~value:false in
  let phi1 = M.cofactor man matrix ~var:x ~value:true in
  (* fresh primed copy of every existential that depends on x *)
  let copies = List.map (fun (y, _) -> (y, Formula.fresh_var f)) e_x in
  let subst = Hashtbl.create 16 in
  List.iter (fun (y, y') -> Hashtbl.replace subst y (M.input man y')) copies;
  let phi1' = M.compose man phi1 (Hashtbl.find_opt subst) in
  Formula.set_matrix f (M.mk_and man phi0 phi1');
  Formula.remove_universal f x;
  (* dependency sets already lost x; register the copies with the same sets *)
  List.iter (fun (y, y') -> Formula.add_existential f y' ~deps:(Formula.deps f y)) copies;
  (* the original s_y is s_y(x=0) when x=0 and s_y'(x=1) when x=1 *)
  Option.iter
    (fun trail -> List.iter (fun (y, y') -> Model_trail.record_ite trail ~y ~x ~y1:y') copies)
    trail;
  (* per-step event log: which universal was expanded and at what cost *)
  let growth = M.num_nodes man - nodes_before in
  Obs.Metrics.incr c_univ_elims;
  Obs.Metrics.observe h_node_growth (float_of_int growth);
  Obs.Span.event "elim.step"
    ~attrs:
      [
        ("var", Obs.Int x);
        ("copies", Obs.Int (List.length copies));
        ("node_growth", Obs.Int growth);
        ("nodes_after", Obs.Int (M.num_nodes man));
      ]
    ()

let existential ?trail f y =
  let deps = try Formula.deps f y with Not_found -> invalid_arg "Dqbf.Elim.existential" in
  if not (Bitset.equal deps (Formula.universals f)) then
    invalid_arg "Dqbf.Elim.existential: dependency set is not the full universal set";
  let man = Formula.man f in
  let matrix = Formula.matrix f in
  let phi0 = M.cofactor man matrix ~var:y ~value:false in
  let phi1 = M.cofactor man matrix ~var:y ~value:true in
  (* choice function: pick 1 exactly when phi[1/y] holds *)
  Option.iter (fun trail -> Model_trail.record_def trail man y phi1) trail;
  Formula.set_matrix f (M.mk_or man phi0 phi1);
  Formula.remove_existential f y;
  Obs.Metrics.incr c_exist_elims

let eliminate_full_existentials ?trail f =
  let count = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let support = M.support (Formula.man f) (Formula.matrix f) in
    let eligible =
      List.filter
        (fun (y, d) -> Bitset.mem y support && Bitset.equal d (Formula.universals f))
        (Formula.existentials f)
    in
    match eligible with
    | [] -> continue_ := false
    | l ->
        List.iter
          (fun (y, _) ->
            existential ?trail f y;
            incr count)
          l
  done;
  !count

let unit_pure_round ?trail f =
  let man = Formula.man f in
  let scans = UP.scan man (Formula.matrix f) in
  let subst : (int, M.lit) Hashtbl.t = Hashtbl.create 8 in
  let unsat = ref false in
  let assign_exists v value =
    Hashtbl.replace subst v (if value then M.true_ else M.false_);
    Option.iter (fun trail -> Model_trail.record_const trail v value) trail
  in
  List.iter
    (fun (v, st) ->
      if not !unsat then begin
        if Formula.is_universal f v then begin
          if st.UP.pos_unit || st.UP.neg_unit then unsat := true
          else if st.UP.pos_pure then Hashtbl.replace subst v M.false_
          else if st.UP.neg_pure then Hashtbl.replace subst v M.true_
        end
        else if Formula.is_existential f v then begin
          if st.UP.pos_unit && st.UP.neg_unit then unsat := true
          else if st.UP.pos_unit || st.UP.pos_pure then assign_exists v true
          else if st.UP.neg_unit || st.UP.neg_pure then assign_exists v false
        end
      end)
    scans;
  if !unsat then begin
    Formula.set_matrix f M.false_;
    `Unsat
  end
  else if Hashtbl.length subst = 0 then `None
  else begin
    Formula.set_matrix f (M.compose man (Formula.matrix f) (Hashtbl.find_opt subst));
    (* the substituted variables left the support; prune them from the prefix *)
    Hashtbl.iter
      (fun v _ ->
        if Formula.is_universal f v then Formula.remove_universal f v
        else Formula.remove_existential f v)
      subst;
    `Eliminated (Hashtbl.length subst)
  end

let prune_prefix ?trail f =
  let support = M.support (Formula.man f) (Formula.matrix f) in
  Bitset.iter
    (fun x -> if not (Bitset.mem x support) then Formula.remove_universal f x)
    (Formula.universals f);
  List.iter
    (fun (y, _) ->
      if not (Bitset.mem y support) then begin
        Option.iter (fun trail -> Model_trail.record_const trail y false) trail;
        Formula.remove_existential f y
      end)
    (Formula.existentials f)
