(** CNF-level preprocessing (Section III-C of the paper), applied before
    the AIG is built:

    - unit literal propagation (universal unit literals refute the formula);
    - generalized universal reduction: a universal literal is dropped from
      a clause when no existential literal of the clause depends on it;
    - equivalent-variable detection from binary clauses, adapted to DQBF:
      merging two existentials narrows the representative's dependency set
      to the intersection; an existential forced equal to a universal
      outside its dependency set — or two universals forced equal — make
      the formula unsatisfiable;
    - Tseitin gate detection for AND/OR/XOR gates with arbitrarily negated
      inputs; detected definitions are removed from the clause set and
      substituted structurally into the AIG (dependency-legal gates only).

    The first three run in alternation to a fixpoint, then gates are
    harvested and the {!Formula.t} is assembled. *)

type stats = {
  units : int;  (** unit literals propagated *)
  reduced_lits : int;  (** universal literals removed by reduction *)
  equivs : int;  (** variables merged away *)
  gates : int;  (** gate definitions substituted *)
  blocked : int;  (** clauses removed by blocked-clause elimination *)
}

type config = {
  unit_propagation : bool;
  universal_reduction : bool;
  equivalences : bool;
  gate_detection : bool;
  blocked_clauses : bool;
      (** DQBF blocked-clause elimination (Wimmer et al., SAT 2015) — the
          "more sophisticated preprocessing" the paper's conclusion points
          to. Off by default (not part of the DATE'15 pipeline); skipped
          automatically when a model trail is attached, because the rule
          does not preserve Skolem certificates. *)
  inproc : Inproc.mode;
      (** Delegate the CNF fixpoint to the occurrence-indexed {!Inproc}
          engine. [Off] keeps the legacy single-module pass (the
          engine-off baseline); [On]/[Full] run the engine with the rule
          switches above masked in, then replay its step witnesses into
          the model trail. Gate detection and blocked-clause elimination
          remain on this side either way. *)
}

val default_config : config
(** [inproc] defaults to {!Inproc.default_mode} ([On]); callers that
    resolve [HQS_INPROC] / [--inproc] override the field. *)

val off : config

type outcome =
  | Unsat  (** refuted during preprocessing *)
  | Formula of Formula.t * stats

val run :
  ?config:config ->
  ?node_limit:int ->
  ?trail:Model_trail.t ->
  ?on_inproc:(Inproc.outcome -> unit) ->
  Pcnf.t ->
  outcome
(** [on_inproc] fires once when the engine ran (config [inproc] not
    [Off]), after trail replay, with the raw engine outcome — the hook
    the solver uses to audit the run ({!Check.audit_inproc} lives above
    this library) and to lift the engine counters into [Hqs.stats].
    Exceptions raised by the callback propagate. *)

val run_inproc :
  ?mode:Inproc.mode -> Pcnf.t -> [ `Unsat | `Done of Pcnf.t * Inproc.result ]
(** Run only the inprocessing engine on a prefixed CNF and convert the
    result back to a {!Pcnf.t} (same [num_vars]; simplified clauses,
    possibly narrowed prefix). Used by [hqs analyze] reports, the bench
    reduction tables and tests; no model trail is threaded. *)
