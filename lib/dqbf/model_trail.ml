module M = Aig.Man

type step =
  | Def of int * M.lit (* y := fn, fn in the trail manager *)
  | Ite of { y : int; x : int; y1 : int }

type t = { tman : M.t; mutable steps : step list (* newest first *) }

let create () = { tman = M.create (); steps = [] }

(* copy a cone into the trail manager, preserving input variable ids *)
let import src root dst =
  let table = Hashtbl.create 64 in
  let get e = M.apply_sign (Hashtbl.find table (M.node_of e)) ~neg:(M.is_compl e) in
  M.iter_cone src [ root ] (fun n ->
      let v =
        if n = 0 then M.false_
        else if M.is_input src (n * 2) then M.input dst (M.var_of_input src (n * 2))
        else begin
          let e0, e1 = M.fanins src (n * 2) in
          M.mk_and dst (get e0) (get e1)
        end
      in
      Hashtbl.replace table n v);
  get root

let record_def t man y fn = t.steps <- Def (y, import man fn t.tman) :: t.steps
let record_const t y b = t.steps <- Def (y, if b then M.true_ else M.false_) :: t.steps
let record_ite t ~y ~x ~y1 = t.steps <- Ite { y; x; y1 } :: t.steps
let num_steps t = List.length t.steps
let mark = num_steps

let rollback t m =
  let n = num_steps t in
  if m > n then invalid_arg "Model_trail.rollback: mark is newer than the trail";
  let rec drop k l = if k = 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl in
  t.steps <- drop (n - m) t.steps

let reconstruct t =
  let model = Skolem.create () in
  let out = Skolem.man model in
  let defined : (int, M.lit) Hashtbl.t = Hashtbl.create 64 in
  let lookup v = Hashtbl.find_opt defined v in
  (* import a recorded definition, substituting already-reconstructed
     Skolem functions for the existentials it mentions *)
  let resolve fn =
    let imported = import t.tman fn out in
    M.compose out imported lookup
  in
  List.iter
    (fun step ->
      match step with
      | Def (y, fn) -> Hashtbl.replace defined y (resolve fn)
      | Ite { y; x; y1 } ->
          let branch0 = match lookup y with Some l -> l | None -> M.false_ in
          let branch1 = match lookup y1 with Some l -> l | None -> M.false_ in
          Hashtbl.replace defined y (M.mk_ite out (M.input out x) branch1 branch0))
    t.steps;
  Hashtbl.iter (fun y fn -> Skolem.define model y fn) defined;
  model

let record_literal t y ~var ~neg =
  t.steps <- Def (y, M.apply_sign (M.input t.tman var) ~neg) :: t.steps
