type t = {
  num_vars : int;
  univs : int list;
  exists : (int * int list) list;
  clauses : int list list;
}

let tokenize s =
  String.split_on_char '\n' s
  |> List.filter (fun line ->
         let line = String.trim line in
         not (String.length line = 0 || line.[0] = 'c'))
  |> List.map (fun line ->
         String.split_on_char ' ' line
         |> List.concat_map (String.split_on_char '\t')
         |> List.filter (fun tok -> tok <> ""))

let parse_string s =
  let num_vars = ref 0 in
  let univs = ref [] in
  let exists = ref [] in
  let clauses = ref [] in
  let int_of tok = try int_of_string tok with Failure _ -> failwith ("Dqdimacs: bad token " ^ tok) in
  let var_of tok =
    let i = int_of tok in
    if i <= 0 then failwith "Dqdimacs: non-positive variable in prefix";
    num_vars := max !num_vars i;
    i - 1
  in
  let vars_of toks = List.filter_map (fun tok -> if int_of tok = 0 then None else Some (var_of tok)) toks in
  List.iter
    (fun line ->
      match line with
      | [] -> ()
      | "p" :: "cnf" :: nv :: _ -> num_vars := max !num_vars (int_of nv)
      | "a" :: rest -> univs := !univs @ vars_of rest
      | "e" :: rest ->
          let deps = !univs in
          List.iter (fun v -> exists := !exists @ [ (v, deps) ]) (vars_of rest)
      | "d" :: rest -> (
          match vars_of rest with
          | y :: deps -> exists := !exists @ [ (y, deps) ]
          | [] -> failwith "Dqdimacs: empty d-line")
      | toks ->
          let current = ref [] in
          List.iter
            (fun tok ->
              let i = int_of tok in
              if i = 0 then begin
                clauses := List.rev !current :: !clauses;
                current := []
              end
              else begin
                num_vars := max !num_vars (abs i);
                current := i :: !current
              end)
            toks;
          if !current <> [] then failwith "Dqdimacs: clause not terminated by 0")
    (tokenize s);
  { num_vars = !num_vars; univs = !univs; exists = !exists; clauses = List.rev !clauses }

let parse_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse_string s

let to_string { num_vars; univs; exists; clauses } =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" num_vars (List.length clauses));
  if univs <> [] then begin
    Buffer.add_string buf "a";
    List.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %d" (v + 1))) univs;
    Buffer.add_string buf " 0\n"
  end;
  List.iter
    (fun (y, deps) ->
      Buffer.add_string buf (Printf.sprintf "d %d" (y + 1));
      List.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %d" (v + 1))) deps;
      Buffer.add_string buf " 0\n")
    exists;
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (Printf.sprintf "%d " l)) clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let validate { num_vars; univs; exists; clauses } =
  let seen = Hashtbl.create 64 in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_var v = v >= 0 && v < num_vars in
  let rec check_decls = function
    | [] -> Ok ()
    | v :: rest ->
        if not (check_var v) then err "variable %d out of range" (v + 1)
        else if Hashtbl.mem seen v then err "variable %d declared twice" (v + 1)
        else begin
          Hashtbl.add seen v ();
          check_decls rest
        end
  in
  match check_decls (univs @ List.map fst exists) with
  | Error _ as e -> e
  | Ok () ->
      let univ_set = Hqs_util.Bitset.of_list univs in
      let bad_dep =
        List.find_opt
          (fun (_, deps) -> List.exists (fun d -> not (Hqs_util.Bitset.mem d univ_set)) deps)
          exists
      in
      (match bad_dep with
      | Some (y, _) -> err "existential %d depends on a non-universal" (y + 1)
      | None ->
          if
            List.exists
              (fun clause -> List.exists (fun l -> l = 0 || not (check_var (abs l - 1))) clause)
              clauses
          then err "clause literal out of range"
          else Ok ())

let to_formula ?node_limit pcnf =
  let f = Formula.create ?node_limit () in
  List.iter (Formula.add_universal f) pcnf.univs;
  List.iter
    (fun (y, deps) -> Formula.add_existential f y ~deps:(Hqs_util.Bitset.of_list deps))
    pcnf.exists;
  (* undeclared variables: existential with empty dependencies *)
  let declared = Hqs_util.Bitset.of_list (pcnf.univs @ List.map fst pcnf.exists) in
  for v = 0 to pcnf.num_vars - 1 do
    if not (Hqs_util.Bitset.mem v declared) then
      Formula.add_existential f v ~deps:Hqs_util.Bitset.empty
  done;
  let man = Formula.man f in
  let lit l = Aig.Man.apply_sign (Aig.Man.input man (abs l - 1)) ~neg:(l < 0) in
  let clause_lit c = Aig.Man.mk_or_list man (List.map lit c) in
  Formula.set_matrix f (Aig.Man.mk_and_list man (List.map clause_lit pcnf.clauses));
  f
