(** DQBF formulas (Definitions 1-2 of the paper): a set of universal
    variables, existential variables with explicit dependency sets (Henkin
    quantifiers), and a matrix kept as an AIG.

    Variables are non-negative ints shared with the AIG input labels. The
    structure is mutable: the solver eliminates variables in place. *)

type t

val create : ?node_limit:int -> unit -> t

val man : t -> Aig.Man.t
val matrix : t -> Aig.Man.lit
val set_matrix : t -> Aig.Man.lit -> unit

val replace_man : t -> Aig.Man.t -> Aig.Man.lit -> unit
(** Swap in a new manager and matrix (after compaction or FRAIG). *)

val add_universal : t -> int -> unit
val add_existential : t -> int -> deps:Hqs_util.Bitset.t -> unit
(** @raise Invalid_argument if the variable exists already or a dependency
    is not a universal variable. *)

val fresh_var : t -> int
(** An unused variable id (also bumps the internal counter). *)

val next_var : t -> int
(** Exclusive upper bound on every variable id seen so far (quantified or
    fresh); dominates the ids a well-formed elimination queue may hold. *)

val universals : t -> Hqs_util.Bitset.t
val num_universals : t -> int
val is_universal : t -> int -> bool
val is_existential : t -> int -> bool

val deps : t -> int -> Hqs_util.Bitset.t
(** Dependency set of an existential variable. @raise Not_found. *)

val set_deps : t -> int -> Hqs_util.Bitset.t -> unit

val existentials : t -> (int * Hqs_util.Bitset.t) list
(** Sorted by variable id. *)

val num_existentials : t -> int

val remove_universal : t -> int -> unit
(** Remove from the prefix and from every dependency set. *)

val remove_existential : t -> int -> unit

val input : t -> int -> Aig.Man.lit
(** AIG input literal for a variable. *)

val copy : t -> t
(** Deep copy (fresh manager holding only the matrix cone). *)

val pp : Format.formatter -> t -> unit
