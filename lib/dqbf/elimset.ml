open Hqs_util
module L = Sat.Lit

(* deduplicated (D_y \ D_y', D_y' \ D_y) pairs over incomparable pairs *)
let incomparable_diffs f =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun (y, y') ->
      let dy = Formula.deps f y and dy' = Formula.deps f y' in
      let d1 = Bitset.diff dy dy' and d2 = Bitset.diff dy' dy in
      let d1, d2 = if Bitset.compare d1 d2 <= 0 then (d1, d2) else (d2, d1) in
      let key = (d1, d2) in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        Some (d1, d2)
      end)
    (Depgraph.incomparable_pairs f)

let minimum_set ?budget f =
  let pairs = incomparable_diffs f in
  if pairs = [] then []
  else begin
    (* MaxSAT variables: one per *relevant* universal (the "hat"
       variables), then selectors allocated after them. A universal in no
       difference set appears in no hard clause, so its soft unit is
       trivially satisfiable and it can never enter an optimal solution —
       restricting to the union of the difference sets yields the same
       optimum with fewer soft clauses. The static dependency-scheme
       refinement (lib/analysis) shrinks the difference sets themselves,
       so the MaxSAT instance shrinks with it. *)
    let relevant =
      List.fold_left
        (fun acc (d1, d2) -> Bitset.union acc (Bitset.union d1 d2))
        Bitset.empty pairs
    in
    let univs = Bitset.to_list relevant in
    let index = Hashtbl.create 16 in
    List.iteri (fun i x -> Hashtbl.replace index x i) univs;
    let n_univ = List.length univs in
    let next = ref n_univ in
    let fresh () =
      let v = !next in
      incr next;
      v
    in
    let hard = ref [] in
    List.iter
      (fun (d1, d2) ->
        let s1 = fresh () and s2 = fresh () in
        hard := [ L.of_var s1; L.of_var s2 ] :: !hard;
        Bitset.iter
          (fun x -> hard := [ L.neg (L.of_var s1); L.of_var (Hashtbl.find index x) ] :: !hard)
          d1;
        Bitset.iter
          (fun x -> hard := [ L.neg (L.of_var s2); L.of_var (Hashtbl.find index x) ] :: !hard)
          d2)
      pairs;
    let soft = List.map (fun x -> [ L.neg (L.of_var (Hashtbl.find index x)) ]) univs in
    match Maxsat.Msolver.solve ?budget ~num_vars:!next ~hard:!hard ~soft () with
    | None -> assert false (* the hard clauses are satisfiable: eliminate everything *)
    | Some { model; _ } -> List.filter (fun x -> model.(Hashtbl.find index x)) univs
  end

let elimination_count f x =
  List.fold_left
    (fun acc (_, d) -> if Bitset.mem x d then acc + 1 else acc)
    0 (Formula.existentials f)

let ordered_queue f set =
  let cost = List.map (fun x -> (elimination_count f x, x)) set in
  let cmp (c1, x1) (c2, x2) = if c1 <> c2 then Int.compare c1 c2 else Int.compare x1 x2 in
  List.map snd (List.sort cmp cost)

let greedy_all f =
  let acc = ref Bitset.empty in
  List.iter
    (fun (d1, d2) -> acc := Bitset.union !acc (Bitset.union d1 d2))
    (incomparable_diffs f);
  Bitset.to_list !acc
