(** Recording how existential variables are eliminated, so that Skolem
    functions (Definition 2) can be reconstructed after a SAT answer —
    the "certification perspective" of Balabanov et al. that the paper
    cites as reference [13].

    Every elimination step that removes an existential variable records a
    definition (the cone is snapshotted into a private manager, so later
    compaction or FRAIG rebuilds of the solver's manager cannot invalidate
    it):

    - unit/pure and SAT-model variables record constants;
    - Theorem 2 and QBF existential elimination record the standard
      choice function [s_y = phi[1/y]];
    - Theorem 1 records an if-then-else merge: the original [s_y] is
      [ite(x, s_y', s_y)], where [y] continues as the x=0 branch and the
      fresh copy [y'] as the x=1 branch;
    - preprocessing records gate substitutions, equivalences and units;
    - pruned (don't-care) variables record constant false.

    Reconstruction walks the steps newest-first: any existential referred
    to by an older definition was eliminated later, so its Skolem function
    is already available for substitution. *)

type t

val create : unit -> t

val record_def : t -> Aig.Man.t -> int -> Aig.Man.lit -> unit
(** [record_def trail man y fn]: [y] was eliminated with definition [fn]
    (a literal of [man]; its cone is copied out immediately). *)

val record_const : t -> int -> bool -> unit

val record_ite : t -> y:int -> x:int -> y1:int -> unit
(** Theorem 1 bookkeeping: after this step, [y]'s final Skolem function
    becomes [ite(x, s_y1, s_y)] where the newer definitions of [y] and
    [y1] describe the x=0 / x=1 branches. *)

val num_steps : t -> int

val mark : t -> int
(** Snapshot of the trail position, for {!rollback}. *)

val rollback : t -> int -> unit
(** [rollback t m] discards every step recorded after [mark t] returned
    [m] — used when a solver stage is abandoned (timeout, node-limit
    blowup, degraded restart) so its half-recorded eliminations cannot
    corrupt the reconstructed model. Cones already imported into the
    trail manager are merely garbage. *)

val reconstruct : t -> Skolem.t
(** Build concrete Skolem functions (over universal inputs) for every
    variable that appears in a recorded step. *)

val record_literal : t -> int -> var:int -> neg:bool -> unit
(** [y] was replaced by the literal [±var] (equivalent-variable merges). *)
