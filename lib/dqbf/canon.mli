(** Canonical form of a {!Pcnf.t}, for result caching.

    Two instances that differ only by a dependency-respecting variable
    renaming (universals to universals, existentials to existentials,
    dependency sets mapped along) and/or clause reordering render to the
    same canonical text. The serve daemon's verdict cache keys on the
    two FNV-1a fingerprints of that text.

    Soundness is unconditional: the rendering is generated from a total
    injective variable→rank map, so equal canonical text implies the
    instances are identical up to renaming — hence equisatisfiable.
    Completeness is bounded: highly symmetric instances can exhaust the
    individualization budget, in which case residual ties fall back to
    original variable ids and [exact] is [false] — keys remain sound but
    may differ between instances that a full canonizer would merge. *)

type key = {
  h1 : string;  (** primary fingerprint, 15 hex digits (cache index) *)
  h2 : string;  (** independent second fingerprint (collision check) *)
  num_vars : int;
  num_clauses : int;  (** after intra-clause and duplicate-clause dedup *)
}

type t = {
  key : key;
  canonical : string;  (** the canonical rendering the key fingerprints *)
  exact : bool;  (** canonical label search completed within budget *)
}

val canonicalize : Pcnf.t -> t
(** Weisfeiler–Leman color refinement plus bounded
    individualization-refinement branching, taking the lexicographically
    minimal rendering over explored branches. Cost is polynomial for
    instances whose symmetries WL resolves (the common case) and cut off
    by an internal leaf budget otherwise. *)
