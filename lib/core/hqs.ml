open Hqs_util
module M = Aig.Man
module F = Dqbf.Formula

type verdict = Sat | Unsat
type mode = Elimination | Expand_all
type qbf_backend = Elim_backend | Search_backend

type config = {
  preprocess : Dqbf.Preprocess.config;
  mode : mode;
  use_unitpure : bool;
  use_thm2 : bool;
  use_maxsat : bool;
  use_fraig : bool;
  fraig_threshold : int;
  use_sat_probe : bool;
  node_limit : int option;
  qbf : Qbf.Solver.config;
  qbf_backend : qbf_backend;
  chaos : Chaos.t;
  restart_on_memout : bool;
  check_level : Check.level;
  dep_scheme : Analysis.Scheme.t;
}

let default_config =
  {
    (* HQS_INPROC follows the HQS_CHECK contract: the CLI reports a
       malformed value; library users get the engine default *)
    preprocess =
      {
        Dqbf.Preprocess.default_config with
        Dqbf.Preprocess.inproc =
          (match Inproc.mode_of_env () with Ok m -> m | Error _ -> Inproc.default_mode);
      };
    mode = Elimination;
    use_unitpure = true;
    use_thm2 = true;
    use_maxsat = true;
    use_fraig = true;
    fraig_threshold = 50000;
    use_sat_probe = false;
    node_limit = None;
    qbf = Qbf.Solver.default_config;
    qbf_backend = Elim_backend;
    chaos = Chaos.off;
    restart_on_memout = true;
    (* a malformed HQS_CHECK is reported by the CLI; library users who
       bypass it get the safe default *)
    check_level = (match Check.level_of_env () with Ok l -> l | Error _ -> Check.Off);
    (* same contract as HQS_CHECK: a malformed HQS_DEP_SCHEME is reported
       by the CLI; library users get the default scheme *)
    dep_scheme =
      (match Analysis.Scheme.of_env () with Ok s -> s | Error _ -> Analysis.Scheme.default);
  }

(* the bounded-restart config: keep the same resource limits but trade
   speed for compactness — sweep aggressively and use the search back
   end, which does not grow the AIG *)
let degraded_config config =
  {
    config with
    use_fraig = true;
    fraig_threshold = min config.fraig_threshold 1000;
    qbf_backend = Search_backend;
  }

type stats = {
  mutable pre_stats : Dqbf.Preprocess.stats option;
  mutable univ_elims : int;
  mutable exist_elims : int;
  mutable unitpure_elims : int;
  mutable maxsat_runs : int;
  mutable maxsat_set_size : int;
  mutable maxsat_time : float;
  mutable unitpure_time : float;
  mutable qbf_time : float;
  mutable peak_nodes : int;
  mutable total_time : float;
  mutable restarts : int;
  mutable degraded : string list;
  mutable check_level : string;
  mutable checks_run : int;
  mutable sat_conflicts : int;
  mutable sat_propagations : int;
  mutable fraig_merges : int;
  mutable dep_scheme : string;
  mutable analysis_edges_pruned : int;
  mutable analysis_linearized : bool;
  mutable inproc_mode : string;
  mutable inproc_rounds : int;
  mutable inproc_units : int;
  mutable inproc_scc_merges : int;
  mutable inproc_subsumed : int;
  mutable inproc_strengthened : int;
  mutable inproc_failed_lits : int;
  mutable inproc_bve : int;
  mutable inproc_clauses_removed : int;
  mutable inproc_lits_removed : int;
  mutable cert_status : string;
  mutable metrics : (string * float) list;
}

let fresh_stats () =
  {
    pre_stats = None;
    univ_elims = 0;
    exist_elims = 0;
    unitpure_elims = 0;
    maxsat_runs = 0;
    maxsat_set_size = 0;
    maxsat_time = 0.0;
    unitpure_time = 0.0;
    qbf_time = 0.0;
    peak_nodes = 0;
    total_time = 0.0;
    restarts = 0;
    degraded = [];
    check_level = "off";
    checks_run = 0;
    sat_conflicts = 0;
    sat_propagations = 0;
    fraig_merges = 0;
    dep_scheme = Analysis.Scheme.name Analysis.Scheme.Trivial;
    analysis_edges_pruned = 0;
    analysis_linearized = false;
    inproc_mode = Inproc.mode_name Inproc.Off;
    inproc_rounds = 0;
    inproc_units = 0;
    inproc_scc_merges = 0;
    inproc_subsumed = 0;
    inproc_strengthened = 0;
    inproc_failed_lits = 0;
    inproc_bve = 0;
    inproc_clauses_removed = 0;
    inproc_lits_removed = 0;
    cert_status = "-";
    metrics = [];
  }

exception Done of verdict

let sat_probe ~budget f =
  (* if the matrix alone is unsatisfiable, no Skolem functions exist *)
  let solver = Sat.Solver.create () in
  let enc = Aig.Cnf_enc.create solver in
  let out = Aig.Cnf_enc.sat_lit (F.man f) enc (F.matrix f) in
  Sat.Solver.add_clause solver [ out ];
  match Sat.Solver.solve ~budget ~conflict_limit:20000 solver with
  | Sat.Solver.Unsat -> raise (Done Unsat)
  | Sat.Solver.Sat | Sat.Solver.Unknown -> ()

let rollback_opt trail mark =
  match (trail, mark) with
  | Some trail, Some m -> Dqbf.Model_trail.rollback trail m
  | _ -> ()

let g_heap = Obs.Metrics.gauge "gc.heap_words.peak"

(* mirrors of [stats] fields that otherwise live only in the in-process
   record: shipping them through the metric registry lets the sweep
   supervisor rebuild a partial stats row for a worker that was killed by
   the wall-clock or memory governor before it could send its result
   frame (the registry delta rides in every partial IPC flush) *)
let g_restarts = Obs.Metrics.gauge "hqs.restarts"
let g_peak_nodes = Obs.Metrics.gauge "hqs.peak_nodes"
let m_unitpure_elims = Obs.Metrics.counter "hqs.unitpure_elims"
let g_maxsat_set = Obs.Metrics.gauge "hqs.maxsat_set"
let g_maxsat_time = Obs.Metrics.gauge "hqs.maxsat_time_s"
let g_unitpure_time = Obs.Metrics.gauge "hqs.unitpure_time_s"
let g_qbf_time = Obs.Metrics.gauge "hqs.qbf_time_s"

let metric_int m name =
  match Obs.Metrics.find m name with Some v -> int_of_float v | None -> 0

let solve_impl ~config ~budget ~trail ~ledger ~restarts f0 =
  let t_start = Budget.now () in
  let m_before = Obs.Metrics.snapshot () in
  let stats = fresh_stats () in
  stats.restarts <- restarts;
  Obs.Metrics.set_max g_restarts (float_of_int restarts);
  stats.check_level <- Check.level_name (config : config).check_level;
  Obs.Span.with_ "hqs.solve"
    ~attrs:[ ("restarts", Obs.Int restarts); ("vars", Obs.Int (F.next_var f0)) ]
  @@ fun () ->
  let f = F.copy f0 in
  M.set_node_limit (F.man f) config.node_limit;
  (* on a degraded restart, squeeze the matrix before eliminating: the
     blowup that caused the memout is often pure functional redundancy *)
  if restarts > 0 && config.use_fraig && M.cone_size (F.man f) (F.matrix f) > 64 then
    Degrade.attempt ledger ~chaos:config.chaos ~budget ~point:"fraig.initial" ~action:"skip"
      ~sub_seconds:5.0 ~sub_frac:0.25
      ~primary:(fun b ->
        let man, roots = Aig.Fraig.reduce ~budget:b (F.man f) [ F.matrix f ] in
        F.replace_man f man (List.hd roots))
      ~fallback:(fun () -> ())
      ();
  let queue = ref [] in
  let last_size = ref (M.num_nodes (F.man f)) in
  let fraig_floor = ref 0 in
  let note_size () =
    stats.peak_nodes <- max stats.peak_nodes (M.num_nodes (F.man f));
    Obs.Metrics.set_max g_peak_nodes (float_of_int stats.peak_nodes);
    Obs.Metrics.set_max g_heap (float_of_int (Budget.heap_words ()))
  in
  (* the soundness gate at each stage boundary (free when check_level=Off) *)
  let audit ?queue stage = Check.audit_stage ~level:config.check_level ?queue stage f in
  let compact_or_fraig () =
    note_size ();
    let cone = M.cone_size (F.man f) (F.matrix f) in
    if config.use_fraig && cone > config.fraig_threshold && cone > 2 * !fraig_floor then begin
      (* time-boxed sweep: a local timeout or node blowup degrades to a
         plain compaction instead of aborting the solve *)
      Degrade.attempt ledger ~chaos:config.chaos ~budget ~point:"fraig.sweep" ~action:"compact"
        ~sub_seconds:2.0 ~sub_frac:0.2
        ~primary:(fun b ->
          let man, roots = Aig.Fraig.reduce ~budget:b (F.man f) [ F.matrix f ] in
          F.replace_man f man (List.hd roots);
          last_size := M.num_nodes man;
          fraig_floor := M.cone_size man (F.matrix f))
        ~fallback:(fun () ->
          (* give up on sweeping this cone until it doubles again *)
          fraig_floor := cone;
          Obs.Span.with_ "aig.compact" ~attrs:[ ("nodes", Obs.Int (M.num_nodes (F.man f))) ]
          @@ fun () ->
          let man, roots = M.compact (F.man f) [ F.matrix f ] in
          F.replace_man f man (List.hd roots);
          last_size := M.num_nodes man)
        ();
      audit Check.Post_fraig
    end
    else if M.num_nodes (F.man f) > (2 * !last_size) + 1024 then begin
      (Obs.Span.with_ "aig.compact" ~attrs:[ ("nodes", Obs.Int (M.num_nodes (F.man f))) ]
      @@ fun () ->
      let man, roots = M.compact (F.man f) [ F.matrix f ] in
      F.replace_man f man (List.hd roots);
      last_size := M.num_nodes man);
      audit Check.Post_fraig
    end
  in
  let refill_queue () =
    let t0 = Budget.now () in
    Obs.Span.with_ "elim.select"
      ~attrs:[ ("universals", Obs.Int (F.num_universals f)); ("maxsat", Obs.Bool config.use_maxsat) ]
    @@ fun () ->
    let set =
      match config.mode with
      | Expand_all -> Bitset.to_list (F.universals f)
      | Elimination ->
          if config.use_maxsat then
            Degrade.attempt ledger ~chaos:config.chaos ~budget ~point:"maxsat.minset"
              ~action:"greedy" ~sub_seconds:5.0 ~sub_frac:0.25
              ~primary:(fun b -> Dqbf.Elimset.minimum_set ~budget:b f)
              ~fallback:(fun () -> Dqbf.Elimset.greedy_all f)
              ()
          else Dqbf.Elimset.greedy_all f
    in
    stats.maxsat_time <- stats.maxsat_time +. (Budget.now () -. t0);
    Obs.Metrics.set_max g_maxsat_time stats.maxsat_time;
    stats.maxsat_runs <- stats.maxsat_runs + 1;
    if stats.maxsat_runs = 1 then begin
      stats.maxsat_set_size <- List.length set;
      Obs.Metrics.set_max g_maxsat_set (float_of_int stats.maxsat_set_size)
    end;
    queue := Dqbf.Elimset.ordered_queue f set
  in
  let verdict =
    try
      if config.use_sat_probe then sat_probe ~budget f;
      let continue_ = ref true in
      while !continue_ do
        Budget.check budget;
        Obs.Sampler.tick ();
        note_size ();
        if M.is_true (F.matrix f) then raise (Done Sat);
        if M.is_false (F.matrix f) then raise (Done Unsat);
        Dqbf.Elim.prune_prefix ?trail f;
        (* unit / pure elimination (Theorems 5-6) *)
        let eliminated_up =
          if not config.use_unitpure then false
          else begin
            let t0 = Budget.now () in
            let r = Obs.Span.with_ "elim.unitpure" (fun () -> Dqbf.Elim.unit_pure_round ?trail f) in
            stats.unitpure_time <- stats.unitpure_time +. (Budget.now () -. t0);
            Obs.Metrics.set_max g_unitpure_time stats.unitpure_time;
            match r with
            | `Unsat -> raise (Done Unsat)
            | `Eliminated n ->
                stats.unitpure_elims <- stats.unitpure_elims + n;
                Obs.Metrics.incr ~by:n m_unitpure_elims;
                true
            | `None -> false
          end
        in
        if eliminated_up then audit Check.Post_unitpure
        else begin
          let must_linearize =
            match config.mode with
            | Elimination -> not (Dqbf.Depgraph.is_acyclic f)
            | Expand_all -> not (Bitset.is_empty (F.universals f))
          in
          if must_linearize then begin
            (* Theorem 2 on fully-dependent existentials, then one
               universal elimination (Theorem 1) *)
            if config.use_thm2 then begin
              let k =
                Obs.Span.with_ "elim.thm2" (fun () -> Dqbf.Elim.eliminate_full_existentials ?trail f)
              in
              stats.exist_elims <- stats.exist_elims + k;
              if k > 0 then audit Check.Post_elimination
            end;
            if not (M.is_const (F.matrix f)) then begin
              let rec next_univ () =
                match !queue with
                | x :: rest ->
                    queue := rest;
                    if F.is_universal f x then Some x else next_univ ()
                | [] -> None
              in
              let x =
                match next_univ () with
                | Some x -> Some x
                | None ->
                    refill_queue ();
                    next_univ ()
              in
              match x with
              | Some x ->
                  if Chaos.fire config.chaos "elim.universal" then begin
                    Degrade.record ledger ~point:"elim.universal" ~action:"memout"
                      ~reason:Degrade.Injected;
                    raise Budget.Out_of_memory_budget
                  end;
                  Dqbf.Elim.universal ?trail f x;
                  stats.univ_elims <- stats.univ_elims + 1;
                  audit ~queue:!queue Check.Post_elimination;
                  compact_or_fraig ()
              | None ->
                  (* no universal left to eliminate; the dependency graph
                     must be acyclic now *)
                  assert (Dqbf.Depgraph.is_acyclic f)
            end
          end
          else begin
            (* linear prefix: hand over to the QBF back end *)
            match Dqbf.Depgraph.qbf_prefix f with
            | None -> assert false
            | Some prefix ->
                if config.check_level <> Check.Off then
                  Check.audit_prefix ~stage:Check.Pre_backend f prefix;
                audit Check.Pre_backend;
                let t0 = Budget.now () in
                let run_elim stage_budget =
                  let on_define =
                    Option.map
                      (fun trail y man fn -> Dqbf.Model_trail.record_def trail man y fn)
                      trail
                  in
                  Qbf.Solver.solve ~config:config.qbf ~budget:stage_budget ?on_define (F.man f)
                    (F.matrix f) prefix
                in
                let run_search stage_budget =
                  let on_model =
                    Option.map
                      (fun trail mman defs ->
                        List.iter
                          (fun (y, fn) -> Dqbf.Model_trail.record_def trail mman y fn)
                          defs)
                      trail
                  in
                  Qbf.Qdpll.solve ~budget:stage_budget ?on_model (F.man f) (F.matrix f) prefix
                in
                let backend_name =
                  match config.qbf_backend with
                  | Search_backend -> "search"
                  | Elim_backend -> "elim"
                in
                let answer =
                  Obs.Span.with_ "qbf.backend"
                    ~attrs:
                      [
                        ("backend", Obs.Str backend_name);
                        ("nodes", Obs.Int (M.num_nodes (F.man f)));
                      ]
                  @@ fun () ->
                  match config.qbf_backend with
                  | Search_backend -> run_search budget
                  | Elim_backend ->
                      (* elimination can blow the node limit where search
                         cannot: fall back rather than report a memout *)
                      let mark = Option.map Dqbf.Model_trail.mark trail in
                      Degrade.attempt ledger ~chaos:config.chaos ~budget ~point:"qbf.elim"
                        ~action:"search" ~primary:run_elim
                        ~fallback:(fun () ->
                          rollback_opt trail mark;
                          run_search budget)
                        ()
                in
                stats.qbf_time <- stats.qbf_time +. (Budget.now () -. t0);
                Obs.Metrics.set_max g_qbf_time stats.qbf_time;
                raise (Done (if answer then Sat else Unsat))
          end
        end
      done;
      assert false
    with Done v -> v
  in
  (* remaining existentials (if any) are don't-cares on a SAT verdict *)
  (match (verdict, trail) with
  | Sat, Some trail ->
      List.iter (fun (y, _) -> Dqbf.Model_trail.record_const trail y false) (F.existentials f)
  | _ -> ());
  stats.degraded <- List.map Degrade.event_label (Degrade.events ledger);
  (* per-solve view of the process-wide metric registry *)
  let m_delta = Obs.Metrics.delta ~before:m_before ~after:(Obs.Metrics.snapshot ()) in
  stats.checks_run <- metric_int m_delta "check.audits";
  stats.sat_conflicts <- metric_int m_delta "sat.conflicts";
  stats.sat_propagations <- metric_int m_delta "sat.propagations";
  stats.fraig_merges <- metric_int m_delta "fraig.merges";
  stats.metrics <- Obs.Metrics.to_assoc m_delta;
  stats.total_time <- Budget.now () -. t_start;
  (verdict, stats)

(* one bounded restart: a mid-elimination memout (node limit, not the
   heap governor) retries the whole solve once with the degraded config
   before the memout is allowed to escape *)
let solve_recoverable ~config ~budget ~trail f0 =
  let t_start = Budget.now () in
  let ledger = Degrade.create () in
  let mark = Option.map Dqbf.Model_trail.mark trail in
  let verdict, stats =
    try solve_impl ~config ~budget ~trail ~ledger ~restarts:0 f0
    with Budget.Out_of_memory_budget
    when config.restart_on_memout && not (Budget.expired budget)
         && not (Budget.mem_exceeded budget) ->
      rollback_opt trail mark;
      Degrade.record ledger ~point:"solve" ~action:"restart-degraded" ~reason:Degrade.Node_limit;
      solve_impl ~config:(degraded_config config) ~budget ~trail ~ledger ~restarts:1 f0
  in
  stats.total_time <- Budget.now () -. t_start;
  (verdict, stats)

let solve_formula ?(config = default_config) ?(budget = Budget.unlimited) f0 =
  solve_recoverable ~config ~budget ~trail:None f0

let solve_formula_model ?(config = default_config) ?(budget = Budget.unlimited) f0 =
  let trail = Dqbf.Model_trail.create () in
  let verdict, stats = solve_recoverable ~config ~budget ~trail:(Some trail) f0 in
  let model =
    match verdict with
    | Unsat -> None
    | Sat ->
        let skolem = Dqbf.Model_trail.reconstruct trail in
        (* certify the witness against the original matrix before handing
           it out: a wrong Skolem function here means some stage lied *)
        if config.check_level = Check.Full then
          Check.audit_model ~budget ~stage:Check.Post_solve f0 skolem;
        Some (Dqbf.Skolem.restrict skolem ~keep:(Dqbf.Formula.is_existential f0))
  in
  (verdict, model, stats)

(* Static dependency-scheme refinement (lib/analysis), the first pipeline
   stage: prune spurious dependency edges on the prefixed CNF before any
   AIG is built, so CNF preprocessing (universal reduction in particular),
   the MaxSAT elimination-set selector and linearization all see the
   smaller dependency graph. The soundness gate semantically validates a
   sample of pruned edges at [Full] depth. *)
let refine_pcnf ~(config : config) ~budget pcnf =
  let refined, report = Analysis.Rp.analyze ~scheme:config.dep_scheme pcnf in
  Check.audit_dep_pruning ~budget ~level:config.check_level pcnf
    ~pruned:report.Analysis.Rp.pruned;
  (refined, report)

let record_analysis stats (report : Analysis.Rp.report) =
  stats.dep_scheme <- Analysis.Scheme.name report.Analysis.Rp.scheme;
  stats.analysis_edges_pruned <- List.length report.Analysis.Rp.pruned;
  stats.analysis_linearized <- report.Analysis.Rp.linearized

(* the inprocessing hook handed to [Dqbf.Preprocess.run]: audit the
   engine run against the refined CNF it consumed, and capture the
   result so its counters can be lifted into [stats] once those exist *)
let inproc_hook ~(config : config) ~budget refined captured outcome =
  Check.audit_inproc ~budget ~level:config.check_level refined outcome;
  match outcome with
  | Inproc.Simplified res -> captured := Some res
  | Inproc.Unsat -> ()

let record_inproc ~(config : config) stats captured =
  stats.inproc_mode <- Inproc.mode_name config.preprocess.Dqbf.Preprocess.inproc;
  match captured with
  | None -> ()
  | Some (res : Inproc.result) ->
      let s = res.Inproc.stats in
      stats.inproc_rounds <- s.Inproc.rounds;
      stats.inproc_units <- s.Inproc.units;
      stats.inproc_scc_merges <- s.Inproc.scc_merges;
      stats.inproc_subsumed <- s.Inproc.subsumed;
      stats.inproc_strengthened <- s.Inproc.strengthened;
      stats.inproc_failed_lits <- s.Inproc.failed_lits;
      stats.inproc_bve <- s.Inproc.bve_eliminated;
      stats.inproc_clauses_removed <- max 0 (s.Inproc.clauses_before - s.Inproc.clauses_after);
      stats.inproc_lits_removed <- max 0 (s.Inproc.lits_before - s.Inproc.lits_after)

let solve_pcnf ?(config = default_config) ?(budget = Budget.unlimited) pcnf =
  let refined, report = refine_pcnf ~config ~budget pcnf in
  let captured = ref None in
  let on_inproc = inproc_hook ~config ~budget refined captured in
  match
    Dqbf.Preprocess.run ~config:config.preprocess ?node_limit:config.node_limit ~on_inproc
      refined
  with
  | Dqbf.Preprocess.Unsat ->
      let stats = fresh_stats () in
      record_analysis stats report;
      record_inproc ~config stats !captured;
      (Unsat, stats)
  | Dqbf.Preprocess.Formula (f, pre) ->
      Check.audit_stage ~level:config.check_level Check.Post_preprocess f;
      let verdict, stats = solve_recoverable ~config ~budget ~trail:None f in
      stats.pre_stats <- Some pre;
      record_analysis stats report;
      record_inproc ~config stats !captured;
      (verdict, stats)

(* shared body of the model-producing entry points: the returned Skolem
   witness is unrestricted — it also covers variables the preprocessor
   folded away and undeclared existentials, so it certifies against the
   original (unpreprocessed) formula *)
let solve_pcnf_witness ~config ~budget pcnf =
  let trail = Dqbf.Model_trail.create () in
  let refined, report = refine_pcnf ~config ~budget pcnf in
  let captured = ref None in
  let on_inproc = inproc_hook ~config ~budget refined captured in
  match
    Dqbf.Preprocess.run ~config:config.preprocess ?node_limit:config.node_limit ~trail
      ~on_inproc refined
  with
  | Dqbf.Preprocess.Unsat ->
      let stats = fresh_stats () in
      record_analysis stats report;
      record_inproc ~config stats !captured;
      (Unsat, None, stats)
  | Dqbf.Preprocess.Formula (f, pre) ->
      Check.audit_stage ~level:config.check_level Check.Post_preprocess f;
      let verdict, stats = solve_recoverable ~config ~budget ~trail:(Some trail) f in
      stats.pre_stats <- Some pre;
      record_analysis stats report;
      record_inproc ~config stats !captured;
      let model =
        match verdict with
        | Unsat -> None
        | Sat ->
            let skolem = Dqbf.Model_trail.reconstruct trail in
            if config.check_level = Check.Full then
              Check.audit_model ~budget ~stage:Check.Post_solve (Dqbf.Pcnf.to_formula pcnf)
                skolem;
            Some skolem
      in
      (verdict, model, stats)

let restrict_to_declared pcnf skolem =
  let declared = Hqs_util.Bitset.of_list (List.map fst pcnf.Dqbf.Pcnf.exists) in
  Dqbf.Skolem.restrict skolem ~keep:(fun y -> Hqs_util.Bitset.mem y declared)

let solve_pcnf_model ?(config = default_config) ?(budget = Budget.unlimited) pcnf =
  let verdict, model, stats = solve_pcnf_witness ~config ~budget pcnf in
  (verdict, Option.map (restrict_to_declared pcnf) model, stats)

let solve_pcnf_certified ?(config = default_config) ?(budget = Budget.unlimited)
    ~instance_text pcnf =
  let verdict, model, stats = solve_pcnf_witness ~config ~budget pcnf in
  let cert =
    match (verdict, model) with
    | Sat, Some skolem -> Cert.of_skolem ~instance_text pcnf skolem
    | Sat, None ->
        (* the witness entry point always reconstructs a model on Sat *)
        assert false
    | Unsat, _ -> Cert.of_unsat ~budget ~instance_text pcnf
  in
  stats.cert_status <- Cert.status cert;
  (* audit before handing the artifact out: a failure here is the
     recovery-loop trigger, raised as a Check.Violation *)
  Check.audit_certificate ~budget ~level:config.check_level ~instance_text pcnf cert;
  (verdict, cert, Option.map (restrict_to_declared pcnf) model, stats)

let pp_stats fmt s =
  Format.fprintf fmt
    "univ-elims=%d exist-elims=%d unit/pure=%d maxsat-runs=%d maxsat-set=%d maxsat-time=%.3fs \
     unitpure-time=%.3fs qbf-time=%.3fs peak-nodes=%d sat-conflicts=%d sat-propagations=%d \
     fraig-merges=%d checks=%d check-level=%s total=%.3fs restarts=%d degraded=%s \
     dep-scheme=%s dep-pruned=%d linearized=%b inproc=%s inproc-rounds=%d inproc-units=%d \
     inproc-merges=%d inproc-subsumed=%d inproc-strengthened=%d inproc-failed-lits=%d \
     inproc-bve=%d inproc-clauses-removed=%d inproc-lits-removed=%d cert=%s"
    s.univ_elims s.exist_elims s.unitpure_elims s.maxsat_runs s.maxsat_set_size s.maxsat_time
    s.unitpure_time s.qbf_time s.peak_nodes s.sat_conflicts s.sat_propagations s.fraig_merges
    s.checks_run s.check_level s.total_time s.restarts
    (match s.degraded with [] -> "-" | l -> String.concat "," l)
    s.dep_scheme s.analysis_edges_pruned s.analysis_linearized s.inproc_mode s.inproc_rounds
    s.inproc_units s.inproc_scc_merges s.inproc_subsumed s.inproc_strengthened
    s.inproc_failed_lits s.inproc_bve s.inproc_clauses_removed s.inproc_lits_removed
    s.cert_status
