(** The graceful-degradation ladder.

    The expensive sub-steps of HQS — MaxSAT minimum-set selection, FRAIG
    sweeping, the elimination-based QBF back end — are accelerators, not
    correctness requirements: each has a cheaper semantics-preserving
    substitute (greedy elimination set, plain cone compaction, QDPLL
    search). This module runs a stage under a child {!Hqs_util.Budget}
    and, when the stage fails {e recoverably} (its own soft deadline
    passed while the enclosing solve is alive, or an AIG node-limit
    blowup that is not the global heap governor), records the degradation
    and runs the declared fallback instead of aborting the whole solve.

    A ledger collects which degradations fired; {!Hqs.stats} exposes the
    chronological labels so harness reports can show a degradation
    column. *)

type reason = Stage_timeout | Node_limit | Injected

type event = { point : string; action : string; reason : reason }

type t
(** A ledger of degradation events for one solve (restarts included). *)

val create : unit -> t
val record : t -> point:string -> action:string -> reason:reason -> unit

val events : t -> event list
(** Chronological. *)

val reason_label : reason -> string

val event_label : event -> string
(** ["point->action[reason]"], e.g. ["maxsat.minset->greedy[timeout]"]. *)

val attempt :
  t ->
  chaos:Hqs_util.Chaos.t ->
  budget:Hqs_util.Budget.t ->
  point:string ->
  action:string ->
  ?sub_seconds:float ->
  ?sub_frac:float ->
  primary:(Hqs_util.Budget.t -> 'a) ->
  fallback:(unit -> 'a) ->
  unit ->
  'a
(** [attempt ledger ~chaos ~budget ~point ~action ~primary ~fallback ()]
    runs [primary] under [Budget.sub ?seconds ?frac budget]. On
    [Budget.Timeout] with [budget] itself unexpired, or on
    [Budget.Out_of_memory_budget] while the heap governor of [budget] is
    not the culprit, the failure is recorded and [fallback] runs with the
    full remaining budget. Unrecoverable failures propagate. If the chaos
    plan fires at [point], [primary] is skipped entirely and [fallback]
    runs, recorded with reason [Injected]. The fallback itself is not
    protected: it must be cheap and total by design. *)
