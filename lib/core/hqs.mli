(** HQS — the paper's solver (Fig. 3): decide a DQBF by eliminating a
    minimum set of universal variables (chosen by partial MaxSAT over the
    dependency graph) until the prefix is linearly orderable, then hand the
    AIG to the QBF back end.

    The main loop interleaves, exactly as in the paper:
    - unit/pure detection on the AIG (Theorems 5-6),
    - elimination of existentials depending on all universals (Theorem 2),
    - elimination of the next queued universal variable (Theorem 1),
      cheapest first (fewest existential copies),
    - FRAIG compaction when the graph grows.

    The expensive accelerators degrade gracefully instead of aborting the
    solve: each fallible stage runs under a child {!Hqs_util.Budget} with
    a declared fallback (MaxSAT minimum set -> greedy set, FRAIG sweep ->
    plain compaction, elimination QBF back end -> QDPLL search on a
    node-limit blowup), and a mid-elimination node-limit memout triggers
    one bounded restart with a degraded config (aggressive sweeping,
    search back end) before [Out_of_memory_budget] is allowed to escape.
    Which degradations fired is recorded in {!stats}. Every fallback path
    can be exercised deterministically through the {!Hqs_util.Chaos}
    injection points ["maxsat.minset"], ["fraig.sweep"], ["fraig.initial"],
    ["qbf.elim"] and ["elim.universal"]. *)

type verdict = Sat | Unsat

type mode =
  | Elimination  (** the paper's strategy: make the prefix QBF-expressible *)
  | Expand_all
      (** the ICCD'13 baseline ([10]): eliminate every universal variable
          and finish with a SAT call *)

type qbf_backend =
  | Elim_backend  (** AIG elimination, the AIGSOLVE role (default) *)
  | Search_backend  (** clause-level QDPLL search, the DepQBF role *)

type config = {
  preprocess : Dqbf.Preprocess.config;
  mode : mode;
  use_unitpure : bool;
  use_thm2 : bool;  (** eliminate existentials with full dependency sets *)
  use_maxsat : bool;  (** false: eliminate all difference variables (greedy) *)
  use_fraig : bool;
  fraig_threshold : int;
  use_sat_probe : bool;
      (** one up-front SAT call on the matrix: if the matrix alone is
          unsatisfiable, so is the DQBF (the improvement sketched in the
          paper's Section IV discussion of iDQ's cheap refutations) *)
  node_limit : int option;  (** memout emulation *)
  qbf : Qbf.Solver.config;
  qbf_backend : qbf_backend;
  chaos : Hqs_util.Chaos.t;
      (** deterministic fault injection into the degradation ladder;
          {!Hqs_util.Chaos.off} (the default) never fires *)
  restart_on_memout : bool;
      (** retry the solve once with {!degraded_config} when the AIG node
          limit is hit mid-elimination (heap-governor memouts and second
          failures still escape) *)
  check_level : Check.level;
      (** soundness-auditor depth at every stage boundary (see {!Check}):
          [Off] is free, [Cheap] scans the prefix, [Full] deep-audits the
          AIG manager and certifies Skolem models with an independent SAT
          call. Defaults to the [HQS_CHECK] environment variable ([Off]
          when unset or malformed — the CLI reports malformed values).
          Violations escape the solve as {!Check.Violation}. *)
  dep_scheme : Analysis.Scheme.t;
      (** static dependency scheme applied to the prefixed CNF before
          preprocessing (see {!Analysis.Rp}): [Rp] (the default) prunes
          spurious dependency edges via resolution paths, shrinking the
          MaxSAT elimination sets and sometimes proving the prefix
          already linearly orderable; [Trivial] keeps the prefix as
          written. Defaults to the [HQS_DEP_SCHEME] environment variable
          ([rp] when unset or malformed — the CLI reports malformed
          values). Only [solve_pcnf]/[solve_pcnf_model] run the analyzer;
          the [solve_formula] entry points take the prefix as given. *)
}

val default_config : config

val degraded_config : config -> config
(** The bounded-restart config: same limits, aggressive FRAIG sweeping
    ([fraig_threshold <= 1000]) and the QDPLL search back end, which does
    not grow the AIG. *)

type stats = {
  mutable pre_stats : Dqbf.Preprocess.stats option;
  mutable univ_elims : int;
  mutable exist_elims : int;
  mutable unitpure_elims : int;
  mutable maxsat_runs : int;
  mutable maxsat_set_size : int;  (** size of the first elimination set *)
  mutable maxsat_time : float;
  mutable unitpure_time : float;
  mutable qbf_time : float;
  mutable peak_nodes : int;
  mutable total_time : float;
  mutable restarts : int;  (** degraded restarts taken (0 or 1) *)
  mutable degraded : string list;
      (** chronological degradation labels, e.g.
          ["maxsat.minset->greedy[timeout]"; "solve->restart-degraded[node-limit]"];
          empty when every stage ran at full strength *)
  mutable check_level : string;  (** the auditor depth this solve ran under *)
  mutable checks_run : int;  (** stage audits executed (see {!Check}) *)
  mutable sat_conflicts : int;  (** CDCL conflicts across every embedded SAT call *)
  mutable sat_propagations : int;
  mutable fraig_merges : int;  (** equivalence classes collapsed by FRAIG sweeping *)
  mutable dep_scheme : string;
      (** the dependency scheme the prefix was refined under (["trivial"]
          for the [solve_formula] entry points, which skip the analyzer) *)
  mutable analysis_edges_pruned : int;
      (** dependency edges removed by the static analyzer *)
  mutable analysis_linearized : bool;
      (** the analyzer alone made the dependency graph linearly orderable
          — the solve skipped universal expansion *)
  mutable inproc_mode : string;
      (** the {!Inproc} engine mode the solve ran under (["off"] when the
          legacy preprocessing fixpoint was used) *)
  mutable inproc_rounds : int;  (** engine fixpoint rounds *)
  mutable inproc_units : int;  (** units propagated by the engine *)
  mutable inproc_scc_merges : int;  (** BIG/SCC equivalence substitutions *)
  mutable inproc_subsumed : int;  (** clauses removed by subsumption *)
  mutable inproc_strengthened : int;  (** literals struck by self-subsumption *)
  mutable inproc_failed_lits : int;  (** failed literals found by BIG probing *)
  mutable inproc_bve : int;  (** existentials removed by Henkin-legal BVE *)
  mutable inproc_clauses_removed : int;  (** net clause reduction by the engine *)
  mutable inproc_lits_removed : int;  (** net literal reduction by the engine *)
  mutable cert_status : string;
      (** certificate outcome of a {!solve_pcnf_certified} run: ["SAT"],
          ["UNSAT"], ["UNCERTIFIED"], or ["-"] when no artifact was
          requested *)
  mutable metrics : (string * float) list;
      (** full per-solve snapshot of the {!Obs.Metrics} registry (counters
          and histogram series as deltas over the solve, gauges as final
          values), sorted by name — the source for the harness CSV columns *)
}

val solve_formula :
  ?config:config -> ?budget:Hqs_util.Budget.t -> Dqbf.Formula.t -> verdict * stats
(** Decides the DQBF. The input formula is copied, not mutated.
    @raise Hqs_util.Budget.Timeout on deadline.
    @raise Hqs_util.Budget.Out_of_memory_budget when the node limit is hit. *)

val solve_pcnf :
  ?config:config -> ?budget:Hqs_util.Budget.t -> Dqbf.Pcnf.t -> verdict * stats
(** Full pipeline from a prefixed CNF, including CNF preprocessing. *)

val solve_formula_model :
  ?config:config ->
  ?budget:Hqs_util.Budget.t ->
  Dqbf.Formula.t ->
  verdict * Dqbf.Skolem.t option * stats
(** Like {!solve_formula}, additionally reconstructing Skolem functions
    (Definition 2) on a [Sat] verdict. The model covers exactly the
    formula's existential variables and can be checked independently with
    {!Dqbf.Skolem.verify}. *)

val solve_pcnf_model :
  ?config:config ->
  ?budget:Hqs_util.Budget.t ->
  Dqbf.Pcnf.t ->
  verdict * Dqbf.Skolem.t option * stats
(** Like {!solve_pcnf} with Skolem reconstruction; preprocessing steps
    (units, equivalences, gate substitutions) are folded into the model. *)

val solve_pcnf_certified :
  ?config:config ->
  ?budget:Hqs_util.Budget.t ->
  instance_text:string ->
  Dqbf.Pcnf.t ->
  verdict * Cert.t * Dqbf.Skolem.t option * stats
(** Like {!solve_pcnf_model}, additionally materializing an externally
    checkable certificate ({!Cert}): a Skolem-AIG artifact on [Sat], a
    universal-expansion refutation (or an explicit [Uncertified] marker
    past the expansion cap) on [Unsat]. [instance_text] must be the
    exact bytes [pcnf] was parsed from — the artifact embeds their
    fingerprint. The artifact is audited in-process at the configured
    {!Check.level} before being returned; an audit failure raises
    {!Check.Violation} at the [Post_certify] stage, which callers treat
    like a crash (re-solve escalated, evict caches, quarantine). *)

val pp_stats : Format.formatter -> stats -> unit
