open Hqs_util

type reason = Stage_timeout | Node_limit | Injected
type event = { point : string; action : string; reason : reason }
type t = { mutable rev_events : event list }

let create () = { rev_events = [] }

let reason_label = function
  | Stage_timeout -> "timeout"
  | Node_limit -> "node-limit"
  | Injected -> "injected"

let c_degrade_events = Obs.Metrics.counter "degrade.events"

let record t ~point ~action ~reason =
  t.rev_events <- { point; action; reason } :: t.rev_events;
  Obs.Metrics.incr c_degrade_events;
  (* surfaces on the enclosing span in the trace, so chaos injections and
     real stage failures are visible exactly where they fired *)
  Obs.Span.event "degrade"
    ~attrs:
      [
        ("point", Obs.Str point); ("action", Obs.Str action); ("reason", Obs.Str (reason_label reason));
      ]
    ()

let events t = List.rev t.rev_events

let event_label e = Printf.sprintf "%s->%s[%s]" e.point e.action (reason_label e.reason)

let attempt t ~chaos ~budget ~point ~action ?sub_seconds ?sub_frac ~primary ~fallback () =
  if Chaos.fire chaos point then begin
    record t ~point ~action ~reason:Injected;
    fallback ()
  end
  else
    let stage_budget = Budget.sub ?seconds:sub_seconds ?frac:sub_frac budget in
    match primary stage_budget with
    | v -> v
    | exception Budget.Timeout when not (Budget.expired budget) ->
        record t ~point ~action ~reason:Stage_timeout;
        fallback ()
    | exception Budget.Out_of_memory_budget when not (Budget.mem_exceeded budget) ->
        record t ~point ~action ~reason:Node_limit;
        fallback ()
