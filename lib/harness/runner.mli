(** Timed solver runs with the paper's abort criteria (Section IV): a
    wall-clock timeout and a memory cap, the latter emulated by an AIG node
    budget. *)

type outcome =
  | Solved of bool * float  (** verdict, seconds *)
  | Timeout of float  (** seconds burned before the deadline fired *)
  | Memout of float
  | Crash of float
      (** the solve died without a classified result: a [Stack_overflow]
          in-process, or — under the supervised executor ({!Sweep}) — a
          worker that exhausted its retry budget (segfault, chaos kill,
          torn result frame) *)

type soundness =
  | Consistent
  | Disagreement of { hqs_sat : bool; idq_sat : bool }
      (** both solvers finished with opposite verdicts — a soundness
          alarm, recorded instead of crashing the sweep so one bad
          instance cannot take down a whole benchmark run *)

type result = {
  id : string;
  family : string;
  sat_expected : bool option;  (** ground truth when known *)
  hqs : outcome;
  idq : outcome;
  hqs_degraded : string list;
      (** degradation labels from {!Hqs.stats} (empty when every stage ran
          at full strength, or when the run did not finish) *)
  hqs_stats : Hqs.stats option;
      (** full solve statistics, [None] when the run timed or memed out
          before producing a verdict — the source of the metric columns in
          {!Report.csv} *)
  soundness : soundness;
  attempts : int;
      (** worker processes spawned for the HQS solve under the supervised
          executor; always 1 for in-process runs *)
  worker_pid : int option;
      (** pid of the (final) HQS worker when process-isolated, [None] for
          in-process runs *)
  cert_path : string option;
      (** path of the certificate artifact when the sweep ran with a
          certify directory and the HQS solve finished, [None] otherwise *)
}

val is_solved : outcome -> bool
val time_of : outcome -> float

val run_hqs :
  ?config:Hqs.config ->
  timeout:float ->
  node_limit:int ->
  Dqbf.Pcnf.t ->
  outcome * Hqs.stats option
(** Outcome plus the solve statistics (including degradation labels, see
    {!Hqs.stats.degraded}); [None] when the run did not finish. *)

val run_hqs_certified :
  ?config:Hqs.config ->
  timeout:float ->
  node_limit:int ->
  dir:string ->
  id:string ->
  Dqbf.Pcnf.t ->
  outcome * Hqs.stats option * string option
(** Like {!run_hqs} through {!Hqs.solve_pcnf_certified}: on a finished
    solve, writes [<dir>/<id>.dqdimacs] (the exact fingerprinted instance
    bytes) and [<dir>/<id>.cert] and returns the certificate path, so
    [certcheck] can audit the pair with no other sweep state. A run that
    times or bails out leaves no artifact ([None]). *)

val run_idq : timeout:float -> node_limit:int -> Dqbf.Pcnf.t -> outcome

val run_instance :
  ?hqs_config:Hqs.config ->
  timeout:float ->
  node_limit:int ->
  Circuit.Families.instance ->
  result
(** Run both solvers on a PEC instance. If both solve it, their verdicts
    are compared; a mismatch is recorded as {!Disagreement} in
    [soundness]. *)
