(** Process-isolated benchmark sweeps over {!Exec.Supervisor}.

    Every [(instance, solver)] pair becomes one supervised task —
    ["<instance>/hqs"] and ["<instance>/idq"] — executed in a forked
    worker under kernel resource limits. The worker runs the ordinary
    in-process {!Runner} entry point (so the paper's wall/node budgets
    still classify TO/MO cleanly) and ships the outcome, {!Hqs.stats} and
    {!Obs.Metrics} deltas back over the IPC pipe; the parent reassembles
    per-instance {!Runner.result}s, cross-checks HQS against iDQ for
    soundness, and absorbs the child metric deltas into its own registry.

    A worker death the frame cannot explain (segfault, chaos kill, torn
    frame) is retried with backoff and eventually surfaces as
    {!Runner.Crash} — the sweep always terminates with one result per
    instance. With [?journal]/[?resume], an interrupted sweep can be
    rerun and will fork workers only for the tasks that have no
    checksum-valid journal line. *)

type config = {
  timeout : float;  (** per-solve wall budget (in-process, as before) *)
  node_limit : int;  (** per-solve AIG node budget *)
  hqs_config : Hqs.config option;
  exec : Exec.Supervisor.config;  (** jobs, kernel limits, retries, chaos *)
  certify_dir : string option;
      (** when set, each HQS worker solves through
          {!Hqs.solve_pcnf_certified} and drops
          [<dir>/<id>.dqdimacs] + [<dir>/<id>.cert] there; the artifact
          path rides the result frame into {!Runner.result.cert_path},
          the journal and the CSV [cert] column *)
}

val default_config : timeout:float -> node_limit:int -> config
(** In-process budgets as given; executor at {!Exec.Supervisor.default_config}
    (1 job, no kernel limits, 3 attempts). *)

type progress = {
  task : string;  (** ["<instance>/hqs"] or ["<instance>/idq"] *)
  outcome : Runner.outcome;
  attempts : int;
  from_journal : bool;
}

type sweep_report = {
  results : Runner.result list;  (** one per instance, in input order *)
  executed : int;  (** workers actually forked *)
  journaled : int;  (** tasks replayed from the resume journal *)
  journal_dropped : int;  (** torn/corrupt journal lines skipped *)
}

type item = { id : string; family : string; pcnf : Dqbf.Pcnf.t }
(** One sweep subject — an instance id, its reporting family and the
    formula. {!item_of_instance} adapts a generated PEC instance; the CLI
    builds items straight from parsed DQDIMACS files. *)

val item_of_instance : Circuit.Families.instance -> item

type solver = Hqs_run | Idq_run

val task_id : item -> solver -> string
(** ["<instance-id>/hqs"] or ["<instance-id>/idq"] — the supervised task
    (and journal) key. *)

val run :
  ?config:config ->
  ?journal:string ->
  ?resume:string ->
  ?on_progress:(progress -> unit) ->
  item list ->
  sweep_report
(** Supervised sweep over the instances. [?journal], [?resume] and the
    retry/chaos machinery behave as in {!Exec.Supervisor.run}; the same
    path may be passed to both so repeated invocations converge on a
    fully-journaled sweep that forks nothing.

    The [attempts]/[worker_pid] of each {!Runner.result} come from the
    instance's HQS task. [Hqs.stats.pre_stats] does not survive the
    process boundary (always [None] here). *)

val run_instances :
  ?config:config ->
  ?journal:string ->
  ?resume:string ->
  ?on_progress:(progress -> unit) ->
  Circuit.Families.instance list ->
  sweep_report
(** {!run} over generated PEC instances (the bench harness entry). *)

(**/**)

val outcome_to_json : Runner.outcome -> Obs.Json.t
val outcome_of_json : Obs.Json.t -> Runner.outcome option
val stats_to_json : Hqs.stats -> Obs.Json.t
val stats_of_json : Obs.Json.t -> Hqs.stats option
(** Wire codecs, exposed for tests. *)

(**/**)
