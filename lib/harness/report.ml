open Runner

type summary = {
  solved : int;
  sat : int;
  unsat : int;
  to_ : int;
  mo : int;
  crash : int;
  common_time : float;
}

let summarize pick other results =
  List.fold_left
    (fun acc r ->
      let mine = pick r and theirs = other r in
      match mine with
      | Solved (v, t) ->
          {
            acc with
            solved = acc.solved + 1;
            sat = (acc.sat + if v then 1 else 0);
            unsat = (acc.unsat + if v then 0 else 1);
            common_time = (acc.common_time +. if is_solved theirs then t else 0.0);
          }
      | Timeout _ -> { acc with to_ = acc.to_ + 1 }
      | Memout _ -> { acc with mo = acc.mo + 1 }
      | Crash _ -> { acc with crash = acc.crash + 1 })
    { solved = 0; sat = 0; unsat = 0; to_ = 0; mo = 0; crash = 0; common_time = 0.0 }
    results

let families results =
  List.fold_left (fun acc r -> if List.mem r.family acc then acc else acc @ [ r.family ]) [] results

let degraded_count rs = List.length (List.filter (fun r -> r.hqs_degraded <> []) rs)
let disagreements rs = List.filter (fun r -> r.soundness <> Consistent) rs

let is_crash = function Crash _ -> true | Solved _ | Timeout _ | Memout _ -> false
let crashed rs = List.filter (fun r -> is_crash r.hqs || is_crash r.idq) rs

let table1 results =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%-10s %5s | %6s %11s %8s %9s %10s %5s | %6s %11s %8s %9s %10s" "family" "#inst" "HQS"
    "(SAT/UNS)" "unsolv" "(TO/MO)" "time" "degr" "iDQ" "(SAT/UNS)" "unsolv" "(TO/MO)" "time";
  line "%s" (String.make 124 '-');
  let row name rs =
    let h = summarize (fun r -> r.hqs) (fun r -> r.idq) rs in
    let i = summarize (fun r -> r.idq) (fun r -> r.hqs) rs in
    line "%-10s %5d | %6d %11s %8d %9s %10.2f %5d | %6d %11s %8d %9s %10.2f" name (List.length rs)
      h.solved
      (Printf.sprintf "(%d/%d)" h.sat h.unsat)
      (h.to_ + h.mo + h.crash)
      (Printf.sprintf "(%d/%d)" h.to_ h.mo)
      h.common_time (degraded_count rs) i.solved
      (Printf.sprintf "(%d/%d)" i.sat i.unsat)
      (i.to_ + i.mo + i.crash)
      (Printf.sprintf "(%d/%d)" i.to_ i.mo)
      i.common_time
  in
  List.iter (fun fam -> row fam (List.filter (fun r -> r.family = fam) results)) (families results);
  line "%s" (String.make 124 '-');
  row "total" results;
  (match disagreements results with
  | [] -> ()
  | bad ->
      line "SOUNDNESS ALARM: %d verdict disagreement(s): %s" (List.length bad)
        (String.concat ", " (List.map (fun r -> r.id) bad)));
  (match crashed results with
  | [] -> ()
  | bad ->
      line "CRASH: %d instance(s) quarantined after exhausting retries: %s" (List.length bad)
        (String.concat ", " (List.map (fun r -> r.id) bad)));
  Buffer.contents buf

let fig4 ?(timeout = 5.0) results =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# Fig. 4 data: one point per instance (x = iDQ, y = HQS); TO/MO on the rails";
  line "%-28s %-10s %10s %10s" "instance" "family" "idq_s" "hqs_s";
  let show = function
    | Solved (_, t) -> Printf.sprintf "%10.3f" t
    | Timeout _ -> "        TO"
    | Memout _ -> "        MO"
    | Crash _ -> "        CR"
  in
  List.iter (fun r -> line "%-28s %-10s %s %s" r.id r.family (show r.idq) (show r.hqs)) results;
  (* ASCII log-log scatter *)
  let w = 56 and h = 24 in
  let lo = 1e-4 in
  let rail_factor = 3.0 in
  let hi = timeout *. rail_factor in
  let coord t axis_len =
    let t = max t lo in
    let frac = log (t /. lo) /. log (hi /. lo) in
    let c = int_of_float (frac *. float_of_int (axis_len - 1)) in
    max 0 (min (axis_len - 1) c)
  in
  let value_of = function
    | Solved (_, t) -> max t lo
    | Timeout _ | Memout _ | Crash _ -> hi (* rail *)
  in
  let grid = Array.make_matrix h w ' ' in
  (* diagonal *)
  for i = 0 to min w h - 1 do
    grid.(h - 1 - (i * h / w)).(i) <- '.'
  done;
  List.iter
    (fun r ->
      let xc = coord (value_of r.idq) w in
      let yc = coord (value_of r.hqs) h in
      let cell = grid.(h - 1 - yc).(xc) in
      grid.(h - 1 - yc).(xc) <- (if cell = '*' || cell = '#' then '#' else '*'))
    results;
  line "";
  line "  HQS time ^  (log scale %.0e .. TO/MO rail)" lo;
  Array.iter (fun row -> line "  |%s" (String.init w (Array.get row))) grid;
  line "  +%s> iDQ time" (String.make w '-');
  line "  points below the diagonal: HQS faster; '#': several instances";
  Buffer.contents buf

let headline results =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let hqs_solved = List.filter (fun r -> is_solved r.hqs) results in
  let idq_solved = List.filter (fun r -> is_solved r.idq) results in
  let idq_not_hqs = List.filter (fun r -> not (is_solved r.hqs)) idq_solved in
  line "instances: %d" (List.length results);
  line "solved by HQS: %d, by iDQ: %d" (List.length hqs_solved) (List.length idq_solved);
  line "solved by iDQ but not HQS: %d (paper: 0)" (List.length idq_not_hqs);
  if idq_solved <> [] then
    line "HQS solves %.0f%% more instances than iDQ (paper: ~50%% more)"
      (100.0
      *. (float_of_int (List.length hqs_solved) /. float_of_int (List.length idq_solved) -. 1.0));
  let sub_second l pick =
    List.length (List.filter (fun r -> match pick r with Solved (_, t) -> t < 1.0 | _ -> false) l)
  in
  if hqs_solved <> [] then
    line "HQS solved in < 1 s: %d of %d (paper: ~90%%); iDQ: %d of %d (paper: ~49%%)"
      (sub_second hqs_solved (fun r -> r.hqs))
      (List.length hqs_solved)
      (sub_second idq_solved (fun r -> r.idq))
      (List.length idq_solved);
  let speedups =
    List.filter_map
      (fun r ->
        match (r.hqs, r.idq) with
        | Solved (_, th), Solved (_, ti) when th > 0.0 -> Some (ti /. max th 1e-4)
        | _ -> None)
      results
  in
  (match speedups with
  | [] -> ()
  | l ->
      let max_s = List.fold_left max neg_infinity l in
      line "max speedup of HQS over iDQ on commonly solved: %.0fx (paper: up to 10^4)" max_s);
  (let d = degraded_count results in
   if d > 0 then line "HQS runs that degraded an accelerator (still solved/counted): %d" d);
  (match disagreements results with
  | [] -> ()
  | bad -> line "SOUNDNESS ALARM: verdict disagreements: %d" (List.length bad));
  Buffer.contents buf

(* JSON cells for counters that only exist when the solve reached a
   verdict. Baseline writers must not leak an in-band sentinel (-1)
   into the artifact: a missing counter is [null], never a number a
   downstream aggregate could sum. *)
let json_int_cell = function Some n -> string_of_int n | None -> "null"
let json_bool_cell = function Some b -> string_of_bool b | None -> "null"

(* stable CSV schema: base columns first, then the per-solve metric
   columns in this fixed order. Rows whose solve did not finish (TO/MO
   before a verdict) leave the metric cells empty rather than shifting
   the layout. *)
let csv_metric_columns =
  [
    ("hqs_restarts", fun (s : Hqs.stats) -> string_of_int s.Hqs.restarts);
    ("hqs_peak_nodes", fun s -> string_of_int s.Hqs.peak_nodes);
    ("hqs_univ_elims", fun s -> string_of_int s.Hqs.univ_elims);
    ("hqs_exist_elims", fun s -> string_of_int s.Hqs.exist_elims);
    ("hqs_unitpure_elims", fun s -> string_of_int s.Hqs.unitpure_elims);
    ("hqs_maxsat_set", fun s -> string_of_int s.Hqs.maxsat_set_size);
    ("hqs_maxsat_time", fun s -> Printf.sprintf "%.3f" s.Hqs.maxsat_time);
    ("hqs_qbf_time", fun s -> Printf.sprintf "%.3f" s.Hqs.qbf_time);
    ("hqs_sat_conflicts", fun s -> string_of_int s.Hqs.sat_conflicts);
    ("hqs_sat_propagations", fun s -> string_of_int s.Hqs.sat_propagations);
    ("hqs_fraig_merges", fun s -> string_of_int s.Hqs.fraig_merges);
    ("hqs_checks", fun s -> string_of_int s.Hqs.checks_run);
  ]

(* the static-analysis columns ride behind the executor block (again so
   the pre-existing columns keep their byte positions); cells are empty
   for runs without stats, like the metric block *)
let csv_analysis_columns =
  [
    ("hqs_dep_scheme", fun (s : Hqs.stats) -> s.Hqs.dep_scheme);
    ("hqs_analysis_edges_pruned", fun s -> string_of_int s.Hqs.analysis_edges_pruned);
    ("hqs_analysis_linearized", fun s -> if s.Hqs.analysis_linearized then "1" else "0");
  ]

(* the inprocessing-engine columns append after the analysis block, same
   stable-schema rule: new columns only ever ride at the end *)
let csv_inproc_columns =
  [
    ("hqs_inproc_mode", fun (s : Hqs.stats) -> s.Hqs.inproc_mode);
    ("hqs_inproc_rounds", fun s -> string_of_int s.Hqs.inproc_rounds);
    ("hqs_inproc_units", fun s -> string_of_int s.Hqs.inproc_units);
    ("hqs_inproc_scc_merges", fun s -> string_of_int s.Hqs.inproc_scc_merges);
    ("hqs_inproc_subsumed", fun s -> string_of_int s.Hqs.inproc_subsumed);
    ("hqs_inproc_strengthened", fun s -> string_of_int s.Hqs.inproc_strengthened);
    ("hqs_inproc_failed_lits", fun s -> string_of_int s.Hqs.inproc_failed_lits);
    ("hqs_inproc_bve", fun s -> string_of_int s.Hqs.inproc_bve);
    ("hqs_inproc_clauses_removed", fun s -> string_of_int s.Hqs.inproc_clauses_removed);
    ("hqs_inproc_lits_removed", fun s -> string_of_int s.Hqs.inproc_lits_removed);
  ]

let csv results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "id,family,hqs_outcome,hqs_time,idq_outcome,idq_time,hqs_degraded,check";
  List.iter (fun (name, _) -> Buffer.add_string buf ("," ^ name)) csv_metric_columns;
  (* executor columns, appended after the metric block so every
     pre-existing column keeps its position byte-for-byte *)
  Buffer.add_string buf ",outcome,attempts,worker_pid";
  List.iter (fun (name, _) -> Buffer.add_string buf ("," ^ name)) csv_analysis_columns;
  List.iter (fun (name, _) -> Buffer.add_string buf ("," ^ name)) csv_inproc_columns;
  (* certification columns, last per the stable-schema rule *)
  Buffer.add_string buf ",hqs_cert_status,cert";
  Buffer.add_char buf '\n';
  let cells = function
    | Solved (true, t) -> ("SAT", t)
    | Solved (false, t) -> ("UNSAT", t)
    | Timeout t -> ("TO", t)
    | Memout t -> ("MO", t)
    | Crash t -> ("CRASH", t)
  in
  let classify = function
    | Solved _ -> "solved"
    | Timeout _ -> "timeout"
    | Memout _ -> "memout"
    | Crash _ -> "crash"
  in
  List.iter
    (fun r ->
      let ho, ht = cells r.hqs and io, it = cells r.idq in
      let degr = match r.hqs_degraded with [] -> "-" | l -> String.concat ";" l in
      let chk = match r.soundness with Consistent -> "ok" | Disagreement _ -> "DISAGREE" in
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%.3f,%s,%.3f,%s,%s" r.id r.family ho ht io it degr chk);
      List.iter
        (fun (_, cell) ->
          Buffer.add_char buf ',';
          match r.hqs_stats with Some s -> Buffer.add_string buf (cell s) | None -> ())
        csv_metric_columns;
      Buffer.add_string buf
        (Printf.sprintf ",%s,%d,%s" (classify r.hqs) r.attempts
           (match r.worker_pid with Some p -> string_of_int p | None -> ""));
      List.iter
        (fun (_, cell) ->
          Buffer.add_char buf ',';
          match r.hqs_stats with Some s -> Buffer.add_string buf (cell s) | None -> ())
        csv_analysis_columns;
      List.iter
        (fun (_, cell) ->
          Buffer.add_char buf ',';
          match r.hqs_stats with Some s -> Buffer.add_string buf (cell s) | None -> ())
        csv_inproc_columns;
      Buffer.add_string buf
        (Printf.sprintf ",%s,%s"
           (match r.hqs_stats with Some s -> s.Hqs.cert_status | None -> "")
           (match r.cert_path with Some p -> p | None -> ""));
      Buffer.add_char buf '\n')
    results;
  Buffer.contents buf
