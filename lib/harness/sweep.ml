module Json = Obs.Json
module Sup = Exec.Supervisor

(* ------------------------------------------------------------------ ids *)

type item = { id : string; family : string; pcnf : Dqbf.Pcnf.t }

let item_of_instance (inst : Circuit.Families.instance) =
  {
    id = inst.Circuit.Families.id;
    family = inst.Circuit.Families.family;
    pcnf = inst.Circuit.Families.pcnf;
  }

type solver = Hqs_run | Idq_run

let solver_suffix = function Hqs_run -> "hqs" | Idq_run -> "idq"
let task_id item solver = item.id ^ "/" ^ solver_suffix solver

(* ---------------------------------------------------------------- config *)

type config = {
  timeout : float;
  node_limit : int;
  hqs_config : Hqs.config option;
  exec : Sup.config;
  certify_dir : string option;
}

let default_config ~timeout ~node_limit =
  { timeout; node_limit; hqs_config = None; exec = Sup.default_config; certify_dir = None }

type progress = {
  task : string;
  outcome : Runner.outcome;
  attempts : int;
  from_journal : bool;
}

type sweep_report = {
  results : Runner.result list;
  executed : int;
  journaled : int;
  journal_dropped : int;
}

(* --------------------------------------------------- outcome (de)coding *)

let outcome_to_json = function
  | Runner.Solved (v, t) ->
      Json.Obj [ ("o", Json.Str (if v then "SAT" else "UNSAT")); ("t", Json.Num t) ]
  | Runner.Timeout t -> Json.Obj [ ("o", Json.Str "TO"); ("t", Json.Num t) ]
  | Runner.Memout t -> Json.Obj [ ("o", Json.Str "MO"); ("t", Json.Num t) ]
  | Runner.Crash t -> Json.Obj [ ("o", Json.Str "CRASH"); ("t", Json.Num t) ]

let outcome_of_json j =
  match
    ( Option.bind (Json.member "o" j) Json.to_string,
      Option.bind (Json.member "t" j) Json.to_number )
  with
  | Some "SAT", Some t -> Some (Runner.Solved (true, t))
  | Some "UNSAT", Some t -> Some (Runner.Solved (false, t))
  | Some "TO", Some t -> Some (Runner.Timeout t)
  | Some "MO", Some t -> Some (Runner.Memout t)
  | Some "CRASH", Some t -> Some (Runner.Crash t)
  | _ -> None

(* ----------------------------------------------------- stats (de)coding *)

let stats_to_json (s : Hqs.stats) =
  let i k v = (k, Json.Num (float_of_int v)) in
  let f k v = (k, Json.Num v) in
  Json.Obj
    [
      i "univ_elims" s.Hqs.univ_elims;
      i "exist_elims" s.Hqs.exist_elims;
      i "unitpure_elims" s.Hqs.unitpure_elims;
      i "maxsat_runs" s.Hqs.maxsat_runs;
      i "maxsat_set_size" s.Hqs.maxsat_set_size;
      f "maxsat_time" s.Hqs.maxsat_time;
      f "unitpure_time" s.Hqs.unitpure_time;
      f "qbf_time" s.Hqs.qbf_time;
      i "peak_nodes" s.Hqs.peak_nodes;
      f "total_time" s.Hqs.total_time;
      i "restarts" s.Hqs.restarts;
      ("degraded", Json.Arr (List.map (fun d -> Json.Str d) s.Hqs.degraded));
      ("check_level", Json.Str s.Hqs.check_level);
      i "checks_run" s.Hqs.checks_run;
      i "sat_conflicts" s.Hqs.sat_conflicts;
      i "sat_propagations" s.Hqs.sat_propagations;
      i "fraig_merges" s.Hqs.fraig_merges;
      ("dep_scheme", Json.Str s.Hqs.dep_scheme);
      i "analysis_edges_pruned" s.Hqs.analysis_edges_pruned;
      i "analysis_linearized" (if s.Hqs.analysis_linearized then 1 else 0);
      ("inproc_mode", Json.Str s.Hqs.inproc_mode);
      i "inproc_rounds" s.Hqs.inproc_rounds;
      i "inproc_units" s.Hqs.inproc_units;
      i "inproc_scc_merges" s.Hqs.inproc_scc_merges;
      i "inproc_subsumed" s.Hqs.inproc_subsumed;
      i "inproc_strengthened" s.Hqs.inproc_strengthened;
      i "inproc_failed_lits" s.Hqs.inproc_failed_lits;
      i "inproc_bve" s.Hqs.inproc_bve;
      i "inproc_clauses_removed" s.Hqs.inproc_clauses_removed;
      i "inproc_lits_removed" s.Hqs.inproc_lits_removed;
      ("cert_status", Json.Str s.Hqs.cert_status);
      ("metrics", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) s.Hqs.metrics));
    ]

(* [pre_stats] does not cross the process boundary: it is a nested record
   only the preprocessing tests look at, and the harness CSV never reads
   it — decoded stats carry [pre_stats = None] *)
let stats_of_json j =
  let num key = Option.bind (Json.member key j) Json.to_number in
  let int key = Option.map int_of_float (num key) in
  let get0 o = Option.value o ~default:0 in
  let get0f o = Option.value o ~default:0.0 in
  match (int "univ_elims", num "total_time") with
  | None, _ | _, None -> None
  | Some univ_elims, Some total_time ->
      Some
        {
          Hqs.pre_stats = None;
          univ_elims;
          exist_elims = get0 (int "exist_elims");
          unitpure_elims = get0 (int "unitpure_elims");
          maxsat_runs = get0 (int "maxsat_runs");
          maxsat_set_size = get0 (int "maxsat_set_size");
          maxsat_time = get0f (num "maxsat_time");
          unitpure_time = get0f (num "unitpure_time");
          qbf_time = get0f (num "qbf_time");
          peak_nodes = get0 (int "peak_nodes");
          total_time;
          restarts = get0 (int "restarts");
          degraded =
            (match Option.bind (Json.member "degraded" j) Json.to_list with
            | None -> []
            | Some l -> List.filter_map Json.to_string l);
          check_level =
            Option.value ~default:"off"
              (Option.bind (Json.member "check_level" j) Json.to_string);
          checks_run = get0 (int "checks_run");
          sat_conflicts = get0 (int "sat_conflicts");
          sat_propagations = get0 (int "sat_propagations");
          fraig_merges = get0 (int "fraig_merges");
          dep_scheme =
            Option.value ~default:"trivial"
              (Option.bind (Json.member "dep_scheme" j) Json.to_string);
          analysis_edges_pruned = get0 (int "analysis_edges_pruned");
          analysis_linearized = get0 (int "analysis_linearized") <> 0;
          inproc_mode =
            Option.value ~default:"off"
              (Option.bind (Json.member "inproc_mode" j) Json.to_string);
          inproc_rounds = get0 (int "inproc_rounds");
          inproc_units = get0 (int "inproc_units");
          inproc_scc_merges = get0 (int "inproc_scc_merges");
          inproc_subsumed = get0 (int "inproc_subsumed");
          inproc_strengthened = get0 (int "inproc_strengthened");
          inproc_failed_lits = get0 (int "inproc_failed_lits");
          inproc_bve = get0 (int "inproc_bve");
          inproc_clauses_removed = get0 (int "inproc_clauses_removed");
          inproc_lits_removed = get0 (int "inproc_lits_removed");
          cert_status =
            Option.value ~default:"-"
              (Option.bind (Json.member "cert_status" j) Json.to_string);
          metrics =
            (match Json.member "metrics" j with
            | Some (Json.Obj kvs) ->
                List.filter_map (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.to_number v)) kvs
            | _ -> []);
        }

(* ---------------------------------------------------------------- worker *)

(* runs in the forked child: solve, then flatten the result to the IPC
   frame payload. The in-process timeout/node budget still governs the
   solve (a TO/MO is a *clean* frame); the kernel limits of the executor
   are the backstop for runs that wedge. *)
let worker config (item, solver) =
  match solver with
  | Hqs_run ->
      let outcome, stats, cert =
        match config.certify_dir with
        | None ->
            let outcome, stats =
              Runner.run_hqs ?config:config.hqs_config ~timeout:config.timeout
                ~node_limit:config.node_limit item.pcnf
            in
            (outcome, stats, None)
        | Some dir ->
            Runner.run_hqs_certified ?config:config.hqs_config ~timeout:config.timeout
              ~node_limit:config.node_limit ~dir ~id:item.id item.pcnf
      in
      Json.Obj
        ([
           ("outcome", outcome_to_json outcome);
           ("stats", match stats with Some s -> stats_to_json s | None -> Json.Null);
         ]
        @ match cert with Some path -> [ ("cert", Json.Str path) ] | None -> [])
  | Idq_run ->
      let outcome =
        Runner.run_idq ~timeout:config.timeout ~node_limit:config.node_limit item.pcnf
      in
      Json.Obj [ ("outcome", outcome_to_json outcome) ]

(* -------------------------------------------------------------- assembly *)

(* a supervisor completion, whatever its shape, maps to exactly one
   Runner.outcome: a clean frame carries the worker's own classification;
   supervisor-level deaths carry their wall time *)
let outcome_of_completion (c : Sup.completion) =
  match c.Sup.status with
  | Sup.Timeout t -> Runner.Timeout t
  | Sup.Memout t -> Runner.Memout t
  | Sup.Crash t -> Runner.Crash t
  | Sup.Value v -> (
      match Option.bind (Json.member "outcome" v) outcome_of_json with
      | Some o -> o
      | None ->
          (* a well-formed frame with a malformed payload: treat like a
             protocol failure rather than inventing a verdict *)
          Runner.Crash c.Sup.elapsed_s)

(* a timed-out or memory-killed worker never sends its stats record, but
   the supervisor salvages its last partial registry delta from the pipe;
   the [hqs.*] mirror gauges plus the pipeline counters rebuild a partial
   stats row, so TO/MO lines report exactly the data that explains the
   blowup instead of going blank *)
let stats_of_salvage (c : Sup.completion) =
  match c.Sup.salvaged_metrics with
  | [] -> None
  | samples ->
      let get name = Obs.Metrics.find samples name in
      let i0 name = match get name with Some v -> int_of_float v | None -> 0 in
      let f0 name = match get name with Some v -> v | None -> 0.0 in
      Some
        {
          Hqs.pre_stats = None;
          univ_elims = i0 "elim.universal";
          exist_elims = i0 "elim.existential";
          unitpure_elims = i0 "hqs.unitpure_elims";
          maxsat_runs = 0;
          maxsat_set_size = i0 "hqs.maxsat_set";
          maxsat_time = f0 "hqs.maxsat_time_s";
          unitpure_time = f0 "hqs.unitpure_time_s";
          qbf_time = f0 "hqs.qbf_time_s";
          peak_nodes = i0 "hqs.peak_nodes";
          total_time = c.Sup.elapsed_s;
          restarts = i0 "hqs.restarts";
          degraded = [];
          check_level = "off";
          checks_run = i0 "check.audits";
          sat_conflicts = i0 "sat.conflicts";
          sat_propagations = i0 "sat.propagations";
          fraig_merges = i0 "fraig.merges";
          dep_scheme = "trivial";
          analysis_edges_pruned = i0 "analysis.edges_pruned";
          analysis_linearized = i0 "analysis.linearized" <> 0;
          inproc_mode = "off";
          inproc_rounds = i0 "inproc.runs";
          inproc_units = i0 "inproc.units";
          inproc_scc_merges = i0 "inproc.scc_merges";
          inproc_subsumed = i0 "inproc.subsumed";
          inproc_strengthened = i0 "inproc.strengthened";
          inproc_failed_lits = i0 "inproc.failed_lits";
          inproc_bve = i0 "inproc.bve_eliminated";
          inproc_clauses_removed = i0 "inproc.clauses_removed";
          inproc_lits_removed = i0 "inproc.lits_removed";
          cert_status = "-";
          metrics = Obs.Metrics.to_assoc samples;
        }

let stats_of_completion (c : Sup.completion) =
  match c.Sup.status with
  | Sup.Value v -> (
      match Json.member "stats" v with
      | Some (Json.Obj _ as s) -> stats_of_json s
      | Some _ | None -> None)
  | Sup.Timeout _ | Sup.Memout _ -> stats_of_salvage c
  | Sup.Crash _ -> None

let assemble completions item =
  let find solver =
    let id = task_id item solver in
    match Hashtbl.find_opt completions id with
    | Some c -> c
    | None -> invalid_arg ("Sweep.run: missing completion for " ^ id)
  in
  let hc = find Hqs_run in
  let ic = find Idq_run in
  let hqs = outcome_of_completion hc in
  let idq = outcome_of_completion ic in
  let hqs_stats = stats_of_completion hc in
  let cert_path =
    match hc.Sup.status with
    | Sup.Value v -> Option.bind (Json.member "cert" v) Json.to_string
    | Sup.Timeout _ | Sup.Memout _ | Sup.Crash _ -> None
  in
  let hqs_degraded = match hqs_stats with Some s -> s.Hqs.degraded | None -> [] in
  let soundness =
    match (hqs, idq) with
    | Runner.Solved (a, _), Runner.Solved (b, _) when a <> b ->
        Runner.Disagreement { hqs_sat = a; idq_sat = b }
    | _ -> Runner.Consistent
  in
  {
    Runner.id = item.id;
    family = item.family;
    sat_expected = None;
    hqs;
    idq;
    hqs_degraded;
    hqs_stats;
    soundness;
    attempts = hc.Sup.attempts;
    worker_pid = (if hc.Sup.worker_pid = 0 then None else Some hc.Sup.worker_pid);
    cert_path;
  }

(* ------------------------------------------------------------------- run *)

let run ?(config = default_config ~timeout:5.0 ~node_limit:200_000) ?journal ?resume
    ?on_progress items =
  let tasks =
    List.concat_map
      (fun item -> [ (task_id item Hqs_run, (item, Hqs_run)); (task_id item Idq_run, (item, Idq_run)) ])
      items
  in
  let on_complete =
    Option.map
      (fun f (c : Sup.completion) ->
        f
          {
            task = c.Sup.task_id;
            outcome = outcome_of_completion c;
            attempts = c.Sup.attempts;
            from_journal = c.Sup.from_journal;
          })
      on_progress
  in
  let report =
    Sup.run ~config:config.exec ?journal ?resume ?on_complete ~worker:(worker config) tasks
  in
  let by_id = Hashtbl.create 64 in
  List.iter (fun (c : Sup.completion) -> Hashtbl.replace by_id c.Sup.task_id c) report.Sup.completions;
  {
    results = List.map (assemble by_id) items;
    executed = report.Sup.executed;
    journaled = report.Sup.journaled;
    journal_dropped = report.Sup.journal_dropped;
  }

let run_instances ?config ?journal ?resume ?on_progress instances =
  run ?config ?journal ?resume ?on_progress (List.map item_of_instance instances)
