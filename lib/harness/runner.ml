open Hqs_util

type outcome = Solved of bool * float | Timeout of float | Memout of float | Crash of float
type soundness = Consistent | Disagreement of { hqs_sat : bool; idq_sat : bool }

type result = {
  id : string;
  family : string;
  sat_expected : bool option;
  hqs : outcome;
  idq : outcome;
  hqs_degraded : string list;
  hqs_stats : Hqs.stats option;
  soundness : soundness;
  attempts : int;
  worker_pid : int option;
  cert_path : string option;
}

let is_solved = function Solved _ -> true | Timeout _ | Memout _ | Crash _ -> false
let time_of = function Solved (_, t) | Timeout t | Memout t | Crash t -> t

let timed ~timeout f =
  let t0 = Budget.now () in
  let budget = Budget.of_seconds timeout in
  match f budget with
  | verdict -> Solved (verdict, Budget.now () -. t0)
  | exception Budget.Timeout -> Timeout (Budget.now () -. t0)
  | exception Budget.Out_of_memory_budget -> Memout (Budget.now () -. t0)
  (* real resource exhaustion inside the solver is recorded, not fatal:
     one pathological instance must not take down a whole sweep *)
  | exception Stdlib.Out_of_memory -> Memout (Budget.now () -. t0)
  | exception Stack_overflow -> Crash (Budget.now () -. t0)

let run_hqs ?(config = Hqs.default_config) ~timeout ~node_limit pcnf =
  let config = { config with Hqs.node_limit = Some node_limit } in
  let captured = ref None in
  let outcome =
    timed ~timeout (fun budget ->
        let v, stats = Hqs.solve_pcnf ~config ~budget pcnf in
        captured := Some stats;
        v = Hqs.Sat)
  in
  (outcome, !captured)

(* the artifact pair under [dir]: the exact instance bytes the
   certificate fingerprints, so [certcheck INSTANCE CERT] works without
   any other file from the sweep *)
let cert_paths ~dir ~id =
  let slug = String.map (fun c -> if c = '/' then '_' else c) id in
  (Filename.concat dir (slug ^ ".dqdimacs"), Filename.concat dir (slug ^ ".cert"))

let run_hqs_certified ?(config = Hqs.default_config) ~timeout ~node_limit ~dir ~id pcnf =
  let config = { config with Hqs.node_limit = Some node_limit } in
  let instance_text = Dqbf.Pcnf.to_string pcnf in
  let captured = ref None in
  let cert_path = ref None in
  let outcome =
    timed ~timeout (fun budget ->
        let v, cert, _model, stats =
          Hqs.solve_pcnf_certified ~config ~budget ~instance_text pcnf
        in
        captured := Some stats;
        let inst_file, cert_file = cert_paths ~dir ~id in
        Out_channel.with_open_bin inst_file (fun oc ->
            Out_channel.output_string oc instance_text);
        Cert.write_file cert_file cert;
        cert_path := Some cert_file;
        v = Hqs.Sat)
  in
  (outcome, !captured, !cert_path)

let run_idq ~timeout ~node_limit pcnf =
  timed ~timeout (fun budget -> fst (Idq.solve_pcnf ~budget ~node_limit pcnf))

let run_instance ?hqs_config ~timeout ~node_limit (inst : Circuit.Families.instance) =
  let hqs, hqs_stats =
    run_hqs ?config:hqs_config ~timeout ~node_limit inst.Circuit.Families.pcnf
  in
  let hqs_degraded = match hqs_stats with Some s -> s.Hqs.degraded | None -> [] in
  let idq = run_idq ~timeout ~node_limit inst.Circuit.Families.pcnf in
  let soundness =
    match (hqs, idq) with
    | Solved (a, _), Solved (b, _) when a <> b -> Disagreement { hqs_sat = a; idq_sat = b }
    | _ -> Consistent
  in
  {
    id = inst.Circuit.Families.id;
    family = inst.Circuit.Families.family;
    sat_expected = None;
    hqs;
    idq;
    hqs_degraded;
    hqs_stats;
    soundness;
    attempts = 1;
    worker_pid = None;
    cert_path = None;
  }
