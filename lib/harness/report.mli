(** Formatting of the paper's evaluation artifacts from a list of per-
    instance results: Table I (per-family solved/unsolved breakdown with
    total time on commonly solved instances, plus a [degr] column counting
    HQS runs that degraded an accelerator), Fig. 4 (the iDQ-vs-HQS
    runtime scatter, as a data series plus an ASCII log-log plot), and the
    headline claims of Section IV. Verdict disagreements recorded by the
    runner are surfaced as SOUNDNESS ALARM lines. *)

val json_int_cell : int option -> string
val json_bool_cell : bool option -> string
(** Render an optional counter as a JSON cell: the value itself, or
    [null] when the solve produced no stats (timeout/memout/crash).
    Baseline writers use these instead of in-band sentinels like [-1],
    which leak into downstream sums and CSV imports as real data. *)

val table1 : Runner.result list -> string
val fig4 : ?timeout:float -> Runner.result list -> string
val headline : Runner.result list -> string
val csv : Runner.result list -> string
(** One line per instance: id, family, solver outcomes and times, the
    degradation/soundness columns, then a fixed set of per-solve metric
    columns ([hqs_restarts], [hqs_peak_nodes], elimination counts, stage
    times, SAT conflict/propagation counts, FRAIG merges, audits run),
    then the executor columns [outcome] (solved/timeout/memout/crash,
    classifying the HQS run), [attempts] and [worker_pid] (empty for
    in-process runs), then the static-analysis columns [hqs_dep_scheme],
    [hqs_analysis_edges_pruned] and [hqs_analysis_linearized], then the
    inprocessing-engine columns [hqs_inproc_mode], [hqs_inproc_rounds],
    [hqs_inproc_units], [hqs_inproc_scc_merges], [hqs_inproc_subsumed],
    [hqs_inproc_strengthened], [hqs_inproc_failed_lits],
    [hqs_inproc_bve], [hqs_inproc_clauses_removed] and
    [hqs_inproc_lits_removed], then the certification columns
    [hqs_cert_status] (SAT/UNSAT/UNCERTIFIED, ["-"] when no artifact was
    requested) and [cert] (the artifact path from a certifying sweep).
    The pre-existing columns keep their positions byte-for-byte; metric,
    analysis, inproc and certification cells are empty for runs that
    timed or memed out before a verdict. *)
