(** CDCL SAT solver: two-watched literals, 1UIP conflict-driven clause
    learning, VSIDS variable activities, phase saving, Luby restarts and
    activity-based deletion of learnt clauses.

    This is the reasoning substrate for the whole reproduction: FRAIG
    equivalence checks, the partial MaxSAT solver, the final SAT calls of the
    QBF back end, and the instantiation-based iDQ baseline all run on it. *)

type t

type result = Sat | Unsat | Unknown
(** [Unknown] is only returned when a conflict limit was given and hit. *)

val create : unit -> t

val new_var : t -> int
(** Allocate the next variable id. *)

val ensure_var : t -> int -> unit
(** Make sure variable id [v] (and all below it) exist. *)

val num_vars : t -> int

val add_clause : t -> Lit.t list -> unit
val add_clause_a : t -> Lit.t array -> unit
(** Add a clause (level-0 simplification applied: true clauses dropped,
    false literals removed, tautologies dropped). The array is not kept. *)

val is_ok : t -> bool
(** False once the clause database is known unsatisfiable at level 0. *)

val solve :
  ?assumptions:Lit.t list ->
  ?budget:Hqs_util.Budget.t ->
  ?conflict_limit:int ->
  t ->
  result
(** Decide satisfiability under the given assumptions. The solver can be
    reused incrementally: more variables and clauses may be added after a
    call, and further [solve] calls made.
    @raise Hqs_util.Budget.Timeout when the budget deadline passes. *)

val value : t -> int -> bool
(** Model value of a variable after a [Sat] answer (unassigned vars read
    as their saved phase). *)

val lit_value : t -> Lit.t -> bool
val model : t -> bool array

val num_conflicts : t -> int

val num_propagations : t -> int
(** Literals propagated over the solver's lifetime. Conflicts,
    propagations and solve calls are also fed to the process-wide
    [Obs.Metrics] series ["sat.conflicts"], ["sat.propagations"] and
    ["sat.solves"]. *)

val num_clauses : t -> int
