open Hqs_util

type clause = {
  mutable lits : int array;
  mutable activity : float;
  learnt : bool;
  mutable removed : bool;
}

type result = Sat | Unsat | Unknown

let dummy_clause = { lits = [||]; activity = 0.0; learnt = false; removed = true }

type t = {
  mutable ok : bool;
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  watches : clause Vec.t Vec.t; (* indexed by literal *)
  assigns : int Vec.t; (* per var: 0 undef, 1 true, -1 false *)
  level : int Vec.t; (* per var *)
  reason : clause Vec.t; (* per var; dummy_clause = none *)
  activity : float Vec.t; (* per var *)
  polarity : bool Vec.t; (* per var: saved phase *)
  seen : bool Vec.t; (* per var: conflict-analysis scratch *)
  trail : int Vec.t; (* literals in assignment order *)
  trail_lim : int Vec.t; (* decision-level boundaries *)
  mutable qhead : int;
  order : Heap.t;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable conflicts : int;
  mutable propagations : int;
  mutable max_learnts : float;
}

(* per-process counters; every solver instance (FRAIG proofs, MaxSAT,
   QBF back ends, iDQ) feeds the same series *)
let c_solves = Obs.Metrics.counter "sat.solves"
let c_conflicts = Obs.Metrics.counter "sat.conflicts"
let c_propagations = Obs.Metrics.counter "sat.propagations"

let create () =
  let activity = Vec.create ~dummy:0.0 () in
  let order = Heap.create ~cmp:(fun a b -> Vec.get activity a > Vec.get activity b) () in
  {
    ok = true;
    clauses = Vec.create ~dummy:dummy_clause ();
    learnts = Vec.create ~dummy:dummy_clause ();
    watches = Vec.create ~dummy:(Vec.create ~dummy:dummy_clause ()) ();
    assigns = Vec.create ~dummy:0 ();
    level = Vec.create ~dummy:(-1) ();
    reason = Vec.create ~dummy:dummy_clause ();
    activity;
    polarity = Vec.create ~dummy:false ();
    seen = Vec.create ~dummy:false ();
    trail = Vec.create ~dummy:(-1) ();
    trail_lim = Vec.create ~dummy:(-1) ();
    qhead = 0;
    order;
    var_inc = 1.0;
    cla_inc = 1.0;
    conflicts = 0;
    propagations = 0;
    max_learnts = 4000.0;
  }

let num_vars t = Vec.size t.assigns
let num_conflicts t = t.conflicts
let num_propagations t = t.propagations
let num_clauses t = Vec.size t.clauses
let is_ok t = t.ok

let new_var t =
  let v = num_vars t in
  Vec.push t.assigns 0;
  Vec.push t.level (-1);
  Vec.push t.reason dummy_clause;
  Vec.push t.activity 0.0;
  Vec.push t.polarity false;
  Vec.push t.seen false;
  Vec.push t.watches (Vec.create ~dummy:dummy_clause ());
  Vec.push t.watches (Vec.create ~dummy:dummy_clause ());
  Heap.insert t.order v;
  v

let ensure_var t v =
  while num_vars t <= v do
    ignore (new_var t)
  done

(* -1 false, 0 undef, 1 true *)
let lit_val t l =
  let a = Vec.get t.assigns (Lit.var l) in
  if l land 1 = 0 then a else -a

let decision_level t = Vec.size t.trail_lim

let var_bump t v =
  let a = Vec.get t.activity v +. t.var_inc in
  Vec.set t.activity v a;
  if a > 1e100 then begin
    for i = 0 to num_vars t - 1 do
      Vec.set t.activity i (Vec.get t.activity i *. 1e-100)
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  Heap.update t.order v

let var_decay t = t.var_inc <- t.var_inc /. 0.95

let cla_bump t (c : clause) =
  c.activity <- c.activity +. t.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) t.learnts;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let cla_decay t = t.cla_inc <- t.cla_inc /. 0.999

let watch t l = Vec.get t.watches l

let attach t c =
  Vec.push (watch t (Lit.neg c.lits.(0))) c;
  Vec.push (watch t (Lit.neg c.lits.(1))) c

let enqueue t l reason =
  let v = Lit.var l in
  Vec.set t.assigns v (if l land 1 = 0 then 1 else -1);
  Vec.set t.level v (decision_level t);
  Vec.set t.reason v reason;
  Vec.push t.trail l

(* Propagate all enqueued facts; return the conflicting clause if any. *)
let propagate t =
  let confl = ref dummy_clause in
  while !confl == dummy_clause && t.qhead < Vec.size t.trail do
    let p = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    t.propagations <- t.propagations + 1;
    Obs.Metrics.incr c_propagations;
    let ws = watch t p in
    let n = Vec.size ws in
    let i = ref 0 and j = ref 0 in
    let false_lit = Lit.neg p in
    while !i < n do
      let c = Vec.get ws !i in
      incr i;
      if c.removed then () (* drop lazily-deleted clause from this list *)
      else begin
        (* ensure the false watched literal is at position 1 *)
        if c.lits.(0) = false_lit then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- false_lit
        end;
        if lit_val t c.lits.(0) = 1 then begin
          (* satisfied; keep watching *)
          Vec.set ws !j c;
          incr j
        end
        else begin
          (* search for a new literal to watch *)
          let len = Array.length c.lits in
          let k = ref 2 in
          while !k < len && lit_val t c.lits.(!k) = -1 do
            incr k
          done;
          if !k < len then begin
            c.lits.(1) <- c.lits.(!k);
            c.lits.(!k) <- false_lit;
            Vec.push (watch t (Lit.neg c.lits.(1))) c
          end
          else begin
            (* unit or conflicting *)
            Vec.set ws !j c;
            incr j;
            if lit_val t c.lits.(0) = -1 then begin
              confl := c;
              t.qhead <- Vec.size t.trail;
              while !i < n do
                Vec.set ws !j (Vec.get ws !i);
                incr i;
                incr j
              done
            end
            else enqueue t c.lits.(0) c
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  if !confl == dummy_clause then None else Some !confl

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = Vec.get t.trail_lim lvl in
    for i = Vec.size t.trail - 1 downto bound do
      let l = Vec.get t.trail i in
      let v = Lit.var l in
      Vec.set t.polarity v (Vec.get t.assigns v = 1);
      Vec.set t.assigns v 0;
      Vec.set t.reason v dummy_clause;
      Heap.insert t.order v
    done;
    Vec.shrink t.trail bound;
    Vec.shrink t.trail_lim lvl;
    t.qhead <- Vec.size t.trail
  end

(* First-UIP conflict analysis. Returns (learnt literals with the asserting
   literal first, backjump level). *)
let analyze t confl =
  let learnt = Vec.create ~dummy:(-1) () in
  Vec.push learnt (-1);
  (* placeholder for the asserting literal *)
  let path_c = ref 0 in
  let p = ref (-1) in
  let index = ref (Vec.size t.trail - 1) in
  let c = ref confl in
  let continue = ref true in
  while !continue do
    let cl = !c in
    if cl.learnt then cla_bump t cl;
    let start = if !p = -1 then 0 else 1 in
    for k = start to Array.length cl.lits - 1 do
      let q = cl.lits.(k) in
      let v = Lit.var q in
      if (not (Vec.get t.seen v)) && Vec.get t.level v > 0 then begin
        var_bump t v;
        Vec.set t.seen v true;
        if Vec.get t.level v >= decision_level t then incr path_c else Vec.push learnt q
      end
    done;
    (* next clause to look at *)
    while not (Vec.get t.seen (Lit.var (Vec.get t.trail !index))) do
      decr index
    done;
    p := Vec.get t.trail !index;
    decr index;
    let v = Lit.var !p in
    c := Vec.get t.reason v;
    Vec.set t.seen v false;
    decr path_c;
    if !path_c = 0 then continue := false
  done;
  Vec.set learnt 0 (Lit.neg !p);
  (* compute backjump level; move the max-level literal to position 1 *)
  let back_lvl = ref 0 in
  if Vec.size learnt > 1 then begin
    let max_i = ref 1 in
    for k = 2 to Vec.size learnt - 1 do
      if Vec.get t.level (Lit.var (Vec.get learnt k))
         > Vec.get t.level (Lit.var (Vec.get learnt !max_i))
      then max_i := k
    done;
    let tmp = Vec.get learnt 1 in
    Vec.set learnt 1 (Vec.get learnt !max_i);
    Vec.set learnt !max_i tmp;
    back_lvl := Vec.get t.level (Lit.var (Vec.get learnt 1))
  end;
  (* clear seen flags *)
  for k = 0 to Vec.size learnt - 1 do
    Vec.set t.seen (Lit.var (Vec.get learnt k)) false
  done;
  (learnt, !back_lvl)

let locked t c =
  Array.length c.lits > 0
  && Vec.get t.reason (Lit.var c.lits.(0)) == c
  && lit_val t c.lits.(0) = 1

let reduce_db t =
  let cmp (a : clause) (b : clause) = Float.compare a.activity b.activity in
  Vec.sort cmp t.learnts;
  let n = Vec.size t.learnts in
  let keep = Vec.create ~dummy:dummy_clause () in
  Vec.iteri
    (fun i c ->
      if i < n / 2 && (not (locked t c)) && Array.length c.lits > 2 then c.removed <- true
      else Vec.push keep c)
    t.learnts;
  Vec.clear t.learnts;
  Vec.iter (Vec.push t.learnts) keep

let add_clause_a t lits =
  if t.ok then begin
    cancel_until t 0;
    Array.iter (fun l -> ensure_var t (Lit.var l)) lits;
    (* simplify: sort, dedup, drop false lits, detect tautology / satisfied *)
    let lits = Array.copy lits in
    Array.sort Int.compare lits;
    let out = ref [] in
    let taut = ref false in
    let sat = ref false in
    let prev = ref (-1) in
    Array.iter
      (fun l ->
        if l <> !prev then begin
          if !prev >= 0 && Lit.var l = Lit.var !prev then taut := true;
          (match lit_val t l with
          | 1 -> sat := true
          | -1 -> () (* false at level 0: drop literal *)
          | _ -> out := l :: !out);
          prev := l
        end)
      lits;
    if not (!taut || !sat) then begin
      match !out with
      | [] -> t.ok <- false
      | [ l ] -> (
          enqueue t l dummy_clause;
          match propagate t with Some _ -> t.ok <- false | None -> ())
      | ls ->
          let c =
            { lits = Array.of_list ls; activity = 0.0; learnt = false; removed = false }
          in
          Vec.push t.clauses c;
          attach t c
    end
  end

let add_clause t lits = add_clause_a t (Array.of_list lits)

let luby y x =
  (* Luby restart sequence *)
  let rec find_size size seq x = if size >= x + 1 then (size, seq) else find_size ((2 * size) + 1) (seq + 1) x in
  let rec loop size seq x =
    if size - 1 = x then y ** float_of_int seq
    else begin
      let size = (size - 1) / 2 in
      let seq = seq - 1 in
      loop size seq (x mod size)
    end
  in
  let size, seq = find_size 1 0 x in
  loop size seq x

exception Result of result

let pick_branch_var t =
  let rec loop () =
    if Heap.is_empty t.order then None
    else begin
      let v = Heap.pop t.order in
      if Vec.get t.assigns v = 0 then Some v else loop ()
    end
  in
  loop ()

let solve ?(assumptions = []) ?(budget = Budget.unlimited) ?conflict_limit t =
  if not t.ok then Unsat
  else begin
    Obs.Metrics.incr c_solves;
    cancel_until t 0;
    let assumptions = Array.of_list assumptions in
    let conflict_stop =
      match conflict_limit with None -> max_int | Some n -> t.conflicts + n
    in
    let restart_base = 100 in
    let restart_num = ref 0 in
    let conflicts_this_restart = ref 0 in
    let restart_limit = ref (int_of_float (luby 2.0 0) * restart_base) in
    let learnt_adjust = ref (max 100 (Vec.size t.clauses / 3)) in
    t.max_learnts <- float_of_int (max 4000 !learnt_adjust);
    let result = ref Unknown in
    (try
       (* top-level propagation *)
       (match propagate t with
       | Some _ ->
           t.ok <- false;
           raise (Result Unsat)
       | None -> ());
       while true do
         match propagate t with
         | Some confl ->
             t.conflicts <- t.conflicts + 1;
             Obs.Metrics.incr c_conflicts;
             incr conflicts_this_restart;
             if t.conflicts land 511 = 0 then Budget.check budget;
             if decision_level t = 0 then begin
               t.ok <- false;
               raise (Result Unsat)
             end;
             let learnt, back_lvl = analyze t confl in
             cancel_until t back_lvl;
             if Vec.size learnt = 1 then enqueue t (Vec.get learnt 0) dummy_clause
             else begin
               let c =
                 {
                   lits = Vec.to_array learnt;
                   activity = 0.0;
                   learnt = true;
                   removed = false;
                 }
               in
               Vec.push t.learnts c;
               attach t c;
               cla_bump t c;
               enqueue t (Vec.get learnt 0) c
             end;
             var_decay t;
             cla_decay t;
             if t.conflicts >= conflict_stop then raise (Result Unknown);
             if float_of_int (Vec.size t.learnts) > t.max_learnts then begin
               reduce_db t;
               t.max_learnts <- t.max_learnts *. 1.3
             end
         | None ->
             if !conflicts_this_restart >= !restart_limit then begin
               (* restart *)
               incr restart_num;
               conflicts_this_restart := 0;
               restart_limit := int_of_float (luby 2.0 !restart_num) * restart_base;
               cancel_until t 0;
               Budget.check budget
             end
             else if decision_level t < Array.length assumptions then begin
               (* push the next assumption *)
               let p = assumptions.(decision_level t) in
               match lit_val t p with
               | 1 -> Vec.push t.trail_lim (Vec.size t.trail) (* dummy level *)
               | -1 -> raise (Result Unsat)
               | _ ->
                   Vec.push t.trail_lim (Vec.size t.trail);
                   enqueue t p dummy_clause
             end
             else begin
               match pick_branch_var t with
               | None -> raise (Result Sat)
               | Some v ->
                   Vec.push t.trail_lim (Vec.size t.trail);
                   enqueue t (Lit.mk v ~neg:(not (Vec.get t.polarity v))) dummy_clause
             end
       done
     with Result r -> result := r);
    (match !result with
    | Sat -> () (* keep the trail: the model is read from [assigns] *)
    | Unsat | Unknown -> cancel_until t 0);
    !result
  end

let value t v =
  match Vec.get t.assigns v with 1 -> true | -1 -> false | _ -> Vec.get t.polarity v

let lit_value t l = if Lit.is_neg l then not (value t (Lit.var l)) else value t (Lit.var l)
let model t = Array.init (num_vars t) (value t)
