type cnf = { num_vars : int; clauses : Lit.t list list }

let parse_tokens tokens =
  let num_vars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let header_seen = ref false in
  let rec loop = function
    | [] ->
        if !current <> [] then failwith "Dimacs: clause not terminated by 0";
        { num_vars = !num_vars; clauses = List.rev !clauses }
    | "p" :: "cnf" :: nv :: _nc :: rest ->
        header_seen := true;
        num_vars := int_of_string nv;
        loop rest
    | tok :: rest ->
        if not !header_seen then failwith "Dimacs: missing p cnf header"
        else begin
          let i = try int_of_string tok with Failure _ -> failwith ("Dimacs: bad token " ^ tok) in
          if i = 0 then begin
            clauses := List.rev !current :: !clauses;
            current := []
          end
          else begin
            num_vars := max !num_vars (abs i);
            current := Lit.of_dimacs i :: !current
          end;
          loop rest
        end
  in
  loop tokens

let tokenize s =
  let lines = String.split_on_char '\n' s in
  let keep line =
    let line = String.trim line in
    not (String.length line = 0 || line.[0] = 'c')
  in
  lines |> List.filter keep
  |> List.concat_map (fun line ->
         String.split_on_char ' ' line
         |> List.concat_map (String.split_on_char '\t')
         |> List.filter (fun tok -> tok <> ""))

let parse_string s = parse_tokens (tokenize s)

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string s

let to_string { num_vars; clauses } =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" num_vars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (Printf.sprintf "%d " (Lit.to_dimacs l))) clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let write_file path cnf =
  let oc = open_out path in
  output_string oc (to_string cnf);
  close_out oc

let load_into solver { num_vars; clauses } =
  if num_vars > 0 then Solver.ensure_var solver (num_vars - 1);
  List.iter (Solver.add_clause solver) clauses
