(* Repo-specific static analysis over the parsetree (compiler-libs).

   The rules encode this codebase's conventions, each of which guards a
   soundness property the auditor in [lib/check] can only catch at run
   time:
   - a catch-all exception handler can swallow [Budget.Timeout] or a
     [Check.Violation] and convert an abort into a wrong verdict;
   - polymorphic [compare]/[Hashtbl.hash] passed as first-class values
     silently fall back to structural comparison when a type gains a
     non-canonical field (the Bitset/Fraig incident class);
   - [failwith] inside [lib/] escapes as an untyped [Failure] that callers
     cannot distinguish from a parser error (only the DIMACS-family
     parsers use it as their documented parse-error channel);
   - a missing [.mli] leaks mutable internals that the auditor assumes
     only the public API can touch;
   - a raw [Unix.openfile]/[Unix.pipe]/[Unix.socket] outside [lib/exec]
     creates file descriptors with none of the supervisor's close-on-exec
     and cleanup discipline (the fd-leak surface that poisons forked
     sweep workers);
   - a wall-clock read ([Unix.gettimeofday]/[Unix.time]) outside
     [lib/util] silently breaks budgets and trace timestamps under clock
     steps — solver paths must use the monotonic [Budget.now];
   - any other timestamp source ([Sys.time], the low-level [Mono.now],
     [Unix.clock_gettime]) inside [lib/] bypasses the one clock the Obs
     tracer uses, so spans recorded in a forked worker would no longer
     merge onto the supervisor's timebase;
   - a direct stdout write ([Printf.printf]/[print_endline]/...) in
     [lib/] outside [lib/harness] corrupts the machine-readable solver
     output (DIMACS verdict lines, CSV, JSON baselines) — reports must go
     through the harness or the Obs sinks.

   Diagnostics can be suppressed by a comment containing
   "lint: allow <rule-name>" on the offending line or the line above. *)

type rule =
  | Catch_all
  | Poly_compare
  | Obj_magic
  | Failwith_lib
  | Missing_mli
  | Raw_fd
  | Wall_clock
  | Mono_clock_span
  | No_stdout
  | Cert_isolation
  | Syntax

let rule_name = function
  | Catch_all -> "catch-all"
  | Poly_compare -> "poly-compare"
  | Obj_magic -> "obj-magic"
  | Failwith_lib -> "failwith-lib"
  | Missing_mli -> "missing-mli"
  | Raw_fd -> "raw-fd"
  | Wall_clock -> "wall-clock"
  | Mono_clock_span -> "mono-clock-span"
  | No_stdout -> "no-stdout"
  | Cert_isolation -> "cert-isolation"
  | Syntax -> "syntax"

let all_rules =
  [
    Catch_all; Poly_compare; Obj_magic; Failwith_lib; Missing_mli; Raw_fd; Wall_clock;
    Mono_clock_span; No_stdout; Cert_isolation; Syntax;
  ]

let rule_doc = function
  | Catch_all ->
      "catch-all exception handler ([try ... with _ ->] or [with e ->]): a bare handler \
       swallows Budget.Timeout and Check.Violation aborts and converts them into wrong \
       verdicts."
  | Poly_compare ->
      "polymorphic comparison: first-class ( = )/( <> ), any use of Stdlib.compare or \
       Hashtbl.hash. Structural comparison silently changes meaning when a type gains a \
       non-canonical field; pass a monomorphic function instead. Fully applied [a = b] is \
       ordinary OCaml and passes."
  | Obj_magic -> "Obj.magic defeats the type system."
  | Failwith_lib ->
      "failwith under lib/: escapes as an untyped Failure callers cannot distinguish from a \
       parse error. Raise a typed exception. The DIMACS-family parsers are allowlisted \
       (Failure is their documented parse-error channel)."
  | Missing_mli ->
      "a lib/ implementation without a sibling .mli leaks mutable internals the run-time \
       auditor assumes only the public API can touch."
  | Raw_fd ->
      "raw Unix.openfile/pipe/socket/socketpair/accept outside lib/exec or lib/serve: \
       descriptors opened elsewhere have none of the supervisor's close-on-exec and cleanup \
       discipline and leak into forked workers."
  | Wall_clock ->
      "Unix.gettimeofday/Unix.time outside lib/util: wall time breaks budgets and trace \
       timestamps under clock steps — use the monotonic Budget.now."
  | Mono_clock_span ->
      "non-canonical timestamp source (Sys.time, the low-level Mono.now, \
       Unix.clock_gettime) under lib/ outside lib/util: Obs span and event timestamps must \
       all come from Budget.now so traces from forked workers merge onto one timebase."
  | No_stdout ->
      "stdout write (Printf.printf, print_endline, ...) under lib/ outside lib/harness: \
       solver stdout is a machine-readable channel (verdict lines, CSV, JSON baselines)."
  | Cert_isolation ->
      "a module-qualified reference, open or module alias rooted in any repo library inside \
       bin/certcheck.ml: the independent certificate verifier must share no code with the \
       solver it checks."
  | Syntax -> "the file does not parse (also covers unreadable files)."

type diag = { file : string; line : int; col : int; rule : rule; msg : string }

let pp_diag fmt d =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" d.file d.line d.col (rule_name d.rule) d.msg

(* ------------------------------------------------- tool-neutral findings *)

(* [bin/lint] and [bin/deepcheck] share one diagnostic surface: the same
   human line format, the same one-line JSON document, the same
   suppression-comment convention — so downstream tooling (benchdiff-style
   consumers, editors) parses both with one reader. *)

type finding = { f_file : string; f_line : int; f_col : int; f_rule : string; f_msg : string }

let finding_of_diag d =
  { f_file = d.file; f_line = d.line; f_col = d.col; f_rule = rule_name d.rule; f_msg = d.msg }

type format = Human | Json

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" f.f_file f.f_line f.f_col f.f_rule f.f_msg

(* minimal JSON string escaping, compatible with [Obs.Json.parse] (which
   this library cannot depend on: linter must stay a leaf) *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json ~tool findings =
  let item f =
    Printf.sprintf {|{"file":"%s","line":%d,"col":%d,"rule":"%s","msg":"%s"}|}
      (json_escape f.f_file) f.f_line f.f_col (json_escape f.f_rule) (json_escape f.f_msg)
  in
  Printf.sprintf {|{"tool":"%s","findings":[%s],"count":%d}|} (json_escape tool)
    (String.concat "," (List.map item findings))
    (List.length findings)

(* Human mode is byte-identical to the historical [bin/lint] output: one
   line per finding plus a trailing count line, and {e nothing} on a
   clean run. JSON mode always emits exactly one document, clean or not,
   so machine consumers never have to special-case an empty stream. *)
let print_findings ~tool format findings =
  match format with
  (* the renderer IS the tool's stdout channel — lint: allow no-stdout *)
  | Json -> print_endline (render_json ~tool findings)
  | Human ->
      if findings <> [] then begin
        List.iter (fun f -> Format.printf "%a@." pp_finding f) findings;
        Format.printf "%s: %d finding(s)@." tool (List.length findings)
      end

(* The documented allowlist: [failwith] is the parse-error channel of the
   DIMACS-family parsers, caught as [Failure] at the CLI boundary. *)
let allowlist = [ ("lib/sat/dimacs.ml", Failwith_lib); ("lib/qbf/qdimacs.ml", Failwith_lib); ("lib/dqbf/pcnf.ml", Failwith_lib) ]

let allowlisted path rule =
  List.exists (fun (suffix, r) -> r = rule && String.ends_with ~suffix path) allowlist

(* [Longident.flatten] raises on [Lapply]; spell out the walk instead *)
let rec flat = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flat l @ [ s ]
  | Longident.Lapply _ -> []

let ident_path li = String.concat "." (flat li)

let dir_segments path =
  let rec segments p acc =
    let d = Filename.dirname p in
    if d = p then acc else segments d (Filename.basename p :: acc)
  in
  segments (Filename.dirname path) []

(* in a path like "lib/sat/dimacs.ml", is some directory segment "lib"? *)
let in_lib path = List.mem "lib" (dir_segments path)

(* is the file under the "lib/<sub>" directory (at any depth prefix)? the
   scope carve-outs for the fd and wall-clock rules *)
let in_lib_sub sub path =
  let rec adjacent = function
    | "lib" :: next :: _ when next = sub -> true
    | _ :: rest -> adjacent rest
    | [] -> false
  in
  adjacent (dir_segments path)

(* [bin/certcheck.ml] is the independent certificate verifier: its whole
   trust story is that it shares no code with the solver it checks, so
   any module-qualified reference rooted in a repo library is a finding.
   (The dune stanza enforces link-time isolation; this catches the
   source-level references that would motivate adding the dependency.) *)
let solver_roots =
  [
    "Sat"; "Maxsat"; "Aig"; "Qbf"; "Dqbf"; "Idq"; "Hqs"; "Cert"; "Check"; "Inproc";
    "Analysis"; "Circuit"; "Harness"; "Exec"; "Serve"; "Obs"; "Hqs_util"; "Linter";
  ]

let is_certcheck path = String.ends_with ~suffix:"bin/certcheck.ml" path

let rec catch_all_pattern p =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_any | Parsetree.Ppat_var _ -> true
  | Parsetree.Ppat_alias (q, _) -> catch_all_pattern q
  | Parsetree.Ppat_or (a, b) -> catch_all_pattern a || catch_all_pattern b
  | _ -> false

let diag_of_loc ~path ~rule ~msg (loc : Location.t) =
  {
    file = path;
    line = loc.loc_start.pos_lnum;
    col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
    rule;
    msg;
  }

let collect_structure ~path structure =
  let diags = ref [] in
  let add rule msg loc = diags := diag_of_loc ~path ~rule ~msg loc :: !diags in
  (* identifiers fully applied as binary operators are "blessed": [a = b]
     is ordinary OCaml, but a first-class or partially applied [( = )]
     handed to a container or search function is where polymorphic
     comparison hides *)
  let blessed : (Location.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let iter = Ast_iterator.default_iterator in
  let cert_isolation lid loc =
    match flat lid with
    | root :: _ when List.mem root solver_roots ->
        add Cert_isolation
          (Printf.sprintf
             "reference to solver module %s in the independent verifier: certcheck must \
              share no code with the solver it checks"
             root)
          loc
    | _ -> ()
  in
  let expr it (e : Parsetree.expression) =
    (if is_certcheck path then
       match e.pexp_desc with
       | Parsetree.Pexp_ident { txt; loc } | Parsetree.Pexp_construct ({ txt; loc }, _) -> (
           (* only module-qualified references: a bare local ident is fine *)
           match flat txt with _ :: _ :: _ -> cert_isolation txt loc | _ -> ())
       | Parsetree.Pexp_open
           ({ popen_expr = { pmod_desc = Parsetree.Pmod_ident { txt; loc }; _ }; _ }, _) ->
           cert_isolation txt loc
       | _ -> ());
    (match e.pexp_desc with
    | Parsetree.Pexp_apply ({ pexp_desc = Parsetree.Pexp_ident _; pexp_loc; _ }, args)
      when List.length args >= 2 ->
        Hashtbl.replace blessed pexp_loc ()
    | Parsetree.Pexp_try (_, cases) ->
        List.iter
          (fun (c : Parsetree.case) ->
            if catch_all_pattern c.pc_lhs then
              add Catch_all
                "catch-all exception handler: match the exceptions you expect (a bare handler \
                 swallows Timeout/Violation aborts)"
                c.pc_lhs.ppat_loc)
          cases
    | Parsetree.Pexp_ident { txt; loc } -> (
        match ident_path txt with
        | "Obj.magic" -> add Obj_magic "Obj.magic defeats the type system" loc
        | "compare" | "Stdlib.compare" | "Pervasives.compare" ->
            add Poly_compare
              "polymorphic compare: use a monomorphic compare (Int.compare, String.compare, ...)"
              loc
        | "Hashtbl.hash" | "Stdlib.Hashtbl.hash" ->
            add Poly_compare "polymorphic Hashtbl.hash: hash the representation explicitly" loc
        | "failwith" | "Stdlib.failwith" ->
            if in_lib path then
              add Failwith_lib
                "failwith in library code: raise a typed exception the caller can match"
                loc
        | "Unix.openfile" | "Unix.pipe" | "Unix.socket" | "Unix.socketpair" | "Unix.accept" ->
            if not (in_lib_sub "exec" path || in_lib_sub "serve" path) then
              add Raw_fd
                "raw file descriptor outside lib/exec or lib/serve: use the supervisor's \
                 wrappers (leaked fds survive the fork into sweep workers)"
                loc
        | "Unix.gettimeofday" | "Unix.time" ->
            if not (in_lib_sub "util" path) then
              add Wall_clock
                "wall-clock time outside lib/util: use the monotonic Budget.now (wall time \
                 breaks budgets and traces under clock steps)"
                loc
        | "Sys.time" | "Stdlib.Sys.time" | "Mono.now" | "Hqs_util.Mono.now"
        | "Unix.clock_gettime" ->
            if in_lib path && not (in_lib_sub "util" path) then
              add Mono_clock_span
                "non-canonical timestamp source in library code: Obs span and event \
                 timestamps must all come from Budget.now, or cross-process traces \
                 stitched from forked workers lose a common timebase"
                loc
        | "Printf.printf" | "Stdlib.Printf.printf" | "print_endline" | "print_string"
        | "print_newline" | "print_int" | "Stdlib.print_endline" | "Stdlib.print_string"
        | "Stdlib.print_newline" | "Stdlib.print_int" ->
            if in_lib path && not (in_lib_sub "harness" path) then
              add No_stdout
                "stdout write in library code outside lib/harness: solver stdout is a \
                 machine-readable channel — report through the harness or Obs"
                loc
        | ("=" | "<>") when not (Hashtbl.mem blessed loc) ->
            add Poly_compare
              "first-class polymorphic equality: pass an explicit equality function"
              loc
        | _ -> ())
    | _ -> ());
    iter.expr it e
  in
  let structure_item it (si : Parsetree.structure_item) =
    (if is_certcheck path then
       match si.pstr_desc with
       | Parsetree.Pstr_open
           { popen_expr = { pmod_desc = Parsetree.Pmod_ident { txt; loc }; _ }; _ }
       | Parsetree.Pstr_module
           { pmb_expr = { pmod_desc = Parsetree.Pmod_ident { txt; loc }; _ }; _ } ->
           cert_isolation txt loc
       | _ -> ());
    iter.structure_item it si
  in
  let it = { iter with expr; structure_item } in
  it.structure it structure;
  List.rev !diags

let syntax_error ~path loc = [ diag_of_loc ~path ~rule:Syntax ~msg:"syntax error" loc ]

let lint_source ~path content =
  let lexbuf = Lexing.from_string content in
  Lexing.set_filename lexbuf path;
  if Filename.check_suffix path ".mli" then
    (* interfaces carry no expressions; parse only to catch syntax errors *)
    match Parse.interface lexbuf with
    | _ -> []
    | exception Syntaxerr.Error err -> syntax_error ~path (Syntaxerr.location_of_error err)
    | exception Lexer.Error (_, loc) -> syntax_error ~path loc
  else
    match Parse.implementation lexbuf with
    | structure -> collect_structure ~path structure
    | exception Syntaxerr.Error err -> syntax_error ~path (Syntaxerr.location_of_error err)
    | exception Lexer.Error (_, loc) -> syntax_error ~path loc

(* -------------------------------------------------- suppression comments *)

(* the generic engine, shared with [deepcheck]'s source-comment
   suppression: a diagnostic on line [line] is silenced by [marker]
   appearing on that line or the line directly above *)
let suppressed_by_marker ~lines ~marker line =
  let has i =
    i >= 1 && i <= Array.length lines
    &&
    let line = lines.(i - 1) in
    let rec find j =
      j + String.length marker <= String.length line
      && (String.sub line j (String.length marker) = marker || find (j + 1))
    in
    find 0
  in
  has line || has (line - 1)

let suppressed ~lines d =
  suppressed_by_marker ~lines ~marker:("lint: allow " ^ rule_name d.rule) d.line

let lint_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | content ->
      let lines = Array.of_list (String.split_on_char '\n' content) in
      lint_source ~path content
      |> List.filter (fun d -> not (allowlisted path d.rule) && not (suppressed ~lines d))
  | exception Sys_error msg ->
      [ { file = path; line = 1; col = 0; rule = Syntax; msg = "cannot read: " ^ msg } ]

(* ------------------------------------------------------------ missing mli *)

(* Pure over a file list so it is testable without touching the disk:
   every [lib/] implementation must publish an interface. *)
let check_missing_mli files =
  let have_mli =
    List.filter_map
      (fun p -> if Filename.check_suffix p ".mli" then Some (Filename.chop_suffix p ".mli") else None)
      files
  in
  List.filter_map
    (fun p ->
      if
        Filename.check_suffix p ".ml" && in_lib p
        && not (List.mem (Filename.chop_suffix p ".ml") have_mli)
      then
        Some
          {
            file = p;
            line = 1;
            col = 0;
            rule = Missing_mli;
            msg = "library module without an interface file";
          }
      else None)
    files

(* ------------------------------------------------------------------ walk *)

(* Collect lintable files and every path the walk could not read, instead
   of crashing on the [Sys_error] from an unreadable directory (or — the
   silent-skip failure mode — pretending it was clean). *)
let rec walk path ((files, errors) as acc) =
  match Sys.is_directory path with
  | true -> (
      match Sys.readdir path with
      | entries ->
          Array.fold_left
            (fun acc entry ->
              if entry = "_build" || entry = ".git" || (entry <> "" && entry.[0] = '.') then acc
              else walk (Filename.concat path entry) acc)
            acc entries
      | exception Sys_error msg -> (files, msg :: errors))
  | false ->
      if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then
        (path :: files, errors)
      else acc
  | exception Sys_error msg -> (files, msg :: errors)

let lint_paths paths =
  let files, _errors = List.fold_left (fun acc p -> walk p acc) ([], []) paths in
  let files = List.sort String.compare files in
  List.concat_map lint_file files @ check_missing_mli files

let run ?(format = Human) paths =
  match List.filter (fun p -> not (Sys.file_exists p)) paths with
  | missing :: _ ->
      Printf.eprintf "lint: no such file or directory: %s\n" missing;
      2
  | [] -> (
      if paths = [] then begin
        Printf.eprintf "lint: no paths given\n";
        2
      end
      else
        let per_path = List.map (fun p -> (p, walk p ([], []))) paths in
        let errors = List.concat_map (fun (_, (_, errors)) -> errors) per_path in
        if errors <> [] then begin
          List.iter (fun msg -> Printf.eprintf "lint: cannot read: %s\n" msg) errors;
          2
        end
        else
          match
            List.find_opt (fun (_, (files, _)) -> files = []) per_path
          with
          | Some (p, _) ->
              (* a path the user named but that contributes nothing would
                 otherwise pass silently — e.g. a typo'd non-source file *)
              Printf.eprintf "lint: no .ml/.mli files under: %s\n" p;
              2
          | None -> (
              match lint_paths paths with
              | [] ->
                  print_findings ~tool:"lint" format [];
                  0
              | diags ->
                  print_findings ~tool:"lint" format (List.map finding_of_diag diags);
                  1))
