(** Repo-specific static analysis: a compiler-libs [Ast_iterator] pass
    enforcing the conventions that keep the run-time auditor ({!Check})
    honest.

    Rules:
    - [Catch_all] — [try ... with _ ->] or [with e ->]: a bare handler
      swallows [Budget.Timeout]/[Check.Violation] aborts;
    - [Poly_compare] — first-class [( = )]/[( <> )], any use of
      polymorphic [compare] or [Hashtbl.hash] (applied [a = b] is fine);
    - [Obj_magic] — any [Obj.magic];
    - [Failwith_lib] — [failwith] under a [lib/] path segment, except the
      allowlisted DIMACS-family parsers where [Failure] is the documented
      parse-error channel;
    - [Missing_mli] — a [lib/] implementation without a sibling [.mli];
    - [Raw_fd] — raw [Unix.openfile]/[Unix.pipe]/[Unix.socket] outside
      [lib/exec]: descriptors opened elsewhere have none of the
      supervisor's close-on-exec and cleanup discipline and leak into
      forked sweep workers;
    - [Wall_clock] — [Unix.gettimeofday]/[Unix.time] outside [lib/util]:
      solver paths must use the monotonic [Budget.now], wall time breaks
      budgets and trace timestamps under clock steps;
    - [Mono_clock_span] — [Sys.time], the low-level [Mono.now] or
      [Unix.clock_gettime] under [lib/] outside [lib/util]: Obs span and
      event timestamps must all come from [Budget.now] so that spans
      recorded in forked workers merge onto the supervisor's timebase;
    - [No_stdout] — [Printf.printf]/[print_endline]/[print_string]/...
      under [lib/] outside [lib/harness]: solver stdout is a
      machine-readable channel (verdict lines, CSV, JSON baselines), so
      library code must report through the harness or the Obs sinks;
    - [Cert_isolation] — a module-qualified reference, [open] or module
      alias rooted in any repo library inside [bin/certcheck.ml]: the
      independent certificate verifier's trust story is that it shares
      no code with the solver it checks, so even a source-level
      reference (which would motivate adding the link dependency the
      dune stanza forbids) is a finding;
    - [Syntax] — the file does not parse (also covers unreadable files).

    Suppression: a comment containing [lint: allow <rule-name>] on the
    diagnostic's line or the line directly above silences it, e.g.
    [(* lint: allow poly-compare *)]. *)

type rule =
  | Catch_all
  | Poly_compare
  | Obj_magic
  | Failwith_lib
  | Missing_mli
  | Raw_fd
  | Wall_clock
  | Mono_clock_span
  | No_stdout
  | Cert_isolation
  | Syntax

val rule_name : rule -> string
(** ["catch-all"], ["poly-compare"], ["obj-magic"], ["failwith-lib"],
    ["missing-mli"], ["raw-fd"], ["wall-clock"], ["mono-clock-span"],
    ["no-stdout"], ["cert-isolation"], ["syntax"] — the names used by
    suppression comments. *)

val all_rules : rule list
(** Every rule, in a stable order — the single source for the
    [bin/lint --help] rule listing and its coverage test. *)

val rule_doc : rule -> string
(** One-paragraph prose description of the rule, used verbatim in the
    [bin/lint] man page. *)

type diag = { file : string; line : int; col : int; rule : rule; msg : string }

val pp_diag : Format.formatter -> diag -> unit
(** [file:line:col: [rule] message]. *)

(** {2 Tool-neutral findings}

    [bin/lint] and [bin/deepcheck] share one diagnostic surface: the
    same human line format, the same one-line JSON document, the same
    suppression convention — so downstream tooling parses both with one
    reader. *)

type finding = { f_file : string; f_line : int; f_col : int; f_rule : string; f_msg : string }

val finding_of_diag : diag -> finding

type format = Human | Json

val pp_finding : Format.formatter -> finding -> unit
(** Same line shape as {!pp_diag}. *)

val render_json : tool:string -> finding list -> string
(** One-line JSON document
    [{"tool":T,"findings":[{"file":..,"line":..,"col":..,"rule":..,"msg":..},...],"count":N}].
    The output parses back through [Obs.Json.parse] (escaping is
    compatible; this library stays a leaf and cannot link [obs]). *)

val print_findings : tool:string -> format -> finding list -> unit
(** Print to stdout. [Human] is byte-identical to the historical
    [bin/lint] output: one {!pp_finding} line per finding plus a
    trailing ["<tool>: N finding(s)"] count line, and {e nothing} on a
    clean run. [Json] always prints exactly one {!render_json} document,
    clean or not. *)

val suppressed_by_marker : lines:string array -> marker:string -> int -> bool
(** [suppressed_by_marker ~lines ~marker line]: does [marker] occur on
    [line] (1-based) or the line directly above? The shared engine
    behind [lint: allow <rule>] and [deepcheck: allow <rule>]. *)

val lint_source : path:string -> string -> diag list
(** Lint one source text ([path] selects [.mli] handling and the
    [Failwith_lib] scope; it is not read). Allowlist and suppression
    comments are NOT applied — callers get the raw findings. *)

val check_missing_mli : string list -> diag list
(** Pure [Missing_mli] pass over a file list: flags every [lib/] [.ml]
    with no corresponding [.mli] in the same list. *)

val lint_paths : string list -> diag list
(** Walk files and directories (skipping [_build], [.git] and dotfiles),
    lint every [.ml]/[.mli], apply the allowlist and suppression
    comments, and append the {!check_missing_mli} pass. Unreadable
    directories are skipped here (the pure API stays total); {!run}
    turns them into a usage error. *)

val run : ?format:format -> string list -> int
(** CLI driver: print diagnostics in [format] (default [Human]), return
    the exit code — 0 clean, 1 findings, 2 usage error (no paths, a path
    that does not exist or cannot be read, or a path contributing no
    [.ml]/[.mli] files — nothing a CI gate passes is ever silently
    skipped). Usage errors go to stderr as prose in both formats. *)
